// Quickstart: the whole ShrinkBench-C++ loop in one file.
//
//   1. build a synthetic CIFAR-10 stand-in and a ResNet-20
//   2. train it to convergence
//   3. prune to a 4x compression ratio with Global Magnitude Pruning
//   4. fine-tune and report everything the paper's checklist asks for:
//      raw Top-1 AND Top-5 before and after, achieved compression ratio
//      AND theoretical speedup.
//
// Run:  ./quickstart
#include <cstdio>

#include "core/pruner.hpp"
#include "core/train.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "nn/init.hpp"

using namespace shrinkbench;

int main() {
  // 1. Data + model. Everything is seeded: rerunning reproduces bit-exact
  // results (Appendix C of the paper, made mandatory).
  const DatasetBundle data = make_synthetic(synth_cifar());
  ModelPtr model = make_model("resnet-20", data.train.sample_shape(), data.train.num_classes);
  Rng init_rng(/*seed=*/42);
  init_model(*model, init_rng);

  // 2. Train to convergence (Adam + cosine annealing; best val weights
  // restored at the end).
  TrainOptions pretrain;
  pretrain.epochs = 45;
  pretrain.optimizer = OptimizerKind::Adam;
  pretrain.lr = 3e-3f;
  pretrain.lr_schedule = LrSchedule::Cosine;
  pretrain.lr_min = 1.5e-4f;
  pretrain.patience = 0;
  pretrain.verbose = true;
  std::printf("training resnet-20 on %s...\n", data.train.name.c_str());
  train_model(*model, data, pretrain);

  const EvalResult before = evaluate(*model, data.test);
  std::printf("\nunpruned control: top1 %.4f  top5 %.4f  (%lld params, %lld madds)\n",
              before.top1, before.top5,
              static_cast<long long>(count_params(*model).total),
              static_cast<long long>(count_flops(*model, data.train.sample_shape()).dense));

  // 3. Prune to 4x compression with the strongest simple baseline.
  const PruningStrategy strategy = strategy_from_name("global-weight");
  const PruneOptions prune_opts;  // classifier layer excluded by default
  const double keep = fraction_for_compression(*model, /*target_ratio=*/4.0, prune_opts);
  Rng prune_rng(7);
  prune_model(*model, strategy, keep, data.train, prune_opts, prune_rng);

  // 4. Fine-tune (Adam 3e-4, the paper's CIFAR recipe) and report.
  TrainOptions finetune = cifar_finetune_options();
  finetune.verbose = true;
  std::printf("\nfine-tuning after pruning...\n");
  train_model(*model, data, finetune);

  const EvalResult after = evaluate(*model, data.test);
  std::printf("\npruned + fine-tuned:\n");
  std::printf("  top1 %.4f (was %.4f)   top5 %.4f (was %.4f)\n", after.top1, before.top1,
              after.top5, before.top5);
  std::printf("  compression ratio    %.2fx (target 4x)\n", compression_ratio(*model));
  std::printf("  theoretical speedup  %.2fx\n",
              theoretical_speedup(*model, data.train.sample_shape()));
  return 0;
}
