// sb_serve: command-line driver for the sparse inference serving engine.
//
//   ./sb_serve --arch cifar-vgg --mode csr --keep 0.25 --seconds 5
//
// Builds a pruned model (synthetic weights, global magnitude masks —
// channel-structured for --mode shrunk, unstructured otherwise), compiles
// it with the serving compiler, starts the async batching server, and
// drives it with a built-in closed-loop load generator. Prints live
// throughput while running and a latency summary at the end, and writes
// sb_serve.manifest.json (with the serve.* histogram quantiles) to --out.
//
// The overload/degradation surface is exposed too: --policy picks the
// full-queue admission policy, --deadline-us arms per-request deadlines,
// --fallback compiles a second executor the circuit breaker routes to
// when the primary faults (pair with SB_FAULT=serve.exec_throw:N for a
// chaos smoke), and --stall-timeout-ms arms the watchdog. The load
// generator survives per-request failures — Overloaded / DeadlineExceeded
// / executor errors are counted and the client retries — and the exit
// status enforces the exactly-once invariant: submitted must equal
// completed + failed, else "lost futures" and exit 1.
//
// Ctrl-C mirrors run_sweep's SIGINT semantics: admissions stop, in-flight
// requests drain to completion, stats and the manifest are still written,
// and the process exits 130.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "models/zoo.hpp"
#include "nn/init.hpp"
#include "nn/layer.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "serve/executor.hpp"
#include "serve/server.hpp"

using namespace shrinkbench;
using serve::ExecMode;
using serve::InferenceServer;
using serve::ServerOptions;
using serve::ServerStats;

namespace {

volatile std::sig_atomic_t g_interrupted = 0;
void handle_sigint(int) { g_interrupted = 1; }

void usage(const char* argv0) {
  std::printf("usage: %s [options]\n", argv0);
  std::printf(
      "  --arch NAME      model zoo architecture (default cifar-vgg)\n"
      "  --width N        base width override (default 8)\n"
      "  --mode NAME      dense | csr | shrunk (default csr)\n"
      "  --keep F         fraction of prunable weights kept (default 0.25)\n"
      "  --workers N      server worker threads (default 1)\n"
      "  --max-batch N    dynamic batcher flush size (default 8)\n"
      "  --max-wait-us N  dynamic batcher flush age (default 2000)\n"
      "  --queue-capacity N  bounded request queue size (default 256)\n"
      "  --policy NAME    full-queue policy: block | reject | drop-oldest\n"
      "                   (default: SB_SERVE_OVERLOAD, then block)\n"
      "  --deadline-us N  default per-request deadline, 0 = none\n"
      "                   (default: SB_SERVE_DEADLINE_US, then 0)\n"
      "  --fallback MODE  compile a degraded-mode executor (dense | csr |\n"
      "                   shrunk) the circuit breaker routes to on faults\n"
      "  --breaker-threshold N  consecutive failures that trip the breaker\n"
      "                   (default 3, 0 disables)\n"
      "  --stall-timeout-ms N  watchdog threshold for one forward() call\n"
      "                   (default 0 = watchdog off)\n"
      "  --check-finite   treat non-finite outputs as executor failures\n"
      "  --clients N      closed-loop load-gen clients (default 4)\n"
      "  --seconds S      run duration (default 5)\n"
      "  --out DIR        manifest output dir (default bench_out)\n"
      "\nCtrl-C drains in-flight requests and exits 130.\n");
}

ModelPtr build_pruned(const std::string& arch, int64_t width, const Shape& sample,
                      Structure structure, double keep) {
  Rng rng(17);
  ModelPtr model = make_model(arch, sample, /*num_classes=*/10, width);
  init_model(*model, rng);
  for (int i = 0; i < 2; ++i) {
    Shape in{4};
    in.insert(in.end(), sample.begin(), sample.end());
    Tensor x(in);
    rng.fill_normal(x, 0, 1);
    model->forward(x, /*train=*/true);
  }
  PruneOptions opts;
  std::vector<ScoredParam> scored;
  for (Parameter* p : prunable_params(*model, opts)) {
    scored.push_back({p, score_parameter(ScoreKind::Magnitude, *p, {}, rng)});
  }
  allocate_masks(scored, AllocationScope::Global, structure, keep);
  apply_masks(*model);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  std::string arch = "cifar-vgg", out_dir = "bench_out", fallback_mode;
  int64_t width = 8;
  ExecMode mode = ExecMode::Csr;
  double keep = 0.25, seconds = 5.0;
  int clients = 4;
  ServerOptions sopts;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--arch") {
      arch = next();
    } else if (a == "--width") {
      width = std::atoll(next().c_str());
    } else if (a == "--mode") {
      mode = serve::exec_mode_from_name(next());
    } else if (a == "--keep") {
      keep = std::atof(next().c_str());
    } else if (a == "--workers") {
      sopts.workers = std::atoi(next().c_str());
    } else if (a == "--max-batch") {
      sopts.max_batch = std::atoll(next().c_str());
    } else if (a == "--max-wait-us") {
      sopts.max_wait_us = std::atoll(next().c_str());
    } else if (a == "--queue-capacity") {
      sopts.queue_capacity = static_cast<size_t>(std::atoll(next().c_str()));
    } else if (a == "--policy") {
      sopts.overload_policy = serve::overload_policy_from_name(next());
    } else if (a == "--deadline-us") {
      sopts.default_deadline_us = std::atoll(next().c_str());
    } else if (a == "--fallback") {
      fallback_mode = next();
    } else if (a == "--breaker-threshold") {
      sopts.breaker_threshold = std::atoi(next().c_str());
    } else if (a == "--stall-timeout-ms") {
      sopts.stall_timeout_ms = std::atoll(next().c_str());
    } else if (a == "--check-finite") {
      sopts.check_finite = true;
    } else if (a == "--clients") {
      clients = std::atoi(next().c_str());
    } else if (a == "--seconds") {
      seconds = std::atof(next().c_str());
    } else if (a == "--out") {
      out_dir = next();
    } else {
      usage(argv[0]);
      return a == "--help" ? 0 : 1;
    }
  }
  std::filesystem::create_directories(out_dir);

  // Profiling on so serve.latency_us / serve.batch_size quantiles land in
  // the manifest; heartbeat bookends mirror run_sweep.
  obs::set_profiling_enabled(true);
  obs::status_set_phase("serve");
  obs::write_status_now();
  std::signal(SIGINT, handle_sigint);

  // Shrunk mode needs whole-channel sparsity to have rows to drop;
  // dense/csr are benchmarked on unstructured masks.
  const Structure structure =
      mode == ExecMode::Shrunk ? Structure::Channel : Structure::Unstructured;
  const Shape sample{3, 32, 32};
  std::printf("compiling %s (width %lld, keep %.3g, %s masks) for %s execution...\n",
              arch.c_str(), static_cast<long long>(width), keep, to_string(structure).c_str(),
              serve::to_string(mode).c_str());
  ModelPtr model = build_pruned(arch, width, sample, structure, keep);
  const serve::Executor exec = serve::compile(*model, sample, mode);
  std::printf("compiled %zu ops; theoretical speedup %.2fx (%lld -> %lld flops/sample)\n",
              exec.op_count(), exec.theoretical_speedup(),
              static_cast<long long>(exec.flops_dense()),
              static_cast<long long>(exec.flops_effective()));

  // The fallback executor (if any) must outlive the server.
  std::optional<serve::Executor> fallback;
  if (!fallback_mode.empty()) {
    fallback.emplace(serve::compile(*model, sample, serve::exec_mode_from_name(fallback_mode)));
    sopts.fallback = &*fallback;
    std::printf("fallback: %s executor armed (breaker threshold %d)\n", fallback_mode.c_str(),
                sopts.breaker_threshold);
  }

  InferenceServer server(exec, sopts);
  std::printf("policy %s, deadline %lldus, watchdog %lldms\n",
              serve::to_string(server.overload_policy()).c_str(),
              static_cast<long long>(server.default_deadline_us()),
              static_cast<long long>(sopts.stall_timeout_ms));
  Rng rng(23);
  Tensor proto(sample);
  rng.fill_normal(proto, 0, 1);

  obs::QuantileHistogram hist;
  std::mutex hist_mu;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> done{0};
  std::atomic<int64_t> overloaded{0}, expired{0}, errored{0};
  std::vector<std::thread> load;
  load.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    load.emplace_back([&] {
      // Per-request failures are part of overload operation, not a reason
      // to stop offering load: count them and retry. Only a shutdown
      // rejection (accepting() went false) ends the client.
      while (!stop.load(std::memory_order_relaxed)) {
        const auto s0 = std::chrono::steady_clock::now();
        try {
          server.submit(proto.clone()).get();
        } catch (const serve::Overloaded&) {
          overloaded.fetch_add(1, std::memory_order_relaxed);
          continue;
        } catch (const serve::DeadlineExceeded&) {
          expired.fetch_add(1, std::memory_order_relaxed);
          continue;
        } catch (const std::exception&) {
          if (!server.accepting()) break;  // server began shutdown under us
          errored.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const double us =
            std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - s0)
                .count();
        {
          std::lock_guard<std::mutex> lk(hist_mu);
          hist.observe(us);
        }
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  double last_report = 0;
  int64_t last_done = 0;
  while (!g_interrupted && elapsed_s() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const double now = elapsed_s();
    if (now - last_report >= 1.0) {
      const int64_t n = done.load();
      std::printf("  t=%4.1fs  %6lld done  %7.1f req/s\n", now, static_cast<long long>(n),
                  static_cast<double>(n - last_done) / (now - last_report));
      last_report = now;
      last_done = n;
      obs::status_set_progress(static_cast<size_t>(now * 10), static_cast<size_t>(seconds * 10),
                               seconds - now);
    }
  }
  const bool interrupted = g_interrupted != 0;
  if (interrupted) std::printf("interrupt: draining in-flight requests...\n");
  stop.store(true);
  for (std::thread& t : load) t.join();
  server.shutdown();

  const double wall = elapsed_s();
  const ServerStats st = server.stats();
  std::printf("\n%s over %.2fs: %lld completed (%.1f req/s), %lld batches "
              "(mean batch %.2f), %lld failed, max queue depth %zu\n",
              interrupted ? "drained" : "finished", wall, static_cast<long long>(st.completed),
              static_cast<double>(st.completed) / wall, static_cast<long long>(st.batches),
              st.batches > 0 ? static_cast<double>(st.completed) / static_cast<double>(st.batches)
                             : 0.0,
              static_cast<long long>(st.failed), st.max_queue_depth);
  std::printf("latency p50 %.0fus  p90 %.0fus  p99 %.0fus (%lld samples)\n", hist.quantile(0.5),
              hist.quantile(0.9), hist.quantile(0.99), static_cast<long long>(hist.count()));
  std::printf("overload: shed %lld  rejected_overload %lld  deadline_exceeded %lld  "
              "(client-side: overloaded %lld expired %lld errored %lld)\n",
              static_cast<long long>(st.shed), static_cast<long long>(st.rejected_overload),
              static_cast<long long>(st.deadline_exceeded),
              static_cast<long long>(overloaded.load()), static_cast<long long>(expired.load()),
              static_cast<long long>(errored.load()));
  std::printf("breaker: state %s  trips %lld  exec_failures %lld  degraded_batches %lld  "
              "stalls %lld\n",
              st.breaker_state == serve::BreakerState::Open       ? "OPEN"
              : st.breaker_state == serve::BreakerState::HalfOpen ? "half-open"
                                                                  : "closed",
              static_cast<long long>(st.breaker_trips), static_cast<long long>(st.exec_failures),
              static_cast<long long>(st.degraded_batches), static_cast<long long>(st.stalls));
  // Exactly-once invariant: every accepted request's future was fulfilled
  // with a value or an exception. A nonzero delta means a lost future.
  const int64_t lost = st.submitted - st.completed - st.failed;
  std::printf("lost_futures %lld (submitted %lld = completed %lld + failed %lld)\n",
              static_cast<long long>(lost), static_cast<long long>(st.submitted),
              static_cast<long long>(st.completed), static_cast<long long>(st.failed));

  const std::string manifest = out_dir + "/sb_serve.manifest.json";
  write_run_manifest(manifest, interrupted ? "sb_serve.interrupted" : "sb_serve", {});
  std::printf("manifest: %s\n", manifest.c_str());
  // Flush the Chrome trace (serve.exec spans) like run_sweep does.
  const std::string trace = obs::trace_path();
  if (!trace.empty() && !obs::Profiler::instance().write_trace(trace)) {
    std::fprintf(stderr, "could not write trace %s\n", trace.c_str());
  }
  obs::status_set_phase(interrupted ? "interrupted" : "done");
  obs::write_status_now();
  if (lost != 0) {
    std::fprintf(stderr, "sb_serve: %lld futures lost (exactly-once violated)\n",
                 static_cast<long long>(lost));
    return 1;
  }
  return interrupted ? 130 : 0;
}
