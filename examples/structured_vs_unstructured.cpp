// Structured vs unstructured pruning, end to end — accuracy, theoretical
// speedup, *measured* sparse-inference latency, and storage bytes.
//
// The paper's §2.3 frames the structure choice as accuracy-vs-hardware:
// unstructured pruning keeps more accuracy per removed weight, structured
// pruning produces dense small computations that actually run faster.
// This example makes all four numbers visible for one model.
//
// Run:  ./structured_vs_unstructured
#include <chrono>
#include <cstdio>

#include "core/pruner.hpp"
#include "core/train.hpp"
#include "metrics/metrics.hpp"
#include "metrics/storage.hpp"
#include "models/zoo.hpp"
#include "nn/checkpoint.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "nn/sparse.hpp"

using namespace shrinkbench;

namespace {

double time_forward(Model& model, const Tensor& x, int reps) {
  model.forward(x, false);  // warm-up
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) model.forward(x, false);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() / reps;
}

// Sparse-executes every conv of the model once (linear layers stay dense:
// they are tiny here) and returns the mean latency.
double time_sparse_convs(Model& model, const Tensor& x, int reps) {
  std::vector<Conv2d*> convs;
  visit_layers(model, [&](Layer& l) {
    if (auto* c = dynamic_cast<Conv2d*>(&l)) convs.push_back(c);
  });
  std::vector<SparseConv2dInference> sparse;
  sparse.reserve(convs.size());
  for (Conv2d* c : convs) sparse.emplace_back(*c);
  // Time conv-by-conv on uniform-size random probes (a kernel-latency
  // comparison, not an exact per-layer replay), summing — the convs are
  // the model's hot path.
  Rng rng(123);
  double total = 0.0;
  for (size_t i = 0; i < convs.size(); ++i) {
    const int64_t in_c = convs[i]->in_channels();
    const int64_t hw = x.size(2);
    Tensor xi({x.size(0), in_c, hw, hw});
    rng.fill_normal(xi, 0, 1);
    sparse[i].forward(xi);  // warm-up
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) sparse[i].forward(xi);
    total +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() / reps;
  }
  return total;
}

}  // namespace

int main() {
  const DatasetBundle data = make_synthetic(synth_cifar());
  ModelPtr model = make_model("cifar-vgg", data.train.sample_shape(), data.train.num_classes);
  Rng rng(21);
  init_model(*model, rng);

  TrainOptions pretrain;
  pretrain.epochs = 30;
  pretrain.lr = 3e-3f;
  pretrain.lr_schedule = LrSchedule::Cosine;
  pretrain.lr_min = 1.5e-4f;
  pretrain.patience = 0;
  std::printf("pretraining cifar-vgg...\n");
  train_model(*model, data, pretrain);
  const StateDict pretrained = state_dict(*model);
  std::printf("pretrained top1 %.4f\n\n", evaluate(*model, data.test).top1);

  Tensor probe({64, 3, 8, 8});
  rng.fill_normal(probe, 0, 1);

  std::printf("%-18s %-8s %-12s %-10s %-12s %-14s %-12s\n", "strategy", "ratio", "top1",
              "speedup", "dense ms", "sparse-conv ms", "csr bytes");
  for (const double ratio : {4.0, 8.0}) {
    for (const char* strategy : {"global-weight", "global-channel"}) {
      load_state_dict(*model, pretrained);
      const double keep = fraction_for_compression(*model, ratio, {});
      Rng prune_rng(3);
      prune_model(*model, strategy_from_name(strategy), keep, data.train, {}, prune_rng);
      TrainOptions finetune = cifar_finetune_options();
      finetune.epochs = 8;
      train_model(*model, data, finetune);

      const double dense_ms = time_forward(*model, probe, 10) * 1e3;
      const double sparse_ms = time_sparse_convs(*model, probe, 10) * 1e3;
      std::printf("%-18s %-8.0f %-12.4f %-10.2f %-12.3f %-14.3f %-12lld\n", strategy, ratio,
                  evaluate(*model, data.test).top1,
                  theoretical_speedup(*model, data.train.sample_shape()), dense_ms, sparse_ms,
                  static_cast<long long>(storage_bytes(*model, StorageFormat::SparseCsr)));
    }
  }
  std::printf("\nReading: unstructured keeps more accuracy; structured masks turn whole\n"
              "filters off so the same CSR kernels traverse far fewer rows — and the dense\n"
              "kernel itself skips zero channels. Theoretical speedup treats both alike;\n"
              "wall-clock does not (paper §2.3, §2.4).\n");
  return 0;
}
