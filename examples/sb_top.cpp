// sb_top: live terminal view of running shrinkbench jobs.
//
//   SB_STATUS_FILE=/tmp/sweep.json ./fig2_comparisons &     # the run
//   ./sb_top /tmp/sweep.json                                # the watcher
//
// Tails one or more status.json heartbeats (written atomically by the
// telemetry sampler, so a read never sees a torn file) and optionally a
// telemetry JSONL stream, refreshing a compact dashboard: phase, stage,
// progress bar + ETA, last-epoch metrics, anomaly/retry counts, RSS and
// CPU, and per-worker pool utilization.
//
//   ./sb_top [options] STATUS.json [MORE.json ...]
//     --interval S   refresh period in seconds (default 2)
//     --jsonl PATH   also summarize a telemetry JSONL stream (last value
//                    per series)
//     --fleet PREFIX watch an sb_fleet run: expands to PREFIX plus every
//                    PREFIX.w* worker heartbeat (re-globbed each frame,
//                    so restarted workers appear) and prints an
//                    aggregate fleet line
//     --once         render a single frame and exit (scripts / CI)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

using shrinkbench::obs::JsonValue;
using shrinkbench::obs::json_parse;

namespace {

struct Options {
  std::vector<std::string> status_files;
  std::string jsonl;
  std::string fleet_prefix;
  double interval = 2.0;
  bool once = false;
};

/// PREFIX plus every PREFIX.w<N> heartbeat next to it, sorted — the file
/// set an sb_fleet coordinator's workers write via SB_STATUS_SUFFIX.
/// Re-evaluated every frame so a restarted worker's file shows up.
std::vector<std::string> fleet_files(const std::string& prefix) {
  std::vector<std::string> files;
  std::error_code ec;
  if (std::filesystem::exists(prefix, ec)) files.push_back(prefix);
  const std::filesystem::path p(prefix);
  const std::string stem = p.filename().string() + ".w";
  const std::filesystem::path dir = p.has_parent_path() ? p.parent_path() : ".";
  for (std::filesystem::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind(stem, 0) == 0) files.push_back(it->path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

std::string progress_bar(double fraction, int width) {
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  const int filled = static_cast<int>(std::lround(fraction * width));
  std::string bar = "[";
  for (int i = 0; i < width; ++i) bar += i < filled ? '#' : '.';
  bar += "]";
  return bar;
}

std::string format_eta(double seconds) {
  if (seconds <= 0.0) return "--";
  char buf[32];
  if (seconds < 120) {
    std::snprintf(buf, sizeof(buf), "%.0fs", seconds);
  } else if (seconds < 7200) {
    std::snprintf(buf, sizeof(buf), "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fh", seconds / 3600.0);
  }
  return buf;
}

void render_status(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    std::printf("%s: (no status file yet)\n", path.c_str());
    return;
  }
  JsonValue v;
  try {
    v = json_parse(text);
  } catch (const std::exception& e) {
    // Unreachable for files the sampler wrote (atomic rename), but the
    // watcher must survive being pointed at arbitrary paths.
    std::printf("%s: unparseable (%s)\n", path.c_str(), e.what());
    return;
  }

  std::printf("%s  host=%s pid=%.0f  updated %s\n", path.c_str(),
              v.str_or("host", "?").c_str(), v.num_or("pid", 0),
              v.str_or("updated_utc", "?").c_str());
  const std::string stage = v.str_or("stage", "");
  std::printf("  phase %-12s%s%s", v.str_or("phase", "idle").c_str(),
              stage.empty() ? "" : " / ", stage.c_str());

  if (v.has("progress")) {
    const JsonValue& p = v.at("progress");
    const double done = p.num_or("done", 0);
    const double total = p.num_or("total", 0);
    const double frac = p.num_or("fraction", total > 0 ? done / total : 0.0);
    std::printf("  %s %.0f/%.0f (%.0f%%)  eta %s", progress_bar(frac, 24).c_str(), done, total,
                frac * 100.0, format_eta(p.num_or("eta_seconds", -1)).c_str());
  }
  std::printf("\n");

  if (v.has("train")) {
    const JsonValue& t = v.at("train");
    std::printf("  epoch %-4.0f train_loss %-9.4f val_top1 %.4f\n", t.num_or("epoch", -1),
                t.num_or("train_loss", 0), t.num_or("val_top1", 0));
  }
  if (v.has("counts")) {
    const JsonValue& c = v.at("counts");
    std::printf("  anomalies %-5.0f retries %-5.0f failures %-5.0f cache_hits %.0f\n",
                c.num_or("anomalies", 0), c.num_or("retries", 0), c.num_or("failures", 0),
                c.num_or("cache_hits", 0));
  }
  if (v.has("degraded") || v.str_or("degraded_reason", "") != "") {
    std::printf("  DEGRADED: %s\n", v.str_or("degraded_reason", "?").c_str());
  }
  if (v.has("serve")) {
    const JsonValue& s = v.at("serve");
    const int breaker = static_cast<int>(s.num_or("breaker_state", 0));
    const char* breaker_name =
        breaker == 1 ? "OPEN" : breaker == 2 ? "half-open" : "closed";
    std::printf("  serve queue %-5.0f shed %-5.0f deadline_exceeded %-5.0f "
                "rejected %-5.0f\n",
                s.num_or("queue_depth", 0), s.num_or("shed", 0),
                s.num_or("deadline_exceeded", 0), s.num_or("rejected_overload", 0));
    std::printf("        breaker %-9s degraded_batches %-5.0f stalls %.0f\n", breaker_name,
                s.num_or("degraded_batches", 0), s.num_or("stalls", 0));
  }
  if (v.has("resources")) {
    const JsonValue& r = v.at("resources");
    std::printf("  rss %.1f MB (peak %.1f)  cpu %.1fs user / %.1fs sys  threads %.0f\n",
                r.num_or("rss_mb", 0), r.num_or("peak_rss_mb", 0),
                r.num_or("user_cpu_seconds", 0), r.num_or("sys_cpu_seconds", 0),
                r.num_or("os_threads", 0));
  }
  if (v.has("pool")) {
    const JsonValue& p = v.at("pool");
    std::printf("  pool (%.0f threads) jobs %.0f pending %.0f  busy", p.num_or("threads", 0),
                p.num_or("jobs", 0), p.num_or("pending_chunks", 0));
    if (p.has("busy_frac")) {
      for (const JsonValue& b : p.at("busy_frac").array) {
        std::printf(" %3.0f%%", b.number * 100.0);
      }
    }
    std::printf("\n");
  }
}

// One-line rollup across a fleet's worker heartbeats: every worker
// converges to the full grid, so max(done) is the fleet's true progress
// and min(done) exposes the straggler the others will steal from.
void render_fleet_summary(const std::vector<std::string>& files) {
  int workers = 0;
  double done_min = 0, done_max = 0, total = 0, rss = 0, failures = 0, hits = 0;
  for (const std::string& path : files) {
    std::string text;
    if (!read_file(path, text)) continue;
    JsonValue v;
    try {
      v = json_parse(text);
    } catch (const std::exception&) {
      continue;
    }
    if (!v.has("progress")) continue;
    const JsonValue& p = v.at("progress");
    const double done = p.num_or("done", 0);
    done_min = workers == 0 ? done : std::min(done_min, done);
    done_max = std::max(done_max, done);
    total = std::max(total, p.num_or("total", 0));
    if (v.has("resources")) rss += v.at("resources").num_or("rss_mb", 0);
    if (v.has("counts")) {
      failures = std::max(failures, v.at("counts").num_or("failures", 0));
      hits = std::max(hits, v.at("counts").num_or("cache_hits", 0));
    }
    ++workers;
  }
  if (workers == 0) {
    std::printf("fleet: (no worker heartbeats yet)\n");
    return;
  }
  std::printf("fleet: %d heartbeats  %s %.0f/%.0f rows (straggler %.0f)  "
              "failures %.0f cache_hits %.0f  rss %.1f MB\n",
              workers, progress_bar(total > 0 ? done_max / total : 0.0, 24).c_str(), done_max,
              total, done_min, failures, hits, rss);
}

// Last value per series from a telemetry JSONL stream — enough to show
// where the curves currently sit without loading the history.
void render_jsonl(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::printf("%s: (no telemetry stream yet)\n", path.c_str());
    return;
  }
  std::vector<std::pair<std::string, double>> last;
  std::string line;
  size_t samples = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = json_parse(line);
    } catch (const std::exception&) {
      continue;  // torn tail line of a live stream
    }
    ++samples;
    const std::string series = v.str_or("series", "?");
    const double value = v.num_or("value", 0);
    bool found = false;
    for (auto& [name, val] : last) {
      if (name == series) {
        val = value;
        found = true;
        break;
      }
    }
    if (!found) last.emplace_back(series, value);
  }
  std::printf("%s: %zu samples, %zu series\n", path.c_str(), samples, last.size());
  for (const auto& [name, val] : last) std::printf("  %-28s %g\n", name.c_str(), val);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--interval" && i + 1 < argc) {
      opt.interval = std::atof(argv[++i]);
      if (opt.interval < 0.1) opt.interval = 0.1;
    } else if (a == "--jsonl" && i + 1 < argc) {
      opt.jsonl = argv[++i];
    } else if (a == "--fleet" && i + 1 < argc) {
      opt.fleet_prefix = argv[++i];
    } else if (a == "--once") {
      opt.once = true;
    } else if (a == "--help" || a[0] == '-') {
      std::printf(
          "usage: %s [--interval S] [--jsonl PATH] [--fleet PREFIX] [--once] STATUS.json ...\n",
          argv[0]);
      return a == "--help" ? 0 : 1;
    } else {
      opt.status_files.push_back(a);
    }
  }
  if (opt.status_files.empty() && opt.jsonl.empty() && opt.fleet_prefix.empty()) {
    std::fprintf(stderr, "sb_top: no status or jsonl files given (--help for usage)\n");
    return 1;
  }

  for (;;) {
    if (!opt.once) std::printf("\x1b[2J\x1b[H");  // clear + home
    for (const std::string& path : opt.status_files) render_status(path);
    if (!opt.fleet_prefix.empty()) {
      const std::vector<std::string> fleet = fleet_files(opt.fleet_prefix);
      for (const std::string& path : fleet) render_status(path);
      render_fleet_summary(fleet);
    }
    if (!opt.jsonl.empty()) render_jsonl(opt.jsonl);
    std::fflush(stdout);
    if (opt.once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(opt.interval));
  }
}
