// sb_run: command-line driver for single pruning experiments.
//
//   ./sb_run --arch resnet-56 --strategy global-gradient --ratio 8 \
//            --dataset synth-cifar10 --seed 3 --schedule iterative --steps 3
//
// Prints the model summary, runs the full pretrain(cached) -> prune ->
// fine-tune pipeline, and reports every §6 metric plus the Appendix B
// best-practice checklist for the run.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/checklist.hpp"
#include "core/experiment.hpp"
#include "metrics/summary.hpp"
#include "obs/telemetry.hpp"

using namespace shrinkbench;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n", argv0);
  std::printf(
      "  --dataset NAME     synth-cifar10 | synth-imagenet | synth-mnist (default synth-cifar10)\n"
      "  --arch NAME        lenet-300-100 | lenet-5 | cifar-vgg | resnet-20/56/110 | resnet-18\n"
      "  --width N          base width override (0 = architecture default)\n"
      "  --strategy NAME    one of:");
  for (const auto& name : strategy_names()) std::printf(" %s", name.c_str());
  std::printf(
      "\n"
      "  --ratio R          target compression ratio (default 4)\n"
      "  --schedule NAME    one-shot | iterative | polynomial (default one-shot)\n"
      "  --steps N          pruning rounds for iterative/polynomial (default 3)\n"
      "  --seed N           run seed (default 1)\n"
      "  --seeds A,B,...    run a mini-sweep over these seeds instead of one run\n"
      "  --csv PATH         (with --seeds) stream rows to PATH and write the run\n"
      "                     manifest next to it (PATH with .manifest.json)\n"
      "  --epochs N         fine-tune epochs (default 10)\n"
      "  --pretrain-epochs N  pretraining epochs (default 60; cached per config)\n"
      "  --prune-classifier include the classifier layer (off by default)\n"
      "  --cache DIR        pretrained/result cache (default .sb_cache)\n"
      "\n"
      "crash safety: interrupted runs resume from training checkpoints under\n"
      "<cache>/ckpt (see SB_CKPT_DIR / SB_CKPT_EVERY in EXPERIMENTS.md)\n");
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.finetune.epochs = 10;
  cfg.finetune.patience = 4;
  std::string cache = default_cache_dir();
  std::vector<uint64_t> seeds;
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--dataset") {
      cfg.dataset = next();
    } else if (a == "--arch") {
      cfg.arch = next();
    } else if (a == "--width") {
      cfg.width = std::atoll(next().c_str());
    } else if (a == "--strategy") {
      cfg.strategy = next();
    } else if (a == "--ratio") {
      cfg.target_compression = std::atof(next().c_str());
    } else if (a == "--schedule") {
      cfg.schedule = schedule_from_name(next());
    } else if (a == "--steps") {
      cfg.schedule_steps = std::atoi(next().c_str());
    } else if (a == "--seed") {
      cfg.run_seed = static_cast<uint64_t>(std::atoll(next().c_str()));
    } else if (a == "--seeds") {
      std::string list = next();
      seeds.clear();
      for (size_t pos = 0; pos < list.size();) {
        const size_t comma = list.find(',', pos);
        const std::string tok = list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!tok.empty()) seeds.push_back(static_cast<uint64_t>(std::atoll(tok.c_str())));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (a == "--csv") {
      csv_path = next();
    } else if (a == "--epochs") {
      cfg.finetune.epochs = std::atoi(next().c_str());
    } else if (a == "--pretrain-epochs") {
      cfg.pretrain.epochs = std::atoi(next().c_str());
    } else if (a == "--prune-classifier") {
      cfg.prune.include_classifier = true;
    } else if (a == "--cache") {
      cache = next();
    } else {
      usage(argv[0]);
      return a == "--help" ? 0 : 1;
    }
  }
  if (cfg.dataset == "synth-imagenet") cfg.finetune = imagenet_finetune_options();

  ExperimentRunner runner(cache);

  // Mini-sweep mode: one strategy/ratio across several seeds through the
  // real run_sweep path (heartbeat, incremental CSV, manifest) — the
  // smallest end-to-end exercise of the sweep observability surface.
  if (!seeds.empty()) {
    SweepOptions opts;
    opts.csv_path = csv_path;
    SweepSummary sum;
    std::vector<ExperimentResult> results;
    try {
      results = run_sweep(runner, cfg, {cfg.strategy}, {cfg.target_compression}, seeds, opts,
                          &sum);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sb_run: sweep failed: %s\n", e.what());
      return 1;
    }
    if (!csv_path.empty()) {
      std::string manifest = csv_path;
      if (manifest.size() > 4 && manifest.rfind(".csv") == manifest.size() - 4) {
        manifest.erase(manifest.size() - 4);
      }
      manifest += ".manifest.json";
      write_run_manifest(manifest, "sb_run.sweep", results);
      std::printf("manifest: %s\n", manifest.c_str());
    }
    for (const ExperimentResult& r : results) {
      std::printf("seed=%llu  %s  top1 %.4f -> %.4f  compression %.2fx\n",
                  static_cast<unsigned long long>(r.config.run_seed),
                  r.failed ? "FAILED" : "ok", r.pre_top1, r.post_top1, r.compression);
    }
    std::printf("sweep: %zu/%zu completed, %zu failures, %zu cache hits%s\n", sum.completed,
                sum.total, sum.failures, sum.cache_hits,
                sum.interrupted ? " (interrupted)" : "");
    return sum.failures == 0 && !sum.interrupted ? 0 : 1;
  }


  ExperimentResult r;
  try {
    // Heartbeat for single runs too: the board/sampler start lazily on
    // the first status call, and the bookend writes guarantee the file
    // exists even when the run finishes inside one sampler period.
    obs::status_set_phase("run");
    obs::status_set_progress(0, 1, -1.0);
    obs::write_status_now();
    ModelPtr model = runner.pretrained(cfg);
    const DatasetBundle& data = runner.dataset(cfg.dataset, cfg.data_seed);
    std::printf("%s\n", describe(*model, data.train.sample_shape()).c_str());
    r = runner.run(cfg);
    obs::status_set_phase("done");
    obs::status_set_progress(1, 1, 0.0);
    obs::write_status_now();
  } catch (const std::exception& e) {
    // A crash (or injected fault) exits non-zero; rerunning resumes from
    // the result cache and the training checkpoints under <cache>/ckpt.
    std::fprintf(stderr, "sb_run: %s\n", e.what());
    return 1;
  }
  std::printf("dataset=%s arch=%s strategy=%s schedule=%s ratio=%.1f seed=%llu\n",
              cfg.dataset.c_str(), cfg.arch.c_str(), cfg.strategy.c_str(),
              to_string(cfg.schedule).c_str(), cfg.target_compression,
              static_cast<unsigned long long>(cfg.run_seed));
  std::printf("  control:  top1 %.4f  top5 %.4f\n", r.pre_top1, r.pre_top5);
  std::printf("  pruned:   top1 %.4f  top5 %.4f\n", r.post_top1, r.post_top5);
  std::printf("  compression %.2fx  speedup %.2fx  (%lld -> %lld params)\n", r.compression,
              r.speedup, static_cast<long long>(r.params_total),
              static_cast<long long>(r.params_nonzero));
  std::printf("  fine-tune epochs %d, wall time %.1fs\n\n", r.finetune_epochs, r.seconds);

  std::printf("%s", render_checklist(evaluate_checklist({r}, cfg.strategy)).c_str());
  std::printf("(single runs fail most checklist items by construction — sweep strategies,\n"
              "ratios, and seeds with the bench binaries to satisfy them)\n");
  return 0;
}
