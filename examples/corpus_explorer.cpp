// Querying the meta-analysis corpus programmatically.
//
// The corpus API that powers Figures 1-5 is a public library: this example
// answers the kinds of questions the paper poses in §1 ("which technique
// is best? who compares to whom?") directly against the data.
//
// Run:  ./corpus_explorer [paper-label]
#include <algorithm>
#include <cstdio>
#include <map>

#include "corpus/analysis.hpp"
#include "corpus/corpus.hpp"
#include "report/table.hpp"

using namespace shrinkbench;
using namespace shrinkbench::corpus;

int main(int argc, char** argv) {
  const Corpus& c = pruning_corpus();
  const std::string query = argc > 1 ? argv[1] : "Han 2015";

  // 1. Most-compared-to papers (the de-facto baselines).
  std::map<int, int> in_degree;
  for (const auto& p : c.papers) {
    for (int t : p.compares_to) in_degree[t]++;
  }
  std::vector<std::pair<int, int>> ranked(in_degree.begin(), in_degree.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("Most-compared-to papers (the field's de-facto baselines):\n");
  report::Table top({"paper", "year", "compared to by"});
  for (size_t i = 0; i < 8 && i < ranked.size(); ++i) {
    const auto& p = c.papers[static_cast<size_t>(ranked[i].first)];
    top.add_row({p.label, std::to_string(p.year), std::to_string(ranked[i].second)});
  }
  std::printf("%s\n", top.render().c_str());

  // 2. Details for one paper.
  const PaperRecord* paper = c.find(query);
  if (paper == nullptr) {
    std::printf("no paper labeled '%s' in the corpus\n", query.c_str());
    return 1;
  }
  std::printf("%s (%d, %s):\n", paper->label.c_str(), paper->year,
              paper->peer_reviewed ? "peer-reviewed" : "not peer-reviewed");
  std::printf("  compares to %zu papers:", paper->compares_to.size());
  for (int t : paper->compares_to) {
    std::printf(" [%s]", c.papers[static_cast<size_t>(t)].label.c_str());
  }
  std::printf("\n  evaluates on %zu (dataset, architecture) pairs\n", paper->pairs.size());
  for (const auto& curve : paper->curves) {
    std::printf("  curve '%s' on %s/%s: %zu points\n", curve.method_label.c_str(),
                curve.dataset.c_str(), curve.architecture.c_str(), curve.points.size());
    for (const auto& pt : curve.points) {
      std::printf("    ");
      if (pt.compression) std::printf("compression %.2fx  ", *pt.compression);
      if (pt.speedup) std::printf("speedup %.2fx  ", *pt.speedup);
      if (pt.delta_top1) std::printf("dTop1 %+.2f  ", *pt.delta_top1);
      if (pt.delta_top5) std::printf("dTop5 %+.2f", *pt.delta_top5);
      std::printf("\n");
    }
  }

  // 3. Who shares an evaluation setting with this paper? (§4.2: almost
  // nobody — that's the fragmentation problem.)
  int sharing = 0;
  for (const auto& other : c.papers) {
    if (other.id == paper->id) continue;
    for (const auto& pair : other.pairs) {
      if (std::find(paper->pairs.begin(), paper->pairs.end(), pair) != paper->pairs.end()) {
        ++sharing;
        break;
      }
    }
  }
  std::printf("\npapers sharing at least one (dataset, architecture) pair with %s: %d of 80\n",
              paper->label.c_str(), sharing);
  return 0;
}
