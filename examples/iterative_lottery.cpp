// Iterative pruning with weight rewinding (lottery-ticket style).
//
// §2.3 of the paper catalogs fine-tuning variants: continue training the
// trained weights (standard), rewind to an earlier checkpoint (Frankle et
// al. 2019), or reinitialize entirely (Liu et al. 2019). This example
// implements all three on the same iterative magnitude-pruning schedule
// and prints the resulting tradeoff rows side by side.
//
// Run:  ./iterative_lottery
#include <cstdio>

#include "core/pruner.hpp"
#include "core/schedule.hpp"
#include "core/train.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "nn/checkpoint.hpp"
#include "nn/init.hpp"

using namespace shrinkbench;

namespace {

enum class FinetuneMode { Continue, Rewind, Reinitialize };

const char* name_of(FinetuneMode mode) {
  switch (mode) {
    case FinetuneMode::Continue: return "continue (Han et al.)";
    case FinetuneMode::Rewind: return "rewind (Frankle et al.)";
    case FinetuneMode::Reinitialize: return "reinit (Liu et al.)";
  }
  return "?";
}

// Copies parameter *values* from `source` into the live model while
// preserving the live masks — rewinding moves weights back in time, not
// the sparsity pattern.
void restore_weights_keep_masks(Model& model, const StateDict& source) {
  for (Parameter* p : parameters_of(model)) {
    p->data = source.at(p->name);
    p->apply_mask();
  }
}

}  // namespace

int main() {
  const DatasetBundle data = make_synthetic(synth_cifar());
  const double target_ratio = 16.0;
  const int rounds = 4;

  std::printf("iterative magnitude pruning to %.0fx in %d rounds, three fine-tune modes\n\n",
              target_ratio, rounds);
  std::printf("%-26s %-12s %-10s %-10s\n", "fine-tune mode", "compression", "speedup", "top1");

  for (const FinetuneMode mode :
       {FinetuneMode::Continue, FinetuneMode::Rewind, FinetuneMode::Reinitialize}) {
    ModelPtr model = make_model("resnet-20", data.train.sample_shape(), data.train.num_classes);
    Rng init_rng(11);
    init_model(*model, init_rng);
    const StateDict at_init = state_dict(*model);

    // Short "early training" checkpoint for rewinding (a few epochs in).
    TrainOptions warmup;
    warmup.epochs = 3;
    warmup.lr = 1e-3f;
    warmup.patience = 0;
    train_model(*model, data, warmup);
    const StateDict early = state_dict(*model);

    TrainOptions to_convergence;
    to_convergence.epochs = 40;
    to_convergence.lr = 3e-3f;
    to_convergence.lr_schedule = LrSchedule::Cosine;
    to_convergence.lr_min = 1.5e-4f;
    to_convergence.patience = 0;
    train_model(*model, data, to_convergence);

    const double final_keep = fraction_for_compression(*model, target_ratio, {});
    const auto fractions = schedule_fractions(ScheduleKind::Iterative, final_keep, rounds);

    Rng prune_rng(5);
    TrainOptions finetune = cifar_finetune_options();
    finetune.epochs = 6;
    for (const double fraction : fractions) {
      prune_model(*model, strategy_from_name("global-weight"), fraction, data.train, {},
                  prune_rng);
      switch (mode) {
        case FinetuneMode::Continue:
          break;  // keep trained weights
        case FinetuneMode::Rewind:
          restore_weights_keep_masks(*model, early);
          break;
        case FinetuneMode::Reinitialize:
          restore_weights_keep_masks(*model, at_init);
          break;
      }
      train_model(*model, data, finetune);
    }

    std::printf("%-26s %-12.2f %-10.2f %-10.4f\n", name_of(mode), compression_ratio(*model),
                theoretical_speedup(*model, data.train.sample_shape()),
                evaluate(*model, data.test).top1);
  }

  std::printf("\n(Expected shape per §3.2: with equal fine-tuning budgets, continuing from\n"
              "trained weights usually beats reinitializing at high compression.)\n");
  return 0;
}
