// sb_fleet: multi-process sweep coordinator.
//
//   ./sb_fleet --workers 4 --strategies global-weight,layer-weight \
//              --ratios 2,4,8 --seeds 1,2,3 --csv fleet.csv
//
// Forks N worker processes that shard one (strategy x ratio x seed)
// grid through the shared result cache: each worker claims grid points
// with flock'd claim files (see EXPERIMENTS.md "Fleet"), steals
// whatever a dead or slow peer left behind, and converges to the full
// grid. Workers are preemptible — kill -9 any of them and the
// coordinator restarts it; the restarted worker resumes from the result
// cache and the bit-identical training checkpoints, so the final CSV is
// byte-identical to a single-process run of the same sweep.
//
// Exit code: 0 clean, 1 some rows failed after retries, 130 interrupted.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "core/experiment.hpp"

using namespace shrinkbench;

namespace {

volatile std::sig_atomic_t g_interrupted = 0;
void on_sigint(int) { g_interrupted = 1; }

void usage(const char* argv0) {
  std::printf("usage: %s [options]\n", argv0);
  std::printf(
      "  --workers N          worker processes (default SB_FLEET_WORKERS or 2)\n"
      "  --strategies A,B,... pruning strategies (default global-weight)\n"
      "  --ratios A,B,...     target compression ratios (default 4)\n"
      "  --seeds A,B,...      run seeds (default 1)\n"
      "  --dataset NAME       synth-cifar10 | synth-imagenet | synth-mnist\n"
      "  --arch NAME          model architecture (default resnet-56)\n"
      "  --width N            base width override (0 = architecture default)\n"
      "  --schedule NAME      one-shot | iterative | polynomial (default one-shot)\n"
      "  --steps N            pruning rounds for iterative/polynomial (default 3)\n"
      "  --epochs N           fine-tune epochs (default 10)\n"
      "  --pretrain-epochs N  pretraining epochs (default 60; cached per config)\n"
      "  --prune-classifier   include the classifier layer (off by default)\n"
      "  --cache DIR          shared result/pretrained cache (default .sb_cache)\n"
      "  --csv PATH           final merged CSV (per-worker streams at PATH.shard<i>)\n"
      "  --max-restarts N     restarts per worker after a crash/kill (default 3)\n"
      "\n"
      "preemption: kill -9 any worker; its flock-held claims free instantly and\n"
      "peers (or its restart) take the work over from the shared cache.\n");
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  for (size_t pos = 0; pos < list.size();) {
    const size_t comma = list.find(',', pos);
    const std::string tok = list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

#if defined(_WIN32)

int main() {
  std::fprintf(stderr, "sb_fleet: the fleet is a POSIX (fork/flock) feature\n");
  return 1;
}

#else

int main(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.finetune.epochs = 10;
  cfg.finetune.patience = 4;
  std::string cache = default_cache_dir();
  std::string csv_path;
  std::vector<std::string> strategies = {"global-weight"};
  std::vector<double> ratios = {4.0};
  std::vector<uint64_t> seeds = {1};
  int workers = 2;
  if (const char* env = std::getenv("SB_FLEET_WORKERS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) workers = parsed;
  }
  int max_restarts = 3;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--workers") {
      workers = std::atoi(next().c_str());
    } else if (a == "--strategies") {
      strategies = split_list(next());
    } else if (a == "--ratios") {
      ratios.clear();
      for (const std::string& tok : split_list(next())) ratios.push_back(std::atof(tok.c_str()));
    } else if (a == "--seeds") {
      seeds.clear();
      for (const std::string& tok : split_list(next())) {
        seeds.push_back(static_cast<uint64_t>(std::atoll(tok.c_str())));
      }
    } else if (a == "--dataset") {
      cfg.dataset = next();
    } else if (a == "--arch") {
      cfg.arch = next();
    } else if (a == "--width") {
      cfg.width = std::atoll(next().c_str());
    } else if (a == "--schedule") {
      cfg.schedule = schedule_from_name(next());
    } else if (a == "--steps") {
      cfg.schedule_steps = std::atoi(next().c_str());
    } else if (a == "--epochs") {
      cfg.finetune.epochs = std::atoi(next().c_str());
    } else if (a == "--pretrain-epochs") {
      cfg.pretrain.epochs = std::atoi(next().c_str());
    } else if (a == "--prune-classifier") {
      cfg.prune.include_classifier = true;
    } else if (a == "--cache") {
      cache = next();
    } else if (a == "--csv") {
      csv_path = next();
    } else if (a == "--max-restarts") {
      max_restarts = std::atoi(next().c_str());
    } else {
      usage(argv[0]);
      return a == "--help" ? 0 : 1;
    }
  }
  if (cfg.dataset == "synth-imagenet") cfg.finetune = imagenet_finetune_options();
  if (strategies.empty() || ratios.empty() || seeds.empty()) {
    std::fprintf(stderr, "sb_fleet: empty grid\n");
    return 1;
  }
  const size_t grid_size = strategies.size() * ratios.size() * seeds.size();
  if (workers < 1) workers = 1;
  if (static_cast<size_t>(workers) > grid_size) workers = static_cast<int>(grid_size);

  std::signal(SIGINT, on_sigint);

  // Fork the fleet. The coordinator stays deliberately dumb before this
  // point — no runner, no thread pool, no telemetry sampler — so the
  // children never inherit half a thread's worth of state.
  const auto spawn = [&](int shard) -> pid_t {
    const pid_t pid = fork();
    if (pid != 0) return pid;
    // Worker process: sharding and heartbeat identity ride the
    // environment so run_sweep and telemetry pick them up untouched.
    setenv("SB_FLEET_SHARD", std::to_string(shard).c_str(), 1);
    setenv("SB_FLEET_SHARDS", std::to_string(workers).c_str(), 1);
    setenv("SB_STATUS_SUFFIX", (".w" + std::to_string(shard)).c_str(), 1);
    std::signal(SIGINT, SIG_DFL);
    ExperimentRunner runner(cache);
    SweepOptions opts;
    opts.csv_path = csv_path;
    SweepSummary sum;
    try {
      run_sweep(runner, cfg, strategies, ratios, seeds, opts, &sum);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sb_fleet[w%d]: %s\n", shard, e.what());
      std::exit(2);
    }
    std::exit(sum.exit_code());
  };

  std::printf("sb_fleet: %d workers over %zu grid points (cache %s)\n", workers, grid_size,
              cache.c_str());
  std::map<pid_t, int> shard_of;
  std::vector<int> restarts(static_cast<size_t>(workers), 0);
  for (int w = 0; w < workers; ++w) {
    const pid_t pid = spawn(w);
    if (pid < 0) {
      std::perror("sb_fleet: fork");
      return 1;
    }
    shard_of[pid] = w;
  }

  bool interrupted = false;
  bool failures = false;
  while (!shard_of.empty()) {
    int status = 0;
    const pid_t pid = waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) {
        if (g_interrupted) interrupted = true;  // children drain on their own SIGINT
        continue;
      }
      break;
    }
    const auto it = shard_of.find(pid);
    if (it == shard_of.end()) continue;
    const int shard = it->second;
    shard_of.erase(it);
    if (g_interrupted) interrupted = true;

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      std::printf("sb_fleet: worker %d done\n", shard);
      continue;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 130) {
      interrupted = true;
      continue;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 1) {
      // Rows failed after retries — deterministic, so a restart would
      // only replay the failures. Record and move on.
      std::fprintf(stderr, "sb_fleet: worker %d reported failed rows\n", shard);
      failures = true;
      continue;
    }
    // Crash or kill: the kernel already released the worker's claims, so
    // a replacement (or its peers) can take the work over immediately.
    const char* how = WIFSIGNALED(status) ? strsignal(WTERMSIG(status)) : "nonzero exit";
    if (interrupted || restarts[static_cast<size_t>(shard)] >= max_restarts) {
      std::fprintf(stderr, "sb_fleet: worker %d lost (%s), not restarting\n", shard, how);
      failures = true;
      continue;
    }
    ++restarts[static_cast<size_t>(shard)];
    std::fprintf(stderr, "sb_fleet: worker %d lost (%s), restarting (%d/%d)\n", shard, how,
                 restarts[static_cast<size_t>(shard)], max_restarts);
    const pid_t fresh = spawn(shard);
    if (fresh < 0) {
      std::perror("sb_fleet: fork");
      failures = true;
      continue;
    }
    shard_of[fresh] = shard;
  }

  if (interrupted) {
    std::fprintf(stderr, "sb_fleet: interrupted — cache holds all completed rows; rerun to "
                 "resume\n");
    return 130;
  }

  // Sweep out claim files: live claims are unlinked on release, so
  // whatever is left belongs to killed workers whose flocks the kernel
  // already dropped.
  {
    std::error_code ec;
    const std::filesystem::path results_dir = std::filesystem::path(cache) / "results";
    for (std::filesystem::directory_iterator it(results_dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (it->path().extension() == ".claim") std::filesystem::remove(it->path(), ec);
    }
  }

  // Merge: a sequential pass over the now-warm cache. Every row is a
  // cache hit, rows land in grid order, and write_experiment_csv
  // atomically rewrites the canonical CSV — byte-identical to what a
  // single-process run_sweep of the same grid would have produced.
  ExperimentRunner runner(cache);
  SweepOptions merge_opts;
  merge_opts.csv_path = csv_path;
  merge_opts.parallel = 1;
  merge_opts.shard_id = 0;
  merge_opts.shard_count = 1;
  SweepSummary sum;
  std::vector<ExperimentResult> results;
  try {
    results = run_sweep(runner, cfg, strategies, ratios, seeds, merge_opts, &sum);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sb_fleet: merge failed: %s\n", e.what());
    return 1;
  }
  if (!csv_path.empty()) {
    write_experiment_csv(csv_path, results);
    std::string manifest = csv_path;
    if (manifest.size() > 4 && manifest.rfind(".csv") == manifest.size() - 4) {
      manifest.erase(manifest.size() - 4);
    }
    manifest += ".manifest.json";
    write_run_manifest(manifest, "sb_fleet", results);
    std::printf("merged csv: %s\n", csv_path.c_str());
  }
  std::printf("sb_fleet: %zu/%zu rows, %zu failures, %zu cache hits\n", sum.completed, sum.total,
              sum.failures, sum.cache_hits);
  if (sum.interrupted) return 130;
  return failures || sum.failures > 0 ? 1 : 0;
}

#endif  // _WIN32
