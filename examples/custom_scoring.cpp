// Extending ShrinkBench-C++ with a custom scoring function.
//
// The experiment runner works with named strategies, but the pruning core
// is layered: anything that can produce a per-weight score tensor can be
// fed to allocate_masks(). This example implements a scoring function not
// in the registry — "magnitude-over-fan-in" (each weight's magnitude
// normalized by its layer's fan-in, so small layers aren't starved by
// global thresholds) — and compares it against plain global magnitude at
// several compression ratios.
//
// Run:  ./custom_scoring
#include <cmath>
#include <cstdio>

#include "core/pruner.hpp"
#include "core/train.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "nn/checkpoint.hpp"
#include "nn/init.hpp"

using namespace shrinkbench;

namespace {

// The custom score: |w| * sqrt(fan_in). Fan-in-aware rescaling is a
// common trick to make global thresholds layer-size aware.
Tensor fanin_scaled_magnitude(const Parameter& param) {
  const int64_t fan_in =
      param.data.dim() == 4
          ? param.data.size(1) * param.data.size(2) * param.data.size(3)
          : param.data.size(1);
  const float scale = std::sqrt(static_cast<float>(fan_in));
  Tensor scores(param.data.shape());
  const float* w = param.data.data();
  const float* m = param.mask.data();
  float* s = scores.data();
  for (int64_t i = 0; i < scores.numel(); ++i) {
    s[i] = m[i] == 0.0f ? -std::numeric_limits<float>::infinity() : std::fabs(w[i]) * scale;
  }
  return scores;
}

// Applies the custom scores through the same allocator the built-in
// strategies use.
void prune_with_custom_scores(Model& model, double fraction_to_keep) {
  std::vector<ScoredParam> scored;
  PruneOptions opts;
  for (Parameter* p : prunable_params(model, opts)) {
    scored.push_back(ScoredParam{p, fanin_scaled_magnitude(*p)});
  }
  allocate_masks(scored, AllocationScope::Global, Structure::Unstructured, fraction_to_keep);
  apply_masks(model);
}

}  // namespace

int main() {
  const DatasetBundle data = make_synthetic(synth_cifar());
  ModelPtr model = make_model("cifar-vgg", data.train.sample_shape(), data.train.num_classes);
  Rng init_rng(1);
  init_model(*model, init_rng);

  TrainOptions pretrain;
  pretrain.epochs = 30;
  pretrain.lr = 3e-3f;
  pretrain.lr_schedule = LrSchedule::Cosine;
  pretrain.lr_min = 1.5e-4f;
  pretrain.patience = 0;
  std::printf("pretraining cifar-vgg...\n");
  train_model(*model, data, pretrain);
  const StateDict pretrained = state_dict(*model);
  std::printf("pretrained top1: %.4f\n\n", evaluate(*model, data.test).top1);

  std::printf("%-22s %-12s %-12s %-12s\n", "method", "target", "achieved", "top1");
  for (const double ratio : {2.0, 4.0, 8.0, 16.0}) {
    for (const bool custom : {false, true}) {
      load_state_dict(*model, pretrained);  // same initial model every time
      const double keep = fraction_for_compression(*model, ratio, {});
      if (custom) {
        prune_with_custom_scores(*model, keep);
      } else {
        Rng rng(3);
        prune_model(*model, strategy_from_name("global-weight"), keep, data.train, {}, rng);
      }
      TrainOptions finetune = cifar_finetune_options();
      finetune.epochs = 8;
      train_model(*model, data, finetune);
      std::printf("%-22s %-12.0f %-12.2f %-12.4f\n",
                  custom ? "fanin-scaled magnitude" : "global-weight", ratio,
                  compression_ratio(*model), evaluate(*model, data.test).top1);
    }
  }
  std::printf("\n(The point is not which wins — it's that a new scoring function is ~20\n"
              "lines and reuses the allocator, fine-tuning loop, and metrics unchanged.)\n");
  return 0;
}
