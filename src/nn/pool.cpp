#include "nn/pool.hpp"

#include <stdexcept>
#include <string>

namespace shrinkbench {

namespace {
// Pooling here has no padding, so the window grid must tile the input
// exactly; silently truncating a ragged edge ((in - kernel) % stride)
// would drop input columns/rows from both forward and backward without
// any indication. Reject it loudly instead.
int64_t pooled_extent(const std::string& name, int64_t in, int64_t kernel, int64_t stride) {
  if (in < kernel) {
    throw std::invalid_argument(name + ": input extent " + std::to_string(in) +
                                " smaller than kernel " + std::to_string(kernel));
  }
  if ((in - kernel) % stride != 0) {
    throw std::invalid_argument(
        name + ": input extent " + std::to_string(in) + " is not exactly tiled by kernel " +
        std::to_string(kernel) + " / stride " + std::to_string(stride) +
        " — pooling would silently drop the trailing " +
        std::to_string((in - kernel) % stride) + " element(s)");
  }
  return (in - kernel) / stride + 1;
}
void check_kernel_stride(const std::string& name, int64_t kernel, int64_t stride) {
  if (kernel < 1 || stride < 1) {
    throw std::invalid_argument(name + ": kernel and stride must be >= 1, got kernel=" +
                                std::to_string(kernel) + " stride=" + std::to_string(stride));
  }
}
void check_4d(const Tensor& x, const std::string& name) {
  if (x.dim() != 4) {
    throw std::invalid_argument(name + ": expected [N, C, H, W], got " + to_string(x.shape()));
  }
}
}  // namespace

MaxPool2d::MaxPool2d(std::string name, int64_t kernel, int64_t stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  check_kernel_stride(this->name(), kernel, stride);
}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  check_4d(x, name());
  const int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const int64_t oh = pooled_extent(name(), h, kernel_, stride_),
                ow = pooled_extent(name(), w, kernel_, stride_);
  Tensor y({n, c, oh, ow});
  if (train) {
    cached_in_shape_ = x.shape();
    argmax_.assign(static_cast<size_t>(y.numel()), 0);
  }
  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      const int64_t plane_base = (i * c + ch) * h * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
          // Seed best/best_idx from the window's own first element. With
          // a -inf seed and best_idx = 0, an all-NaN or all--inf window
          // (every `v > best` comparison false) kept best_idx = 0 and
          // backward routed this window's gradient to element 0 of the
          // whole batch tensor — a different image. Seeding keeps the
          // argmax inside the window, and a NaN seed sticks (NaN
          // comparisons are false), so NaN propagates to the output.
          const int64_t first = (oy * stride_) * w + ox * stride_;
          float best = plane[first];
          int64_t best_idx = plane_base + first;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              const int64_t yy = oy * stride_ + ky, xx = ox * stride_ + kx;
              const float v = plane[yy * w + xx];
              if (v > best) {
                best = v;
                best_idx = plane_base + yy * w + xx;
              }
            }
          }
          y.at(out_idx) = best;
          if (train) argmax_[static_cast<size_t>(out_idx)] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty()) throw std::logic_error(name() + ": backward before forward");
  Tensor dx(cached_in_shape_);
  for (int64_t i = 0, m = grad_out.numel(); i < m; ++i) {
    dx.at(argmax_[static_cast<size_t>(i)]) += grad_out.at(i);
  }
  return dx;
}

Shape MaxPool2d::output_sample_shape(const Shape& in) const {
  if (in.size() != 3) throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  return {in[0], pooled_extent(name(), in[1], kernel_, stride_),
          pooled_extent(name(), in[2], kernel_, stride_)};
}

AvgPool2d::AvgPool2d(std::string name, int64_t kernel, int64_t stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  check_kernel_stride(this->name(), kernel, stride);
}

Tensor AvgPool2d::forward(const Tensor& x, bool train) {
  check_4d(x, name());
  const int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const int64_t oh = pooled_extent(name(), h, kernel_, stride_),
                ow = pooled_extent(name(), w, kernel_, stride_);
  if (train) cached_in_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
          float s = 0.0f;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              s += plane[(oy * stride_ + ky) * w + ox * stride_ + kx];
            }
          }
          y.at(out_idx) = s * inv;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty()) throw std::logic_error(name() + ": backward before forward");
  const int64_t n = cached_in_shape_[0], c = cached_in_shape_[1], h = cached_in_shape_[2],
                w = cached_in_shape_[3];
  const int64_t oh = grad_out.size(2), ow = grad_out.size(3);
  Tensor dx(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      float* plane = dx.data() + (i * c + ch) * h * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
          const float g = grad_out.at(out_idx) * inv;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              plane[(oy * stride_ + ky) * w + ox * stride_ + kx] += g;
            }
          }
        }
      }
    }
  }
  return dx;
}

Shape AvgPool2d::output_sample_shape(const Shape& in) const {
  if (in.size() != 3) throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  return {in[0], pooled_extent(name(), in[1], kernel_, stride_),
          pooled_extent(name(), in[2], kernel_, stride_)};
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  check_4d(x, name());
  const int64_t n = x.size(0), c = x.size(1), spatial = x.size(2) * x.size(3);
  if (train) cached_in_shape_ = x.shape();
  Tensor y({n, c});
  const float inv = 1.0f / static_cast<float>(spatial);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = x.data() + (i * c + ch) * spatial;
      double s = 0.0;
      for (int64_t k = 0; k < spatial; ++k) s += src[k];
      y(i, ch) = static_cast<float>(s) * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty()) throw std::logic_error(name() + ": backward before forward");
  const int64_t n = cached_in_shape_[0], c = cached_in_shape_[1],
                spatial = cached_in_shape_[2] * cached_in_shape_[3];
  Tensor dx(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(spatial);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out(i, ch) * inv;
      float* dst = dx.data() + (i * c + ch) * spatial;
      for (int64_t k = 0; k < spatial; ++k) dst[k] = g;
    }
  }
  return dx;
}

Shape GlobalAvgPool::output_sample_shape(const Shape& in) const {
  if (in.size() != 3) throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  return {in[0]};
}

}  // namespace shrinkbench
