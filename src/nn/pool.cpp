#include "nn/pool.hpp"

#include <limits>
#include <stdexcept>

namespace shrinkbench {

namespace {
int64_t pooled_extent(int64_t in, int64_t kernel, int64_t stride) {
  return (in - kernel) / stride + 1;
}
void check_4d(const Tensor& x, const std::string& name) {
  if (x.dim() != 4) {
    throw std::invalid_argument(name + ": expected [N, C, H, W], got " + to_string(x.shape()));
  }
}
}  // namespace

MaxPool2d::MaxPool2d(std::string name, int64_t kernel, int64_t stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  check_4d(x, name());
  const int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const int64_t oh = pooled_extent(h, kernel_, stride_), ow = pooled_extent(w, kernel_, stride_);
  Tensor y({n, c, oh, ow});
  if (train) {
    cached_in_shape_ = x.shape();
    argmax_.assign(static_cast<size_t>(y.numel()), 0);
  }
  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      const int64_t plane_base = (i * c + ch) * h * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              const int64_t yy = oy * stride_ + ky, xx = ox * stride_ + kx;
              const float v = plane[yy * w + xx];
              if (v > best) {
                best = v;
                best_idx = plane_base + yy * w + xx;
              }
            }
          }
          y.at(out_idx) = best;
          if (train) argmax_[static_cast<size_t>(out_idx)] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty()) throw std::logic_error(name() + ": backward before forward");
  Tensor dx(cached_in_shape_);
  for (int64_t i = 0, m = grad_out.numel(); i < m; ++i) {
    dx.at(argmax_[static_cast<size_t>(i)]) += grad_out.at(i);
  }
  return dx;
}

Shape MaxPool2d::output_sample_shape(const Shape& in) const {
  if (in.size() != 3) throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  return {in[0], pooled_extent(in[1], kernel_, stride_), pooled_extent(in[2], kernel_, stride_)};
}

AvgPool2d::AvgPool2d(std::string name, int64_t kernel, int64_t stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {}

Tensor AvgPool2d::forward(const Tensor& x, bool train) {
  check_4d(x, name());
  const int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const int64_t oh = pooled_extent(h, kernel_, stride_), ow = pooled_extent(w, kernel_, stride_);
  if (train) cached_in_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
          float s = 0.0f;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              s += plane[(oy * stride_ + ky) * w + ox * stride_ + kx];
            }
          }
          y.at(out_idx) = s * inv;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty()) throw std::logic_error(name() + ": backward before forward");
  const int64_t n = cached_in_shape_[0], c = cached_in_shape_[1], h = cached_in_shape_[2],
                w = cached_in_shape_[3];
  const int64_t oh = grad_out.size(2), ow = grad_out.size(3);
  Tensor dx(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      float* plane = dx.data() + (i * c + ch) * h * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
          const float g = grad_out.at(out_idx) * inv;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              plane[(oy * stride_ + ky) * w + ox * stride_ + kx] += g;
            }
          }
        }
      }
    }
  }
  return dx;
}

Shape AvgPool2d::output_sample_shape(const Shape& in) const {
  if (in.size() != 3) throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  return {in[0], pooled_extent(in[1], kernel_, stride_), pooled_extent(in[2], kernel_, stride_)};
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  check_4d(x, name());
  const int64_t n = x.size(0), c = x.size(1), spatial = x.size(2) * x.size(3);
  if (train) cached_in_shape_ = x.shape();
  Tensor y({n, c});
  const float inv = 1.0f / static_cast<float>(spatial);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = x.data() + (i * c + ch) * spatial;
      double s = 0.0;
      for (int64_t k = 0; k < spatial; ++k) s += src[k];
      y(i, ch) = static_cast<float>(s) * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty()) throw std::logic_error(name() + ": backward before forward");
  const int64_t n = cached_in_shape_[0], c = cached_in_shape_[1],
                spatial = cached_in_shape_[2] * cached_in_shape_[3];
  Tensor dx(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(spatial);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out(i, ch) * inv;
      float* dst = dx.data() + (i * c + ch) * spatial;
      for (int64_t k = 0; k < spatial; ++k) dst[k] = g;
    }
  }
  return dx;
}

Shape GlobalAvgPool::output_sample_shape(const Shape& in) const {
  if (in.size() != 3) throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  return {in[0]};
}

}  // namespace shrinkbench
