// Layer abstraction.
//
// Layers own their parameters and their forward caches. A training step is:
//   y = layer.forward(x, /*train=*/true);   // caches what backward needs
//   dx = layer.backward(dy);                // accumulates into param grads
// backward() must be called at most once per forward() and only with
// train=true forwards. Containers (Sequential, ResidualBlock) compose
// leaves; traversal for metrics/pruning uses children() and the shape
// propagation hooks below.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.hpp"
#include "tensor/tensor.hpp"

namespace shrinkbench {

class Layer;

/// Observes each child layer's output during a container's forward pass.
/// Used by activation-statistics collection (activation-based pruning
/// scores) without entangling the layers themselves with bookkeeping.
using ForwardHook = std::function<void(Layer&, const Tensor& output)>;

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const { return name_; }

  /// x: [N, ...sample dims]. train=true caches activations for backward.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// grad_out: gradient of the loss w.r.t. this layer's output.
  /// Returns the gradient w.r.t. this layer's input and accumulates
  /// parameter gradients.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Appends pointers to this layer's (and children's) parameters.
  virtual void collect_params(std::vector<Parameter*>& out) { (void)out; }

  /// Direct children for traversal; empty for leaf layers.
  virtual std::vector<Layer*> children() { return {}; }

  /// Shape of one output sample given one input sample's shape (no batch dim).
  virtual Shape output_sample_shape(const Shape& in) const = 0;

  /// Multiply-adds per sample for an input of the given sample shape.
  /// Only conv and linear layers report nonzero counts, matching the
  /// FLOP conventions used in the paper's corpus.
  virtual int64_t flops(const Shape& in) const {
    (void)in;
    return 0;
  }

  /// Multiply-adds per sample counting only weights with mask == 1, i.e.
  /// the numerator of "theoretical speedup" after pruning.
  virtual int64_t effective_flops(const Shape& in) const { return flops(in); }

  /// Installs (or clears, with nullptr) a hook observing child outputs.
  /// Only containers invoke hooks; leaves ignore them. Containers
  /// propagate the hook to nested containers.
  virtual void set_forward_hook(ForwardHook hook) { (void)hook; }

 private:
  std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

/// All parameters of a layer tree, in deterministic traversal order.
std::vector<Parameter*> parameters_of(Layer& layer);

/// Zeroes all parameter gradients.
void zero_grads(Layer& layer);

/// Re-applies every parameter's mask (data ⊙= mask, grad ⊙= mask).
void apply_masks(Layer& layer);

/// Depth-first visit of every layer (containers first, then children).
void visit_layers(Layer& root, const std::function<void(Layer&)>& fn);

}  // namespace shrinkbench
