#include "nn/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "tensor/im2col.hpp"
#include "tensor/threadpool.hpp"
#include "tensor/workspace.hpp"

namespace shrinkbench {

namespace {

// Same fan-out floor as the dense conv path: chunks below this many
// touched elements stay on the calling thread.
constexpr int64_t kMinElemsPerChunk = int64_t{1} << 16;

int64_t work_grain(int64_t per_index_elems) {
  return std::max<int64_t>(1, kMinElemsPerChunk / std::max<int64_t>(per_index_elems, 1));
}

}  // namespace

CsrMatrix csr_from_dense(const float* dense, int64_t rows, int64_t cols, float tol) {
  // col_idx is int32_t; wider matrices would silently wrap the indices.
  if (cols > std::numeric_limits<int32_t>::max()) {
    throw std::invalid_argument("csr_from_dense: cols " + std::to_string(cols) +
                                " exceeds int32 column-index range");
  }
  CsrMatrix csr;
  csr.rows = rows;
  csr.cols = cols;
  csr.row_ptr.resize(static_cast<size_t>(rows) + 1, 0);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = dense + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      if (std::fabs(row[c]) > tol) {
        csr.col_idx.push_back(static_cast<int32_t>(c));
        csr.values.push_back(row[c]);
      }
    }
    csr.row_ptr[static_cast<size_t>(r) + 1] = static_cast<int64_t>(csr.values.size());
  }
  return csr;
}

CsrMatrix csr_from_parameter(const Parameter& param) {
  if (param.data.dim() < 2) {
    throw std::invalid_argument("csr_from_parameter: need rank >= 2 weight, got " +
                                to_string(param.data.shape()));
  }
  Tensor effective = param.data;
  ops::mul_inplace(effective, param.mask);
  const int64_t rows = effective.size(0);
  return csr_from_dense(effective.data(), rows, effective.numel() / rows);
}

void csr_matmul(const CsrMatrix& csr, const float* dense_in, int64_t n, float* dense_out) {
  // Rows are independent (each writes only its own out_row and reduces in
  // ascending-entry order within itself), so fanning out over static
  // contiguous row blocks is bit-identical to the serial loop for every
  // SB_THREADS — the thread-pool determinism contract. Grain is sized by
  // the average row's multiply-add work.
  const int64_t avg_row_work =
      csr.rows == 0 ? 0 : (csr.nnz() * n) / std::max<int64_t>(csr.rows, 1) + n;
  parallel_for(0, csr.rows, work_grain(avg_row_work), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float* out_row = dense_out + r * n;
      std::fill(out_row, out_row + n, 0.0f);
      const int64_t begin = csr.row_ptr[static_cast<size_t>(r)];
      const int64_t end = csr.row_ptr[static_cast<size_t>(r) + 1];
      for (int64_t e = begin; e < end; ++e) {
        const float v = csr.values[static_cast<size_t>(e)];
        const float* in_row = dense_in + csr.col_idx[static_cast<size_t>(e)] * n;
        for (int64_t j = 0; j < n; ++j) out_row[j] += v * in_row[j];
      }
    }
  });
}

Tensor csr_to_dense(const CsrMatrix& csr) {
  Tensor dense({csr.rows, csr.cols});
  for (int64_t r = 0; r < csr.rows; ++r) {
    for (int64_t e = csr.row_ptr[static_cast<size_t>(r)];
         e < csr.row_ptr[static_cast<size_t>(r) + 1]; ++e) {
      dense(r, csr.col_idx[static_cast<size_t>(e)]) = csr.values[static_cast<size_t>(e)];
    }
  }
  return dense;
}

SparseConv2dInference::SparseConv2dInference(Conv2d& conv)
    : conv_(conv),
      weights_(csr_from_parameter(conv.weight())),
      in_c_(conv.in_channels()),
      out_c_(conv.out_channels()),
      kernel_(conv.kernel()),
      stride_(conv.stride()),
      pad_(conv.padding()) {}

Tensor SparseConv2dInference::forward(const Tensor& x) const {
  if (x.dim() != 4 || x.size(1) != in_c_) {
    throw std::invalid_argument("SparseConv2dInference: bad input " + to_string(x.shape()));
  }
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const ConvGeometry g{in_c_, h, w, kernel_, kernel_, stride_, pad_};
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t ld = n * g.col_cols();
  const int64_t spatial = oh * ow;
  const int64_t image_numel = in_c_ * h * w;

  // Scratch lives in the thread-local arena (PR 3's dense-path pattern):
  // after warm-up, steady-state forwards perform zero heap allocations.
  Workspace::Scope scope;
  Workspace& ws = Workspace::tls();
  float* cols = ws.floats(static_cast<size_t>(g.col_rows() * ld));
  parallel_for(0, n, work_grain(g.col_rows() * g.col_cols()), [&](int64_t n0, int64_t n1) {
    for (int64_t i = n0; i < n1; ++i) {
      im2col_ld(g, x.data() + i * image_numel, cols + i * g.col_cols(), ld);
    }
  });
  float* out_cm = ws.floats(static_cast<size_t>(out_c_ * ld));
  csr_matmul(weights_, cols, ld, out_cm);

  Tensor y({n, out_c_, oh, ow});
  const float* bias = conv_.bias() != nullptr ? conv_.bias()->data.data() : nullptr;
  parallel_for(0, n, work_grain(out_c_ * spatial), [&](int64_t n0, int64_t n1) {
    for (int64_t i = n0; i < n1; ++i) {
      for (int64_t c = 0; c < out_c_; ++c) {
        const float* src = out_cm + c * ld + i * spatial;
        float* dst = y.data() + (i * out_c_ + c) * spatial;
        if (bias == nullptr) {
          std::copy(src, src + spatial, dst);
        } else {
          const float b = bias[c];
          for (int64_t s = 0; s < spatial; ++s) dst[s] = src[s] + b;
        }
      }
    }
  });
  return y;
}

SparseLinearInference::SparseLinearInference(Linear& linear)
    : linear_(linear), weights_(csr_from_parameter(linear.weight())) {}

Tensor SparseLinearInference::forward(const Tensor& x) const {
  if (x.dim() != 2 || x.size(1) != weights_.cols) {
    throw std::invalid_argument("SparseLinearInference: bad input " + to_string(x.shape()));
  }
  const int64_t n = x.size(0), in = weights_.cols, out = weights_.rows;
  // Workspace scratch: steady-state forwards allocate nothing on the heap.
  Workspace::Scope scope;
  Workspace& ws = Workspace::tls();
  // Transpose x to [in, n] so CSR rows stream over the batch dimension.
  float* xt = ws.floats(static_cast<size_t>(in * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < in; ++j) xt[static_cast<size_t>(j * n + i)] = x(i, j);
  }
  float* yt = ws.floats(static_cast<size_t>(out * n));
  csr_matmul(weights_, xt, n, yt);

  Tensor y({n, out});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < out; ++j) y(i, j) = yt[static_cast<size_t>(j * n + i)];
  }
  if (const Parameter* bias = linear_.bias()) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < out; ++j) y(i, j) += bias->data.at(j);
    }
  }
  return y;
}

}  // namespace shrinkbench
