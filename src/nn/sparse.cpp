#include "nn/sparse.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "tensor/im2col.hpp"

namespace shrinkbench {

CsrMatrix csr_from_dense(const float* dense, int64_t rows, int64_t cols, float tol) {
  // col_idx is int32_t; wider matrices would silently wrap the indices.
  if (cols > std::numeric_limits<int32_t>::max()) {
    throw std::invalid_argument("csr_from_dense: cols " + std::to_string(cols) +
                                " exceeds int32 column-index range");
  }
  CsrMatrix csr;
  csr.rows = rows;
  csr.cols = cols;
  csr.row_ptr.resize(static_cast<size_t>(rows) + 1, 0);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = dense + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      if (std::fabs(row[c]) > tol) {
        csr.col_idx.push_back(static_cast<int32_t>(c));
        csr.values.push_back(row[c]);
      }
    }
    csr.row_ptr[static_cast<size_t>(r) + 1] = static_cast<int64_t>(csr.values.size());
  }
  return csr;
}

CsrMatrix csr_from_parameter(const Parameter& param) {
  if (param.data.dim() < 2) {
    throw std::invalid_argument("csr_from_parameter: need rank >= 2 weight, got " +
                                to_string(param.data.shape()));
  }
  Tensor effective = param.data;
  ops::mul_inplace(effective, param.mask);
  const int64_t rows = effective.size(0);
  return csr_from_dense(effective.data(), rows, effective.numel() / rows);
}

void csr_matmul(const CsrMatrix& csr, const float* dense_in, int64_t n, float* dense_out) {
  for (int64_t r = 0; r < csr.rows; ++r) {
    float* out_row = dense_out + r * n;
    std::fill(out_row, out_row + n, 0.0f);
    const int64_t begin = csr.row_ptr[static_cast<size_t>(r)];
    const int64_t end = csr.row_ptr[static_cast<size_t>(r) + 1];
    for (int64_t e = begin; e < end; ++e) {
      const float v = csr.values[static_cast<size_t>(e)];
      const float* in_row = dense_in + csr.col_idx[static_cast<size_t>(e)] * n;
      for (int64_t j = 0; j < n; ++j) out_row[j] += v * in_row[j];
    }
  }
}

Tensor csr_to_dense(const CsrMatrix& csr) {
  Tensor dense({csr.rows, csr.cols});
  for (int64_t r = 0; r < csr.rows; ++r) {
    for (int64_t e = csr.row_ptr[static_cast<size_t>(r)];
         e < csr.row_ptr[static_cast<size_t>(r) + 1]; ++e) {
      dense(r, csr.col_idx[static_cast<size_t>(e)]) = csr.values[static_cast<size_t>(e)];
    }
  }
  return dense;
}

SparseConv2dInference::SparseConv2dInference(Conv2d& conv)
    : conv_(conv),
      weights_(csr_from_parameter(conv.weight())),
      in_c_(conv.in_channels()),
      out_c_(conv.out_channels()),
      kernel_(conv.kernel()),
      stride_(conv.stride()),
      pad_(conv.padding()) {}

Tensor SparseConv2dInference::forward(const Tensor& x) const {
  if (x.dim() != 4 || x.size(1) != in_c_) {
    throw std::invalid_argument("SparseConv2dInference: bad input " + to_string(x.shape()));
  }
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const ConvGeometry g{in_c_, h, w, kernel_, kernel_, stride_, pad_};
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t ld = n * g.col_cols();
  const int64_t spatial = oh * ow;
  const int64_t image_numel = in_c_ * h * w;

  std::vector<float> cols(static_cast<size_t>(g.col_rows() * ld));
  for (int64_t i = 0; i < n; ++i) {
    im2col_ld(g, x.data() + i * image_numel, cols.data() + i * g.col_cols(), ld);
  }
  std::vector<float> out_cm(static_cast<size_t>(out_c_ * ld));
  csr_matmul(weights_, cols.data(), ld, out_cm.data());

  Tensor y({n, out_c_, oh, ow});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < out_c_; ++c) {
      const float* src = out_cm.data() + c * ld + i * spatial;
      std::copy(src, src + spatial, y.data() + (i * out_c_ + c) * spatial);
    }
  }
  if (const Parameter* bias = conv_.bias()) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < out_c_; ++c) {
        float* dst = y.data() + (i * out_c_ + c) * spatial;
        for (int64_t s = 0; s < spatial; ++s) dst[s] += bias->data.at(c);
      }
    }
  }
  return y;
}

SparseLinearInference::SparseLinearInference(Linear& linear)
    : linear_(linear), weights_(csr_from_parameter(linear.weight())) {}

Tensor SparseLinearInference::forward(const Tensor& x) const {
  if (x.dim() != 2 || x.size(1) != weights_.cols) {
    throw std::invalid_argument("SparseLinearInference: bad input " + to_string(x.shape()));
  }
  const int64_t n = x.size(0), in = weights_.cols, out = weights_.rows;
  // Transpose x to [in, n] so CSR rows stream over the batch dimension.
  std::vector<float> xt(static_cast<size_t>(in * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < in; ++j) xt[static_cast<size_t>(j * n + i)] = x(i, j);
  }
  std::vector<float> yt(static_cast<size_t>(out * n));
  csr_matmul(weights_, xt.data(), n, yt.data());

  Tensor y({n, out});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < out; ++j) y(i, j) = yt[static_cast<size_t>(j * n + i)];
  }
  if (const Parameter* bias = linear_.bias()) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < out; ++j) y(i, j) += bias->data.at(j);
    }
  }
  return y;
}

}  // namespace shrinkbench
