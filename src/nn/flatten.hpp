// Flattens [N, ...] to [N, prod(...)].
#pragma once

#include "nn/layer.hpp"

namespace shrinkbench {

class Flatten : public Layer {
 public:
  explicit Flatten(std::string name) : Layer(std::move(name)) {}

  Tensor forward(const Tensor& x, bool train) override {
    if (train) cached_in_shape_ = x.shape();
    return x.reshaped({x.size(0), -1});
  }

  Tensor backward(const Tensor& grad_out) override {
    return grad_out.reshaped(cached_in_shape_);
  }

  Shape output_sample_shape(const Shape& in) const override { return {numel_of(in)}; }

 private:
  Shape cached_in_shape_;
};

}  // namespace shrinkbench
