#include "nn/layer.hpp"

namespace shrinkbench {

std::vector<Parameter*> parameters_of(Layer& layer) {
  std::vector<Parameter*> params;
  layer.collect_params(params);
  return params;
}

void zero_grads(Layer& layer) {
  for (Parameter* p : parameters_of(layer)) p->zero_grad();
}

void apply_masks(Layer& layer) {
  for (Parameter* p : parameters_of(layer)) p->apply_mask();
}

void visit_layers(Layer& root, const std::function<void(Layer&)>& fn) {
  fn(root);
  for (Layer* child : root.children()) visit_layers(*child, fn);
}

}  // namespace shrinkbench
