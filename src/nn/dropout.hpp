// Inverted dropout.
//
// Exists chiefly because of the paper's §5.1: many "VGG-16" papers
// actually evaluate a custom variant with added dropout (or batchnorm, or
// resized FC layers), making results incomparable. The model zoo exposes
// those variants explicitly, and bench/ablation_architecture_ambiguity
// measures how much the choice moves pruning results.
#pragma once

#include <atomic>

#include "nn/layer.hpp"
#include "tensor/rng.hpp"

namespace shrinkbench {

class Dropout : public Layer {
 public:
  /// p = probability of zeroing each activation during training. Inverted
  /// scaling (kept activations divided by 1-p) makes inference a no-op.
  /// The seed makes training runs reproducible.
  Dropout(std::string name, float p, uint64_t seed = 0xD09);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_sample_shape(const Shape& in) const override { return in; }

  float p() const { return p_; }

  /// Mask-draw stream snapshot/restore: training checkpoints capture it so
  /// a resumed run draws the same masks an uninterrupted one would.
  RngState rng_state() const { return rng_.state(); }
  void set_rng_state(const RngState& state) { rng_.set_state(state); }

 private:
  float p_;
  Rng rng_;
  Tensor cached_mask_;  // scaled keep-mask from the last training forward
  // False until a training forward draws a mask, and reset by every
  // eval-mode forward: backward must never reuse a mask that the most
  // recent forward did not apply. Atomic so concurrent eval-mode
  // forwards (parallel evaluate() batches) may share the layer.
  std::atomic<bool> mask_valid_{false};
};

}  // namespace shrinkbench
