// Softmax cross-entropy loss with integer class labels.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace shrinkbench {

class SoftmaxCrossEntropy {
 public:
  /// logits: [N, C]; labels: N entries in [0, C). Returns mean loss.
  float forward(const Tensor& logits, const std::vector<int>& labels);

  /// Gradient of the mean loss w.r.t. the logits: (softmax - onehot) / N.
  Tensor backward() const;

  /// Softmax probabilities from the last forward call ([N, C]).
  const Tensor& probs() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
  std::vector<double> exp_scratch_;  // per-row exp values, reused across calls
};

}  // namespace shrinkbench
