#include "nn/residual.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace shrinkbench {

ResidualBlock::ResidualBlock(std::string name, std::unique_ptr<Sequential> main,
                             std::unique_ptr<Sequential> shortcut, bool final_relu)
    : Layer(std::move(name)),
      main_(std::move(main)),
      shortcut_(std::move(shortcut)),
      final_relu_(final_relu) {
  if (!main_) throw std::invalid_argument("ResidualBlock: main path must not be null");
}

Tensor ResidualBlock::forward(const Tensor& x, bool train) {
  Tensor main_out = main_->forward(x, train);
  Tensor shortcut_out = shortcut_ ? shortcut_->forward(x, train) : x;
  ops::add_inplace(main_out, shortcut_out);
  if (final_relu_) {
    for (float& v : main_out.flat()) {
      if (v < 0.0f) v = 0.0f;
    }
  }
  if (train) cached_sum_ = main_out;
  return main_out;
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  if (cached_sum_.empty()) throw std::logic_error(name() + ": backward before forward");
  Tensor g = grad_out;
  if (final_relu_) {
    // ReLU backward on the summed activation.
    const float* y = cached_sum_.data();
    float* gp = g.data();
    for (int64_t i = 0, n = g.numel(); i < n; ++i) {
      if (y[i] <= 0.0f) gp[i] = 0.0f;
    }
  }
  Tensor dx = main_->backward(g);
  if (shortcut_) {
    ops::add_inplace(dx, shortcut_->backward(g));
  } else {
    ops::add_inplace(dx, g);
  }
  return dx;
}

void ResidualBlock::collect_params(std::vector<Parameter*>& out) {
  main_->collect_params(out);
  if (shortcut_) shortcut_->collect_params(out);
}

std::vector<Layer*> ResidualBlock::children() {
  std::vector<Layer*> out{main_.get()};
  if (shortcut_) out.push_back(shortcut_.get());
  return out;
}

Shape ResidualBlock::output_sample_shape(const Shape& in) const {
  return main_->output_sample_shape(in);
}

int64_t ResidualBlock::flops(const Shape& in) const {
  return main_->flops(in) + (shortcut_ ? shortcut_->flops(in) : 0);
}

int64_t ResidualBlock::effective_flops(const Shape& in) const {
  return main_->effective_flops(in) + (shortcut_ ? shortcut_->effective_flops(in) : 0);
}

}  // namespace shrinkbench
