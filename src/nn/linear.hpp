// Fully-connected layer: y = x W^T + b, weight shape [out, in].
#pragma once

#include "nn/layer.hpp"

namespace shrinkbench {

class Linear : public Layer {
 public:
  /// If is_classifier, the weight is flagged so pruning strategies skip it
  /// by default (paper, Appendix C.1).
  Linear(std::string name, int64_t in_features, int64_t out_features, bool bias = true,
         bool is_classifier = false);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Parameter*>& out) override;
  Shape output_sample_shape(const Shape& in) const override;
  int64_t flops(const Shape& in) const override;
  int64_t effective_flops(const Shape& in) const override;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  Parameter& weight() { return weight_; }
  Parameter* bias() { return has_bias_ ? &bias_ : nullptr; }

 private:
  int64_t in_, out_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace shrinkbench
