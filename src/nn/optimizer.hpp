// Optimizers.
//
// Both optimizers re-apply every parameter's pruning mask after updating,
// maintaining the library-wide invariant that pruned weights stay zero
// through fine-tuning (they receive gradients but the mask projects the
// update back onto the sparsity pattern).
//
// The paper's experimental setups (Appendix C.2) map onto these directly:
// CIFAR fine-tuning uses Adam(3e-4); ImageNet fine-tuning uses SGD with
// Nesterov momentum 0.9 and lr 1e-3.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nn/parameter.hpp"

namespace shrinkbench {

/// Serializable optimizer state for full training checkpoints: per-slot
/// tensors (SGD velocity, Adam first/second moments) keyed by
/// "<param name>.<slot>", plus named scalars (Adam's step count). `kind`
/// guards against loading one optimizer's state into another.
struct OptimizerState {
  std::string kind;
  std::vector<std::pair<std::string, Tensor>> slots;
  std::vector<std::pair<std::string, double>> scalars;
};

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void step() = 0;

  /// Snapshot / restore all mutable optimizer state (for training
  /// checkpoints). The base implementation covers stateless optimizers;
  /// load_state throws std::runtime_error on kind/shape mismatch.
  virtual OptimizerState state() const { return {"stateless", {}, {}}; }
  virtual void load_state(const OptimizerState& state);

  void zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
  }

  /// Global L2 norm of all gradients (accumulated in double). If
  /// `max_norm` > 0 and the norm is finite and exceeds it, every gradient
  /// is scaled by max_norm/norm. Returns the pre-clip norm — callers use
  /// a non-finite return as a divergence signal.
  double clip_global_grad_norm(float max_norm);

  /// Vectorizable finiteness scan over every gradient element: true iff
  /// no gradient holds a NaN/Inf. Cheap enough to run periodically as a
  /// training health check.
  bool grads_finite() const;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 protected:
  void enforce_masks() {
    for (Parameter* p : params_) p->apply_mask();
  }

  std::vector<Parameter*> params_;
  float lr_;
};

struct SgdOptions {
  float lr = 0.1f;
  float momentum = 0.0f;
  bool nesterov = false;
  float weight_decay = 0.0f;
};

class SGD : public Optimizer {
 public:
  SGD(std::vector<Parameter*> params, SgdOptions opts);
  void step() override;
  OptimizerState state() const override;
  void load_state(const OptimizerState& state) override;

 private:
  SgdOptions opts_;
  std::vector<Tensor> velocity_;
};

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, AdamOptions opts);
  void step() override;
  OptimizerState state() const override;
  void load_state(const OptimizerState& state) override;

 private:
  AdamOptions opts_;
  std::vector<Tensor> m_, v_;
  int64_t t_ = 0;
};

}  // namespace shrinkbench
