// Optimizers.
//
// Both optimizers re-apply every parameter's pruning mask after updating,
// maintaining the library-wide invariant that pruned weights stay zero
// through fine-tuning (they receive gradients but the mask projects the
// update back onto the sparsity pattern).
//
// The paper's experimental setups (Appendix C.2) map onto these directly:
// CIFAR fine-tuning uses Adam(3e-4); ImageNet fine-tuning uses SGD with
// Nesterov momentum 0.9 and lr 1e-3.
#pragma once

#include <vector>

#include "nn/parameter.hpp"

namespace shrinkbench {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void step() = 0;

  void zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
  }

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 protected:
  void enforce_masks() {
    for (Parameter* p : params_) p->apply_mask();
  }

  std::vector<Parameter*> params_;
  float lr_;
};

struct SgdOptions {
  float lr = 0.1f;
  float momentum = 0.0f;
  bool nesterov = false;
  float weight_decay = 0.0f;
};

class SGD : public Optimizer {
 public:
  SGD(std::vector<Parameter*> params, SgdOptions opts);
  void step() override;

 private:
  SgdOptions opts_;
  std::vector<Tensor> velocity_;
};

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, AdamOptions opts);
  void step() override;

 private:
  AdamOptions opts_;
  std::vector<Tensor> m_, v_;
  int64_t t_ = 0;
};

}  // namespace shrinkbench
