#include "nn/activations.hpp"

#include <stdexcept>

namespace shrinkbench {

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor y = x;
  for (float& v : y.flat()) {
    if (v < 0.0f) v = 0.0f;
  }
  if (train) cached_output_ = y;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (cached_output_.empty()) throw std::logic_error(name() + ": backward before forward");
  Tensor dx = grad_out;
  const float* y = cached_output_.data();
  float* d = dx.data();
  for (int64_t i = 0, n = dx.numel(); i < n; ++i) {
    if (y[i] <= 0.0f) d[i] = 0.0f;
  }
  return dx;
}

}  // namespace shrinkbench
