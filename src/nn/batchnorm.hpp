// Batch normalization over [N, C, H, W] inputs (per-channel statistics).
#pragma once

#include "nn/layer.hpp"

namespace shrinkbench {

class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(std::string name, int64_t channels, float eps = 1e-5f, float momentum = 0.1f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Parameter*>& out) override;
  Shape output_sample_shape(const Shape& in) const override;

  /// Running statistics are state, not trainable parameters; exposed for
  /// checkpointing.
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

  /// Affine parameters and epsilon, exposed so the serving compiler can
  /// fold eval-mode BN into the preceding conv/linear.
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  float eps() const { return eps_; }

 private:
  int64_t channels_;
  float eps_, momentum_;
  Parameter gamma_, beta_;
  Tensor running_mean_, running_var_;
  // Forward caches (training mode).
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
};

}  // namespace shrinkbench
