#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace shrinkbench {

float SoftmaxCrossEntropy::forward(const Tensor& logits, const std::vector<int>& labels) {
  if (logits.dim() != 2) throw std::invalid_argument("SoftmaxCrossEntropy: logits must be [N, C]");
  const int64_t n = logits.size(0), c = logits.size(1);
  if (static_cast<int64_t>(labels.size()) != n) {
    throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");
  }
  probs_ = Tensor({n, c});
  labels_ = labels;
  exp_scratch_.resize(static_cast<size_t>(c));
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float m = row[0];
    for (int64_t j = 1; j < c; ++j) m = std::max(m, row[j]);
    // Single exp pass: stash each exp(row[j] - m) while accumulating the
    // partition sum (exp dominates this loop; computing it again for the
    // probabilities would double the cost).
    double z = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      const double e = std::exp(static_cast<double>(row[j] - m));
      exp_scratch_[static_cast<size_t>(j)] = e;
      z += e;
    }
    const int label = labels[static_cast<size_t>(i)];
    if (label < 0 || label >= c) throw std::invalid_argument("SoftmaxCrossEntropy: bad label");
    float* prow = probs_.data() + i * c;
    for (int64_t j = 0; j < c; ++j) {
      prow[j] = static_cast<float>(exp_scratch_[static_cast<size_t>(j)] / z);
    }
    total += -(static_cast<double>(row[label] - m) - std::log(z));
  }
  return static_cast<float>(total / static_cast<double>(n));
}

Tensor SoftmaxCrossEntropy::backward() const {
  if (probs_.empty()) throw std::logic_error("SoftmaxCrossEntropy: backward before forward");
  const int64_t n = probs_.size(0), c = probs_.size(1);
  Tensor d = probs_;
  const float inv_n = 1.0f / static_cast<float>(n);
  float* dp = d.data();
  for (int64_t i = 0; i < n; ++i) {
    dp[i * c + labels_[static_cast<size_t>(i)]] -= 1.0f;
  }
  for (int64_t i = 0, m = d.numel(); i < m; ++i) dp[i] *= inv_n;
  return d;
}

}  // namespace shrinkbench
