#include "nn/checkpoint.hpp"

#include <fstream>
#include <map>
#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "tensor/serialize.hpp"

namespace shrinkbench {

namespace {
constexpr int64_t kCheckpointVersion = 2;

std::vector<BatchNorm2d*> batchnorms_of(Layer& model) {
  std::vector<BatchNorm2d*> bns;
  visit_layers(model, [&](Layer& l) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&l)) bns.push_back(bn);
  });
  return bns;
}
}  // namespace

void save_checkpoint(Layer& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_checkpoint: cannot open " + path);
  write_i64(os, kCheckpointVersion);

  const auto params = parameters_of(model);
  write_i64(os, static_cast<int64_t>(params.size()));
  for (const Parameter* p : params) {
    write_string(os, p->name);
    write_tensor(os, p->data);
    write_tensor(os, p->mask);
  }

  const auto bns = batchnorms_of(model);
  write_i64(os, static_cast<int64_t>(bns.size()));
  for (BatchNorm2d* bn : bns) {
    write_string(os, bn->name());
    write_tensor(os, bn->running_mean());
    write_tensor(os, bn->running_var());
  }
  if (!os) throw std::runtime_error("save_checkpoint: write failed for " + path);
}

void load_checkpoint(Layer& model, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_checkpoint: cannot open " + path);
  if (read_i64(is) != kCheckpointVersion) {
    throw std::runtime_error("load_checkpoint: version mismatch in " + path);
  }

  std::map<std::string, Parameter*> by_name;
  for (Parameter* p : parameters_of(model)) by_name[p->name] = p;

  const int64_t n_params = read_i64(is);
  for (int64_t i = 0; i < n_params; ++i) {
    const std::string name = read_string(is);
    Tensor data = read_tensor(is);
    Tensor mask = read_tensor(is);
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::runtime_error("load_checkpoint: unknown parameter '" + name + "'");
    }
    if (!it->second->data.same_shape(data)) {
      throw std::runtime_error("load_checkpoint: shape mismatch for '" + name + "'");
    }
    it->second->data = std::move(data);
    it->second->mask = std::move(mask);
  }

  std::map<std::string, BatchNorm2d*> bn_by_name;
  for (BatchNorm2d* bn : batchnorms_of(model)) bn_by_name[bn->name()] = bn;
  const int64_t n_bns = read_i64(is);
  for (int64_t i = 0; i < n_bns; ++i) {
    const std::string name = read_string(is);
    Tensor mean = read_tensor(is);
    Tensor var = read_tensor(is);
    auto it = bn_by_name.find(name);
    if (it == bn_by_name.end()) {
      throw std::runtime_error("load_checkpoint: unknown batchnorm '" + name + "'");
    }
    it->second->running_mean() = std::move(mean);
    it->second->running_var() = std::move(var);
  }
}

StateDict state_dict(Layer& model) {
  StateDict state;
  for (const Parameter* p : parameters_of(model)) {
    state[p->name] = p->data;
    state[p->name + ".mask"] = p->mask;
  }
  for (BatchNorm2d* bn : batchnorms_of(model)) {
    state[bn->name() + ".running_mean"] = bn->running_mean();
    state[bn->name() + ".running_var"] = bn->running_var();
  }
  return state;
}

void load_state_dict(Layer& model, const StateDict& state) {
  const auto fetch = [&](const std::string& key, const Shape& shape) -> const Tensor& {
    auto it = state.find(key);
    if (it == state.end()) throw std::runtime_error("load_state_dict: missing key '" + key + "'");
    if (it->second.shape() != shape) {
      throw std::runtime_error("load_state_dict: shape mismatch for '" + key + "'");
    }
    return it->second;
  };
  for (Parameter* p : parameters_of(model)) {
    p->data = fetch(p->name, p->data.shape());
    p->mask = fetch(p->name + ".mask", p->mask.shape());
  }
  for (BatchNorm2d* bn : batchnorms_of(model)) {
    bn->running_mean() = fetch(bn->name() + ".running_mean", bn->running_mean().shape());
    bn->running_var() = fetch(bn->name() + ".running_var", bn->running_var().shape());
  }
}

}  // namespace shrinkbench
