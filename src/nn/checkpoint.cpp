#include "nn/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/dropout.hpp"
#include "obs/io.hpp"
#include "obs/log.hpp"
#include "obs/profile.hpp"
#include "tensor/serialize.hpp"

namespace shrinkbench {

namespace {
constexpr int64_t kCheckpointVersion = 2;

std::vector<BatchNorm2d*> batchnorms_of(Layer& model) {
  std::vector<BatchNorm2d*> bns;
  visit_layers(model, [&](Layer& l) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&l)) bns.push_back(bn);
  });
  return bns;
}
}  // namespace

void save_checkpoint(Layer& model, const std::string& path) {
  // Serialized to a buffer and written atomically: a kill -9 mid-save
  // must never leave a torn .ckpt that a concurrent fleet worker (or the
  // next run) would find via exists() and fail to load.
  std::ostringstream os;
  write_i64(os, kCheckpointVersion);

  const auto params = parameters_of(model);
  write_i64(os, static_cast<int64_t>(params.size()));
  for (const Parameter* p : params) {
    write_string(os, p->name);
    write_tensor(os, p->data);
    write_tensor(os, p->mask);
  }

  const auto bns = batchnorms_of(model);
  write_i64(os, static_cast<int64_t>(bns.size()));
  for (BatchNorm2d* bn : bns) {
    write_string(os, bn->name());
    write_tensor(os, bn->running_mean());
    write_tensor(os, bn->running_var());
  }
  // Persist failures (full disk, unwritable dir) are non-fatal, matching
  // the result cache: the in-memory model is still good, only the cached
  // copy is skipped and the next run retrains.
  if (!os || !obs::atomic_write_file(path, os.str())) {
    obs::count("ckpt.write_failed");
    SB_LOG_WARN("ckpt", "could not persist checkpoint %s", path.c_str());
  }
}

void load_checkpoint(Layer& model, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_checkpoint: cannot open " + path);
  if (read_i64(is) != kCheckpointVersion) {
    throw std::runtime_error("load_checkpoint: version mismatch in " + path);
  }

  std::map<std::string, Parameter*> by_name;
  for (Parameter* p : parameters_of(model)) by_name[p->name] = p;

  const int64_t n_params = read_i64(is);
  for (int64_t i = 0; i < n_params; ++i) {
    const std::string name = read_string(is);
    Tensor data = read_tensor(is);
    Tensor mask = read_tensor(is);
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::runtime_error("load_checkpoint: unknown parameter '" + name + "'");
    }
    if (!it->second->data.same_shape(data)) {
      throw std::runtime_error("load_checkpoint: shape mismatch for '" + name + "'");
    }
    it->second->data = std::move(data);
    it->second->mask = std::move(mask);
  }

  std::map<std::string, BatchNorm2d*> bn_by_name;
  for (BatchNorm2d* bn : batchnorms_of(model)) bn_by_name[bn->name()] = bn;
  const int64_t n_bns = read_i64(is);
  for (int64_t i = 0; i < n_bns; ++i) {
    const std::string name = read_string(is);
    Tensor mean = read_tensor(is);
    Tensor var = read_tensor(is);
    auto it = bn_by_name.find(name);
    if (it == bn_by_name.end()) {
      throw std::runtime_error("load_checkpoint: unknown batchnorm '" + name + "'");
    }
    it->second->running_mean() = std::move(mean);
    it->second->running_var() = std::move(var);
  }
}

StateDict state_dict(Layer& model) {
  StateDict state;
  for (const Parameter* p : parameters_of(model)) {
    state[p->name] = p->data;
    state[p->name + ".mask"] = p->mask;
  }
  for (BatchNorm2d* bn : batchnorms_of(model)) {
    state[bn->name() + ".running_mean"] = bn->running_mean();
    state[bn->name() + ".running_var"] = bn->running_var();
  }
  return state;
}

void load_state_dict(Layer& model, const StateDict& state) {
  const auto fetch = [&](const std::string& key, const Shape& shape) -> const Tensor& {
    auto it = state.find(key);
    if (it == state.end()) throw std::runtime_error("load_state_dict: missing key '" + key + "'");
    if (it->second.shape() != shape) {
      throw std::runtime_error("load_state_dict: shape mismatch for '" + key + "'");
    }
    return it->second;
  };
  for (Parameter* p : parameters_of(model)) {
    p->data = fetch(p->name, p->data.shape());
    p->mask = fetch(p->name + ".mask", p->mask.shape());
  }
  for (BatchNorm2d* bn : batchnorms_of(model)) {
    bn->running_mean() = fetch(bn->name() + ".running_mean", bn->running_mean().shape());
    bn->running_var() = fetch(bn->name() + ".running_var", bn->running_var().shape());
  }
}

// ---- full training checkpoints ----

namespace {

constexpr int64_t kTrainCkptMagic = 0x5342434b50543031;  // "SBCKPT01"
constexpr int64_t kTrainCkptVersion = 1;

namespace fs = std::filesystem;

void write_state_dict(std::ostream& os, const StateDict& state) {
  write_i64(os, static_cast<int64_t>(state.size()));
  for (const auto& [key, tensor] : state) {
    write_string(os, key);
    write_tensor(os, tensor);
  }
}

bool state_dicts_identical(const StateDict& a, const StateDict& b) {
  if (a.size() != b.size()) return false;
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first) return false;
    if (ia->second.shape() != ib->second.shape()) return false;
    if (std::memcmp(ia->second.data(), ib->second.data(),
                    static_cast<size_t>(ia->second.numel()) * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

StateDict read_state_dict(std::istream& is) {
  StateDict state;
  const int64_t n = read_i64(is);
  if (n < 0 || n > (1 << 20)) throw std::runtime_error("read_state_dict: implausible size");
  for (int64_t i = 0; i < n; ++i) {
    std::string key = read_string(is);
    Tensor t = read_tensor(is);
    state.emplace(std::move(key), std::move(t));
  }
  return state;
}

void write_rng_state(std::ostream& os, const RngState& s) {
  for (const uint64_t word : s.s) write_u64(os, word);
  write_f64(os, s.cached_normal);
  write_i64(os, s.has_cached_normal ? 1 : 0);
}

RngState read_rng_state(std::istream& is) {
  RngState s;
  for (uint64_t& word : s.s) word = read_u64(is);
  s.cached_normal = read_f64(is);
  s.has_cached_normal = read_i64(is) != 0;
  return s;
}

void serialize_train_checkpoint(std::ostream& os, const TrainCheckpoint& c) {
  write_i64(os, kTrainCkptMagic);
  write_i64(os, kTrainCkptVersion);
  write_i64(os, c.epoch);
  write_f64(os, c.lr_scale);
  write_state_dict(os, c.model);
  // At every epoch where validation just improved, best_state is a byte
  // copy of the model dict — write a 1-flag instead of a second full dict.
  const bool best_is_model = state_dicts_identical(c.best_state, c.model);
  write_i64(os, best_is_model ? 1 : 0);
  if (!best_is_model) write_state_dict(os, c.best_state);
  write_string(os, c.optimizer.kind);
  write_i64(os, static_cast<int64_t>(c.optimizer.slots.size()));
  for (const auto& [name, tensor] : c.optimizer.slots) {
    write_string(os, name);
    write_tensor(os, tensor);
  }
  write_i64(os, static_cast<int64_t>(c.optimizer.scalars.size()));
  for (const auto& [name, value] : c.optimizer.scalars) {
    write_string(os, name);
    write_f64(os, value);
  }
  write_rng_state(os, c.loader_shuffle_rng);
  write_rng_state(os, c.loader_augment_rng);
  write_i64(os, static_cast<int64_t>(c.layer_rng.size()));
  for (const auto& [name, state] : c.layer_rng) {
    write_string(os, name);
    write_rng_state(os, state);
  }
  write_i64(os, static_cast<int64_t>(c.history.size()));
  for (const TrainCheckpoint::Epoch& e : c.history) {
    write_i64(os, e.epoch);
    write_f64(os, e.train_loss);
    write_f64(os, e.val_top1);
    write_f64(os, e.val_loss);
  }
  write_f64(os, c.best_val_top1);
  write_i64(os, c.best_epoch);
  write_i64(os, c.epochs_since_best);
  write_i64(os, c.stopped_early ? 1 : 0);
  write_i64(os, c.anomalies);
  write_i64(os, c.skipped_batches);
  write_i64(os, c.rollbacks);
}

TrainCheckpoint parse_train_checkpoint(std::istream& is) {
  if (read_i64(is) != kTrainCkptMagic) throw std::runtime_error("train checkpoint: bad magic");
  if (read_i64(is) != kTrainCkptVersion) {
    throw std::runtime_error("train checkpoint: version mismatch");
  }
  TrainCheckpoint c;
  c.epoch = read_i64(is);
  c.lr_scale = read_f64(is);
  c.model = read_state_dict(is);
  const bool best_is_model = read_i64(is) != 0;
  c.best_state = best_is_model ? c.model : read_state_dict(is);
  c.optimizer.kind = read_string(is);
  const int64_t n_slots = read_i64(is);
  if (n_slots < 0 || n_slots > (1 << 20)) throw std::runtime_error("train checkpoint: slots");
  for (int64_t i = 0; i < n_slots; ++i) {
    std::string name = read_string(is);
    Tensor t = read_tensor(is);
    c.optimizer.slots.emplace_back(std::move(name), std::move(t));
  }
  const int64_t n_scalars = read_i64(is);
  if (n_scalars < 0 || n_scalars > (1 << 20)) throw std::runtime_error("train checkpoint: scalars");
  for (int64_t i = 0; i < n_scalars; ++i) {
    std::string name = read_string(is);
    const double value = read_f64(is);
    c.optimizer.scalars.emplace_back(std::move(name), value);
  }
  c.loader_shuffle_rng = read_rng_state(is);
  c.loader_augment_rng = read_rng_state(is);
  const int64_t n_layers = read_i64(is);
  if (n_layers < 0 || n_layers > (1 << 20)) throw std::runtime_error("train checkpoint: layers");
  for (int64_t i = 0; i < n_layers; ++i) {
    std::string name = read_string(is);
    const RngState state = read_rng_state(is);
    c.layer_rng.emplace_back(std::move(name), state);
  }
  const int64_t n_epochs = read_i64(is);
  if (n_epochs < 0 || n_epochs > (1 << 24)) throw std::runtime_error("train checkpoint: history");
  for (int64_t i = 0; i < n_epochs; ++i) {
    TrainCheckpoint::Epoch e;
    e.epoch = read_i64(is);
    e.train_loss = read_f64(is);
    e.val_top1 = read_f64(is);
    e.val_loss = read_f64(is);
    c.history.push_back(e);
  }
  c.best_val_top1 = read_f64(is);
  c.best_epoch = read_i64(is);
  c.epochs_since_best = read_i64(is);
  c.stopped_early = read_i64(is) != 0;
  c.anomalies = read_i64(is);
  c.skipped_batches = read_i64(is);
  c.rollbacks = read_i64(is);
  return c;
}

void quarantine_checkpoint(const fs::path& path) {
  fs::path corrupt = path;
  corrupt += ".corrupt";
  std::error_code ec;
  fs::rename(path, corrupt, ec);
  if (ec) fs::remove(path, ec);
  obs::count("ckpt.corrupt");
  SB_LOG_WARN("ckpt", "corrupt training checkpoint quarantined to %s",
              corrupt.string().c_str());
}

/// Epoch index encoded in a checkpoint filename, or -1 if the name does
/// not match "ep<digits>.ckpt".
int64_t checkpoint_epoch_of(const fs::path& path) {
  const std::string name = path.filename().string();
  if (name.size() < 8 || name.rfind("ep", 0) != 0) return -1;
  if (path.extension() != ".ckpt") return -1;
  const std::string digits = name.substr(2, name.size() - 2 - 5);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return std::strtoll(digits.c_str(), nullptr, 10);
}

}  // namespace

std::string train_checkpoint_path(const std::string& dir, int64_t epoch) {
  char name[32];
  std::snprintf(name, sizeof(name), "ep%06lld.ckpt", static_cast<long long>(epoch));
  return (fs::path(dir) / name).string();
}

bool save_train_checkpoint(const TrainCheckpoint& ckpt, const std::string& dir, int keep) {
  SB_PROFILE_SCOPE("ckpt_save");
  std::string payload;
  {
    SB_PROFILE_SCOPE("ckpt_serialize");
    std::ostringstream os;
    serialize_train_checkpoint(os, ckpt);
    payload = os.str();
  }
  // Checksum before fault injection: a corrupted payload must fail its CRC
  // on read, exactly like real bit rot.
  uint64_t crc;
  {
    SB_PROFILE_SCOPE("ckpt_crc");
    crc = obs::fnv1a64(payload);
  }
  if (obs::fault_point("ckpt.corrupt") && !payload.empty()) {
    payload[payload.size() / 2] ^= 0x20;
  }
  char footer[8];
  for (int i = 0; i < 8; ++i) footer[i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  payload.append(footer, sizeof(footer));

  const std::string path = train_checkpoint_path(dir, ckpt.epoch);
  SB_PROFILE_SCOPE("ckpt_write");
  if (!obs::atomic_write_file(path, payload)) {
    obs::count("ckpt.write_failed");
    SB_LOG_WARN("ckpt", "could not persist training checkpoint %s", path.c_str());
    return false;
  }
  obs::count("ckpt.saved");

  // Prune older checkpoints, newest `keep` survive (>= 2 keeps a fallback
  // for the corruption path).
  std::vector<int64_t> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const int64_t e = checkpoint_epoch_of(entry.path());
    if (e >= 0) epochs.push_back(e);
  }
  std::sort(epochs.rbegin(), epochs.rend());
  for (size_t i = static_cast<size_t>(std::max(keep, 1)); i < epochs.size(); ++i) {
    fs::remove(train_checkpoint_path(dir, epochs[i]), ec);
  }
  return true;
}

bool load_train_checkpoint(const std::string& path, TrainCheckpoint& ckpt) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string bytes = buf.str();
  if (bytes.size() < 8) {
    quarantine_checkpoint(path);
    return false;
  }
  uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[bytes.size() - 8 + i]))
              << (8 * i);
  }
  bytes.resize(bytes.size() - 8);
  if (obs::fnv1a64(bytes) != stored) {
    quarantine_checkpoint(path);
    return false;
  }
  try {
    std::istringstream payload(bytes);
    ckpt = parse_train_checkpoint(payload);
  } catch (const std::exception& e) {
    SB_LOG_WARN("ckpt", "checkpoint %s passed its CRC but failed to parse: %s", path.c_str(),
                e.what());
    quarantine_checkpoint(path);
    return false;
  }
  return true;
}

bool load_latest_train_checkpoint(const std::string& dir, TrainCheckpoint& ckpt) {
  std::vector<int64_t> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const int64_t e = checkpoint_epoch_of(entry.path());
    if (e >= 0) epochs.push_back(e);
  }
  std::sort(epochs.rbegin(), epochs.rend());
  for (const int64_t epoch : epochs) {
    if (load_train_checkpoint(train_checkpoint_path(dir, epoch), ckpt)) return true;
    SB_LOG_WARN("ckpt", "falling back past corrupt checkpoint for epoch %lld in %s",
                static_cast<long long>(epoch), dir.c_str());
  }
  return false;
}

std::vector<std::pair<std::string, RngState>> layer_rng_states(Layer& model) {
  std::vector<std::pair<std::string, RngState>> states;
  visit_layers(model, [&](Layer& l) {
    if (auto* drop = dynamic_cast<Dropout*>(&l)) {
      states.emplace_back(drop->name(), drop->rng_state());
    }
  });
  return states;
}

void load_layer_rng_states(Layer& model,
                           const std::vector<std::pair<std::string, RngState>>& states) {
  visit_layers(model, [&](Layer& l) {
    auto* drop = dynamic_cast<Dropout*>(&l);
    if (!drop) return;
    for (const auto& [name, state] : states) {
      if (name == drop->name()) {
        drop->set_rng_state(state);
        return;
      }
    }
    throw std::runtime_error("load_layer_rng_states: missing stream for '" + drop->name() + "'");
  });
}

}  // namespace shrinkbench
