// Weight initialization.
#pragma once

#include "nn/layer.hpp"
#include "tensor/rng.hpp"

namespace shrinkbench {

/// Kaiming-He normal init: N(0, sqrt(2 / fan_in)), where fan_in for a conv
/// weight [out_c, in_c, kh, kw] is in_c*kh*kw and for a linear weight
/// [out, in] is in.
void kaiming_normal(Tensor& weight, Rng& rng);

/// Xavier/Glorot uniform init: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& weight, Rng& rng);

/// Initializes every prunable weight in the tree with Kaiming-He normal and
/// leaves biases / batchnorm affines at their constructor defaults.
void init_model(Layer& model, Rng& rng);

}  // namespace shrinkbench
