// Spatial pooling layers over [N, C, H, W].
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace shrinkbench {

class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::string name, int64_t kernel, int64_t stride);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_sample_shape(const Shape& in) const override;

  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t kernel_, stride_;
  Shape cached_in_shape_;
  std::vector<int64_t> argmax_;  // flat input index of each output's max
};

class AvgPool2d : public Layer {
 public:
  AvgPool2d(std::string name, int64_t kernel, int64_t stride);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_sample_shape(const Shape& in) const override;

  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t kernel_, stride_;
  Shape cached_in_shape_;
};

/// Averages over all spatial positions: [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_sample_shape(const Shape& in) const override;

 private:
  Shape cached_in_shape_;
};

}  // namespace shrinkbench
