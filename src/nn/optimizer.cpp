#include "nn/optimizer.hpp"

#include <cmath>

namespace shrinkbench {

SGD::SGD(std::vector<Parameter*> params, SgdOptions opts)
    : Optimizer(std::move(params), opts.lr), opts_(opts) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->data.shape());
}

void SGD::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& vel = velocity_[i];
    float* w = p.data.data();
    const float* g = p.grad.data();
    float* v = vel.data();
    const float lr = lr_;
    const float mu = opts_.momentum;
    const float wd = opts_.weight_decay;
    for (int64_t j = 0, n = p.numel(); j < n; ++j) {
      float grad = g[j] + wd * w[j];
      if (mu != 0.0f) {
        v[j] = mu * v[j] + grad;
        grad = opts_.nesterov ? grad + mu * v[j] : v[j];
      }
      w[j] -= lr * grad;
    }
  }
  enforce_masks();
}

Adam::Adam(std::vector<Parameter*> params, AdamOptions opts)
    : Optimizer(std::move(params), opts.lr), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->data.shape());
    v_.emplace_back(p->data.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(opts_.beta2, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    float* w = p.data.data();
    const float* g = p.grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (int64_t j = 0, n = p.numel(); j < n; ++j) {
      const float grad = g[j] + opts_.weight_decay * w[j];
      m[j] = opts_.beta1 * m[j] + (1.0f - opts_.beta1) * grad;
      v[j] = opts_.beta2 * v[j] + (1.0f - opts_.beta2) * grad * grad;
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
  enforce_masks();
}

}  // namespace shrinkbench
