#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace shrinkbench {

namespace {

/// Fetches the slot tensors for `suffix` out of a checkpointed state in
/// parameter order, validating names and shapes.
void load_slots(const OptimizerState& state, const std::vector<Parameter*>& params,
                const std::string& suffix, std::vector<Tensor>& out) {
  for (size_t i = 0; i < params.size(); ++i) {
    const std::string key = params[i]->name + suffix;
    const Tensor* found = nullptr;
    for (const auto& [name, tensor] : state.slots) {
      if (name == key) {
        found = &tensor;
        break;
      }
    }
    if (!found) throw std::runtime_error("Optimizer::load_state: missing slot '" + key + "'");
    if (!found->same_shape(params[i]->data)) {
      throw std::runtime_error("Optimizer::load_state: shape mismatch for slot '" + key + "'");
    }
    out[i] = *found;
  }
}

}  // namespace

void Optimizer::load_state(const OptimizerState& state) {
  if (state.kind != "stateless") {
    throw std::runtime_error("Optimizer::load_state: expected kind 'stateless', got '" +
                             state.kind + "'");
  }
}

double Optimizer::clip_global_grad_norm(float max_norm) {
  double sum_sq = 0.0;
  for (const Parameter* p : params_) {
    const float* g = p->grad.data();
    for (int64_t j = 0, n = p->numel(); j < n; ++j) {
      sum_sq += static_cast<double>(g[j]) * static_cast<double>(g[j]);
    }
  }
  const double norm = std::sqrt(sum_sq);
  if (max_norm > 0.0f && std::isfinite(norm) && norm > static_cast<double>(max_norm)) {
    const float scale = static_cast<float>(static_cast<double>(max_norm) / norm);
    for (Parameter* p : params_) {
      float* g = p->grad.data();
      for (int64_t j = 0, n = p->numel(); j < n; ++j) g[j] *= scale;
    }
  }
  return norm;
}

bool Optimizer::grads_finite() const {
  // Branch-free scan: x * 0 is 0 for every finite x and NaN for NaN/Inf,
  // so the accumulator stays exactly 0 iff every element is finite. The
  // loop has no branches or calls and auto-vectorizes.
  float acc = 0.0f;
  for (const Parameter* p : params_) {
    const float* g = p->grad.data();
    for (int64_t j = 0, n = p->numel(); j < n; ++j) acc += g[j] * 0.0f;
  }
  return acc == 0.0f;
}

SGD::SGD(std::vector<Parameter*> params, SgdOptions opts)
    : Optimizer(std::move(params), opts.lr), opts_(opts) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->data.shape());
}

void SGD::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& vel = velocity_[i];
    float* w = p.data.data();
    const float* g = p.grad.data();
    float* v = vel.data();
    const float lr = lr_;
    const float mu = opts_.momentum;
    const float wd = opts_.weight_decay;
    for (int64_t j = 0, n = p.numel(); j < n; ++j) {
      float grad = g[j] + wd * w[j];
      if (mu != 0.0f) {
        v[j] = mu * v[j] + grad;
        grad = opts_.nesterov ? grad + mu * v[j] : v[j];
      }
      w[j] -= lr * grad;
    }
  }
  enforce_masks();
}

OptimizerState SGD::state() const {
  OptimizerState s;
  s.kind = "sgd";
  s.slots.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    s.slots.emplace_back(params_[i]->name + ".velocity", velocity_[i]);
  }
  return s;
}

void SGD::load_state(const OptimizerState& state) {
  if (state.kind != "sgd") {
    throw std::runtime_error("SGD::load_state: expected kind 'sgd', got '" + state.kind + "'");
  }
  load_slots(state, params_, ".velocity", velocity_);
}

Adam::Adam(std::vector<Parameter*> params, AdamOptions opts)
    : Optimizer(std::move(params), opts.lr), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->data.shape());
    v_.emplace_back(p->data.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(opts_.beta2, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    float* w = p.data.data();
    const float* g = p.grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (int64_t j = 0, n = p.numel(); j < n; ++j) {
      const float grad = g[j] + opts_.weight_decay * w[j];
      m[j] = opts_.beta1 * m[j] + (1.0f - opts_.beta1) * grad;
      v[j] = opts_.beta2 * v[j] + (1.0f - opts_.beta2) * grad * grad;
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
  enforce_masks();
}

OptimizerState Adam::state() const {
  OptimizerState s;
  s.kind = "adam";
  s.slots.reserve(2 * params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    s.slots.emplace_back(params_[i]->name + ".m", m_[i]);
    s.slots.emplace_back(params_[i]->name + ".v", v_[i]);
  }
  s.scalars.emplace_back("t", static_cast<double>(t_));
  return s;
}

void Adam::load_state(const OptimizerState& state) {
  if (state.kind != "adam") {
    throw std::runtime_error("Adam::load_state: expected kind 'adam', got '" + state.kind + "'");
  }
  load_slots(state, params_, ".m", m_);
  load_slots(state, params_, ".v", v_);
  bool have_t = false;
  for (const auto& [name, value] : state.scalars) {
    if (name == "t") {
      t_ = static_cast<int64_t>(value);
      have_t = true;
    }
  }
  if (!have_t) throw std::runtime_error("Adam::load_state: missing scalar 't'");
}

}  // namespace shrinkbench
