// Sparse inference kernels.
//
// The paper (§2.3) notes that unstructured pruning "may not be arranged in
// a fashion conducive to speedups using modern libraries and hardware" —
// parameter and FLOP counts are proxies, not wall-clock. This module makes
// that claim measurable in-repo: masked weights can be compiled to CSR and
// executed with sparse kernels, and bench/ablation_sparse_inference
// locates the sparsity level where sparse execution actually overtakes the
// dense kernels (typically far above the 50-75% a "2-4x compression"
// headline suggests).
//
// Inference-only: backward is intentionally unsupported.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "tensor/tensor.hpp"

namespace shrinkbench {

/// Compressed sparse row matrix over float32.
struct CsrMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int64_t> row_ptr;   // rows + 1 entries
  std::vector<int32_t> col_idx;   // nnz entries
  std::vector<float> values;      // nnz entries

  int64_t nnz() const { return static_cast<int64_t>(values.size()); }
  double density() const {
    return rows * cols == 0 ? 0.0 : static_cast<double>(nnz()) / (rows * cols);
  }
};

/// Builds CSR from a dense row-major matrix, dropping entries where
/// |value| <= tol (masked weights are exactly zero, so tol = 0 suffices).
CsrMatrix csr_from_dense(const float* dense, int64_t rows, int64_t cols, float tol = 0.0f);

/// Builds CSR from a parameter's effective weights: data ⊙ mask flattened
/// to [rows = size(0), cols = numel/size(0)].
CsrMatrix csr_from_parameter(const Parameter& param);

/// dense_out[rows, n] = csr[rows, cols] * dense_in[cols, n]; out must be
/// preallocated, is overwritten.
void csr_matmul(const CsrMatrix& csr, const float* dense_in, int64_t n, float* dense_out);

/// Reconstructs the dense matrix (for tests).
Tensor csr_to_dense(const CsrMatrix& csr);

/// Inference-only sparse view of a trained+pruned Conv2d: weights are
/// frozen into CSR at construction; forward lowers via the same batched
/// im2col as the dense layer but multiplies with the sparse kernel.
class SparseConv2dInference {
 public:
  explicit SparseConv2dInference(Conv2d& conv);

  Tensor forward(const Tensor& x) const;
  double density() const { return weights_.density(); }

 private:
  Conv2d& conv_;
  CsrMatrix weights_;  // [out_c, in_c*kh*kw]
  int64_t in_c_, out_c_, kernel_, stride_, pad_;
};

/// Inference-only sparse view of a pruned Linear layer.
class SparseLinearInference {
 public:
  explicit SparseLinearInference(Linear& linear);

  Tensor forward(const Tensor& x) const;  // x: [N, in]
  double density() const { return weights_.density(); }

 private:
  Linear& linear_;
  CsrMatrix weights_;  // [out, in]
};

}  // namespace shrinkbench
