// Residual block: y = relu(main(x) + shortcut(x)).
//
// main is conv-bn-relu-conv-bn (built by src/models); shortcut is identity
// or a projection (1x1 strided conv + bn) when shape changes. This is the
// He et al. (2016a) "v1" basic block — the paper's Section 5.1 points out
// that "ResNet-56" is ambiguous between v1 and v2; we implement v1 and say
// so, which is exactly the disambiguation the paper asks authors for.
#pragma once

#include "nn/sequential.hpp"

namespace shrinkbench {

class ResidualBlock : public Layer {
 public:
  /// shortcut may be null (identity). final_relu=true gives the v1 block
  /// (He et al. 2016a); false gives the pre-activation v2 residual sum
  /// (He et al. 2016b), where activations live inside the main path.
  ResidualBlock(std::string name, std::unique_ptr<Sequential> main,
                std::unique_ptr<Sequential> shortcut, bool final_relu = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Parameter*>& out) override;
  std::vector<Layer*> children() override;
  Shape output_sample_shape(const Shape& in) const override;
  int64_t flops(const Shape& in) const override;
  int64_t effective_flops(const Shape& in) const override;

  void set_forward_hook(ForwardHook hook) override {
    main_->set_forward_hook(hook);
    if (shortcut_) shortcut_->set_forward_hook(hook);
  }

  /// Structural accessors for compilers that re-emit the block (serve).
  Sequential* main() { return main_.get(); }
  Sequential* shortcut() { return shortcut_.get(); }  // null => identity
  bool final_relu() const { return final_relu_; }

 private:
  std::unique_ptr<Sequential> main_;
  std::unique_ptr<Sequential> shortcut_;  // null => identity
  bool final_relu_;
  Tensor cached_sum_;                     // pre-ReLU sum, for ReLU backward
};

}  // namespace shrinkbench
