#include "nn/batchnorm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/threadpool.hpp"
#include "tensor/workspace.hpp"

namespace shrinkbench {

namespace {
// Floor on elements per parallel chunk for the per-channel / per-plane
// loops below; every chunk owns whole channels or whole (sample,
// channel) planes, so the partition cannot change any output bit.
constexpr int64_t kMinElemsPerChunk = int64_t{1} << 16;

int64_t chunk_grain(int64_t per_index_elems) {
  return std::max<int64_t>(1, kMinElemsPerChunk / std::max<int64_t>(per_index_elems, 1));
}
}  // namespace

BatchNorm2d::BatchNorm2d(std::string name, int64_t channels, float eps, float momentum)
    : Layer(std::move(name)),
      channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(this->name() + ".gamma", {channels}, /*prunable=*/false),
      beta_(this->name() + ".beta", {channels}, /*prunable=*/false),
      running_mean_({channels}),
      running_var_(Tensor::ones({channels})) {
  gamma_.data.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  if (x.dim() != 4 || x.size(1) != channels_) {
    throw std::invalid_argument(name() + ": expected [N, " + std::to_string(channels_) +
                                ", H, W], got " + to_string(x.shape()));
  }
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const int64_t spatial = h * w;
  const int64_t per_channel = n * spatial;
  const size_t nc = static_cast<size_t>(channels_);

  Tensor y(x.shape());
  if (train) {
    cached_xhat_ = Tensor(x.shape());
    cached_inv_std_.assign(nc, 0.0f);
  }

  // Per-channel stats live in arena scratch; both passes then stream the
  // NCHW data in memory order instead of striding per channel.
  Workspace::Scope scope;
  Workspace& ws = Workspace::tls();
  float* mean = ws.floats(nc);
  float* inv_std = ws.floats(nc);

  if (train) {
    double* sum = static_cast<double*>(ws.get(nc * sizeof(double)));
    double* sum2 = static_cast<double*>(ws.get(nc * sizeof(double)));
    std::memset(sum, 0, nc * sizeof(double));
    std::memset(sum2, 0, nc * sizeof(double));
    // Channel-outer so each sum[c] is owned by one chunk and accumulates
    // its per-sample partials in ascending-i order — the same order as a
    // sample-outer loop, hence bit-identical for any thread count.
    parallel_for(0, channels_, chunk_grain(per_channel), [&](int64_t c0, int64_t c1) {
      for (int64_t c = c0; c < c1; ++c) {
        for (int64_t i = 0; i < n; ++i) {
          const float* src = x.data() + (i * channels_ + c) * spatial;
          double s = 0.0, s2 = 0.0;
          for (int64_t k = 0; k < spatial; ++k) {
            s += src[k];
            s2 += static_cast<double>(src[k]) * src[k];
          }
          sum[c] += s;
          sum2[c] += s2;
        }
      }
    });
    for (int64_t c = 0; c < channels_; ++c) {
      const float m = static_cast<float>(sum[c] / per_channel);
      float var = static_cast<float>(sum2[c] / per_channel - static_cast<double>(m) * m);
      if (var < 0.0f) var = 0.0f;  // guard against FP cancellation
      running_mean_.at(c) = (1.0f - momentum_) * running_mean_.at(c) + momentum_ * m;
      running_var_.at(c) = (1.0f - momentum_) * running_var_.at(c) + momentum_ * var;
      mean[c] = m;
      inv_std[c] = 1.0f / std::sqrt(var + eps_);
      cached_inv_std_[static_cast<size_t>(c)] = inv_std[c];
    }
  } else {
    for (int64_t c = 0; c < channels_; ++c) {
      mean[c] = running_mean_.at(c);
      inv_std[c] = 1.0f / std::sqrt(running_var_.at(c) + eps_);
    }
  }

  // Normalize pass: each (sample, channel) plane is written by exactly
  // one chunk, so the fan-out cannot change any output bit.
  parallel_for(0, n * channels_, chunk_grain(spatial), [&](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t c = p % channels_;
      const float* src = x.data() + p * spatial;
      float* dst = y.data() + p * spatial;
      float* xh = train ? cached_xhat_.data() + p * spatial : nullptr;
      const float m = mean[c], is = inv_std[c];
      const float g = gamma_.data.at(c), b = beta_.data.at(c);
      for (int64_t k = 0; k < spatial; ++k) {
        const float xhat = (src[k] - m) * is;
        if (xh) xh[k] = xhat;
        dst[k] = g * xhat + b;
      }
    }
  });
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  if (cached_xhat_.empty()) throw std::logic_error(name() + ": backward before forward(train)");
  const int64_t n = grad_out.size(0), h = grad_out.size(2), w = grad_out.size(3);
  const int64_t spatial = h * w;
  const int64_t per_channel = n * spatial;
  const size_t nc = static_cast<size_t>(channels_);

  // Channel-wise sums Σdy and Σdy·x̂, accumulated in memory order.
  Workspace::Scope scope;
  Workspace& ws = Workspace::tls();
  double* sum_dy = static_cast<double*>(ws.get(nc * sizeof(double)));
  double* sum_dy_xhat = static_cast<double*>(ws.get(nc * sizeof(double)));
  std::memset(sum_dy, 0, nc * sizeof(double));
  std::memset(sum_dy_xhat, 0, nc * sizeof(double));
  // Channel-outer: each channel's sums are owned by one chunk and keep
  // the ascending-i accumulation order of the sequential loop.
  parallel_for(0, channels_, chunk_grain(per_channel), [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      for (int64_t i = 0; i < n; ++i) {
        const float* dy = grad_out.data() + (i * channels_ + c) * spatial;
        const float* xh = cached_xhat_.data() + (i * channels_ + c) * spatial;
        double s = 0.0, sx = 0.0;
        for (int64_t k = 0; k < spatial; ++k) {
          s += dy[k];
          sx += static_cast<double>(dy[k]) * xh[k];
        }
        sum_dy[c] += s;
        sum_dy_xhat[c] += sx;
      }
    }
  });

  float* scale = ws.floats(nc);
  float* mean_dy = ws.floats(nc);
  float* mean_dy_xhat = ws.floats(nc);
  for (int64_t c = 0; c < channels_; ++c) {
    gamma_.grad.at(c) += static_cast<float>(sum_dy_xhat[c]);
    beta_.grad.at(c) += static_cast<float>(sum_dy[c]);
    scale[c] = gamma_.data.at(c) * cached_inv_std_[static_cast<size_t>(c)];
    mean_dy[c] = static_cast<float>(sum_dy[c] / per_channel);
    mean_dy_xhat[c] = static_cast<float>(sum_dy_xhat[c] / per_channel);
  }

  Tensor dx(grad_out.shape());
  parallel_for(0, n * channels_, chunk_grain(spatial), [&](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t c = p % channels_;
      const float* dy = grad_out.data() + p * spatial;
      const float* xh = cached_xhat_.data() + p * spatial;
      float* dst = dx.data() + p * spatial;
      const float sc = scale[c], mdy = mean_dy[c], mdyx = mean_dy_xhat[c];
      for (int64_t k = 0; k < spatial; ++k) {
        dst[k] = sc * (dy[k] - mdy - xh[k] * mdyx);
      }
    }
  });
  return dx;
}

void BatchNorm2d::collect_params(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

Shape BatchNorm2d::output_sample_shape(const Shape& in) const {
  if (in.size() != 3 || in[0] != channels_) {
    throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  }
  return in;
}

}  // namespace shrinkbench
