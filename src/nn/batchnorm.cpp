#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace shrinkbench {

BatchNorm2d::BatchNorm2d(std::string name, int64_t channels, float eps, float momentum)
    : Layer(std::move(name)),
      channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(this->name() + ".gamma", {channels}, /*prunable=*/false),
      beta_(this->name() + ".beta", {channels}, /*prunable=*/false),
      running_mean_({channels}),
      running_var_(Tensor::ones({channels})) {
  gamma_.data.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  if (x.dim() != 4 || x.size(1) != channels_) {
    throw std::invalid_argument(name() + ": expected [N, " + std::to_string(channels_) +
                                ", H, W], got " + to_string(x.shape()));
  }
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const int64_t spatial = h * w;
  const int64_t per_channel = n * spatial;

  Tensor y(x.shape());
  if (train) {
    cached_xhat_ = Tensor(x.shape());
    cached_inv_std_.assign(static_cast<size_t>(channels_), 0.0f);
  }

  for (int64_t c = 0; c < channels_; ++c) {
    float mean, var;
    if (train) {
      double s = 0.0, s2 = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const float* src = x.data() + (i * channels_ + c) * spatial;
        for (int64_t k = 0; k < spatial; ++k) {
          s += src[k];
          s2 += static_cast<double>(src[k]) * src[k];
        }
      }
      mean = static_cast<float>(s / per_channel);
      var = static_cast<float>(s2 / per_channel - static_cast<double>(mean) * mean);
      if (var < 0.0f) var = 0.0f;  // guard against FP cancellation
      running_mean_.at(c) = (1.0f - momentum_) * running_mean_.at(c) + momentum_ * mean;
      running_var_.at(c) = (1.0f - momentum_) * running_var_.at(c) + momentum_ * var;
    } else {
      mean = running_mean_.at(c);
      var = running_var_.at(c);
    }
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    const float g = gamma_.data.at(c), b = beta_.data.at(c);
    if (train) cached_inv_std_[static_cast<size_t>(c)] = inv_std;
    for (int64_t i = 0; i < n; ++i) {
      const float* src = x.data() + (i * channels_ + c) * spatial;
      float* dst = y.data() + (i * channels_ + c) * spatial;
      float* xh = train ? cached_xhat_.data() + (i * channels_ + c) * spatial : nullptr;
      for (int64_t k = 0; k < spatial; ++k) {
        const float xhat = (src[k] - mean) * inv_std;
        if (xh) xh[k] = xhat;
        dst[k] = g * xhat + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  if (cached_xhat_.empty()) throw std::logic_error(name() + ": backward before forward(train)");
  const int64_t n = grad_out.size(0), h = grad_out.size(2), w = grad_out.size(3);
  const int64_t spatial = h * w;
  const int64_t per_channel = n * spatial;

  Tensor dx(grad_out.shape());
  for (int64_t c = 0; c < channels_; ++c) {
    // Channel-wise sums: Σdy and Σdy·x̂.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const float* dy = grad_out.data() + (i * channels_ + c) * spatial;
      const float* xh = cached_xhat_.data() + (i * channels_ + c) * spatial;
      for (int64_t k = 0; k < spatial; ++k) {
        sum_dy += dy[k];
        sum_dy_xhat += static_cast<double>(dy[k]) * xh[k];
      }
    }
    gamma_.grad.at(c) += static_cast<float>(sum_dy_xhat);
    beta_.grad.at(c) += static_cast<float>(sum_dy);

    const float g = gamma_.data.at(c);
    const float inv_std = cached_inv_std_[static_cast<size_t>(c)];
    const float mean_dy = static_cast<float>(sum_dy / per_channel);
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / per_channel);
    const float scale = g * inv_std;
    for (int64_t i = 0; i < n; ++i) {
      const float* dy = grad_out.data() + (i * channels_ + c) * spatial;
      const float* xh = cached_xhat_.data() + (i * channels_ + c) * spatial;
      float* dst = dx.data() + (i * channels_ + c) * spatial;
      for (int64_t k = 0; k < spatial; ++k) {
        dst[k] = scale * (dy[k] - mean_dy - xh[k] * mean_dy_xhat);
      }
    }
  }
  return dx;
}

void BatchNorm2d::collect_params(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

Shape BatchNorm2d::output_sample_shape(const Shape& in) const {
  if (in.size() != 3 || in[0] != channels_) {
    throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  }
  return in;
}

}  // namespace shrinkbench
