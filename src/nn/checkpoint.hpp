// Model checkpointing: parameters, masks, and batchnorm running statistics.
//
// Checkpoints are keyed by parameter/layer name, so a freshly constructed
// model of the same architecture can always load a checkpoint regardless of
// how it was built. Used by the PretrainedStore (src/core) so every bench
// and example reuses the same initial models — the paper's "use the same
// initial model" best practice.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.hpp"
#include "nn/optimizer.hpp"
#include "tensor/rng.hpp"

namespace shrinkbench {

void save_checkpoint(Layer& model, const std::string& path);

/// Throws std::runtime_error on shape/name mismatch or unreadable file.
void load_checkpoint(Layer& model, const std::string& path);

/// In-memory snapshot of all state needed to restore a model exactly:
/// parameter data, masks, and batchnorm running statistics. Keys are
/// "<name>", "<name>.mask", "<bn name>.running_mean/var".
using StateDict = std::map<std::string, Tensor>;

StateDict state_dict(Layer& model);

/// Restores a snapshot; throws std::runtime_error on missing keys or shape
/// mismatches.
void load_state_dict(Layer& model, const StateDict& state);

// ---- full training checkpoints ----
//
// A TrainCheckpoint captures *everything* a training loop needs to resume
// bit-identically at an epoch boundary: model StateDict (parameters +
// masks + batchnorm running stats), best-so-far weights, optimizer slots
// (SGD velocity / Adam moments + step count), the data loader's RNG
// streams, per-layer RNG streams (dropout mask draws), the training curve
// so far, and early-stopping / anomaly-recovery bookkeeping.
//
// On-disk format (version 1): binary payload via tensor/serialize,
// followed by an 8-byte little-endian fnv1a64 checksum of the payload —
// the same CRC discipline as the result cache. Files are written through
// obs::atomic_write_file, so a crash leaves the previous checkpoint
// intact; a torn or bit-rotted file fails its checksum on read, is
// quarantined to `<file>.corrupt`, and the loader falls back to the
// previous checkpoint in the directory.

struct TrainCheckpoint {
  /// History record mirroring core's EpochRecord (redeclared here so the
  /// nn layer does not depend on core).
  struct Epoch {
    int64_t epoch = 0;
    double train_loss = 0.0;
    double val_top1 = 0.0;
    double val_loss = 0.0;
  };

  int64_t epoch = -1;     ///< last completed epoch index
  double lr_scale = 1.0;  ///< anomaly-recovery LR multiplier (1 = untouched)

  StateDict model;
  StateDict best_state;  ///< empty when restore_best is off
  OptimizerState optimizer;
  RngState loader_shuffle_rng;
  RngState loader_augment_rng;
  /// Per-layer RNG streams (currently dropout), keyed by layer name.
  std::vector<std::pair<std::string, RngState>> layer_rng;

  std::vector<Epoch> history;
  double best_val_top1 = 0.0;
  int64_t best_epoch = -1;
  int64_t epochs_since_best = 0;
  bool stopped_early = false;

  // Anomaly bookkeeping (monotone across rollbacks).
  int64_t anomalies = 0;
  int64_t skipped_batches = 0;
  int64_t rollbacks = 0;
};

/// Path of the checkpoint file for `epoch` inside `dir`.
std::string train_checkpoint_path(const std::string& dir, int64_t epoch);

/// Atomically writes `ckpt` to train_checkpoint_path(dir, ckpt.epoch) and
/// prunes older checkpoints, keeping the newest `keep` (>= 1; the
/// previous one survives as the corruption fallback). Returns false if
/// the write failed (training continues, only durability is lost).
bool save_train_checkpoint(const TrainCheckpoint& ckpt, const std::string& dir, int keep = 2);

/// Loads one checkpoint file. Returns false on missing file; a corrupt
/// file (bad checksum / truncated / unparseable) is quarantined to
/// `<path>.corrupt` and also returns false.
bool load_train_checkpoint(const std::string& path, TrainCheckpoint& ckpt);

/// Scans `dir` for checkpoints and loads the newest valid one,
/// quarantining corrupt files and falling back to older epochs. Returns
/// false when no valid checkpoint exists.
bool load_latest_train_checkpoint(const std::string& dir, TrainCheckpoint& ckpt);

/// Snapshot / restore of every RNG-bearing layer's stream (dropout mask
/// draws), keyed by layer name — part of the bit-identical-resume
/// contract for architectures with stochastic layers.
std::vector<std::pair<std::string, RngState>> layer_rng_states(Layer& model);
void load_layer_rng_states(Layer& model,
                           const std::vector<std::pair<std::string, RngState>>& states);

}  // namespace shrinkbench
