// Model checkpointing: parameters, masks, and batchnorm running statistics.
//
// Checkpoints are keyed by parameter/layer name, so a freshly constructed
// model of the same architecture can always load a checkpoint regardless of
// how it was built. Used by the PretrainedStore (src/core) so every bench
// and example reuses the same initial models — the paper's "use the same
// initial model" best practice.
#pragma once

#include <map>
#include <string>

#include "nn/layer.hpp"

namespace shrinkbench {

void save_checkpoint(Layer& model, const std::string& path);

/// Throws std::runtime_error on shape/name mismatch or unreadable file.
void load_checkpoint(Layer& model, const std::string& path);

/// In-memory snapshot of all state needed to restore a model exactly:
/// parameter data, masks, and batchnorm running statistics. Keys are
/// "<name>", "<name>.mask", "<bn name>.running_mean/var".
using StateDict = std::map<std::string, Tensor>;

StateDict state_dict(Layer& model);

/// Restores a snapshot; throws std::runtime_error on missing keys or shape
/// mismatches.
void load_state_dict(Layer& model, const StateDict& state);

}  // namespace shrinkbench
