// Ordered composition of layers. Sequential is also the "model" type:
// every network in src/models is a Sequential whose elements may themselves
// be containers (e.g. ResidualBlock).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.hpp"

namespace shrinkbench {

class Sequential : public Layer {
 public:
  explicit Sequential(std::string name) : Layer(std::move(name)) {}

  /// Appends a layer; returns a reference for fluent building.
  Sequential& add(LayerPtr layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
    return *this;
  }

  Tensor forward(const Tensor& x, bool train) override {
    Tensor h = x;
    for (auto& layer : layers_) {
      h = layer->forward(h, train);
      if (hook_) hook_(*layer, h);
    }
    return h;
  }

  void set_forward_hook(ForwardHook hook) override {
    hook_ = hook;
    for (auto& layer : layers_) layer->set_forward_hook(hook);
  }

  Tensor backward(const Tensor& grad_out) override {
    Tensor g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
    return g;
  }

  void collect_params(std::vector<Parameter*>& out) override {
    for (auto& layer : layers_) layer->collect_params(out);
  }

  std::vector<Layer*> children() override {
    std::vector<Layer*> out;
    out.reserve(layers_.size());
    for (auto& layer : layers_) out.push_back(layer.get());
    return out;
  }

  Shape output_sample_shape(const Shape& in) const override {
    Shape s = in;
    for (const auto& layer : layers_) s = layer->output_sample_shape(s);
    return s;
  }

  int64_t flops(const Shape& in) const override {
    Shape s = in;
    int64_t total = 0;
    for (const auto& layer : layers_) {
      total += layer->flops(s);
      s = layer->output_sample_shape(s);
    }
    return total;
  }

  int64_t effective_flops(const Shape& in) const override {
    Shape s = in;
    int64_t total = 0;
    for (const auto& layer : layers_) {
      total += layer->effective_flops(s);
      s = layer->output_sample_shape(s);
    }
    return total;
  }

  size_t size() const { return layers_.size(); }
  Layer& operator[](size_t i) { return *layers_[i]; }

 private:
  std::vector<LayerPtr> layers_;
  ForwardHook hook_;
};

using Model = Sequential;
using ModelPtr = std::unique_ptr<Sequential>;

}  // namespace shrinkbench
