#include "nn/conv2d.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/profile.hpp"
#include "tensor/gemm.hpp"
#include "tensor/threadpool.hpp"
#include "tensor/workspace.hpp"

namespace shrinkbench {

namespace {

// SB_CONV_CACHE_COLS=1 keeps the forward column matrix alive for the
// backward pass instead of recomputing im2col — a speed-vs-memory toggle
// (the cache costs col_rows * n * col_cols floats per conv layer).
bool cache_cols_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("SB_CONV_CACHE_COLS");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

// Per-sample loops fan out over the pool with this floor on elements per
// chunk; samples are disjoint, so partitioning cannot change any value.
constexpr int64_t kMinElemsPerChunk = int64_t{1} << 16;

// Floor on output channels per fused-grid tile: below this the per-tile
// GEMM degenerates to a few kernel rows and the restaged im2col columns
// dominate. Only reached at batch sizes below the pool width, where the
// channel axis is the only parallelism left.
constexpr int64_t kMinOcPerTile = 4;

int64_t sample_grain(int64_t per_sample_elems) {
  return std::max<int64_t>(1, kMinElemsPerChunk / std::max<int64_t>(per_sample_elems, 1));
}

// Gathers NCHW activations [n, c, oh*ow] into channel-major [c, n*oh*ow]
// (and scatters back), so a whole minibatch becomes one GEMM operand.
void gather_channel_major(const float* nchw, int64_t n, int64_t c, int64_t spatial, float* cm) {
  parallel_for(0, n, sample_grain(c * spatial), [&](int64_t n0, int64_t n1) {
    for (int64_t i = n0; i < n1; ++i) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* src = nchw + (i * c + ch) * spatial;
        std::copy(src, src + spatial, cm + ch * (n * spatial) + i * spatial);
      }
    }
  });
}

// The scatter direction fuses the per-channel bias add (bias == nullptr
// for bias-free layers), saving a second full pass over the output.
void scatter_channel_major(const float* cm, int64_t n, int64_t c, int64_t spatial, float* nchw,
                           const float* bias) {
  parallel_for(0, n, sample_grain(c * spatial), [&](int64_t n0, int64_t n1) {
    for (int64_t i = n0; i < n1; ++i) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* src = cm + ch * (n * spatial) + i * spatial;
        float* dst = nchw + (i * c + ch) * spatial;
        if (bias == nullptr) {
          std::copy(src, src + spatial, dst);
        } else {
          const float b = bias[ch];
          for (int64_t s = 0; s < spatial; ++s) dst[s] = src[s] + b;
        }
      }
    }
  });
}

}  // namespace

Conv2d::Conv2d(std::string name, int64_t in_c, int64_t out_c, int64_t kernel, int64_t stride,
               int64_t pad, bool bias)
    : Layer(std::move(name)),
      in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      weight_(this->name() + ".weight", {out_c, in_c, kernel, kernel}, /*prunable=*/true) {
  if (has_bias_) bias_ = Parameter(this->name() + ".bias", {out_c}, /*prunable=*/false);
}

ConvGeometry Conv2d::geometry(int64_t h, int64_t w) const {
  return ConvGeometry{in_c_, h, w, kernel_, kernel_, stride_, pad_};
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  SB_PROFILE_SCOPE("conv2d.fwd");
  if (obs::profiling_enabled()) obs::count("conv2d.fwd.calls");
  if (x.dim() != 4 || x.size(1) != in_c_) {
    throw std::invalid_argument(name() + ": expected [N, " + std::to_string(in_c_) +
                                ", H, W], got " + to_string(x.shape()));
  }
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const ConvGeometry g = geometry(h, w);
  const int64_t oh = g.out_h(), ow = g.out_w();
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument(name() + ": input " + to_string(x.shape()) + " too small");
  }
  if (train) cached_input_ = x;

  const int64_t ld = n * g.col_cols();
  const int64_t image_numel = in_c_ * h * w;
  const int64_t spatial = oh * ow;
  const int64_t col_rows = g.col_rows();
  const float* bias = has_bias_ ? bias_.data.data() : nullptr;
  Tensor y({n, out_c_, oh, ow});

  const bool keep_cols = train && cache_cols_enabled();
  if (keep_cols) {
    // SB_CONV_CACHE_COLS=1 training forward: backward reuses the full
    // batched column matrix, so the lowering stays monolithic — a fused
    // tile would stage its columns into the thread-local arena and
    // discard them. Member storage (grow-only) survives until backward.
    Workspace::Scope scope;
    Workspace& ws = Workspace::tls();
    cached_cols_.resize(static_cast<size_t>(col_rows * ld));
    float* cols = cached_cols_.data();
    cached_cols_valid_ = true;
    parallel_for(0, n, sample_grain(col_rows * spatial), [&](int64_t n0, int64_t n1) {
      for (int64_t i = n0; i < n1; ++i) {
        im2col_ld(g, x.data() + i * image_numel, cols + i * spatial, ld);
      }
    });
    float* out_cm = ws.floats(static_cast<size_t>(out_c_ * ld));
    gemm(false, false, out_c_, ld, col_rows, 1.0f, weight_.data.data(), col_rows, cols, ld, 0.0f,
         out_cm, ld);
    scatter_channel_major(out_cm, n, out_c_, spatial, y.data(), bias);
    return y;
  }
  // Only a training forward may touch the validity flag: eval-mode
  // forward must stay write-free so concurrent evaluate() batches can
  // share one model, and the (cached_input_, cached_cols_) pair from
  // the last training forward stays mutually consistent for backward.
  if (train) cached_cols_valid_ = false;

  // Fused (sample × out-channel-tile) grid. Each tile stages im2col for
  // its samples into the thread-local arena and immediately runs its
  // weight rows' sub-GEMM plus the bias scatter while the columns are
  // cache-hot. The channel axis splits only when samples alone cannot
  // fill the pool (the batch-1 serving case the old per-sample split
  // starved). Bit-identity: tile outputs are disjoint y regions, the k
  // reduction stays whole inside every tile, and the block kernel
  // accumulates k in the same ascending order for any (m, n) subrange —
  // so y matches the monolithic GEMM bit for bit at every thread count.
  const Grid2d grid(n, out_c_, 1, kMinOcPerTile, ThreadPool::instance().threads());
  parallel_for(0, grid.tiles(), 1, [&](int64_t t_lo, int64_t t_hi) {
    Workspace& ws = Workspace::tls();
    int64_t t = t_lo;
    while (t < t_hi) {
      // Tile ids are channel-fastest, so consecutive tiles of one sample
      // range arrive back to back: stage that range's columns once and
      // reuse them for every channel tile this chunk owns in the row.
      const int64_t i0 = grid.tile0(t);
      const Grid2d::Range s = grid.range0(i0);
      const int64_t row_end = std::min(t_hi, (i0 + 1) * grid.tiles1());
      const int64_t tile_ld = (s.hi - s.lo) * spatial;
      Workspace::Scope stage;  // LIFO: reclaimed before the next sample range
      float* cols = ws.floats(static_cast<size_t>(col_rows * tile_ld));
      for (int64_t i = s.lo; i < s.hi; ++i) {
        im2col_ld(g, x.data() + i * image_numel, cols + (i - s.lo) * spatial, tile_ld);
      }
      for (; t < row_end; ++t) {
        const Grid2d::Range cr = grid.range1(grid.tile1(t));
        Workspace::Scope out_scope;
        float* out_cm = ws.floats(static_cast<size_t>((cr.hi - cr.lo) * tile_ld));
        gemm(false, false, cr.hi - cr.lo, tile_ld, col_rows, 1.0f,
             weight_.data.data() + cr.lo * col_rows, col_rows, cols, tile_ld, 0.0f, out_cm,
             tile_ld);
        for (int64_t c = cr.lo; c < cr.hi; ++c) {
          const float* src_c = out_cm + (c - cr.lo) * tile_ld;
          for (int64_t i = s.lo; i < s.hi; ++i) {
            const float* src = src_c + (i - s.lo) * spatial;
            float* dst = y.data() + (i * out_c_ + c) * spatial;
            if (bias == nullptr) {
              std::copy(src, src + spatial, dst);
            } else {
              const float b = bias[c];
              for (int64_t sp = 0; sp < spatial; ++sp) dst[sp] = src[sp] + b;
            }
          }
        }
      }
    }
  });
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  SB_PROFILE_SCOPE("conv2d.bwd");
  if (obs::profiling_enabled()) obs::count("conv2d.bwd.calls");
  if (cached_input_.empty()) throw std::logic_error(name() + ": backward before forward");
  const Tensor& x = cached_input_;
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const ConvGeometry g = geometry(h, w);
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t image_numel = in_c_ * h * w;
  const int64_t spatial = oh * ow;
  const int64_t ld = n * g.col_cols();

  Workspace::Scope scope;
  Workspace& ws = Workspace::tls();
  const float* cols;
  if (cached_cols_valid_) {
    // SB_CONV_CACHE_COLS=1: reuse the forward column matrix.
    if (obs::profiling_enabled()) obs::count("conv2d.cols_cache.hits");
    cols = cached_cols_.data();
  } else {
    // Recompute the batched column matrix (cheaper than caching it in
    // memory-constrained runs; see SB_CONV_CACHE_COLS).
    float* scratch = ws.floats(static_cast<size_t>(g.col_rows() * ld));
    parallel_for(0, n, sample_grain(g.col_rows() * g.col_cols()), [&](int64_t n0, int64_t n1) {
      for (int64_t i = n0; i < n1; ++i) {
        im2col_ld(g, x.data() + i * image_numel, scratch + i * g.col_cols(), ld);
      }
    });
    cols = scratch;
  }
  float* dy_cm = ws.floats(static_cast<size_t>(out_c_ * ld));
  gather_channel_major(grad_out.data(), n, out_c_, spatial, dy_cm);

  // dW += dY [out_c, n*ohw] * cols^T [n*ohw, cK2]. Every dW element
  // reduces over the full n*ohw axis — the k axis spans all samples —
  // so this product cannot join the sample-tiled grid below without
  // splitting a reduction; it stays the monolithic block-grid GEMM.
  gemm(false, /*trans_b=*/true, out_c_, g.col_rows(), ld, 1.0f, dy_cm, ld, cols, ld, 1.0f,
       weight_.grad.data(), g.col_rows());

  // dX: dcols = Wᵀ·dY and its col2im scatter fused over a (sample ×
  // in-channel-tile) grid. Each tile computes only its own rows and
  // sample columns of dcols into the thread-local arena and scatters
  // them while cache-hot, instead of materialising the full [col_rows,
  // n*ohw] matrix and re-walking it. The out_c reduction stays whole
  // inside every tile and col2im's per-(sample, channel) accumulation
  // order is untouched, so dx is bit-identical to the monolithic product
  // at every thread count.
  Tensor dx(x.shape());
  const int64_t kk = kernel_ * kernel_;
  const int64_t plane = h * w;
  const Grid2d grid(n, in_c_, 1, 1, ThreadPool::instance().threads());
  parallel_for(0, grid.tiles(), 1, [&](int64_t t_lo, int64_t t_hi) {
    Workspace& tws = Workspace::tls();
    for (int64_t t = t_lo; t < t_hi; ++t) {
      const Grid2d::Range s = grid.range0(grid.tile0(t));
      const Grid2d::Range cr = grid.range1(grid.tile1(t));
      const int64_t tile_ld = (s.hi - s.lo) * spatial;
      const int64_t rows = (cr.hi - cr.lo) * kk;
      Workspace::Scope tile_scope;
      float* dcols = tws.floats(static_cast<size_t>(rows * tile_ld));
      // op(A) = Wᵀ is [col_rows, out_c] with op(A)[r, p] = W[p*lda + r]:
      // its row range [cr.lo*kk, cr.hi*kk) is the pointer offset
      // weight + cr.lo*kk at the same lda.
      gemm(/*trans_a=*/true, false, rows, tile_ld, out_c_, 1.0f,
           weight_.data.data() + cr.lo * kk, g.col_rows(), dy_cm + s.lo * spatial, ld, 0.0f,
           dcols, tile_ld);
      for (int64_t i = s.lo; i < s.hi; ++i) {
        col2im_channels_ld(g, dcols + (i - s.lo) * spatial, tile_ld,
                           dx.data() + i * image_numel + cr.lo * plane, cr.hi - cr.lo);
      }
    }
  });
  if (has_bias_) {
    float* bg = bias_.grad.data();
    const float* gp = grad_out.data();
    // Channel-outer so each bg[c] is owned by one chunk and accumulates
    // its per-sample sums in ascending-i order — the same order as the
    // old sample-outer loop, hence bit-identical for any thread count.
    parallel_for(0, out_c_, sample_grain(n * spatial), [&](int64_t c0, int64_t c1) {
      for (int64_t c = c0; c < c1; ++c) {
        for (int64_t i = 0; i < n; ++i) {
          const float* src = gp + (i * out_c_ + c) * spatial;
          double s = 0.0;
          for (int64_t sp = 0; sp < spatial; ++sp) s += src[sp];
          bg[c] += static_cast<float>(s);
        }
      }
    });
  }
  return dx;
}

void Conv2d::collect_params(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

Shape Conv2d::output_sample_shape(const Shape& in) const {
  if (in.size() != 3 || in[0] != in_c_) {
    throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  }
  const ConvGeometry g = geometry(in[1], in[2]);
  return {out_c_, g.out_h(), g.out_w()};
}

int64_t Conv2d::flops(const Shape& in) const {
  if (in.size() != 3 || in[0] != in_c_) {
    throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  }
  const ConvGeometry g = geometry(in[1], in[2]);
  // One multiply-add per weight per output spatial position.
  return g.out_h() * g.out_w() * weight_.numel();
}

int64_t Conv2d::effective_flops(const Shape& in) const {
  if (in.size() != 3 || in[0] != in_c_) {
    throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  }
  const ConvGeometry g = geometry(in[1], in[2]);
  return g.out_h() * g.out_w() * ops::count_nonzero(weight_.mask);
}

}  // namespace shrinkbench
