#include "nn/conv2d.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/profile.hpp"
#include "tensor/gemm.hpp"
#include "tensor/threadpool.hpp"
#include "tensor/workspace.hpp"

namespace shrinkbench {

namespace {

// SB_CONV_CACHE_COLS=1 keeps the forward column matrix alive for the
// backward pass instead of recomputing im2col — a speed-vs-memory toggle
// (the cache costs col_rows * n * col_cols floats per conv layer).
bool cache_cols_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("SB_CONV_CACHE_COLS");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

// Per-sample loops fan out over the pool with this floor on elements per
// chunk; samples are disjoint, so partitioning cannot change any value.
constexpr int64_t kMinElemsPerChunk = int64_t{1} << 16;

int64_t sample_grain(int64_t per_sample_elems) {
  return std::max<int64_t>(1, kMinElemsPerChunk / std::max<int64_t>(per_sample_elems, 1));
}

// Gathers NCHW activations [n, c, oh*ow] into channel-major [c, n*oh*ow]
// (and scatters back), so a whole minibatch becomes one GEMM operand.
void gather_channel_major(const float* nchw, int64_t n, int64_t c, int64_t spatial, float* cm) {
  parallel_for(0, n, sample_grain(c * spatial), [&](int64_t n0, int64_t n1) {
    for (int64_t i = n0; i < n1; ++i) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* src = nchw + (i * c + ch) * spatial;
        std::copy(src, src + spatial, cm + ch * (n * spatial) + i * spatial);
      }
    }
  });
}

// The scatter direction fuses the per-channel bias add (bias == nullptr
// for bias-free layers), saving a second full pass over the output.
void scatter_channel_major(const float* cm, int64_t n, int64_t c, int64_t spatial, float* nchw,
                           const float* bias) {
  parallel_for(0, n, sample_grain(c * spatial), [&](int64_t n0, int64_t n1) {
    for (int64_t i = n0; i < n1; ++i) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* src = cm + ch * (n * spatial) + i * spatial;
        float* dst = nchw + (i * c + ch) * spatial;
        if (bias == nullptr) {
          std::copy(src, src + spatial, dst);
        } else {
          const float b = bias[ch];
          for (int64_t s = 0; s < spatial; ++s) dst[s] = src[s] + b;
        }
      }
    }
  });
}

}  // namespace

Conv2d::Conv2d(std::string name, int64_t in_c, int64_t out_c, int64_t kernel, int64_t stride,
               int64_t pad, bool bias)
    : Layer(std::move(name)),
      in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      weight_(this->name() + ".weight", {out_c, in_c, kernel, kernel}, /*prunable=*/true) {
  if (has_bias_) bias_ = Parameter(this->name() + ".bias", {out_c}, /*prunable=*/false);
}

ConvGeometry Conv2d::geometry(int64_t h, int64_t w) const {
  return ConvGeometry{in_c_, h, w, kernel_, kernel_, stride_, pad_};
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  SB_PROFILE_SCOPE("conv2d.fwd");
  if (obs::profiling_enabled()) obs::count("conv2d.fwd.calls");
  if (x.dim() != 4 || x.size(1) != in_c_) {
    throw std::invalid_argument(name() + ": expected [N, " + std::to_string(in_c_) +
                                ", H, W], got " + to_string(x.shape()));
  }
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const ConvGeometry g = geometry(h, w);
  const int64_t oh = g.out_h(), ow = g.out_w();
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument(name() + ": input " + to_string(x.shape()) + " too small");
  }
  if (train) cached_input_ = x;

  // Batched lowering: cols is [col_rows, n * col_cols]; image i occupies
  // column block i. One GEMM computes the whole minibatch.
  const int64_t ld = n * g.col_cols();
  const int64_t image_numel = in_c_ * h * w;
  const int64_t spatial = oh * ow;
  const size_t cols_numel = static_cast<size_t>(g.col_rows() * ld);

  Workspace::Scope scope;
  Workspace& ws = Workspace::tls();
  const bool keep_cols = train && cache_cols_enabled();
  float* cols;
  if (keep_cols) {
    // Member storage (grow-only) so the buffer survives until backward.
    cached_cols_.resize(cols_numel);
    cols = cached_cols_.data();
    cached_cols_valid_ = true;
  } else {
    cols = ws.floats(cols_numel);
    // Only a training forward may touch the validity flag: eval-mode
    // forward must stay write-free so concurrent evaluate() batches can
    // share one model, and the (cached_input_, cached_cols_) pair from
    // the last training forward stays mutually consistent for backward.
    if (train) cached_cols_valid_ = false;
  }
  parallel_for(0, n, sample_grain(g.col_rows() * g.col_cols()), [&](int64_t n0, int64_t n1) {
    for (int64_t i = n0; i < n1; ++i) {
      im2col_ld(g, x.data() + i * image_numel, cols + i * g.col_cols(), ld);
    }
  });
  float* out_cm = ws.floats(static_cast<size_t>(out_c_ * ld));
  gemm(false, false, out_c_, ld, g.col_rows(), 1.0f, weight_.data.data(), g.col_rows(), cols, ld,
       0.0f, out_cm, ld);

  Tensor y({n, out_c_, oh, ow});
  scatter_channel_major(out_cm, n, out_c_, spatial, y.data(),
                        has_bias_ ? bias_.data.data() : nullptr);
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  SB_PROFILE_SCOPE("conv2d.bwd");
  if (obs::profiling_enabled()) obs::count("conv2d.bwd.calls");
  if (cached_input_.empty()) throw std::logic_error(name() + ": backward before forward");
  const Tensor& x = cached_input_;
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const ConvGeometry g = geometry(h, w);
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t image_numel = in_c_ * h * w;
  const int64_t spatial = oh * ow;
  const int64_t ld = n * g.col_cols();

  Workspace::Scope scope;
  Workspace& ws = Workspace::tls();
  const float* cols;
  if (cached_cols_valid_) {
    // SB_CONV_CACHE_COLS=1: reuse the forward column matrix.
    if (obs::profiling_enabled()) obs::count("conv2d.cols_cache.hits");
    cols = cached_cols_.data();
  } else {
    // Recompute the batched column matrix (cheaper than caching it in
    // memory-constrained runs; see SB_CONV_CACHE_COLS).
    float* scratch = ws.floats(static_cast<size_t>(g.col_rows() * ld));
    parallel_for(0, n, sample_grain(g.col_rows() * g.col_cols()), [&](int64_t n0, int64_t n1) {
      for (int64_t i = n0; i < n1; ++i) {
        im2col_ld(g, x.data() + i * image_numel, scratch + i * g.col_cols(), ld);
      }
    });
    cols = scratch;
  }
  float* dy_cm = ws.floats(static_cast<size_t>(out_c_ * ld));
  gather_channel_major(grad_out.data(), n, out_c_, spatial, dy_cm);

  // dW += dY [out_c, n*ohw] * cols^T [n*ohw, cK2]
  gemm(false, /*trans_b=*/true, out_c_, g.col_rows(), ld, 1.0f, dy_cm, ld, cols, ld, 1.0f,
       weight_.grad.data(), g.col_rows());
  // dcols = W^T [cK2, out_c] * dY [out_c, n*ohw]
  float* dcols = ws.floats(static_cast<size_t>(g.col_rows() * ld));
  gemm(/*trans_a=*/true, false, g.col_rows(), ld, out_c_, 1.0f, weight_.data.data(),
       g.col_rows(), dy_cm, ld, 0.0f, dcols, ld);

  Tensor dx(x.shape());
  parallel_for(0, n, sample_grain(g.col_rows() * g.col_cols()), [&](int64_t n0, int64_t n1) {
    for (int64_t i = n0; i < n1; ++i) {
      col2im_ld(g, dcols + i * g.col_cols(), ld, dx.data() + i * image_numel);
    }
  });
  if (has_bias_) {
    float* bg = bias_.grad.data();
    const float* gp = grad_out.data();
    // Channel-outer so each bg[c] is owned by one chunk and accumulates
    // its per-sample sums in ascending-i order — the same order as the
    // old sample-outer loop, hence bit-identical for any thread count.
    parallel_for(0, out_c_, sample_grain(n * spatial), [&](int64_t c0, int64_t c1) {
      for (int64_t c = c0; c < c1; ++c) {
        for (int64_t i = 0; i < n; ++i) {
          const float* src = gp + (i * out_c_ + c) * spatial;
          double s = 0.0;
          for (int64_t sp = 0; sp < spatial; ++sp) s += src[sp];
          bg[c] += static_cast<float>(s);
        }
      }
    });
  }
  return dx;
}

void Conv2d::collect_params(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

Shape Conv2d::output_sample_shape(const Shape& in) const {
  if (in.size() != 3 || in[0] != in_c_) {
    throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  }
  const ConvGeometry g = geometry(in[1], in[2]);
  return {out_c_, g.out_h(), g.out_w()};
}

int64_t Conv2d::flops(const Shape& in) const {
  if (in.size() != 3 || in[0] != in_c_) {
    throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  }
  const ConvGeometry g = geometry(in[1], in[2]);
  // One multiply-add per weight per output spatial position.
  return g.out_h() * g.out_w() * weight_.numel();
}

int64_t Conv2d::effective_flops(const Shape& in) const {
  if (in.size() != 3 || in[0] != in_c_) {
    throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  }
  const ConvGeometry g = geometry(in[1], in[2]);
  return g.out_h() * g.out_w() * ops::count_nonzero(weight_.mask);
}

}  // namespace shrinkbench
