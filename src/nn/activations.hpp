// Pointwise activation layers.
#pragma once

#include "nn/layer.hpp"

namespace shrinkbench {

class ReLU : public Layer {
 public:
  explicit ReLU(std::string name) : Layer(std::move(name)) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_sample_shape(const Shape& in) const override { return in; }

 private:
  Tensor cached_output_;  // relu'(x) = 1[y > 0]; the output suffices
};

}  // namespace shrinkbench
