// 2-D convolution (NCHW) via im2col + GEMM. Weight shape: [out_c, in_c, kh, kw].
#pragma once

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace shrinkbench {

class Conv2d : public Layer {
 public:
  Conv2d(std::string name, int64_t in_c, int64_t out_c, int64_t kernel, int64_t stride = 1,
         int64_t pad = 0, bool bias = false);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Parameter*>& out) override;
  Shape output_sample_shape(const Shape& in) const override;
  int64_t flops(const Shape& in) const override;
  int64_t effective_flops(const Shape& in) const override;

  int64_t in_channels() const { return in_c_; }
  int64_t out_channels() const { return out_c_; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t padding() const { return pad_; }
  Parameter& weight() { return weight_; }
  Parameter* bias() { return has_bias_ ? &bias_ : nullptr; }

 private:
  ConvGeometry geometry(int64_t h, int64_t w) const;

  int64_t in_c_, out_c_, kernel_, stride_, pad_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
  // SB_CONV_CACHE_COLS=1: forward's column matrix, kept for backward
  // instead of recomputing im2col (grow-only member storage).
  std::vector<float> cached_cols_;
  bool cached_cols_valid_ = false;
};

}  // namespace shrinkbench
