#include "nn/init.hpp"

#include <cmath>
#include <stdexcept>

namespace shrinkbench {

namespace {
std::pair<int64_t, int64_t> fans(const Tensor& weight) {
  if (weight.dim() == 2) {
    return {weight.size(1), weight.size(0)};
  }
  if (weight.dim() == 4) {
    const int64_t receptive = weight.size(2) * weight.size(3);
    return {weight.size(1) * receptive, weight.size(0) * receptive};
  }
  throw std::invalid_argument("init: weight must be rank-2 or rank-4, got " +
                              to_string(weight.shape()));
}
}  // namespace

void kaiming_normal(Tensor& weight, Rng& rng) {
  const auto [fan_in, fan_out] = fans(weight);
  (void)fan_out;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  rng.fill_normal(weight, 0.0f, stddev);
}

void xavier_uniform(Tensor& weight, Rng& rng) {
  const auto [fan_in, fan_out] = fans(weight);
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  rng.fill_uniform(weight, -a, a);
}

void init_model(Layer& model, Rng& rng) {
  for (Parameter* p : parameters_of(model)) {
    if (p->prunable) kaiming_normal(p->data, rng);
  }
}

}  // namespace shrinkbench
