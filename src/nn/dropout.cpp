#include "nn/dropout.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace shrinkbench {

Dropout::Dropout(std::string name, float p, uint64_t seed)
    : Layer(std::move(name)), p_(p), rng_(seed) {
  if (p < 0.0f || p >= 1.0f) {
    throw std::invalid_argument(this->name() + ": dropout p must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || p_ == 0.0f) return x;
  cached_mask_ = Tensor(x.shape());
  const float keep_scale = 1.0f / (1.0f - p_);
  for (float& m : cached_mask_.flat()) {
    m = rng_.bernoulli(p_) ? 0.0f : keep_scale;
  }
  return ops::mul(x, cached_mask_);
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (p_ == 0.0f) return grad_out;
  if (cached_mask_.empty()) throw std::logic_error(name() + ": backward before forward");
  return ops::mul(grad_out, cached_mask_);
}

}  // namespace shrinkbench
