#include "nn/dropout.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace shrinkbench {

Dropout::Dropout(std::string name, float p, uint64_t seed)
    : Layer(std::move(name)), p_(p), rng_(seed) {
  if (p < 0.0f || p >= 1.0f) {
    throw std::invalid_argument(this->name() + ": dropout p must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || p_ == 0.0f) {
    // An eval forward applies no mask, so a mask left over from an
    // earlier training forward is now stale: a later backward must not
    // multiply it in (it would silently mis-scale gradients). Invalidate
    // instead of clearing the tensor — the store is atomic, keeping
    // concurrent eval-mode forwards over a shared model race-free.
    if (!train) mask_valid_.store(false, std::memory_order_relaxed);
    return x;
  }
  cached_mask_ = Tensor(x.shape());
  const float keep_scale = 1.0f / (1.0f - p_);
  for (float& m : cached_mask_.flat()) {
    m = rng_.bernoulli(p_) ? 0.0f : keep_scale;
  }
  mask_valid_.store(true, std::memory_order_relaxed);
  return ops::mul(x, cached_mask_);
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (p_ == 0.0f) return grad_out;
  if (!mask_valid_.load(std::memory_order_relaxed)) {
    throw std::logic_error(name() + ": backward without a preceding training forward "
                           "(the last forward was eval-mode, so no dropout mask was applied)");
  }
  if (!cached_mask_.same_shape(grad_out)) {
    throw std::logic_error(name() + ": grad shape " + to_string(grad_out.shape()) +
                           " does not match dropout mask shape " +
                           to_string(cached_mask_.shape()));
  }
  return ops::mul(grad_out, cached_mask_);
}

}  // namespace shrinkbench
