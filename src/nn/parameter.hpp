// Trainable parameter with an associated pruning mask.
//
// The mask is the paper's M in f(x; M ⊙ W): a 0/1 tensor of the same shape
// as the weights. The library maintains the invariant that after every
// optimizer step and every pruning operation, data == data ⊙ mask (pruned
// weights stay exactly zero through fine-tuning).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace shrinkbench {

struct Parameter {
  Parameter() = default;
  Parameter(std::string name_, Shape shape, bool prunable_)
      : name(std::move(name_)),
        data(shape),
        grad(shape),
        mask(Tensor::ones(shape)),
        prunable(prunable_) {}

  std::string name;
  Tensor data;
  Tensor grad;
  Tensor mask;
  /// Whether pruning strategies may zero entries of this parameter.
  /// Conv/linear weights are prunable; biases and batchnorm affines are not.
  bool prunable = false;
  /// Marks the classifier layer's weights; excluded from pruning by
  /// default, mirroring the paper's Appendix C.1.
  bool is_classifier = false;

  int64_t numel() const { return data.numel(); }
  int64_t nonzero() const { return ops::count_nonzero(mask); }

  void zero_grad() { grad.zero(); }

  /// Re-establishes data == data ⊙ mask and grad == grad ⊙ mask.
  void apply_mask() {
    ops::mul_inplace(data, mask);
    ops::mul_inplace(grad, mask);
  }
};

}  // namespace shrinkbench
