#include "nn/linear.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/gemm.hpp"

namespace shrinkbench {

Linear::Linear(std::string name, int64_t in_features, int64_t out_features, bool bias,
               bool is_classifier)
    : Layer(std::move(name)),
      in_(in_features),
      out_(out_features),
      has_bias_(bias),
      weight_(this->name() + ".weight", {out_features, in_features}, /*prunable=*/true) {
  weight_.is_classifier = is_classifier;
  if (has_bias_) bias_ = Parameter(this->name() + ".bias", {out_features}, /*prunable=*/false);
}

Tensor Linear::forward(const Tensor& x, bool train) {
  if (x.dim() != 2 || x.size(1) != in_) {
    throw std::invalid_argument(name() + ": expected input [N, " + std::to_string(in_) +
                                "], got " + to_string(x.shape()));
  }
  if (train) cached_input_ = x;
  const int64_t n = x.size(0);
  Tensor y({n, out_});
  if (has_bias_) {
    // Fuse the bias add into the GEMM epilogue: pre-fill each output row
    // with the bias and accumulate (beta = 1) instead of overwriting and
    // making a second pass over y.
    float* yp = y.data();
    const float* bp = bias_.data.data();
    for (int64_t i = 0; i < n; ++i) std::copy(bp, bp + out_, yp + i * out_);
  }
  // y = x [N, in] * W^T [in, out] (+ bias)
  gemm(false, /*trans_b=*/true, n, out_, in_, 1.0f, x.data(), in_, weight_.data.data(), in_,
       has_bias_ ? 1.0f : 0.0f, y.data(), out_);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) throw std::logic_error(name() + ": backward before forward");
  const int64_t n = grad_out.size(0);
  // dW += dY^T X ; accumulate into existing grads.
  gemm(/*trans_a=*/true, /*trans_b=*/false, out_, in_, n, 1.0f, grad_out.data(), out_,
       cached_input_.data(), in_, 1.0f, weight_.grad.data(), in_);
  if (has_bias_) {
    float* bg = bias_.grad.data();
    const float* gp = grad_out.data();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < out_; ++j) bg[j] += gp[i * out_ + j];
    }
  }
  return matmul(grad_out, weight_.data);  // dX = dY W
}

void Linear::collect_params(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

Shape Linear::output_sample_shape(const Shape& in) const {
  if (in.size() != 1 || in[0] != in_) {
    throw std::invalid_argument(name() + ": bad sample shape " + to_string(in));
  }
  return {out_};
}

int64_t Linear::flops(const Shape& in) const {
  (void)in;
  return in_ * out_;
}

int64_t Linear::effective_flops(const Shape& in) const {
  (void)in;
  return ops::count_nonzero(weight_.mask);
}

}  // namespace shrinkbench
