// Standardized model zoo.
//
// These are the architectures the paper's experiments use (Section 7,
// Appendix D), implemented with their published topologies but scaled-down
// base widths so hundreds of prune+fine-tune runs fit a single CPU core
// (DESIGN.md §2). Following the paper's Section 5.1 complaint about
// architecture ambiguity, each factory documents exactly which variant it
// builds.
//
//   * lenet_300_100  — the classic 2-hidden-layer MLP (LeCun et al. 1998).
//   * lenet5         — conv-pool-conv-pool-fc-fc-fc, Caffe-flavored ReLUs.
//   * cifar_vgg      — the Zagoruyko (2015) CIFAR "VGG": conv-bn stacks
//                      with maxpool between width doublings, 2 FC layers.
//   * resnet20/56/110— CIFAR-style ResNet v1 (He et al. 2016a): 3 stages
//                      of (depth-2)/6 basic blocks, projection shortcuts.
//   * resnet18       — ImageNet-style ResNet v1 basic-block network with
//                      4 stages of 2 blocks; 3x3 stem (no 7x7/maxpool,
//                      appropriate for small synthetic images).
//
// The final classifier Linear is flagged is_classifier so pruning skips it
// by default (paper, Appendix C.1).
#pragma once

#include <string>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/rng.hpp"

namespace shrinkbench {

/// How the CIFAR-VGG is "customized" — the §5.1 ambiguity, made explicit.
enum class VggVariant {
  Plain,     // conv-bn stacks + 2 FC layers (our canonical "CIFAR-VGG")
  Dropout,   // adds dropout before the classifier (many papers' variant)
  SmallFc,   // halves the hidden FC width (Lee et al. 2019b's variant)
};

ModelPtr lenet_300_100(const Shape& sample_shape, int num_classes);
ModelPtr lenet5(const Shape& sample_shape, int num_classes, int64_t base_width = 6);
ModelPtr cifar_vgg(const Shape& sample_shape, int num_classes, int64_t base_width = 8,
                   VggVariant variant = VggVariant::Plain);
ModelPtr resnet_cifar(int depth, const Shape& sample_shape, int num_classes,
                      int64_t base_width = 8);
/// Pre-activation ("v2", He et al. 2016b) CIFAR ResNet — the architecture
/// Table 1's "PreResNet-164" refers to. Same parameter budget as the v1
/// network of equal depth/width, different block wiring.
ModelPtr preresnet_cifar(int depth, const Shape& sample_shape, int num_classes,
                         int64_t base_width = 8);
ModelPtr resnet18(const Shape& sample_shape, int num_classes, int64_t base_width = 8);

/// Factory by architecture name: "lenet-300-100", "lenet-5", "cifar-vgg",
/// "cifar-vgg-dropout", "cifar-vgg-smallfc", "resnet-20", "resnet-56",
/// "resnet-110", "preresnet-20", "preresnet-56", "resnet-18". Throws on
/// unknown names. base_width 0 uses each architecture's default.
ModelPtr make_model(const std::string& arch, const Shape& sample_shape, int num_classes,
                    int64_t base_width = 0);

/// All registry names, for enumeration in tests and docs.
std::vector<std::string> model_names();

}  // namespace shrinkbench
