#include "models/zoo.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"

namespace shrinkbench {

namespace {

void check_image_input(const Shape& sample_shape, const char* arch) {
  if (sample_shape.size() != 3) {
    throw std::invalid_argument(std::string(arch) + ": expected [C, H, W] sample shape, got " +
                                to_string(sample_shape));
  }
}

/// conv3x3 + bn + relu
void add_conv_bn_relu(Sequential& seq, const std::string& prefix, int64_t in_c, int64_t out_c,
                      int64_t stride = 1) {
  seq.emplace<Conv2d>(prefix + ".conv", in_c, out_c, 3, stride, 1, /*bias=*/false);
  seq.emplace<BatchNorm2d>(prefix + ".bn", out_c);
  seq.emplace<ReLU>(prefix + ".relu");
}

/// Basic residual block (ResNet v1): conv-bn-relu-conv-bn (+ projection).
LayerPtr make_basic_block(const std::string& name, int64_t in_c, int64_t out_c, int64_t stride) {
  auto main = std::make_unique<Sequential>(name + ".main");
  main->emplace<Conv2d>(name + ".conv1", in_c, out_c, 3, stride, 1, false);
  main->emplace<BatchNorm2d>(name + ".bn1", out_c);
  main->emplace<ReLU>(name + ".relu1");
  main->emplace<Conv2d>(name + ".conv2", out_c, out_c, 3, 1, 1, false);
  main->emplace<BatchNorm2d>(name + ".bn2", out_c);

  std::unique_ptr<Sequential> shortcut;
  if (stride != 1 || in_c != out_c) {
    shortcut = std::make_unique<Sequential>(name + ".shortcut");
    shortcut->emplace<Conv2d>(name + ".proj", in_c, out_c, 1, stride, 0, false);
    shortcut->emplace<BatchNorm2d>(name + ".proj_bn", out_c);
  }
  return std::make_unique<ResidualBlock>(name, std::move(main), std::move(shortcut));
}

void add_stage(Sequential& seq, const std::string& name, int blocks, int64_t in_c, int64_t out_c,
               int64_t first_stride) {
  for (int b = 0; b < blocks; ++b) {
    const std::string block_name = name + ".block" + std::to_string(b);
    seq.add(make_basic_block(block_name, b == 0 ? in_c : out_c, out_c,
                             b == 0 ? first_stride : 1));
  }
}

}  // namespace

ModelPtr lenet_300_100(const Shape& sample_shape, int num_classes) {
  const int64_t in_dim = numel_of(sample_shape);
  auto model = std::make_unique<Sequential>("lenet-300-100");
  model->emplace<Flatten>("flatten");
  model->emplace<Linear>("fc1", in_dim, 300, true);
  model->emplace<ReLU>("relu1");
  model->emplace<Linear>("fc2", 300, 100, true);
  model->emplace<ReLU>("relu2");
  model->emplace<Linear>("fc3", 100, num_classes, true, /*is_classifier=*/true);
  return model;
}

ModelPtr lenet5(const Shape& sample_shape, int num_classes, int64_t base_width) {
  check_image_input(sample_shape, "lenet-5");
  const int64_t c = sample_shape[0];
  const int64_t w1 = base_width, w2 = base_width * 8 / 3;  // 6 -> 16 at default width
  auto model = std::make_unique<Sequential>("lenet-5");
  model->emplace<Conv2d>("conv1", c, w1, 5, 1, 2, true);
  model->emplace<ReLU>("relu1");
  model->emplace<MaxPool2d>("pool1", 2, 2);
  model->emplace<Conv2d>("conv2", w1, w2, 5, 1, 2, true);
  model->emplace<ReLU>("relu2");
  model->emplace<MaxPool2d>("pool2", 2, 2);
  model->emplace<Flatten>("flatten");
  const Shape conv_out = model->output_sample_shape(sample_shape);
  model->emplace<Linear>("fc1", conv_out[0], 120, true);
  model->emplace<ReLU>("relu3");
  model->emplace<Linear>("fc2", 120, 84, true);
  model->emplace<ReLU>("relu4");
  model->emplace<Linear>("fc3", 84, num_classes, true, /*is_classifier=*/true);
  return model;
}

ModelPtr cifar_vgg(const Shape& sample_shape, int num_classes, int64_t base_width,
                   VggVariant variant) {
  check_image_input(sample_shape, "cifar-vgg");
  const int64_t c = sample_shape[0], w = base_width;
  const char* variant_name = variant == VggVariant::Plain     ? "cifar-vgg"
                             : variant == VggVariant::Dropout ? "cifar-vgg-dropout"
                                                              : "cifar-vgg-smallfc";
  auto model = std::make_unique<Sequential>(variant_name);
  add_conv_bn_relu(*model, "block1.0", c, w);
  add_conv_bn_relu(*model, "block1.1", w, w);
  model->emplace<MaxPool2d>("pool1", 2, 2);
  add_conv_bn_relu(*model, "block2.0", w, 2 * w);
  add_conv_bn_relu(*model, "block2.1", 2 * w, 2 * w);
  model->emplace<MaxPool2d>("pool2", 2, 2);
  add_conv_bn_relu(*model, "block3.0", 2 * w, 4 * w);
  add_conv_bn_relu(*model, "block3.1", 4 * w, 4 * w);
  model->emplace<MaxPool2d>("pool3", 2, 2);
  model->emplace<Flatten>("flatten");
  const Shape conv_out = model->output_sample_shape(sample_shape);
  const int64_t hidden = variant == VggVariant::SmallFc ? 2 * w : 4 * w;
  model->emplace<Linear>("fc1", conv_out[0], hidden, true);
  model->emplace<ReLU>("fc1.relu");
  if (variant == VggVariant::Dropout) model->emplace<Dropout>("fc1.drop", 0.5f);
  model->emplace<Linear>("fc2", hidden, num_classes, true, /*is_classifier=*/true);
  return model;
}

ModelPtr resnet_cifar(int depth, const Shape& sample_shape, int num_classes, int64_t base_width) {
  check_image_input(sample_shape, "resnet-cifar");
  if ((depth - 2) % 6 != 0 || depth < 8) {
    throw std::invalid_argument("resnet_cifar: depth must be 6n+2, got " + std::to_string(depth));
  }
  const int n = (depth - 2) / 6;
  const int64_t c = sample_shape[0], w = base_width;
  auto model = std::make_unique<Sequential>("resnet-" + std::to_string(depth));
  add_conv_bn_relu(*model, "stem", c, w);
  add_stage(*model, "stage1", n, w, w, 1);
  add_stage(*model, "stage2", n, w, 2 * w, 2);
  add_stage(*model, "stage3", n, 2 * w, 4 * w, 2);
  model->emplace<GlobalAvgPool>("gap");
  model->emplace<Linear>("fc", 4 * w, num_classes, true, /*is_classifier=*/true);
  return model;
}

namespace {

/// Pre-activation basic block: BN-ReLU-conv-BN-ReLU-conv, summed with an
/// identity or 1x1-projection shortcut, no post-sum ReLU.
LayerPtr make_preact_block(const std::string& name, int64_t in_c, int64_t out_c,
                           int64_t stride) {
  auto main = std::make_unique<Sequential>(name + ".main");
  main->emplace<BatchNorm2d>(name + ".bn1", in_c);
  main->emplace<ReLU>(name + ".relu1");
  main->emplace<Conv2d>(name + ".conv1", in_c, out_c, 3, stride, 1, false);
  main->emplace<BatchNorm2d>(name + ".bn2", out_c);
  main->emplace<ReLU>(name + ".relu2");
  main->emplace<Conv2d>(name + ".conv2", out_c, out_c, 3, 1, 1, false);

  std::unique_ptr<Sequential> shortcut;
  if (stride != 1 || in_c != out_c) {
    shortcut = std::make_unique<Sequential>(name + ".shortcut");
    shortcut->emplace<Conv2d>(name + ".proj", in_c, out_c, 1, stride, 0, false);
  }
  return std::make_unique<ResidualBlock>(name, std::move(main), std::move(shortcut),
                                         /*final_relu=*/false);
}

}  // namespace

ModelPtr preresnet_cifar(int depth, const Shape& sample_shape, int num_classes,
                         int64_t base_width) {
  check_image_input(sample_shape, "preresnet-cifar");
  if ((depth - 2) % 6 != 0 || depth < 8) {
    throw std::invalid_argument("preresnet_cifar: depth must be 6n+2, got " +
                                std::to_string(depth));
  }
  const int n = (depth - 2) / 6;
  const int64_t c = sample_shape[0], w = base_width;
  auto model = std::make_unique<Sequential>("preresnet-" + std::to_string(depth));
  model->emplace<Conv2d>("stem.conv", c, w, 3, 1, 1, false);
  const auto add_preact_stage = [&](const std::string& stage, int blocks, int64_t in_c,
                                    int64_t out_c, int64_t first_stride) {
    for (int b = 0; b < blocks; ++b) {
      model->add(make_preact_block(stage + ".block" + std::to_string(b),
                                   b == 0 ? in_c : out_c, out_c, b == 0 ? first_stride : 1));
    }
  };
  add_preact_stage("stage1", n, w, w, 1);
  add_preact_stage("stage2", n, w, 2 * w, 2);
  add_preact_stage("stage3", n, 2 * w, 4 * w, 2);
  model->emplace<BatchNorm2d>("final.bn", 4 * w);
  model->emplace<ReLU>("final.relu");
  model->emplace<GlobalAvgPool>("gap");
  model->emplace<Linear>("fc", 4 * w, num_classes, true, /*is_classifier=*/true);
  return model;
}

ModelPtr resnet18(const Shape& sample_shape, int num_classes, int64_t base_width) {
  check_image_input(sample_shape, "resnet-18");
  const int64_t c = sample_shape[0], w = base_width;
  auto model = std::make_unique<Sequential>("resnet-18");
  add_conv_bn_relu(*model, "stem", c, w);
  add_stage(*model, "stage1", 2, w, w, 1);
  add_stage(*model, "stage2", 2, w, 2 * w, 2);
  add_stage(*model, "stage3", 2, 2 * w, 4 * w, 2);
  add_stage(*model, "stage4", 2, 4 * w, 8 * w, 1);  // keep >=2x2 maps on tiny inputs
  model->emplace<GlobalAvgPool>("gap");
  model->emplace<Linear>("fc", 8 * w, num_classes, true, /*is_classifier=*/true);
  return model;
}

ModelPtr make_model(const std::string& arch, const Shape& sample_shape, int num_classes,
                    int64_t base_width) {
  const auto width_or = [&](int64_t fallback) { return base_width > 0 ? base_width : fallback; };
  if (arch == "lenet-300-100") return lenet_300_100(sample_shape, num_classes);
  if (arch == "lenet-5") return lenet5(sample_shape, num_classes, width_or(6));
  if (arch == "cifar-vgg") return cifar_vgg(sample_shape, num_classes, width_or(8));
  if (arch == "cifar-vgg-dropout") {
    return cifar_vgg(sample_shape, num_classes, width_or(8), VggVariant::Dropout);
  }
  if (arch == "cifar-vgg-smallfc") {
    return cifar_vgg(sample_shape, num_classes, width_or(8), VggVariant::SmallFc);
  }
  if (arch == "resnet-20") return resnet_cifar(20, sample_shape, num_classes, width_or(8));
  if (arch == "resnet-56") return resnet_cifar(56, sample_shape, num_classes, width_or(8));
  if (arch == "resnet-110") return resnet_cifar(110, sample_shape, num_classes, width_or(8));
  if (arch == "preresnet-20") return preresnet_cifar(20, sample_shape, num_classes, width_or(8));
  if (arch == "preresnet-56") return preresnet_cifar(56, sample_shape, num_classes, width_or(8));
  if (arch == "resnet-18") return resnet18(sample_shape, num_classes, width_or(8));
  throw std::invalid_argument("make_model: unknown architecture '" + arch + "'");
}

std::vector<std::string> model_names() {
  return {"lenet-300-100", "lenet-5",       "cifar-vgg",    "cifar-vgg-dropout",
          "cifar-vgg-smallfc", "resnet-20", "resnet-56",    "resnet-110",
          "preresnet-20",  "preresnet-56",  "resnet-18"};
}

}  // namespace shrinkbench
