#include "tensor/im2col.hpp"

#include <algorithm>

#include "obs/profile.hpp"

namespace shrinkbench {

void im2col_ld(const ConvGeometry& g, const float* image, float* cols, int64_t ld) {
  if (obs::profiling_enabled()) {
    obs::count("im2col.calls");
    obs::count("im2col.elements", g.col_rows() * g.col_cols());
  }
  const int64_t oh = g.out_h(), ow = g.out_w();
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    const float* chan = image + c * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out_row = cols + row * ld;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t in_y = y * g.stride + kh - g.pad;
          float* dst = out_row + y * ow;
          if (in_y < 0 || in_y >= g.in_h) {
            std::fill(dst, dst + ow, 0.0f);
            continue;
          }
          const float* src_row = chan + in_y * g.in_w;
          const int64_t base = kw - g.pad;
          if (g.stride == 1 && base >= 0 && base + ow <= g.in_w) {
            // Fully interior fast path: contiguous copy.
            std::copy(src_row + base, src_row + base + ow, dst);
          } else {
            for (int64_t x = 0; x < ow; ++x) {
              const int64_t in_x = x * g.stride + base;
              dst[x] = (in_x >= 0 && in_x < g.in_w) ? src_row[in_x] : 0.0f;
            }
          }
        }
      }
    }
  }
}

void im2col(const ConvGeometry& g, const float* image, float* cols) {
  im2col_ld(g, image, cols, g.col_cols());
}

void col2im_ld(const ConvGeometry& g, const float* cols, int64_t ld, float* image) {
  if (obs::profiling_enabled()) {
    obs::count("col2im.calls");
    obs::count("col2im.elements", g.col_rows() * g.col_cols());
  }
  const int64_t oh = g.out_h(), ow = g.out_w();
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    float* chan = image + c * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src_row = cols + row * ld;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t in_y = y * g.stride + kh - g.pad;
          if (in_y < 0 || in_y >= g.in_h) continue;
          float* dst_row = chan + in_y * g.in_w;
          const float* src = src_row + y * ow;
          const int64_t base = kw - g.pad;
          if (g.stride == 1 && base >= 0 && base + ow <= g.in_w) {
            float* dst = dst_row + base;
            for (int64_t x = 0; x < ow; ++x) dst[x] += src[x];
          } else {
            for (int64_t x = 0; x < ow; ++x) {
              const int64_t in_x = x * g.stride + base;
              if (in_x >= 0 && in_x < g.in_w) dst_row[in_x] += src[x];
            }
          }
        }
      }
    }
  }
}

void col2im(const ConvGeometry& g, const float* cols, float* image) {
  col2im_ld(g, cols, g.col_cols(), image);
}

}  // namespace shrinkbench
