#include "tensor/im2col.hpp"

#include <algorithm>

#include "obs/profile.hpp"
#include "tensor/threadpool.hpp"

namespace shrinkbench {

namespace {
// Minimum output elements per parallel chunk: lowering is pure copies,
// so chunks below this are cheaper to run on the calling thread.
constexpr int64_t kMinElemsPerChunk = int64_t{1} << 16;
}  // namespace

void im2col_ld(const ConvGeometry& g, const float* image, float* cols, int64_t ld) {
  if (obs::profiling_enabled()) {
    obs::count("im2col.calls");
    obs::count("im2col.elements", g.col_rows() * g.col_cols());
  }
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t kk = g.kernel_h * g.kernel_w;
  // Every column row is written by exactly one chunk, so the partition
  // cannot change any output value.
  const int64_t grain = std::max<int64_t>(1, kMinElemsPerChunk / std::max<int64_t>(oh * ow, 1));
  parallel_for(0, g.col_rows(), grain, [&](int64_t r0, int64_t r1) {
    for (int64_t row = r0; row < r1; ++row) {
      const int64_t c = row / kk;
      const int64_t kh = (row % kk) / g.kernel_w;
      const int64_t kw = row % g.kernel_w;
      const float* chan = image + c * g.in_h * g.in_w;
      float* out_row = cols + row * ld;
      for (int64_t y = 0; y < oh; ++y) {
        const int64_t in_y = y * g.stride + kh - g.pad;
        float* dst = out_row + y * ow;
        if (in_y < 0 || in_y >= g.in_h) {
          std::fill(dst, dst + ow, 0.0f);
          continue;
        }
        const float* src_row = chan + in_y * g.in_w;
        const int64_t base = kw - g.pad;
        if (g.stride == 1 && base >= 0 && base + ow <= g.in_w) {
          // Fully interior fast path: contiguous copy.
          std::copy(src_row + base, src_row + base + ow, dst);
        } else {
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t in_x = x * g.stride + base;
            dst[x] = (in_x >= 0 && in_x < g.in_w) ? src_row[in_x] : 0.0f;
          }
        }
      }
    }
  });
}

void im2col(const ConvGeometry& g, const float* image, float* cols) {
  im2col_ld(g, image, cols, g.col_cols());
}

void col2im_channels_ld(const ConvGeometry& g, const float* cols, int64_t ld, float* image,
                        int64_t channels) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  for (int64_t c = 0; c < channels; ++c) {
    float* chan = image + c * g.in_h * g.in_w;
    int64_t row = c * g.kernel_h * g.kernel_w;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src_row = cols + row * ld;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t in_y = y * g.stride + kh - g.pad;
          if (in_y < 0 || in_y >= g.in_h) continue;
          float* dst_row = chan + in_y * g.in_w;
          const float* src = src_row + y * ow;
          const int64_t base = kw - g.pad;
          if (g.stride == 1 && base >= 0 && base + ow <= g.in_w) {
            float* dst = dst_row + base;
            for (int64_t x = 0; x < ow; ++x) dst[x] += src[x];
          } else {
            for (int64_t x = 0; x < ow; ++x) {
              const int64_t in_x = x * g.stride + base;
              if (in_x >= 0 && in_x < g.in_w) dst_row[in_x] += src[x];
            }
          }
        }
      }
    }
  }
}

void col2im_ld(const ConvGeometry& g, const float* cols, int64_t ld, float* image) {
  if (obs::profiling_enabled()) {
    obs::count("col2im.calls");
    obs::count("col2im.elements", g.col_rows() * g.col_cols());
  }
  const int64_t oh = g.out_h(), ow = g.out_w();
  // Different (kh, kw) rows of one channel accumulate into overlapping
  // image pixels, so the channel — whose image plane is private — is the
  // finest partition that keeps both the writes disjoint and the
  // accumulation order identical to the sequential loop.
  const int64_t per_channel = g.kernel_h * g.kernel_w * oh * ow;
  const int64_t grain = std::max<int64_t>(1, kMinElemsPerChunk / std::max<int64_t>(per_channel, 1));
  parallel_for(0, g.in_c, grain, [&](int64_t c0, int64_t c1) {
    col2im_channels_ld(g, cols + c0 * g.kernel_h * g.kernel_w * ld, ld,
                       image + c0 * g.in_h * g.in_w, c1 - c0);
  });
}

void col2im(const ConvGeometry& g, const float* cols, float* image) {
  col2im_ld(g, cols, g.col_cols(), image);
}

}  // namespace shrinkbench
