// Persistent thread pool with a bit-deterministic parallel_for.
//
// The paper's comparisons are only meaningful when two runs differ in
// nothing but the pruning method, so parallelism here must never change
// results: parallel_for partitions [begin, end) into *static contiguous*
// chunks and every index's work runs sequentially inside exactly one
// chunk. As long as iterations write disjoint outputs and never reduce
// across indices (the contract for every call site in this repo), the
// floats produced are bit-identical for every thread count, including 1.
//
// Environment contract:
//
//   SB_THREADS=N   pool size (workers + calling thread). Unset -> the
//                  machine's hardware_concurrency. SB_THREADS=1 -> no
//                  threads are ever spawned and parallel_for invokes the
//                  body directly: the exact single-threaded code path
//                  with zero pool overhead.
//
// Nesting: a parallel_for issued from inside a pool worker (or inside a
// SerialGuard region, e.g. a sweep shard worker) runs inline and serial.
// Parallelism therefore lives at the outermost level that asks for it
// and inner levels degrade to the sequential code path.
//
// Observability: when SB_PROF is on, counters `threadpool.jobs` /
// `threadpool.chunks` count fan-outs and worker chunks run under a
// "pool.chunk" span on the worker's own thread-local span stack, so
// parallel work is attributed per thread; the metric registry itself is
// mutex-protected, so counters merge correctly when the pool quiesces.
// When SB_TELEMETRY is on, the pool additionally keeps job/chunk/queue
// counters and per-slot busy clocks, exported to the telemetry sampler
// through the obs::set_pool_sampler hook this TU registers at load (so
// sb_obs never links against sb_tensor). With profiling and telemetry
// off the pool adds a single cached-flag branch per fan-out — the
// zero-overhead contract of src/obs holds.
#pragma once

#include <algorithm>
#include <cstdint>

namespace shrinkbench {

class ThreadPool {
 public:
  /// The process-wide pool. Workers are spawned lazily on the first
  /// parallel_for that can use them; SB_THREADS=1 never spawns any.
  static ThreadPool& instance();

  /// SB_THREADS, or hardware_concurrency when unset (min 1).
  static int default_threads();

  /// True while the calling thread executes a pool chunk or holds a
  /// SerialGuard — i.e. nested parallel_for calls will run inline.
  static bool in_parallel_region();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Pool size including the calling thread (>= 1).
  int threads() const { return threads_; }

  /// Reconfigures the pool size (joins existing workers; the next
  /// parallel job respawns). Requires no job in flight. Used by tests
  /// and benches to compare thread counts within one process; normal
  /// code should rely on SB_THREADS.
  void set_threads(int n);

  /// Marks the current thread as already-parallel so nested
  /// parallel_for calls run inline (used by sweep shard workers, whose
  /// parallelism is at the experiment level).
  class SerialGuard {
   public:
    SerialGuard();
    ~SerialGuard();
    SerialGuard(const SerialGuard&) = delete;
    SerialGuard& operator=(const SerialGuard&) = delete;

   private:
    bool prev_;
  };

  /// Runs fn(chunk_begin, chunk_end) over a static contiguous partition
  /// of [begin, end). At most threads() chunks are formed and no chunk
  /// is smaller than `grain` indices (grain <= 0 means 1), so tiny
  /// ranges stay on the calling thread. The call returns after every
  /// chunk has finished; the first exception thrown by any chunk is
  /// rethrown here.
  template <typename Fn>
  void parallel_for(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
    if (begin >= end) return;
    if (!parallel_viable(end - begin, grain)) {
      fn(begin, end);
      return;
    }
    run_impl(begin, end, grain, &invoke_range<Fn>, &fn);
  }

 private:
  ThreadPool();

  using RangeFn = void (*)(void* ctx, int64_t begin, int64_t end);

  template <typename Fn>
  static void invoke_range(void* ctx, int64_t begin, int64_t end) {
    (*static_cast<Fn*>(ctx))(begin, end);
  }

  /// False when the pool is size 1, the range is below 2 grains, or the
  /// caller is already inside a parallel region — the serial fast path.
  bool parallel_viable(int64_t n, int64_t grain) const;
  void run_impl(int64_t begin, int64_t end, int64_t grain, RangeFn fn, void* ctx);

  struct Impl;
  Impl* impl_;
  int threads_;
};

/// Convenience free function: ThreadPool::instance().parallel_for(...).
template <typename Fn>
inline void parallel_for(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  ThreadPool::instance().parallel_for(begin, end, grain, static_cast<Fn&&>(fn));
}

/// Static 2-D tile grid for fused (sample × channel-tile) parallelism.
///
/// The conv hot paths parallelize over samples, which starves the pool
/// at batch sizes below the thread count (the batch-1 serving case). A
/// Grid2d splits axis 0 (samples) first — it is the cheap axis, since
/// per-tile staging such as im2col is shared by everything in the tile —
/// and only splits axis 1 (output channels) when axis 0 alone cannot
/// occupy every pool slot. Tile boundaries never split a reduction, so
/// any tiling produces bit-identical results; the grid only decides how
/// the identical work is distributed.
///
/// Linear tile ids enumerate axis 1 fastest: ids t1()*i + j for one
/// axis-0 tile i are consecutive, so a pool chunk holding several tiles
/// revisits the same axis-0 range back to back and can stage it once.
class Grid2d {
 public:
  struct Range {
    int64_t lo, hi;
  };

  /// grain0/grain1 are per-tile floors: a tile never covers fewer than
  /// grainX indices of axis X unless the whole axis is smaller (grain
  /// <= 0 means 1). `threads` sizes the grid (usually
  /// ThreadPool::instance().threads()); 1 yields a single tile — the
  /// exact serial path.
  Grid2d(int64_t n0, int64_t n1, int64_t grain0, int64_t grain1, int threads)
      : n0_(n0 > 0 ? n0 : 0), n1_(n1 > 0 ? n1 : 0) {
    const int64_t want = threads > 1 ? threads : 1;
    const int64_t max0 = n0_ / (grain0 > 0 ? grain0 : 1);
    const int64_t max1 = n1_ / (grain1 > 0 ? grain1 : 1);
    t0_ = std::min<int64_t>(std::max<int64_t>(max0, 1), want);
    t1_ = t0_ >= want ? 1
                      : std::min<int64_t>(std::max<int64_t>(max1, 1), (want + t0_ - 1) / t0_);
    if (n0_ == 0 || n1_ == 0) t0_ = t1_ = 0;
  }

  int64_t tiles() const { return t0_ * t1_; }
  int64_t tiles0() const { return t0_; }
  int64_t tiles1() const { return t1_; }

  /// Linear tile id -> per-axis tile index (axis 1 fastest).
  int64_t tile0(int64_t t) const { return t / t1_; }
  int64_t tile1(int64_t t) const { return t % t1_; }

  /// Contiguous balanced [lo, hi) covered by axis-X tile i — the same
  /// base/remainder split the pool uses for its chunks.
  Range range0(int64_t i) const { return axis_range(i, n0_, t0_); }
  Range range1(int64_t i) const { return axis_range(i, n1_, t1_); }

 private:
  static Range axis_range(int64_t i, int64_t n, int64_t t) {
    const int64_t base = n / t, rem = n % t;
    const int64_t lo = i * base + (i < rem ? i : rem);
    return {lo, lo + base + (i < rem ? 1 : 0)};
  }

  int64_t n0_, n1_;
  int64_t t0_ = 0, t1_ = 0;
};

/// Fused 2-D parallel loop: fn(lo0, hi0, lo1, hi1) runs once per tile of
/// `grid`, tiles statically assigned to pool chunks in linear-id order.
/// Every (i, j) cell lands in exactly one tile, so disjoint-output work
/// is bit-identical for any thread count, including 1.
template <typename Fn>
inline void parallel_for_2d(const Grid2d& grid, Fn&& fn) {
  parallel_for(0, grid.tiles(), 1, [&](int64_t t_lo, int64_t t_hi) {
    for (int64_t t = t_lo; t < t_hi; ++t) {
      const Grid2d::Range r0 = grid.range0(grid.tile0(t));
      const Grid2d::Range r1 = grid.range1(grid.tile1(t));
      fn(r0.lo, r0.hi, r1.lo, r1.hi);
    }
  });
}

/// Convenience form: builds the grid from the live pool width.
template <typename Fn>
inline void parallel_for_2d(int64_t n0, int64_t n1, int64_t grain0, int64_t grain1, Fn&& fn) {
  parallel_for_2d(Grid2d(n0, n1, grain0, grain1, ThreadPool::instance().threads()),
                  static_cast<Fn&&>(fn));
}

}  // namespace shrinkbench
