// Persistent thread pool with a bit-deterministic parallel_for.
//
// The paper's comparisons are only meaningful when two runs differ in
// nothing but the pruning method, so parallelism here must never change
// results: parallel_for partitions [begin, end) into *static contiguous*
// chunks and every index's work runs sequentially inside exactly one
// chunk. As long as iterations write disjoint outputs and never reduce
// across indices (the contract for every call site in this repo), the
// floats produced are bit-identical for every thread count, including 1.
//
// Environment contract:
//
//   SB_THREADS=N   pool size (workers + calling thread). Unset -> the
//                  machine's hardware_concurrency. SB_THREADS=1 -> no
//                  threads are ever spawned and parallel_for invokes the
//                  body directly: the exact single-threaded code path
//                  with zero pool overhead.
//
// Nesting: a parallel_for issued from inside a pool worker (or inside a
// SerialGuard region, e.g. a sweep shard worker) runs inline and serial.
// Parallelism therefore lives at the outermost level that asks for it
// and inner levels degrade to the sequential code path.
//
// Observability: when SB_PROF is on, counters `threadpool.jobs` /
// `threadpool.chunks` count fan-outs and worker chunks run under a
// "pool.chunk" span on the worker's own thread-local span stack, so
// parallel work is attributed per thread; the metric registry itself is
// mutex-protected, so counters merge correctly when the pool quiesces.
// When SB_TELEMETRY is on, the pool additionally keeps job/chunk/queue
// counters and per-slot busy clocks, exported to the telemetry sampler
// through the obs::set_pool_sampler hook this TU registers at load (so
// sb_obs never links against sb_tensor). With profiling and telemetry
// off the pool adds a single cached-flag branch per fan-out — the
// zero-overhead contract of src/obs holds.
#pragma once

#include <cstdint>

namespace shrinkbench {

class ThreadPool {
 public:
  /// The process-wide pool. Workers are spawned lazily on the first
  /// parallel_for that can use them; SB_THREADS=1 never spawns any.
  static ThreadPool& instance();

  /// SB_THREADS, or hardware_concurrency when unset (min 1).
  static int default_threads();

  /// True while the calling thread executes a pool chunk or holds a
  /// SerialGuard — i.e. nested parallel_for calls will run inline.
  static bool in_parallel_region();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Pool size including the calling thread (>= 1).
  int threads() const { return threads_; }

  /// Reconfigures the pool size (joins existing workers; the next
  /// parallel job respawns). Requires no job in flight. Used by tests
  /// and benches to compare thread counts within one process; normal
  /// code should rely on SB_THREADS.
  void set_threads(int n);

  /// Marks the current thread as already-parallel so nested
  /// parallel_for calls run inline (used by sweep shard workers, whose
  /// parallelism is at the experiment level).
  class SerialGuard {
   public:
    SerialGuard();
    ~SerialGuard();
    SerialGuard(const SerialGuard&) = delete;
    SerialGuard& operator=(const SerialGuard&) = delete;

   private:
    bool prev_;
  };

  /// Runs fn(chunk_begin, chunk_end) over a static contiguous partition
  /// of [begin, end). At most threads() chunks are formed and no chunk
  /// is smaller than `grain` indices (grain <= 0 means 1), so tiny
  /// ranges stay on the calling thread. The call returns after every
  /// chunk has finished; the first exception thrown by any chunk is
  /// rethrown here.
  template <typename Fn>
  void parallel_for(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
    if (begin >= end) return;
    if (!parallel_viable(end - begin, grain)) {
      fn(begin, end);
      return;
    }
    run_impl(begin, end, grain, &invoke_range<Fn>, &fn);
  }

 private:
  ThreadPool();

  using RangeFn = void (*)(void* ctx, int64_t begin, int64_t end);

  template <typename Fn>
  static void invoke_range(void* ctx, int64_t begin, int64_t end) {
    (*static_cast<Fn*>(ctx))(begin, end);
  }

  /// False when the pool is size 1, the range is below 2 grains, or the
  /// caller is already inside a parallel region — the serial fast path.
  bool parallel_viable(int64_t n, int64_t grain) const;
  void run_impl(int64_t begin, int64_t end, int64_t grain, RangeFn fn, void* ctx);

  struct Impl;
  Impl* impl_;
  int threads_;
};

/// Convenience free function: ThreadPool::instance().parallel_for(...).
template <typename Fn>
inline void parallel_for(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  ThreadPool::instance().parallel_for(begin, end, grain, static_cast<Fn&&>(fn));
}

}  // namespace shrinkbench
