// Core dense tensor type for the ShrinkBench C++ reproduction.
//
// Tensors are row-major, contiguous, float32, and have deep-copy value
// semantics: copying a Tensor copies its storage. All sharing between
// components (e.g. a layer's weights seen by an optimizer) is expressed
// explicitly through references or pointers to the owning object, never
// through hidden aliasing inside Tensor itself.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace shrinkbench {

/// Dimension sizes of a tensor, outermost first.
using Shape = std::vector<int64_t>;

/// Number of elements implied by a shape (1 for rank-0).
int64_t numel_of(const Shape& shape);

/// Human-readable form, e.g. "[64, 3, 8, 8]".
std::string to_string(const Shape& shape);

/// Dense row-major float32 tensor.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor scalar(float v) { return Tensor({}, {v}); }
  /// 1-D tensor from an explicit list of values.
  static Tensor of(std::initializer_list<float> values);

  const Shape& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t axis) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return std::span<float>(data_); }
  std::span<const float> flat() const { return std::span<const float>(data_); }

  float& at(int64_t i) { assert(i >= 0 && i < numel()); return data_[static_cast<size_t>(i)]; }
  float at(int64_t i) const { assert(i >= 0 && i < numel()); return data_[static_cast<size_t>(i)]; }

  // Multi-dimensional element access (rank-checked in debug builds).
  float& operator()(int64_t i);
  float operator()(int64_t i) const;
  float& operator()(int64_t i, int64_t j);
  float operator()(int64_t i, int64_t j) const;
  float& operator()(int64_t i, int64_t j, int64_t k);
  float operator()(int64_t i, int64_t j, int64_t k) const;
  float& operator()(int64_t i, int64_t j, int64_t k, int64_t l);
  float operator()(int64_t i, int64_t j, int64_t k, int64_t l) const;

  /// Returns a tensor with the same data and a new shape (numel must match).
  /// One dimension may be -1 to infer its size.
  Tensor reshaped(Shape new_shape) const&;
  Tensor reshaped(Shape new_shape) &&;
  /// Changes this tensor's shape in place (numel must match; -1 allowed).
  void reshape(Shape new_shape);

  void fill(float v);
  void zero() { fill(0.0f); }

  /// Deep copy (Tensor already copies deeply; clone() makes intent explicit).
  Tensor clone() const { return *this; }

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  Shape resolve_shape(Shape new_shape) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace shrinkbench
