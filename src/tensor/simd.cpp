#include "tensor/simd.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/log.hpp"
#include "obs/telemetry.hpp"

namespace shrinkbench::simd {

// Defined in simd_avx2.cpp (compiled with -mavx2 -mfma) and
// simd_avx512.cpp (compiled with -mavx512f -mavx512bw); null on targets
// where those TUs compile empty.
extern const BlockKernelFn kAvx2BlockKernel;
extern const BlockKernelFn kAvx512BlockKernel;

namespace {

// Portable block kernel. Four C rows are updated per pass over a B row,
// so each B load is amortized 4x and the inner loop autovectorizes under
// -O3. All-zero A rows are skipped — pruned weights hit this often.
void scalar_block_kernel(int64_t mb, int64_t nb, int64_t kb, const float* a, int64_t lda,
                         const float* b, int64_t ldb, float* c, int64_t ldc) {
  int64_t i = 0;
  for (; i + 4 <= mb; i += 4) {
    const float* a0 = a + (i + 0) * lda;
    const float* a1 = a + (i + 1) * lda;
    const float* a2 = a + (i + 2) * lda;
    const float* a3 = a + (i + 3) * lda;
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    for (int64_t p = 0; p < kb; ++p) {
      const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f) {
        continue;  // pruned-weight rows hit this often
      }
      const float* brow = b + p * ldb;
      for (int64_t j = 0; j < nb; ++j) {
        const float bv = brow[j];
        c0[j] += v0 * bv;
        c1[j] += v1 * bv;
        c2[j] += v2 * bv;
        c3[j] += v3 * bv;
      }
    }
  }
  for (; i < mb; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (int64_t p = 0; p < kb; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * ldb;
      for (int64_t j = 0; j < nb; ++j) crow[j] += av * brow[j];
    }
  }
}

// Best kernel the CPU (and this build) actually supports.
Level best_supported() {
  if (cpu_supports_avx512()) return Level::Avx512;
  if (cpu_supports_avx2()) return Level::Avx2;
  return Level::Scalar;
}

Level detect_level() {
  const char* env = std::getenv("SB_SIMD");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return Level::Scalar;
    if (std::strcmp(env, "avx2") == 0) {
      if (cpu_supports_avx2()) return Level::Avx2;
      SB_LOG_WARN("simd", "SB_SIMD=avx2 requested but unavailable (cpu or build); using scalar");
      return Level::Scalar;
    }
    if (std::strcmp(env, "avx512") == 0) {
      if (cpu_supports_avx512()) return Level::Avx512;
      const Level fb = best_supported();
      SB_LOG_WARN("simd", "SB_SIMD=avx512 requested but unavailable (cpu or build); using %s",
                  level_name(fb));
      return fb;
    }
    SB_LOG_WARN("simd", "unknown SB_SIMD value '%s' (expected avx512|avx2|scalar); autodetecting",
                env);
  }
  return best_supported();
}

// Push the effective tier into the telemetry host block (sb_obs cannot
// link sb_tensor; same hook pattern as the pool sampler). The callback
// resolves the level lazily, so registration never forces detection.
[[maybe_unused]] const bool g_simd_name_registered = [] {
  obs::set_simd_name_fn(+[]() { return level_name(active_level()); });
  return true;
}();

}  // namespace

bool cpu_supports_avx2() {
  if (kAvx2BlockKernel == nullptr) return false;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
  if (kAvx512BlockKernel == nullptr) return false;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw");
#else
  return false;
#endif
}

Level active_level() {
  static const Level level = detect_level();
  return level;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::Avx512: return "avx512";
    case Level::Avx2: return "avx2";
    case Level::Scalar: return "scalar";
  }
  return "unknown";
}

BlockKernelFn block_kernel(Level level) {
  if (level == Level::Avx512 && cpu_supports_avx512()) return kAvx512BlockKernel;
  if (level >= Level::Avx2 && cpu_supports_avx2()) return kAvx2BlockKernel;
  return scalar_block_kernel;
}

}  // namespace shrinkbench::simd
