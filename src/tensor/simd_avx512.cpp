// AVX-512 GEMM block microkernel. This TU is compiled with
// -mavx512f -mavx512bw (see src/tensor/CMakeLists.txt) and must only be
// entered after the runtime cpuid check in simd.cpp — everything else in
// the build stays baseline-portable.
//
// Same contract and structure as the AVX2 kernel, twice as wide: an 8x32
// C tile lives in zmm registers across the k loop (16 accumulators + 2 B
// vectors + 1 broadcast = 19 of the 32 zmm registers), and packed A
// columns that are zero across the whole micro-row group are skipped —
// the pruned-weight fast path, 512-bit edition. Each C element still
// accumulates one fused multiply-add per k index in ascending order, the
// same arithmetic sequence as the AVX2 kernel, so tiling cannot change
// the bits a given kernel produces.
#include "tensor/simd.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstdint>

namespace shrinkbench::simd {

namespace {

constexpr int kMr = 8;           // C tile rows held in registers
constexpr int kNr = 32;          // C tile cols: two 16-float zmm vectors
constexpr int64_t kMaxK = 1024;  // k-chunk bound so the column mask fits on the stack

// 8x32 (or fewer rows) register-blocked tile: C[ROWS,32] += A[ROWS,kc] * B[kc,32].
template <int ROWS, bool SKIP>
void tile32(int64_t kc, const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
            int64_t ldc, const uint8_t* colmask) {
  __m512 lo[ROWS], hi[ROWS];
  for (int r = 0; r < ROWS; ++r) {
    lo[r] = _mm512_loadu_ps(c + r * ldc);
    hi[r] = _mm512_loadu_ps(c + r * ldc + 16);
  }
  for (int64_t p = 0; p < kc; ++p) {
    if (SKIP && colmask[p]) continue;
    const __m512 b0 = _mm512_loadu_ps(b + p * ldb);
    const __m512 b1 = _mm512_loadu_ps(b + p * ldb + 16);
    for (int r = 0; r < ROWS; ++r) {
      const __m512 av = _mm512_set1_ps(a[r * lda + p]);
      lo[r] = _mm512_fmadd_ps(av, b0, lo[r]);
      hi[r] = _mm512_fmadd_ps(av, b1, hi[r]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    _mm512_storeu_ps(c + r * ldc, lo[r]);
    _mm512_storeu_ps(c + r * ldc + 16, hi[r]);
  }
}

using TileFn = void (*)(int64_t, const float*, int64_t, const float*, int64_t, float*, int64_t,
                        const uint8_t*);

template <int ROWS>
constexpr TileFn pick_tile(bool skip) {
  return skip ? &tile32<ROWS, true> : &tile32<ROWS, false>;
}

TileFn tile_for(int rows, bool skip) {
  switch (rows) {
    case 1: return pick_tile<1>(skip);
    case 2: return pick_tile<2>(skip);
    case 3: return pick_tile<3>(skip);
    case 4: return pick_tile<4>(skip);
    case 5: return pick_tile<5>(skip);
    case 6: return pick_tile<6>(skip);
    case 7: return pick_tile<7>(skip);
    default: return pick_tile<8>(skip);
  }
}

void avx512_block_kernel(int64_t mb, int64_t nb, int64_t kb, const float* a, int64_t lda,
                         const float* b, int64_t ldb, float* c, int64_t ldc) {
  uint8_t colmask[kMaxK];
  for (int64_t k0 = 0; k0 < kb; k0 += kMaxK) {
    const int64_t kc = std::min(kMaxK, kb - k0);
    const float* ak = a + k0;
    const float* bk = b + k0 * ldb;
    for (int64_t i = 0; i < mb; i += kMr) {
      const int rows = static_cast<int>(std::min<int64_t>(kMr, mb - i));
      const float* ap = ak + i * lda;
      // Column-zero scan over this micro-row group, shared by every j
      // tile. A column contributes nothing when all `rows` entries are
      // +0.0f; OR-ing the bit patterns detects that without FP compares.
      int64_t zero_cols = 0;
      for (int64_t p = 0; p < kc; ++p) {
        uint32_t bits = 0;
        for (int r = 0; r < rows; ++r) bits |= std::bit_cast<uint32_t>(ap[r * lda + p]);
        colmask[p] = bits == 0 ? 1 : 0;
        zero_cols += colmask[p];
      }
      const TileFn tile = tile_for(rows, zero_cols > 0);
      float* ci = c + i * ldc;
      int64_t j = 0;
      for (; j + kNr <= nb; j += kNr) tile(kc, ap, lda, bk + j, ldb, ci + j, ldc, colmask);
      if (j < nb) {
        // Column tail (< 32 wide): scalar, still honoring the zero mask.
        for (int64_t p = 0; p < kc; ++p) {
          if (colmask[p]) continue;
          const float* brow = bk + p * ldb;
          for (int r = 0; r < rows; ++r) {
            const float av = ap[r * lda + p];
            if (av == 0.0f) continue;
            float* crow = ci + r * ldc;
            for (int64_t jj = j; jj < nb; ++jj) crow[jj] += av * brow[jj];
          }
        }
      }
    }
  }
}

}  // namespace

extern const BlockKernelFn kAvx512BlockKernel = &avx512_block_kernel;

}  // namespace shrinkbench::simd

#else  // !(__AVX512F__ && __AVX512BW__): no kernel on this target; dispatch falls back.

namespace shrinkbench::simd {
extern const BlockKernelFn kAvx512BlockKernel = nullptr;
}  // namespace shrinkbench::simd

#endif
