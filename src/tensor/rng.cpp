#include "tensor/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace shrinkbench {

namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int64_t Rng::randint(int64_t n) {
  if (n <= 0) throw std::invalid_argument("Rng::randint: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<int64_t> Rng::permutation(int64_t n) {
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t j = randint(i + 1);
    std::swap(perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]);
  }
  return perm;
}

Rng Rng::fork() { return Rng(next_u64()); }

RngState Rng::state() const {
  RngState s;
  for (int i = 0; i < 4; ++i) s.s[i] = state_[i];
  s.cached_normal = cached_normal_;
  s.has_cached_normal = has_cached_normal_;
  return s;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

void Rng::fill_uniform(Tensor& t, float lo, float hi) {
  for (float& x : t.flat()) x = static_cast<float>(uniform(lo, hi));
}

void Rng::fill_normal(Tensor& t, float mean, float stddev) {
  for (float& x : t.flat()) x = static_cast<float>(normal(mean, stddev));
}

void Rng::fill_bernoulli(Tensor& t, double p) {
  for (float& x : t.flat()) x = bernoulli(p) ? 1.0f : 0.0f;
}

}  // namespace shrinkbench
