#include "tensor/tensor.hpp"

#include <sstream>
#include <stdexcept>

namespace shrinkbench {

int64_t numel_of(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("numel_of: negative dimension in " + to_string(shape));
    n *= d;
  }
  return n;
}

std::string to_string(const Shape& shape) {
  std::ostringstream ss;
  ss << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) ss << ", ";
    ss << shape[i];
  }
  ss << ']';
  return ss.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<size_t>(numel_of(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(static_cast<size_t>(numel_of(shape_)), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (numel_of(shape_) != static_cast<int64_t>(data_.size())) {
    throw std::invalid_argument("Tensor: shape " + to_string(shape_) + " does not match " +
                                std::to_string(data_.size()) + " values");
  }
}

Tensor Tensor::of(std::initializer_list<float> values) {
  return Tensor({static_cast<int64_t>(values.size())}, std::vector<float>(values));
}

int64_t Tensor::size(int64_t axis) const {
  if (axis < 0) axis += dim();
  if (axis < 0 || axis >= dim()) {
    throw std::out_of_range("Tensor::size: axis " + std::to_string(axis) + " out of range for " +
                            to_string(shape_));
  }
  return shape_[static_cast<size_t>(axis)];
}

float& Tensor::operator()(int64_t i) {
  assert(dim() == 1);
  return at(i);
}
float Tensor::operator()(int64_t i) const {
  assert(dim() == 1);
  return at(i);
}
float& Tensor::operator()(int64_t i, int64_t j) {
  assert(dim() == 2);
  return at(i * shape_[1] + j);
}
float Tensor::operator()(int64_t i, int64_t j) const {
  assert(dim() == 2);
  return at(i * shape_[1] + j);
}
float& Tensor::operator()(int64_t i, int64_t j, int64_t k) {
  assert(dim() == 3);
  return at((i * shape_[1] + j) * shape_[2] + k);
}
float Tensor::operator()(int64_t i, int64_t j, int64_t k) const {
  assert(dim() == 3);
  return at((i * shape_[1] + j) * shape_[2] + k);
}
float& Tensor::operator()(int64_t i, int64_t j, int64_t k, int64_t l) {
  assert(dim() == 4);
  return at(((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l);
}
float Tensor::operator()(int64_t i, int64_t j, int64_t k, int64_t l) const {
  assert(dim() == 4);
  return at(((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l);
}

Shape Tensor::resolve_shape(Shape new_shape) const {
  int64_t known = 1;
  int infer_axis = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      if (infer_axis != -1) throw std::invalid_argument("reshape: more than one -1 dimension");
      infer_axis = static_cast<int>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer_axis >= 0) {
    if (known == 0 || numel() % known != 0) {
      throw std::invalid_argument("reshape: cannot infer dimension for " + to_string(new_shape) +
                                  " from numel " + std::to_string(numel()));
    }
    new_shape[static_cast<size_t>(infer_axis)] = numel() / known;
  }
  if (numel_of(new_shape) != numel()) {
    throw std::invalid_argument("reshape: " + to_string(shape_) + " -> " + to_string(new_shape) +
                                " changes element count");
  }
  return new_shape;
}

Tensor Tensor::reshaped(Shape new_shape) const& {
  Tensor out = *this;
  out.shape_ = resolve_shape(std::move(new_shape));
  return out;
}

Tensor Tensor::reshaped(Shape new_shape) && {
  shape_ = resolve_shape(std::move(new_shape));
  return std::move(*this);
}

void Tensor::reshape(Shape new_shape) { shape_ = resolve_shape(std::move(new_shape)); }

void Tensor::fill(float v) {
  for (float& x : data_) x = v;
}

}  // namespace shrinkbench
