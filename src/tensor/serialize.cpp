#include "tensor/serialize.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace shrinkbench {

namespace {
constexpr int64_t kTensorMagic = 0x5342544e53523031;  // "SBTNSR01"
}

void write_i64(std::ostream& os, int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

int64_t read_i64(std::istream& is) {
  int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("read_i64: truncated stream");
  return v;
}

void write_u64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t read_u64(std::istream& is) {
  uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("read_u64: truncated stream");
  return v;
}

void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

double read_f64(std::istream& is) {
  double v = 0.0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("read_f64: truncated stream");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_i64(os, static_cast<int64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const int64_t n = read_i64(is);
  if (n < 0 || n > (1 << 20)) throw std::runtime_error("read_string: implausible length");
  std::string s(static_cast<size_t>(n), '\0');
  is.read(s.data(), n);
  if (!is) throw std::runtime_error("read_string: truncated stream");
  return s;
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_i64(os, kTensorMagic);
  write_i64(os, t.dim());
  for (int64_t d : t.shape()) write_i64(os, d);
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
  if (read_i64(is) != kTensorMagic) throw std::runtime_error("read_tensor: bad magic");
  const int64_t rank = read_i64(is);
  if (rank < 0 || rank > 8) throw std::runtime_error("read_tensor: implausible rank");
  Shape shape(static_cast<size_t>(rank));
  for (auto& d : shape) d = read_i64(is);
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("read_tensor: truncated payload");
  return t;
}

}  // namespace shrinkbench
