// AVX2/FMA GEMM block microkernel. This TU is compiled with
// -mavx2 -mfma (see src/tensor/CMakeLists.txt) and must only be entered
// after the runtime cpuid check in simd.cpp — everything else in the
// build stays baseline-portable.
#include "tensor/simd.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstdint>

namespace shrinkbench::simd {

namespace {

constexpr int kMr = 6;         // C tile rows held in registers
constexpr int kNr = 16;        // C tile cols: two 8-float ymm vectors
constexpr int64_t kMaxK = 1024;  // k-chunk bound so the column mask fits on the stack

// 6x16 (or fewer rows) register-blocked tile: C[ROWS,16] += A[ROWS,kc] * B[kc,16].
// The whole C tile lives in ymm registers across the k loop; each step
// broadcasts one A value per row and issues two FMAs against the B row.
// With SKIP, packed A columns that are zero across every row of this
// micro-group (precomputed in `colmask`) are skipped — the pruned-weight
// fast path. Pruned weights are exact +0.0f, so the bitwise test in the
// mask scan cannot miss them.
template <int ROWS, bool SKIP>
void tile16(int64_t kc, const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
            int64_t ldc, const uint8_t* colmask) {
  __m256 lo[ROWS], hi[ROWS];
  for (int r = 0; r < ROWS; ++r) {
    lo[r] = _mm256_loadu_ps(c + r * ldc);
    hi[r] = _mm256_loadu_ps(c + r * ldc + 8);
  }
  for (int64_t p = 0; p < kc; ++p) {
    if (SKIP && colmask[p]) continue;
    const __m256 b0 = _mm256_loadu_ps(b + p * ldb);
    const __m256 b1 = _mm256_loadu_ps(b + p * ldb + 8);
    for (int r = 0; r < ROWS; ++r) {
      const __m256 av = _mm256_set1_ps(a[r * lda + p]);
      lo[r] = _mm256_fmadd_ps(av, b0, lo[r]);
      hi[r] = _mm256_fmadd_ps(av, b1, hi[r]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    _mm256_storeu_ps(c + r * ldc, lo[r]);
    _mm256_storeu_ps(c + r * ldc + 8, hi[r]);
  }
}

using TileFn = void (*)(int64_t, const float*, int64_t, const float*, int64_t, float*, int64_t,
                        const uint8_t*);

template <int ROWS>
constexpr TileFn pick_tile(bool skip) {
  return skip ? &tile16<ROWS, true> : &tile16<ROWS, false>;
}

TileFn tile_for(int rows, bool skip) {
  switch (rows) {
    case 1: return pick_tile<1>(skip);
    case 2: return pick_tile<2>(skip);
    case 3: return pick_tile<3>(skip);
    case 4: return pick_tile<4>(skip);
    case 5: return pick_tile<5>(skip);
    default: return pick_tile<6>(skip);
  }
}

void avx2_block_kernel(int64_t mb, int64_t nb, int64_t kb, const float* a, int64_t lda,
                       const float* b, int64_t ldb, float* c, int64_t ldc) {
  uint8_t colmask[kMaxK];
  for (int64_t k0 = 0; k0 < kb; k0 += kMaxK) {
    const int64_t kc = std::min(kMaxK, kb - k0);
    const float* ak = a + k0;
    const float* bk = b + k0 * ldb;
    for (int64_t i = 0; i < mb; i += kMr) {
      const int rows = static_cast<int>(std::min<int64_t>(kMr, mb - i));
      const float* ap = ak + i * lda;
      // Column-zero scan over this micro-row group, shared by every j
      // tile. A column contributes nothing when all `rows` entries are
      // +0.0f; OR-ing the bit patterns detects that without FP compares.
      int64_t zero_cols = 0;
      for (int64_t p = 0; p < kc; ++p) {
        uint32_t bits = 0;
        for (int r = 0; r < rows; ++r) bits |= std::bit_cast<uint32_t>(ap[r * lda + p]);
        colmask[p] = bits == 0 ? 1 : 0;
        zero_cols += colmask[p];
      }
      const TileFn tile = tile_for(rows, zero_cols > 0);
      float* ci = c + i * ldc;
      int64_t j = 0;
      for (; j + kNr <= nb; j += kNr) tile(kc, ap, lda, bk + j, ldb, ci + j, ldc, colmask);
      if (j < nb) {
        // Column tail (< 16 wide): scalar, still honoring the zero mask.
        for (int64_t p = 0; p < kc; ++p) {
          if (colmask[p]) continue;
          const float* brow = bk + p * ldb;
          for (int r = 0; r < rows; ++r) {
            const float av = ap[r * lda + p];
            if (av == 0.0f) continue;
            float* crow = ci + r * ldc;
            for (int64_t jj = j; jj < nb; ++jj) crow[jj] += av * brow[jj];
          }
        }
      }
    }
  }
}

}  // namespace

extern const BlockKernelFn kAvx2BlockKernel = &avx2_block_kernel;

}  // namespace shrinkbench::simd

#else  // !(__AVX2__ && __FMA__): no kernel on this target; dispatch falls back.

namespace shrinkbench::simd {
extern const BlockKernelFn kAvx2BlockKernel = nullptr;
}  // namespace shrinkbench::simd

#endif
