// Runtime-dispatched GEMM block microkernels.
//
// gemm() packs cache blocks of op(A) and op(B) into contiguous row-major
// scratch and hands them to a block kernel: C[mb,nb] += A[mb,kb] * B[kb,nb]
// with A pre-scaled by alpha. Two implementations exist:
//
//   * Scalar  — the portable 4-row kernel (autovectorizes under -O3); it
//               skips all-zero A rows, the pruned-weight fast path.
//   * Avx2    — an FMA/AVX2 register-blocked microkernel (6x16 C tile held
//               in registers) compiled in its own TU with -mavx2 -mfma so
//               the rest of the build stays baseline-portable. It skips
//               packed A columns that are zero across the whole micro-row
//               group (the pruned-weight fast path, vector edition).
//   * Avx512  — the same design twice as wide (8x32 C tile in zmm
//               registers), compiled in its own TU with -mavx512f
//               -mavx512bw and entered only after its own cpuid check.
//               Keeps the zero-column pruned-weight fast path.
//
// The active kernel is chosen once per process: SB_SIMD=avx512|avx2|scalar
// wins if set (an unsatisfiable request falls back to the best supported
// lower tier with a warning), otherwise cpuid picks the best kernel the
// CPU supports.
#pragma once

#include <cstdint>

namespace shrinkbench::simd {

enum class Level { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// Block kernel contract: C[mb,nb] += A[mb,kb] * B[kb,nb], all row-major
/// with the given leading dimensions. A and B point into packed scratch;
/// C points into the caller's output matrix.
using BlockKernelFn = void (*)(int64_t mb, int64_t nb, int64_t kb, const float* a, int64_t lda,
                               const float* b, int64_t ldb, float* c, int64_t ldc);

/// True when this build has an AVX2 kernel compiled in AND the CPU
/// reports avx2+fma at runtime.
bool cpu_supports_avx2();

/// True when this build has an AVX-512 kernel compiled in AND the CPU
/// reports avx512f+avx512bw at runtime.
bool cpu_supports_avx512();

/// The level selected for this process (env override or cpuid), cached
/// after the first call.
Level active_level();

const char* level_name(Level level);

/// Kernel for a specific level (tests compare them against each other).
/// Requesting an unsupported level returns the best supported kernel
/// below it (Avx512 -> Avx2 -> Scalar).
BlockKernelFn block_kernel(Level level);

inline BlockKernelFn active_block_kernel() { return block_kernel(active_level()); }

}  // namespace shrinkbench::simd
