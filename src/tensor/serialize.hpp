// Binary tensor (de)serialization.
//
// Used by the checkpoint store so that pretrained models are trained once
// and reused by every bench/example (the paper's "use the same initial
// model" recommendation, made literal). Format: magic, rank, dims, raw
// float32 payload, all little-endian.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "tensor/tensor.hpp"

namespace shrinkbench {

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

void write_string(std::ostream& os, const std::string& s);
std::string read_string(std::istream& is);

void write_i64(std::ostream& os, int64_t v);
int64_t read_i64(std::istream& is);

void write_u64(std::ostream& os, uint64_t v);
uint64_t read_u64(std::istream& is);

void write_f64(std::ostream& os, double v);
double read_f64(std::istream& is);

}  // namespace shrinkbench
