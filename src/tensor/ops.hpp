// Elementwise operations, reductions, and order statistics on Tensors.
//
// These are the building blocks shared by the NN layers (src/nn) and the
// pruning core (src/core). Everything operates on flat contiguous storage;
// shape-aware operations (conv, matmul) live in gemm.hpp / im2col.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.hpp"

namespace shrinkbench::ops {

// ---- elementwise (shapes must match exactly) ----
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
/// a += alpha * b
void axpy(Tensor& a, float alpha, const Tensor& b);
/// In-place a *= b (used for mask application).
void mul_inplace(Tensor& a, const Tensor& b);
void add_inplace(Tensor& a, const Tensor& b);
void scale_inplace(Tensor& a, float alpha);

Tensor scale(const Tensor& a, float alpha);
Tensor abs(const Tensor& a);
Tensor square(const Tensor& a);
/// Applies an arbitrary scalar function elementwise.
Tensor map(const Tensor& a, const std::function<float(float)>& f);

// ---- reductions ----
float sum(const Tensor& a);
float mean(const Tensor& a);
float min(const Tensor& a);
float max(const Tensor& a);
/// Sum of squares.
float sum_sq(const Tensor& a);
/// Number of elements with |x| > tol.
int64_t count_nonzero(const Tensor& a, float tol = 0.0f);

// ---- order statistics ----
/// Index of the maximum element (first on ties).
int64_t argmax(std::span<const float> values);
/// Indices of the k largest elements, in descending order of value.
std::vector<int64_t> topk_indices(std::span<const float> values, int64_t k);
/// The k-th smallest value (k is 0-based) — O(n) via nth_element.
/// Used by pruning allocators to find score thresholds.
float kth_smallest(std::vector<float> values, int64_t k);

// ---- comparisons (for tests) ----
/// Max |a - b| over all elements; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f, float rtol = 1e-5f);

}  // namespace shrinkbench::ops
