// Deterministic random number generation.
//
// ShrinkBench fixes random seeds for every experiment so that runs are
// exactly reproducible (paper, Appendix C). All randomness in this library
// flows through Rng: weight init, dataset synthesis, shuffling, random
// pruning, and minibatch selection for gradient-based scoring.
//
// The generator is xoshiro256++, seeded through splitmix64 so that small
// integer seeds (0, 1, 2, ...) produce well-mixed, independent streams.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace shrinkbench {

/// Complete serializable generator state: the xoshiro256++ words plus the
/// Box-Muller cache. Restoring it resumes the stream exactly where it
/// left off — the basis for bit-identical training resume (training
/// checkpoints capture the loader's shuffle/augment streams this way).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5b);

  /// Raw 64 random bits.
  uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n) for n > 0.
  int64_t randint(int64_t n);
  /// Standard normal via Box-Muller (cached pair).
  double normal();
  double normal(double mean, double stddev);
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<int64_t> permutation(int64_t n);

  /// Derive an independent child stream (for per-worker / per-class seeds).
  Rng fork();

  /// Snapshot / restore the full generator state (see RngState).
  RngState state() const;
  void set_state(const RngState& state);

  void fill_uniform(Tensor& t, float lo, float hi);
  void fill_normal(Tensor& t, float mean, float stddev);
  /// Fills with 0/1 values, 1 with probability p.
  void fill_bernoulli(Tensor& t, double p);

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace shrinkbench
