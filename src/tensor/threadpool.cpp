#include "tensor/threadpool.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/profile.hpp"
#include "obs/telemetry.hpp"

namespace shrinkbench {

namespace {

thread_local bool tl_in_parallel = false;

constexpr int kMaxPoolThreads = 256;

int env_threads() {
  if (const char* env = std::getenv("SB_THREADS"); env != nullptr && *env != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(v > kMaxPoolThreads ? kMaxPoolThreads : v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

// ---- telemetry accounting (obs cannot link tensor, so the pool pushes
// its utilization out through obs::set_pool_sampler) -------------------
//
// All relaxed atomics, touched only behind a telemetry_enabled() branch
// (plus the busy-clock reads) so the pool's overhead with telemetry off
// stays a single cached-flag check per fan-out.
std::atomic<int> g_pool_threads{0};  // 0 until the pool is constructed
std::atomic<int64_t> g_jobs{0};
std::atomic<int64_t> g_chunks{0};
std::atomic<int> g_pending_chunks{0};
std::array<std::atomic<int64_t>, kMaxPoolThreads> g_slot_busy_ns{};

obs::PoolSample collect_pool_sample() {
  obs::PoolSample s;
  s.threads = g_pool_threads.load(std::memory_order_relaxed);
  if (s.threads == 0) s.threads = ThreadPool::default_threads();
  s.jobs = g_jobs.load(std::memory_order_relaxed);
  s.chunks = g_chunks.load(std::memory_order_relaxed);
  // Clamp: enabling telemetry mid-job can skew the counter by one job.
  const int pending = g_pending_chunks.load(std::memory_order_relaxed);
  s.pending_chunks = pending > 0 ? pending : 0;
  s.in_flight = s.pending_chunks > 0 ? 1 : 0;
  const int slots = s.threads < kMaxPoolThreads ? s.threads : kMaxPoolThreads;
  s.slot_busy_seconds.reserve(static_cast<size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    s.slot_busy_seconds.push_back(static_cast<double>(g_slot_busy_ns[static_cast<size_t>(i)].load(
                                      std::memory_order_relaxed)) *
                                  1e-9);
  }
  return s;
}

[[maybe_unused]] const bool g_sampler_registered = [] {
  obs::set_pool_sampler(&collect_pool_sample);
  return true;
}();

}  // namespace

struct ThreadPool::Impl {
  // One job at a time; submitters serialize on submit_mu. The job is
  // described by a static partition: chunk c covers
  //   [begin + c*base + min(c, rem), +base + (c < rem)),
  // caller runs chunk 0, worker w runs chunk w.
  std::mutex submit_mu;

  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::vector<std::thread> workers;
  bool stop = false;
  uint64_t epoch = 0;

  RangeFn fn = nullptr;
  void* ctx = nullptr;
  int64_t begin = 0;
  int64_t base = 0;
  int64_t rem = 0;
  int chunks = 0;
  std::atomic<int> pending{0};

  std::mutex err_mu;
  std::exception_ptr first_error;

  void record_error() {
    std::lock_guard<std::mutex> lock(err_mu);
    if (!first_error) first_error = std::current_exception();
  }

  void run_chunk(int c) {
    const int64_t lo = begin + c * base + (c < rem ? c : rem);
    const int64_t hi = lo + base + (c < rem ? 1 : 0);
    // Busy-clock accounting only while telemetry is on; the sampler
    // reads the per-slot totals to derive busy fractions.
    const bool timed = obs::telemetry_enabled();
    const auto t0 = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    try {
      fn(ctx, lo, hi);
    } catch (...) {
      record_error();
    }
    if (timed) {
      const auto busy = std::chrono::steady_clock::now() - t0;
      const size_t slot = static_cast<size_t>(c < kMaxPoolThreads ? c : kMaxPoolThreads - 1);
      g_slot_busy_ns[slot].fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(busy).count(),
          std::memory_order_relaxed);
      g_pending_chunks.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void worker_main(int id) {
    tl_in_parallel = true;  // nested parallel_for on a worker runs inline
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv_work.wait(lock, [&] { return stop || epoch != seen; });
      if (stop) return;
      seen = epoch;
      const bool participates = id < chunks;
      lock.unlock();
      if (participates) {
        {
          // Per-thread span attribution: the chunk is the root span on
          // this worker's own stack, so nested spans (conv2d.fwd, ...)
          // show up under pool.chunk for the thread that ran them.
          obs::ScopedTimer span("pool.chunk");
          run_chunk(id);
        }
        if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> done_lock(mu);
          cv_done.notify_all();
        }
      }
      lock.lock();
    }
  }

  void ensure_workers(int count) {
    while (static_cast<int>(workers.size()) < count) {
      const int id = static_cast<int>(workers.size()) + 1;  // chunk index
      workers.emplace_back([this, id] { worker_main(id); });
    }
  }

  void join_workers() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv_work.notify_all();
    for (std::thread& t : workers) t.join();
    workers.clear();
    stop = false;
  }
};

ThreadPool::ThreadPool() : impl_(new Impl), threads_(default_threads()) {
  g_pool_threads.store(threads_, std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  impl_->join_workers();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::default_threads() {
  static const int n = env_threads();
  return n;
}

bool ThreadPool::in_parallel_region() { return tl_in_parallel; }

void ThreadPool::set_threads(int n) {
  if (n < 1) throw std::invalid_argument("ThreadPool::set_threads: n must be >= 1");
  std::lock_guard<std::mutex> submit_lock(impl_->submit_mu);
  impl_->join_workers();
  threads_ = n;
  g_pool_threads.store(threads_, std::memory_order_relaxed);
}

bool ThreadPool::parallel_viable(int64_t n, int64_t grain) const {
  if (threads_ <= 1 || tl_in_parallel) return false;
  const int64_t g = grain > 0 ? grain : 1;
  return n >= 2 * g;  // otherwise only one chunk would form
}

void ThreadPool::run_impl(int64_t begin, int64_t end, int64_t grain, RangeFn fn, void* ctx) {
  const int64_t n = end - begin;
  const int64_t g = grain > 0 ? grain : 1;
  int64_t chunks64 = n / g;  // every chunk holds at least one grain
  if (chunks64 > threads_) chunks64 = threads_;
  const int chunks = static_cast<int>(chunks64);

  Impl& im = *impl_;
  std::lock_guard<std::mutex> submit_lock(im.submit_mu);
  if (obs::profiling_enabled()) {
    obs::count("threadpool.jobs");
    obs::count("threadpool.chunks", chunks);
  }
  if (obs::telemetry_enabled()) {
    g_jobs.fetch_add(1, std::memory_order_relaxed);
    g_chunks.fetch_add(chunks, std::memory_order_relaxed);
    g_pending_chunks.fetch_add(chunks, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.ensure_workers(threads_ - 1);
    im.fn = fn;
    im.ctx = ctx;
    im.begin = begin;
    im.base = n / chunks;
    im.rem = n % chunks;
    im.chunks = chunks;
    im.pending.store(chunks - 1, std::memory_order_release);
    ++im.epoch;
  }
  im.cv_work.notify_all();

  // The caller is chunk 0; mark it parallel so nested calls stay serial.
  tl_in_parallel = true;
  im.run_chunk(0);
  tl_in_parallel = false;

  {
    std::unique_lock<std::mutex> lock(im.mu);
    im.cv_done.wait(lock, [&] { return im.pending.load(std::memory_order_acquire) == 0; });
  }
  if (im.first_error) {
    std::exception_ptr err = im.first_error;
    im.first_error = nullptr;
    std::rethrow_exception(err);
  }
}

ThreadPool::SerialGuard::SerialGuard() : prev_(tl_in_parallel) { tl_in_parallel = true; }
ThreadPool::SerialGuard::~SerialGuard() { tl_in_parallel = prev_; }

}  // namespace shrinkbench
