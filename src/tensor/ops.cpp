#include "tensor/ops.hpp"

#include "tensor/threadpool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace shrinkbench::ops {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + to_string(a.shape()) +
                                " vs " + to_string(b.shape()));
  }
}

// Map-style ops (disjoint per-element writes, no cross-index reduction)
// fan out over the pool; each element is computed by exactly one chunk,
// so results are bit-identical for every thread count. Reductions (sum,
// min/max, ...) stay sequential — splitting them would reorder the
// accumulation. The grain keeps small tensors on the calling thread.
constexpr int64_t kElemGrain = int64_t{1} << 16;
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  float* o = out.data();
  const float* bp = b.data();
  parallel_for(0, out.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) o[i] -= bp[i];
  });
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a;
  mul_inplace(out, b);
  return out;
}

void axpy(Tensor& a, float alpha, const Tensor& b) {
  check_same_shape(a, b, "axpy");
  float* ap = a.data();
  const float* bp = b.data();
  parallel_for(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) ap[i] += alpha * bp[i];
  });
}

void mul_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul_inplace");
  float* ap = a.data();
  const float* bp = b.data();
  parallel_for(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) ap[i] *= bp[i];
  });
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  float* ap = a.data();
  const float* bp = b.data();
  parallel_for(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) ap[i] += bp[i];
  });
}

void scale_inplace(Tensor& a, float alpha) {
  float* ap = a.data();
  parallel_for(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) ap[i] *= alpha;
  });
}

Tensor scale(const Tensor& a, float alpha) {
  Tensor out = a;
  scale_inplace(out, alpha);
  return out;
}

Tensor abs(const Tensor& a) {
  return map(a, [](float x) { return std::fabs(x); });
}

Tensor square(const Tensor& a) {
  return map(a, [](float x) { return x * x; });
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out = a;
  for (float& x : out.flat()) x = f(x);
  return out;
}

float sum(const Tensor& a) {
  // Kahan summation: experiments accumulate over long vectors and we want
  // seed-level reproducibility to not be polluted by accumulation error.
  double s = 0.0;
  for (float x : a.flat()) s += static_cast<double>(x);
  return static_cast<float>(s);
}

float mean(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("mean of empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float min(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("min of empty tensor");
  return *std::min_element(a.flat().begin(), a.flat().end());
}

float max(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("max of empty tensor");
  return *std::max_element(a.flat().begin(), a.flat().end());
}

float sum_sq(const Tensor& a) {
  double s = 0.0;
  for (float x : a.flat()) s += static_cast<double>(x) * static_cast<double>(x);
  return static_cast<float>(s);
}

int64_t count_nonzero(const Tensor& a, float tol) {
  int64_t n = 0;
  for (float x : a.flat()) {
    if (std::fabs(x) > tol) ++n;
  }
  return n;
}

int64_t argmax(std::span<const float> values) {
  if (values.empty()) throw std::invalid_argument("argmax of empty span");
  return std::distance(values.begin(), std::max_element(values.begin(), values.end()));
}

std::vector<int64_t> topk_indices(std::span<const float> values, int64_t k) {
  const int64_t n = static_cast<int64_t>(values.size());
  if (k < 0 || k > n) throw std::invalid_argument("topk_indices: k out of range");
  std::vector<int64_t> idx(static_cast<size_t>(n));
  std::iota(idx.begin(), idx.end(), int64_t{0});
  auto greater_by_value = [&](int64_t a, int64_t b) {
    if (values[static_cast<size_t>(a)] != values[static_cast<size_t>(b)]) {
      return values[static_cast<size_t>(a)] > values[static_cast<size_t>(b)];
    }
    return a < b;  // deterministic tie-break
  };
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(), greater_by_value);
  idx.resize(static_cast<size_t>(k));
  return idx;
}

float kth_smallest(std::vector<float> values, int64_t k) {
  if (values.empty() || k < 0 || k >= static_cast<int64_t>(values.size())) {
    throw std::invalid_argument("kth_smallest: k out of range");
  }
  std::nth_element(values.begin(), values.begin() + k, values.end());
  return values[static_cast<size_t>(k)];
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  float m = 0.0f;
  const float* ap = a.data();
  const float* bp = b.data();
  for (int64_t i = 0, n = a.numel(); i < n; ++i) m = std::max(m, std::fabs(ap[i] - bp[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!a.same_shape(b)) return false;
  const float* ap = a.data();
  const float* bp = b.data();
  for (int64_t i = 0, n = a.numel(); i < n; ++i) {
    const float tol = atol + rtol * std::fabs(bp[i]);
    if (std::fabs(ap[i] - bp[i]) > tol) return false;
  }
  return true;
}

}  // namespace shrinkbench::ops
