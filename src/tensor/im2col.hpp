// im2col / col2im lowering for NCHW convolutions.
//
// Conv2d forward lowers each image to a [C*kh*kw, out_h*out_w] column
// matrix and multiplies by the [out_c, C*kh*kw] weight matrix; the
// backward pass scatters gradients back with col2im. Padding is implicit
// zero padding.
#pragma once

#include <cstdint>

namespace shrinkbench {

struct ConvGeometry {
  int64_t in_c = 0, in_h = 0, in_w = 0;
  int64_t kernel_h = 0, kernel_w = 0;
  int64_t stride = 1;
  int64_t pad = 0;

  int64_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  int64_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  /// Rows of the column matrix: one per (channel, kernel position).
  int64_t col_rows() const { return in_c * kernel_h * kernel_w; }
  /// Columns of the column matrix: one per output spatial position.
  int64_t col_cols() const { return out_h() * out_w(); }
};

/// image: [in_c, in_h, in_w] contiguous; cols: [col_rows, col_cols] contiguous.
void im2col(const ConvGeometry& g, const float* image, float* cols);

/// Inverse scatter-add of im2col: accumulates cols back into image.
/// The caller must zero `image` beforehand if accumulation from a clean
/// slate is desired.
void col2im(const ConvGeometry& g, const float* cols, float* image);

/// Strided variants for batching: one image's columns are written into a
/// wider matrix whose rows are `ld` floats apart (ld >= col_cols). Batching
/// all images of a minibatch into one [col_rows, N*col_cols] matrix turns
/// a convolution into a single large GEMM instead of N tiny ones — the key
/// throughput lever on the single-core reproduction host.
void im2col_ld(const ConvGeometry& g, const float* image, float* cols, int64_t ld);
void col2im_ld(const ConvGeometry& g, const float* cols, int64_t ld, float* image);

/// Serial channel-range col2im for fused-grid tiles whose caller owns the
/// parallelism: scatters `channels` consecutive channels' column rows
/// into their image planes. `cols` points at the tile's first row — the
/// (first channel, kh=0, kw=0) row — and `image` at the first channel's
/// plane, so the tile is self-contained and geometry-relative.
void col2im_channels_ld(const ConvGeometry& g, const float* cols, int64_t ld, float* image,
                        int64_t channels);

}  // namespace shrinkbench
