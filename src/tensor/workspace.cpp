#include "tensor/workspace.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>
#include <stdexcept>

#include "obs/profile.hpp"

namespace shrinkbench {

namespace {

constexpr size_t kAlign = 64;
constexpr size_t kMinChunk = size_t{1} << 20;  // 1 MiB floor keeps early growth coarse

size_t round_up(size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

}  // namespace

Workspace& Workspace::tls() {
  static thread_local Workspace ws;
  return ws;
}

Workspace::~Workspace() {
  for (Chunk& ch : chunks_) std::free(ch.data);
}

size_t Workspace::capacity() const {
  size_t total = 0;
  for (const Chunk& ch : chunks_) total += ch.size;
  return total;
}

void* Workspace::get(size_t bytes) {
  if (scope_depth_ == 0) {
    throw std::logic_error("Workspace::get outside any Workspace::Scope");
  }
  const size_t need = round_up(bytes == 0 ? 1 : bytes);
  if (chunks_.empty() || chunks_[current_].used + need > chunks_[current_].size) {
    // Later chunks are empty under LIFO scope discipline; reuse one that
    // fits before growing.
    size_t idx = current_ + (chunks_.empty() ? 0 : 1);
    while (idx < chunks_.size() && chunks_[idx].size < need) ++idx;
    if (idx == chunks_.size()) {
      const size_t size = std::max({need, capacity(), kMinChunk});
      void* data = std::aligned_alloc(kAlign, size);
      if (data == nullptr) throw std::bad_alloc();
      chunks_.push_back(Chunk{data, size, 0});
      ++grow_count_;
      if (obs::profiling_enabled()) {
        obs::count("workspace.grow");
        obs::set_gauge("workspace.capacity_bytes", static_cast<double>(capacity()));
      }
    }
    current_ = idx;
    fragmented_ = fragmented_ || chunks_.size() > 1;
  }
  Chunk& ch = chunks_[current_];
  void* p = static_cast<char*>(ch.data) + ch.used;
  ch.used += need;
  in_use_ += need;
  if (in_use_ > high_water_) {
    high_water_ = in_use_;
    if (obs::profiling_enabled()) {
      obs::set_gauge("workspace.high_water_bytes", static_cast<double>(high_water_));
    }
  }
  return p;
}

void Workspace::release() {
  if (scope_depth_ != 0) throw std::logic_error("Workspace::release with live scopes");
  for (Chunk& ch : chunks_) std::free(ch.data);
  chunks_.clear();
  current_ = 0;
  in_use_ = 0;
  high_water_ = 0;
  grow_count_ = 0;
  fragmented_ = false;
}

Workspace::Scope::Scope() : ws_(Workspace::tls()) {
  chunk_ = ws_.current_;
  used_ = ws_.chunks_.empty() ? 0 : ws_.chunks_[ws_.current_].used;
  in_use_ = ws_.in_use_;
  ++ws_.scope_depth_;
}

Workspace::Scope::~Scope() {
  --ws_.scope_depth_;
  for (size_t idx = chunk_ + 1; idx < ws_.chunks_.size(); ++idx) ws_.chunks_[idx].used = 0;
  if (chunk_ < ws_.chunks_.size()) ws_.chunks_[chunk_].used = used_;
  ws_.current_ = chunk_;
  ws_.in_use_ = in_use_;
  if (ws_.scope_depth_ == 0 && ws_.fragmented_) {
    // Idle and spread across chunks: consolidate into one allocation
    // sized to the high-water mark so steady state never grows again.
    for (Chunk& ch : ws_.chunks_) std::free(ch.data);
    ws_.chunks_.clear();
    ws_.current_ = 0;
    ws_.fragmented_ = false;
    const size_t size = std::max(round_up(ws_.high_water_), kMinChunk);
    void* data = std::aligned_alloc(kAlign, size);
    if (data != nullptr) {
      ws_.chunks_.push_back(Chunk{data, size, 0});
      ++ws_.grow_count_;
      if (obs::profiling_enabled()) {
        obs::count("workspace.grow");
        obs::set_gauge("workspace.capacity_bytes", static_cast<double>(size));
      }
    }
  }
}

}  // namespace shrinkbench
