// Thread-local grow-only workspace arena for hot-path scratch.
//
// The im2col/GEMM substrate used to heap-allocate fresh std::vector
// buffers on every conv/linear call — thousands of allocations per
// training step. The arena replaces them with bump allocation from a
// thread-local pool that grows to the high-water mark once and is then
// reused forever: after warm-up, a training step performs zero heap
// allocations for scratch.
//
// Usage:
//
//   Workspace::Scope scope;                 // RAII: frees on destruction
//   float* cols = Workspace::tls().floats(rows * cols_n);
//   ...
//
// Scopes nest (conv's scope holds cols while gemm's scope holds its pack
// buffers on top) and must be destroyed in LIFO order, which C++ scoping
// guarantees. Pointers are valid until the enclosing Scope dies; never
// store them across calls. All returns are 64-byte aligned.
//
// Observability (only when SB_PROF is on): gauges
// `workspace.high_water_bytes` / `workspace.capacity_bytes` and counter
// `workspace.grow` — a steady-state training loop must show a stable
// high-water mark and no further grow events.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shrinkbench {

class Workspace {
 public:
  /// The calling thread's arena (constructed on first use).
  static Workspace& tls();

  Workspace() = default;
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// 64-byte-aligned scratch valid until the innermost live Scope dies.
  /// Calling with no live Scope is an error (throws std::logic_error) —
  /// scratch that can never be reclaimed is a leak, not a cache.
  void* get(size_t bytes);
  float* floats(size_t n) { return static_cast<float*>(get(n * sizeof(float))); }

  /// Bytes handed out by live allocations right now.
  size_t in_use() const { return in_use_; }
  /// Total bytes owned by the arena across all chunks.
  size_t capacity() const;
  /// Maximum in_use() ever observed — what steady state converges to.
  size_t high_water() const { return high_water_; }
  /// Number of chunk mallocs performed (growth events). Stable once warm.
  int64_t grow_count() const { return grow_count_; }

  /// Frees all chunks (requires no live scopes). Mainly for tests.
  void release();

  class Scope {
   public:
    Scope();
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    size_t chunk_;
    size_t used_;
    size_t in_use_;
  };

 private:
  struct Chunk {
    void* data = nullptr;
    size_t size = 0;
    size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  size_t current_ = 0;     // index of the chunk being bumped
  size_t in_use_ = 0;      // live bytes across all chunks
  size_t high_water_ = 0;
  int64_t grow_count_ = 0;
  int64_t scope_depth_ = 0;
  bool fragmented_ = false;  // >1 chunk was live at once; consolidate when idle
};

}  // namespace shrinkbench
