// Single-precision matrix multiplication.
//
// The convolution and linear layers lower onto this one routine (via
// im2col), so it is the hot loop of the whole benchmark suite. The kernel
// is a cache-blocked ikj loop whose innermost loop vectorizes under
// -O3 -march=native; on the single-core reproduction host it is the
// difference between benches finishing in seconds vs. minutes.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace shrinkbench {

/// C[M,N] = alpha * op(A)[M,K] * op(B)[K,N] + beta * C[M,N]
/// op(X) = X or X^T depending on trans_a / trans_b. All matrices are
/// row-major with the given leading dimensions (elements per row).
void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, int64_t lda, const float* b, int64_t ldb, float beta, float* c,
          int64_t ldc);

/// out[M,N] = a[M,K] * b[K,N]; both inputs must be rank-2.
Tensor matmul(const Tensor& a, const Tensor& b);

/// out[M,N] = a[K,M]^T * b[K,N]
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// out[M,N] = a[M,K] * b[N,K]^T
Tensor matmul_nt(const Tensor& a, const Tensor& b);

}  // namespace shrinkbench
