#include "tensor/gemm.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/profile.hpp"
#include "tensor/simd.hpp"
#include "tensor/threadpool.hpp"
#include "tensor/workspace.hpp"

namespace shrinkbench {

namespace {

// Cache-blocking parameters sized for typical L1/L2 on x86-64.
constexpr int64_t kBlockM = 64;
constexpr int64_t kBlockN = 256;
constexpr int64_t kBlockK = 256;

// Don't fan a GEMM out unless each chunk carries at least this many
// multiply-adds; below it the pool handoff costs more than it saves.
constexpr int64_t kMinMaddsPerChunk = int64_t{1} << 19;

// One contiguous range [g0, g1) of the jb-major (j0, i0) cache-block
// grid: packs blocks of op(A) (scaled by alpha) and op(B) into the
// thread-local arena and streams them through the block kernel. This is
// the unit both parallel schedules feed — gemm()'s own block-grid
// parallel_for, and the fused (sample × out-channel-tile) conv grid,
// whose tiles call gemm() from inside a pool chunk where it degrades to
// exactly this serial routine. Every C tile is produced whole, with p0
// blocks accumulated in ascending order, so results are bit-identical
// for any split.
void gemm_block_range(simd::BlockKernelFn kernel, bool trans_a, bool trans_b, int64_t m,
                      int64_t n, int64_t k, float alpha, const float* a, int64_t lda,
                      const float* b, int64_t ldb, float* c, int64_t ldc, int64_t n_ib,
                      int64_t g0, int64_t g1) {
  Workspace::Scope scope;
  Workspace& ws = Workspace::tls();
  float* a_pack = ws.floats(static_cast<size_t>(kBlockM * kBlockK));
  float* b_pack = ws.floats(static_cast<size_t>(kBlockK * kBlockN));

  for (int64_t jb = g0 / n_ib; jb * n_ib < g1; ++jb) {
    const int64_t j0 = jb * kBlockN;
    const int64_t nb = std::min(kBlockN, n - j0);
    const int64_t ib_lo = std::max<int64_t>(g0 - jb * n_ib, 0);
    const int64_t ib_hi = std::min<int64_t>(g1 - jb * n_ib, n_ib);
    for (int64_t p0 = 0; p0 < k; p0 += kBlockK) {
      const int64_t kb = std::min(kBlockK, k - p0);
      // Pack op(B)[p0:p0+kb, j0:j0+nb].
      for (int64_t p = 0; p < kb; ++p) {
        float* dst = b_pack + p * nb;
        if (!trans_b) {
          const float* src = b + (p0 + p) * ldb + j0;
          std::copy(src, src + nb, dst);
        } else {
          for (int64_t j = 0; j < nb; ++j) dst[j] = b[(j0 + j) * ldb + (p0 + p)];
        }
      }
      for (int64_t ib = ib_lo; ib < ib_hi; ++ib) {
        const int64_t i0 = ib * kBlockM;
        const int64_t mb = std::min(kBlockM, m - i0);
        // Pack alpha * op(A)[i0:i0+mb, p0:p0+kb].
        for (int64_t i = 0; i < mb; ++i) {
          float* dst = a_pack + i * kb;
          if (!trans_a) {
            const float* src = a + (i0 + i) * lda + p0;
            for (int64_t p = 0; p < kb; ++p) dst[p] = alpha * src[p];
          } else {
            for (int64_t p = 0; p < kb; ++p) dst[p] = alpha * a[(p0 + p) * lda + (i0 + i)];
          }
        }
        kernel(mb, nb, kb, a_pack, kb, b_pack, nb, c + i0 * ldc + j0, ldc);
      }
    }
  }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha, const float* a,
          int64_t lda, const float* b, int64_t ldb, float beta, float* c, int64_t ldc) {
  if (m < 0 || n < 0 || k < 0) throw std::invalid_argument("gemm: negative dimension");
  if (obs::profiling_enabled()) obs::count("gemm.calls");

  // Scale / clear C first: C = beta * C. Rows are disjoint, so the
  // partition cannot change any element's value.
  if (beta != 1.0f && m > 0) {
    const int64_t row_grain = std::max<int64_t>(1, (int64_t{1} << 16) / std::max<int64_t>(n, 1));
    parallel_for(0, m, row_grain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        float* crow = c + i * ldc;
        if (beta == 0.0f) {
          std::fill(crow, crow + n, 0.0f);
        } else {
          for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
        }
      }
    });
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  // Counted after the early return: an alpha == 0 or zero-dimension call
  // does no multiply-adds, and crediting it 2*m*n*k would inflate the
  // profiler's FLOP totals with work that never ran.
  if (obs::profiling_enabled()) {
    obs::count("gemm.elements", m * n);
    obs::count("gemm.flops", 2 * m * n * k);  // one multiply-add per (i,j,p)
  }

  const simd::BlockKernelFn kernel = simd::active_block_kernel();

  // The (j0, i0) cache-block grid is the unit of parallelism: every C
  // tile is produced by exactly one chunk, which accumulates its p0
  // blocks in the same order as the sequential loop, so the result is
  // bit-identical for any thread count. Chunks are jb-major (g = jb *
  // n_ib + ib) so a chunk holding several row blocks of one column
  // panel still packs op(B) once per (jb, p0), exactly like the serial
  // code; only panels split across chunks repack, a ~1/64 overhead.
  // When this gemm already runs inside a fused-grid tile (conv fwd/bwd),
  // parallel_for degrades to inline and the whole grid runs serial here.
  const int64_t n_jb = (n + kBlockN - 1) / kBlockN;
  const int64_t n_ib = (m + kBlockM - 1) / kBlockM;
  const int64_t madds_per_pair = std::min(kBlockM, m) * std::min(kBlockN, n) * k;
  const int64_t grain =
      std::max<int64_t>(1, kMinMaddsPerChunk / std::max<int64_t>(madds_per_pair, 1));

  parallel_for(0, n_jb * n_ib, grain, [&](int64_t g0, int64_t g1) {
    gemm_block_range(kernel, trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc, n_ib, g0,
                     g1);
  });
}

namespace {
Tensor matmul_impl(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  if (a.dim() != 2 || b.dim() != 2) {
    throw std::invalid_argument("matmul: both inputs must be rank-2, got " + to_string(a.shape()) +
                                " and " + to_string(b.shape()));
  }
  const int64_t m = trans_a ? a.size(1) : a.size(0);
  const int64_t ka = trans_a ? a.size(0) : a.size(1);
  const int64_t kb = trans_b ? b.size(1) : b.size(0);
  const int64_t n = trans_b ? b.size(0) : b.size(1);
  if (ka != kb) {
    throw std::invalid_argument("matmul: inner dimensions differ: " + to_string(a.shape()) +
                                " x " + to_string(b.shape()));
  }
  Tensor out({m, n});
  gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), a.size(1), b.data(), b.size(1), 0.0f,
       out.data(), n);
  return out;
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) { return matmul_impl(a, b, false, false); }
Tensor matmul_tn(const Tensor& a, const Tensor& b) { return matmul_impl(a, b, true, false); }
Tensor matmul_nt(const Tensor& a, const Tensor& b) { return matmul_impl(a, b, false, true); }

}  // namespace shrinkbench
