// Leveled structured logging — the single console-output path for the
// whole library. Everything in src/ that used to printf/fprintf to the
// terminal now goes through here, so one environment variable controls
// verbosity for every binary:
//
//   SB_LOG_LEVEL = trace | debug | info | warn | error | off   (default info)
//   SB_LOG_FILE  = path       (mirror every emitted line to a file sink)
//   SB_LOG_JSON  = 1          (emit one JSON object per line instead of
//                              the human text format; same level filter
//                              and sinks)
//
// There is exactly one formatting path (log_message); the printf-style
// logf() and the SB_LOG_* macros all funnel into it. The macros evaluate
// their arguments only when the level is enabled, so a disabled debug
// line costs one branch.
#pragma once

#include <cstdarg>
#include <string>

namespace shrinkbench::obs {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

const char* to_string(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive);
/// unrecognized strings fall back to `fallback`.
LogLevel parse_log_level(const std::string& text, LogLevel fallback = LogLevel::Info);

/// Current threshold: SB_LOG_LEVEL on first call, until overridden.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Mirrors every emitted line to `path` in addition to stderr (the file
/// sink from SB_LOG_FILE is installed automatically). Empty path closes
/// the file sink.
void set_log_file(const std::string& path);

/// JSON-lines mode: each record becomes
///   {"t":<elapsed_s>,"level":"INFO","tag":"core","msg":"..."}
/// on both sinks. SB_LOG_JSON=1 on first use, until overridden.
bool log_json();
void set_log_json(bool enabled);

inline bool log_enabled(LogLevel level) { return level >= log_level(); }

/// The one formatting/emission path: "[elapsed] LEVEL tag: message".
void log_message(LogLevel level, const char* tag, const std::string& message);

/// printf-style front end; formats and forwards to log_message.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
void logf(LogLevel level, const char* tag, const char* fmt, ...);

}  // namespace shrinkbench::obs

// Level-specific macros: arguments are not evaluated when filtered out.
#define SB_LOG_AT(level, tag, ...)                                            \
  do {                                                                        \
    if (::shrinkbench::obs::log_enabled(level)) {                             \
      ::shrinkbench::obs::logf(level, tag, __VA_ARGS__);                      \
    }                                                                         \
  } while (0)

#define SB_LOG_TRACE(tag, ...) SB_LOG_AT(::shrinkbench::obs::LogLevel::Trace, tag, __VA_ARGS__)
#define SB_LOG_DEBUG(tag, ...) SB_LOG_AT(::shrinkbench::obs::LogLevel::Debug, tag, __VA_ARGS__)
#define SB_LOG_INFO(tag, ...) SB_LOG_AT(::shrinkbench::obs::LogLevel::Info, tag, __VA_ARGS__)
#define SB_LOG_WARN(tag, ...) SB_LOG_AT(::shrinkbench::obs::LogLevel::Warn, tag, __VA_ARGS__)
#define SB_LOG_ERROR(tag, ...) SB_LOG_AT(::shrinkbench::obs::LogLevel::Error, tag, __VA_ARGS__)
