// Process resource sampling + host identification.
//
// ResourceSample reads the numbers a live monitor (and the run manifest)
// needs to judge a run's health: resident set size and its high-water
// mark from /proc/self/status, cumulative user/system CPU time from
// getrusage, and the kernel's thread count. One sample is a handful of
// syscalls — cheap enough for a 1 Hz telemetry tick, far too slow for a
// hot loop (don't call it per batch).
//
// Host identification (hostname, CPU model string, core count) feeds the
// manifest-enrichment the paper's §6 checklist asks for: results from
// two hosts are only comparable when both manifests say what hardware
// produced them.
#pragma once

#include <string>

namespace shrinkbench::obs {

struct ResourceSample {
  double rss_mb = 0.0;        // VmRSS, resident set size
  double peak_rss_mb = 0.0;   // VmHWM, peak resident set size
  double user_cpu_seconds = 0.0;
  double sys_cpu_seconds = 0.0;
  int os_threads = 0;         // kernel thread count for the process
  bool valid = false;         // false on platforms without /proc + getrusage
};

/// Current process resources; `valid` is false when neither source could
/// be read (non-Linux /proc layouts degrade gracefully: CPU times from
/// getrusage may be present while the RSS fields stay 0).
ResourceSample sample_resources();

/// Cached host identity for manifests. Never fails: unknown fields come
/// back as "unknown" / 0.
const std::string& hostname();
const std::string& cpu_model();   // /proc/cpuinfo "model name" (first entry)
int cpu_cores();                  // hardware_concurrency
int process_id();                 // getpid (0 where unavailable)

}  // namespace shrinkbench::obs
