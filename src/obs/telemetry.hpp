// Runtime telemetry: time-series registry, background resource sampler,
// streaming quantile histograms, and the live status heartbeat.
//
// The profiler (profile.hpp) answers "what ran?" after the fact; this
// layer answers "what is running right now?" — the blind spot a
// multi-hour sweep or a kill-and-resume fleet worker otherwise leaves
// until it exits.
//
// Environment contract:
//
//   SB_TELEMETRY=1             enable telemetry (registry + sampler)
//   SB_TELEMETRY_HZ=H          sampler cadence in ticks/second (default 1,
//                              clamp [0.1, 100]; 0 = no background thread,
//                              ticks only via sample_once())
//   SB_STATUS_FILE=status.json atomically rewrite a live status heartbeat
//                              every tick (implies SB_TELEMETRY)
//   SB_TELEMETRY_JSONL=f.jsonl additionally stream every time-series
//                              sample to this file, one JSON object per
//                              line, flushed per tick — tail-able while
//                              the run is alive (implies SB_TELEMETRY)
//
// With all of them unset the subsystem is a no-op under the same
// zero-overhead contract as the profiler: every entry point is a single
// branch on a cached flag, the Telemetry singleton is never constructed,
// and no thread is ever spawned (tests assert this).
//
// When enabled, a background thread ticks at SB_TELEMETRY_HZ. Each tick:
//   * samples process resources (RSS / peak RSS / user+sys CPU from
//     resource.hpp) into the "proc.*" series;
//   * samples thread-pool utilization (jobs, queue depth, per-worker
//     busy fraction) via the hook tensor/threadpool registers;
//   * mirrors every live profiler counter/gauge into "counter.*" /
//     "gauge.*" series, turning end-of-run aggregates into curves;
//   * rewrites the status heartbeat (atomic temp-file + rename, so a
//     concurrent reader always sees complete JSON) and appends the tick's
//     samples to the JSONL stream.
//
// The status board (status_set_* below) is the write side of the
// heartbeat: run_sweep publishes phase/grid-progress/ETA, train_model
// publishes last-epoch metrics and anomaly counts, and sb_top renders
// the resulting status.json files live.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace shrinkbench::obs {

/// True when SB_TELEMETRY / SB_STATUS_FILE / SB_TELEMETRY_JSONL enables
/// telemetry (cached on first call) or set_telemetry_enabled(true) was
/// called. The fast path for every telemetry hook.
bool telemetry_enabled();
void set_telemetry_enabled(bool enabled);

/// Sampler cadence; SB_TELEMETRY_HZ on first call, until overridden.
/// <= 0 means no background thread (manual sample_once() only).
double telemetry_hz();
void set_telemetry_hz(double hz);

/// Heartbeat destination; empty = heartbeat off. SB_STATUS_FILE on first
/// telemetry_enabled() call, until overridden.
std::string status_path();
void set_status_path(const std::string& path);

// ---------------------------------------------------------------------
// Streaming quantile histogram
// ---------------------------------------------------------------------

/// Fixed log-bucket quantile estimator: values land in geometric buckets
/// [lo, lo*growth) and a quantile query answers with the bucket's
/// geometric midpoint, bounding the relative error by sqrt(growth) - 1
/// (< 4% at the default growth of 1.08). Values <= kMinValue (including
/// zero and negatives) collapse into an underflow bucket reported as
/// their running minimum. O(1) observe, O(buckets) query, ~5 KB at full
/// range — cheap enough for one per named histogram in the profiler.
class QuantileHistogram {
 public:
  static constexpr double kGrowth = 1.08;
  static constexpr double kMinValue = 1e-9;
  static constexpr double kMaxValue = 1e12;

  void observe(double value);
  /// Value at quantile q in [0, 1] (nearest-rank on bucket midpoints);
  /// 0 when empty.
  double quantile(double q) const;
  int64_t count() const { return count_; }

 private:
  std::vector<int64_t> buckets_;  // grown lazily to the highest seen index
  int64_t underflow_ = 0;         // values <= kMinValue
  double underflow_min_ = 0.0;
  int64_t count_ = 0;
};

// ---------------------------------------------------------------------
// Thread-pool sampling hook (registered by tensor/threadpool so sb_obs
// never links against sb_tensor)
// ---------------------------------------------------------------------

struct PoolSample {
  int threads = 0;         // pool size including the calling thread
  int64_t jobs = 0;        // parallel_for fan-outs submitted so far
  int64_t chunks = 0;      // chunks executed so far
  int in_flight = 0;       // 1 while a fan-out is executing
  int pending_chunks = 0;  // chunks of the current job not yet finished
  /// Cumulative busy seconds per pool slot (slot 0 = the submitting
  /// thread); only accumulated while telemetry is enabled.
  std::vector<double> slot_busy_seconds;
  double busy_seconds() const {
    double total = 0.0;
    for (const double s : slot_busy_seconds) total += s;
    return total;
  }
};

using PoolSampleFn = PoolSample (*)();
/// Installed once at static-init by tensor/threadpool; nullptr until then.
void set_pool_sampler(PoolSampleFn fn);

/// Effective GEMM kernel tier ("avx512" | "avx2" | "scalar") for the
/// status host block; installed at static-init by tensor/simd (same
/// no-link-cycle story as the pool sampler). Evaluated lazily at each
/// status sample so registration never forces SIMD detection.
using SimdNameFn = const char* (*)();
void set_simd_name_fn(SimdNameFn fn);

// ---------------------------------------------------------------------
// Telemetry singleton: time-series registry + sampler + heartbeat
// ---------------------------------------------------------------------

struct TimeSeriesPoint {
  double t = 0.0;  // seconds since telemetry start
  double value = 0.0;
};

class Telemetry {
 public:
  /// Lazily constructs the singleton. Callers must check
  /// telemetry_enabled() first; the no-op path never gets here.
  static Telemetry& instance();
  /// Whether instance() has ever been called — the zero-overhead
  /// guarantee tests assert this stays false with every switch off.
  static bool constructed();

  /// Appends a timestamped sample to the named series (bounded: the
  /// oldest half is dropped past kMaxPointsPerSeries).
  void record(const std::string& series, double value);
  void record_at(const std::string& series, double t, double value);

  /// Runs one sampler tick synchronously: resources, pool utilization,
  /// profiler counters/gauges, heartbeat rewrite, JSONL append. The
  /// background thread calls exactly this; tests call it directly.
  void sample_once();

  /// Spawns the background sampler at telemetry_hz() (idempotent; no-op
  /// when hz <= 0). stop_sampler() joins it — also registered atexit so
  /// the thread never outlives main.
  void start_sampler();
  void stop_sampler();

  std::map<std::string, std::vector<TimeSeriesPoint>> series() const;

  /// One JSON object per sample, ordered by time within each tick:
  ///   {"t":12.5,"series":"proc.rss_mb","value":143.2}
  std::string series_jsonl() const;
  bool write_series_jsonl(const std::filesystem::path& path) const;

  /// Serializes the status board + a fresh resource/pool sample as the
  /// heartbeat JSON (schema "shrinkbench.status/v1").
  std::string status_json();
  /// Atomically rewrites status_path() (no-op when unset). Returns false
  /// only on an I/O failure.
  bool write_status();

  /// Drops all series and resets the status board (tests).
  void reset();

  double now_seconds() const;

  static constexpr size_t kMaxPointsPerSeries = 65536;

  struct Impl;
  /// Internal: the status-board free functions below live in the same TU
  /// and mutate Impl directly; nothing else should touch this.
  Impl& impl_ref();

 private:
  Telemetry();

  Impl* impl_;
};

// ---------------------------------------------------------------------
// Status board — the write side of the heartbeat. Single-branch no-ops
// while telemetry is disabled.
// ---------------------------------------------------------------------

/// Top-level phase ("sweep", "done", "interrupted"; run_sweep owns it).
void status_set_phase(const std::string& phase);
/// Inner pipeline stage ("pretrain"/"prune"/"finetune"/"eval"; the
/// experiment runner owns it).
void status_set_stage(const std::string& stage);
/// Grid progress + ETA in seconds (<= 0 = unknown).
void status_set_progress(size_t done, size_t total, double eta_seconds);
/// Last finished epoch's metrics from train_model.
void status_set_epoch(int epoch, double train_loss, double val_top1);
/// Cumulative counts; the set_* flavors publish absolute sweep-level
/// numbers, the add_* flavors accumulate across nested calls.
void status_set_failures(int64_t failures, int64_t cache_hits);
void status_add_anomalies(int64_t n);
void status_add_retries(int64_t n);

/// Serving-side health block published by serve::InferenceServer; shows
/// up as a "serve" object in the heartbeat once set (sb_top renders it).
struct ServeStatus {
  int64_t queue_depth = 0;
  int64_t shed = 0;               // DropOldest victims so far
  int64_t deadline_exceeded = 0;  // in-queue expiries so far
  int64_t rejected_overload = 0;  // Reject-policy refusals so far
  int64_t degraded_batches = 0;   // batches served by the fallback
  int64_t stalls = 0;             // watchdog-detected stuck batches
  int breaker_state = 0;          // 0 closed, 1 open, 2 half-open
};
void status_set_serve(const ServeStatus& serve);

/// Degraded marker: a non-empty reason surfaces "degraded": true (+ the
/// reason) at the heartbeat's top level — the watchdog sets it while a
/// worker is stalled; an empty reason clears it on recovery.
void status_set_degraded(const std::string& reason);

/// Immediate heartbeat rewrite (sweep start/end, tests); the sampler
/// otherwise owns the cadence.
void write_status_now();

}  // namespace shrinkbench::obs
