#include "obs/profile.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/io.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"

namespace shrinkbench::obs {

namespace {

// -1 = not yet resolved from the environment, 0 = off, 1 = on.
std::atomic<int> g_enabled{-1};
std::atomic<bool> g_constructed{false};

std::mutex& trace_path_mutex() {
  static std::mutex mu;
  return mu;
}

std::string& trace_path_storage() {
  static std::string path;
  return path;
}

bool env_truthy(const char* value) {
  if (!value || !*value) return false;
  return std::string(value) != "0" && std::string(value) != "false";
}

// SB_TRACE is consulted independently of the SB_PROF on/off state so a
// program that calls set_profiling_enabled(true) before any
// profiling_enabled() check (skipping the lazy env resolve) still picks
// up a trace destination from the environment.
bool consult_trace_env() {
  static const bool found = [] {
    const char* trace = std::getenv("SB_TRACE");
    if (!trace || !*trace) return false;
    std::lock_guard<std::mutex> lock(trace_path_mutex());
    if (trace_path_storage().empty()) trace_path_storage() = trace;
    return true;
  }();
  return found;
}

void resolve_from_env() {
  const char* prof = std::getenv("SB_PROF");
  bool enabled = env_truthy(prof);
  if (consult_trace_env()) enabled = true;  // tracing implies profiling
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, enabled ? 1 : 0);
}

// Innermost live span on this thread (nesting / parent attribution).
thread_local ScopedTimer* t_current_span = nullptr;

void write_trace_at_exit() {
  if (!Profiler::constructed()) return;
  const std::string path = trace_path();
  if (path.empty()) return;
  if (!Profiler::instance().write_trace(path)) {
    SB_LOG_ERROR("obs", "failed to write trace file %s", path.c_str());
  }
}

}  // namespace

bool profiling_enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    resolve_from_env();
    state = g_enabled.load(std::memory_order_relaxed);
  }
  return state == 1;
}

void set_profiling_enabled(bool enabled) { g_enabled.store(enabled ? 1 : 0); }

std::string trace_path() {
  consult_trace_env();
  std::lock_guard<std::mutex> lock(trace_path_mutex());
  return trace_path_storage();
}

void set_trace_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(trace_path_mutex());
  trace_path_storage() = path;
}

Profiler::Profiler() : epoch_(std::chrono::steady_clock::now()) {
  // Trace files must appear even when the program never flushes
  // explicitly — bench binaries just run to completion.
  std::atexit(write_trace_at_exit);
}

Profiler& Profiler::instance() {
  static Profiler* p = [] {
    g_constructed.store(true);
    return new Profiler();  // leaked deliberately: usable during atexit
  }();
  return *p;
}

bool Profiler::constructed() { return g_constructed.load(); }

double Profiler::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void Profiler::add_counter(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void Profiler::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void Profiler::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram& hist = histograms_[name];
  HistogramStats& h = hist.stats;
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  h.sum += value;
  ++h.count;
  hist.quantiles.observe(value);
}

void Profiler::record_span(const std::string& path, const std::string& name, double start_seconds,
                           double duration_seconds, double child_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanStats& s = spans_[path];
  ++s.count;
  s.total_seconds += duration_seconds;
  s.child_seconds += child_seconds;
  {
    // Trace events only when a destination is configured; aggregated
    // stats above are bounded, the event list is not.
    consult_trace_env();
    std::lock_guard<std::mutex> tlock(trace_path_mutex());
    if (trace_path_storage().empty()) return;
  }
  events_.push_back(TraceEvent{name, start_seconds, duration_seconds});
}

MetricsSnapshot Profiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  for (const auto& [name, hist] : histograms_) {
    HistogramStats h = hist.stats;
    h.p50 = hist.quantiles.quantile(0.50);
    h.p90 = hist.quantiles.quantile(0.90);
    h.p99 = hist.quantiles.quantile(0.99);
    snap.histograms[name] = h;
  }
  snap.spans = spans_;
  return snap;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  spans_.clear();
  events_.clear();
}

std::string Profiler::trace_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) os << ',';
    first = false;
    // Complete ("X") events, timestamps in microseconds since profiler
    // construction — the format chrome://tracing and Perfetto load.
    os << "{\"name\":" << json_str(e.name) << ",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":"
       << json_num(e.start_seconds * 1e6) << ",\"dur\":" << json_num(e.duration_seconds * 1e6)
       << "}";
  }
  os << "]}";
  return os.str();
}

bool Profiler::write_trace(const std::string& path) const {
  return atomic_write_file(path, trace_json() + '\n');
}

MetricsSnapshot snapshot_if_enabled() {
  if (!Profiler::constructed()) return MetricsSnapshot{};
  return Profiler::instance().snapshot();
}

ScopedTimer::ScopedTimer(const char* name) { begin(name, std::char_traits<char>::length(name)); }

ScopedTimer::ScopedTimer(const std::string& name) { begin(name.c_str(), name.size()); }

void ScopedTimer::begin(const char* name, size_t name_len) {
  if (!profiling_enabled()) return;
  active_ = true;
  name_.assign(name, name_len);
  parent_ = t_current_span;
  if (parent_) {
    path_.reserve(parent_->path_.size() + 1 + name_len);
    path_ = parent_->path_;
    path_ += '/';
    path_ += name_;
  } else {
    path_ = name_;
  }
  t_current_span = this;
  start_seconds_ = Profiler::instance().now_seconds();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  const double duration = Profiler::instance().now_seconds() - start_seconds_;
  t_current_span = parent_;
  if (parent_) parent_->child_seconds_ += duration;
  Profiler::instance().record_span(path_, name_, start_seconds_, duration, child_seconds_);
}

double ScopedTimer::seconds() const {
  if (!active_) return 0.0;
  return Profiler::instance().now_seconds() - start_seconds_;
}

}  // namespace shrinkbench::obs
