#include "obs/io.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "obs/log.hpp"
#include "obs/profile.hpp"

namespace shrinkbench::obs {

namespace {

struct FaultRule {
  std::string site;
  int64_t nth = 0;  // 1-based call index; 0 = every call ("*")
};

struct FaultState {
  std::mutex mu;
  bool armed = false;
  std::vector<FaultRule> rules;
  std::vector<std::pair<std::string, int64_t>> counters;

  void load(const std::string& spec) {
    rules.clear();
    counters.clear();
    std::istringstream ss(spec);
    std::string entry;
    while (std::getline(ss, entry, ',')) {
      const size_t colon = entry.rfind(':');
      if (colon == std::string::npos || colon == 0) continue;
      FaultRule rule;
      rule.site = entry.substr(0, colon);
      const std::string nth = entry.substr(colon + 1);
      rule.nth = nth == "*" ? 0 : std::strtoll(nth.c_str(), nullptr, 10);
      if (rule.nth < 0) continue;
      rules.push_back(std::move(rule));
    }
    armed = !rules.empty();
  }

  int64_t bump(const char* site) {
    for (auto& [name, count] : counters) {
      if (name == site) return ++count;
    }
    counters.emplace_back(site, 1);
    return 1;
  }
};

FaultState& fault_state() {
  static FaultState s;
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* env = std::getenv("SB_FAULT")) s.load(env);
  });
  return s;
}

bool write_failed(const std::filesystem::path& tmp, const char* what) {
  count("io.write_failed");
  SB_LOG_WARN("io", "atomic write failed (%s) for %s", what, tmp.string().c_str());
  std::error_code ec;
  std::filesystem::remove(tmp, ec);
  return false;
}

}  // namespace

void set_fault_spec(const std::string& spec) {
  FaultState& s = fault_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.load(spec);
}

bool fault_point(const char* site) {
  FaultState& s = fault_state();
  if (!s.armed) return false;
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.armed) return false;
  const int64_t call = s.bump(site);
  for (const FaultRule& rule : s.rules) {
    if (rule.site == site && (rule.nth == 0 || rule.nth == call)) {
      SB_LOG_DEBUG("io", "fault injected at %s (call %lld)", site,
                   static_cast<long long>(call));
      return true;
    }
  }
  return false;
}

uint64_t fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string checksum_hex(std::string_view data) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(fnv1a64(data)));
  return hex;
}

bool atomic_write_file(const std::filesystem::path& path, std::string_view content) {
  std::error_code ec;
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path(), ec);

#if defined(_WIN32)
  const int pid = 0;
#else
  const int pid = static_cast<int>(::getpid());
#endif
  // pid alone is not enough: two threads of one process (or a pid reused
  // across fleet workers) flushing the same destination would share a
  // temp path and tear each other mid-write, so a per-process sequence
  // number makes every in-flight temp file unique.
  static std::atomic<uint64_t> write_seq{0};
  std::filesystem::path tmp = path;
  tmp += ".tmp." + std::to_string(pid) + "." +
         std::to_string(write_seq.fetch_add(1, std::memory_order_relaxed));

  std::FILE* f = std::fopen(tmp.string().c_str(), "wb");
  if (!f) {
    count("io.write_failed");
    SB_LOG_WARN("io", "atomic write failed (open) for %s", tmp.string().c_str());
    return false;
  }
  bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  if (fault_point("io.short_write")) ok = false;  // simulated full disk / torn write
  ok = ok && std::fflush(f) == 0;
#if !defined(_WIN32)
  // Flush reaches the kernel; fsync reaches the platter. Without it a
  // power cut can still tear the renamed file.
  ok = ok && ::fsync(::fileno(f)) == 0;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return write_failed(tmp, "write");

  std::filesystem::rename(tmp, path, ec);
  if (ec) return write_failed(tmp, "rename");
  return true;
}

FileLock::FileLock(FileLock&& other) noexcept : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

bool FileLock::try_acquire(const std::filesystem::path& path) {
  if (held()) release();
#if defined(_WIN32)
  // No flock on Windows; degrade to always-succeeds (single-process
  // semantics — the fleet is a POSIX feature).
  path_ = path;
  fd_ = 0;
  return true;
#else
  std::error_code ec;
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path(), ec);
  const int fd = ::open(path.string().c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    count("io.lock_open_failed");
    SB_LOG_WARN("io", "cannot open lock file %s", path.string().c_str());
    return false;
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return false;
  }
  // Record the owner for post-mortem debugging; the lock itself lives in
  // the kernel, so a torn or stale pid line is never load-bearing.
  if (::ftruncate(fd, 0) == 0) {
    char owner[32];
    const int len = std::snprintf(owner, sizeof(owner), "%d\n", static_cast<int>(::getpid()));
    if (len > 0) {
      const ssize_t written = ::write(fd, owner, static_cast<size_t>(len));
      (void)written;
    }
  }
  fd_ = fd;
  path_ = path;
  return true;
#endif
}

bool FileLock::acquire(const std::filesystem::path& path, int poll_ms,
                       const std::function<bool()>& cancelled) {
  if (poll_ms < 1) poll_ms = 1;
  while (!try_acquire(path)) {
    if (cancelled && cancelled()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
  return true;
}

void FileLock::release(bool unlink_file) {
  if (!held()) return;
#if !defined(_WIN32)
  if (unlink_file) {
    // Unlink while still holding the lock: a peer polling try_acquire
    // either recreates a fresh file (and must re-check its resource) or
    // locks the orphaned inode — both are covered by the claim protocol.
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  ::flock(fd_, LOCK_UN);
  ::close(fd_);
#endif
  fd_ = -1;
  path_.clear();
}

bool atomic_write_file(const std::filesystem::path& path,
                       const std::function<void(std::ostream&)>& fill) {
  std::ostringstream buffer;
  fill(buffer);
  if (!buffer) {
    count("io.write_failed");
    SB_LOG_WARN("io", "atomic write failed (serialize) for %s", path.string().c_str());
    return false;
  }
  return atomic_write_file(path, buffer.str());
}

}  // namespace shrinkbench::obs
