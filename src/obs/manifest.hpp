// Run-manifest building blocks. A manifest is the per-run JSON file
// written next to every bench CSV: enough provenance (git revision,
// config fingerprints, per-phase timings, counter snapshot) to answer
// "what actually ran?" — the reporting gap the source paper complains
// about. The experiment-specific composition lives in core/experiment;
// this layer provides the provenance + metrics serialization.
#pragma once

#include <string>

#include "obs/profile.hpp"

namespace shrinkbench::obs {

/// `git describe --always --dirty` of the working directory, cached for
/// the process; "unknown" when git or the repo is unavailable.
const std::string& git_describe();

/// Current UTC wall clock as ISO-8601 ("2026-08-07T12:34:56Z").
std::string utc_timestamp();

/// UTC wall clock captured when this library was loaded — the closest
/// portable stand-in for process start, so manifests can report
/// start/end timestamps without threading a value through every caller.
const std::string& process_start_utc();

/// Serializes a snapshot as a JSON object:
///   {"counters":{...},"gauges":{...},
///    "histograms":{name:{count,sum,min,max,mean,p50,p90,p99}},
///    "spans":{path:{count,total_seconds,child_seconds,self_seconds}}}
std::string metrics_json(const MetricsSnapshot& snapshot);

}  // namespace shrinkbench::obs
