// Durable file I/O, cross-process locking, + deterministic fault
// injection.
//
// Every persistent artifact in the system — result-cache entries, CSVs,
// run manifests, Chrome traces — goes through atomic_write_file: the
// content is written to `<path>.tmp.<pid>.<seq>`, flushed and fsync'd,
// the stream state is checked, and only then is the temp file renamed
// over the destination. A crash, kill -9, or full disk at any point
// leaves either the old file or no file — never a torn one. The pid +
// per-process sequence suffix keeps concurrent writers (threads or
// fleet worker processes) of the same destination from clobbering each
// other's temp file mid-flush.
//
// FileLock is the cross-process claim primitive behind the sharded
// sweep fleet: an exclusive flock(2) on an O_CREAT'ed lock file. The
// kernel drops the lock when the holder dies (including kill -9), so a
// preempted fleet worker never wedges the grid behind a stale claim.
//
// Fault injection (tests only):
//
//   SB_FAULT=<site>:<nth>[,<site>:<nth>...]   (1-based; `*` = every call)
//
// fault_point("site") returns true on the nth call to that site (or on
// every call for `*`), letting tests deterministically inject throws,
// short writes, and corrupt cache bytes to prove each recovery path.
// With SB_FAULT unset and set_fault_spec never called, fault_point is a
// single branch on a cached flag.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace shrinkbench::obs {

/// Atomically replaces `path` with `content` (temp file + flush + fsync
/// + rename). Creates parent directories. Returns false — leaving no
/// partial file behind — if any step fails; failures bump the
/// "io.write_failed" counter and log a warning.
bool atomic_write_file(const std::filesystem::path& path, std::string_view content);

/// Callback flavor: `fill` streams into a buffer which is then written
/// atomically. Convenient for existing `operator<<` serialization code.
bool atomic_write_file(const std::filesystem::path& path,
                       const std::function<void(std::ostream&)>& fill);

/// FNV-1a 64-bit checksum — guards result-cache entries against torn or
/// bit-rotted files (not cryptographic).
uint64_t fnv1a64(std::string_view data);

/// Lowercase 16-digit hex of fnv1a64(data).
std::string checksum_hex(std::string_view data);

// ---- cross-process locking ----

/// Advisory cross-process lock built on flock(2). Acquiring creates the
/// lock file if needed and takes LOCK_EX on it; the fd (and therefore
/// the lock) follows the process, so a kill -9 releases it
/// automatically — the property the fleet's work-stealing relies on to
/// detect dead claimants without pid liveness probes.
///
/// Claim protocol: because release() may unlink the file while a racing
/// peer still has the old inode open, two processes can transiently
/// both hold "the" lock (on different inodes). Holders must therefore
/// re-check the guarded resource (cache entry, checkpoint) after
/// acquiring and before computing — claim -> re-check -> compute. With
/// that discipline the race costs one cache probe, never a duplicate
/// compute.
class FileLock {
 public:
  FileLock() = default;
  ~FileLock() { release(); }
  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  /// Non-blocking acquire: creates `path` (and parents) if needed and
  /// tries LOCK_EX | LOCK_NB. On success the file records "<pid>" for
  /// debugging. False when another holder (process or fd) has it.
  bool try_acquire(const std::filesystem::path& path);

  /// Polling acquire: retries try_acquire every `poll_ms` until it
  /// succeeds or `cancelled` (optional) returns true. Returns held().
  bool acquire(const std::filesystem::path& path, int poll_ms = 100,
               const std::function<bool()>& cancelled = nullptr);

  /// Drops the lock. With `unlink_file` the lock file is removed first
  /// (while still held), so the common path leaves no litter behind.
  void release(bool unlink_file = false);

  bool held() const { return fd_ >= 0; }
  const std::filesystem::path& path() const { return path_; }

 private:
  int fd_ = -1;
  std::filesystem::path path_;
};

// ---- fault injection ----

/// Installs a fault spec programmatically (tests), replacing any spec
/// from SB_FAULT and resetting all per-site call counters. Empty spec
/// disables injection.
void set_fault_spec(const std::string& spec);

/// True when the current call to `site` should fail according to the
/// active spec. Each call increments the site's counter whether or not
/// it fires.
bool fault_point(const char* site);

}  // namespace shrinkbench::obs
