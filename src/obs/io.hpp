// Durable file I/O + deterministic fault injection.
//
// Every persistent artifact in the system — result-cache entries, CSVs,
// run manifests, Chrome traces — goes through atomic_write_file: the
// content is written to `<path>.tmp.<pid>`, flushed and fsync'd, the
// stream state is checked, and only then is the temp file renamed over
// the destination. A crash, kill -9, or full disk at any point leaves
// either the old file or no file — never a torn one.
//
// Fault injection (tests only):
//
//   SB_FAULT=<site>:<nth>[,<site>:<nth>...]   (1-based; `*` = every call)
//
// fault_point("site") returns true on the nth call to that site (or on
// every call for `*`), letting tests deterministically inject throws,
// short writes, and corrupt cache bytes to prove each recovery path.
// With SB_FAULT unset and set_fault_spec never called, fault_point is a
// single branch on a cached flag.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace shrinkbench::obs {

/// Atomically replaces `path` with `content` (temp file + flush + fsync
/// + rename). Creates parent directories. Returns false — leaving no
/// partial file behind — if any step fails; failures bump the
/// "io.write_failed" counter and log a warning.
bool atomic_write_file(const std::filesystem::path& path, std::string_view content);

/// Callback flavor: `fill` streams into a buffer which is then written
/// atomically. Convenient for existing `operator<<` serialization code.
bool atomic_write_file(const std::filesystem::path& path,
                       const std::function<void(std::ostream&)>& fill);

/// FNV-1a 64-bit checksum — guards result-cache entries against torn or
/// bit-rotted files (not cryptographic).
uint64_t fnv1a64(std::string_view data);

/// Lowercase 16-digit hex of fnv1a64(data).
std::string checksum_hex(std::string_view data);

// ---- fault injection ----

/// Installs a fault spec programmatically (tests), replacing any spec
/// from SB_FAULT and resetting all per-site call counters. Empty spec
/// disables injection.
void set_fault_spec(const std::string& spec);

/// True when the current call to `site` should fail according to the
/// active spec. Each call increments the site's counter whether or not
/// it fires.
bool fault_point(const char* site);

}  // namespace shrinkbench::obs
