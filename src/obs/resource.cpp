#include "obs/resource.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#if !defined(_WIN32)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace shrinkbench::obs {

namespace {

/// Parses a "VmRSS:   123456 kB" style line from /proc/self/status.
bool parse_kb_line(const std::string& line, const char* key, double& out_mb) {
  const size_t key_len = std::strlen(key);
  if (line.compare(0, key_len, key) != 0) return false;
  long kb = 0;
  if (std::sscanf(line.c_str() + key_len, " %ld", &kb) != 1) return false;
  out_mb = static_cast<double>(kb) / 1024.0;
  return true;
}

bool parse_int_line(const std::string& line, const char* key, int& out) {
  const size_t key_len = std::strlen(key);
  if (line.compare(0, key_len, key) != 0) return false;
  return std::sscanf(line.c_str() + key_len, " %d", &out) == 1;
}

std::string read_cpu_model() {
#if !defined(_WIN32)
  std::ifstream is("/proc/cpuinfo");
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("model name", 0) == 0) {
      const size_t colon = line.find(':');
      if (colon == std::string::npos) break;
      size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      if (start < line.size()) return line.substr(start);
    }
  }
#endif
  return "unknown";
}

std::string read_hostname() {
#if !defined(_WIN32)
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

}  // namespace

ResourceSample sample_resources() {
  ResourceSample s;
#if !defined(_WIN32)
  if (std::ifstream is("/proc/self/status"); is) {
    std::string line;
    int seen = 0;
    while (seen < 3 && std::getline(is, line)) {
      if (parse_kb_line(line, "VmRSS:", s.rss_mb) ||
          parse_kb_line(line, "VmHWM:", s.peak_rss_mb) ||
          parse_int_line(line, "Threads:", s.os_threads)) {
        ++seen;
        s.valid = true;
      }
    }
  }
  if (rusage ru{}; ::getrusage(RUSAGE_SELF, &ru) == 0) {
    s.user_cpu_seconds =
        static_cast<double>(ru.ru_utime.tv_sec) + static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    s.sys_cpu_seconds =
        static_cast<double>(ru.ru_stime.tv_sec) + static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
    s.valid = true;
    // getrusage's maxrss (kB on Linux) backstops hosts whose /proc lacks
    // VmHWM.
    if (s.peak_rss_mb == 0.0 && ru.ru_maxrss > 0) {
      s.peak_rss_mb = static_cast<double>(ru.ru_maxrss) / 1024.0;
    }
  }
#endif
  return s;
}

const std::string& hostname() {
  static const std::string name = read_hostname();
  return name;
}

const std::string& cpu_model() {
  static const std::string model = read_cpu_model();
  return model;
}

int cpu_cores() {
  static const int cores = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 0;
  }();
  return cores;
}

int process_id() {
#if !defined(_WIN32)
  return static_cast<int>(::getpid());
#else
  return 0;
#endif
}

}  // namespace shrinkbench::obs
