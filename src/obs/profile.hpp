// Scoped hierarchical profiler + metric registry.
//
// Environment contract:
//
//   SB_PROF=1            enable profiling (span stats + counters)
//   SB_TRACE=trace.json  also record every span as a Chrome-trace event
//                        and write the file at process exit (implies
//                        SB_PROF; open in chrome://tracing or Perfetto)
//
// With both unset this whole subsystem is a no-op: every entry point is
// a single branch on a cached flag and the Profiler singleton is never
// constructed (tests assert this). When enabled:
//
//   * ScopedTimer spans nest via a thread-local stack. Aggregated stats
//     are keyed by the span *path* ("experiment.run/finetune/epoch"), so
//     a child's time is attributed to the parent chain it actually ran
//     under, and each entry tracks how much of its total was spent in
//     children (self time = total - child).
//   * count()/set_gauge()/observe() feed a registry of named counters,
//     gauges, and histograms; snapshot() serializes it for run manifests.
//
// Programmatic control (set_profiling_enabled / set_trace_path) exists so
// tests and tools can drive the profiler without environment variables.
#pragma once

#include <atomic>
#include <cstdint>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"  // QuantileHistogram backing observe()

namespace shrinkbench::obs {

/// True when SB_PROF/SB_TRACE enables profiling (cached on first call)
/// or set_profiling_enabled(true) was called. The fast path for every
/// instrumentation hook.
bool profiling_enabled();
void set_profiling_enabled(bool enabled);

/// Trace-event recording destination; empty = tracing off. Reading the
/// SB_TRACE env happens on first profiling_enabled() call.
std::string trace_path();
void set_trace_path(const std::string& path);

struct SpanStats {
  int64_t count = 0;
  double total_seconds = 0.0;  // inclusive of children
  double child_seconds = 0.0;  // time spent in nested spans
  double self_seconds() const { return total_seconds - child_seconds; }
};

struct HistogramStats {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Streaming quantile estimates from the fixed log-bucket histogram
  /// (obs::QuantileHistogram, < 4% relative error); filled by snapshot().
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
  std::map<std::string, SpanStats> spans;  // keyed by span path
};

class Profiler {
 public:
  /// Lazily constructs the singleton (sets constructed()). Callers must
  /// check profiling_enabled() first; the no-op path never gets here.
  static Profiler& instance();
  /// Whether instance() has ever been called in this process — the
  /// zero-overhead guarantee tests assert this stays false when all
  /// SB_* switches are off.
  static bool constructed();

  void add_counter(const std::string& name, int64_t delta);
  void set_gauge(const std::string& name, double value);
  void observe(const std::string& name, double value);  // histogram sample

  /// Span bookkeeping used by ScopedTimer; `path` is the full
  /// slash-joined ancestry. Trace events are recorded only when a trace
  /// path is set.
  void record_span(const std::string& path, const std::string& name, double start_seconds,
                   double duration_seconds, double child_seconds);

  MetricsSnapshot snapshot() const;
  /// Drops all recorded metrics and trace events (tests).
  void reset();

  /// Serializes the Chrome trace (traceEvents JSON) collected so far.
  std::string trace_json() const;
  /// Writes trace_json() to `path`; returns false on I/O failure.
  bool write_trace(const std::string& path) const;

  /// Seconds since profiler construction — the trace timebase.
  double now_seconds() const;

 private:
  Profiler();

  struct TraceEvent {
    std::string name;
    double start_seconds;
    double duration_seconds;
  };

  /// Running min/max/sum plus the log-bucket estimator behind the p50/
  /// p90/p99 a snapshot reports.
  struct Histogram {
    HistogramStats stats;
    QuantileHistogram quantiles;
  };

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, SpanStats> spans_;
  std::vector<TraceEvent> events_;
};

/// RAII span. Constructing is a no-op unless profiling is enabled at
/// that moment; the destructor pops the thread-local span stack and
/// folds the duration into the aggregate stats (and the trace, when on).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name);
  explicit ScopedTimer(const std::string& name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Elapsed seconds since construction (0 when inactive).
  double seconds() const;

 private:
  void begin(const char* name, size_t name_len);

  bool active_ = false;
  double start_seconds_ = 0.0;
  double child_seconds_ = 0.0;  // accumulated by finishing children
  ScopedTimer* parent_ = nullptr;
  std::string path_;
  std::string name_;
};

// ---- free-function fast paths (single branch when disabled) ----

inline void count(const char* name, int64_t delta = 1) {
  if (profiling_enabled()) Profiler::instance().add_counter(name, delta);
}

inline void set_gauge(const char* name, double value) {
  if (profiling_enabled()) Profiler::instance().set_gauge(name, value);
}

inline void observe(const char* name, double value) {
  if (profiling_enabled()) Profiler::instance().observe(name, value);
}

/// Counter snapshot for manifests: empty snapshot when the profiler was
/// never constructed (does not construct it).
MetricsSnapshot snapshot_if_enabled();

}  // namespace shrinkbench::obs

#define SB_OBS_CONCAT_INNER(a, b) a##b
#define SB_OBS_CONCAT(a, b) SB_OBS_CONCAT_INNER(a, b)
/// Profiles the enclosing scope under `name`.
#define SB_PROFILE_SCOPE(name) \
  ::shrinkbench::obs::ScopedTimer SB_OBS_CONCAT(sb_scoped_timer_, __LINE__)(name)
