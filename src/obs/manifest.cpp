#include "obs/manifest.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <sstream>

#include "obs/json.hpp"

namespace shrinkbench::obs {

namespace {

// Captured at static-init (library load), i.e. effectively process start.
const std::string g_process_start_utc = [] { return utc_timestamp(); }();

std::string run_git_describe() {
#if defined(_WIN32)
  return "unknown";
#else
  FILE* pipe = ::popen("git describe --always --dirty --tags 2>/dev/null", "r");
  if (!pipe) return "unknown";
  char buf[256];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe)) out += buf;
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  if (status != 0 || out.empty()) return "unknown";
  return out;
#endif
}

}  // namespace

const std::string& git_describe() {
  static const std::string described = run_git_describe();
  return described;
}

std::string utc_timestamp() {
  const std::time_t t = std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  char stamp[32] = "unknown";
#if !defined(_WIN32)
  if (std::tm tm_utc{}; gmtime_r(&t, &tm_utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  }
#endif
  return stamp;
}

const std::string& process_start_utc() { return g_process_start_utc; }

std::string metrics_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) os << ',';
    first = false;
    os << json_str(name) << ':' << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) os << ',';
    first = false;
    os << json_str(name) << ':' << json_num(value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ',';
    first = false;
    os << json_str(name) << ":{\"count\":" << h.count << ",\"sum\":" << json_num(h.sum)
       << ",\"min\":" << json_num(h.min) << ",\"max\":" << json_num(h.max)
       << ",\"mean\":" << json_num(h.mean()) << ",\"p50\":" << json_num(h.p50)
       << ",\"p90\":" << json_num(h.p90) << ",\"p99\":" << json_num(h.p99) << '}';
  }
  os << "},\"spans\":{";
  first = true;
  for (const auto& [path, s] : snap.spans) {
    if (!first) os << ',';
    first = false;
    os << json_str(path) << ":{\"count\":" << s.count
       << ",\"total_seconds\":" << json_num(s.total_seconds)
       << ",\"child_seconds\":" << json_num(s.child_seconds)
       << ",\"self_seconds\":" << json_num(s.self_seconds()) << '}';
  }
  os << "}}";
  return os.str();
}

}  // namespace shrinkbench::obs
