// Minimal JSON emission helpers shared by the trace exporter and the run
// manifest writer. Writing only — the library never parses JSON.
#pragma once

#include <cstdio>
#include <string>

namespace shrinkbench::obs {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_str(const std::string& s) { return "\"" + json_escape(s) + "\""; }

/// Doubles formatted round-trippably; NaN/inf (invalid JSON) become null.
inline std::string json_num(double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace shrinkbench::obs
