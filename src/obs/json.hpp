// Minimal JSON helpers shared by the trace exporter, the run-manifest
// writer, and the telemetry heartbeat. Emission plus a small strict
// parser (JsonValue / json_parse) used by sb_top and tests to read back
// the status/manifest files the library writes — not a general-purpose
// JSON library.
#pragma once

#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace shrinkbench::obs {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_str(const std::string& s) { return "\"" + json_escape(s) + "\""; }

/// Doubles formatted round-trippably; NaN/inf (invalid JSON) become null.
inline std::string json_num(double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// ---------------------------------------------------------------------
// Parsing — strict recursive descent over the subset this library emits
// (no comments, no trailing commas; \uXXXX escapes collapse to '?').
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const { return object.count(key) > 0; }
  /// Throws std::out_of_range on a missing key, like map::at.
  const JsonValue& at(const std::string& key) const { return object.at(key); }
  /// Missing or non-numeric key -> fallback (convenience for optional
  /// status fields).
  double num_or(const std::string& key, double fallback) const {
    const auto it = object.find(key);
    return it != object.end() && it->second.kind == Kind::Number ? it->second.number : fallback;
  }
  std::string str_or(const std::string& key, const std::string& fallback) const {
    const auto it = object.find(key);
    return it != object.end() && it->second.kind == Kind::String ? it->second.string : fallback;
  }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* why) {
    throw std::runtime_error("json parse error at " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object[key.string] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    expect('"');
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            v.string += '?';  // callers only need presence, not code points
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        v.string += c;
      }
    }
  }

  JsonValue number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace detail

/// Parses `text` strictly; throws std::runtime_error on malformed input.
inline JsonValue json_parse(const std::string& text) { return detail::JsonParser(text).parse(); }

}  // namespace shrinkbench::obs
