#include "obs/log.hpp"

#include <chrono>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace shrinkbench::obs {

namespace {

struct LogState {
  std::mutex mu;
  LogLevel level;
  bool json;
  std::ofstream file;

  LogState() {
    const char* env = std::getenv("SB_LOG_LEVEL");
    level = env ? parse_log_level(env) : LogLevel::Info;
    const char* json_env = std::getenv("SB_LOG_JSON");
    json = json_env && *json_env && std::string(json_env) != "0" &&
           std::string(json_env) != "false";
    if (const char* path = std::getenv("SB_LOG_FILE")) {
      file.open(path, std::ios::app);
    }
  }
};

LogState& state() {
  static LogState s;
  return s;
}

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& text, LogLevel fallback) {
  std::string t;
  for (char c : text) t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (t == "trace") return LogLevel::Trace;
  if (t == "debug") return LogLevel::Debug;
  if (t == "info") return LogLevel::Info;
  if (t == "warn" || t == "warning") return LogLevel::Warn;
  if (t == "error") return LogLevel::Error;
  if (t == "off" || t == "none" || t == "quiet") return LogLevel::Off;
  return fallback;
}

LogLevel log_level() { return state().level; }

void set_log_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(state().mu);
  state().level = level;
}

void set_log_file(const std::string& path) {
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.file.is_open()) s.file.close();
  if (!path.empty()) s.file.open(path, std::ios::app);
}

bool log_json() { return state().json; }

void set_log_json(bool enabled) {
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.json = enabled;
}

void log_message(LogLevel level, const char* tag, const std::string& message) {
  if (!log_enabled(level)) return;
  LogState& s = state();
  std::string line;
  if (s.json) {
    char t[24];
    std::snprintf(t, sizeof(t), "%.3f", elapsed_seconds());
    line = std::string("{\"t\":") + t + ",\"level\":\"" + to_string(level) + "\",\"tag\":\"" +
           json_escape(tag) + "\",\"msg\":\"" + json_escape(message) + "\"}";
  } else {
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "[%9.3f] %-5s %s: ", elapsed_seconds(),
                  to_string(level), tag);
    line = prefix + message;
  }
  std::lock_guard<std::mutex> lock(s.mu);
  // The one console sink in the library: everything user-visible flows
  // through this std::cerr write.
  std::cerr << line << '\n';
  if (s.file.is_open()) s.file << line << '\n' << std::flush;
}

void logf(LogLevel level, const char* tag, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string buf(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(buf.data(), buf.size() + 1, fmt, args);
  va_end(args);
  log_message(level, tag, buf);
}

}  // namespace shrinkbench::obs
