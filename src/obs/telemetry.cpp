#include "obs/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/io.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/profile.hpp"
#include "obs/resource.hpp"

namespace shrinkbench::obs {

namespace {

// -1 = not yet resolved from the environment, 0 = off, 1 = on.
std::atomic<int> g_enabled{-1};
std::atomic<bool> g_constructed{false};
std::atomic<PoolSampleFn> g_pool_sampler{nullptr};
std::atomic<SimdNameFn> g_simd_name_fn{nullptr};

std::mutex& paths_mutex() {
  static std::mutex mu;
  return mu;
}

std::string& status_path_storage() {
  static std::string path;
  return path;
}

std::string& jsonl_path_storage() {
  static std::string path;
  return path;
}

std::atomic<double> g_hz{-1.0};  // < 0 = not yet resolved

bool env_truthy(const char* value) {
  if (!value || !*value) return false;
  return std::string(value) != "0" && std::string(value) != "false";
}

double clamp_hz(double hz) {
  if (hz <= 0.0) return 0.0;
  return std::clamp(hz, 0.1, 100.0);
}

void resolve_from_env() {
  bool enabled = env_truthy(std::getenv("SB_TELEMETRY"));
  // A configured destination implies telemetry, mirroring SB_TRACE
  // implying SB_PROF.
  if (const char* status = std::getenv("SB_STATUS_FILE"); status && *status) {
    enabled = true;
    std::string path = status;
    // Fleet workers share one SB_STATUS_FILE from their coordinator's
    // environment; the per-worker SB_STATUS_SUFFIX (e.g. ".w3") keeps
    // their heartbeats from clobbering each other while staying globbable
    // for sb_top --fleet.
    if (const char* suffix = std::getenv("SB_STATUS_SUFFIX"); suffix && *suffix) path += suffix;
    std::lock_guard<std::mutex> lock(paths_mutex());
    if (status_path_storage().empty()) status_path_storage() = path;
  }
  if (const char* jsonl = std::getenv("SB_TELEMETRY_JSONL"); jsonl && *jsonl) {
    enabled = true;
    std::lock_guard<std::mutex> lock(paths_mutex());
    if (jsonl_path_storage().empty()) jsonl_path_storage() = jsonl;
  }
  if (g_hz.load(std::memory_order_relaxed) < 0.0) {
    double hz = 1.0;
    if (const char* env = std::getenv("SB_TELEMETRY_HZ"); env && *env) {
      hz = clamp_hz(std::strtod(env, nullptr));
    }
    g_hz.store(hz, std::memory_order_relaxed);
  }
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, enabled ? 1 : 0);
}

void stop_sampler_at_exit();

}  // namespace

bool telemetry_enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    resolve_from_env();
    state = g_enabled.load(std::memory_order_relaxed);
  }
  return state == 1;
}

void set_telemetry_enabled(bool enabled) { g_enabled.store(enabled ? 1 : 0); }

double telemetry_hz() {
  telemetry_enabled();  // make sure SB_TELEMETRY_HZ has been consulted
  return g_hz.load(std::memory_order_relaxed);
}

void set_telemetry_hz(double hz) { g_hz.store(clamp_hz(hz)); }

std::string status_path() {
  telemetry_enabled();  // make sure SB_STATUS_FILE has been consulted
  std::lock_guard<std::mutex> lock(paths_mutex());
  return status_path_storage();
}

void set_status_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(paths_mutex());
  status_path_storage() = path;
}

void set_pool_sampler(PoolSampleFn fn) { g_pool_sampler.store(fn); }

void set_simd_name_fn(SimdNameFn fn) { g_simd_name_fn.store(fn); }

// ---------------------------------------------------------------------
// QuantileHistogram
// ---------------------------------------------------------------------

namespace {

// Bucket i covers [kMinValue * growth^i, kMinValue * growth^(i+1)).
int bucket_index(double value) {
  static const double inv_log_growth = 1.0 / std::log(QuantileHistogram::kGrowth);
  const double clamped = std::min(value, QuantileHistogram::kMaxValue);
  return static_cast<int>(std::log(clamped / QuantileHistogram::kMinValue) * inv_log_growth);
}

double bucket_midpoint(int index) {
  // Geometric midpoint: relative error bounded by sqrt(growth) - 1.
  return QuantileHistogram::kMinValue *
         std::pow(QuantileHistogram::kGrowth, static_cast<double>(index) + 0.5);
}

}  // namespace

void QuantileHistogram::observe(double value) {
  ++count_;
  if (!(value > kMinValue)) {  // zero, negative, NaN: underflow bucket
    if (underflow_ == 0 || value < underflow_min_) underflow_min_ = value == value ? value : 0.0;
    ++underflow_;
    return;
  }
  const int index = bucket_index(value);
  if (static_cast<size_t>(index) >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
}

double QuantileHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped_q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest value with cumulative count > rank.
  int64_t rank = static_cast<int64_t>(clamped_q * static_cast<double>(count_ - 1));
  if (rank < underflow_) return underflow_min_;
  rank -= underflow_;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    rank -= buckets_[i];
    if (rank < 0) return bucket_midpoint(static_cast<int>(i));
  }
  return buckets_.empty() ? underflow_min_ : bucket_midpoint(static_cast<int>(buckets_.size()) - 1);
}

// ---------------------------------------------------------------------
// Telemetry singleton
// ---------------------------------------------------------------------

struct StatusBoard {
  std::string phase;
  std::string stage;
  size_t done = 0, total = 0;
  double eta_seconds = 0.0;
  int epoch = -1;
  double train_loss = 0.0, val_top1 = 0.0;
  int64_t anomalies = 0, retries = 0, failures = 0, cache_hits = 0;
  ServeStatus serve;
  bool serve_set = false;
  std::string degraded_reason;  // non-empty = heartbeat reports degraded
};

struct Telemetry::Impl {
  mutable std::mutex mu;
  std::chrono::steady_clock::time_point epoch_time;
  std::map<std::string, std::vector<TimeSeriesPoint>> series;
  StatusBoard board;

  // JSONL streaming sink (lazily opened from the configured path).
  std::ofstream jsonl;
  bool jsonl_opened = false;

  // Pool-utilization deltas between ticks -> busy fractions.
  PoolSample prev_pool;
  double prev_pool_t = 0.0;
  PoolSample last_pool;
  std::vector<double> last_busy_frac;

  // Background sampler.
  std::thread sampler;
  std::condition_variable sampler_cv;
  std::mutex sampler_mu;
  bool sampler_stop = false;
  std::atomic<bool> sampler_running{false};

  void append_locked(const std::string& name, double t, double value) {
    std::vector<TimeSeriesPoint>& points = series[name];
    if (points.size() >= kMaxPointsPerSeries) {
      points.erase(points.begin(), points.begin() + static_cast<ptrdiff_t>(points.size() / 2));
    }
    points.push_back({t, value});
    if (!jsonl_opened) {
      jsonl_opened = true;
      std::string path;
      {
        std::lock_guard<std::mutex> plock(paths_mutex());
        path = jsonl_path_storage();
      }
      if (!path.empty()) {
        const std::filesystem::path p(path);
        std::error_code ec;
        if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
        jsonl.open(path, std::ios::trunc);
      }
    }
    if (jsonl.is_open()) {
      jsonl << "{\"t\":" << json_num(t) << ",\"series\":" << json_str(name)
            << ",\"value\":" << json_num(value) << "}\n";
    }
  }
};

Telemetry::Telemetry() : impl_(new Impl) {
  impl_->epoch_time = std::chrono::steady_clock::now();
  // The sampler thread must never outlive main: stop it (and flush the
  // JSONL stream) before static destruction starts.
  std::atexit(stop_sampler_at_exit);
}

Telemetry& Telemetry::instance() {
  static Telemetry* t = [] {
    g_constructed.store(true);
    return new Telemetry();  // leaked deliberately: usable during atexit
  }();
  return *t;
}

bool Telemetry::constructed() { return g_constructed.load(); }

double Telemetry::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - impl_->epoch_time)
      .count();
}

void Telemetry::record(const std::string& series, double value) {
  record_at(series, now_seconds(), value);
}

void Telemetry::record_at(const std::string& series, double t, double value) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->append_locked(series, t, value);
}

void Telemetry::sample_once() {
  const double t = now_seconds();
  const ResourceSample res = sample_resources();
  PoolSample pool;
  if (PoolSampleFn fn = g_pool_sampler.load()) pool = fn();

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (res.valid) {
      impl_->append_locked("proc.rss_mb", t, res.rss_mb);
      impl_->append_locked("proc.peak_rss_mb", t, res.peak_rss_mb);
      impl_->append_locked("proc.cpu_user_s", t, res.user_cpu_seconds);
      impl_->append_locked("proc.cpu_sys_s", t, res.sys_cpu_seconds);
      impl_->append_locked("proc.os_threads", t, static_cast<double>(res.os_threads));
    }
    if (pool.threads > 0) {
      impl_->append_locked("pool.jobs", t, static_cast<double>(pool.jobs));
      impl_->append_locked("pool.pending_chunks", t, static_cast<double>(pool.pending_chunks));
      // Busy fraction over the last inter-tick window, per slot and
      // aggregated across the pool.
      const double dt = t - impl_->prev_pool_t;
      impl_->last_busy_frac.assign(pool.slot_busy_seconds.size(), 0.0);
      if (dt > 0.0 && !impl_->prev_pool.slot_busy_seconds.empty()) {
        for (size_t i = 0; i < pool.slot_busy_seconds.size(); ++i) {
          const double prev = i < impl_->prev_pool.slot_busy_seconds.size()
                                  ? impl_->prev_pool.slot_busy_seconds[i]
                                  : 0.0;
          impl_->last_busy_frac[i] =
              std::clamp((pool.slot_busy_seconds[i] - prev) / dt, 0.0, 1.0);
        }
      }
      double busy = 0.0;
      for (const double f : impl_->last_busy_frac) busy += f;
      impl_->append_locked("pool.busy_frac", t,
                           pool.threads > 0 ? busy / static_cast<double>(pool.threads) : 0.0);
      impl_->prev_pool = pool;
      impl_->prev_pool_t = t;
      impl_->last_pool = std::move(pool);
    }
    // Mirror the profiler registry into series so counters/gauges become
    // curves instead of end-of-run aggregates. snapshot_if_enabled never
    // constructs the profiler.
    const MetricsSnapshot snap = snapshot_if_enabled();
    for (const auto& [name, value] : snap.counters) {
      impl_->append_locked("counter." + name, t, static_cast<double>(value));
    }
    for (const auto& [name, value] : snap.gauges) {
      impl_->append_locked("gauge." + name, t, value);
    }
    if (impl_->jsonl.is_open()) impl_->jsonl.flush();
  }
  write_status();
}

std::map<std::string, std::vector<TimeSeriesPoint>> Telemetry::series() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->series;
}

std::string Telemetry::series_jsonl() const {
  // Interleave all series by time so the export reads as one monotonic
  // stream, matching what SB_TELEMETRY_JSONL tails live.
  struct Entry {
    double t;
    const std::string* name;
    double value;
    size_t seq;
  };
  std::vector<Entry> entries;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    size_t seq = 0;
    for (const auto& [name, points] : impl_->series) {
      for (const TimeSeriesPoint& p : points) entries.push_back({p.t, &name, p.value, seq++});
    }
  }
  std::stable_sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  });
  std::ostringstream os;
  for (const Entry& e : entries) {
    os << "{\"t\":" << json_num(e.t) << ",\"series\":" << json_str(*e.name)
       << ",\"value\":" << json_num(e.value) << "}\n";
  }
  return os.str();
}

bool Telemetry::write_series_jsonl(const std::filesystem::path& path) const {
  return atomic_write_file(path, series_jsonl());
}

std::string Telemetry::status_json() {
  const double t = now_seconds();
  const ResourceSample res = sample_resources();
  StatusBoard board;
  PoolSample pool;
  std::vector<double> busy_frac;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    board = impl_->board;
    pool = impl_->last_pool;
    busy_frac = impl_->last_busy_frac;
  }

  std::ostringstream os;
  os << "{\"schema\":\"shrinkbench.status/v1\""
     << ",\"updated_utc\":" << json_str(utc_timestamp()) << ",\"t\":" << json_num(t)
     << ",\"pid\":" << process_id() << ",\"host\":" << json_str(hostname());
  if (SimdNameFn simd_fn = g_simd_name_fn.load()) os << ",\"simd\":" << json_str(simd_fn());
  os << ",\"phase\":" << json_str(board.phase) << ",\"stage\":" << json_str(board.stage);
  const double fraction =
      board.total > 0 ? static_cast<double>(board.done) / static_cast<double>(board.total) : 0.0;
  os << ",\"progress\":{\"done\":" << board.done << ",\"total\":" << board.total
     << ",\"fraction\":" << json_num(fraction)
     << ",\"eta_seconds\":" << json_num(board.eta_seconds) << "}";
  if (board.epoch >= 0) {
    os << ",\"train\":{\"epoch\":" << board.epoch
       << ",\"train_loss\":" << json_num(board.train_loss)
       << ",\"val_top1\":" << json_num(board.val_top1) << "}";
  }
  os << ",\"counts\":{\"anomalies\":" << board.anomalies << ",\"retries\":" << board.retries
     << ",\"failures\":" << board.failures << ",\"cache_hits\":" << board.cache_hits << "}";
  if (!board.degraded_reason.empty()) {
    os << ",\"degraded\":true,\"degraded_reason\":" << json_str(board.degraded_reason);
  }
  if (board.serve_set) {
    os << ",\"serve\":{\"queue_depth\":" << board.serve.queue_depth
       << ",\"shed\":" << board.serve.shed
       << ",\"deadline_exceeded\":" << board.serve.deadline_exceeded
       << ",\"rejected_overload\":" << board.serve.rejected_overload
       << ",\"degraded_batches\":" << board.serve.degraded_batches
       << ",\"stalls\":" << board.serve.stalls
       << ",\"breaker_state\":" << board.serve.breaker_state << "}";
  }
  os << ",\"resources\":{\"rss_mb\":" << json_num(res.rss_mb)
     << ",\"peak_rss_mb\":" << json_num(res.peak_rss_mb)
     << ",\"cpu_user_s\":" << json_num(res.user_cpu_seconds)
     << ",\"cpu_sys_s\":" << json_num(res.sys_cpu_seconds)
     << ",\"os_threads\":" << res.os_threads << "}";
  if (pool.threads > 0) {
    os << ",\"pool\":{\"threads\":" << pool.threads << ",\"jobs\":" << pool.jobs
       << ",\"pending_chunks\":" << pool.pending_chunks << ",\"busy_frac\":[";
    for (size_t i = 0; i < busy_frac.size(); ++i) {
      if (i) os << ',';
      os << json_num(busy_frac[i]);
    }
    os << "]}";
  }
  os << "}\n";
  return os.str();
}

bool Telemetry::write_status() {
  const std::string path = status_path();
  if (path.empty()) return true;
  return atomic_write_file(path, status_json());
}

void Telemetry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->series.clear();
  impl_->board = StatusBoard{};
  impl_->prev_pool = PoolSample{};
  impl_->prev_pool_t = 0.0;
  impl_->last_pool = PoolSample{};
  impl_->last_busy_frac.clear();
}

void Telemetry::start_sampler() {
  if (impl_->sampler_running.load(std::memory_order_acquire)) return;
  const double hz = telemetry_hz();
  if (hz <= 0.0) return;
  std::lock_guard<std::mutex> lock(impl_->sampler_mu);
  if (impl_->sampler_running.load(std::memory_order_relaxed)) return;
  impl_->sampler_stop = false;
  impl_->sampler_running.store(true, std::memory_order_release);
  impl_->sampler = std::thread([this, hz] {
    const auto period = std::chrono::duration<double>(1.0 / hz);
    std::unique_lock<std::mutex> lock(impl_->sampler_mu);
    while (!impl_->sampler_stop) {
      if (impl_->sampler_cv.wait_for(lock, period, [this] { return impl_->sampler_stop; })) {
        break;
      }
      lock.unlock();
      sample_once();
      lock.lock();
    }
  });
}

void Telemetry::stop_sampler() {
  {
    std::lock_guard<std::mutex> lock(impl_->sampler_mu);
    if (!impl_->sampler_running.load(std::memory_order_relaxed)) return;
    impl_->sampler_stop = true;
  }
  impl_->sampler_cv.notify_all();
  if (impl_->sampler.joinable()) impl_->sampler.join();
  impl_->sampler_running.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->jsonl.is_open()) impl_->jsonl.flush();
}

namespace {

void stop_sampler_at_exit() {
  if (Telemetry::constructed()) Telemetry::instance().stop_sampler();
}

/// Shared guard for every status mutation: resolves enablement, lazily
/// constructs the singleton, and makes sure the background sampler is up.
Telemetry* board() {
  if (!telemetry_enabled()) return nullptr;
  Telemetry& t = Telemetry::instance();
  t.start_sampler();
  return &t;
}

template <typename Fn>
void with_board(Fn&& fn) {
  if (Telemetry* t = board()) {
    std::lock_guard<std::mutex> lock(t->impl_ref().mu);
    fn(t->impl_ref().board);
  }
}

}  // namespace

// with_board needs the private Impl; expose it file-locally through a
// member defined after Impl is complete.
Telemetry::Impl& Telemetry::impl_ref() { return *impl_; }

void status_set_phase(const std::string& phase) {
  with_board([&](StatusBoard& b) { b.phase = phase; });
}

void status_set_stage(const std::string& stage) {
  with_board([&](StatusBoard& b) { b.stage = stage; });
}

void status_set_progress(size_t done, size_t total, double eta_seconds) {
  with_board([&](StatusBoard& b) {
    b.done = done;
    b.total = total;
    b.eta_seconds = eta_seconds;
  });
}

void status_set_epoch(int epoch, double train_loss, double val_top1) {
  with_board([&](StatusBoard& b) {
    b.epoch = epoch;
    b.train_loss = train_loss;
    b.val_top1 = val_top1;
  });
}

void status_set_failures(int64_t failures, int64_t cache_hits) {
  with_board([&](StatusBoard& b) {
    b.failures = failures;
    b.cache_hits = cache_hits;
  });
}

void status_add_anomalies(int64_t n) {
  with_board([&](StatusBoard& b) { b.anomalies += n; });
}

void status_add_retries(int64_t n) {
  with_board([&](StatusBoard& b) { b.retries += n; });
}

void status_set_serve(const ServeStatus& serve) {
  with_board([&](StatusBoard& b) {
    b.serve = serve;
    b.serve_set = true;
  });
}

void status_set_degraded(const std::string& reason) {
  with_board([&](StatusBoard& b) { b.degraded_reason = reason; });
}

void write_status_now() {
  if (Telemetry* t = board()) t->write_status();
}

}  // namespace shrinkbench::obs
