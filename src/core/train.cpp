#include "core/train.hpp"

#include <cmath>
#include <memory>

#include "metrics/metrics.hpp"
#include "nn/checkpoint.hpp"
#include "nn/loss.hpp"
#include "obs/log.hpp"
#include "obs/profile.hpp"

namespace shrinkbench {

TrainOptions cifar_finetune_options() {
  TrainOptions opts;
  opts.epochs = 20;
  opts.batch_size = 64;
  opts.optimizer = OptimizerKind::Adam;
  opts.lr = 3e-4f;
  opts.patience = 6;
  return opts;
}

TrainOptions imagenet_finetune_options() {
  TrainOptions opts;
  opts.epochs = 15;
  opts.batch_size = 128;
  opts.optimizer = OptimizerKind::SgdNesterov;
  opts.lr = 1e-3f;
  opts.momentum = 0.9f;
  opts.patience = 5;
  return opts;
}

namespace {
std::unique_ptr<Optimizer> make_optimizer(Model& model, const TrainOptions& opts) {
  auto params = parameters_of(model);
  switch (opts.optimizer) {
    case OptimizerKind::Sgd: {
      SgdOptions o;
      o.lr = opts.lr;
      o.momentum = opts.momentum;
      o.nesterov = false;
      o.weight_decay = opts.weight_decay;
      return std::make_unique<SGD>(std::move(params), o);
    }
    case OptimizerKind::SgdNesterov: {
      SgdOptions o;
      o.lr = opts.lr;
      o.momentum = opts.momentum;
      o.nesterov = true;
      o.weight_decay = opts.weight_decay;
      return std::make_unique<SGD>(std::move(params), o);
    }
    case OptimizerKind::Adam: {
      AdamOptions o;
      o.lr = opts.lr;
      o.weight_decay = opts.weight_decay;
      return std::make_unique<Adam>(std::move(params), o);
    }
  }
  throw std::logic_error("make_optimizer: unreachable");
}
}  // namespace

float lr_at_epoch(const TrainOptions& opts, int epoch) {
  switch (opts.lr_schedule) {
    case LrSchedule::Fixed:
      return opts.lr;
    case LrSchedule::StepDecay: {
      const int steps = opts.lr_step_every > 0 ? epoch / opts.lr_step_every : 0;
      return opts.lr * std::pow(opts.lr_step_gamma, static_cast<float>(steps));
    }
    case LrSchedule::Cosine: {
      if (opts.epochs <= 1) return opts.lr;
      const float progress = static_cast<float>(epoch) / static_cast<float>(opts.epochs - 1);
      return opts.lr_min +
             0.5f * (opts.lr - opts.lr_min) * (1.0f + std::cos(progress * 3.14159265f));
    }
  }
  throw std::logic_error("lr_at_epoch: unreachable");
}

TrainHistory train_model(Model& model, const DatasetBundle& bundle, const TrainOptions& opts) {
  SB_PROFILE_SCOPE("train");
  auto optimizer = make_optimizer(model, opts);
  DataLoader loader(bundle.train, opts.batch_size, /*shuffle=*/true, opts.loader_seed,
                    opts.augment);
  SoftmaxCrossEntropy loss_fn;

  TrainHistory history;
  StateDict best_state;
  int epochs_since_best = 0;

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    obs::ScopedTimer epoch_span("epoch");
    optimizer->set_lr(lr_at_epoch(opts, epoch));
    loader.reset();
    double loss_sum = 0.0;
    int64_t samples = 0;
    Batch batch;
    while (loader.next(batch)) {
      optimizer->zero_grad();
      const Tensor logits = model.forward(batch.x, /*train=*/true);
      const float loss = loss_fn.forward(logits, batch.y);
      model.backward(loss_fn.backward());
      optimizer->step();
      loss_sum += static_cast<double>(loss) * static_cast<double>(batch.x.size(0));
      samples += batch.x.size(0);
    }
    obs::count("train.epochs");
    obs::count("train.samples", samples);

    const EvalResult val = evaluate(model, bundle.val, opts.batch_size);
    EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss = loss_sum / static_cast<double>(samples);
    rec.val_top1 = val.top1;
    rec.val_loss = val.loss;
    history.epochs.push_back(rec);
    if (obs::profiling_enabled()) {
      obs::observe("train.epoch_seconds", epoch_span.seconds());
      obs::set_gauge("train.last_train_loss", rec.train_loss);
      obs::set_gauge("train.last_val_top1", rec.val_top1);
    }
    SB_LOG_AT(opts.verbose ? obs::LogLevel::Info : obs::LogLevel::Debug, "train",
              "epoch %2d  train_loss %.4f  val_top1 %.4f  lr %.2e", epoch, rec.train_loss,
              rec.val_top1, static_cast<double>(lr_at_epoch(opts, epoch)));

    if (val.top1 > history.best_val_top1 || history.best_epoch < 0) {
      history.best_val_top1 = val.top1;
      history.best_epoch = epoch;
      epochs_since_best = 0;
      if (opts.restore_best) best_state = state_dict(model);
    } else {
      ++epochs_since_best;
      if (opts.patience > 0 && epochs_since_best >= opts.patience) {
        history.stopped_early = true;
        break;
      }
    }
  }

  if (opts.restore_best && !best_state.empty()) load_state_dict(model, best_state);
  return history;
}

}  // namespace shrinkbench
