#include "core/train.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <utility>

#include "metrics/metrics.hpp"
#include "nn/checkpoint.hpp"
#include "nn/loss.hpp"
#include "obs/io.hpp"
#include "obs/log.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"

namespace shrinkbench {

TrainOptions cifar_finetune_options() {
  TrainOptions opts;
  opts.epochs = 20;
  opts.batch_size = 64;
  opts.optimizer = OptimizerKind::Adam;
  opts.lr = 3e-4f;
  opts.patience = 6;
  return opts;
}

TrainOptions imagenet_finetune_options() {
  TrainOptions opts;
  opts.epochs = 15;
  opts.batch_size = 128;
  opts.optimizer = OptimizerKind::SgdNesterov;
  opts.lr = 1e-3f;
  opts.momentum = 0.9f;
  opts.patience = 5;
  return opts;
}

namespace {
std::unique_ptr<Optimizer> make_optimizer(Model& model, const TrainOptions& opts) {
  auto params = parameters_of(model);
  switch (opts.optimizer) {
    case OptimizerKind::Sgd: {
      SgdOptions o;
      o.lr = opts.lr;
      o.momentum = opts.momentum;
      o.nesterov = false;
      o.weight_decay = opts.weight_decay;
      return std::make_unique<SGD>(std::move(params), o);
    }
    case OptimizerKind::SgdNesterov: {
      SgdOptions o;
      o.lr = opts.lr;
      o.momentum = opts.momentum;
      o.nesterov = true;
      o.weight_decay = opts.weight_decay;
      return std::make_unique<SGD>(std::move(params), o);
    }
    case OptimizerKind::Adam: {
      AdamOptions o;
      o.lr = opts.lr;
      o.weight_decay = opts.weight_decay;
      return std::make_unique<Adam>(std::move(params), o);
    }
  }
  throw std::logic_error("make_optimizer: unreachable");
}

/// Resolved checkpointing configuration: TrainOptions first, environment
/// (SB_CKPT_DIR / SB_CKPT_EVERY) as fallback.
struct CkptConfig {
  std::string dir;
  int every = 1;
  bool enabled() const { return !dir.empty() && every > 0; }
};

CkptConfig resolve_ckpt_config(const TrainOptions& opts) {
  CkptConfig cfg;
  cfg.dir = opts.checkpoint_dir;
  if (cfg.dir.empty()) {
    if (const char* env = std::getenv("SB_CKPT_DIR")) cfg.dir = env;
  }
  cfg.every = opts.checkpoint_every;
  if (cfg.every == 0) {
    cfg.every = 1;
    if (const char* env = std::getenv("SB_CKPT_EVERY")) {
      cfg.every = static_cast<int>(std::strtol(env, nullptr, 10));
    }
  }
  return cfg;
}

const char* policy_name(AnomalyPolicy p) {
  switch (p) {
    case AnomalyPolicy::Throw:
      return "throw";
    case AnomalyPolicy::SkipBatch:
      return "skip-batch";
    case AnomalyPolicy::Rollback:
      return "rollback";
  }
  return "?";
}

}  // namespace

float lr_at_epoch(const TrainOptions& opts, int epoch) {
  switch (opts.lr_schedule) {
    case LrSchedule::Fixed:
      return opts.lr;
    case LrSchedule::StepDecay: {
      const int steps = opts.lr_step_every > 0 ? epoch / opts.lr_step_every : 0;
      return opts.lr * std::pow(opts.lr_step_gamma, static_cast<float>(steps));
    }
    case LrSchedule::Cosine: {
      if (opts.epochs <= 1) return opts.lr;
      const float progress = static_cast<float>(epoch) / static_cast<float>(opts.epochs - 1);
      return opts.lr_min +
             0.5f * (opts.lr - opts.lr_min) * (1.0f + std::cos(progress * 3.14159265f));
    }
  }
  throw std::logic_error("lr_at_epoch: unreachable");
}

TrainHistory train_model(Model& model, const DatasetBundle& bundle, const TrainOptions& opts) {
  SB_PROFILE_SCOPE("train");
  // An empty split would otherwise surface as a NaN train_loss (0/0) or a
  // vacuous 0-accuracy validation — fail loudly before the epoch loop.
  if (bundle.train.size() == 0) {
    throw std::invalid_argument("train_model: empty train split (dataset '" +
                                bundle.spec.name + "')");
  }
  if (bundle.val.size() == 0) {
    throw std::invalid_argument("train_model: empty validation split (dataset '" +
                                bundle.spec.name + "')");
  }

  const CkptConfig ckpt = resolve_ckpt_config(opts);
  auto optimizer = make_optimizer(model, opts);
  DataLoader loader(bundle.train, opts.batch_size, /*shuffle=*/true, opts.loader_seed,
                    opts.augment);
  SoftmaxCrossEntropy loss_fn;

  TrainHistory history;
  StateDict best_state;
  int epochs_since_best = 0;
  // Anomaly bookkeeping is monotone: rollbacks restore model/optimizer/
  // loader state but never these counters or the LR scale.
  double lr_scale = 1.0;
  int64_t anomalies = 0;
  int64_t skipped_batches = 0;
  int rollbacks = 0;
  int start_epoch = 0;

  /// Full resumable state at the end of `epoch` (epoch -1 = pristine).
  const auto snapshot = [&](int epoch) {
    TrainCheckpoint c;
    c.epoch = epoch;
    c.lr_scale = lr_scale;
    c.model = state_dict(model);
    c.best_state = best_state;
    c.optimizer = optimizer->state();
    const DataLoaderState ls = loader.state();
    c.loader_shuffle_rng = ls.shuffle_rng;
    c.loader_augment_rng = ls.augment_rng;
    c.layer_rng = layer_rng_states(model);
    c.history.reserve(history.epochs.size());
    for (const EpochRecord& r : history.epochs) {
      c.history.push_back({r.epoch, r.train_loss, r.val_top1, r.val_loss});
    }
    c.best_val_top1 = history.best_val_top1;
    c.best_epoch = history.best_epoch;
    c.epochs_since_best = epochs_since_best;
    c.stopped_early = history.stopped_early;
    c.anomalies = anomalies;
    c.skipped_batches = skipped_batches;
    c.rollbacks = rollbacks;
    return c;
  };

  /// Restores everything a snapshot captured except the monotone anomaly
  /// counters and lr_scale (the disk-resume path re-seeds those itself).
  const auto restore = [&](const TrainCheckpoint& c) {
    load_state_dict(model, c.model);
    optimizer->load_state(c.optimizer);
    loader.load_state({c.loader_shuffle_rng, c.loader_augment_rng});
    load_layer_rng_states(model, c.layer_rng);
    best_state = c.best_state;
    history.epochs.clear();
    for (const TrainCheckpoint::Epoch& e : c.history) {
      history.epochs.push_back({static_cast<int>(e.epoch), e.train_loss, e.val_top1, e.val_loss});
    }
    history.best_val_top1 = c.best_val_top1;
    history.best_epoch = static_cast<int>(c.best_epoch);
    history.stopped_early = c.stopped_early;
    epochs_since_best = static_cast<int>(c.epochs_since_best);
  };

  // Last-good state for AnomalyPolicy::Rollback; doubles as the loaded
  // checkpoint on resume.
  TrainCheckpoint last_good;
  bool have_last_good = false;

  if (ckpt.enabled() && load_latest_train_checkpoint(ckpt.dir, last_good)) {
    restore(last_good);
    lr_scale = last_good.lr_scale;
    anomalies = last_good.anomalies;
    skipped_batches = last_good.skipped_batches;
    rollbacks = static_cast<int>(last_good.rollbacks);
    start_epoch = static_cast<int>(last_good.epoch) + 1;
    history.resumed_from_epoch = start_epoch;
    have_last_good = true;
    obs::count("train.resume");
    SB_LOG_INFO("train", "resuming from checkpoint (epoch %d done) in %s", start_epoch - 1,
                ckpt.dir.c_str());
  }
  if (opts.anomaly_policy == AnomalyPolicy::Rollback && !have_last_good) {
    last_good = snapshot(start_epoch - 1);
    have_last_good = true;
  }

  int epoch = start_epoch;
  while (!history.stopped_early && epoch < opts.epochs) {
    if (obs::fault_point("train.crash_epoch")) {
      throw std::runtime_error("injected training crash (SB_FAULT=train.crash_epoch) at epoch " +
                               std::to_string(epoch));
    }
    obs::ScopedTimer epoch_span("epoch");
    optimizer->set_lr(lr_at_epoch(opts, epoch) * static_cast<float>(lr_scale));
    loader.reset();
    double loss_sum = 0.0;
    int64_t samples = 0;
    int64_t step = 0;
    bool rolled_back = false;
    Batch batch;
    while (loader.next(batch)) {
      optimizer->zero_grad();
      const Tensor logits = model.forward(batch.x, /*train=*/true);
      float loss = loss_fn.forward(logits, batch.y);
      if (obs::fault_point("train.nan_loss")) {
        loss = std::numeric_limits<float>::quiet_NaN();
      }

      // Per-step health check: the loss every step (free), the gradients
      // on a vectorized finiteness scan every grad_check_every steps (or
      // via the clipping norm, which visits every element anyway).
      const char* bad = nullptr;
      if (!std::isfinite(loss)) bad = "loss";
      if (!bad) {
        model.backward(loss_fn.backward());
        if (obs::fault_point("train.nan_grad")) {
          const auto params = parameters_of(model);
          if (!params.empty() && params[0]->numel() > 0) {
            params[0]->grad.data()[0] = std::numeric_limits<float>::quiet_NaN();
          }
        }
        if (opts.grad_clip_norm > 0.0f) {
          const double norm = optimizer->clip_global_grad_norm(opts.grad_clip_norm);
          if (!std::isfinite(norm)) bad = "gradient";
        } else if (opts.grad_check_every > 0 && step % opts.grad_check_every == 0 &&
                   !optimizer->grads_finite()) {
          bad = "gradient";
        }
      }

      if (bad) {
        ++anomalies;
        obs::count(bad[0] == 'l' ? "train.anomaly.loss" : "train.anomaly.grad");
        obs::status_add_anomalies(1);
        SB_LOG_WARN("train", "non-finite %s at epoch %d step %lld (policy=%s)", bad, epoch,
                    static_cast<long long>(step), policy_name(opts.anomaly_policy));
        if (opts.anomaly_policy == AnomalyPolicy::Throw) {
          history.anomalies = anomalies;
          throw NumericAnomalyError("train_model: non-finite " + std::string(bad) +
                                    " at epoch " + std::to_string(epoch) + " step " +
                                    std::to_string(step) + " (AnomalyPolicy::Throw)");
        }
        if (opts.anomaly_policy == AnomalyPolicy::SkipBatch) {
          ++skipped_batches;
          obs::count("train.anomaly.skip");
          ++step;
          continue;
        }
        // Rollback: restore the last-good state, halve the LR, retry.
        if (rollbacks >= opts.anomaly_max_rollbacks) {
          throw NumericAnomalyError(
              "train_model: non-finite " + std::string(bad) + " at epoch " +
              std::to_string(epoch) + " step " + std::to_string(step) +
              " — rollback budget exhausted after " + std::to_string(rollbacks) +
              " recoveries");
        }
        ++rollbacks;
        lr_scale *= 0.5;
        obs::count("train.anomaly.rollback");
        restore(last_good);
        SB_LOG_WARN("train",
                    "rolled back to epoch %lld, lr scale now %.4g (recovery %d/%d)",
                    static_cast<long long>(last_good.epoch), lr_scale, rollbacks,
                    opts.anomaly_max_rollbacks);
        epoch = static_cast<int>(last_good.epoch) + 1;
        rolled_back = true;
        break;
      }

      optimizer->step();
      loss_sum += static_cast<double>(loss) * static_cast<double>(batch.x.size(0));
      samples += batch.x.size(0);
      ++step;
    }
    if (rolled_back) continue;  // re-enter at the rolled-back epoch

    obs::count("train.epochs");
    obs::count("train.samples", samples);

    const EvalResult val = evaluate(model, bundle.val, opts.batch_size);
    EpochRecord rec;
    rec.epoch = epoch;
    if (samples > 0) {
      rec.train_loss = loss_sum / static_cast<double>(samples);
    } else {
      // Every batch was skipped as anomalous; keep the curve honest.
      rec.train_loss = std::numeric_limits<double>::quiet_NaN();
      SB_LOG_WARN("train", "epoch %d dropped all batches (anomaly skips)", epoch);
    }
    rec.val_top1 = val.top1;
    rec.val_loss = val.loss;
    history.epochs.push_back(rec);
    obs::status_set_epoch(epoch, rec.train_loss, rec.val_top1);
    if (obs::profiling_enabled()) {
      obs::observe("train.epoch_seconds", epoch_span.seconds());
      obs::set_gauge("train.last_train_loss", rec.train_loss);
      obs::set_gauge("train.last_val_top1", rec.val_top1);
    }
    SB_LOG_AT(opts.verbose ? obs::LogLevel::Info : obs::LogLevel::Debug, "train",
              "epoch %2d  train_loss %.4f  val_top1 %.4f  lr %.2e", epoch, rec.train_loss,
              rec.val_top1, static_cast<double>(lr_at_epoch(opts, epoch)) * lr_scale);

    if (val.top1 > history.best_val_top1 || history.best_epoch < 0) {
      history.best_val_top1 = val.top1;
      history.best_epoch = epoch;
      epochs_since_best = 0;
      if (opts.restore_best) best_state = state_dict(model);
    } else {
      ++epochs_since_best;
      if (opts.patience > 0 && epochs_since_best >= opts.patience) {
        history.stopped_early = true;
      }
    }

    const bool final_epoch = history.stopped_early || epoch + 1 >= opts.epochs;
    const bool ckpt_due = ckpt.enabled() && ((epoch + 1) % ckpt.every == 0 || final_epoch);
    if (opts.anomaly_policy == AnomalyPolicy::Rollback || ckpt_due) {
      TrainCheckpoint snap = snapshot(epoch);
      if (ckpt_due) save_train_checkpoint(snap, ckpt.dir);
      if (opts.anomaly_policy == AnomalyPolicy::Rollback) last_good = std::move(snap);
    }
    ++epoch;
  }

  history.anomalies = anomalies;
  history.skipped_batches = skipped_batches;
  history.rollbacks = rollbacks;
  history.lr_scale = static_cast<float>(lr_scale);
  // best_state can be empty (restore_best off, zero epochs, or a resumed
  // pre-best checkpoint): never clobber live weights with a default dict.
  if (opts.restore_best && !best_state.empty()) load_state_dict(model, best_state);
  return history;
}

}  // namespace shrinkbench
