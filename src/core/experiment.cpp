#include "core/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "metrics/metrics.hpp"
#include "obs/io.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/profile.hpp"
#include "obs/resource.hpp"
#include "obs/telemetry.hpp"
#include "tensor/simd.hpp"
#include "tensor/threadpool.hpp"

namespace shrinkbench {

namespace {

/// Accumulates elapsed wall time into a PhaseTimings field. Independent
/// of the profiler: phase timings flow into results/CSV even with every
/// SB_* switch off.
class PhaseClock {
  using clock = std::chrono::steady_clock;

 public:
  explicit PhaseClock(double& acc) : acc_(acc), start_(clock::now()) {}
  ~PhaseClock() { acc_ += std::chrono::duration<double>(clock::now() - start_).count(); }
  PhaseClock(const PhaseClock&) = delete;
  PhaseClock& operator=(const PhaseClock&) = delete;

 private:
  double& acc_;
  clock::time_point start_;
};

}  // namespace

ExperimentRunner::ExperimentRunner(std::string cache_dir) : store_(std::move(cache_dir)) {}

const DatasetBundle& ExperimentRunner::dataset(const std::string& name, uint64_t data_seed) {
  const std::string key = name + "/" + std::to_string(data_seed);
  std::lock_guard<std::mutex> lock(datasets_mu_);
  for (const auto& [k, bundle] : datasets_) {
    if (k == key) {
      obs::count("cache.dataset.hit");
      return *bundle;
    }
  }
  obs::count("cache.dataset.miss");
  datasets_.emplace_back(
      key, std::make_unique<DatasetBundle>(make_synthetic(synthetic_preset(name, data_seed))));
  return *datasets_.back().second;
}

const std::string& ExperimentRunner::cache_dir() const { return store_.cache_dir(); }

ModelPtr ExperimentRunner::pretrained(const ExperimentConfig& config) {
  const DatasetBundle& bundle = dataset(config.dataset, config.data_seed);
  const int64_t width = config.width;
  // Serialized so concurrent sweep workers hitting a cold checkpoint
  // train it once; the waiters then load it from the disk cache.
  std::lock_guard<std::mutex> lock(pretrain_mu_);
  return store_.get(bundle, config.arch, width, config.init_seed, config.pretrain,
                    config.pretrain_tag);
}

std::string config_fingerprint(const ExperimentConfig& c) {
  std::ostringstream ss;
  ss << c.dataset << '|' << c.data_seed << '|' << c.arch << '|' << c.width << '|' << c.init_seed
     << '|' << c.pretrain_tag << '|' << c.strategy << '|' << c.target_compression << '|'
     << to_string(c.schedule) << '|' << c.schedule_steps << '|' << c.prune.include_classifier
     << '|' << c.prune.grad_batch_size << '|' << c.run_seed << '|' << c.pretrain.epochs << '|'
     << c.pretrain.lr << '|' << static_cast<int>(c.pretrain.optimizer) << '|'
     << c.pretrain.batch_size << '|' << c.pretrain.patience << '|' << c.finetune.epochs << '|'
     << c.finetune.lr << '|' << static_cast<int>(c.finetune.optimizer) << '|'
     << c.finetune.batch_size << '|' << c.finetune.patience << '|' << c.finetune.momentum << '|'
     << c.finetune.weight_decay;
  // Newer knobs are appended only when they differ from their defaults so
  // that fingerprints of pre-existing cached results stay valid.
  const auto append_schedule = [&ss](const char* tag, const TrainOptions& o) {
    if (o.lr_schedule != LrSchedule::Fixed) {
      ss << '|' << tag << static_cast<int>(o.lr_schedule) << ':' << o.lr_step_every << ':'
         << o.lr_step_gamma << ':' << o.lr_min;
    }
  };
  append_schedule("ptsched", c.pretrain);
  append_schedule("ftsched", c.finetune);
  if (c.prune.fisher_batches != 4) ss << "|fb" << c.prune.fisher_batches;
  if (c.prune.activation_batches != 4) ss << "|ab" << c.prune.activation_batches;
  const auto append_augment = [&ss](const char* tag, const AugmentOptions& a) {
    if (a.any()) ss << '|' << tag << a.hflip << ':' << a.max_shift << ':' << a.noise_std;
  };
  append_augment("ptaug", c.pretrain.augment);
  append_augment("ftaug", c.finetune.augment);
  // Anomaly handling changes the computation (skipped steps, LR halving,
  // clipped gradients), so non-default policies get their own cache
  // entries. checkpoint_dir/checkpoint_every are deliberately absent:
  // checkpointing is bit-transparent to the result.
  const auto append_anomaly = [&ss](const char* tag, const TrainOptions& o) {
    if (o.anomaly_policy != AnomalyPolicy::Throw || o.grad_clip_norm != 0.0f) {
      ss << '|' << tag << static_cast<int>(o.anomaly_policy) << ':' << o.anomaly_max_rollbacks
         << ':' << o.grad_check_every << ':' << o.grad_clip_norm;
    }
  };
  append_anomaly("ptanom", c.pretrain);
  append_anomaly("ftanom", c.finetune);
  return ss.str();
}

namespace {

std::filesystem::path result_cache_path(const std::string& cache_dir,
                                        const ExperimentConfig& config) {
  const std::string fp = config_fingerprint(config);
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(std::hash<std::string>{}(fp)));
  return std::filesystem::path(cache_dir) / "results" / (std::string(hex) + ".result");
}

// Cache entry layout (v2, checksummed):
//   line 1  config fingerprint
//   line 2  space-separated metrics
//   line 3  "#crc <16-hex fnv1a64 of lines 1-2 incl. newlines>"
// The checksum turns torn or bit-rotted files into detected corruption
// (quarantined + recomputed) instead of mis-parsed result rows.
constexpr const char* kCacheCrcPrefix = "#crc ";

bool write_cached_result(const std::filesystem::path& path, const ExperimentConfig& config,
                         const ExperimentResult& r) {
  std::ostringstream os;
  os.precision(17);  // cached doubles must round-trip bit-exactly
  os << config_fingerprint(config) << '\n'
     << r.pre_top1 << ' ' << r.pre_top5 << ' ' << r.pre_loss << ' ' << r.post_top1 << ' '
     << r.post_top5 << ' ' << r.post_loss << ' ' << r.compression << ' ' << r.speedup << ' '
     << r.params_total << ' ' << r.params_nonzero << ' ' << r.flops_dense << ' '
     << r.flops_effective << ' ' << r.finetune_epochs << ' ' << r.seconds << ' '
     << r.phases.pretrain << ' ' << r.phases.prune << ' ' << r.phases.finetune << ' '
     << r.phases.eval << '\n';
  std::string body = os.str();
  const std::string crc = obs::checksum_hex(body);  // before injection: mismatch is the point
  if (obs::fault_point("cache.corrupt") && !body.empty()) body[body.size() / 2] ^= 0x20;
  // A failed write (full disk, unwritable dir) leaves no file at all —
  // the experiment result is still returned, only the cache is skipped.
  if (!obs::atomic_write_file(path, body + kCacheCrcPrefix + crc + '\n')) {
    obs::count("cache.result.write_failed");
    SB_LOG_WARN("cache", "could not persist result cache entry %s", path.string().c_str());
    return false;
  }
  return true;
}

/// Idempotent across processes: two workers detecting the same torn
/// entry must both end with the entry out of the way and exactly one
/// quarantine file. POSIX rename atomically replaces an existing
/// .corrupt; when the rename fails instead (source already moved by the
/// peer, or a platform that refuses to overwrite), the fallback removes
/// our copy so the recompute path is clear either way. Warns once per
/// entry per process — concurrent readers and retry loops hitting the
/// same entry would otherwise each emit the warning.
void quarantine_cache_entry(const std::filesystem::path& path) {
  std::filesystem::path corrupt = path;
  corrupt += ".corrupt";
  std::error_code ec;
  std::filesystem::rename(path, corrupt, ec);
  if (ec) {
    std::error_code rm;
    std::filesystem::remove(path, rm);
    if (std::filesystem::exists(path, rm)) {
      // Neither rename nor remove cleared the entry: every future read
      // would re-detect the corruption and loop. Loud, not silent.
      SB_LOG_ERROR("cache", "cannot quarantine corrupt cache entry %s (%s)",
                   path.string().c_str(), ec.message().c_str());
      return;
    }
  }
  obs::count("cache.result.corrupt");
  static std::mutex warned_mu;
  static std::vector<std::string> warned;
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(warned_mu);
    if (std::find(warned.begin(), warned.end(), path.string()) == warned.end()) {
      warned.push_back(path.string());
      first = true;
    }
  }
  if (first) {
    SB_LOG_WARN("cache", "corrupt result cache entry quarantined to %s — recomputing",
                corrupt.string().c_str());
  } else {
    SB_LOG_DEBUG("cache", "corrupt result cache entry %s already quarantined — recomputing",
                 path.string().c_str());
  }
}

bool read_cached_result(const std::filesystem::path& path, const ExperimentConfig& config,
                        ExperimentResult& r) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::string fingerprint, data, crc_line;
  const bool shaped = static_cast<bool>(std::getline(is, fingerprint)) &&
                      static_cast<bool>(std::getline(is, data)) &&
                      static_cast<bool>(std::getline(is, crc_line));
  // Entries from before the checksum era (or truncated past the crc
  // line) are a silent stale miss: recomputed and overwritten.
  if (!shaped || crc_line.rfind(kCacheCrcPrefix, 0) != 0) return false;
  const std::string body = fingerprint + '\n' + data + '\n';
  if (crc_line.substr(std::char_traits<char>::length(kCacheCrcPrefix)) !=
      obs::checksum_hex(body)) {
    quarantine_cache_entry(path);
    return false;
  }
  if (fingerprint != config_fingerprint(config)) return false;  // hash collision: plain miss
  r.config = config;
  std::istringstream fields(data);
  fields >> r.pre_top1 >> r.pre_top5 >> r.pre_loss >> r.post_top1 >> r.post_top5 >>
      r.post_loss >> r.compression >> r.speedup >> r.params_total >> r.params_nonzero >>
      r.flops_dense >> r.flops_effective >> r.finetune_epochs >> r.seconds >>
      r.phases.pretrain >> r.phases.prune >> r.phases.finetune >> r.phases.eval;
  if (!fields) {  // checksum ok but fields unparseable: treat as corrupt
    quarantine_cache_entry(path);
    return false;
  }
  return true;
}

}  // namespace

ExperimentResult ExperimentRunner::run(const ExperimentConfig& config) {
  const auto cache_path = result_cache_path(store_.cache_dir(), config);
  if (ExperimentResult cached; read_cached_result(cache_path, config, cached)) {
    obs::count("cache.result.hit");
    cached.from_cache = true;
    return cached;
  }
  obs::count("cache.result.miss");
  if (obs::fault_point("experiment.throw")) {
    throw std::runtime_error("injected experiment fault (SB_FAULT=experiment.throw)");
  }

  SB_PROFILE_SCOPE("experiment.run");
  const auto start = std::chrono::steady_clock::now();
  ExperimentResult result;
  result.config = config;

  const DatasetBundle* bundle_ptr = nullptr;
  ModelPtr model;
  {
    obs::ScopedTimer span("pretrain");
    PhaseClock phase(result.phases.pretrain);
    obs::status_set_stage("pretrain");
    bundle_ptr = &dataset(config.dataset, config.data_seed);
    model = pretrained(config);
  }
  const DatasetBundle& bundle = *bundle_ptr;
  const Shape sample = bundle.train.sample_shape();

  {
    obs::ScopedTimer span("eval");
    PhaseClock phase(result.phases.eval);
    obs::status_set_stage("eval");
    const EvalResult pre = evaluate(*model, bundle.test, config.finetune.batch_size);
    result.pre_top1 = pre.top1;
    result.pre_top5 = pre.top5;
    result.pre_loss = pre.loss;
  }

  const PruningStrategy strategy = strategy_from_name(config.strategy);
  const double final_fraction =
      fraction_for_compression(*model, config.target_compression, config.prune);
  const auto fractions =
      schedule_fractions(config.schedule, final_fraction, config.schedule_steps);

  Rng rng(config.run_seed);
  TrainOptions ft = config.finetune;
  ft.loader_seed = config.run_seed ^ 0xf17e57a9;
  // Per-experiment checkpoint root: one subdirectory per fine-tuning
  // round so every round resumes independently after a crash. Rooted
  // under $SB_CKPT_DIR when set, else <cache_dir>/ckpt, keyed by the
  // result-cache stem; removed once the result is safely cached.
  std::filesystem::path ckpt_root = config.finetune.checkpoint_dir;
  if (ckpt_root.empty()) {
    if (const char* env = std::getenv("SB_CKPT_DIR")) {
      ckpt_root = env;
    } else {
      ckpt_root = std::filesystem::path(store_.cache_dir()) / "ckpt";
    }
  }
  ckpt_root /= cache_path.stem();
  // Compression ratio 1 is the unpruned control: pruning keeps every
  // weight and fine-tuning a converged model is a no-op by design, so the
  // control point is free (post == pre, as the paper's §6 requires it to
  // be reported).
  const bool no_op_control = fractions.size() == 1 && final_fraction >= 1.0;
  int round = 0;
  for (const double fraction : fractions) {
    {
      obs::ScopedTimer span("prune");
      PhaseClock phase(result.phases.prune);
      obs::status_set_stage("prune");
      prune_model(*model, strategy, fraction, bundle.train, config.prune, rng);
    }
    if (no_op_control) break;
    obs::ScopedTimer span("finetune");
    PhaseClock phase(result.phases.finetune);
    obs::status_set_stage("finetune");
    ft.checkpoint_dir = (ckpt_root / ("r" + std::to_string(round))).string();
    const TrainHistory hist = train_model(*model, bundle, ft);
    result.finetune_epochs += static_cast<int>(hist.epochs.size());
    result.anomalies += hist.anomalies;
    result.skipped_batches += hist.skipped_batches;
    result.rollbacks += hist.rollbacks;
    if (hist.resumed_from_epoch >= 0) ++result.resumed_rounds;
    ft.loader_seed = rng.next_u64();  // fresh shuffling for later rounds
    ++round;
  }

  {
    obs::ScopedTimer span("eval");
    PhaseClock phase(result.phases.eval);
    obs::status_set_stage("eval");
    const EvalResult post = evaluate(*model, bundle.test, config.finetune.batch_size);
    result.post_top1 = post.top1;
    result.post_top5 = post.top5;
    result.post_loss = post.loss;
  }

  const ParamCounts counts = count_params(*model);
  result.params_total = counts.total;
  result.params_nonzero = counts.nonzero;
  result.compression = compression_ratio(*model);
  const FlopCounts flops = count_flops(*model, sample);
  result.flops_dense = flops.dense;
  result.flops_effective = flops.effective;
  result.speedup = theoretical_speedup(*model, sample);

  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (write_cached_result(cache_path, config, result)) {
    // The cached row supersedes the resume state; a failed cache write
    // keeps the checkpoints so a rerun can still resume.
    std::error_code ec;
    if (std::filesystem::remove_all(ckpt_root, ec) > 0 && !ec) obs::count("ckpt.cleaned");
  }
  return result;
}

namespace {

// SIGINT drains the sweep cleanly: the handler only sets a flag that
// run_sweep checks between experiments. SA_RESETHAND restores the
// default disposition, so a second Ctrl-C kills the process immediately.
volatile std::sig_atomic_t g_sweep_interrupt = 0;

extern "C" void sweep_sigint_handler(int) { g_sweep_interrupt = 1; }

void install_sigint_handler() {
  static bool installed = false;
  if (installed) return;
  installed = true;
#if !defined(_WIN32)
  struct sigaction sa{};
  sa.sa_handler = sweep_sigint_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &sa, nullptr);
#else
  std::signal(SIGINT, sweep_sigint_handler);
#endif
}

int sweep_retries(const SweepOptions& options) {
  if (options.retries >= 0) return options.retries;
  if (const char* env = std::getenv("SB_RETRIES")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 0) return static_cast<int>(parsed);
  }
  return 1;
}

int sweep_workers(const SweepOptions& options) {
  long w = options.parallel;
  if (w < 0) {
    w = 1;
    if (const char* env = std::getenv("SB_SWEEP_PARALLEL")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) w = parsed;
    }
  }
  return static_cast<int>(std::clamp<long>(w, 1, 64));
}

/// ETA for the log line: sub-zero means "no cache-miss timing yet" —
/// i.e. every row so far was served from the result cache — and must
/// read as unknown, not as an absurd 0.0s prediction for the cold work
/// that may remain.
std::string format_sweep_eta(double eta_seconds) {
  if (eta_seconds < 0.0) return "unknown";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fs", eta_seconds);
  return buf;
}

/// Runs one grid point with retries; a permanent failure comes back as a
/// failed row carrying the error string instead of an exception.
ExperimentResult run_one_config(ExperimentRunner& runner, const ExperimentConfig& config,
                                int retries) {
  for (int attempt = 0;; ++attempt) {
    try {
      return runner.run(config);
    } catch (const std::exception& e) {
      obs::count("sweep.attempt_failures");
      if (attempt < retries) {
        obs::count("sweep.retries");
        obs::status_add_retries(1);
        SB_LOG_WARN("sweep", "experiment %s x%.0f seed=%llu failed (attempt %d/%d): "
                    "%s — retrying",
                    config.strategy.c_str(), config.target_compression,
                    static_cast<unsigned long long>(config.run_seed), attempt + 1, retries + 1,
                    e.what());
        continue;
      }
      obs::count("sweep.failures");
      SB_LOG_ERROR("sweep", "experiment %s x%.0f seed=%llu failed permanently after "
                   "%d attempt(s): %s",
                   config.strategy.c_str(), config.target_compression,
                   static_cast<unsigned long long>(config.run_seed), attempt + 1, e.what());
      ExperimentResult result;
      result.config = config;
      result.failed = true;
      result.error = e.what();
      return result;
    }
  }
}

/// Appends finished rows to the sweep CSV as they complete, one flushed
/// line per row, so a crash or kill -9 loses nothing already computed.
class IncrementalCsv {
 public:
  IncrementalCsv(const std::string& path, bool append) {
    if (path.empty()) return;
    std::error_code ec;
    const std::filesystem::path p(path);
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
    const bool resume = append && std::filesystem::exists(p, ec) &&
                        std::filesystem::file_size(p, ec) > 0 && !ec;
    os_.open(path, resume ? std::ios::app : std::ios::trunc);
    if (!os_) {
      SB_LOG_WARN("sweep", "cannot open incremental CSV %s — rows will not be streamed",
                  path.c_str());
      return;
    }
    if (!resume) write_line(experiment_csv_header());
  }

  void write_line(const std::string& line) {
    if (!os_.is_open() || failed_) return;
    os_ << line << '\n' << std::flush;
    if (!os_) {
      failed_ = true;  // warn once; the final atomic rewrite is authoritative
      obs::count("io.write_failed");
      SB_LOG_WARN("sweep", "incremental CSV append failed — disabling streaming output");
    }
  }

 private:
  std::ofstream os_;
  bool failed_ = false;
};

/// One fleet worker's place in the grid: indices with i % count == id
/// are its own shard, everything else is steal-able surplus.
struct ShardSpec {
  int id = 0;
  int count = 1;
};

ShardSpec resolve_shard(const SweepOptions& options) {
  long id = options.shard_id;
  long count = options.shard_count;
  if (count < 0) {
    count = 1;
    if (const char* env = std::getenv("SB_FLEET_SHARDS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) count = parsed;
    }
  }
  if (id < 0) {
    id = 0;
    if (const char* env = std::getenv("SB_FLEET_SHARD")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 0) id = parsed;
    }
  }
  if (count < 1) count = 1;
  if (id >= count) {
    SB_LOG_WARN("fleet", "shard id %ld out of range for %ld shards — clamping", id, count);
    id = count - 1;
  }
  return {static_cast<int>(id), static_cast<int>(count)};
}

/// One process of a multi-process fleet working a shared grid + result
/// cache. Protocol per grid point: probe the cache; on a miss, claim
/// <entry>.claim via a non-blocking flock; holders compute (the runner
/// re-probes the cache after the claim, so a raced claim costs one
/// probe, never a duplicate experiment); conflicts defer the index.
/// After the first pass the worker converges: deferred rows either land
/// in the cache (computed by a peer) or their claim frees (peer died —
/// the kernel releases flocks of killed processes) and this worker
/// steals the compute. On a clean convergence every worker holds the
/// FULL grid in grid order, so any worker's final CSV is byte-identical
/// to a sequential sweep over the same cache.
void run_sweep_fleet(ExperimentRunner& runner, const std::vector<ExperimentConfig>& grid,
                     const ShardSpec& shard, IncrementalCsv& csv, SweepSummary& sum, int retries,
                     std::vector<ExperimentResult>& results) {
  SB_LOG_INFO("fleet", "worker shard %d/%d over %zu grid points (cache %s)", shard.id,
              shard.count, grid.size(), runner.cache_dir().c_str());
  const auto sweep_start = std::chrono::steady_clock::now();
  std::vector<ExperimentResult> slots(grid.size());
  std::vector<char> done(grid.size(), 0);
  double miss_seconds = 0.0;
  size_t misses = 0;

  // Own shard first, then everyone else's work (ascending in both
  // halves): the first half is work no live peer should be holding, the
  // second half is pure catch-up/stealing.
  std::vector<size_t> order;
  order.reserve(grid.size());
  const auto count = static_cast<size_t>(shard.count);
  for (size_t i = static_cast<size_t>(shard.id); i < grid.size(); i += count) order.push_back(i);
  for (size_t i = 0; i < grid.size(); ++i) {
    if (i % count != static_cast<size_t>(shard.id)) order.push_back(i);
  }

  const auto entry_path = [&](size_t i) { return result_cache_path(runner.cache_dir(), grid[i]); };

  const auto finish_row = [&](size_t i, ExperimentResult&& r) {
    if (r.failed) {
      ++sum.failures;
    } else if (r.from_cache) {
      ++sum.cache_hits;
    }
    slots[i] = std::move(r);
    done[i] = 1;
    ++sum.completed;
    const ExperimentResult& row = slots[i];
    // Completion-ordered stream: this worker's crash-visible trail. The
    // grid-ordered CSV comes from the results vector on return.
    csv.write_line(experiment_csv_row(row));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start).count();
    const double eta = misses > 0 ? miss_seconds / static_cast<double>(misses) *
                                        static_cast<double>(sum.total - sum.completed) /
                                        static_cast<double>(shard.count)
                                  : -1.0;
    SB_LOG_INFO("fleet", "%zu/%zu %s x%.0f seed=%llu -> %s (%s) [elapsed %.1fs, eta %s]",
                sum.completed, sum.total, row.config.strategy.c_str(),
                row.config.target_compression,
                static_cast<unsigned long long>(row.config.run_seed),
                row.failed ? "FAILED" : "ok", row.from_cache ? "cache" : "computed", elapsed,
                format_sweep_eta(eta).c_str());
    obs::status_set_progress(sum.completed, sum.total, eta);
    obs::status_set_failures(static_cast<int64_t>(sum.failures),
                             static_cast<int64_t>(sum.cache_hits));
  };

  // Attempts one grid point; true when its row is now done (loaded from
  // the shared cache or computed under our claim), false when a live
  // peer holds the claim.
  const auto attempt = [&](size_t i, bool steal_pass) -> bool {
    if (ExperimentResult cached; read_cached_result(entry_path(i), grid[i], cached)) {
      obs::count("cache.result.hit");
      cached.from_cache = true;
      finish_row(i, std::move(cached));
      return true;
    }
    std::filesystem::path claim_path = entry_path(i);
    claim_path += ".claim";
    obs::FileLock claim;
    if (!claim.try_acquire(claim_path)) {
      obs::count("fleet.claim_conflicts");
      return false;
    }
    obs::count("fleet.claims");
    const auto exp_start = std::chrono::steady_clock::now();
    ExperimentResult r = run_one_config(runner, grid[i], retries);
    if (!r.from_cache) {
      if (!r.failed) {
        miss_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() - exp_start).count();
        ++misses;
      }
      if (steal_pass) {
        ++sum.stolen;
        obs::count("fleet.steals");
      }
    }
    claim.release(/*unlink_file=*/true);
    finish_row(i, std::move(r));
    return true;
  };

  const auto interrupted = [&]() -> bool {
    if (sum.interrupted) return true;
    if (obs::fault_point("sweep.interrupt")) request_sweep_interrupt();
    if (sweep_interrupt_requested()) {
      sum.interrupted = true;
      return true;
    }
    if (obs::fault_point("sweep.abort")) {
      throw std::runtime_error("injected sweep abort (SB_FAULT=sweep.abort)");
    }
    return false;
  };

  std::vector<size_t> deferred;
  for (const size_t i : order) {
    if (interrupted()) break;
    if (!attempt(i, /*steal_pass=*/false)) deferred.push_back(i);
  }

  // Convergence: wait for deferred rows to land in the shared cache,
  // re-attempting each round with backoff. A claim whose holder was
  // killed is immediately claimable again, so any one surviving worker
  // eventually finishes the whole grid.
  int backoff_ms = 50;
  while (!deferred.empty() && !interrupted()) {
    std::vector<size_t> still;
    still.reserve(deferred.size());
    for (const size_t i : deferred) {
      if (interrupted()) break;
      if (!attempt(i, /*steal_pass=*/true)) still.push_back(i);
    }
    if (sum.interrupted) break;
    if (still.size() == deferred.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 1000);
    } else {
      backoff_ms = 50;
    }
    deferred.swap(still);
  }

  // Grid order; gaps (interrupt before convergence) are simply absent.
  results.reserve(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    if (done[i]) results.push_back(std::move(slots[i]));
  }
}

/// Shared sweep epilogue: interrupt-path artifact flushing (Chrome trace
/// + partial manifest next to the CSV) and the final heartbeat state.
void finish_sweep_artifacts(const SweepOptions& options, SweepSummary& sum,
                            const std::vector<ExperimentResult>& results) {
  if (sum.interrupted) {
    SB_LOG_WARN("sweep", "interrupted after %zu/%zu experiments — flushed state is "
                "complete; rerun to resume from the result cache",
                sum.completed, sum.total);
    // Drain-path flush: a Ctrl-C'ed sweep still leaves its observability
    // artifacts behind. The atexit trace writer would cover a clean exit,
    // but callers often keep running (or re-enter run_sweep), so flush
    // the Chrome trace and a partial manifest here, next to the CSV.
    if (obs::Profiler::constructed()) {
      const std::string trace = obs::trace_path();
      if (!trace.empty() && !obs::Profiler::instance().write_trace(trace)) {
        SB_LOG_WARN("sweep", "could not flush trace to %s on interrupt", trace.c_str());
      }
    }
    if (!options.csv_path.empty()) {
      std::string manifest_path = options.csv_path;
      if (manifest_path.size() > 4 && manifest_path.rfind(".csv") == manifest_path.size() - 4) {
        manifest_path.erase(manifest_path.size() - 4);
      }
      manifest_path += ".manifest.json";
      try {
        write_run_manifest(manifest_path, "sweep.interrupted", results);
      } catch (const std::exception& e) {
        SB_LOG_WARN("sweep", "could not flush manifest on interrupt: %s", e.what());
      }
    }
  }
  obs::status_set_phase(sum.interrupted ? "interrupted" : "done");
  obs::status_set_progress(sum.completed, sum.total, 0.0);
  obs::status_set_failures(static_cast<int64_t>(sum.failures),
                           static_cast<int64_t>(sum.cache_hits));
  obs::write_status_now();
}

}  // namespace

bool sweep_interrupt_requested() { return g_sweep_interrupt != 0; }
void request_sweep_interrupt() { g_sweep_interrupt = 1; }
void clear_sweep_interrupt() { g_sweep_interrupt = 0; }

std::vector<ExperimentResult> run_sweep(ExperimentRunner& runner, const ExperimentConfig& base,
                                        const std::vector<std::string>& strategies,
                                        const std::vector<double>& compressions,
                                        const std::vector<uint64_t>& run_seeds,
                                        const SweepOptions& options, SweepSummary* summary) {
  install_sigint_handler();
  std::vector<ExperimentResult> results;
  SweepSummary local;
  SweepSummary& sum = summary ? *summary : local;
  sum = SweepSummary{};
  sum.total = strategies.size() * compressions.size() * run_seeds.size();
  const int retries = sweep_retries(options);
  const ShardSpec shard = resolve_shard(options);
  // Fleet workers stream completion-ordered rows to a per-shard file so
  // two processes never interleave writes in one stream; the canonical
  // grid-ordered CSV is whatever the caller writes from the returned
  // (full-grid) results.
  std::string stream_path = options.csv_path;
  if (shard.count > 1 && !stream_path.empty()) {
    stream_path += ".shard" + std::to_string(shard.id);
  }
  IncrementalCsv csv(stream_path, options.append);

  // Heartbeat: publish the sweep shape immediately so a freshly started
  // run is visible to sb_top before the first experiment finishes. The
  // background sampler owns the rewrite cadence from here on.
  obs::status_set_phase("sweep");
  obs::status_set_progress(0, sum.total, -1.0);
  obs::write_status_now();
  if (obs::telemetry_enabled()) obs::Telemetry::instance().start_sampler();

  // Flatten the grid in (strategy, compression, seed) order — the row
  // order of the sequential sweep, which the parallel path preserves by
  // flushing completed slots as a contiguous prefix.
  std::vector<ExperimentConfig> grid;
  grid.reserve(sum.total);
  for (const std::string& strategy : strategies) {
    for (const double ratio : compressions) {
      for (const uint64_t seed : run_seeds) {
        ExperimentConfig config = base;
        config.strategy = strategy;
        config.target_compression = ratio;
        config.run_seed = seed;
        grid.push_back(std::move(config));
      }
    }
  }

  const int workers =
      std::min<int>(sweep_workers(options), std::max<int>(1, static_cast<int>(grid.size())));

  if (shard.count > 1) {
    // Multi-process fleet: this process is one of shard.count workers
    // coordinating through the shared result cache. In-process sweep
    // workers are not layered on top — processes are the workers, each
    // keeping op-level parallelism for its own experiments.
    SB_PROFILE_SCOPE("sweep");
    run_sweep_fleet(runner, grid, shard, csv, sum, retries, results);
    finish_sweep_artifacts(options, sum, results);
    return results;
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  // ETA bookkeeping: only cache-miss (actually computed) experiments
  // count, otherwise a mostly-cached sweep predicts an absurdly
  // optimistic finish for the remaining cold runs.
  double miss_seconds = 0.0;
  size_t misses = 0;
  SB_PROFILE_SCOPE("sweep");

  // Shared sweep state. Everything below mu is claim/flush bookkeeping;
  // the experiments themselves run outside the lock.
  std::vector<ExperimentResult> slots(grid.size());
  std::vector<char> done(grid.size(), 0);
  size_t flushed = 0;
  std::atomic<size_t> next{0};
  std::atomic<bool> stop{false};
  std::exception_ptr first_error;
  std::mutex mu;

  auto worker = [&](bool serialize_inner) {
    // Sweep workers own experiment-level parallelism: inner parallel_for
    // calls run serially so N workers do not oversubscribe N*pool
    // threads, and each experiment's arithmetic stays bit-identical to a
    // sequential run. The workers==1 inline path skips the guard and
    // keeps op-level parallelism instead.
    std::optional<ThreadPool::SerialGuard> guard;
    if (serialize_inner) guard.emplace();
    for (;;) {
      size_t i;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stop.load(std::memory_order_relaxed)) return;
        if (obs::fault_point("sweep.interrupt")) request_sweep_interrupt();
        if (sweep_interrupt_requested()) {
          sum.interrupted = true;
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        if (obs::fault_point("sweep.abort")) {
          if (!first_error) {
            first_error = std::make_exception_ptr(
                std::runtime_error("injected sweep abort (SB_FAULT=sweep.abort)"));
          }
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= grid.size()) return;
      }

      const auto exp_start = std::chrono::steady_clock::now();
      ExperimentResult result = run_one_config(runner, grid[i], retries);

      std::lock_guard<std::mutex> lock(mu);
      if (result.failed) {
        ++sum.failures;
      } else if (result.from_cache) {
        ++sum.cache_hits;
      } else {
        miss_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() - exp_start).count();
        ++misses;
      }
      slots[i] = std::move(result);
      done[i] = 1;
      // Emit every newly contiguous row: grid order in the CSV and the
      // returned vector, whatever order workers finish in.
      while (flushed < grid.size() && done[flushed]) {
        results.push_back(std::move(slots[flushed]));
        ++flushed;
        ++sum.completed;
        const ExperimentResult& r = results.back();
        csv.write_line(experiment_csv_row(r));

        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
                .count();
        // ETA only exists once a cache-miss timing does; -1 = unknown
        // (formatted as "unknown", published as unknown to the heartbeat)
        // instead of the old misleading 0.0 on an all-cache-hit prefix.
        const double eta = misses > 0 ? miss_seconds / static_cast<double>(misses) *
                                            static_cast<double>(sum.total - sum.completed) /
                                            static_cast<double>(workers)
                                      : -1.0;
        char outcome[48];
        if (r.failed) {
          std::snprintf(outcome, sizeof(outcome), "FAILED");
        } else {
          std::snprintf(outcome, sizeof(outcome), "top1 %.4f", r.post_top1);
        }
        SB_LOG_INFO("sweep", "%zu/%zu %s %s x%.0f seed=%llu -> %s (c=%.2f) "
                    "[elapsed %.1fs, eta %s]",
                    sum.completed, sum.total, r.config.arch.c_str(), r.config.strategy.c_str(),
                    r.config.target_compression,
                    static_cast<unsigned long long>(r.config.run_seed), outcome, r.compression,
                    elapsed, format_sweep_eta(eta).c_str());
        obs::status_set_progress(sum.completed, sum.total, eta);
        obs::status_set_failures(static_cast<int64_t>(sum.failures),
                                 static_cast<int64_t>(sum.cache_hits));
      }
    }
  };

  if (workers <= 1) {
    worker(/*serialize_inner=*/false);
  } else {
    SB_LOG_INFO("sweep", "sharding %zu experiments across %d workers (SB_SWEEP_PARALLEL)",
                sum.total, workers);
    std::vector<std::thread> crew;
    crew.reserve(static_cast<size_t>(workers));
    for (int t = 0; t < workers; ++t) {
      crew.emplace_back([&worker] { worker(/*serialize_inner=*/true); });
    }
    for (std::thread& th : crew) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  finish_sweep_artifacts(options, sum, results);
  return results;
}

std::string experiment_csv_header() {
  return "dataset,arch,width,strategy,schedule,target_compression,run_seed,init_seed,"
         "pretrain_tag,pre_top1,pre_top5,post_top1,post_top5,compression,speedup,"
         "params_total,params_nonzero,flops_dense,flops_effective,finetune_epochs,seconds,"
         "pretrain_s,prune_s,finetune_s,eval_s,status,error";
}

namespace {

/// RFC-4180 escaping for the error column (exception text can contain
/// anything); newlines become spaces so one row stays one line.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else if (c == '\n' || c == '\r') {
      out += ' ';
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string experiment_csv_row(const ExperimentResult& r) {
  std::ostringstream ss;
  const ExperimentConfig& c = r.config;
  ss << c.dataset << ',' << c.arch << ',' << c.width << ',' << c.strategy << ','
     << to_string(c.schedule) << ',' << c.target_compression << ',' << c.run_seed << ','
     << c.init_seed << ',' << c.pretrain_tag << ',' << r.pre_top1 << ',' << r.pre_top5 << ','
     << r.post_top1 << ',' << r.post_top5 << ',' << r.compression << ',' << r.speedup << ','
     << r.params_total << ',' << r.params_nonzero << ',' << r.flops_dense << ','
     << r.flops_effective << ',' << r.finetune_epochs << ',' << r.seconds << ','
     << r.phases.pretrain << ',' << r.phases.prune << ',' << r.phases.finetune << ','
     << r.phases.eval << ',' << (r.failed ? "failed" : "ok") << ',' << csv_field(r.error);
  return ss.str();
}

void write_experiment_csv(const std::string& path, const std::vector<ExperimentResult>& results) {
  std::ostringstream os;
  os << experiment_csv_header() << '\n';
  for (const auto& r : results) os << experiment_csv_row(r) << '\n';
  if (!obs::atomic_write_file(path, os.str())) {
    throw std::runtime_error("write_experiment_csv: cannot write " + path);
  }
}

void write_run_manifest(const std::string& path, const std::string& bench_name,
                        const std::vector<ExperimentResult>& results) {
  std::ostringstream os;

  os << "{\n"
     << "  \"schema\": \"shrinkbench.run_manifest/v1\",\n"
     << "  \"bench\": " << obs::json_str(bench_name) << ",\n"
     << "  \"git\": " << obs::json_str(obs::git_describe()) << ",\n"
     // started = library load (process start), created = manifest write:
     // the pair brackets the run without threading a clock through callers.
     << "  \"started_utc\": " << obs::json_str(obs::process_start_utc()) << ",\n"
     << "  \"created_utc\": " << obs::json_str(obs::utc_timestamp()) << ",\n"
     // Machine + effective runtime knobs: the provenance the paper found
     // missing from most published results ("what actually ran?").
     << "  \"host\": {\"hostname\": " << obs::json_str(obs::hostname())
     << ", \"cpu_model\": " << obs::json_str(obs::cpu_model())
     << ", \"cpu_cores\": " << obs::cpu_cores()
     << ", \"threads\": " << ThreadPool::default_threads()
     << ", \"simd\": " << obs::json_str(simd::level_name(simd::active_level())) << "},\n"
     << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    const ExperimentConfig& c = r.config;
    os << "    {\"fingerprint\": " << obs::json_str(config_fingerprint(c))
       << ", \"dataset\": " << obs::json_str(c.dataset) << ", \"arch\": " << obs::json_str(c.arch)
       << ", \"strategy\": " << obs::json_str(c.strategy)
       << ", \"target_compression\": " << obs::json_num(c.target_compression)
       << ", \"run_seed\": " << c.run_seed
       << ", \"status\": " << obs::json_str(r.failed ? "failed" : "ok")
       << (r.failed ? ", \"error\": " + obs::json_str(r.error) : std::string())
       << (r.anomalies > 0 ? ", \"anomalies\": " + std::to_string(r.anomalies) +
                                 ", \"skipped_batches\": " + std::to_string(r.skipped_batches) +
                                 ", \"rollbacks\": " + std::to_string(r.rollbacks)
                           : std::string())
       << (r.resumed_rounds > 0
               ? ", \"resumed_rounds\": " + std::to_string(r.resumed_rounds)
               : std::string())
       << ", \"post_top1\": " << obs::json_num(r.post_top1)
       << ", \"compression\": " << obs::json_num(r.compression)
       << ", \"finetune_epochs\": " << r.finetune_epochs
       << ", \"phases\": {\"pretrain\": " << obs::json_num(r.phases.pretrain)
       << ", \"prune\": " << obs::json_num(r.phases.prune)
       << ", \"finetune\": " << obs::json_num(r.phases.finetune)
       << ", \"eval\": " << obs::json_num(r.phases.eval)
       << ", \"total\": " << obs::json_num(r.phases.total())
       << "}, \"seconds\": " << obs::json_num(r.seconds) << "}"
       << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "  ],\n"
     << "  \"metrics\": " << obs::metrics_json(obs::snapshot_if_enabled()) << "\n"
     << "}\n";
  if (!obs::atomic_write_file(path, os.str())) {
    throw std::runtime_error("write_run_manifest: write failed for " + path);
  }

  // When telemetry ran, drop its full time-series next to the manifest
  // (<run>.telemetry.jsonl) so the resource/utilization curves share the
  // manifest's lifetime and naming. Never constructs the singleton.
  if (obs::Telemetry::constructed()) {
    std::string jsonl = path;
    const std::string suffix = ".manifest.json";
    if (jsonl.size() > suffix.size() &&
        jsonl.compare(jsonl.size() - suffix.size(), suffix.size(), suffix) == 0) {
      jsonl.erase(jsonl.size() - suffix.size());
    }
    jsonl += ".telemetry.jsonl";
    if (!obs::Telemetry::instance().write_series_jsonl(jsonl)) {
      SB_LOG_WARN("obs", "could not write telemetry series to %s", jsonl.c_str());
    }
  }
}

}  // namespace shrinkbench
