#include "core/experiment.hpp"

#include <chrono>
#include <ctime>
#include <filesystem>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "metrics/metrics.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/profile.hpp"

namespace shrinkbench {

namespace {

/// Accumulates elapsed wall time into a PhaseTimings field. Independent
/// of the profiler: phase timings flow into results/CSV even with every
/// SB_* switch off.
class PhaseClock {
  using clock = std::chrono::steady_clock;

 public:
  explicit PhaseClock(double& acc) : acc_(acc), start_(clock::now()) {}
  ~PhaseClock() { acc_ += std::chrono::duration<double>(clock::now() - start_).count(); }
  PhaseClock(const PhaseClock&) = delete;
  PhaseClock& operator=(const PhaseClock&) = delete;

 private:
  double& acc_;
  clock::time_point start_;
};

}  // namespace

ExperimentRunner::ExperimentRunner(std::string cache_dir) : store_(std::move(cache_dir)) {}

const DatasetBundle& ExperimentRunner::dataset(const std::string& name, uint64_t data_seed) {
  const std::string key = name + "/" + std::to_string(data_seed);
  for (const auto& [k, bundle] : datasets_) {
    if (k == key) {
      obs::count("cache.dataset.hit");
      return bundle;
    }
  }
  obs::count("cache.dataset.miss");
  datasets_.emplace_back(key, make_synthetic(synthetic_preset(name, data_seed)));
  return datasets_.back().second;
}

ModelPtr ExperimentRunner::pretrained(const ExperimentConfig& config) {
  const DatasetBundle& bundle = dataset(config.dataset, config.data_seed);
  const int64_t width = config.width;
  return store_.get(bundle, config.arch, width, config.init_seed, config.pretrain,
                    config.pretrain_tag);
}

std::string config_fingerprint(const ExperimentConfig& c) {
  std::ostringstream ss;
  ss << c.dataset << '|' << c.data_seed << '|' << c.arch << '|' << c.width << '|' << c.init_seed
     << '|' << c.pretrain_tag << '|' << c.strategy << '|' << c.target_compression << '|'
     << to_string(c.schedule) << '|' << c.schedule_steps << '|' << c.prune.include_classifier
     << '|' << c.prune.grad_batch_size << '|' << c.run_seed << '|' << c.pretrain.epochs << '|'
     << c.pretrain.lr << '|' << static_cast<int>(c.pretrain.optimizer) << '|'
     << c.pretrain.batch_size << '|' << c.pretrain.patience << '|' << c.finetune.epochs << '|'
     << c.finetune.lr << '|' << static_cast<int>(c.finetune.optimizer) << '|'
     << c.finetune.batch_size << '|' << c.finetune.patience << '|' << c.finetune.momentum << '|'
     << c.finetune.weight_decay;
  // Newer knobs are appended only when they differ from their defaults so
  // that fingerprints of pre-existing cached results stay valid.
  const auto append_schedule = [&ss](const char* tag, const TrainOptions& o) {
    if (o.lr_schedule != LrSchedule::Fixed) {
      ss << '|' << tag << static_cast<int>(o.lr_schedule) << ':' << o.lr_step_every << ':'
         << o.lr_step_gamma << ':' << o.lr_min;
    }
  };
  append_schedule("ptsched", c.pretrain);
  append_schedule("ftsched", c.finetune);
  if (c.prune.fisher_batches != 4) ss << "|fb" << c.prune.fisher_batches;
  if (c.prune.activation_batches != 4) ss << "|ab" << c.prune.activation_batches;
  const auto append_augment = [&ss](const char* tag, const AugmentOptions& a) {
    if (a.any()) ss << '|' << tag << a.hflip << ':' << a.max_shift << ':' << a.noise_std;
  };
  append_augment("ptaug", c.pretrain.augment);
  append_augment("ftaug", c.finetune.augment);
  return ss.str();
}

namespace {

std::filesystem::path result_cache_path(const std::string& cache_dir,
                                        const ExperimentConfig& config) {
  const std::string fp = config_fingerprint(config);
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(std::hash<std::string>{}(fp)));
  return std::filesystem::path(cache_dir) / "results" / (std::string(hex) + ".result");
}

void write_cached_result(const std::filesystem::path& path, const ExperimentConfig& config,
                         const ExperimentResult& r) {
  std::filesystem::create_directories(path.parent_path());
  std::ofstream os(path);
  os.precision(17);  // cached doubles must round-trip bit-exactly
  os << config_fingerprint(config) << '\n'
     << r.pre_top1 << ' ' << r.pre_top5 << ' ' << r.pre_loss << ' ' << r.post_top1 << ' '
     << r.post_top5 << ' ' << r.post_loss << ' ' << r.compression << ' ' << r.speedup << ' '
     << r.params_total << ' ' << r.params_nonzero << ' ' << r.flops_dense << ' '
     << r.flops_effective << ' ' << r.finetune_epochs << ' ' << r.seconds << ' '
     << r.phases.pretrain << ' ' << r.phases.prune << ' ' << r.phases.finetune << ' '
     << r.phases.eval << '\n';
}

bool read_cached_result(const std::filesystem::path& path, const ExperimentConfig& config,
                        ExperimentResult& r) {
  std::ifstream is(path);
  if (!is) return false;
  std::string fingerprint;
  if (!std::getline(is, fingerprint) || fingerprint != config_fingerprint(config)) return false;
  r.config = config;
  is >> r.pre_top1 >> r.pre_top5 >> r.pre_loss >> r.post_top1 >> r.post_top5 >> r.post_loss >>
      r.compression >> r.speedup >> r.params_total >> r.params_nonzero >> r.flops_dense >>
      r.flops_effective >> r.finetune_epochs >> r.seconds >> r.phases.pretrain >>
      r.phases.prune >> r.phases.finetune >> r.phases.eval;
  // Phase-less files from before the manifest era fail here and are
  // simply recomputed: the fingerprint line makes them a cache miss.
  return static_cast<bool>(is);
}

}  // namespace

ExperimentResult ExperimentRunner::run(const ExperimentConfig& config) {
  const auto cache_path = result_cache_path(store_.cache_dir(), config);
  if (ExperimentResult cached; read_cached_result(cache_path, config, cached)) {
    obs::count("cache.result.hit");
    return cached;
  }
  obs::count("cache.result.miss");

  SB_PROFILE_SCOPE("experiment.run");
  const auto start = std::chrono::steady_clock::now();
  ExperimentResult result;
  result.config = config;

  const DatasetBundle* bundle_ptr = nullptr;
  ModelPtr model;
  {
    obs::ScopedTimer span("pretrain");
    PhaseClock phase(result.phases.pretrain);
    bundle_ptr = &dataset(config.dataset, config.data_seed);
    model = pretrained(config);
  }
  const DatasetBundle& bundle = *bundle_ptr;
  const Shape sample = bundle.train.sample_shape();

  {
    obs::ScopedTimer span("eval");
    PhaseClock phase(result.phases.eval);
    const EvalResult pre = evaluate(*model, bundle.test, config.finetune.batch_size);
    result.pre_top1 = pre.top1;
    result.pre_top5 = pre.top5;
    result.pre_loss = pre.loss;
  }

  const PruningStrategy strategy = strategy_from_name(config.strategy);
  const double final_fraction =
      fraction_for_compression(*model, config.target_compression, config.prune);
  const auto fractions =
      schedule_fractions(config.schedule, final_fraction, config.schedule_steps);

  Rng rng(config.run_seed);
  TrainOptions ft = config.finetune;
  ft.loader_seed = config.run_seed ^ 0xf17e57a9;
  // Compression ratio 1 is the unpruned control: pruning keeps every
  // weight and fine-tuning a converged model is a no-op by design, so the
  // control point is free (post == pre, as the paper's §6 requires it to
  // be reported).
  const bool no_op_control = fractions.size() == 1 && final_fraction >= 1.0;
  for (const double fraction : fractions) {
    {
      obs::ScopedTimer span("prune");
      PhaseClock phase(result.phases.prune);
      prune_model(*model, strategy, fraction, bundle.train, config.prune, rng);
    }
    if (no_op_control) break;
    obs::ScopedTimer span("finetune");
    PhaseClock phase(result.phases.finetune);
    const TrainHistory hist = train_model(*model, bundle, ft);
    result.finetune_epochs += static_cast<int>(hist.epochs.size());
    ft.loader_seed = rng.next_u64();  // fresh shuffling for later rounds
  }

  {
    obs::ScopedTimer span("eval");
    PhaseClock phase(result.phases.eval);
    const EvalResult post = evaluate(*model, bundle.test, config.finetune.batch_size);
    result.post_top1 = post.top1;
    result.post_top5 = post.top5;
    result.post_loss = post.loss;
  }

  const ParamCounts counts = count_params(*model);
  result.params_total = counts.total;
  result.params_nonzero = counts.nonzero;
  result.compression = compression_ratio(*model);
  const FlopCounts flops = count_flops(*model, sample);
  result.flops_dense = flops.dense;
  result.flops_effective = flops.effective;
  result.speedup = theoretical_speedup(*model, sample);

  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  write_cached_result(cache_path, config, result);
  return result;
}

std::vector<ExperimentResult> run_sweep(ExperimentRunner& runner, const ExperimentConfig& base,
                                        const std::vector<std::string>& strategies,
                                        const std::vector<double>& compressions,
                                        const std::vector<uint64_t>& run_seeds) {
  std::vector<ExperimentResult> results;
  const size_t total = strategies.size() * compressions.size() * run_seeds.size();
  size_t done = 0;
  const auto sweep_start = std::chrono::steady_clock::now();
  SB_PROFILE_SCOPE("sweep");
  for (const std::string& strategy : strategies) {
    for (const double ratio : compressions) {
      for (const uint64_t seed : run_seeds) {
        ExperimentConfig config = base;
        config.strategy = strategy;
        config.target_compression = ratio;
        config.run_seed = seed;
        results.push_back(runner.run(config));
        ++done;
        // ETA from mean cost so far; cache hits pull it down, so the
        // estimate self-corrects as the sweep reuses results.
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
                .count();
        const double eta = elapsed / static_cast<double>(done) * static_cast<double>(total - done);
        SB_LOG_INFO("sweep", "%zu/%zu %s %s x%.0f seed=%llu -> top1 %.4f (c=%.2f) "
                    "[elapsed %.1fs, eta %.1fs]",
                    done, total, base.arch.c_str(), strategy.c_str(), ratio,
                    static_cast<unsigned long long>(seed), results.back().post_top1,
                    results.back().compression, elapsed, eta);
      }
    }
  }
  return results;
}

std::string experiment_csv_header() {
  return "dataset,arch,width,strategy,schedule,target_compression,run_seed,init_seed,"
         "pretrain_tag,pre_top1,pre_top5,post_top1,post_top5,compression,speedup,"
         "params_total,params_nonzero,flops_dense,flops_effective,finetune_epochs,seconds,"
         "pretrain_s,prune_s,finetune_s,eval_s";
}

std::string experiment_csv_row(const ExperimentResult& r) {
  std::ostringstream ss;
  const ExperimentConfig& c = r.config;
  ss << c.dataset << ',' << c.arch << ',' << c.width << ',' << c.strategy << ','
     << to_string(c.schedule) << ',' << c.target_compression << ',' << c.run_seed << ','
     << c.init_seed << ',' << c.pretrain_tag << ',' << r.pre_top1 << ',' << r.pre_top5 << ','
     << r.post_top1 << ',' << r.post_top5 << ',' << r.compression << ',' << r.speedup << ','
     << r.params_total << ',' << r.params_nonzero << ',' << r.flops_dense << ','
     << r.flops_effective << ',' << r.finetune_epochs << ',' << r.seconds << ','
     << r.phases.pretrain << ',' << r.phases.prune << ',' << r.phases.finetune << ','
     << r.phases.eval;
  return ss.str();
}

void write_experiment_csv(const std::string& path, const std::vector<ExperimentResult>& results) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_experiment_csv: cannot open " + path);
  os << experiment_csv_header() << '\n';
  for (const auto& r : results) os << experiment_csv_row(r) << '\n';
}

void write_run_manifest(const std::string& path, const std::string& bench_name,
                        const std::vector<ExperimentResult>& results) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_run_manifest: cannot open " + path);

  const auto now = std::chrono::system_clock::now();
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  char stamp[32] = "unknown";
  if (std::tm tm_utc{}; gmtime_r(&t, &tm_utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  }

  os << "{\n"
     << "  \"schema\": \"shrinkbench.run_manifest/v1\",\n"
     << "  \"bench\": " << obs::json_str(bench_name) << ",\n"
     << "  \"git\": " << obs::json_str(obs::git_describe()) << ",\n"
     << "  \"created_utc\": " << obs::json_str(stamp) << ",\n"
     << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    const ExperimentConfig& c = r.config;
    os << "    {\"fingerprint\": " << obs::json_str(config_fingerprint(c))
       << ", \"dataset\": " << obs::json_str(c.dataset) << ", \"arch\": " << obs::json_str(c.arch)
       << ", \"strategy\": " << obs::json_str(c.strategy)
       << ", \"target_compression\": " << obs::json_num(c.target_compression)
       << ", \"run_seed\": " << c.run_seed
       << ", \"post_top1\": " << obs::json_num(r.post_top1)
       << ", \"compression\": " << obs::json_num(r.compression)
       << ", \"finetune_epochs\": " << r.finetune_epochs
       << ", \"phases\": {\"pretrain\": " << obs::json_num(r.phases.pretrain)
       << ", \"prune\": " << obs::json_num(r.phases.prune)
       << ", \"finetune\": " << obs::json_num(r.phases.finetune)
       << ", \"eval\": " << obs::json_num(r.phases.eval)
       << ", \"total\": " << obs::json_num(r.phases.total())
       << "}, \"seconds\": " << obs::json_num(r.seconds) << "}"
       << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "  ],\n"
     << "  \"metrics\": " << obs::metrics_json(obs::snapshot_if_enabled()) << "\n"
     << "}\n";
  if (!os) throw std::runtime_error("write_run_manifest: write failed for " + path);
}

}  // namespace shrinkbench
