// Mask allocation: turning scores into 0/1 masks at a target sparsity.
//
// Two axes, following Section 2.3 of the paper:
//
//   scope      Global    — pool scores across layers, one threshold
//              Layerwise — a separate threshold per layer, equal fractions
//   structure  Unstructured — prune individual weights
//              Channel      — prune whole conv filters / linear rows
//
// Layerwise allocation always keeps at least one unit per layer so the
// network stays connected; global allocation is allowed to empty a layer
// (that *is* global pruning's failure mode at extreme ratios, and part of
// why its speedup-vs-compression profile differs — Figure 6).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/parameter.hpp"

namespace shrinkbench {

enum class AllocationScope { Global, Layerwise };
enum class Structure { Unstructured, Channel };

std::string to_string(AllocationScope scope);
std::string to_string(Structure structure);

struct ScoredParam {
  Parameter* param = nullptr;
  Tensor scores;  // same shape as param->data; -inf marks already-pruned
};

/// Overwrites each param's mask to keep approximately
/// round(fraction_to_keep * total_prunable_entries) weights (exactly that
/// count for unstructured allocation; channel allocation overshoots by at
/// most one unit per selection). Returns the number of entries kept.
int64_t allocate_masks(std::vector<ScoredParam>& scored, AllocationScope scope,
                       Structure structure, double fraction_to_keep);

}  // namespace shrinkbench
