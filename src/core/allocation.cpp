#include "core/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace shrinkbench {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

int64_t target_keep(int64_t total, double fraction) {
  const int64_t k = llround(fraction * static_cast<double>(total));
  return std::clamp<int64_t>(k, 0, total);
}

// Keeps exactly k entries: the k highest scores across the given
// (param, flat index) universe. Ties are broken deterministically by
// (param order, index order).
void keep_top_entries(std::vector<ScoredParam>& scored, int64_t k) {
  // Find the k-th largest score with nth_element over a pooled copy.
  // NaN scores (gradient/Fisher scoring on a degenerate batch) are mapped
  // to -inf here: a NaN in the pool breaks nth_element's strict-weak-
  // ordering requirement (UB, silently mis-sized kept sets), and a weight
  // whose score is unmeasurable is treated as prunable, same as an
  // already-pruned entry.
  std::vector<float> pool;
  int64_t total = 0;
  for (const auto& sp : scored) total += sp.scores.numel();
  pool.reserve(static_cast<size_t>(total));
  for (const auto& sp : scored) {
    for (const float v : sp.scores.flat()) pool.push_back(std::isnan(v) ? kNegInf : v);
  }
  for (auto& sp : scored) sp.param->mask.zero();
  if (k <= 0) return;
  if (k >= total) {
    for (auto& sp : scored) {
      // Keep everything not already pruned (-inf never resurrects; NaN
      // stays prunable).
      const float* s = sp.scores.data();
      float* m = sp.param->mask.data();
      for (int64_t i = 0, n = sp.scores.numel(); i < n; ++i) {
        m[i] = (s[i] == kNegInf || std::isnan(s[i])) ? 0.f : 1.f;
      }
    }
    return;
  }
  std::nth_element(pool.begin(), pool.begin() + (k - 1), pool.end(), std::greater<float>());
  const float threshold = pool[static_cast<size_t>(k - 1)];

  // First pass: keep strictly-above-threshold entries.
  int64_t kept = 0;
  for (auto& sp : scored) {
    const float* s = sp.scores.data();
    float* m = sp.param->mask.data();
    for (int64_t i = 0, n = sp.scores.numel(); i < n; ++i) {
      if (s[i] > threshold) {
        m[i] = 1.0f;
        ++kept;
      }
    }
  }
  // Second pass: fill remaining slots from entries equal to the threshold,
  // in deterministic order.
  for (auto& sp : scored) {
    if (kept >= k) break;
    const float* s = sp.scores.data();
    float* m = sp.param->mask.data();
    for (int64_t i = 0, n = sp.scores.numel(); i < n && kept < k; ++i) {
      if (s[i] == threshold && m[i] == 0.0f && s[i] != kNegInf) {
        m[i] = 1.0f;
        ++kept;
      }
    }
  }
}

struct ChannelUnit {
  size_t param_idx = 0;
  int64_t channel = 0;
  int64_t size = 0;     // entries in the channel slice
  double score = 0.0;   // summed entry scores (L1-style for magnitude)
  bool prunable = true; // false when already fully pruned (-inf slice)
};

// Output-channel slices: conv weights [oc, ic, kh, kw] -> oc units of size
// ic*kh*kw; linear weights [out, in] -> out units of size in.
std::vector<ChannelUnit> build_units(const std::vector<ScoredParam>& scored) {
  std::vector<ChannelUnit> units;
  for (size_t pi = 0; pi < scored.size(); ++pi) {
    const Tensor& s = scored[pi].scores;
    if (s.dim() < 2) {
      throw std::invalid_argument("channel allocation: parameter '" + scored[pi].param->name +
                                  "' is not channel-structured");
    }
    const int64_t channels = s.size(0);
    const int64_t unit_size = s.numel() / channels;
    for (int64_t c = 0; c < channels; ++c) {
      ChannelUnit u;
      u.param_idx = pi;
      u.channel = c;
      u.size = unit_size;
      const float* base = s.data() + c * unit_size;
      double total = 0.0;
      bool any_alive = false;
      for (int64_t i = 0; i < unit_size; ++i) {
        // NaN entry scores are prunable, like -inf (and must not leak
        // into the sum: a NaN unit score breaks the sort comparator).
        if (base[i] != kNegInf && !std::isnan(base[i])) {
          total += static_cast<double>(base[i]);
          any_alive = true;
        }
      }
      u.score = total;
      u.prunable = any_alive;
      units.push_back(u);
    }
  }
  return units;
}

void set_channel(ScoredParam& sp, int64_t channel, float value) {
  const int64_t channels = sp.scores.size(0);
  const int64_t unit_size = sp.scores.numel() / channels;
  float* m = sp.param->mask.data() + channel * unit_size;
  const float* s = sp.scores.data() + channel * unit_size;
  for (int64_t i = 0; i < unit_size; ++i) {
    // Never resurrect individually-pruned (-inf) or unmeasurable (NaN)
    // entries inside a kept channel.
    m[i] = (s[i] == kNegInf || std::isnan(s[i])) ? 0.0f : value;
  }
}

int64_t keep_top_channels(std::vector<ScoredParam>& scored, std::vector<ChannelUnit> units,
                          int64_t k, bool at_least_one_per_param) {
  std::stable_sort(units.begin(), units.end(), [](const ChannelUnit& a, const ChannelUnit& b) {
    return a.score > b.score;
  });
  for (auto& sp : scored) sp.param->mask.zero();

  std::vector<int64_t> kept_per_param(scored.size(), 0);
  int64_t kept = 0;
  for (const ChannelUnit& u : units) {
    if (!u.prunable) continue;
    if (kept >= k) break;
    set_channel(scored[u.param_idx], u.channel, 1.0f);
    kept_per_param[u.param_idx]++;
    kept += u.size;
  }
  if (at_least_one_per_param) {
    // Guarantee connectivity: give every starved layer its best unit.
    for (size_t pi = 0; pi < scored.size(); ++pi) {
      if (kept_per_param[pi] > 0) continue;
      const ChannelUnit* best = nullptr;
      for (const ChannelUnit& u : units) {
        if (u.param_idx == pi && u.prunable && (!best || u.score > best->score)) best = &u;
      }
      if (best) {
        set_channel(scored[pi], best->channel, 1.0f);
        kept += best->size;
      }
    }
  }
  return kept;
}

int64_t count_kept(const std::vector<ScoredParam>& scored) {
  int64_t kept = 0;
  for (const auto& sp : scored) kept += ops::count_nonzero(sp.param->mask);
  return kept;
}

}  // namespace

std::string to_string(AllocationScope scope) {
  return scope == AllocationScope::Global ? "global" : "layerwise";
}

std::string to_string(Structure structure) {
  return structure == Structure::Unstructured ? "unstructured" : "channel";
}

int64_t allocate_masks(std::vector<ScoredParam>& scored, AllocationScope scope,
                       Structure structure, double fraction_to_keep) {
  if (fraction_to_keep < 0.0 || fraction_to_keep > 1.0) {
    throw std::invalid_argument("allocate_masks: fraction_to_keep must be in [0, 1]");
  }
  for (const auto& sp : scored) {
    if (sp.param == nullptr || !sp.scores.same_shape(sp.param->data)) {
      throw std::invalid_argument("allocate_masks: scores/parameter mismatch");
    }
  }
  if (scored.empty()) return 0;

  if (structure == Structure::Unstructured) {
    if (scope == AllocationScope::Global) {
      int64_t total = 0;
      for (const auto& sp : scored) total += sp.scores.numel();
      keep_top_entries(scored, target_keep(total, fraction_to_keep));
    } else {
      for (auto& sp : scored) {
        std::vector<ScoredParam> one;
        one.push_back(ScoredParam{sp.param, sp.scores});
        // Layerwise keeps at least one weight per layer for connectivity.
        const int64_t k = std::max<int64_t>(1, target_keep(sp.scores.numel(), fraction_to_keep));
        keep_top_entries(one, k);
      }
    }
    return count_kept(scored);
  }

  // Channel structure.
  auto units = build_units(scored);
  if (scope == AllocationScope::Global) {
    int64_t total = 0;
    for (const auto& sp : scored) total += sp.scores.numel();
    keep_top_channels(scored, std::move(units), target_keep(total, fraction_to_keep),
                      /*at_least_one_per_param=*/true);
  } else {
    for (size_t pi = 0; pi < scored.size(); ++pi) {
      std::vector<ScoredParam> one;
      one.push_back(ScoredParam{scored[pi].param, scored[pi].scores});
      auto layer_units = build_units(one);
      const int64_t k =
          std::max<int64_t>(1, target_keep(one[0].scores.numel(), fraction_to_keep));
      keep_top_channels(one, std::move(layer_units), k, /*at_least_one_per_param=*/true);
    }
  }
  return count_kept(scored);
}

}  // namespace shrinkbench
