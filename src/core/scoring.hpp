// Pruning score functions.
//
// A score function assigns every entry of a prunable parameter a saliency;
// allocators (allocation.hpp) then keep the highest-scoring entries. These
// are the paper's Section 7.2 baselines plus two classic extensions:
//
//   Magnitude         |w|                 (Janowsky 1989; Han et al. 2015)
//   GradientMagnitude |w · ∂L/∂w|         (Lee et al. 2019b-style saliency)
//   GradientSquared   (w · ∂L/∂w)²        (first-order Taylor / Fisher
//                                          proxy for LeCun's OBD)
//   Random            U(0,1)              (the standard straw man)
//   Fisher            w² · E[(∂L/∂w)²]    (diagonal empirical Fisher, the
//                                          OBD-style second-order proxy,
//                                          accumulated over several
//                                          minibatches)
//   ChannelActivation mean |activation|   (activation-based channel
//                                          saliency à la Hu et al. 2016;
//                                          structured only)
//
// Gradient-based scores are evaluated on a single sampled minibatch
// (paper, Appendix C.1), which makes them seed-sensitive by design;
// Fisher reduces that variance by averaging several batches.
#pragma once

#include <string>
#include <vector>

#include "nn/parameter.hpp"
#include "tensor/rng.hpp"

namespace shrinkbench {

enum class ScoreKind {
  Magnitude,
  GradientMagnitude,
  GradientSquared,
  Random,
  Fisher,
  ChannelActivation
};

std::string to_string(ScoreKind kind);

/// Whether the score needs a gradient snapshot. For Fisher the snapshot
/// passed to score_parameter must be the *accumulated mean squared*
/// gradient E[g²], not a raw gradient.
bool needs_gradients(ScoreKind kind);

/// Whether the score needs activation statistics (collected via
/// collect_activation_stats and converted with channel_scores_to_entry_scores).
bool needs_activations(ScoreKind kind);

/// Broadcasts one saliency per output channel onto a weight-shaped score
/// tensor (every entry of channel c gets channel_scores[c]); entries whose
/// mask is already 0 score -inf so they stay pruned.
Tensor channel_scores_to_entry_scores(const Parameter& param,
                                      const std::vector<double>& channel_scores);

/// Computes per-entry scores for one parameter. `grad` is the gradient
/// snapshot for gradient-based kinds (ignored otherwise; may be empty for
/// non-gradient kinds). Entries already masked out are scored -inf so they
/// stay pruned under iterative schedules.
Tensor score_parameter(ScoreKind kind, const Parameter& param, const Tensor& grad, Rng& rng);

}  // namespace shrinkbench
