#include "core/pretrained.hpp"

#include <cstdlib>
#include <filesystem>

#include "nn/checkpoint.hpp"
#include "nn/init.hpp"
#include "obs/io.hpp"
#include "obs/log.hpp"
#include "obs/profile.hpp"

namespace shrinkbench {

// From core/experiment.hpp; forward-declared to keep this TU's include
// surface minimal. Lets a worker waiting on a peer's pretrain honor
// Ctrl-C / injected interrupts instead of sleeping through them.
bool sweep_interrupt_requested();

std::string default_cache_dir() {
  if (const char* env = std::getenv("SHRINKBENCH_CACHE")) return env;
  return ".sb_cache";
}

PretrainedStore::PretrainedStore(std::string cache_dir) : cache_dir_(std::move(cache_dir)) {
  std::filesystem::create_directories(cache_dir_);
}

TrainOptions default_pretrain_options() {
  // Adam at a hot initial rate annealed by cosine trains the scaled-down
  // ResNets to convergence (~0.85+ on the CIFAR stand-in); with a fixed
  // 1e-3 they underfit badly, magnitudes stay near their fan-in-dependent
  // init scales, and magnitude-based pruning degenerates — the pruning
  // phenomenology requires genuinely converged, overparameterized models.
  TrainOptions opts;
  opts.epochs = 60;
  opts.batch_size = 64;
  opts.optimizer = OptimizerKind::Adam;
  opts.lr = 3e-3f;
  opts.lr_schedule = LrSchedule::Cosine;
  opts.lr_min = 1.5e-4f;
  opts.patience = 0;  // cosine needs the full run; best weights restored
  opts.restore_best = true;
  return opts;
}

ModelPtr PretrainedStore::get(const DatasetBundle& bundle, const std::string& arch, int64_t width,
                              uint64_t init_seed, const TrainOptions& train_opts,
                              const std::string& tag) {
  ModelPtr model = make_model(arch, bundle.train.sample_shape(), bundle.train.num_classes, width);

  const std::string file = bundle.spec.name + "_s" + std::to_string(bundle.spec.seed) + "_" +
                           arch + "_w" + std::to_string(width) + "_i" +
                           std::to_string(init_seed) + "_" + tag + ".ckpt";
  const std::filesystem::path path = std::filesystem::path(cache_dir_) / file;

  if (std::filesystem::exists(path)) {
    obs::count("cache.pretrained.hit");
    load_checkpoint(*model, path.string());
    return model;
  }
  obs::count("cache.pretrained.miss");

  // Cross-process guard: fleet workers sharing one cache must train a
  // cold checkpoint exactly once. First process to flock <ckpt>.lock
  // trains; the rest block here, then find the finished .ckpt on the
  // double-check. A killed trainer's flock is released by the kernel, so
  // the next waiter takes over and resumes from the shared pretrain
  // checkpoint directory. (pretrain_mu_ already serializes threads of
  // this process.)
  std::filesystem::path lock_path = path;
  lock_path += ".lock";
  obs::FileLock lock;
  if (!lock.acquire(lock_path, /*poll_ms=*/200, [] { return sweep_interrupt_requested(); })) {
    throw std::runtime_error("pretrain interrupted while waiting for " + lock_path.string());
  }
  if (std::filesystem::exists(path)) {
    // A peer finished it while we waited for the lock. Unlink the lock
    // file too: the peer unlinked the one it held, but our try_acquire
    // may have already recreated it.
    obs::count("cache.pretrained.wait_hit");
    lock.release(/*unlink_file=*/true);
    load_checkpoint(*model, path.string());
    return model;
  }

  Rng rng(init_seed);
  init_model(*model, rng);
  TrainOptions opts = train_opts;
  opts.loader_seed = init_seed ^ 0x9e3779b97f4a7c15ULL;
  // Pretraining is the longest phase, so it gets its own resumable
  // checkpoint directory (keyed like the final .ckpt file), cleaned up
  // once the finished model is cached.
  std::filesystem::path ckpt_dir;
  if (opts.checkpoint_dir.empty()) {
    if (const char* env = std::getenv("SB_CKPT_DIR")) {
      ckpt_dir = env;
    } else {
      ckpt_dir = std::filesystem::path(cache_dir_) / "ckpt";
    }
    ckpt_dir /= "pretrain_" + path.stem().string();
    opts.checkpoint_dir = ckpt_dir.string();
  } else {
    ckpt_dir = opts.checkpoint_dir;
  }
  SB_LOG_INFO("pretrain", "%s w=%lld on %s (tag=%s)...", arch.c_str(),
              static_cast<long long>(width), bundle.spec.name.c_str(), tag.c_str());
  const TrainHistory hist = train_model(*model, bundle, opts);
  SB_LOG_INFO("pretrain", "done: best val top1 %.4f (epoch %d)", hist.best_val_top1,
              hist.best_epoch);
  save_checkpoint(*model, path.string());
  std::error_code ec;
  if (std::filesystem::remove_all(ckpt_dir, ec) > 0 && !ec) obs::count("ckpt.cleaned");
  lock.release(/*unlink_file=*/true);
  return model;
}

}  // namespace shrinkbench
