// The standardized pruning experiment: Algorithm 1 of the paper, end to
// end, with every metric the paper's Section 6 checklist demands.
//
//   pretrained model -> [prune -> fine-tune]^N -> evaluate
//
// An ExperimentResult records raw pre/post Top-1 AND Top-5 accuracy, the
// achieved compression ratio AND theoretical speedup, parameter and FLOP
// counts, and the exact seeds — everything needed for the controls the
// paper finds missing in the literature.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pretrained.hpp"
#include "core/pruner.hpp"
#include "core/schedule.hpp"

namespace shrinkbench {

struct ExperimentConfig {
  std::string dataset = "synth-cifar10";
  uint64_t data_seed = 0;  // 0 = preset default
  std::string arch = "resnet-56";
  int64_t width = 0;  // 0 = architecture default
  uint64_t init_seed = 1;
  std::string pretrain_tag = "default";

  std::string strategy = "global-weight";
  double target_compression = 4.0;
  ScheduleKind schedule = ScheduleKind::OneShot;
  int schedule_steps = 1;
  PruneOptions prune;

  /// Controls fine-tune shuffling, gradient-score minibatch sampling, and
  /// random-pruning draws — the per-run randomness whose effect Figure 7's
  /// error bars quantify.
  uint64_t run_seed = 1;

  TrainOptions pretrain = default_pretrain_options();
  TrainOptions finetune = cifar_finetune_options();
};

/// Wall-clock cost of each phase of Algorithm 1 — the per-phase budget
/// breakdown the paper's §6 checklist asks experiments to report (and
/// that a single opaque `seconds` cannot provide).
struct PhaseTimings {
  double pretrain = 0.0;  // dataset synthesis + pretrained-model load/train
  double prune = 0.0;     // scoring + mask allocation, all schedule steps
  double finetune = 0.0;  // all fine-tuning rounds
  double eval = 0.0;      // pre- and post-pruning test evaluation
  double total() const { return pretrain + prune + finetune + eval; }
};

struct ExperimentResult {
  ExperimentConfig config;
  // Control metrics for the unpruned model (paper: "also report these
  // metrics for an appropriate control").
  double pre_top1 = 0.0, pre_top5 = 0.0, pre_loss = 0.0;
  // Pruned + fine-tuned model.
  double post_top1 = 0.0, post_top5 = 0.0, post_loss = 0.0;
  double compression = 1.0;  // achieved: total params / surviving params
  double speedup = 1.0;      // achieved: dense madds / effective madds
  int64_t params_total = 0, params_nonzero = 0;
  int64_t flops_dense = 0, flops_effective = 0;
  int finetune_epochs = 0;
  /// Per-phase wall-clock breakdown; phases.total() is the work time,
  /// `seconds` the end-to-end wall time (phases + metric accounting).
  PhaseTimings phases;
  double seconds = 0.0;
  /// Set when the experiment threw on every attempt: the row records the
  /// config and the exception text instead of metrics, so a sweep's CSV
  /// accounts for every grid point even under failures.
  bool failed = false;
  std::string error;
  /// Served from the on-disk result cache (in-memory only, not persisted).
  bool from_cache = false;
  /// Numeric-anomaly bookkeeping summed over all fine-tuning rounds (see
  /// TrainHistory). In-memory + run manifest only — deliberately kept out
  /// of the cache entry and CSV so both formats stay stable.
  int64_t anomalies = 0;
  int64_t skipped_batches = 0;
  int64_t rollbacks = 0;
  /// Fine-tuning rounds that resumed from a training checkpoint.
  int resumed_rounds = 0;
};

/// Stable fingerprint of everything that affects an experiment's outcome;
/// used as the result-cache key.
std::string config_fingerprint(const ExperimentConfig& config);

/// Runs experiments with shared dataset/pretrained-model caches. Completed
/// results are additionally cached on disk by config fingerprint, so
/// benches that share configurations (e.g. Figure 6 and Figures 17-18) pay
/// for each experiment once.
///
/// Thread safety: run() may be called concurrently from several sweep
/// workers. The dataset cache hands out stable addresses (entries are
/// heap-allocated and never moved) behind a mutex, and pretrained-model
/// fetches are serialized so a cold checkpoint is trained once — the
/// second worker finds it in the disk cache instead of retraining.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(std::string cache_dir = default_cache_dir());

  ExperimentResult run(const ExperimentConfig& config);

  /// The dataset bundle a config resolves to (cached).
  const DatasetBundle& dataset(const std::string& name, uint64_t data_seed = 0);

  /// Pretrained model for a config (cached on disk).
  ModelPtr pretrained(const ExperimentConfig& config);

  /// Root of the shared on-disk caches (results, pretrained models,
  /// checkpoints) — the directory fleet workers coordinate through.
  const std::string& cache_dir() const;

 private:
  PretrainedStore store_;
  // Keyed by "name/seed"; unique_ptr keeps bundle addresses stable across
  // cache growth, so references handed to one sweep worker survive
  // another worker's insert.
  std::vector<std::pair<std::string, std::unique_ptr<DatasetBundle>>> datasets_;
  std::mutex datasets_mu_;
  std::mutex pretrain_mu_;
};

/// Knobs for run_sweep's fault tolerance and incremental output.
struct SweepOptions {
  /// Non-empty: every finished result row is appended (and flushed) to
  /// this CSV as it completes, header first, so an interrupted bench
  /// loses nothing already computed. Benches rewrite the same path
  /// atomically at the end, making the final file canonical.
  std::string csv_path;
  /// Append to an existing csv_path instead of truncating it — for
  /// benches that pour several sweeps into one CSV.
  bool append = false;
  /// Extra attempts for an experiment that throws; -1 reads SB_RETRIES
  /// from the environment (default 1).
  int retries = -1;
  /// Worker threads sharding the sweep's independent grid points; -1
  /// reads SB_SWEEP_PARALLEL from the environment (default 1 =
  /// sequential). Workers run with the tensor thread pool disabled for
  /// their experiments (experiment-level parallelism replaces op-level),
  /// so each experiment still computes bit-identical results; rows are
  /// emitted in grid order regardless of completion order.
  int parallel = -1;
  /// Multi-process fleet sharding: this process owns grid indices with
  /// i % shard_count == shard_id, claims them through flock'd claim
  /// files in the shared result cache, then steals whatever unclaimed
  /// work remains and waits for peers' rows to land in the cache — on
  /// return the results vector covers the FULL grid in grid order, so
  /// any worker's final CSV is byte-identical to a sequential sweep's.
  /// -1 reads SB_FLEET_SHARD / SB_FLEET_SHARDS from the environment
  /// (default: no sharding). With shard_count > 1 the incremental CSV
  /// streams completion-ordered rows to csv_path + ".shard<id>" and
  /// in-process sweep workers (`parallel`) are ignored: processes are
  /// the workers, each keeping its own op-level thread pool.
  int shard_id = -1;
  int shard_count = -1;
};

/// What actually happened during a sweep — benches fold this into their
/// process exit code (failures -> 1, interrupted -> 130).
struct SweepSummary {
  size_t total = 0;       // grid points in the sweep
  size_t completed = 0;   // rows produced (including failed rows)
  size_t failures = 0;    // rows that failed after all retries
  size_t cache_hits = 0;  // rows served from the on-disk result cache
  /// Fleet mode only: grid points this worker computed after first
  /// deferring them to a peer — the peer released the claim without
  /// producing a cache entry (it was preempted, or the row failed).
  size_t stolen = 0;
  bool interrupted = false;  // SIGINT (or injected interrupt) stopped the sweep
  int exit_code() const { return interrupted ? 130 : failures > 0 ? 1 : 0; }
};

/// Cartesian sweep over strategies x compression ratios x seeds, reporting
/// progress on stderr. This is the workhorse behind Figures 6-18.
///
/// Fault tolerance: an experiment that throws is retried (SB_RETRIES,
/// default 1) and then recorded as a failed row carrying the error string
/// — it never kills the sweep. SIGINT triggers a clean flush-and-exit
/// after the in-flight experiment; completed configs short-circuit
/// through the result cache on the next run, so a killed sweep resumes
/// with zero recomputation.
std::vector<ExperimentResult> run_sweep(ExperimentRunner& runner, const ExperimentConfig& base,
                                        const std::vector<std::string>& strategies,
                                        const std::vector<double>& compressions,
                                        const std::vector<uint64_t>& run_seeds,
                                        const SweepOptions& options = {},
                                        SweepSummary* summary = nullptr);

/// SIGINT sets a flag that run_sweep checks between experiments (first
/// Ctrl-C drains cleanly; the handler resets itself so a second one kills
/// the process). request/clear exist so tests and embedding code can
/// drive the same path without signals.
bool sweep_interrupt_requested();
void request_sweep_interrupt();
void clear_sweep_interrupt();

/// CSV serialization for downstream analysis/plotting.
std::string experiment_csv_header();
std::string experiment_csv_row(const ExperimentResult& result);
void write_experiment_csv(const std::string& path, const std::vector<ExperimentResult>& results);

/// Writes the per-run JSON manifest that accompanies each bench CSV:
/// git revision, per-result config fingerprints + phase timings, and a
/// snapshot of the profiler's counters/gauges/histograms/spans (empty
/// when profiling is off). Schema: "shrinkbench.run_manifest/v1".
void write_run_manifest(const std::string& path, const std::string& bench_name,
                        const std::vector<ExperimentResult>& results);

}  // namespace shrinkbench
