// The paper's Appendix B "checklist for evaluating a pruning method",
// machine-checkable.
//
// Given the set of ExperimentResults backing a claimed evaluation, this
// module grades which best practices (§6) the evaluation satisfies:
// enough operating points, multiple (dataset, architecture) pairs,
// multiple seeds with dispersion, both efficiency metrics, both accuracy
// metrics, controls reported, and comparisons against the random and
// magnitude baselines. Benches print their own report card, eating the
// paper's cooking.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace shrinkbench {

struct ChecklistItem {
  std::string id;           // short key, e.g. "operating-points"
  std::string description;  // the practice, quoted from §6 / Appendix B
  bool satisfied = false;
  std::string detail;       // what was found
};

struct ChecklistReport {
  std::vector<ChecklistItem> items;
  int satisfied() const;
  int total() const { return static_cast<int>(items.size()); }
};

/// Grades an evaluation consisting of `results`. `proposed_strategy` is
/// the method under evaluation; comparisons are sought among the other
/// strategies present in `results`.
ChecklistReport evaluate_checklist(const std::vector<ExperimentResult>& results,
                                   const std::string& proposed_strategy);

/// Renders the report as an aligned table with a [x]/[ ] column.
std::string render_checklist(const ChecklistReport& report);

}  // namespace shrinkbench
