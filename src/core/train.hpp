// Training and fine-tuning loops.
//
// One code path serves both "train to convergence" (Algorithm 1, line 2)
// and "fine-tune after pruning" (line 6): fine-tuning is just training a
// masked model, with masks enforced after every optimizer step. Early
// stopping tracks validation accuracy and restores the best weights
// (paper, Appendix C.2).
//
// The loop is fault tolerant: with a checkpoint directory configured it
// writes full TrainCheckpoints (model + optimizer + loader RNG + history)
// at epoch boundaries and auto-resumes from the newest valid one, producing
// a training curve and final weights bit-identical to an uninterrupted
// run. Per-step numeric health checks catch NaN/Inf losses and gradients
// (trainability collapse after aggressive pruning is a real failure mode —
// Wang et al. 2023) and respond per AnomalyPolicy.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/loader.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace shrinkbench {

enum class OptimizerKind { Sgd, SgdNesterov, Adam };

/// What train_model does when a step produces a non-finite loss or
/// gradient.
enum class AnomalyPolicy {
  /// Fail fast with a NumericAnomalyError (default: tests and CI want
  /// diverged runs loud, not averaged into result tables).
  Throw,
  /// Drop the offending batch (no optimizer step) and continue.
  SkipBatch,
  /// Restore the last-good checkpoint, halve the learning rate, and
  /// retry — bounded by TrainOptions::anomaly_max_rollbacks.
  Rollback,
};

/// Thrown by train_model under AnomalyPolicy::Throw (and when Rollback
/// exhausts its retry budget). Carries epoch/step context in what().
class NumericAnomalyError : public std::runtime_error {
 public:
  explicit NumericAnomalyError(const std::string& what) : std::runtime_error(what) {}
};

/// Learning-rate schedules. The paper's Appendix C.2 setups use Fixed;
/// StepDecay/Cosine exist because LR schedule is one of the §4.5
/// confounders, and the ablation benches vary it.
enum class LrSchedule { Fixed, StepDecay, Cosine };

/// Learning rate for a given epoch under the options' schedule.
float lr_at_epoch(const struct TrainOptions& opts, int epoch);

struct TrainOptions {
  int epochs = 30;
  int64_t batch_size = 64;
  OptimizerKind optimizer = OptimizerKind::Adam;
  float lr = 3e-4f;
  float momentum = 0.9f;      // SGD variants only
  float weight_decay = 0.0f;
  LrSchedule lr_schedule = LrSchedule::Fixed;
  int lr_step_every = 10;       // StepDecay period (epochs)
  float lr_step_gamma = 0.1f;   // StepDecay multiplier
  float lr_min = 0.0f;          // Cosine floor
  /// Train-time augmentation (off by default, matching the synthetic
  /// generator's own built-in variation).
  AugmentOptions augment;
  /// Stop after this many epochs without a new best validation top-1;
  /// <= 0 disables early stopping.
  int patience = 8;
  /// Restore the best-validation weights when training ends.
  bool restore_best = true;
  uint64_t loader_seed = 1;
  bool verbose = false;

  // ---- fault tolerance ----
  /// Directory for full training checkpoints. Empty falls back to
  /// $SB_CKPT_DIR; if that is also empty, checkpointing is off. One
  /// directory corresponds to one training run: on startup train_model
  /// resumes from the newest valid checkpoint found here.
  std::string checkpoint_dir;
  /// Write a checkpoint every N epochs (the final/early-stop epoch is
  /// always checkpointed). 0 reads $SB_CKPT_EVERY (default 1); negative
  /// (or SB_CKPT_EVERY=0) disables checkpointing even when a directory is
  /// configured.
  int checkpoint_every = 0;
  /// Response to a non-finite loss/gradient (see AnomalyPolicy).
  AnomalyPolicy anomaly_policy = AnomalyPolicy::Throw;
  /// Rollback budget: the run fails with NumericAnomalyError after this
  /// many restore-and-halve-LR recoveries.
  int anomaly_max_rollbacks = 3;
  /// Scan all gradients for NaN/Inf every N optimizer steps (the loss is
  /// checked every step for free); <= 0 disables the gradient scan.
  int grad_check_every = 4;
  /// Global-norm gradient clipping before each step; <= 0 disables.
  float grad_clip_norm = 0.0f;
};

/// The paper's fine-tuning setups (Appendix C.2), epoch counts scaled to
/// the synthetic tasks.
TrainOptions cifar_finetune_options();     // Adam, lr 3e-4, fixed schedule
TrainOptions imagenet_finetune_options();  // SGD + Nesterov 0.9, lr 1e-3

struct EpochRecord {
  int epoch = 0;
  double train_loss = 0.0;
  double val_top1 = 0.0;
  double val_loss = 0.0;
};

struct TrainHistory {
  std::vector<EpochRecord> epochs;
  double best_val_top1 = 0.0;
  int best_epoch = -1;
  bool stopped_early = false;

  // ---- fault-tolerance bookkeeping ----
  /// Non-finite losses/gradients detected (whatever the policy did next).
  int64_t anomalies = 0;
  /// Batches dropped under AnomalyPolicy::SkipBatch.
  int64_t skipped_batches = 0;
  /// Restore-and-halve-LR recoveries under AnomalyPolicy::Rollback.
  int64_t rollbacks = 0;
  /// First epoch actually executed by this call when it resumed from a
  /// checkpoint; -1 for a cold start.
  int resumed_from_epoch = -1;
  /// Final anomaly-recovery LR multiplier (0.5^rollbacks).
  float lr_scale = 1.0f;
};

/// Trains on bundle.train, validating on bundle.val each epoch. Throws
/// std::invalid_argument on an empty train or validation split, and
/// NumericAnomalyError per TrainOptions::anomaly_policy.
TrainHistory train_model(Model& model, const DatasetBundle& bundle, const TrainOptions& opts);

}  // namespace shrinkbench
