// Training and fine-tuning loops.
//
// One code path serves both "train to convergence" (Algorithm 1, line 2)
// and "fine-tune after pruning" (line 6): fine-tuning is just training a
// masked model, with masks enforced after every optimizer step. Early
// stopping tracks validation accuracy and restores the best weights
// (paper, Appendix C.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/loader.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace shrinkbench {

enum class OptimizerKind { Sgd, SgdNesterov, Adam };

/// Learning-rate schedules. The paper's Appendix C.2 setups use Fixed;
/// StepDecay/Cosine exist because LR schedule is one of the §4.5
/// confounders, and the ablation benches vary it.
enum class LrSchedule { Fixed, StepDecay, Cosine };

/// Learning rate for a given epoch under the options' schedule.
float lr_at_epoch(const struct TrainOptions& opts, int epoch);

struct TrainOptions {
  int epochs = 30;
  int64_t batch_size = 64;
  OptimizerKind optimizer = OptimizerKind::Adam;
  float lr = 3e-4f;
  float momentum = 0.9f;      // SGD variants only
  float weight_decay = 0.0f;
  LrSchedule lr_schedule = LrSchedule::Fixed;
  int lr_step_every = 10;       // StepDecay period (epochs)
  float lr_step_gamma = 0.1f;   // StepDecay multiplier
  float lr_min = 0.0f;          // Cosine floor
  /// Train-time augmentation (off by default, matching the synthetic
  /// generator's own built-in variation).
  AugmentOptions augment;
  /// Stop after this many epochs without a new best validation top-1;
  /// <= 0 disables early stopping.
  int patience = 8;
  /// Restore the best-validation weights when training ends.
  bool restore_best = true;
  uint64_t loader_seed = 1;
  bool verbose = false;
};

/// The paper's fine-tuning setups (Appendix C.2), epoch counts scaled to
/// the synthetic tasks.
TrainOptions cifar_finetune_options();     // Adam, lr 3e-4, fixed schedule
TrainOptions imagenet_finetune_options();  // SGD + Nesterov 0.9, lr 1e-3

struct EpochRecord {
  int epoch = 0;
  double train_loss = 0.0;
  double val_top1 = 0.0;
  double val_loss = 0.0;
};

struct TrainHistory {
  std::vector<EpochRecord> epochs;
  double best_val_top1 = 0.0;
  int best_epoch = -1;
  bool stopped_early = false;
};

/// Trains on bundle.train, validating on bundle.val each epoch.
TrainHistory train_model(Model& model, const DatasetBundle& bundle, const TrainOptions& opts);

}  // namespace shrinkbench
