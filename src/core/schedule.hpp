// Pruning schedules: how sparsity is distributed over pruning steps
// (paper §2.3 "Scheduling").
//
//   OneShot    — prune to the target in a single step, then fine-tune
//                (Liu et al. 2019 style).
//   Iterative  — N rounds of prune-a-bit + fine-tune, with geometrically
//                interpolated keep fractions (Han et al. 2015 style).
//   Polynomial — N rounds following the cubic sparsity ramp of Zhu &
//                Gupta / Gale et al. 2019: s_t = s_f · (1 − (1 − t/N)³).
#pragma once

#include <string>
#include <vector>

namespace shrinkbench {

enum class ScheduleKind { OneShot, Iterative, Polynomial };

std::string to_string(ScheduleKind kind);
ScheduleKind schedule_from_name(const std::string& name);

/// The keep-fraction after each pruning step, ending exactly at
/// final_fraction_to_keep. steps must be >= 1 (OneShot ignores steps).
std::vector<double> schedule_fractions(ScheduleKind kind, double final_fraction_to_keep,
                                       int steps);

}  // namespace shrinkbench
