#include "core/activation_stats.hpp"

#include <cmath>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"

namespace shrinkbench {

ChannelActivationStats collect_activation_stats(Model& model, const Dataset& dataset,
                                                int batches, int64_t batch_size, Rng& rng) {
  ChannelActivationStats stats;
  std::map<std::string, int64_t> counts;  // activations seen per channel

  model.set_forward_hook([&](Layer& layer, const Tensor& out) {
    const bool is_conv = dynamic_cast<Conv2d*>(&layer) != nullptr;
    const bool is_linear = dynamic_cast<Linear*>(&layer) != nullptr;
    if (!is_conv && !is_linear) return;
    const int64_t n = out.size(0);
    const int64_t channels = out.size(1);
    const int64_t spatial = is_conv ? out.size(2) * out.size(3) : 1;

    auto& abs_acc = stats.mean_abs[layer.name()];
    auto& pos_acc = stats.positive_fraction[layer.name()];
    if (abs_acc.empty()) {
      abs_acc.assign(static_cast<size_t>(channels), 0.0);
      pos_acc.assign(static_cast<size_t>(channels), 0.0);
    }
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < channels; ++c) {
        const float* src = out.data() + (i * channels + c) * spatial;
        double abs_sum = 0.0;
        int64_t positive = 0;
        for (int64_t s = 0; s < spatial; ++s) {
          abs_sum += std::fabs(src[s]);
          positive += src[s] > 0.0f;
        }
        abs_acc[static_cast<size_t>(c)] += abs_sum;
        pos_acc[static_cast<size_t>(c)] += static_cast<double>(positive);
      }
    }
    counts[layer.name()] += n * spatial;
  });

  DataLoader loader(dataset, batch_size, /*shuffle=*/false, /*seed=*/0);
  for (int b = 0; b < batches; ++b) {
    const Batch batch = loader.sample_batch(rng);
    model.forward(batch.x, /*train=*/false);
    stats.samples += batch.x.size(0);
  }
  model.set_forward_hook(nullptr);

  for (auto& [name, acc] : stats.mean_abs) {
    const double denom = static_cast<double>(counts[name]);
    for (double& v : acc) v /= denom;
    for (double& v : stats.positive_fraction[name]) v /= denom;
  }
  return stats;
}

}  // namespace shrinkbench
