#include "core/scoring.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace shrinkbench {

std::string to_string(ScoreKind kind) {
  switch (kind) {
    case ScoreKind::Magnitude: return "magnitude";
    case ScoreKind::GradientMagnitude: return "gradient-magnitude";
    case ScoreKind::GradientSquared: return "gradient-squared";
    case ScoreKind::Random: return "random";
    case ScoreKind::Fisher: return "fisher";
    case ScoreKind::ChannelActivation: return "channel-activation";
  }
  throw std::logic_error("to_string(ScoreKind): unreachable");
}

bool needs_gradients(ScoreKind kind) {
  return kind == ScoreKind::GradientMagnitude || kind == ScoreKind::GradientSquared ||
         kind == ScoreKind::Fisher;
}

bool needs_activations(ScoreKind kind) { return kind == ScoreKind::ChannelActivation; }

Tensor channel_scores_to_entry_scores(const Parameter& param,
                                      const std::vector<double>& channel_scores) {
  if (param.data.dim() < 2 ||
      param.data.size(0) != static_cast<int64_t>(channel_scores.size())) {
    throw std::invalid_argument("channel_scores_to_entry_scores: '" + param.name + "' has " +
                                std::to_string(param.data.size(0)) + " channels, got " +
                                std::to_string(channel_scores.size()) + " scores");
  }
  Tensor scores(param.data.shape());
  const int64_t channels = param.data.size(0);
  const int64_t unit = param.data.numel() / channels;
  const float* m = param.mask.data();
  float* s = scores.data();
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  for (int64_t c = 0; c < channels; ++c) {
    const float v = static_cast<float>(channel_scores[static_cast<size_t>(c)]);
    for (int64_t i = 0; i < unit; ++i) {
      const int64_t idx = c * unit + i;
      s[idx] = m[idx] == 0.0f ? kNegInf : v;
    }
  }
  return scores;
}

Tensor score_parameter(ScoreKind kind, const Parameter& param, const Tensor& grad, Rng& rng) {
  if (needs_gradients(kind) && !grad.same_shape(param.data)) {
    throw std::invalid_argument("score_parameter: gradient snapshot missing for '" + param.name +
                                "'");
  }
  Tensor scores(param.data.shape());
  const float* w = param.data.data();
  const float* g = needs_gradients(kind) ? grad.data() : nullptr;
  const float* m = param.mask.data();
  float* s = scores.data();
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  for (int64_t i = 0, n = scores.numel(); i < n; ++i) {
    if (m[i] == 0.0f) {
      s[i] = kNegInf;  // already pruned: never resurrect under iteration
      continue;
    }
    switch (kind) {
      case ScoreKind::Magnitude: s[i] = std::fabs(w[i]); break;
      case ScoreKind::GradientMagnitude: s[i] = std::fabs(w[i] * g[i]); break;
      case ScoreKind::GradientSquared: {
        const float t = w[i] * g[i];
        s[i] = t * t;
        break;
      }
      case ScoreKind::Random: s[i] = static_cast<float>(rng.uniform()); break;
      case ScoreKind::Fisher: s[i] = w[i] * w[i] * g[i]; break;  // g holds E[g²]
      case ScoreKind::ChannelActivation:
        throw std::invalid_argument(
            "score_parameter: ChannelActivation scores come from "
            "channel_scores_to_entry_scores, not score_parameter");
    }
  }
  return scores;
}

}  // namespace shrinkbench
