#include "core/strategy.hpp"

#include <stdexcept>

namespace shrinkbench {

namespace {
const std::vector<PruningStrategy>& registry() {
  static const std::vector<PruningStrategy> kStrategies = {
      {"global-weight", ScoreKind::Magnitude, AllocationScope::Global, Structure::Unstructured},
      {"layer-weight", ScoreKind::Magnitude, AllocationScope::Layerwise, Structure::Unstructured},
      {"global-gradient", ScoreKind::GradientMagnitude, AllocationScope::Global,
       Structure::Unstructured},
      {"layer-gradient", ScoreKind::GradientMagnitude, AllocationScope::Layerwise,
       Structure::Unstructured},
      {"random", ScoreKind::Random, AllocationScope::Global, Structure::Unstructured},
      {"global-grad-sq", ScoreKind::GradientSquared, AllocationScope::Global,
       Structure::Unstructured},
      {"layer-grad-sq", ScoreKind::GradientSquared, AllocationScope::Layerwise,
       Structure::Unstructured},
      {"global-channel", ScoreKind::Magnitude, AllocationScope::Global, Structure::Channel},
      {"layer-channel", ScoreKind::Magnitude, AllocationScope::Layerwise, Structure::Channel},
      {"global-fisher", ScoreKind::Fisher, AllocationScope::Global, Structure::Unstructured},
      {"layer-fisher", ScoreKind::Fisher, AllocationScope::Layerwise, Structure::Unstructured},
      {"global-activation", ScoreKind::ChannelActivation, AllocationScope::Global,
       Structure::Channel},
      {"layer-activation", ScoreKind::ChannelActivation, AllocationScope::Layerwise,
       Structure::Channel},
  };
  return kStrategies;
}
}  // namespace

PruningStrategy strategy_from_name(const std::string& name) {
  for (const auto& s : registry()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("strategy_from_name: unknown strategy '" + name + "'");
}

std::vector<std::string> strategy_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& s : registry()) names.push_back(s.name);
  return names;
}

std::string display_name(const std::string& strategy_name) {
  if (strategy_name == "global-weight") return "Global Weight";
  if (strategy_name == "layer-weight") return "Layer Weight";
  if (strategy_name == "global-gradient") return "Global Gradient";
  if (strategy_name == "layer-gradient") return "Layer Gradient";
  if (strategy_name == "random") return "Random";
  if (strategy_name == "global-grad-sq") return "Global GradSq";
  if (strategy_name == "layer-grad-sq") return "Layer GradSq";
  if (strategy_name == "global-channel") return "Global Channel";
  if (strategy_name == "layer-channel") return "Layer Channel";
  if (strategy_name == "global-fisher") return "Global Fisher";
  if (strategy_name == "layer-fisher") return "Layer Fisher";
  if (strategy_name == "global-activation") return "Global Activation";
  if (strategy_name == "layer-activation") return "Layer Activation";
  return strategy_name;
}

}  // namespace shrinkbench
