// Named pruning strategies = (score, scope, structure) triples.
//
// The five baselines of Section 7.2 plus structured and second-order
// variants. Strategy names are the stable identifiers used by experiment
// configs, benches, and CSV output.
#pragma once

#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "core/scoring.hpp"

namespace shrinkbench {

struct PruningStrategy {
  std::string name;
  ScoreKind score = ScoreKind::Magnitude;
  AllocationScope scope = AllocationScope::Global;
  Structure structure = Structure::Unstructured;
};

/// Lookup by name. Registered strategies:
///   global-weight     Global Magnitude Pruning        (paper §7.2)
///   layer-weight      Layerwise Magnitude Pruning     (paper §7.2)
///   global-gradient   Global Gradient Magnitude       (paper §7.2)
///   layer-gradient    Layerwise Gradient Magnitude    (paper §7.2)
///   random            Random Pruning                  (paper §7.2)
///   global-grad-sq    Global (w·g)² first-order-Taylor/OBD proxy
///   layer-grad-sq     Layerwise (w·g)²
///   global-channel    Global structured (whole filters), magnitude
///   layer-channel     Layerwise structured (whole filters), magnitude
///   global-fisher     Global w²·E[g²] diagonal empirical Fisher (OBD-style)
///   layer-fisher      Layerwise Fisher
///   global-activation Global structured, mean-|activation| channel saliency
///   layer-activation  Layerwise structured activation saliency
PruningStrategy strategy_from_name(const std::string& name);

std::vector<std::string> strategy_names();

/// Display label matching the paper's figure legends, e.g.
/// "global-weight" -> "Global Weight".
std::string display_name(const std::string& strategy_name);

}  // namespace shrinkbench
