#include "core/pruner.hpp"

#include <stdexcept>

#include "core/activation_stats.hpp"
#include "nn/loss.hpp"
#include "obs/profile.hpp"

namespace shrinkbench {

std::vector<Parameter*> prunable_params(Model& model, const PruneOptions& opts) {
  std::vector<Parameter*> out;
  for (Parameter* p : parameters_of(model)) {
    if (!p->prunable) continue;
    if (p->is_classifier && !opts.include_classifier) continue;
    out.push_back(p);
  }
  return out;
}

std::vector<Tensor> gradient_snapshot(Model& model, const Dataset& dataset,
                                      const PruneOptions& opts, Rng& rng) {
  DataLoader loader(dataset, opts.grad_batch_size, /*shuffle=*/false, /*seed=*/0);
  const Batch batch = loader.sample_batch(rng);

  zero_grads(model);
  SoftmaxCrossEntropy loss_fn;
  const Tensor logits = model.forward(batch.x, /*train=*/true);
  loss_fn.forward(logits, batch.y);
  model.backward(loss_fn.backward());

  std::vector<Tensor> grads;
  for (const Parameter* p : prunable_params(model, opts)) grads.push_back(p->grad);
  zero_grads(model);
  return grads;
}

std::vector<Tensor> squared_gradient_snapshot(Model& model, const Dataset& dataset,
                                              const PruneOptions& opts, Rng& rng) {
  if (opts.fisher_batches < 1) {
    throw std::invalid_argument("squared_gradient_snapshot: fisher_batches must be >= 1");
  }
  const auto params = prunable_params(model, opts);
  std::vector<Tensor> mean_sq;
  mean_sq.reserve(params.size());
  for (const Parameter* p : params) mean_sq.emplace_back(p->data.shape());

  DataLoader loader(dataset, opts.grad_batch_size, /*shuffle=*/false, /*seed=*/0);
  SoftmaxCrossEntropy loss_fn;
  for (int b = 0; b < opts.fisher_batches; ++b) {
    const Batch batch = loader.sample_batch(rng);
    zero_grads(model);
    const Tensor logits = model.forward(batch.x, /*train=*/true);
    loss_fn.forward(logits, batch.y);
    model.backward(loss_fn.backward());
    for (size_t i = 0; i < params.size(); ++i) {
      const float* g = params[i]->grad.data();
      float* acc = mean_sq[i].data();
      for (int64_t j = 0, n = mean_sq[i].numel(); j < n; ++j) acc[j] += g[j] * g[j];
    }
  }
  zero_grads(model);
  for (Tensor& t : mean_sq) ops::scale_inplace(t, 1.0f / static_cast<float>(opts.fisher_batches));
  return mean_sq;
}

double prune_model(Model& model, const PruningStrategy& strategy, double fraction_to_keep,
                   const Dataset& dataset, const PruneOptions& opts, Rng& rng) {
  SB_PROFILE_SCOPE("prune");
  auto params = prunable_params(model, opts);
  if (params.empty()) throw std::logic_error("prune_model: no prunable parameters");
  obs::count("prune.calls");

  std::vector<Tensor> grads;
  if (needs_gradients(strategy.score)) {
    SB_PROFILE_SCOPE("gradients");
    grads = strategy.score == ScoreKind::Fisher
                ? squared_gradient_snapshot(model, dataset, opts, rng)
                : gradient_snapshot(model, dataset, opts, rng);
  }

  std::vector<ScoredParam> scored;
  scored.reserve(params.size());
  if (needs_activations(strategy.score)) {
    SB_PROFILE_SCOPE("score");
    ChannelActivationStats stats =
        collect_activation_stats(model, dataset, opts.activation_batches,
                                 opts.grad_batch_size, rng);
    for (Parameter* p : params) {
      obs::ScopedTimer layer_span(p->name);
      // Conv/linear weights are named "<layer>.weight"; their output
      // channels are the layer's output channels.
      const std::string layer_name = p->name.substr(0, p->name.rfind('.'));
      const auto it = stats.mean_abs.find(layer_name);
      if (it == stats.mean_abs.end()) {
        throw std::logic_error("prune_model: no activation stats for layer '" + layer_name +
                               "'");
      }
      scored.push_back(ScoredParam{p, channel_scores_to_entry_scores(*p, it->second)});
      obs::count("prune.params_scored", p->numel());
    }
  } else {
    SB_PROFILE_SCOPE("score");
    const Tensor empty;
    for (size_t i = 0; i < params.size(); ++i) {
      obs::ScopedTimer layer_span(params[i]->name);
      const Tensor& grad = grads.empty() ? empty : grads[i];
      scored.push_back(
          ScoredParam{params[i], score_parameter(strategy.score, *params[i], grad, rng)});
      obs::count("prune.params_scored", params[i]->numel());
    }
  }

  obs::ScopedTimer mask_span("mask");
  const int64_t kept = allocate_masks(scored, strategy.scope, strategy.structure, fraction_to_keep);
  apply_masks(model);

  int64_t total = 0;
  for (const Parameter* p : params) total += p->numel();
  return static_cast<double>(kept) / static_cast<double>(total);
}

double fraction_for_compression(Model& model, double target_ratio, const PruneOptions& opts) {
  if (target_ratio < 1.0) {
    throw std::invalid_argument("fraction_for_compression: ratio must be >= 1");
  }
  int64_t total = 0, prunable = 0;
  const auto prunables = prunable_params(model, opts);
  for (const Parameter* p : parameters_of(model)) total += p->numel();
  for (const Parameter* p : prunables) prunable += p->numel();
  const int64_t always_kept = total - prunable;
  const double target_survivors = static_cast<double>(total) / target_ratio;
  const double keep = (target_survivors - static_cast<double>(always_kept)) /
                      static_cast<double>(prunable);
  return std::clamp(keep, 0.0, 1.0);
}

}  // namespace shrinkbench
