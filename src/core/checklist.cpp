#include "core/checklist.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace shrinkbench {

int ChecklistReport::satisfied() const {
  int n = 0;
  for (const auto& item : items) n += item.satisfied;
  return n;
}

ChecklistReport evaluate_checklist(const std::vector<ExperimentResult>& results,
                                   const std::string& proposed_strategy) {
  ChecklistReport report;
  const auto add = [&](std::string id, std::string description, bool ok, std::string detail) {
    report.items.push_back({std::move(id), std::move(description), ok, std::move(detail)});
  };

  std::vector<const ExperimentResult*> mine;
  std::set<std::string> other_strategies;
  std::set<std::pair<std::string, std::string>> pairs;
  std::set<double> ratios;
  std::set<uint64_t> seeds;
  bool all_report_controls = !results.empty();
  double max_ratio = 0.0;
  for (const auto& r : results) {
    if (r.config.strategy == proposed_strategy) {
      mine.push_back(&r);
      pairs.insert({r.config.dataset, r.config.arch});
      ratios.insert(r.config.target_compression);
      seeds.insert(r.config.run_seed);
      max_ratio = std::max(max_ratio, r.compression);
      if (r.pre_top1 <= 0.0) all_report_controls = false;
    } else {
      other_strategies.insert(r.config.strategy);
    }
  }

  add("operating-points",
      "At least 5 operating points spanning a range of compression ratios (e.g. {2,4,8,16,32})",
      ratios.size() >= 5,
      std::to_string(ratios.size()) + " distinct target ratios");

  add("extreme-ratios",
      "Data presented up to extreme compression where accuracy declines substantially",
      max_ratio >= 16.0, "max achieved compression " + (mine.empty() ? std::string("n/a")
                                                                     : std::to_string(max_ratio)));

  add("dataset-pairs", "At least 3 (dataset, architecture) pairs, none of them MNIST-class toys",
      pairs.size() >= 3 && std::none_of(pairs.begin(), pairs.end(),
                                        [](const auto& p) { return p.first == "synth-mnist"; }),
      std::to_string(pairs.size()) + " pairs");

  add("multiple-seeds", "Multiple runs with separate seeds, enabling error bars",
      seeds.size() >= 3, std::to_string(seeds.size()) + " seeds");

  // Both efficiency metrics and both accuracy metrics are always recorded
  // by ExperimentResult; the check is that they're actually distinct/real.
  bool both_metrics = false, both_accuracies = false;
  for (const ExperimentResult* r : mine) {
    if (r->compression > 1.0 && r->speedup > 1.0) both_metrics = true;
    if (r->post_top5 > 0.0) both_accuracies = true;
  }
  add("both-efficiency-metrics",
      "Reports BOTH compression ratio and theoretical speedup for pruned models", both_metrics,
      both_metrics ? "compression and speedup recorded" : "missing one");
  add("both-accuracy-metrics", "Reports BOTH Top-1 and Top-5 accuracy", both_accuracies,
      both_accuracies ? "top1 and top5 recorded" : "missing top5");

  add("controls", "Reports the same metrics for the unpruned control model", all_report_controls,
      all_report_controls ? "pre-pruning accuracy present in every run" : "missing controls");

  add("random-baseline", "Comparison to a random pruning baseline",
      other_strategies.count("random") > 0,
      other_strategies.count("random") ? "random present" : "no random baseline in results");

  const bool has_magnitude = other_strategies.count("global-weight") > 0 ||
                             other_strategies.count("layer-weight") > 0 ||
                             proposed_strategy == "global-weight" ||
                             proposed_strategy == "layer-weight";
  add("magnitude-baseline", "Comparison to a magnitude pruning baseline", has_magnitude,
      has_magnitude ? "magnitude present" : "no magnitude baseline in results");

  add("identical-harness",
      "All methods compared under identical library, data loading, and training code",
      !other_strategies.empty(),
      "all results produced by one ExperimentRunner with shared caches");

  return report;
}

std::string render_checklist(const ChecklistReport& report) {
  std::ostringstream out;
  out << "Best-practice checklist (paper §6 / Appendix B): " << report.satisfied() << "/"
      << report.total() << " satisfied\n";
  for (const auto& item : report.items) {
    out << "  [" << (item.satisfied ? 'x' : ' ') << "] " << item.id << ": " << item.description
        << "\n        -> " << item.detail << "\n";
  }
  return out.str();
}

}  // namespace shrinkbench
