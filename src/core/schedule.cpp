#include "core/schedule.hpp"

#include <cmath>
#include <stdexcept>

namespace shrinkbench {

std::string to_string(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::OneShot: return "one-shot";
    case ScheduleKind::Iterative: return "iterative";
    case ScheduleKind::Polynomial: return "polynomial";
  }
  throw std::logic_error("to_string(ScheduleKind): unreachable");
}

ScheduleKind schedule_from_name(const std::string& name) {
  if (name == "one-shot") return ScheduleKind::OneShot;
  if (name == "iterative") return ScheduleKind::Iterative;
  if (name == "polynomial") return ScheduleKind::Polynomial;
  throw std::invalid_argument("schedule_from_name: unknown schedule '" + name + "'");
}

std::vector<double> schedule_fractions(ScheduleKind kind, double final_fraction_to_keep,
                                       int steps) {
  if (final_fraction_to_keep < 0.0 || final_fraction_to_keep > 1.0) {
    throw std::invalid_argument("schedule_fractions: fraction must be in [0, 1]");
  }
  if (steps < 1) throw std::invalid_argument("schedule_fractions: steps must be >= 1");
  if (kind == ScheduleKind::OneShot || steps == 1) return {final_fraction_to_keep};

  std::vector<double> fractions;
  fractions.reserve(static_cast<size_t>(steps));
  if (kind == ScheduleKind::Iterative) {
    // Geometric interpolation: keep fraction f^(t/N) at step t. A fully
    // zero target is approximated by a tiny floor to keep the geometry
    // well-defined.
    const double f = std::max(final_fraction_to_keep, 1e-9);
    for (int t = 1; t <= steps; ++t) {
      fractions.push_back(std::pow(f, static_cast<double>(t) / steps));
    }
    fractions.back() = final_fraction_to_keep;
  } else {  // Polynomial
    const double final_sparsity = 1.0 - final_fraction_to_keep;
    for (int t = 1; t <= steps; ++t) {
      const double progress = static_cast<double>(t) / steps;
      const double sparsity = final_sparsity * (1.0 - std::pow(1.0 - progress, 3.0));
      fractions.push_back(1.0 - sparsity);
    }
    fractions.back() = final_fraction_to_keep;
  }
  return fractions;
}

}  // namespace shrinkbench
