// Applying a pruning strategy to a model.
//
// This is the ShrinkBench core loop: snapshot gradients if the score needs
// them (one sampled minibatch, Appendix C.1), score every prunable
// parameter, allocate masks at the target sparsity, and install them so
// that data == data ⊙ mask.
#pragma once

#include <cstdint>

#include "core/strategy.hpp"
#include "data/loader.hpp"
#include "nn/sequential.hpp"

namespace shrinkbench {

struct PruneOptions {
  /// Include the final classifier weights in pruning (off by default,
  /// matching the paper's Appendix C.1).
  bool include_classifier = false;
  /// Minibatch size for gradient-based scores.
  int64_t grad_batch_size = 64;
  /// Minibatches averaged by the Fisher score (variance reduction vs the
  /// single-batch gradient scores of Appendix C.1).
  int fisher_batches = 4;
  /// Minibatches observed by activation-based scores.
  int activation_batches = 4;
};

/// The parameters a strategy may touch under the given options.
std::vector<Parameter*> prunable_params(Model& model, const PruneOptions& opts);

/// Computes gradients of the mean cross-entropy on one minibatch sampled
/// with `rng`, returned per-parameter in prunable_params order. Leaves the
/// model's accumulated grads zeroed.
std::vector<Tensor> gradient_snapshot(Model& model, const Dataset& dataset,
                                      const PruneOptions& opts, Rng& rng);

/// Mean squared gradient E[g²] per prunable parameter, averaged over
/// opts.fisher_batches sampled minibatches (diagonal empirical Fisher).
std::vector<Tensor> squared_gradient_snapshot(Model& model, const Dataset& dataset,
                                              const PruneOptions& opts, Rng& rng);

/// Prunes so that ~fraction_to_keep of prunable entries survive, then
/// enforces masks. Returns the achieved fraction kept.
double prune_model(Model& model, const PruningStrategy& strategy, double fraction_to_keep,
                   const Dataset& dataset, const PruneOptions& opts, Rng& rng);

/// Fraction of *prunable* entries to keep so the whole-model compression
/// ratio (total params / surviving params) hits `target_ratio`. Clamped to
/// [0, 1]: ratios beyond what pruning prunable weights alone can reach
/// yield 0 (prune everything prunable) — callers should report the
/// *achieved* ratio, which is what all benches print.
double fraction_for_compression(Model& model, double target_ratio, const PruneOptions& opts);

}  // namespace shrinkbench
