// Per-channel activation statistics for activation-based pruning scores.
//
// Methods like Hu et al. 2016 (APoZ) and the channel-selection family the
// paper surveys (§2.3 "contributions to network activations") score
// structural units by how active they are on real data. This module runs
// inference over sampled minibatches with a forward hook installed and
// records, for every Conv2d / Linear layer, each output channel's mean
// absolute activation and its fraction of positive activations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/loader.hpp"
#include "nn/sequential.hpp"

namespace shrinkbench {

struct ChannelActivationStats {
  /// Layer name -> per-output-channel mean |activation|.
  std::map<std::string, std::vector<double>> mean_abs;
  /// Layer name -> per-output-channel fraction of positive activations
  /// (1 - APoZ, higher = more alive).
  std::map<std::string, std::vector<double>> positive_fraction;
  int64_t samples = 0;
};

/// Runs `batches` inference minibatches sampled with `rng` and collects
/// statistics for every Conv2d and Linear output in the model. The model
/// is unchanged (eval mode, no gradients).
ChannelActivationStats collect_activation_stats(Model& model, const Dataset& dataset,
                                                int batches, int64_t batch_size, Rng& rng);

}  // namespace shrinkbench
