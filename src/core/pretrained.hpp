// Disk-cached pretrained models.
//
// The paper shows (Section 7.3, Figure 8) that which *initial model* you
// start from confounds pruning comparisons, so ShrinkBench standardizes on
// shared pretrained weights. This store trains a model once per
// (dataset, architecture, width, init seed, tag) and caches the checkpoint;
// every bench and example then begins from identical weights. Distinct
// initial models for the Figure 8 experiment are produced by varying `tag`
// together with the training options.
#pragma once

#include <string>

#include "core/train.hpp"
#include "data/synthetic.hpp"
#include "models/zoo.hpp"

namespace shrinkbench {

/// Default cache directory: $SHRINKBENCH_CACHE or ".sb_cache".
std::string default_cache_dir();

class PretrainedStore {
 public:
  explicit PretrainedStore(std::string cache_dir = default_cache_dir());

  /// Returns a freshly constructed model with pretrained weights, training
  /// and caching them on first use. `tag` distinguishes alternative
  /// training recipes for the same architecture (e.g. Figure 8's
  /// "Weights A" vs "Weights B").
  ///
  /// Contract: the checkpoint is keyed by (dataset, arch, width,
  /// init_seed, tag) — NOT by train_opts. A tag must always be paired
  /// with the same recipe; if you change the recipe, change the tag,
  /// or you will silently load weights trained the old way.
  ModelPtr get(const DatasetBundle& bundle, const std::string& arch, int64_t width,
               uint64_t init_seed, const TrainOptions& train_opts,
               const std::string& tag = "default");

  const std::string& cache_dir() const { return cache_dir_; }

 private:
  std::string cache_dir_;
};

/// Pretraining recipe used when a cache entry is missing: Adam(1e-3) with
/// early stopping, long enough to converge on the synthetic tasks.
TrainOptions default_pretrain_options();

}  // namespace shrinkbench
