// Procedural classification datasets.
//
// The paper's experiments run on MNIST / CIFAR-10 / ImageNet. Those are not
// available offline, so (per DESIGN.md §2) we substitute procedurally
// generated image classification tasks with the same tensor layout and
// knobs for difficulty:
//
//   * each class has a smooth random "prototype" texture (sum of a few
//     class-seeded 2-D sinusoids plus a Gaussian blob);
//   * each sample is its class prototype under a random translation,
//     amplitude jitter, optional horizontal flip, plus pixel noise;
//   * a fraction of labels can be corrupted (label_noise) to bound
//     achievable accuracy away from 100%, like real datasets.
//
// The resulting tasks are learnable by small convnets but not trivially,
// so accuracy degrades smoothly as networks are pruned — which is the
// property the paper's Figures 6-18 exercise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace shrinkbench {

struct Dataset {
  std::string name;
  Tensor images;  // [N, C, H, W]
  std::vector<int> labels;
  int num_classes = 0;

  int64_t size() const { return images.empty() ? 0 : images.size(0); }
  Shape sample_shape() const { return {images.size(1), images.size(2), images.size(3)}; }
};

struct SyntheticSpec {
  std::string name = "synthetic";
  int num_classes = 10;
  int64_t channels = 3, height = 8, width = 8;
  int64_t train_size = 2048, val_size = 512, test_size = 512;
  /// Stddev of additive pixel noise (prototypes have unit-ish amplitude).
  float noise = 0.35f;
  /// Fraction of training labels replaced with a uniform random class.
  float label_noise = 0.02f;
  /// Max translation (pixels) applied to the prototype per sample.
  int64_t max_shift = 2;
  uint64_t seed = 0x5eed;
};

struct DatasetBundle {
  Dataset train, val, test;
  SyntheticSpec spec;
};

/// Generates train/val/test splits from one spec (shared class prototypes,
/// independent sample noise). Deterministic in spec.seed.
DatasetBundle make_synthetic(const SyntheticSpec& spec);

// ---- Presets (stand-ins for the paper's datasets; see DESIGN.md §2) ----

/// CIFAR-10 stand-in: 3x8x8, 10 classes.
SyntheticSpec synth_cifar(uint64_t seed = 0xC1FA);
/// ImageNet stand-in: 3x12x12, 20 classes (enough for a meaningful Top-5).
SyntheticSpec synth_imagenet(uint64_t seed = 0x1A6E);
/// MNIST stand-in: 1x8x8, 10 classes, easy (the paper's point that MNIST
/// results do not generalize needs an "easy" dataset to demonstrate).
SyntheticSpec synth_mnist(uint64_t seed = 0x3157);

/// Preset lookup by name ("synth-cifar10", "synth-imagenet", "synth-mnist").
SyntheticSpec synthetic_preset(const std::string& name, uint64_t seed_override = 0);

}  // namespace shrinkbench
