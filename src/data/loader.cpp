#include "data/loader.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace shrinkbench {

DataLoader::DataLoader(const Dataset& dataset, int64_t batch_size, bool shuffle, uint64_t seed)
    : DataLoader(dataset, batch_size, shuffle, seed, AugmentOptions{}) {}

DataLoader::DataLoader(const Dataset& dataset, int64_t batch_size, bool shuffle, uint64_t seed,
                       AugmentOptions augment)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed),
      augment_(augment),
      augment_rng_(seed ^ 0xa46e57ULL) {
  if (batch_size_ <= 0) throw std::invalid_argument("DataLoader: batch_size must be positive");
  order_.resize(static_cast<size_t>(dataset_.size()));
  std::iota(order_.begin(), order_.end(), int64_t{0});
  reset();
}

void DataLoader::augment_in_place(Tensor& x) {
  const int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  std::vector<float> scratch(static_cast<size_t>(h * w));
  for (int64_t i = 0; i < n; ++i) {
    const bool flip = augment_.hflip && augment_rng_.bernoulli(0.5);
    const int64_t dy =
        augment_.max_shift > 0
            ? augment_rng_.randint(2 * augment_.max_shift + 1) - augment_.max_shift
            : 0;
    const int64_t dx =
        augment_.max_shift > 0
            ? augment_rng_.randint(2 * augment_.max_shift + 1) - augment_.max_shift
            : 0;
    for (int64_t ch = 0; ch < c; ++ch) {
      float* plane = x.data() + (i * c + ch) * h * w;
      if (flip || dy != 0 || dx != 0) {
        for (int64_t y = 0; y < h; ++y) {
          const int64_t sy = ((y + dy) % h + h) % h;
          for (int64_t xx = 0; xx < w; ++xx) {
            int64_t sx = ((xx + dx) % w + w) % w;
            if (flip) sx = w - 1 - sx;
            scratch[static_cast<size_t>(y * w + xx)] = plane[sy * w + sx];
          }
        }
        std::copy(scratch.begin(), scratch.end(), plane);
      }
      if (augment_.noise_std > 0.0f) {
        for (int64_t k = 0; k < h * w; ++k) {
          plane[k] += static_cast<float>(augment_rng_.normal(0.0, augment_.noise_std));
        }
      }
    }
  }
}

void DataLoader::reset() {
  cursor_ = 0;
  if (shuffle_) order_ = rng_.permutation(dataset_.size());
}

bool DataLoader::next(Batch& batch) {
  const int64_t n = dataset_.size();
  if (cursor_ >= n) return false;
  const int64_t take = std::min(batch_size_, n - cursor_);
  const Shape sample = dataset_.sample_shape();
  const int64_t sample_numel = numel_of(sample);

  batch.x = Tensor({take, sample[0], sample[1], sample[2]});
  batch.y.resize(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) {
    const int64_t src = order_[static_cast<size_t>(cursor_ + i)];
    std::memcpy(batch.x.data() + i * sample_numel, dataset_.images.data() + src * sample_numel,
                static_cast<size_t>(sample_numel) * sizeof(float));
    batch.y[static_cast<size_t>(i)] = dataset_.labels[static_cast<size_t>(src)];
  }
  cursor_ += take;
  if (augment_.any()) augment_in_place(batch.x);
  return true;
}

Batch DataLoader::sample_batch(Rng& rng) const {
  const int64_t n = dataset_.size();
  const int64_t take = std::min(batch_size_, n);
  const Shape sample = dataset_.sample_shape();
  const int64_t sample_numel = numel_of(sample);
  Batch batch;
  batch.x = Tensor({take, sample[0], sample[1], sample[2]});
  batch.y.resize(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) {
    const int64_t src = rng.randint(n);
    std::memcpy(batch.x.data() + i * sample_numel, dataset_.images.data() + src * sample_numel,
                static_cast<size_t>(sample_numel) * sizeof(float));
    batch.y[static_cast<size_t>(i)] = dataset_.labels[static_cast<size_t>(src)];
  }
  return batch;
}

int64_t DataLoader::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace shrinkbench
