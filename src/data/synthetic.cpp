#include "data/synthetic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace shrinkbench {

namespace {

// A class prototype: a few sinusoidal plane waves plus a Gaussian blob per
// channel, all drawn from a class-specific stream.
struct Prototype {
  Tensor texture;  // [C, H, W]
};

Prototype make_prototype(const SyntheticSpec& spec, Rng& rng) {
  Prototype proto{Tensor({spec.channels, spec.height, spec.width})};
  constexpr int kWaves = 3;
  for (int64_t c = 0; c < spec.channels; ++c) {
    // Plane waves.
    for (int wv = 0; wv < kWaves; ++wv) {
      const double fx = rng.uniform(0.5, 2.5) * 2.0 * std::numbers::pi / spec.width;
      const double fy = rng.uniform(0.5, 2.5) * 2.0 * std::numbers::pi / spec.height;
      const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double amp = rng.uniform(0.3, 0.8);
      for (int64_t y = 0; y < spec.height; ++y) {
        for (int64_t x = 0; x < spec.width; ++x) {
          proto.texture(c, y, x) +=
              static_cast<float>(amp * std::sin(fx * x + fy * y + phase));
        }
      }
    }
    // Gaussian blob at a class-specific location.
    const double cy = rng.uniform(1.0, spec.height - 1.0);
    const double cx = rng.uniform(1.0, spec.width - 1.0);
    const double sigma = rng.uniform(1.0, 2.5);
    const double amp = rng.uniform(0.8, 1.5) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    for (int64_t y = 0; y < spec.height; ++y) {
      for (int64_t x = 0; x < spec.width; ++x) {
        const double d2 = (y - cy) * (y - cy) + (x - cx) * (x - cx);
        proto.texture(c, y, x) += static_cast<float>(amp * std::exp(-d2 / (2 * sigma * sigma)));
      }
    }
  }
  return proto;
}

// Writes one sample: prototype under shift/flip/jitter + noise.
void render_sample(const SyntheticSpec& spec, const Prototype& proto, Rng& rng, float* out) {
  const int64_t dy = rng.randint(2 * spec.max_shift + 1) - spec.max_shift;
  const int64_t dx = rng.randint(2 * spec.max_shift + 1) - spec.max_shift;
  const bool flip = rng.bernoulli(0.5);
  const float amp = static_cast<float>(rng.uniform(0.8, 1.2));
  for (int64_t c = 0; c < spec.channels; ++c) {
    for (int64_t y = 0; y < spec.height; ++y) {
      // Toroidal shift keeps the texture's energy constant across samples.
      const int64_t sy = ((y + dy) % spec.height + spec.height) % spec.height;
      for (int64_t x = 0; x < spec.width; ++x) {
        int64_t sx = ((x + dx) % spec.width + spec.width) % spec.width;
        if (flip) sx = spec.width - 1 - sx;
        const float v = amp * proto.texture(c, sy, sx) +
                        static_cast<float>(rng.normal(0.0, spec.noise));
        out[(c * spec.height + y) * spec.width + x] = v;
      }
    }
  }
}

Dataset make_split(const SyntheticSpec& spec, const std::vector<Prototype>& protos,
                   const std::string& split, int64_t n, bool with_label_noise, Rng& rng) {
  Dataset ds;
  ds.name = spec.name + "/" + split;
  ds.num_classes = spec.num_classes;
  ds.images = Tensor({n, spec.channels, spec.height, spec.width});
  ds.labels.resize(static_cast<size_t>(n));
  // Label corruption draws from its own stream so the noise knob changes
  // labels only — images are bit-identical across label_noise settings.
  Rng label_rng = rng.fork();
  const int64_t sample_numel = spec.channels * spec.height * spec.width;
  for (int64_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.randint(spec.num_classes));
    render_sample(spec, protos[static_cast<size_t>(label)], rng, ds.images.data() + i * sample_numel);
    int observed = label;
    if (with_label_noise && spec.label_noise > 0.0f && label_rng.bernoulli(spec.label_noise)) {
      observed = static_cast<int>(label_rng.randint(spec.num_classes));
    }
    ds.labels[static_cast<size_t>(i)] = observed;
  }
  return ds;
}

}  // namespace

DatasetBundle make_synthetic(const SyntheticSpec& spec) {
  if (spec.num_classes < 2) throw std::invalid_argument("make_synthetic: need >= 2 classes");
  Rng master(spec.seed);
  Rng proto_rng = master.fork();
  std::vector<Prototype> protos;
  protos.reserve(static_cast<size_t>(spec.num_classes));
  for (int k = 0; k < spec.num_classes; ++k) protos.push_back(make_prototype(spec, proto_rng));

  Rng train_rng = master.fork();
  Rng val_rng = master.fork();
  Rng test_rng = master.fork();
  DatasetBundle bundle;
  bundle.spec = spec;
  bundle.train = make_split(spec, protos, "train", spec.train_size, true, train_rng);
  bundle.val = make_split(spec, protos, "val", spec.val_size, false, val_rng);
  bundle.test = make_split(spec, protos, "test", spec.test_size, false, test_rng);
  return bundle;
}

SyntheticSpec synth_cifar(uint64_t seed) {
  SyntheticSpec s;
  s.name = "synth-cifar10";
  s.num_classes = 10;
  s.channels = 3;
  s.height = s.width = 8;
  s.train_size = 1024;
  s.val_size = 384;
  s.test_size = 384;
  s.noise = 0.55f;
  s.label_noise = 0.02f;
  s.seed = seed;
  return s;
}

SyntheticSpec synth_imagenet(uint64_t seed) {
  SyntheticSpec s;
  s.name = "synth-imagenet";
  s.num_classes = 20;
  s.channels = 3;
  s.height = s.width = 12;
  s.train_size = 2048;
  s.val_size = 512;
  s.test_size = 512;
  s.noise = 0.75f;
  s.label_noise = 0.03f;
  s.seed = seed;
  return s;
}

SyntheticSpec synth_mnist(uint64_t seed) {
  SyntheticSpec s;
  s.name = "synth-mnist";
  s.num_classes = 10;
  s.channels = 1;
  s.height = s.width = 8;
  s.train_size = 1024;
  s.val_size = 384;
  s.test_size = 384;
  s.noise = 0.15f;  // easy on purpose: MNIST-like
  s.label_noise = 0.0f;
  s.max_shift = 1;
  s.seed = seed;
  return s;
}

SyntheticSpec synthetic_preset(const std::string& name, uint64_t seed_override) {
  SyntheticSpec s;
  if (name == "synth-cifar10") {
    s = synth_cifar();
  } else if (name == "synth-imagenet") {
    s = synth_imagenet();
  } else if (name == "synth-mnist") {
    s = synth_mnist();
  } else {
    throw std::invalid_argument("synthetic_preset: unknown dataset '" + name + "'");
  }
  if (seed_override != 0) s.seed = seed_override;
  return s;
}

}  // namespace shrinkbench
