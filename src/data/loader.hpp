// Minibatch iteration over a Dataset.
//
// Shuffling is driven by an explicit per-epoch seed so that a training run
// is a pure function of (dataset seed, model seed, loader seed) — the
// reproducibility discipline the paper's Appendix C describes.
#pragma once

#include <cstdint>
#include <vector>

#include "data/synthetic.hpp"
#include "tensor/rng.hpp"

namespace shrinkbench {

struct Batch {
  Tensor x;  // [B, C, H, W]
  std::vector<int> y;
};

/// Train-time augmentation applied while assembling batches. The paper's
/// §4.5 lists "data augmentation and preprocessing" among the confounders
/// papers rarely control; making it an explicit, seeded loader option is
/// the ShrinkBench remedy.
struct AugmentOptions {
  bool hflip = false;          // random horizontal flip
  int64_t max_shift = 0;       // random toroidal translation, +/- pixels
  float noise_std = 0.0f;      // additive Gaussian pixel noise
  bool any() const { return hflip || max_shift > 0 || noise_std > 0.0f; }
};

/// The loader's resumable position: both RNG streams at an epoch
/// boundary. Restoring it makes the next reset() draw exactly the
/// shuffle (and the following epoch exactly the augmentation draws) an
/// uninterrupted run would have produced — training checkpoints capture
/// this so a resumed run is bit-identical.
struct DataLoaderState {
  RngState shuffle_rng;
  RngState augment_rng;
};

class DataLoader {
 public:
  DataLoader(const Dataset& dataset, int64_t batch_size, bool shuffle, uint64_t seed);
  DataLoader(const Dataset& dataset, int64_t batch_size, bool shuffle, uint64_t seed,
             AugmentOptions augment);

  /// Starts a new epoch (reshuffles if enabled).
  void reset();

  /// Fills `batch` with the next minibatch; returns false at epoch end.
  /// The final batch of an epoch may be smaller than batch_size.
  bool next(Batch& batch);

  /// One specific batch by RNG draw — used for gradient-based pruning
  /// scores, which the paper computes on a single sampled minibatch
  /// (Appendix C.1). Sensitivity to this draw is part of what Figure 7's
  /// error bars measure.
  Batch sample_batch(Rng& rng) const;

  int64_t batches_per_epoch() const;
  int64_t batch_size() const { return batch_size_; }

  /// Snapshot / restore the RNG streams (epoch-boundary resume).
  DataLoaderState state() const { return {rng_.state(), augment_rng_.state()}; }
  void load_state(const DataLoaderState& state) {
    rng_.set_state(state.shuffle_rng);
    augment_rng_.set_state(state.augment_rng);
  }

 private:
  void augment_in_place(Tensor& x);

  const Dataset& dataset_;
  int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  AugmentOptions augment_;
  Rng augment_rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace shrinkbench
