#include "metrics/summary.hpp"

#include <sstream>
#include <typeinfo>

#include "nn/residual.hpp"
#include "tensor/ops.hpp"

namespace shrinkbench {

namespace {

// "N11shrinkbench6Conv2dE" -> "Conv2d" (GCC/Clang mangling; falls back to
// the raw name elsewhere).
std::string pretty_kind(const Layer& layer) {
  const std::string mangled = typeid(layer).name();
  std::string out;
  size_t i = 0;
  std::string last;
  while (i < mangled.size()) {
    if (!std::isdigit(static_cast<unsigned char>(mangled[i]))) {
      ++i;
      continue;
    }
    size_t len = 0;
    while (i < mangled.size() && std::isdigit(static_cast<unsigned char>(mangled[i]))) {
      len = len * 10 + static_cast<size_t>(mangled[i] - '0');
      ++i;
    }
    if (i + len <= mangled.size()) {
      last = mangled.substr(i, len);
      i += len;
    } else {
      break;
    }
  }
  return last.empty() ? mangled : last;
}

void collect_rows(Layer& layer, const Shape& in, std::vector<LayerSummaryRow>& rows) {
  if (auto* seq = dynamic_cast<Sequential*>(&layer)) {
    Shape s = in;
    for (Layer* child : seq->children()) {
      collect_rows(*child, s, rows);
      s = child->output_sample_shape(s);
    }
    return;
  }
  if (auto* block = dynamic_cast<ResidualBlock*>(&layer)) {
    for (Layer* child : block->children()) collect_rows(*child, in, rows);
    return;
  }
  LayerSummaryRow row;
  row.name = layer.name();
  row.kind = pretty_kind(layer);
  row.output_shape = layer.output_sample_shape(in);
  std::vector<Parameter*> params;
  layer.collect_params(params);
  for (const Parameter* p : params) {
    row.params += p->numel();
    row.params_nonzero += ops::count_nonzero(p->mask);
  }
  row.flops = layer.flops(in);
  row.flops_effective = layer.effective_flops(in);
  rows.push_back(std::move(row));
}

}  // namespace

std::vector<LayerSummaryRow> summarize_layers(Model& model, const Shape& sample_shape) {
  std::vector<LayerSummaryRow> rows;
  collect_rows(model, sample_shape, rows);
  return rows;
}

std::string describe(Model& model, const Shape& sample_shape) {
  const auto rows = summarize_layers(model, sample_shape);
  std::ostringstream out;
  out << model.name() << " (input " << to_string(sample_shape) << ")\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-24s %-13s %-16s %12s %12s %14s\n", "layer", "kind",
                "output", "params", "nonzero", "madds");
  out << line;
  int64_t params = 0, nonzero = 0, flops = 0, eff = 0;
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "%-24s %-13s %-16s %12lld %12lld %14lld\n",
                  row.name.c_str(), row.kind.c_str(), to_string(row.output_shape).c_str(),
                  static_cast<long long>(row.params), static_cast<long long>(row.params_nonzero),
                  static_cast<long long>(row.flops));
    out << line;
    params += row.params;
    nonzero += row.params_nonzero;
    flops += row.flops;
    eff += row.flops_effective;
  }
  std::snprintf(line, sizeof(line),
                "total: %lld params (%lld nonzero), %lld madds (%lld effective)\n",
                static_cast<long long>(params), static_cast<long long>(nonzero),
                static_cast<long long>(flops), static_cast<long long>(eff));
  out << line;
  return out.str();
}

}  // namespace shrinkbench
