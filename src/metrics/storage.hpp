// Storage-footprint accounting (paper §2.4: "reducing the storage
// footprint of the neural network" is one goal of pruning, with its own
// metric — and §5.2 notes "compression ratio" must mean original size /
// compressed size).
//
// A pruned model only saves storage if the sparse weights are *stored*
// sparsely, and sparse formats carry index overhead: CSR stores an index
// per surviving value, so below ~50% sparsity a "compressed" model is
// bigger than the dense original. These functions make that concrete.
#pragma once

#include <cstdint>
#include <string>

#include "nn/layer.hpp"

namespace shrinkbench {

enum class StorageFormat {
  Dense,       // float32 per weight, masked or not
  SparseCsr,   // surviving float32 values + int32 column ids + row offsets
  DenseBitmap, // surviving float32 values + 1 bit of mask per weight
};

std::string to_string(StorageFormat format);

/// Bytes to store the model's parameters in the given format. Non-prunable
/// parameters (biases, batchnorm affines) are always stored densely.
int64_t storage_bytes(Layer& model, StorageFormat format);

/// original dense bytes / bytes in `format` — the honest, bytes-level
/// compression ratio (can be < 1 when index overhead dominates).
double storage_compression_ratio(Layer& model, StorageFormat format);

}  // namespace shrinkbench
