// Human-readable model summaries: a per-layer table of output shapes,
// parameter counts, surviving (unmasked) parameters, and multiply-adds —
// the "identify the exact architecture" practice of the paper's §6, as a
// one-call API.
#pragma once

#include <string>

#include "nn/sequential.hpp"

namespace shrinkbench {

struct LayerSummaryRow {
  std::string name;
  std::string kind;        // "Conv2d", "Linear", "BatchNorm2d", ...
  Shape output_shape;      // per-sample
  int64_t params = 0;
  int64_t params_nonzero = 0;
  int64_t flops = 0;            // dense madds per sample
  int64_t flops_effective = 0;  // under current masks
};

/// Per-leaf-layer rows in execution order (containers are expanded).
std::vector<LayerSummaryRow> summarize_layers(Model& model, const Shape& sample_shape);

/// Renders summarize_layers plus totals as an aligned table.
std::string describe(Model& model, const Shape& sample_shape);

}  // namespace shrinkbench
