// Evaluation metrics.
//
// Exactly the quantities the paper says every pruning result should report
// (Section 6): compression ratio = original size / new size, theoretical
// speedup = original multiply-adds / new multiply-adds, Top-1 AND Top-5
// accuracy, plus means and sample standard deviations across seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "data/loader.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"

namespace shrinkbench {

struct ParamCounts {
  int64_t total = 0;            // all parameters (incl. biases, batchnorm)
  int64_t nonzero = 0;          // parameters surviving their masks
  int64_t prunable = 0;         // parameters pruning may touch
  int64_t prunable_nonzero = 0;
};

ParamCounts count_params(Layer& model);

/// original size / new size, counting every parameter (masked weights are
/// "removed"; biases and batchnorm affines always survive).
double compression_ratio(Layer& model);

struct FlopCounts {
  int64_t dense = 0;      // multiply-adds of the unpruned architecture
  int64_t effective = 0;  // multiply-adds counting only unmasked weights
};

FlopCounts count_flops(Layer& model, const Shape& sample_shape);

/// original multiply-adds / new multiply-adds.
double theoretical_speedup(Layer& model, const Shape& sample_shape);

struct EvalResult {
  double top1 = 0.0;
  double top5 = 0.0;
  double loss = 0.0;
  int64_t samples = 0;
};

/// Full-dataset evaluation in inference mode (batchnorm uses running stats).
EvalResult evaluate(Model& model, const Dataset& dataset, int64_t batch_size = 128);

/// Top-k accuracy of a logits batch against labels.
double topk_accuracy(const Tensor& logits, const std::vector<int>& labels, int64_t k);

/// Sample mean and (n-1)-denominator standard deviation.
struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
  int64_t n = 0;
};
Stats compute_stats(const std::vector<double>& values);

}  // namespace shrinkbench
