#include "metrics/storage.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace shrinkbench {

std::string to_string(StorageFormat format) {
  switch (format) {
    case StorageFormat::Dense: return "dense";
    case StorageFormat::SparseCsr: return "sparse-csr";
    case StorageFormat::DenseBitmap: return "dense-bitmap";
  }
  throw std::logic_error("to_string(StorageFormat): unreachable");
}

int64_t storage_bytes(Layer& model, StorageFormat format) {
  constexpr int64_t kValue = 4;   // float32
  constexpr int64_t kIndex = 4;   // int32 column index
  constexpr int64_t kOffset = 8;  // int64 row offset
  int64_t bytes = 0;
  for (const Parameter* p : parameters_of(model)) {
    const int64_t total = p->numel();
    if (!p->prunable || format == StorageFormat::Dense) {
      bytes += total * kValue;
      continue;
    }
    const int64_t nnz = ops::count_nonzero(p->mask);
    switch (format) {
      case StorageFormat::SparseCsr: {
        const int64_t rows = p->data.dim() >= 2 ? p->data.size(0) : 1;
        bytes += nnz * (kValue + kIndex) + (rows + 1) * kOffset;
        break;
      }
      case StorageFormat::DenseBitmap:
        bytes += nnz * kValue + (total + 7) / 8;
        break;
      case StorageFormat::Dense:
        break;  // handled above
    }
  }
  return bytes;
}

double storage_compression_ratio(Layer& model, StorageFormat format) {
  const int64_t dense = storage_bytes(model, StorageFormat::Dense);
  const int64_t compressed = storage_bytes(model, format);
  if (compressed == 0) throw std::logic_error("storage_compression_ratio: empty model");
  return static_cast<double>(dense) / static_cast<double>(compressed);
}

}  // namespace shrinkbench
