#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include <cstring>
#include <vector>

#include "obs/profile.hpp"
#include "tensor/ops.hpp"
#include "tensor/threadpool.hpp"

namespace shrinkbench {

ParamCounts count_params(Layer& model) {
  ParamCounts counts;
  for (const Parameter* p : parameters_of(model)) {
    counts.total += p->numel();
    const int64_t nz = ops::count_nonzero(p->mask);
    counts.nonzero += nz;
    if (p->prunable) {
      counts.prunable += p->numel();
      counts.prunable_nonzero += nz;
    }
  }
  return counts;
}

double compression_ratio(Layer& model) {
  const ParamCounts c = count_params(model);
  if (c.nonzero == 0) throw std::logic_error("compression_ratio: fully pruned model");
  return static_cast<double>(c.total) / static_cast<double>(c.nonzero);
}

FlopCounts count_flops(Layer& model, const Shape& sample_shape) {
  return {model.flops(sample_shape), model.effective_flops(sample_shape)};
}

double theoretical_speedup(Layer& model, const Shape& sample_shape) {
  const FlopCounts f = count_flops(model, sample_shape);
  if (f.effective == 0) throw std::logic_error("theoretical_speedup: zero effective FLOPs");
  return static_cast<double>(f.dense) / static_cast<double>(f.effective);
}

double topk_accuracy(const Tensor& logits, const std::vector<int>& labels, int64_t k) {
  const int64_t n = logits.size(0), c = logits.size(1);
  const int64_t kk = std::min(k, c);
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const auto top = ops::topk_indices(
        std::span<const float>(logits.data() + i * c, static_cast<size_t>(c)), kk);
    const int label = labels[static_cast<size_t>(i)];
    if (std::find(top.begin(), top.end(), static_cast<int64_t>(label)) != top.end()) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

EvalResult evaluate(Model& model, const Dataset& dataset, int64_t batch_size) {
  SB_PROFILE_SCOPE("evaluate");
  obs::count("eval.calls");
  if (batch_size <= 0) throw std::invalid_argument("evaluate: batch_size must be positive");
  const int64_t n_samples = dataset.size();
  if (n_samples == 0) throw std::invalid_argument("evaluate: empty dataset");
  const Shape sample = dataset.sample_shape();
  const int64_t sample_numel = numel_of(sample);
  const int64_t n_batches = (n_samples + batch_size - 1) / batch_size;

  // Eval-mode forward is write-free for every layer, so independent
  // batches can run concurrently against the shared model. Batches are
  // materialised directly from the dataset (identical bytes to the
  // sequential no-shuffle DataLoader) and each chunk scores with its own
  // SoftmaxCrossEntropy so no loss-layer cache is shared across threads.
  struct Partial {
    double loss = 0.0, top1 = 0.0, top5 = 0.0;
    int64_t samples = 0;
  };
  std::vector<Partial> partials(static_cast<size_t>(n_batches));
  parallel_for(0, n_batches, /*grain=*/1, [&](int64_t b0, int64_t b1) {
    SoftmaxCrossEntropy loss_fn;
    for (int64_t bi = b0; bi < b1; ++bi) {
      const int64_t lo = bi * batch_size;
      const int64_t take = std::min(batch_size, n_samples - lo);
      Batch batch;
      batch.x = Tensor({take, sample[0], sample[1], sample[2]});
      batch.y.resize(static_cast<size_t>(take));
      std::memcpy(batch.x.data(), dataset.images.data() + lo * sample_numel,
                  static_cast<size_t>(take * sample_numel) * sizeof(float));
      for (int64_t i = 0; i < take; ++i) {
        batch.y[static_cast<size_t>(i)] = dataset.labels[static_cast<size_t>(lo + i)];
      }
      const Tensor logits = model.forward(batch.x, /*train=*/false);
      const double b = static_cast<double>(take);
      Partial& p = partials[static_cast<size_t>(bi)];
      p.loss = loss_fn.forward(logits, batch.y) * b;
      p.top1 = topk_accuracy(logits, batch.y, 1) * b;
      p.top5 = topk_accuracy(logits, batch.y, 5) * b;
      p.samples = take;
    }
  });

  // Reduce in batch order — the exact accumulation sequence of the old
  // sequential loop, so the result is bit-identical for any thread count.
  EvalResult result;
  double top1 = 0.0, top5 = 0.0, loss = 0.0;
  for (const Partial& p : partials) {
    loss += p.loss;
    top1 += p.top1;
    top5 += p.top5;
    result.samples += p.samples;
  }
  const double n = static_cast<double>(result.samples);
  result.top1 = top1 / n;
  result.top5 = top5 / n;
  result.loss = loss / n;
  return result;
}

Stats compute_stats(const std::vector<double>& values) {
  Stats s;
  s.n = static_cast<int64_t>(values.size());
  if (s.n == 0) return s;
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  return s;
}

}  // namespace shrinkbench
