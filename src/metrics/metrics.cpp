#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/profile.hpp"
#include "tensor/ops.hpp"

namespace shrinkbench {

ParamCounts count_params(Layer& model) {
  ParamCounts counts;
  for (const Parameter* p : parameters_of(model)) {
    counts.total += p->numel();
    const int64_t nz = ops::count_nonzero(p->mask);
    counts.nonzero += nz;
    if (p->prunable) {
      counts.prunable += p->numel();
      counts.prunable_nonzero += nz;
    }
  }
  return counts;
}

double compression_ratio(Layer& model) {
  const ParamCounts c = count_params(model);
  if (c.nonzero == 0) throw std::logic_error("compression_ratio: fully pruned model");
  return static_cast<double>(c.total) / static_cast<double>(c.nonzero);
}

FlopCounts count_flops(Layer& model, const Shape& sample_shape) {
  return {model.flops(sample_shape), model.effective_flops(sample_shape)};
}

double theoretical_speedup(Layer& model, const Shape& sample_shape) {
  const FlopCounts f = count_flops(model, sample_shape);
  if (f.effective == 0) throw std::logic_error("theoretical_speedup: zero effective FLOPs");
  return static_cast<double>(f.dense) / static_cast<double>(f.effective);
}

double topk_accuracy(const Tensor& logits, const std::vector<int>& labels, int64_t k) {
  const int64_t n = logits.size(0), c = logits.size(1);
  const int64_t kk = std::min(k, c);
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const auto top = ops::topk_indices(
        std::span<const float>(logits.data() + i * c, static_cast<size_t>(c)), kk);
    const int label = labels[static_cast<size_t>(i)];
    if (std::find(top.begin(), top.end(), static_cast<int64_t>(label)) != top.end()) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

EvalResult evaluate(Model& model, const Dataset& dataset, int64_t batch_size) {
  SB_PROFILE_SCOPE("evaluate");
  obs::count("eval.calls");
  DataLoader loader(dataset, batch_size, /*shuffle=*/false, /*seed=*/0);
  SoftmaxCrossEntropy loss_fn;
  EvalResult result;
  double top1 = 0.0, top5 = 0.0, loss = 0.0;
  Batch batch;
  while (loader.next(batch)) {
    const Tensor logits = model.forward(batch.x, /*train=*/false);
    const double b = static_cast<double>(batch.x.size(0));
    loss += loss_fn.forward(logits, batch.y) * b;
    top1 += topk_accuracy(logits, batch.y, 1) * b;
    top5 += topk_accuracy(logits, batch.y, 5) * b;
    result.samples += batch.x.size(0);
  }
  if (result.samples == 0) throw std::invalid_argument("evaluate: empty dataset");
  const double n = static_cast<double>(result.samples);
  result.top1 = top1 / n;
  result.top5 = top5 / n;
  result.loss = loss / n;
  return result;
}

Stats compute_stats(const std::vector<double>& values) {
  Stats s;
  s.n = static_cast<int64_t>(values.size());
  if (s.n == 0) return s;
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  return s;
}

}  // namespace shrinkbench
