// Async inference server over a compiled Executor.
//
// Architecture: callers submit() single samples into a bounded queue
// (blocking when full — closed-loop backpressure, no silent drops); N
// worker threads pull, assemble dynamic batches (flush on max_batch or
// max_wait_us, whichever first), run the executor, and fulfill one
// future per request.
//
// Shutdown mirrors run_sweep's SIGINT drain semantics: shutdown() stops
// admissions (late submit() throws), wakes everything, lets workers
// drain the queue to empty, then joins. Every accepted request's future
// is fulfilled — drain loses zero requests — and shutdown is idempotent,
// so signal handlers and destructors can race it safely.
//
// Observability (zero-overhead when off, like the rest of src/obs):
//   SB_PROF      histograms serve.latency_us / serve.batch_size (the
//                p50/p90/p99 that land in run manifests), counters
//                serve.requests / serve.batches, gauge serve.queue_depth
//   SB_TELEMETRY time series serve.queue_depth / serve.batch_size
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/executor.hpp"

namespace shrinkbench::serve {

struct ServerOptions {
  int workers = 1;            // batch-executing threads
  size_t queue_capacity = 256;
  int64_t max_batch = 8;      // flush when a batch reaches this size...
  int64_t max_wait_us = 2000; // ...or when its oldest request is this old
};

struct ServerStats {
  int64_t submitted = 0;  // accepted into the queue
  int64_t completed = 0;  // futures fulfilled with a result
  int64_t failed = 0;     // futures fulfilled with an exception
  int64_t rejected = 0;   // submit() calls refused after shutdown began
  int64_t batches = 0;
  size_t max_queue_depth = 0;
};

class InferenceServer {
 public:
  /// The executor must outlive the server. Workers start immediately.
  InferenceServer(const Executor& exec, ServerOptions opts);
  ~InferenceServer();  // implies shutdown()

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// sample: one input of exactly sample_shape (no batch dimension).
  /// Blocks while the queue is full; throws std::runtime_error once
  /// shutdown has begun.
  std::future<Tensor> submit(Tensor sample);

  /// Stop admissions, drain, join. Idempotent and safe to call from
  /// multiple threads; returns once all workers have exited.
  void shutdown();

  bool accepting() const;
  ServerStats stats() const;
  const Executor& executor() const { return exec_; }

 private:
  struct Request {
    Tensor sample;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  void run_batch(std::vector<Request>& batch);

  const Executor& exec_;
  const ServerOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable queue_nonempty_;
  std::condition_variable queue_has_space_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  ServerStats stats_;

  std::vector<std::thread> workers_;
  std::once_flag join_once_;
};

}  // namespace shrinkbench::serve
