// Async inference server over a compiled Executor.
//
// Architecture: callers submit() single samples into a bounded queue;
// N worker threads pull, assemble dynamic batches (flush on max_batch or
// max_wait_us, whichever first), run the executor, and fulfill one
// future per request.
//
// Overload & failure discipline (the serving-side analogue of the
// offline pipeline's crash safety):
//
//   * Deadlines — each request carries an optional deadline
//     (ServerOptions::default_deadline_us, or per-submit override).
//     Workers sweep expired requests out of the queue before batch
//     assembly and fulfill them with DeadlineExceeded, so a stale
//     request never wastes executor time and p99 of successes stays
//     bounded by the deadline.
//   * Admission control — a full queue is handled per
//     ServerOptions::overload_policy (env SB_SERVE_OVERLOAD):
//     Block (closed-loop backpressure, the original behavior), Reject
//     (submit fails fast with Overloaded), or DropOldest (the stalest
//     queued request is shed with Overloaded to admit the new one).
//   * Circuit breaker — breaker_threshold consecutive executor failures
//     (exceptions, or non-finite outputs when check_finite is on) trip
//     the breaker open; batches then route to the optional fallback
//     executor (e.g. the dense baseline when a sparse path faults) and
//     are counted as degraded. Every breaker_probe_every-th open-state
//     batch is a half-open probe on the primary; one success closes the
//     breaker. With no fallback, open-state batches fail fast.
//   * Watchdog — a monitor thread (stall_timeout_ms > 0) detects a
//     worker stuck inside exec.forward(), logs the thread + batch age,
//     marks the status.json heartbeat degraded, and fails the stalled
//     batch's futures when the call finally returns.
//
// Shutdown mirrors run_sweep's SIGINT drain semantics: shutdown() stops
// admissions (late submit() throws), wakes everything, lets workers
// drain the queue to empty, then joins. Every accepted request's future
// is fulfilled exactly once — drain loses zero requests, and the drain
// never sheds (DropOldest only acts on live submissions) — and shutdown
// is idempotent, so signal handlers and destructors can race it safely.
//
// Observability (zero-overhead when off, like the rest of src/obs):
//   SB_PROF      histograms serve.latency_us / serve.batch_size (every
//                fulfilled request, including exception fulfillments, so
//                p99 under faults is honest), counters serve.requests /
//                serve.batches / serve.shed / serve.rejected_overload /
//                serve.deadline_exceeded / serve.degraded_batches /
//                serve.exec_failures / serve.stalls, gauges
//                serve.queue_depth (updated on every enqueue, dequeue,
//                and shed) and serve.breaker_state (0 closed, 1 open,
//                2 half-open)
//   SB_TELEMETRY time series serve.queue_depth / serve.batch_size and a
//                "serve" heartbeat block (+ top-level degraded flag)
//
// Fault sites (deterministic, SB_FAULT): serve.exec_throw throws out of
// the primary executor call, serve.exec_nan poisons its output with a
// NaN (caught when check_finite is on), serve.worker_stall parks the
// executor call long enough for the watchdog to fire.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/executor.hpp"

namespace shrinkbench::serve {

/// What submit() does when the queue is at capacity.
enum class OverloadPolicy {
  Block,      // wait for space (closed-loop backpressure)
  Reject,     // throw Overloaded immediately (fail fast)
  DropOldest, // shed the stalest queued request to admit the new one
};

std::string to_string(OverloadPolicy policy);
OverloadPolicy overload_policy_from_name(const std::string& name);

/// Request refused or shed because the queue was full.
struct Overloaded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Request expired in-queue before a worker could batch it.
struct DeadlineExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ServerOptions {
  int workers = 1;            // batch-executing threads
  size_t queue_capacity = 256;
  int64_t max_batch = 8;      // flush when a batch reaches this size...
  int64_t max_wait_us = 2000; // ...or when its oldest request is this old

  /// Admission policy for a full queue. Unset falls back to
  /// SB_SERVE_OVERLOAD (block|reject|drop-oldest), then Block.
  std::optional<OverloadPolicy> overload_policy;

  /// Deadline applied to requests submitted without an explicit one.
  /// 0 = no deadline. Unset falls back to SB_SERVE_DEADLINE_US, then 0.
  std::optional<int64_t> default_deadline_us;

  /// Consecutive primary-executor failures that trip the breaker open.
  /// 0 disables the breaker (failures just fail their batch).
  int breaker_threshold = 3;
  /// While open, every Nth batch is a half-open probe on the primary.
  int64_t breaker_probe_every = 8;
  /// Optional degraded-mode executor (must outlive the server and share
  /// the primary's sample shape). Routed to while the breaker is open,
  /// and retried immediately when a primary batch fails.
  const Executor* fallback = nullptr;
  /// Treat non-finite primary outputs as executor failures.
  bool check_finite = false;

  /// Watchdog threshold for a single exec.forward() call; 0 disables
  /// the watchdog thread entirely.
  int64_t stall_timeout_ms = 0;
};

/// serve.breaker_state gauge values.
enum class BreakerState { Closed = 0, Open = 1, HalfOpen = 2 };

struct ServerStats {
  int64_t submitted = 0;  // accepted into the queue
  int64_t completed = 0;  // futures fulfilled with a result
  int64_t failed = 0;     // futures fulfilled with an exception (any kind)
  int64_t rejected = 0;   // submit() calls refused after shutdown began
  int64_t rejected_overload = 0;  // submit() calls refused by Reject
  int64_t shed = 0;               // queued requests dropped by DropOldest
  int64_t deadline_exceeded = 0;  // requests expired in-queue
  int64_t exec_failures = 0;      // primary executor batch failures
  int64_t degraded_batches = 0;   // batches served by the fallback
  int64_t breaker_trips = 0;      // closed -> open transitions
  int64_t stalls = 0;             // watchdog-detected stuck batches
  int64_t batches = 0;            // batches fulfilled (primary or fallback)
  size_t max_queue_depth = 0;
  BreakerState breaker_state = BreakerState::Closed;
};

class InferenceServer {
 public:
  /// The executor (and any opts.fallback) must outlive the server.
  /// Workers start immediately.
  InferenceServer(const Executor& exec, ServerOptions opts);
  ~InferenceServer();  // implies shutdown()

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// sample: one input of exactly sample_shape (no batch dimension).
  /// deadline_us: < 0 uses the server default, 0 means no deadline.
  /// Full-queue behavior follows the overload policy: Block waits,
  /// Reject throws Overloaded, DropOldest sheds the oldest queued
  /// request. Throws std::runtime_error once shutdown has begun.
  std::future<Tensor> submit(Tensor sample, int64_t deadline_us = -1);

  /// Stop admissions, drain, join workers + watchdog. Idempotent and
  /// safe to call from multiple threads; returns once all workers have
  /// exited.
  void shutdown();

  bool accepting() const;
  ServerStats stats() const;
  const Executor& executor() const { return exec_; }
  OverloadPolicy overload_policy() const { return policy_; }
  int64_t default_deadline_us() const { return default_deadline_us_; }

 private:
  struct Request {
    Tensor sample;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  // epoch = none
    bool has_deadline = false;
  };

  /// Per-worker slot the watchdog inspects: when did the worker enter
  /// the executor, and has the watchdog already flagged that call.
  struct WorkerWatch {
    std::chrono::steady_clock::time_point busy_since;
    bool in_exec = false;
    bool stalled = false;
  };

  void worker_loop(int worker_index);
  void watchdog_loop();
  void run_batch(std::vector<Request>& batch, int worker_index);
  /// Fulfills every request in `batch` with one row of `y`, recording
  /// latency/batch metrics (+ degraded accounting for fallback batches).
  void fulfill_batch(std::vector<Request>& batch, const Tensor& y, bool degraded);
  /// Fulfills every request in `batch` with `err`, recording latency +
  /// request counters (failures are observed too — p99 stays honest).
  void fail_batch(std::vector<Request>& batch, std::exception_ptr err,
                  const char* counter = nullptr);
  /// Primary executor call wrapped with the serve fault sites, watchdog
  /// bookkeeping (*stalled reports the watchdog's verdict for this call,
  /// set even on the exception path), and the optional non-finite output
  /// check. Throws on (injected) failure.
  Tensor run_primary(const Tensor& x, int worker_index, bool* stalled);
  void publish_queue_depth(size_t depth);
  void publish_serve_status();
  /// Locked helpers for breaker bookkeeping.
  void trip_breaker_locked();
  void close_breaker_locked();

  const Executor& exec_;
  const ServerOptions opts_;
  OverloadPolicy policy_ = OverloadPolicy::Block;
  int64_t default_deadline_us_ = 0;

  mutable std::mutex mu_;
  std::condition_variable queue_nonempty_;
  std::condition_variable queue_has_space_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  ServerStats stats_;

  // Circuit breaker (guarded by mu_).
  BreakerState breaker_ = BreakerState::Closed;
  int consecutive_failures_ = 0;
  int64_t open_batches_ = 0;  // batches handled since the breaker opened

  // Watchdog (guarded by watch_mu_ so the monitor never contends with
  // the queue lock while a worker holds it across an executor call).
  mutable std::mutex watch_mu_;
  std::vector<WorkerWatch> watch_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::once_flag join_once_;
};

}  // namespace shrinkbench::serve
