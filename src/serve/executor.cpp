#include "serve/executor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"
#include "nn/sparse.hpp"
#include "obs/profile.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "tensor/threadpool.hpp"
#include "tensor/workspace.hpp"

namespace shrinkbench::serve {

namespace {

// Same per-chunk work floor as the dense nn kernels: every parallel_for
// below partitions disjoint output slices, so fan-out never changes bits.
constexpr int64_t kMinElemsPerChunk = int64_t{1} << 16;

int64_t work_grain(int64_t per_index_elems) {
  return std::max<int64_t>(1, kMinElemsPerChunk / std::max<int64_t>(per_index_elems, 1));
}

// Same per-tile channel floor as Conv2d's fused grid (see nn/conv2d.cpp).
constexpr int64_t kMinOcPerTile = 4;

// ---------------------------------------------------------------------------
// Compiled convolution: one op covers all three modes. Weights are stored
// flattened to [rows, in_c*k*k]; `row_of[c]` maps output channel c to its
// weight row (-1 = dead channel, output is the constant `fill[c]`).
class ConvOp : public Op {
 public:
  ExecMode mode = ExecMode::Dense;
  int64_t in_c = 0, out_c = 0, kernel = 1, stride = 1, pad = 0;
  Tensor dense_w;                 // Dense/Shrunk: [rows, col_rows]
  CsrMatrix csr_w;                // Csr: [out_c, col_rows]
  std::vector<int32_t> row_of;    // out_c entries; -1 = dead
  std::vector<float> bias;        // out_c entries, empty = no bias add
  std::vector<float> fill;        // out_c entries: dead-channel constant

  Tensor run(const Tensor& x) const override {
    if (x.dim() != 4 || x.size(1) != in_c) {
      throw std::invalid_argument("serve::ConvOp: bad input " + shrinkbench::to_string(x.shape()));
    }
    const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
    const ConvGeometry g{in_c, h, w, kernel, kernel, stride, pad};
    const int64_t oh = g.out_h(), ow = g.out_w();
    const int64_t spatial = oh * ow;
    const int64_t ld = n * g.col_cols();
    const int64_t image_numel = in_c * h * w;
    const int64_t col_rows = g.col_rows();
    Tensor y({n, out_c, oh, ow});
    const float* b = bias.empty() ? nullptr : bias.data();

    if (mode == ExecMode::Csr) {
      // CSR keeps the monolithic lowering: csr_matmul already
      // parallelizes over its rows, so batch-1 saturates the pool
      // without the fused grid.
      Workspace::Scope scope;
      Workspace& ws = Workspace::tls();
      float* cols = ws.floats(static_cast<size_t>(col_rows * ld));
      parallel_for(0, n, work_grain(col_rows * spatial), [&](int64_t n0, int64_t n1) {
        for (int64_t i = n0; i < n1; ++i) {
          im2col_ld(g, x.data() + i * image_numel, cols + i * spatial, ld);
        }
      });
      float* out_cm = ws.floats(static_cast<size_t>(std::max<int64_t>(csr_w.rows, 1) * ld));
      csr_matmul(csr_w, cols, ld, out_cm);
      parallel_for(0, n, work_grain(out_c * spatial), [&](int64_t n0, int64_t n1) {
        for (int64_t i = n0; i < n1; ++i) {
          for (int64_t c = 0; c < out_c; ++c) {
            float* dst = y.data() + (i * out_c + c) * spatial;
            const int32_t r = row_of[static_cast<size_t>(c)];
            if (r < 0) {
              std::fill(dst, dst + spatial, fill[static_cast<size_t>(c)]);
              continue;
            }
            const float* src = out_cm + static_cast<int64_t>(r) * ld + i * spatial;
            if (b == nullptr) {
              std::copy(src, src + spatial, dst);
            } else {
              const float bc = b[c];
              for (int64_t s = 0; s < spatial; ++s) dst[s] = src[s] + bc;
            }
          }
        }
      });
      return y;
    }

    // Dense/Shrunk: the same fused (sample × out-channel-tile) schedule
    // as Conv2d::forward, so serving inherits batch-1 scaling. row_of is
    // monotone over live channels, so a channel tile's live rows form
    // one contiguous span of the packed weight matrix and the tile GEMM
    // runs over exactly that span; dead channels take the fill path.
    const Grid2d grid(n, out_c, 1, kMinOcPerTile, ThreadPool::instance().threads());
    parallel_for(0, grid.tiles(), 1, [&](int64_t t_lo, int64_t t_hi) {
      Workspace& ws = Workspace::tls();
      int64_t t = t_lo;
      while (t < t_hi) {
        const int64_t i0 = grid.tile0(t);
        const Grid2d::Range s = grid.range0(i0);
        const int64_t row_end = std::min(t_hi, (i0 + 1) * grid.tiles1());
        const int64_t tile_ld = (s.hi - s.lo) * spatial;
        Workspace::Scope stage;  // LIFO: reclaimed before the next sample range
        float* cols = ws.floats(static_cast<size_t>(col_rows * tile_ld));
        for (int64_t i = s.lo; i < s.hi; ++i) {
          im2col_ld(g, x.data() + i * image_numel, cols + (i - s.lo) * spatial, tile_ld);
        }
        for (; t < row_end; ++t) {
          const Grid2d::Range cr = grid.range1(grid.tile1(t));
          int64_t r_lo = -1, r_hi = -1;
          for (int64_t c = cr.lo; c < cr.hi; ++c) {
            const int32_t r = row_of[static_cast<size_t>(c)];
            if (r < 0) continue;
            if (r_lo < 0) r_lo = r;
            r_hi = r + 1;
          }
          Workspace::Scope out_scope;
          float* out_cm = nullptr;
          if (r_lo >= 0) {
            out_cm = ws.floats(static_cast<size_t>((r_hi - r_lo) * tile_ld));
            gemm(false, false, r_hi - r_lo, tile_ld, col_rows, 1.0f,
                 dense_w.data() + r_lo * col_rows, col_rows, cols, tile_ld, 0.0f, out_cm,
                 tile_ld);
          }
          for (int64_t c = cr.lo; c < cr.hi; ++c) {
            const int32_t r = row_of[static_cast<size_t>(c)];
            for (int64_t i = s.lo; i < s.hi; ++i) {
              float* dst = y.data() + (i * out_c + c) * spatial;
              if (r < 0) {
                std::fill(dst, dst + spatial, fill[static_cast<size_t>(c)]);
                continue;
              }
              const float* src = out_cm + (r - r_lo) * tile_ld + (i - s.lo) * spatial;
              if (b == nullptr) {
                std::copy(src, src + spatial, dst);
              } else {
                const float bc = b[c];
                for (int64_t sp = 0; sp < spatial; ++sp) dst[sp] = src[sp] + bc;
              }
            }
          }
        }
      }
    });
    return y;
  }
};

// Compiled fully-connected layer; same row-packing story as ConvOp.
class LinearOp : public Op {
 public:
  ExecMode mode = ExecMode::Dense;
  int64_t in = 0, out = 0;
  Tensor dense_w;                 // Dense/Shrunk: [rows, in]
  CsrMatrix csr_w;                // Csr: [out, in]
  std::vector<int32_t> row_of;    // out entries; -1 = dead
  std::vector<float> bias;        // out entries, empty = no bias
  std::vector<float> fill;        // out entries: dead-output constant

  Tensor run(const Tensor& x) const override {
    if (x.dim() != 2 || x.size(1) != in) {
      throw std::invalid_argument("serve::LinearOp: bad input " + shrinkbench::to_string(x.shape()));
    }
    const int64_t n = x.size(0);
    Tensor y({n, out});

    if (mode == ExecMode::Dense) {
      // Byte-for-byte the Linear::forward eval path (bias fused via the
      // beta = 1 GEMM epilogue).
      if (!bias.empty()) {
        float* yp = y.data();
        for (int64_t i = 0; i < n; ++i) std::copy(bias.begin(), bias.end(), yp + i * out);
      }
      gemm(false, /*trans_b=*/true, n, out, in, 1.0f, x.data(), in, dense_w.data(), in,
           bias.empty() ? 0.0f : 1.0f, y.data(), out);
      return y;
    }

    Workspace::Scope scope;
    Workspace& ws = Workspace::tls();
    if (mode == ExecMode::Csr) {
      // Transpose so CSR rows stream over the batch (nn/sparse idiom).
      float* xt = ws.floats(static_cast<size_t>(in * n));
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < in; ++j) xt[static_cast<size_t>(j * n + i)] = x(i, j);
      }
      float* yt = ws.floats(static_cast<size_t>(out * n));
      csr_matmul(csr_w, xt, n, yt);
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < out; ++j) y(i, j) = yt[static_cast<size_t>(j * n + i)];
      }
      if (!bias.empty()) {
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t j = 0; j < out; ++j) y(i, j) += bias[static_cast<size_t>(j)];
        }
      }
      return y;
    }

    // Shrunk: GEMM over live rows only, scatter into the full width.
    const int64_t rows = dense_w.size(0);
    float* y_live = ws.floats(static_cast<size_t>(n * std::max<int64_t>(rows, 1)));
    if (rows > 0) {
      gemm(false, /*trans_b=*/true, n, rows, in, 1.0f, x.data(), in, dense_w.data(), in, 0.0f,
           y_live, rows);
    }
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < out; ++j) {
        const int32_t r = row_of[static_cast<size_t>(j)];
        float v = r < 0 ? fill[static_cast<size_t>(j)] : y_live[i * rows + r];
        if (r >= 0 && !bias.empty()) v += bias[static_cast<size_t>(j)];
        y(i, j) = v;
      }
    }
    return y;
  }
};

// Standalone eval-mode batch norm (Dense mode, and pre-activation nets
// whose BN has no preceding conv to fold into). Mirrors the eval branch
// of BatchNorm2d::forward exactly, for bit parity in Dense mode.
class BnOp : public Op {
 public:
  int64_t channels = 0;
  std::vector<float> mean, inv_std, gamma, beta;

  Tensor run(const Tensor& x) const override {
    if (x.dim() != 4 || x.size(1) != channels) {
      throw std::invalid_argument("serve::BnOp: bad input " + shrinkbench::to_string(x.shape()));
    }
    const int64_t n = x.size(0), spatial = x.size(2) * x.size(3);
    Tensor y(x.shape());
    parallel_for(0, n * channels, work_grain(spatial), [&](int64_t p0, int64_t p1) {
      for (int64_t p = p0; p < p1; ++p) {
        const size_t c = static_cast<size_t>(p % channels);
        const float* src = x.data() + p * spatial;
        float* dst = y.data() + p * spatial;
        const float m = mean[c], is = inv_std[c], g = gamma[c], b = beta[c];
        for (int64_t k = 0; k < spatial; ++k) dst[k] = g * ((src[k] - m) * is) + b;
      }
    });
    return y;
  }
};

class ReluOp : public Op {
 public:
  Tensor run(const Tensor& x) const override {
    Tensor y = x;
    for (float& v : y.flat()) {
      if (v < 0.0f) v = 0.0f;
    }
    return y;
  }
};

class FlattenOp : public Op {
 public:
  Tensor run(const Tensor& x) const override { return x.reshaped({x.size(0), -1}); }
};

class MaxPoolOp : public Op {
 public:
  int64_t kernel = 1, stride = 1;

  Tensor run(const Tensor& x) const override {
    const int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    const int64_t oh = (h - kernel) / stride + 1, ow = (w - kernel) / stride + 1;
    Tensor y({n, c, oh, ow});
    int64_t out_idx = 0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* plane = x.data() + (i * c + ch) * h * w;
        for (int64_t oy = 0; oy < oh; ++oy) {
          for (int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
            float best = plane[(oy * stride) * w + ox * stride];
            for (int64_t ky = 0; ky < kernel; ++ky) {
              for (int64_t kx = 0; kx < kernel; ++kx) {
                const float v = plane[(oy * stride + ky) * w + ox * stride + kx];
                if (v > best) best = v;
              }
            }
            y.at(out_idx) = best;
          }
        }
      }
    }
    return y;
  }
};

class AvgPoolOp : public Op {
 public:
  int64_t kernel = 1, stride = 1;

  Tensor run(const Tensor& x) const override {
    const int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    const int64_t oh = (h - kernel) / stride + 1, ow = (w - kernel) / stride + 1;
    Tensor y({n, c, oh, ow});
    const float inv = 1.0f / static_cast<float>(kernel * kernel);
    int64_t out_idx = 0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* plane = x.data() + (i * c + ch) * h * w;
        for (int64_t oy = 0; oy < oh; ++oy) {
          for (int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
            float s = 0.0f;
            for (int64_t ky = 0; ky < kernel; ++ky) {
              for (int64_t kx = 0; kx < kernel; ++kx) {
                s += plane[(oy * stride + ky) * w + ox * stride + kx];
              }
            }
            y.at(out_idx) = s * inv;
          }
        }
      }
    }
    return y;
  }
};

class GlobalAvgPoolOp : public Op {
 public:
  Tensor run(const Tensor& x) const override {
    const int64_t n = x.size(0), c = x.size(1), spatial = x.size(2) * x.size(3);
    Tensor y({n, c});
    const float inv = 1.0f / static_cast<float>(spatial);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* src = x.data() + (i * c + ch) * spatial;
        double s = 0.0;
        for (int64_t k = 0; k < spatial; ++k) s += src[k];
        y(i, ch) = static_cast<float>(s) * inv;
      }
    }
    return y;
  }
};

class ResidualOp : public Op {
 public:
  std::vector<std::unique_ptr<Op>> main_ops;
  std::vector<std::unique_ptr<Op>> shortcut_ops;  // empty = identity
  bool final_relu = true;

  Tensor run(const Tensor& x) const override {
    Tensor m = x;
    for (const auto& op : main_ops) m = op->run(m);
    if (!shortcut_ops.empty()) {
      Tensor s = x;
      for (const auto& op : shortcut_ops) s = op->run(s);
      ops::add_inplace(m, s);
    } else {
      ops::add_inplace(m, x);
    }
    if (final_relu) {
      for (float& v : m.flat()) {
        if (v < 0.0f) v = 0.0f;
      }
    }
    return m;
  }
};

// ---------------------------------------------------------------------------
// Compilation.

struct FoldedBn {
  std::vector<float> scale;  // gamma / sqrt(var + eps), per channel
  std::vector<float> shift;  // beta - mean * scale contribution target
  std::vector<float> mean;
};

FoldedBn bn_constants(BatchNorm2d& bn) {
  const int64_t c = bn.running_mean().numel();
  FoldedBn f;
  f.scale.resize(static_cast<size_t>(c));
  f.shift.resize(static_cast<size_t>(c));
  f.mean.resize(static_cast<size_t>(c));
  for (int64_t i = 0; i < c; ++i) {
    const float is = 1.0f / std::sqrt(bn.running_var().at(i) + bn.eps());
    f.scale[static_cast<size_t>(i)] = bn.gamma().data.at(i) * is;
    f.shift[static_cast<size_t>(i)] = bn.beta().data.at(i);
    f.mean[static_cast<size_t>(i)] = bn.running_mean().at(i);
  }
  return f;
}

class Compiler {
 public:
  explicit Compiler(ExecMode mode) : mode_(mode) {}

  void emit_sequential(Sequential& seq, std::vector<std::unique_ptr<Op>>& ops) {
    const std::vector<Layer*> kids = seq.children();
    for (size_t i = 0; i < kids.size(); ++i) {
      Layer* layer = kids[i];
      if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
        BatchNorm2d* bn = nullptr;
        if (mode_ != ExecMode::Dense && i + 1 < kids.size()) {
          bn = dynamic_cast<BatchNorm2d*>(kids[i + 1]);
        }
        ops.push_back(make_conv(*conv, bn));
        if (bn != nullptr) ++i;  // consumed by the fold
      } else if (auto* linear = dynamic_cast<Linear*>(layer)) {
        ops.push_back(make_linear(*linear));
      } else if (auto* bn = dynamic_cast<BatchNorm2d*>(layer)) {
        ops.push_back(make_bn(*bn));
      } else if (dynamic_cast<ReLU*>(layer) != nullptr) {
        ops.push_back(std::make_unique<ReluOp>());
      } else if (dynamic_cast<Flatten*>(layer) != nullptr) {
        ops.push_back(std::make_unique<FlattenOp>());
      } else if (dynamic_cast<Dropout*>(layer) != nullptr) {
        // Inverted dropout: eval forward is the identity.
      } else if (auto* mp = dynamic_cast<MaxPool2d*>(layer)) {
        auto op = std::make_unique<MaxPoolOp>();
        op->kernel = mp->kernel();
        op->stride = mp->stride();
        ops.push_back(std::move(op));
      } else if (auto* ap = dynamic_cast<AvgPool2d*>(layer)) {
        auto op = std::make_unique<AvgPoolOp>();
        op->kernel = ap->kernel();
        op->stride = ap->stride();
        ops.push_back(std::move(op));
      } else if (dynamic_cast<GlobalAvgPool*>(layer) != nullptr) {
        ops.push_back(std::make_unique<GlobalAvgPoolOp>());
      } else if (auto* res = dynamic_cast<ResidualBlock*>(layer)) {
        auto op = std::make_unique<ResidualOp>();
        op->final_relu = res->final_relu();
        emit_sequential(*res->main(), op->main_ops);
        if (res->shortcut() != nullptr) emit_sequential(*res->shortcut(), op->shortcut_ops);
        ops.push_back(std::move(op));
      } else if (auto* inner = dynamic_cast<Sequential*>(layer)) {
        emit_sequential(*inner, ops);
      } else {
        throw std::invalid_argument("serve::compile: unsupported layer '" + layer->name() + "'");
      }
    }
  }

 private:
  std::unique_ptr<Op> make_conv(Conv2d& conv, BatchNorm2d* bn) {
    const int64_t oc = conv.out_channels();
    const int64_t col_rows = conv.in_channels() * conv.kernel() * conv.kernel();
    auto op = std::make_unique<ConvOp>();
    op->mode = mode_;
    op->in_c = conv.in_channels();
    op->out_c = oc;
    op->kernel = conv.kernel();
    op->stride = conv.stride();
    op->pad = conv.padding();

    Tensor w = conv.weight().data.clone().reshaped({oc, col_rows});
    if (mode_ != ExecMode::Dense) ops::mul_inplace(w, conv.weight().mask.reshaped({oc, col_rows}));
    std::vector<float> b;
    if (conv.bias() != nullptr) {
      b.assign(conv.bias()->data.flat().begin(), conv.bias()->data.flat().end());
    }
    if (bn != nullptr) {
      // y = gamma * (conv(x) + b - mean) * inv_std + beta
      //   = (gamma * inv_std) * conv(x) + [(b - mean) * gamma * inv_std + beta]
      const FoldedBn f = bn_constants(*bn);
      if (b.empty()) b.assign(static_cast<size_t>(oc), 0.0f);
      for (int64_t c = 0; c < oc; ++c) {
        const size_t sc = static_cast<size_t>(c);
        float* row = w.data() + c * col_rows;
        for (int64_t j = 0; j < col_rows; ++j) row[j] *= f.scale[sc];
        b[sc] = (b[sc] - f.mean[sc]) * f.scale[sc] + f.shift[sc];
      }
    }
    op->bias = std::move(b);
    pack_rows(*op, w, oc, col_rows);
    return op;
  }

  std::unique_ptr<Op> make_linear(Linear& linear) {
    const int64_t out = linear.out_features(), in = linear.in_features();
    auto op = std::make_unique<LinearOp>();
    op->mode = mode_;
    op->in = in;
    op->out = out;
    Tensor w = linear.weight().data.clone();
    if (mode_ != ExecMode::Dense) ops::mul_inplace(w, linear.weight().mask);
    if (linear.bias() != nullptr) {
      op->bias.assign(linear.bias()->data.flat().begin(), linear.bias()->data.flat().end());
    }
    pack_rows(*op, w, out, in);
    return op;
  }

  std::unique_ptr<Op> make_bn(BatchNorm2d& bn) {
    auto op = std::make_unique<BnOp>();
    op->channels = bn.running_mean().numel();
    const int64_t c = op->channels;
    op->mean.resize(static_cast<size_t>(c));
    op->inv_std.resize(static_cast<size_t>(c));
    op->gamma.resize(static_cast<size_t>(c));
    op->beta.resize(static_cast<size_t>(c));
    for (int64_t i = 0; i < c; ++i) {
      const size_t si = static_cast<size_t>(i);
      op->mean[si] = bn.running_mean().at(i);
      op->inv_std[si] = 1.0f / std::sqrt(bn.running_var().at(i) + bn.eps());
      op->gamma[si] = bn.gamma().data.at(i);
      op->beta[si] = bn.beta().data.at(i);
    }
    return op;
  }

  // Stores the weight matrix into the op according to mode: full dense,
  // CSR, or live-row-packed dense with the dead-channel fill constants.
  template <typename OpT>
  void pack_rows(OpT& op, const Tensor& w, int64_t rows, int64_t cols) {
    op.row_of.resize(static_cast<size_t>(rows));
    op.fill.assign(static_cast<size_t>(rows), 0.0f);
    if (mode_ != ExecMode::Shrunk) {
      for (int64_t r = 0; r < rows; ++r) op.row_of[static_cast<size_t>(r)] = static_cast<int32_t>(r);
      if (mode_ == ExecMode::Csr) {
        op.csr_w = csr_from_dense(w.data(), rows, cols);
      } else {
        op.dense_w = w;
      }
      return;
    }
    // Shrunk: drop all-zero rows from the GEMM. A dead channel's output
    // is exactly its bias constant (the folded weight row is zero), so
    // the scatter reconstructs the full-width activation and downstream
    // ops — residual adds included — see full tensors.
    std::vector<int32_t> live;
    for (int64_t r = 0; r < rows; ++r) {
      const float* row = w.data() + r * cols;
      const bool dead = std::all_of(row, row + cols, [](float v) { return v == 0.0f; });
      if (dead) {
        op.row_of[static_cast<size_t>(r)] = -1;
        op.fill[static_cast<size_t>(r)] =
            op.bias.empty() ? 0.0f : op.bias[static_cast<size_t>(r)];
      } else {
        op.row_of[static_cast<size_t>(r)] = static_cast<int32_t>(live.size());
        live.push_back(static_cast<int32_t>(r));
      }
    }
    op.dense_w = Tensor({static_cast<int64_t>(live.size()), cols});
    for (size_t i = 0; i < live.size(); ++i) {
      const float* src = w.data() + static_cast<int64_t>(live[i]) * cols;
      std::copy(src, src + cols, op.dense_w.data() + static_cast<int64_t>(i) * cols);
    }
  }

  ExecMode mode_;
};

}  // namespace

std::string to_string(ExecMode mode) {
  switch (mode) {
    case ExecMode::Dense: return "dense";
    case ExecMode::Csr: return "csr";
    case ExecMode::Shrunk: return "shrunk";
  }
  return "?";
}

ExecMode exec_mode_from_name(const std::string& name) {
  if (name == "dense") return ExecMode::Dense;
  if (name == "csr") return ExecMode::Csr;
  if (name == "shrunk") return ExecMode::Shrunk;
  throw std::invalid_argument("unknown exec mode '" + name + "' (dense|csr|shrunk)");
}

Tensor Executor::forward(const Tensor& x) const {
  SB_PROFILE_SCOPE("serve.exec");
  if (x.dim() < 2) {
    throw std::invalid_argument("serve::Executor: input must be batched, got " +
                                shrinkbench::to_string(x.shape()));
  }
  Tensor h = x;
  for (const auto& op : ops_) h = op->run(h);
  return h;
}

Executor compile(Sequential& model, const Shape& sample_shape, ExecMode mode) {
  Executor exec;
  exec.mode_ = mode;
  exec.sample_shape_ = sample_shape;
  // Validates the shape (throws on mismatch) and freezes the speedup
  // accounting the bench reports against measured wall-clock.
  exec.flops_dense_ = model.flops(sample_shape);
  exec.flops_effective_ = model.effective_flops(sample_shape);
  Compiler compiler(mode);
  compiler.emit_sequential(model, exec.ops_);
  return exec;
}

}  // namespace shrinkbench::serve
