#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "tensor/threadpool.hpp"

namespace shrinkbench::serve {

InferenceServer::InferenceServer(const Executor& exec, ServerOptions opts)
    : exec_(exec), opts_(opts) {
  if (opts_.workers < 1 || opts_.max_batch < 1 || opts_.queue_capacity < 1) {
    throw std::invalid_argument("InferenceServer: workers, max_batch and queue_capacity must be >= 1");
  }
  workers_.reserve(static_cast<size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<Tensor> InferenceServer::submit(Tensor sample) {
  if (sample.shape() != exec_.sample_shape()) {
    throw std::invalid_argument("submit: sample shape " + shrinkbench::to_string(sample.shape()) +
                                " != compiled shape " + shrinkbench::to_string(exec_.sample_shape()));
  }
  Request req;
  req.sample = std::move(sample);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<Tensor> fut = req.promise.get_future();

  size_t depth;
  {
    std::unique_lock<std::mutex> lk(mu_);
    queue_has_space_.wait(lk, [&] { return stopping_ || queue_.size() < opts_.queue_capacity; });
    if (stopping_) {
      ++stats_.rejected;
      throw std::runtime_error("InferenceServer: shutting down, request rejected");
    }
    queue_.push_back(std::move(req));
    ++stats_.submitted;
    depth = queue_.size();
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
  }
  queue_nonempty_.notify_one();
  if (obs::profiling_enabled()) obs::set_gauge("serve.queue_depth", static_cast<double>(depth));
  if (obs::telemetry_enabled()) {
    obs::Telemetry::instance().record("serve.queue_depth", static_cast<double>(depth));
  }
  return fut;
}

void InferenceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  queue_nonempty_.notify_all();
  queue_has_space_.notify_all();
  // call_once also makes concurrent shutdown() calls block until the
  // drain + join has actually finished, not just been started.
  std::call_once(join_once_, [this] {
    for (std::thread& t : workers_) t.join();
  });
}

bool InferenceServer::accepting() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !stopping_;
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void InferenceServer::worker_loop() {
  // With several workers, parallelism lives at the batch level and the
  // kernels inside run inline-serial (the run_sweep shard-crew pattern);
  // a single worker instead lets each kernel fan out over the pool.
  std::optional<ThreadPool::SerialGuard> guard;
  if (opts_.workers > 1) guard.emplace();

  std::vector<Request> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_nonempty_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained

      // Dynamic batching: flush when full, or when the oldest request
      // has waited max_wait_us.
      const auto deadline =
          queue_.front().enqueued + std::chrono::microseconds(opts_.max_wait_us);
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      queue_has_space_.notify_one();
      while (static_cast<int64_t>(batch.size()) < opts_.max_batch) {
        if (!queue_.empty()) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
          queue_has_space_.notify_one();
          continue;
        }
        if (stopping_) break;  // draining: never wait for more arrivals
        if (queue_nonempty_.wait_until(lk, deadline) == std::cv_status::timeout) break;
      }
    }
    run_batch(batch);
  }
}

void InferenceServer::run_batch(std::vector<Request>& batch) {
  const int64_t b = static_cast<int64_t>(batch.size());
  Shape in_shape{b};
  in_shape.insert(in_shape.end(), exec_.sample_shape().begin(), exec_.sample_shape().end());
  Tensor x(in_shape);
  const int64_t sample_numel = x.numel() / b;
  for (int64_t i = 0; i < b; ++i) {
    const Tensor& s = batch[static_cast<size_t>(i)].sample;
    std::copy(s.data(), s.data() + sample_numel, x.data() + i * sample_numel);
  }

  Tensor y;
  try {
    y = exec_.forward(x);
  } catch (...) {
    for (Request& r : batch) r.promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lk(mu_);
    stats_.failed += b;
    ++stats_.batches;
    return;
  }

  Shape row_shape(y.shape().begin() + 1, y.shape().end());
  const int64_t row_numel = y.numel() / b;
  const auto now = std::chrono::steady_clock::now();
  const bool prof = obs::profiling_enabled();
  for (int64_t i = 0; i < b; ++i) {
    Request& r = batch[static_cast<size_t>(i)];
    Tensor row(row_shape);
    std::copy(y.data() + i * row_numel, y.data() + (i + 1) * row_numel, row.data());
    r.promise.set_value(std::move(row));
    if (prof) {
      const double us =
          std::chrono::duration<double, std::micro>(now - r.enqueued).count();
      obs::observe("serve.latency_us", us);
    }
  }
  if (prof) {
    obs::observe("serve.batch_size", static_cast<double>(b));
    obs::count("serve.requests", b);
    obs::count("serve.batches");
  }
  if (obs::telemetry_enabled()) {
    obs::Telemetry::instance().record("serve.batch_size", static_cast<double>(b));
  }
  std::lock_guard<std::mutex> lk(mu_);
  stats_.completed += b;
  ++stats_.batches;
}

}  // namespace shrinkbench::serve
