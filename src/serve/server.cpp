#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <stdexcept>

#include "obs/io.hpp"
#include "obs/log.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "tensor/threadpool.hpp"

namespace shrinkbench::serve {

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double, std::micro>(now - start).count();
}

}  // namespace

std::string to_string(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::Block: return "block";
    case OverloadPolicy::Reject: return "reject";
    case OverloadPolicy::DropOldest: return "drop-oldest";
  }
  return "block";
}

OverloadPolicy overload_policy_from_name(const std::string& name) {
  if (name == "block") return OverloadPolicy::Block;
  if (name == "reject") return OverloadPolicy::Reject;
  if (name == "drop-oldest" || name == "drop_oldest" || name == "dropoldest") {
    return OverloadPolicy::DropOldest;
  }
  throw std::invalid_argument("unknown overload policy '" + name +
                              "' (expected block | reject | drop-oldest)");
}

InferenceServer::InferenceServer(const Executor& exec, ServerOptions opts)
    : exec_(exec), opts_(std::move(opts)) {
  if (opts_.workers < 1 || opts_.max_batch < 1 || opts_.queue_capacity < 1) {
    throw std::invalid_argument("InferenceServer: workers, max_batch and queue_capacity must be >= 1");
  }
  if (opts_.breaker_threshold < 0 || opts_.breaker_probe_every < 1 ||
      opts_.stall_timeout_ms < 0 || opts_.default_deadline_us.value_or(0) < 0) {
    throw std::invalid_argument(
        "InferenceServer: breaker_threshold/stall_timeout_ms/default_deadline_us must be >= 0 "
        "and breaker_probe_every >= 1");
  }
  if (opts_.fallback && opts_.fallback->sample_shape() != exec_.sample_shape()) {
    throw std::invalid_argument("InferenceServer: fallback executor sample shape " +
                                shrinkbench::to_string(opts_.fallback->sample_shape()) +
                                " != primary shape " +
                                shrinkbench::to_string(exec_.sample_shape()));
  }

  // Env fallbacks mirror the rest of the runtime knobs: an explicit
  // option wins, SB_SERVE_* fills the gap, then the safe default.
  if (opts_.overload_policy) {
    policy_ = *opts_.overload_policy;
  } else if (const char* env = std::getenv("SB_SERVE_OVERLOAD"); env && *env) {
    policy_ = overload_policy_from_name(env);
  }
  if (opts_.default_deadline_us) {
    default_deadline_us_ = *opts_.default_deadline_us;
  } else if (const char* env = std::getenv("SB_SERVE_DEADLINE_US"); env && *env) {
    default_deadline_us_ = std::max<int64_t>(0, std::atoll(env));
  }

  watch_.resize(static_cast<size_t>(opts_.workers));
  workers_.reserve(static_cast<size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  if (opts_.stall_timeout_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::publish_queue_depth(size_t depth) {
  if (obs::profiling_enabled()) obs::set_gauge("serve.queue_depth", static_cast<double>(depth));
  if (obs::telemetry_enabled()) {
    obs::Telemetry::instance().record("serve.queue_depth", static_cast<double>(depth));
  }
}

void InferenceServer::publish_serve_status() {
  if (!obs::telemetry_enabled()) return;
  obs::ServeStatus s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.queue_depth = static_cast<int64_t>(queue_.size());
    s.shed = stats_.shed;
    s.deadline_exceeded = stats_.deadline_exceeded;
    s.rejected_overload = stats_.rejected_overload;
    s.degraded_batches = stats_.degraded_batches;
    s.stalls = stats_.stalls;
    s.breaker_state = static_cast<int>(stats_.breaker_state);
  }
  obs::status_set_serve(s);
}

std::future<Tensor> InferenceServer::submit(Tensor sample, int64_t deadline_us) {
  if (sample.shape() != exec_.sample_shape()) {
    throw std::invalid_argument("submit: sample shape " + shrinkbench::to_string(sample.shape()) +
                                " != compiled shape " + shrinkbench::to_string(exec_.sample_shape()));
  }
  const int64_t effective_deadline = deadline_us < 0 ? default_deadline_us_ : deadline_us;
  Request req;
  req.sample = std::move(sample);
  req.enqueued = Clock::now();
  if (effective_deadline > 0) {
    req.deadline = req.enqueued + std::chrono::microseconds(effective_deadline);
    req.has_deadline = true;
  }
  std::future<Tensor> fut = req.promise.get_future();

  std::optional<Request> shed_victim;
  size_t depth;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (policy_ == OverloadPolicy::Block) {
      queue_has_space_.wait(lk, [&] { return stopping_ || queue_.size() < opts_.queue_capacity; });
    }
    if (stopping_) {
      ++stats_.rejected;
      throw std::runtime_error("InferenceServer: shutting down, request rejected");
    }
    if (queue_.size() >= opts_.queue_capacity) {
      if (policy_ == OverloadPolicy::Reject) {
        ++stats_.rejected_overload;
        obs::count("serve.rejected_overload");
        throw Overloaded("InferenceServer: queue full (" + std::to_string(queue_.size()) +
                         "), request rejected");
      }
      // DropOldest: shed the stalest queued request to admit this one.
      // Only live submissions shed — the drain path never reaches here
      // because stopping_ rejected above.
      shed_victim.emplace(std::move(queue_.front()));
      queue_.pop_front();
      ++stats_.shed;
      ++stats_.failed;
    }
    queue_.push_back(std::move(req));
    ++stats_.submitted;
    depth = queue_.size();
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
  }
  queue_nonempty_.notify_one();
  publish_queue_depth(depth);
  if (shed_victim) {
    const bool prof = obs::profiling_enabled();
    if (prof) {
      obs::observe("serve.latency_us", us_since(shed_victim->enqueued, Clock::now()));
      obs::count("serve.requests");
      obs::count("serve.shed");
    }
    shed_victim->promise.set_exception(std::make_exception_ptr(
        Overloaded("InferenceServer: shed by drop-oldest to admit a newer request")));
    publish_serve_status();
  }
  return fut;
}

void InferenceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  queue_nonempty_.notify_all();
  queue_has_space_.notify_all();
  // call_once also makes concurrent shutdown() calls block until the
  // drain + join has actually finished, not just been started.
  std::call_once(join_once_, [this] {
    for (std::thread& t : workers_) t.join();
    {
      std::lock_guard<std::mutex> lk(watch_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    if (watchdog_.joinable()) watchdog_.join();
  });
}

bool InferenceServer::accepting() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !stopping_;
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void InferenceServer::worker_loop(int worker_index) {
  // With several workers, parallelism lives at the batch level and the
  // kernels inside run inline-serial (the run_sweep shard-crew pattern);
  // a single worker instead lets each kernel fan out over the pool.
  std::optional<ThreadPool::SerialGuard> guard;
  if (opts_.workers > 1) guard.emplace();

  std::vector<Request> batch;
  std::vector<Request> expired;
  for (;;) {
    batch.clear();
    expired.clear();
    bool drained = false;
    size_t depth_after = 0;

    // Moves every queued request whose deadline has passed into
    // `expired`. Deadlines are per-request, so an expired entry can sit
    // behind a live one — scan the whole queue, preserving FIFO order
    // of the survivors.
    const auto sweep_expired = [&](Clock::time_point now) {
      for (size_t i = 0; i < queue_.size();) {
        if (queue_[i].has_deadline && queue_[i].deadline <= now) {
          expired.push_back(std::move(queue_[i]));
          queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(i));
          queue_has_space_.notify_one();
        } else {
          ++i;
        }
      }
    };

    {
      std::unique_lock<std::mutex> lk(mu_);
      for (;;) {
        queue_nonempty_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
        sweep_expired(Clock::now());
        // Break even when the sweep emptied the queue: the expired
        // requests must be fulfilled now, not when the next one arrives.
        if (!queue_.empty() || stopping_ || !expired.empty()) break;
      }
      if (queue_.empty()) {
        drained = stopping_;  // nothing left to batch; exit only on drain
      } else {
        // Dynamic batching: flush when full, or when the oldest request
        // has waited max_wait_us.
        const auto flush_at =
            queue_.front().enqueued + std::chrono::microseconds(opts_.max_wait_us);
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        queue_has_space_.notify_one();
        while (static_cast<int64_t>(batch.size()) < opts_.max_batch) {
          sweep_expired(Clock::now());
          if (!queue_.empty()) {
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
            queue_has_space_.notify_one();
            continue;
          }
          if (stopping_) break;  // draining: never wait for more arrivals
          if (queue_nonempty_.wait_until(lk, flush_at) == std::cv_status::timeout) break;
        }
      }
      depth_after = queue_.size();
      if (!expired.empty()) {
        stats_.deadline_exceeded += static_cast<int64_t>(expired.size());
        stats_.failed += static_cast<int64_t>(expired.size());
      }
    }

    publish_queue_depth(depth_after);
    if (!expired.empty()) {
      fail_batch(expired,
                 std::make_exception_ptr(DeadlineExceeded(
                     "InferenceServer: request expired in queue before batch assembly")),
                 "serve.deadline_exceeded");
      publish_serve_status();
    }
    if (!batch.empty()) run_batch(batch, worker_index);
    if (drained && batch.empty()) return;
  }
}

void InferenceServer::fail_batch(std::vector<Request>& batch, std::exception_ptr err,
                                 const char* counter) {
  const bool prof = obs::profiling_enabled();
  const auto now = Clock::now();
  for (Request& r : batch) {
    if (prof) obs::observe("serve.latency_us", us_since(r.enqueued, now));
    r.promise.set_exception(err);
  }
  if (prof) {
    obs::count("serve.requests", static_cast<int64_t>(batch.size()));
    if (counter) obs::count(counter, static_cast<int64_t>(batch.size()));
  }
}

Tensor InferenceServer::run_primary(const Tensor& x, int worker_index, bool* stalled) {
  if (obs::fault_point("serve.exec_throw")) {
    throw std::runtime_error("injected executor fault (SB_FAULT=serve.exec_throw)");
  }
  // Watchdog window: the monitor thread reads busy_since/in_exec and may
  // flag this call while forward() runs. The destructor captures the
  // verdict into *stalled and clears the slot — on the exception path
  // too, so a call that both stalls and throws is still accounted.
  struct WatchScope {
    InferenceServer* s;
    int idx;
    bool* out;
    WatchScope(InferenceServer* server, int i, bool* stalled_out)
        : s(server), idx(i), out(stalled_out) {
      std::lock_guard<std::mutex> lk(s->watch_mu_);
      WorkerWatch& w = s->watch_[static_cast<size_t>(idx)];
      w.busy_since = Clock::now();
      w.in_exec = true;
      w.stalled = false;
    }
    ~WatchScope() {
      bool was_stalled = false;
      bool any_stalled = false;
      {
        std::lock_guard<std::mutex> lk(s->watch_mu_);
        WorkerWatch& w = s->watch_[static_cast<size_t>(idx)];
        was_stalled = w.stalled;
        w.in_exec = false;
        w.stalled = false;
        for (const WorkerWatch& other : s->watch_) any_stalled |= other.stalled;
      }
      *out = was_stalled;
      // Recovery: once no worker is flagged anymore, lift the degraded
      // mark the watchdog set on the heartbeat.
      if (was_stalled && !any_stalled) obs::status_set_degraded("");
    }
  } watch(this, worker_index, stalled);

  if (obs::fault_point("serve.worker_stall")) {
    const int64_t ms = opts_.stall_timeout_ms > 0 ? opts_.stall_timeout_ms * 3 : 25;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  Tensor y = exec_.forward(x);
  if (obs::fault_point("serve.exec_nan") && y.numel() > 0) {
    y.data()[0] = std::numeric_limits<float>::quiet_NaN();
  }
  if (opts_.check_finite) {
    for (const float v : y.flat()) {
      if (!std::isfinite(v)) {
        throw std::runtime_error("InferenceServer: non-finite executor output");
      }
    }
  }
  return y;
}

void InferenceServer::trip_breaker_locked() {
  breaker_ = BreakerState::Open;
  stats_.breaker_state = BreakerState::Open;
  open_batches_ = 0;
  ++stats_.breaker_trips;
  SB_LOG_WARN("serve", "circuit breaker OPEN after %d consecutive executor failures%s",
              consecutive_failures_,
              opts_.fallback ? "; routing batches to the fallback executor"
                             : "; failing batches fast (no fallback)");
}

void InferenceServer::close_breaker_locked() {
  breaker_ = BreakerState::Closed;
  stats_.breaker_state = BreakerState::Closed;
  consecutive_failures_ = 0;
  SB_LOG_INFO("serve", "circuit breaker CLOSED: half-open probe succeeded, primary restored");
}

void InferenceServer::run_batch(std::vector<Request>& batch, int worker_index) {
  const int64_t b = static_cast<int64_t>(batch.size());
  Shape in_shape{b};
  in_shape.insert(in_shape.end(), exec_.sample_shape().begin(), exec_.sample_shape().end());
  Tensor x(in_shape);
  const int64_t sample_numel = x.numel() / b;
  for (int64_t i = 0; i < b; ++i) {
    const Tensor& s = batch[static_cast<size_t>(i)].sample;
    std::copy(s.data(), s.data() + sample_numel, x.data() + i * sample_numel);
  }

  // Route per breaker state. While open, every breaker_probe_every-th
  // batch half-opens the breaker and probes the primary.
  bool probe = false;
  BreakerState state;
  {
    std::lock_guard<std::mutex> lk(mu_);
    state = breaker_;
    if (state == BreakerState::Open) {
      ++open_batches_;
      if (open_batches_ % opts_.breaker_probe_every == 0) {
        probe = true;
        breaker_ = BreakerState::HalfOpen;
        stats_.breaker_state = BreakerState::HalfOpen;
        SB_LOG_INFO("serve", "circuit breaker HALF-OPEN: probing the primary executor");
      }
    }
  }
  if (probe && obs::profiling_enabled()) {
    obs::set_gauge("serve.breaker_state", static_cast<double>(BreakerState::HalfOpen));
  }

  Tensor y;
  bool have_primary = false;
  bool stalled = false;
  std::exception_ptr primary_err;
  if (state != BreakerState::Open || probe) {
    try {
      y = run_primary(x, worker_index, &stalled);
      have_primary = true;
    } catch (...) {
      primary_err = std::current_exception();
    }
  }

  if (have_primary && !stalled) {
    bool transitioned = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      consecutive_failures_ = 0;
      if (breaker_ != BreakerState::Closed) {
        close_breaker_locked();
        transitioned = true;
      }
    }
    if (obs::profiling_enabled() && (transitioned || probe)) {
      obs::set_gauge("serve.breaker_state", static_cast<double>(BreakerState::Closed));
    }
    fulfill_batch(batch, y, /*degraded=*/false);
    return;
  }

  if (stalled) {
    // The watchdog flagged this call while it was inside the executor;
    // its latency budget is long blown, so the batch fails on recovery
    // even if forward() eventually produced a result.
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (breaker_ == BreakerState::HalfOpen) {
        breaker_ = BreakerState::Open;
        stats_.breaker_state = BreakerState::Open;
      }
      stats_.failed += b;
      ++stats_.batches;
    }
    if (probe && obs::profiling_enabled()) {
      obs::set_gauge("serve.breaker_state", static_cast<double>(BreakerState::Open));
    }
    fail_batch(batch,
               std::make_exception_ptr(std::runtime_error(
                   "InferenceServer: batch failed after worker stall (watchdog recovery)")),
               nullptr);
    publish_serve_status();
    return;
  }

  if (primary_err) {
    bool tripped = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++consecutive_failures_;
      ++stats_.exec_failures;
      if (opts_.breaker_threshold > 0 && consecutive_failures_ >= opts_.breaker_threshold &&
          breaker_ != BreakerState::Open) {
        trip_breaker_locked();
        tripped = true;
      } else if (breaker_ == BreakerState::HalfOpen) {
        breaker_ = BreakerState::Open;
        stats_.breaker_state = BreakerState::Open;
        SB_LOG_WARN("serve", "circuit breaker stays OPEN: half-open probe failed");
      }
    }
    if (obs::profiling_enabled()) {
      obs::count("serve.exec_failures");
      if (tripped || probe) {
        obs::set_gauge("serve.breaker_state", static_cast<double>(BreakerState::Open));
      }
    }
  }

  // Degraded path: the primary failed (or the breaker is open) — serve
  // this batch from the fallback executor when one is configured.
  if (opts_.fallback) {
    try {
      Tensor fy = opts_.fallback->forward(x);
      fulfill_batch(batch, fy, /*degraded=*/true);
      return;
    } catch (...) {
      primary_err = std::current_exception();
    }
  }

  if (!primary_err) {
    primary_err = std::make_exception_ptr(std::runtime_error(
        "InferenceServer: circuit breaker open and no fallback executor configured"));
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.failed += b;
    ++stats_.batches;
  }
  fail_batch(batch, primary_err, nullptr);
  publish_serve_status();
}

void InferenceServer::fulfill_batch(std::vector<Request>& batch, const Tensor& y, bool degraded) {
  const int64_t b = static_cast<int64_t>(batch.size());
  Shape row_shape(y.shape().begin() + 1, y.shape().end());
  const int64_t row_numel = y.numel() / b;
  const auto now = Clock::now();
  const bool prof = obs::profiling_enabled();
  for (int64_t i = 0; i < b; ++i) {
    Request& r = batch[static_cast<size_t>(i)];
    Tensor row(row_shape);
    std::copy(y.data() + i * row_numel, y.data() + (i + 1) * row_numel, row.data());
    r.promise.set_value(std::move(row));
    if (prof) obs::observe("serve.latency_us", us_since(r.enqueued, now));
  }
  if (prof) {
    obs::observe("serve.batch_size", static_cast<double>(b));
    obs::count("serve.requests", b);
    obs::count("serve.batches");
    if (degraded) obs::count("serve.degraded_batches", 1);
  }
  if (obs::telemetry_enabled()) {
    obs::Telemetry::instance().record("serve.batch_size", static_cast<double>(b));
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.completed += b;
    ++stats_.batches;
    if (degraded) ++stats_.degraded_batches;
  }
  publish_serve_status();
}

void InferenceServer::watchdog_loop() {
  const auto timeout = std::chrono::milliseconds(opts_.stall_timeout_ms);
  const auto period = std::chrono::milliseconds(
      std::clamp<int64_t>(opts_.stall_timeout_ms / 4, 5, 250));
  for (;;) {
    struct StallEvent {
      int worker;
      double age_ms;
    };
    std::vector<StallEvent> events;
    {
      std::unique_lock<std::mutex> lk(watch_mu_);
      if (watchdog_cv_.wait_for(lk, period, [this] { return watchdog_stop_; })) return;
      const auto now = Clock::now();
      for (size_t i = 0; i < watch_.size(); ++i) {
        WorkerWatch& w = watch_[i];
        if (w.in_exec && !w.stalled && now - w.busy_since > timeout) {
          w.stalled = true;
          events.push_back({static_cast<int>(i),
                            std::chrono::duration<double, std::milli>(now - w.busy_since).count()});
        }
      }
    }
    if (events.empty()) continue;
    for (const StallEvent& e : events) {
      SB_LOG_WARN("serve",
                  "watchdog: worker %d stuck in exec.forward() for %.0f ms "
                  "(stall_timeout %lld ms); batch will fail on recovery",
                  e.worker, e.age_ms, static_cast<long long>(opts_.stall_timeout_ms));
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      stats_.stalls += static_cast<int64_t>(events.size());
    }
    obs::count("serve.stalls", static_cast<int64_t>(events.size()));
    obs::status_set_degraded("serve: worker stalled in executor");
    publish_serve_status();
  }
}

}  // namespace shrinkbench::serve
