// Serving compiler: pruned Sequential -> packed inference executor.
//
// The paper reports *theoretical* speedup (effective FLOPs); this module
// is where that proxy becomes measurable. compile() snapshots a trained,
// pruned model into an immutable executor in one of three modes:
//
//   Dense   the faithful baseline: dense weights, standalone BN, the
//           exact kernels the eval-mode Sequential runs (bit-identical
//           output) — the denominator of measured speedup.
//   Csr     unstructured sparsity: effective weights (data ⊙ mask)
//           compiled to CSR, executed with the nn/sparse kernels; batch
//           norm is folded into the preceding conv so the sparse matmul
//           is the only per-layer matrix work.
//   Shrunk  channel sparsity: BN folded, then all-zero output-channel
//           rows are physically dropped from the GEMM. Dead channels
//           still appear in the output, filled with their folded bias
//           constant — (0 - mean) * inv_std * gamma + beta is *not* zero,
//           so naive channel deletion would be wrong anywhere a BN
//           follows a pruned conv. Packing rows instead of rewriting the
//           graph keeps residual shapes and downstream layers intact
//           while the GEMM cost tracks effective FLOPs.
//
// Executors hold copies of all weights: the source model can keep
// training or be destroyed. forward() is eval-only, write-free and
// thread-safe (scratch lives in the thread-local workspace arena), so
// one executor is shared by all server workers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace shrinkbench::serve {

enum class ExecMode { Dense, Csr, Shrunk };

std::string to_string(ExecMode mode);
ExecMode exec_mode_from_name(const std::string& name);

/// One compiled operation. Implementations live in executor.cpp.
class Op {
 public:
  virtual ~Op() = default;
  /// x: [N, ...]; must not mutate any state (thread-safety contract).
  virtual Tensor run(const Tensor& x) const = 0;
};

class Executor {
 public:
  /// x: [N, ...sample_shape]. Thread-safe; scratch comes from the
  /// calling thread's workspace arena.
  Tensor forward(const Tensor& x) const;

  ExecMode mode() const { return mode_; }
  const Shape& sample_shape() const { return sample_shape_; }
  size_t op_count() const { return ops_.size(); }

  /// Per-sample multiply-adds of the dense / pruned model, captured at
  /// compile time — the paper's theoretical-speedup inputs.
  int64_t flops_dense() const { return flops_dense_; }
  int64_t flops_effective() const { return flops_effective_; }
  double theoretical_speedup() const {
    return flops_effective_ > 0 ? static_cast<double>(flops_dense_) / flops_effective_ : 1.0;
  }

 private:
  friend Executor compile(Sequential& model, const Shape& sample_shape, ExecMode mode);

  ExecMode mode_ = ExecMode::Dense;
  Shape sample_shape_;
  int64_t flops_dense_ = 0;
  int64_t flops_effective_ = 0;
  std::vector<std::unique_ptr<Op>> ops_;
};

/// Compiles the model for the given per-sample input shape. Csr/Shrunk
/// use effective weights (data ⊙ mask) and fold eval-mode batch norm
/// into the preceding conv/linear; Dense replays the model verbatim.
/// Throws std::invalid_argument on layer types the compiler doesn't know.
Executor compile(Sequential& model, const Shape& sample_shape, ExecMode mode);

}  // namespace shrinkbench::serve
