// Metric conversions for corpus ingestion (paper Appendix A / §5.2).
//
// Papers report the same quantity under many conventions: Top-1 *error*
// vs accuracy, "fraction of parameters pruned" vs "fraction remaining"
// vs "compression ratio" (which §5.2 notes is misused as 1 - small/orig
// by many pruning papers, against the compression literature's
// orig/small), and several "speedup" formulas. These helpers convert
// everything to the survey's standard metrics — compression ratio =
// original/compressed and theoretical speedup = original madds / pruned
// madds — and throw on out-of-domain inputs instead of silently
// producing nonsense.
#pragma once

#include <stdexcept>

namespace shrinkbench::corpus {

/// Top-1/Top-5 error (percent) -> accuracy (percent).
double accuracy_from_error(double error_percent);

/// Fraction of parameters *pruned* in [0, 1) -> compression ratio (>= 1).
double compression_from_fraction_pruned(double fraction_pruned);

/// Fraction of parameters *remaining* in (0, 1] -> compression ratio.
double compression_from_fraction_remaining(double fraction_remaining);

/// The §5.2 misuse: many pruning papers call (1 - compressed/original)
/// the "compression ratio". Converts that convention to the standard one.
double compression_from_misused_ratio(double one_minus_small_over_orig);

/// Inverse conversions (for emitting both conventions in reports).
double fraction_pruned_from_compression(double compression_ratio);
double fraction_remaining_from_compression(double compression_ratio);

/// original madds / pruned madds from a FLOPs-remaining fraction.
double speedup_from_flops_remaining(double flops_fraction_remaining);

/// Some papers report "FLOPs reduced by X%"; convert to speedup.
double speedup_from_flops_reduction_percent(double reduction_percent);

}  // namespace shrinkbench::corpus
