#include "corpus/corpus.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "tensor/rng.hpp"

namespace shrinkbench::corpus {

namespace {

// ---------------------------------------------------------------------------
// Paper roster. Real papers named in the survey (its references and the
// legends of Figures 3 and 5) carry their true years / peer-review status;
// "Entry-NN (reconstructed)" rows stand in for corpus members the survey
// aggregates over but never names individually.
// ---------------------------------------------------------------------------

struct PaperSpec {
  const char* label;
  int year;
  bool peer_reviewed;
};

constexpr PaperSpec kRealPapers[] = {
    {"LeCun 1990", 1990, true},          // Optimal Brain Damage
    {"Hassibi 1993", 1993, true},        // Optimal Brain Surgeon
    {"Collins 2014", 2014, false},
    {"Lebedev 2014", 2014, false},
    {"Han 2015", 2015, true},
    {"Zhang 2015", 2015, true},
    {"Mariet 2015", 2015, false},
    {"Kim 2015", 2015, false},
    {"Figurnov 2016", 2016, true},
    {"Guo 2016", 2016, true},
    {"Han 2016", 2016, true},
    {"Hu 2016", 2016, false},
    {"Kim 2016", 2016, true},
    {"Srinivas 2016", 2016, false},
    {"Wen 2016", 2016, true},
    {"Lebedev 2016", 2016, true},
    {"Molchanov 2016", 2016, false},
    {"Alvarez 2017", 2017, true},
    {"He 2017", 2017, true},
    {"Li 2017", 2017, true},
    {"Lin 2017", 2017, true},
    {"Luo 2017", 2017, true},
    {"Srinivas 2017", 2017, false},
    {"Yang 2017", 2017, true},
    {"Liu 2017", 2017, true},
    {"Dong 2017", 2017, true},
    {"Louizos 2017", 2017, true},
    {"Molchanov 2017", 2017, true},
    {"Changpinyo 2017", 2017, false},
    {"Zhu 2017", 2017, false},
    {"Carreira-Perpinan 2018", 2018, true},
    {"Ding 2018", 2018, true},
    {"Dubey 2018", 2018, true},
    {"He, Yang 2018", 2018, true},
    {"He, Yihui 2018", 2018, true},
    {"Huang 2018", 2018, true},
    {"Lin 2018", 2018, true},
    {"Peng 2018", 2018, true},
    {"Suau 2018", 2018, false},
    {"Suzuki 2018", 2018, false},
    {"Yamamoto 2018", 2018, false},
    {"Yu 2018", 2018, true},
    {"Zhuang 2018", 2018, true},
    {"Yao 2018", 2018, false},
    {"Choi 2019", 2019, false},
    {"Gale 2019", 2019, false},
    {"Kim 2019", 2019, false},
    {"Liu 2019", 2019, true},
    {"Luo 2019", 2019, false},
    {"Peng 2019", 2019, true},
    {"Frankle & Carbin 2019", 2019, true},
    {"Frankle 2019", 2019, false},
    {"Lee 2019", 2019, true},
    {"Lee 2019a", 2019, false},
    {"Morcos 2019", 2019, true},
    {"Mostafa 2019", 2019, true},
    {"Dettmers 2019", 2019, false},
};
constexpr int kNumReal = static_cast<int>(std::size(kRealPapers));
constexpr int kCorpusSize = 81;

// Year distribution for the reconstructed remainder (the survey's corpus
// skews heavily toward 2017-2019).
constexpr int kFillerYears[] = {2015, 2016, 2016, 2016, 2017, 2017, 2017, 2017,
                                2017, 2017, 2018, 2018, 2018, 2018, 2018, 2018,
                                2018, 2018, 2019, 2019, 2019, 2019, 2019, 2019};
static_assert(kNumReal + static_cast<int>(std::size(kFillerYears)) == kCorpusSize);

// ---------------------------------------------------------------------------
// Self-reported tradeoff curves (Figures 3 and 5). Metric masks say which
// of (compression, speedup) x (top1, top5) a method reports — the
// fragmentation the paper's Section 4.3 documents.
// ---------------------------------------------------------------------------

constexpr unsigned kCR = 1, kSU = 2, kT1 = 4, kT5 = 8;

struct CurveSpec {
  const char* paper;
  const char* method;  // figure-legend label
  const char* dataset;
  const char* arch;
  unsigned metrics;
  int points;
  double ratio_lo, ratio_hi;  // compression (or speedup) range covered
  double quality;             // > 1 = loses less accuracy than average
  bool absolute_style;        // Figure 5 curves: absolute top-1 vs params
  bool reports_stddev;
};

constexpr CurveSpec kCurves[] = {
    // --- (ImageNet, VGG-16): the most common pair (22 papers, Table 1) ---
    {"Collins 2014", "Collins 2014", "ImageNet", "VGG-16", kCR | kT1 | kT5, 3, 2, 8, 0.8, false, false},
    {"Han 2015", "Han 2015", "ImageNet", "VGG-16", kCR | kSU | kT1 | kT5, 4, 2, 16, 1.3, false, false},
    {"Zhang 2015", "Zhang 2015", "ImageNet", "VGG-16", kSU | kT5, 3, 2, 5, 1.0, false, false},
    {"Han 2016", "Han 2016", "ImageNet", "VGG-16", kCR | kT1 | kT5, 3, 4, 16, 1.35, false, false},
    {"Figurnov 2016", "Figurnov 2016", "ImageNet", "VGG-16", kSU | kT1 | kT5, 2, 1.5, 4, 0.9, false, false},
    {"Hu 2016", "Hu 2016", "ImageNet", "VGG-16", kCR | kT5, 3, 1.5, 6, 1.0, false, false},
    {"Srinivas 2017", "Srinivas 2017", "ImageNet", "VGG-16", kCR | kT1, 2, 4, 12, 1.0, false, false},
    {"Alvarez 2017", "Alvarez 2017", "ImageNet", "VGG-16", kCR | kT1, 3, 2, 10, 1.0, false, false},
    {"He 2017", "He 2017", "ImageNet", "VGG-16", kSU | kT5, 3, 2, 5, 1.1, false, false},
    {"He 2017", "He 2017, 3C", "ImageNet", "VGG-16", kSU | kT5, 3, 2, 5, 1.25, false, false},
    {"Lin 2017", "Lin 2017", "ImageNet", "VGG-16", kSU | kT1, 2, 1.5, 4, 0.9, false, false},
    {"Luo 2017", "Luo 2017", "ImageNet", "VGG-16", kCR | kSU | kT1 | kT5, 3, 2, 8, 1.1, false, false},
    {"Yang 2017", "Yang 2017", "ImageNet", "VGG-16", kCR | kSU | kT1, 2, 2, 6, 0.9, false, false},
    {"Carreira-Perpinan 2018", "Carreira-Perpinan 2018", "ImageNet", "VGG-16", kCR | kT1, 4, 2, 16, 1.15, false, false},
    {"Dubey 2018", "Dubey 2018, AP+Coreset-A", "ImageNet", "VGG-16", kCR | kT1 | kT5, 3, 4, 16, 1.1, false, false},
    {"Dubey 2018", "Dubey 2018, AP+Coreset-K", "ImageNet", "VGG-16", kCR | kT1 | kT5, 3, 4, 16, 1.15, false, false},
    {"Dubey 2018", "Dubey 2018, AP+Coreset-S", "ImageNet", "VGG-16", kCR | kT1 | kT5, 3, 4, 16, 1.05, false, false},
    {"Peng 2018", "Peng 2018", "ImageNet", "VGG-16", kSU | kT5, 2, 2, 5, 1.1, false, false},
    {"Suau 2018", "Suau 2018, PFA-En", "ImageNet", "VGG-16", kCR | kT1, 3, 2, 8, 1.0, false, false},
    {"Suau 2018", "Suau 2018, PFA-KL", "ImageNet", "VGG-16", kCR | kT1, 3, 2, 8, 0.95, false, false},
    {"Suzuki 2018", "Suzuki 2018", "ImageNet", "VGG-16", kCR | kT1, 2, 2, 6, 1.0, false, false},
    {"Yamamoto 2018", "Yamamoto 2018", "ImageNet", "VGG-16", kSU | kT1, 2, 2, 4, 1.1, false, false},
    {"Kim 2019", "Kim 2019", "ImageNet", "VGG-16", kCR | kSU | kT1, 3, 2, 10, 1.05, false, false},
    {"Choi 2019", "Choi 2019", "ImageNet", "VGG-16", kCR | kT1, 2, 4, 12, 1.0, false, false},
    {"Luo 2019", "Luo 2019", "ImageNet", "VGG-16", kSU | kT1, 2, 2, 5, 1.05, false, false},

    // --- (ImageNet, AlexNet / CaffeNet): merged in Figure 3 (footnote 4) ---
    {"Han 2015", "Han 2015", "ImageNet", "CaffeNet", kCR | kT1 | kT5, 3, 3, 12, 1.25, false, false},
    {"Guo 2016", "Guo 2016", "ImageNet", "CaffeNet", kCR | kT5, 2, 8, 17, 1.2, false, false},
    {"Srinivas 2016", "Srinivas 2016", "ImageNet", "AlexNet", kCR | kT1, 2, 2, 8, 0.85, false, false},
    {"Kim 2016", "Kim 2016", "ImageNet", "AlexNet", kSU | kT5, 2, 1.5, 3, 1.0, false, false},
    {"Wen 2016", "Wen 2016", "ImageNet", "CaffeNet", kSU | kT1 | kT5, 3, 1.5, 4, 1.0, false, false},
    {"Hu 2016", "Hu 2016", "ImageNet", "AlexNet", kCR | kT5, 2, 2, 6, 0.95, false, false},
    {"Yang 2017", "Yang 2017", "ImageNet", "AlexNet", kCR | kSU | kT1, 3, 2, 8, 0.9, false, false},
    {"Ding 2018", "Ding 2018", "ImageNet", "CaffeNet", kCR | kT1, 2, 2, 6, 1.0, false, false},
    {"Srinivas 2017", "Srinivas 2017", "ImageNet", "AlexNet", kCR | kT1, 2, 4, 12, 1.0, false, false},
    {"Kim 2019", "Kim 2019", "ImageNet", "AlexNet", kSU | kT5, 2, 1.5, 3.5, 1.05, false, false},

    // --- (ImageNet, ResNet-50): 15 papers use the pair (Table 1) ---
    {"He 2017", "He 2017", "ImageNet", "ResNet-50", kSU | kT5, 2, 1.5, 3, 1.05, false, false},
    {"Luo 2017", "Luo 2017", "ImageNet", "ResNet-50", kCR | kSU | kT1 | kT5, 3, 1.5, 4, 1.05, false, false},
    {"Alvarez 2017", "Alvarez 2017", "ImageNet", "ResNet-50", kCR | kT1, 3, 1.5, 4, 1.0, false, false},
    {"Huang 2018", "Huang 2018", "ImageNet", "ResNet-50", kCR | kSU | kT1 | kT5, 3, 1.5, 4, 1.05, false, false},
    {"Lin 2018", "Lin 2018", "ImageNet", "ResNet-50", kCR | kSU | kT1, 2, 1.5, 3, 1.0, false, false},
    {"He, Yihui 2018", "He, Yihui 2018", "ImageNet", "ResNet-50", kSU | kT1, 1, 1.8, 1.8, 1.15, false, false},
    {"Yu 2018", "Yu 2018", "ImageNet", "ResNet-50", kCR | kT1, 2, 1.5, 3, 1.05, false, false},
    {"Zhuang 2018", "Zhuang 2018", "ImageNet", "ResNet-50", kSU | kT1, 2, 1.5, 3, 1.1, false, false},
    {"Peng 2019", "Peng 2019, CCP", "ImageNet", "ResNet-50", kSU | kT1 | kT5, 2, 1.5, 2.5, 1.2, false, false},
    {"Peng 2019", "Peng 2019, CCP-AC", "ImageNet", "ResNet-50", kSU | kT1 | kT5, 2, 1.5, 2.5, 1.25, false, false},
    {"Gale 2019", "Gale 2019, Magnitude-v2", "ImageNet", "ResNet-50", kCR | kT1, 5, 1.5, 10, 1.2, false, false},
    {"Liu 2019", "Liu 2019, Scratch-B", "ImageNet", "ResNet-50", kCR | kSU | kT1, 3, 1.5, 4, 1.1, false, false},
    {"Dubey 2018", "Dubey 2018, AP+Coreset-K", "ImageNet", "ResNet-50", kCR | kT1, 2, 2, 6, 1.1, false, false},

    // --- (CIFAR-10, ResNet-56): 14 papers use the pair (Table 1) ---
    {"Li 2017", "Li 2017", "CIFAR-10", "ResNet-56", kCR | kSU | kT1, 2, 1.5, 3, 1.0, false, false},
    {"He 2017", "He 2017", "CIFAR-10", "ResNet-56", kSU | kT1, 1, 2, 2, 1.0, false, false},
    {"He, Yang 2018", "He, Yang 2018", "CIFAR-10", "ResNet-56", kSU | kT1, 2, 1.5, 3, 1.05, false, true},
    {"He, Yang 2018", "He, Yang 2018, Fine-Tune", "CIFAR-10", "ResNet-56", kSU | kT1, 2, 1.5, 3, 1.15, false, true},
    {"Carreira-Perpinan 2018", "Carreira-Perpinan 2018", "CIFAR-10", "ResNet-56", kCR | kT1, 4, 2, 32, 1.2, false, false},
    {"Suzuki 2018", "Suzuki 2018", "CIFAR-10", "ResNet-56", kCR | kT1, 2, 2, 8, 1.0, false, false},
    {"Ding 2018", "Ding 2018", "CIFAR-10", "ResNet-56", kCR | kT1, 2, 2, 6, 1.05, false, false},
    {"Liu 2019", "Liu 2019, Scratch-B", "CIFAR-10", "ResNet-56", kCR | kSU | kT1, 3, 2, 8, 1.1, false, false},
    {"He, Yihui 2018", "He, Yihui 2018", "CIFAR-10", "ResNet-56", kSU | kT1, 1, 2, 2, 1.1, false, false},
    {"Peng 2019", "Peng 2019, CCP", "CIFAR-10", "ResNet-56", kSU | kT1, 2, 1.5, 3, 1.2, false, false},
    {"Huang 2018", "Huang 2018", "CIFAR-10", "ResNet-56", kCR | kT1, 2, 2, 8, 1.05, false, false},

    // --- Figure 1 sources beyond the big four ---
    {"He, Yihui 2018", "He, Yihui 2018", "ImageNet", "MobileNet-V2", kCR | kSU | kT1, 2, 1.3, 2, 1.1, false, false},
    {"Liu 2019", "Liu 2019, Scratch-B", "ImageNet", "MobileNet-V2", kCR | kT1, 2, 1.3, 2, 1.0, false, false},
    {"He, Yang 2018", "He, Yang 2018", "ImageNet", "ResNet-18", kSU | kT1 | kT5, 2, 1.5, 2.5, 1.0, false, false},
    {"Dong 2017", "Dong 2017", "ImageNet", "ResNet-18", kSU | kT1 | kT5, 2, 1.3, 2, 0.95, false, false},
    {"Li 2017", "Li 2017", "ImageNet", "ResNet-34", kCR | kSU | kT1, 2, 1.2, 1.6, 1.0, false, false},
    {"Dong 2017", "Dong 2017", "ImageNet", "ResNet-34", kSU | kT1, 2, 1.3, 2, 1.0, false, false},

    // --- Figure 5: ResNet-50 magnitude variants vs all other methods ---
    {"Frankle 2019", "Frankle 2019, PruneAtEpoch=15", "ImageNet", "ResNet-50", kCR | kT1, 5, 1.5, 16, 1.1, true, false},
    {"Frankle 2019", "Frankle 2019, PruneAtEpoch=90", "ImageNet", "ResNet-50", kCR | kT1, 5, 1.5, 16, 1.2, true, false},
    {"Frankle 2019", "Frankle 2019, ResetToEpoch=10", "ImageNet", "ResNet-50", kCR | kT1, 4, 1.5, 16, 1.15, true, false},
    {"Frankle 2019", "Frankle 2019, ResetToEpoch=R", "ImageNet", "ResNet-50", kCR | kT1, 4, 1.5, 16, 0.9, true, false},
    {"Gale 2019", "Gale 2019, Magnitude", "ImageNet", "ResNet-50", kCR | kT1, 6, 1.5, 16, 1.1, true, false},
    {"Gale 2019", "Gale 2019, Magnitude-v2", "ImageNet", "ResNet-50", kCR | kT1, 6, 1.5, 16, 1.25, true, false},
    {"Liu 2019", "Liu 2019, Magnitude", "ImageNet", "ResNet-50", kCR | kT1, 4, 1.5, 12, 1.05, true, false},
    {"Alvarez 2017", "Alvarez 2017", "ImageNet", "ResNet-50", kCR | kT1, 3, 1.5, 4, 1.0, true, false},
    {"Dubey 2018", "Dubey 2018, AP+Coreset-A", "ImageNet", "ResNet-50", kCR | kT1, 2, 2, 6, 1.05, true, false},
    {"Dubey 2018", "Dubey 2018, AP+Coreset-S", "ImageNet", "ResNet-50", kCR | kT1, 2, 2, 6, 1.0, true, false},
    {"Gale 2019", "Gale 2019, SparseVD", "ImageNet", "ResNet-50", kCR | kT1, 5, 1.5, 16, 1.2, true, false},
    {"Yamamoto 2018", "Yamamoto 2018", "ImageNet", "ResNet-50", kSU | kT1, 2, 1.5, 2.5, 1.05, true, false},
};

// The methods whose Figure 5 panel is "unstructured magnitude variants".
// (analysis.cpp exports this set for the fig5 bench.)

// ---------------------------------------------------------------------------
// Table 1 pair quotas.
// ---------------------------------------------------------------------------

struct PairQuota {
  const char* dataset;
  const char* arch;
  int papers;
};

constexpr PairQuota kTable1[] = {
    {"ImageNet", "VGG-16", 22},      {"ImageNet", "ResNet-50", 15},
    {"MNIST", "LeNet-5-Caffe", 14},  {"CIFAR-10", "ResNet-56", 14},
    {"MNIST", "LeNet-300-100", 12},  {"MNIST", "LeNet-5", 11},
    {"ImageNet", "CaffeNet", 10},    {"CIFAR-10", "CIFAR-VGG (Torch)", 8},
    {"ImageNet", "AlexNet", 8},      {"ImageNet", "ResNet-18", 6},
    {"ImageNet", "ResNet-34", 6},    {"CIFAR-10", "ResNet-110", 5},
    {"CIFAR-10", "PreResNet-164", 4}, {"CIFAR-10", "ResNet-32", 4},
};

constexpr int kDistinctDatasets = 49;
constexpr int kDistinctArchs = 132;
constexpr int kDistinctPairs = 195;

const char* kExtraDatasets[] = {
    "CIFAR-100", "SVHN", "Tiny-ImageNet", "Fashion-MNIST", "EMNIST", "STL-10", "Caltech-101",
    "Caltech-256", "Places365", "SUN397", "PASCAL-VOC-2007", "PASCAL-VOC-2012", "COCO",
    "Cityscapes", "CamVid", "ADE20K", "KITTI", "Flowers-102", "CUB-200", "Stanford-Cars",
    "FGVC-Aircraft", "Food-101", "DTD", "UCF-101", "HMDB-51", "Kinetics", "Penn-Treebank",
    "WikiText-2", "WikiText-103", "One-Billion-Word", "IMDB", "SST-2", "AG-News",
    "Yelp-Reviews", "SQuAD", "WMT14-EnFr", "WMT14-EnDe", "LibriSpeech", "TIMIT", "WSJ",
    "VoxCeleb", "MS-Celeb-1M", "LFW", "MegaFace", "Market-1501", "DukeMTMC"};
static_assert(std::size(kExtraDatasets) == kDistinctDatasets - 3);  // + ImageNet/MNIST/CIFAR-10

const char* kExtraArchNames[] = {
    "VGG-11", "VGG-13", "VGG-19", "ResNet-101", "ResNet-152", "ResNet-20", "ResNet-44",
    "PreResNet-56", "PreResNet-110", "WRN-16-8", "WRN-28-10", "WRN-40-4", "DenseNet-40",
    "DenseNet-121", "DenseNet-169", "GoogLeNet", "Inception-V3", "Inception-V4", "Xception",
    "MobileNet-V1", "MobileNet-V2", "ShuffleNet-V1", "ShuffleNet-V2", "SqueezeNet", "NASNet-A",
    "AmoebaNet", "AlexNet-BN", "ZFNet", "OverFeat", "Network-in-Network", "FCN-8s", "SegNet",
    "U-Net", "DeepLab-v3", "Faster-R-CNN", "SSD-300", "YOLOv2", "LSTM-2x650", "LSTM-2x1500",
    "GRU-2x512", "Transformer-Base", "WaveNet", "DeepSpeech-2", "BERT-Base"};

// ---------------------------------------------------------------------------
// Comparison graph (Figure 2). Out-degree histogram follows the paper's
// stated shape: >1/4 compare to none, ~1/4 to one, nearly all to <= 3.
// ---------------------------------------------------------------------------

struct OutDegreeSpec {
  const char* label;
  int degree;
};

// The rigorous comparison studies really did compare broadly (Section 4.5
// names Gale 2019 and Liu 2019 as the near-only examples).
constexpr OutDegreeSpec kHighComparers[] = {
    {"Gale 2019", 10}, {"Liu 2019", 8},       {"Frankle & Carbin 2019", 6},
    {"Yu 2018", 5},    {"He, Yihui 2018", 5}, {"Zhuang 2018", 5},
    {"Luo 2017", 4},   {"He 2017", 4},        {"Huang 2018", 4},
    {"Peng 2019", 4},  {"Mostafa 2019", 4},
};

// Popularity weights for who gets compared *to* (in-degree). Magnitude
// pruning and the classics dominate, mirroring Section 4.1.
const std::map<std::string, double>& popularity() {
  static const std::map<std::string, double> kPopularity = {
      {"Han 2015", 16.0},  {"LeCun 1990", 8.0},  {"Li 2017", 9.0},
      {"He 2017", 9.0},    {"Hassibi 1993", 5.0}, {"Wen 2016", 7.0},
      {"Luo 2017", 7.0},   {"Han 2016", 6.0},     {"Guo 2016", 5.0},
      {"Molchanov 2017", 4.0}, {"Molchanov 2016", 4.0}, {"Liu 2017", 4.0},
      {"Frankle & Carbin 2019", 4.0}, {"Zhang 2015", 3.0}, {"Louizos 2017", 3.0},
      {"Dong 2017", 2.5},  {"Lee 2019", 2.5},     {"Yu 2018", 2.0},
  };
  return kPopularity;
}

// ---------------------------------------------------------------------------
// Point synthesis. Accuracy deltas follow a smooth efficiency/quality
// tradeoff with method-specific quality and reproducible jitter, spanning
// the value ranges visible in Figures 3 and 5.
// ---------------------------------------------------------------------------

double delta_top1_at(double ratio, double quality, bool small_scale, Rng& rng) {
  // Gain at light pruning (pruning sometimes *increases* accuracy, §3.2),
  // polynomial-in-log2 drop at heavy pruning.
  const double gain = 0.35 * quality * std::exp(-(ratio - 1.0) / 2.5);
  const double l = std::max(0.0, std::log2(ratio));
  const double scale = small_scale ? 0.12 : 0.30;  // CIFAR deltas are smaller
  const double drop = scale * std::pow(l, 1.9) / quality;
  return gain - drop + rng.normal(0.0, small_scale ? 0.08 : 0.2);
}

std::vector<ResultPoint> make_points(const CurveSpec& spec, Rng& rng) {
  std::vector<ResultPoint> points;
  const bool small_scale = std::string(spec.dataset) == "CIFAR-10";
  for (int i = 0; i < spec.points; ++i) {
    // Log-spaced operating points across the method's reported range.
    const double t = spec.points == 1 ? 0.0 : static_cast<double>(i) / (spec.points - 1);
    const double ratio =
        spec.ratio_lo * std::pow(spec.ratio_hi / spec.ratio_lo, t) * rng.uniform(0.95, 1.05);
    ResultPoint p;
    const bool structured = (spec.metrics & kSU) && !(spec.metrics & kCR);
    if (spec.metrics & kCR) p.compression = ratio;
    if (spec.metrics & kSU) {
      // Unstructured pruning converts compression to speedup sub-linearly;
      // structured methods report speedup directly.
      p.speedup = structured ? ratio : std::pow(ratio, 0.78) * rng.uniform(0.9, 1.1);
    }
    const double d1 = delta_top1_at(ratio, spec.quality, small_scale, rng);
    if (spec.metrics & kT1) p.delta_top1 = d1;
    if (spec.metrics & kT5) p.delta_top5 = 0.6 * d1 + rng.normal(0.0, 0.05);
    points.push_back(p);
  }
  return points;
}

void attach_baseline(TradeoffCurve& curve, Rng& rng) {
  // Papers report slightly different baselines for the "same" model —
  // Section 5.2's up-to-4x FLOP discrepancy in miniature. Only some papers
  // report baselines at all (footnote 1's motivation).
  if (rng.uniform() < 0.4) return;
  struct Baseline {
    double params, flops, top1, top5;
  };
  static const std::map<std::string, Baseline> kBaselines = {
      {"VGG-16", {138.4, 15.5, 71.6, 90.4}},     {"ResNet-50", {25.6, 4.1, 76.1, 92.9}},
      {"AlexNet", {61.0, 0.72, 57.2, 80.2}},     {"CaffeNet", {60.9, 0.72, 57.4, 80.4}},
      {"ResNet-18", {11.7, 1.8, 69.8, 89.1}},    {"ResNet-34", {21.8, 3.6, 73.3, 91.4}},
      {"MobileNet-V2", {3.5, 0.31, 71.9, 91.0}}, {"ResNet-56", {0.85, 0.127, 93.0, 99.7}},
  };
  const auto it = kBaselines.find(curve.architecture);
  if (it == kBaselines.end()) return;
  const Baseline& b = it->second;
  curve.baseline_params = b.params * rng.uniform(0.97, 1.03);
  curve.baseline_flops = b.flops * rng.uniform(0.75, 1.5);  // FLOP formulas disagree most
  curve.baseline_top1 = b.top1 + rng.normal(0.0, 0.4);
  curve.baseline_top5 = b.top5 + rng.normal(0.0, 0.25);
}

// ---------------------------------------------------------------------------

Corpus build_corpus() {
  Rng rng(0x5043);
  Corpus corpus;

  // 1. Papers.
  for (int i = 0; i < kNumReal; ++i) {
    PaperRecord p;
    p.id = i;
    p.label = kRealPapers[i].label;
    p.year = kRealPapers[i].year;
    p.peer_reviewed = kRealPapers[i].peer_reviewed;
    corpus.papers.push_back(std::move(p));
  }
  for (size_t i = 0; i < std::size(kFillerYears); ++i) {
    PaperRecord p;
    p.id = kNumReal + static_cast<int>(i);
    p.label = "Entry-" + std::to_string(p.id + 1) + " (reconstructed)";
    p.year = kFillerYears[i];
    p.peer_reviewed = (i % 5) < 3;  // ~60% of the remainder peer-reviewed
    corpus.papers.push_back(std::move(p));
  }

  auto paper_by_label = [&](const std::string& label) -> PaperRecord& {
    for (auto& p : corpus.papers) {
      if (p.label == label) return p;
    }
    throw std::logic_error("corpus: unknown paper label '" + label + "'");
  };

  // 2. Curves (+ the pairs they imply).
  for (const CurveSpec& spec : kCurves) {
    PaperRecord& paper = paper_by_label(spec.paper);
    TradeoffCurve curve;
    curve.method_label = spec.method;
    curve.dataset = spec.dataset;
    curve.architecture = spec.arch;
    curve.points = make_points(spec, rng);
    curve.reports_stddev = spec.reports_stddev;
    attach_baseline(curve, rng);
    paper.curves.push_back(std::move(curve));
    const std::pair<std::string, std::string> pair{spec.dataset, spec.arch};
    if (std::find(paper.pairs.begin(), paper.pairs.end(), pair) == paper.pairs.end()) {
      paper.pairs.push_back(pair);
    }
  }

  // 3. Fill Table 1 pair quotas. Candidate papers are chosen
  // deterministically, preferring papers that already have few pairs so
  // the pairs-per-paper histogram stays bottom-heavy (Figure 4, top).
  for (const PairQuota& quota : kTable1) {
    const std::pair<std::string, std::string> pair{quota.dataset, quota.arch};
    int have = 0;
    for (const auto& p : corpus.papers) {
      have += std::count(p.pairs.begin(), p.pairs.end(), pair) > 0 ? 1 : 0;
    }
    // Deterministic rotation so different pairs land on different papers.
    const size_t start =
        std::hash<std::string>{}(std::string(quota.dataset) + quota.arch) % corpus.papers.size();
    size_t idx = start;
    const bool mnist = std::string(quota.dataset) == "MNIST";
    while (have < quota.papers) {
      PaperRecord& p = corpus.papers[idx % corpus.papers.size()];
      idx += 7;  // coprime stride over 81 papers
      if (std::find(p.pairs.begin(), p.pairs.end(), pair) != p.pairs.end()) continue;
      if (p.year < 2014) continue;  // classics predate these benchmarks
      // MNIST configs skew toward earlier/simpler papers (§4.2).
      if (mnist && p.year >= 2019 && idx % 3 != 0) continue;
      if (p.pairs.size() >= 6) continue;
      p.pairs.push_back(pair);
      ++have;
    }
  }

  // 4. Rare pairs: grow the long tail until exactly 49 datasets, 132
  // architectures, and 195 distinct pairs exist. Every paper gets at least
  // one pair; extra pairs go to papers round-robin, preferring those with
  // the fewest so far.
  std::set<std::string> datasets, archs;
  std::set<std::pair<std::string, std::string>> distinct_pairs;
  for (const auto& p : corpus.papers) {
    for (const auto& pr : p.pairs) {
      datasets.insert(pr.first);
      archs.insert(pr.second);
      distinct_pairs.insert(pr);
    }
  }

  size_t next_dataset = 0, next_arch = 0;
  int synth_arch_counter = 0;
  auto fresh_pair = [&]() -> std::pair<std::string, std::string> {
    // Introduce new datasets/architectures while the survey's totals have
    // not been met; afterwards recombine existing names.
    std::string ds;
    if (static_cast<int>(datasets.size()) < kDistinctDatasets &&
        next_dataset < std::size(kExtraDatasets)) {
      ds = kExtraDatasets[next_dataset++];
    } else {
      auto it = datasets.begin();
      std::advance(it, static_cast<long>(rng.randint(static_cast<int64_t>(datasets.size()))));
      ds = *it;
    }
    std::string arch;
    if (static_cast<int>(archs.size()) < kDistinctArchs) {
      if (next_arch < std::size(kExtraArchNames)) {
        arch = kExtraArchNames[next_arch++];
      } else {
        arch = "Custom-CNN-" + std::to_string(++synth_arch_counter);
      }
    } else {
      auto it = archs.begin();
      std::advance(it, static_cast<long>(rng.randint(static_cast<int64_t>(archs.size()))));
      arch = *it;
    }
    return {ds, arch};
  };

  // Papers with no pairs yet (classics, fillers) get one first.
  for (auto& p : corpus.papers) {
    if (!p.pairs.empty()) continue;
    std::pair<std::string, std::string> pr;
    if (p.year < 2010) {
      pr = {"MNIST", p.label == "LeCun 1990" ? "LeNet-300-100" : "XOR-MLP"};
    } else {
      pr = fresh_pair();
    }
    while (distinct_pairs.count(pr) != 0) pr = fresh_pair();
    p.pairs.push_back(pr);
    datasets.insert(pr.first);
    archs.insert(pr.second);
    distinct_pairs.insert(pr);
  }

  size_t rr = 0;
  while (static_cast<int>(distinct_pairs.size()) < kDistinctPairs ||
         static_cast<int>(datasets.size()) < kDistinctDatasets ||
         static_cast<int>(archs.size()) < kDistinctArchs) {
    PaperRecord& p = corpus.papers[rr++ % corpus.papers.size()];
    if (p.year < 2010) continue;
    if (p.pairs.size() >= 8 && rr % 13 != 0) continue;  // keep the histogram bottom-heavy
    auto pr = fresh_pair();
    int guard = 0;
    while ((distinct_pairs.count(pr) != 0 ||
            std::find(p.pairs.begin(), p.pairs.end(), pr) != p.pairs.end()) &&
           guard++ < 64) {
      pr = fresh_pair();
    }
    if (distinct_pairs.count(pr) != 0) continue;
    p.pairs.push_back(pr);
    datasets.insert(pr.first);
    archs.insert(pr.second);
    distinct_pairs.insert(pr);
  }

  // 5. Comparison graph. Fixed out-degrees for the rigorous studies, then
  // histogram-shaped degrees for everyone else; targets drawn by
  // popularity among strictly earlier papers.
  std::map<std::string, int> fixed_degree;
  for (const auto& spec : kHighComparers) fixed_degree[spec.label] = spec.degree;

  // Remaining papers (81 - 11 fixed = 70): 21 zeros, 19 ones, 18 twos,
  // 12 threes — exactly the "quarter compare to none, another quarter to
  // one, nearly all three or fewer" shape.
  std::vector<int> rest_degrees;
  for (int i = 0; i < 21; ++i) rest_degrees.push_back(0);
  for (int i = 0; i < 19; ++i) rest_degrees.push_back(1);
  for (int i = 0; i < 18; ++i) rest_degrees.push_back(2);
  for (int i = 0; i < 12; ++i) rest_degrees.push_back(3);
  assert(rest_degrees.size() + std::size(kHighComparers) == kCorpusSize);

  size_t rest_idx = 0;
  for (auto& p : corpus.papers) {
    int degree;
    if (auto it = fixed_degree.find(p.label); it != fixed_degree.end()) {
      degree = it->second;
    } else if (p.year < 2010) {
      degree = 0;  // classics predate the corpus
      ++rest_idx;  // consumes a zero slot
    } else {
      degree = rest_degrees[rest_idx++ % rest_degrees.size()];
    }

    // Candidates: strictly earlier papers (ties broken by id order).
    std::vector<int> candidates;
    std::vector<double> weights;
    for (const auto& q : corpus.papers) {
      if (q.year > p.year || (q.year == p.year && q.id >= p.id)) continue;
      candidates.push_back(q.id);
      const auto& pop = popularity();
      const auto it = pop.find(q.label);
      double w = it != pop.end() ? it->second : 1.0;
      if (q.label.find("reconstructed") != std::string::npos) w = 0.2;
      weights.push_back(w);
    }
    degree = std::min<int>(degree, static_cast<int>(candidates.size()));
    for (int d = 0; d < degree; ++d) {
      double total = 0.0;
      for (double w : weights) total += w;
      if (total <= 0.0) break;
      double draw = rng.uniform(0.0, total);
      size_t pick = 0;
      for (; pick < weights.size(); ++pick) {
        draw -= weights[pick];
        if (draw <= 0.0) break;
      }
      pick = std::min(pick, weights.size() - 1);
      p.compares_to.push_back(candidates[pick]);
      weights[pick] = 0.0;  // without replacement
    }
    std::sort(p.compares_to.begin(), p.compares_to.end());
  }

  return corpus;
}

}  // namespace

const PaperRecord* Corpus::find(const std::string& label) const {
  for (const auto& p : papers) {
    if (p.label == label) return &p;
  }
  return nullptr;
}

const Corpus& pruning_corpus() {
  static const Corpus corpus = build_corpus();
  return corpus;
}

}  // namespace shrinkbench::corpus
