// Meta-analysis algorithms over the corpus — the computations behind the
// paper's Figures 1-5 and Table 1. Everything here derives from
// pruning_corpus(); the benches only format what these functions return.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"

namespace shrinkbench::corpus {

/// Histogram split by peer-review status (Figures 2 and 4 show the split).
struct SplitHistogram {
  std::map<int, int> peer_reviewed;
  std::map<int, int> other;

  int total(int key) const;
  int max_key() const;
};

// ---- Figure 2 ----
/// Distribution of in-degree: how many later papers compare to each paper.
SplitHistogram compared_to_histogram(const Corpus& corpus);
/// Distribution of out-degree: how many prior papers each paper compares to.
SplitHistogram compares_to_histogram(const Corpus& corpus);

// ---- Table 1 ----
struct PairCount {
  std::string dataset;
  std::string architecture;
  int papers = 0;
};
/// (dataset, architecture) pairs used by at least min_papers papers,
/// sorted by count descending (ties by name).
std::vector<PairCount> pair_counts(const Corpus& corpus, int min_papers);

// ---- Headline aggregates (§4) ----
struct CorpusSummary {
  int papers = 0;
  int datasets = 0;
  int architectures = 0;
  int pairs = 0;
  int compare_to_none = 0;       // papers with out-degree 0
  int compare_to_at_most_one = 0;
  int compare_to_at_most_three = 0;
  int never_compared_to = 0;     // papers with in-degree 0 (post-2010 only)
  int papers_on_common_configs = 0;  // report results on a Figure 3 config
};
CorpusSummary summarize(const Corpus& corpus);

// ---- Figure 3 ----
/// The four most common non-MNIST configurations, with AlexNet and
/// CaffeNet merged per the paper's footnote 4.
struct CommonConfig {
  std::string display;  // e.g. "Alex/CaffeNet on ImageNet"
  std::string dataset;
  std::vector<std::string> architectures;
};
std::vector<CommonConfig> common_configs();

/// All curves of any paper on the given config.
std::vector<const TradeoffCurve*> curves_for_config(const Corpus& corpus,
                                                    const CommonConfig& config);

// ---- Figure 4 ----
SplitHistogram pairs_per_paper_histogram(const Corpus& corpus, bool exclude_mnist);
/// Points per tradeoff curve, restricted to the common configs.
SplitHistogram points_per_curve_histogram(const Corpus& corpus);

// ---- Figure 1 (footnote 1 normalization) ----
struct BaselineMedians {
  double params_millions = 0.0;
  double flops_billions = 0.0;
  double top1 = 0.0;
  double top5 = 0.0;
  int reporting_papers = 0;
};
/// Median self-reported baseline for an architecture across all papers
/// that report one.
BaselineMedians median_baselines(const Corpus& corpus, const std::string& architecture);

struct NormalizedPoint {
  std::string method;
  double params_millions = 0.0;
  double flops_billions = 0.0;
  double top1 = 0.0;
  double top5 = 0.0;
  bool has_top5 = false;
  bool has_flops = false;
};
/// Applies the paper's normalization: reported fractions of size/FLOPs are
/// multiplied by the architecture's median baseline, and deltas are added
/// to the median baseline accuracy.
std::vector<NormalizedPoint> normalized_pruned_points(const Corpus& corpus,
                                                      const std::string& dataset,
                                                      const std::string& architecture);

// ---- "Methods from later years do not consistently outperform methods
// from earlier years" (§4.3) ----
struct YearProgress {
  /// Pearson correlation between publication year and accuracy delta at
  /// the reference compression (near zero = no consistent progress).
  double correlation = 0.0;
  /// (year, interpolated delta_top1 at the reference ratio) per method.
  std::vector<std::pair<int, double>> per_method;
};
/// Interpolates each curve's Δtop-1 at `reference_compression` on the
/// given config and correlates it with the owning paper's year.
YearProgress year_progress(const Corpus& corpus, const CommonConfig& config,
                           double reference_compression);

// ---- Figure 5 ----
/// Curve labels in the "unstructured magnitude-based pruning" panel.
std::vector<std::string> fig5_magnitude_labels();
/// Curve labels in the "all other methods" panel.
std::vector<std::string> fig5_other_labels();
/// Fetch a (ImageNet, ResNet-50) curve by its figure label (null if absent).
const TradeoffCurve* resnet50_curve_by_label(const Corpus& corpus, const std::string& label);

}  // namespace shrinkbench::corpus
