#include "corpus/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace shrinkbench::corpus {

int SplitHistogram::total(int key) const {
  int t = 0;
  if (auto it = peer_reviewed.find(key); it != peer_reviewed.end()) t += it->second;
  if (auto it = other.find(key); it != other.end()) t += it->second;
  return t;
}

int SplitHistogram::max_key() const {
  int m = 0;
  if (!peer_reviewed.empty()) m = std::max(m, peer_reviewed.rbegin()->first);
  if (!other.empty()) m = std::max(m, other.rbegin()->first);
  return m;
}

namespace {
void bump(SplitHistogram& h, bool peer, int key) {
  (peer ? h.peer_reviewed : h.other)[key]++;
}
}  // namespace

SplitHistogram compared_to_histogram(const Corpus& corpus) {
  std::map<int, int> in_degree;
  for (const auto& p : corpus.papers) in_degree[p.id] = 0;
  for (const auto& p : corpus.papers) {
    for (int target : p.compares_to) in_degree[target]++;
  }
  SplitHistogram hist;
  for (const auto& p : corpus.papers) bump(hist, p.peer_reviewed, in_degree[p.id]);
  return hist;
}

SplitHistogram compares_to_histogram(const Corpus& corpus) {
  SplitHistogram hist;
  for (const auto& p : corpus.papers) {
    bump(hist, p.peer_reviewed, static_cast<int>(p.compares_to.size()));
  }
  return hist;
}

std::vector<PairCount> pair_counts(const Corpus& corpus, int min_papers) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const auto& p : corpus.papers) {
    for (const auto& pair : p.pairs) counts[pair]++;
  }
  std::vector<PairCount> result;
  for (const auto& [pair, n] : counts) {
    if (n >= min_papers) result.push_back({pair.first, pair.second, n});
  }
  std::sort(result.begin(), result.end(), [](const PairCount& a, const PairCount& b) {
    if (a.papers != b.papers) return a.papers > b.papers;
    if (a.dataset != b.dataset) return a.dataset < b.dataset;
    return a.architecture < b.architecture;
  });
  return result;
}

CorpusSummary summarize(const Corpus& corpus) {
  CorpusSummary s;
  s.papers = static_cast<int>(corpus.papers.size());

  std::set<std::string> datasets, archs;
  std::set<std::pair<std::string, std::string>> pairs;
  std::map<int, int> in_degree;
  for (const auto& p : corpus.papers) in_degree[p.id] = 0;

  const auto configs = common_configs();
  for (const auto& p : corpus.papers) {
    for (const auto& pair : p.pairs) {
      datasets.insert(pair.first);
      archs.insert(pair.second);
      pairs.insert(pair);
    }
    for (int target : p.compares_to) in_degree[target]++;
    const size_t n = p.compares_to.size();
    if (n == 0) s.compare_to_none++;
    if (n <= 1) s.compare_to_at_most_one++;
    if (n <= 3) s.compare_to_at_most_three++;

    bool on_common = false;
    for (const auto& curve : p.curves) {
      for (const auto& config : configs) {
        if (curve.dataset != config.dataset) continue;
        for (const auto& arch : config.architectures) {
          if (curve.architecture == arch) on_common = true;
        }
      }
    }
    if (on_common) s.papers_on_common_configs++;
  }
  s.datasets = static_cast<int>(datasets.size());
  s.architectures = static_cast<int>(archs.size());
  s.pairs = static_cast<int>(pairs.size());
  for (const auto& p : corpus.papers) {
    if (p.year >= 2010 && in_degree[p.id] == 0) s.never_compared_to++;
  }
  return s;
}

std::vector<CommonConfig> common_configs() {
  return {
      {"VGG-16 on ImageNet", "ImageNet", {"VGG-16"}},
      {"Alex/CaffeNet on ImageNet", "ImageNet", {"AlexNet", "CaffeNet"}},
      {"ResNet-50 on ImageNet", "ImageNet", {"ResNet-50"}},
      {"ResNet-56 on CIFAR-10", "CIFAR-10", {"ResNet-56"}},
  };
}

std::vector<const TradeoffCurve*> curves_for_config(const Corpus& corpus,
                                                    const CommonConfig& config) {
  std::vector<const TradeoffCurve*> curves;
  for (const auto& p : corpus.papers) {
    for (const auto& curve : p.curves) {
      if (curve.dataset != config.dataset) continue;
      if (std::find(config.architectures.begin(), config.architectures.end(),
                    curve.architecture) == config.architectures.end()) {
        continue;
      }
      curves.push_back(&curve);
    }
  }
  return curves;
}

SplitHistogram pairs_per_paper_histogram(const Corpus& corpus, bool exclude_mnist) {
  SplitHistogram hist;
  for (const auto& p : corpus.papers) {
    int n = 0;
    for (const auto& pair : p.pairs) {
      if (exclude_mnist && pair.first == "MNIST") continue;
      ++n;
    }
    if (n > 0) bump(hist, p.peer_reviewed, n);
  }
  return hist;
}

SplitHistogram points_per_curve_histogram(const Corpus& corpus) {
  SplitHistogram hist;
  for (const auto& config : common_configs()) {
    for (const TradeoffCurve* curve : curves_for_config(corpus, config)) {
      // A "curve" in Figure 4 is one method's points in one panel; we use
      // the curve's point count directly.
      const PaperRecord* owner = nullptr;
      for (const auto& p : corpus.papers) {
        for (const auto& c : p.curves) {
          if (&c == curve) owner = &p;
        }
      }
      bump(hist, owner != nullptr && owner->peer_reviewed,
           static_cast<int>(curve->points.size()));
    }
  }
  return hist;
}

namespace {
double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2] : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}
}  // namespace

BaselineMedians median_baselines(const Corpus& corpus, const std::string& architecture) {
  std::vector<double> params, flops, top1, top5;
  for (const auto& p : corpus.papers) {
    for (const auto& c : p.curves) {
      if (c.architecture != architecture) continue;
      if (c.baseline_params) params.push_back(*c.baseline_params);
      if (c.baseline_flops) flops.push_back(*c.baseline_flops);
      if (c.baseline_top1) top1.push_back(*c.baseline_top1);
      if (c.baseline_top5) top5.push_back(*c.baseline_top5);
    }
  }
  BaselineMedians m;
  m.params_millions = median_of(params);
  m.flops_billions = median_of(flops);
  m.top1 = median_of(top1);
  m.top5 = median_of(top5);
  m.reporting_papers = static_cast<int>(params.size());
  return m;
}

std::vector<NormalizedPoint> normalized_pruned_points(const Corpus& corpus,
                                                      const std::string& dataset,
                                                      const std::string& architecture) {
  const BaselineMedians base = median_baselines(corpus, architecture);
  std::vector<NormalizedPoint> points;
  if (base.reporting_papers == 0) return points;
  for (const auto& p : corpus.papers) {
    for (const auto& c : p.curves) {
      if (c.dataset != dataset || c.architecture != architecture) continue;
      for (const auto& pt : c.points) {
        NormalizedPoint np;
        np.method = c.method_label;
        if (pt.compression) {
          np.params_millions = base.params_millions / *pt.compression;
        } else if (pt.speedup) {
          // Papers reporting only speedup: approximate size via the
          // speedup (the normalization cannot recover what was never
          // reported — §4.3's incomparability in miniature).
          np.params_millions = base.params_millions / *pt.speedup;
        } else {
          continue;
        }
        np.has_flops = pt.speedup.has_value();
        np.flops_billions = np.has_flops ? base.flops_billions / *pt.speedup : 0.0;
        if (!pt.delta_top1 && !pt.delta_top5) continue;
        np.top1 = base.top1 + pt.delta_top1.value_or(0.0);
        np.has_top5 = pt.delta_top5.has_value();
        np.top5 = base.top5 + pt.delta_top5.value_or(0.0);
        points.push_back(np);
      }
    }
  }
  return points;
}

YearProgress year_progress(const Corpus& corpus, const CommonConfig& config,
                           double reference_compression) {
  YearProgress result;
  for (const auto& paper : corpus.papers) {
    for (const auto& curve : paper.curves) {
      if (curve.dataset != config.dataset) continue;
      if (std::find(config.architectures.begin(), config.architectures.end(),
                    curve.architecture) == config.architectures.end()) {
        continue;
      }
      // Gather (compression, delta_top1) points and linearly interpolate
      // in log-compression at the reference ratio; skip curves that do not
      // bracket it (they report at incomparable operating points — §4.3).
      std::vector<std::pair<double, double>> pts;
      for (const auto& p : curve.points) {
        if (p.compression && p.delta_top1) {
          pts.emplace_back(std::log2(*p.compression), *p.delta_top1);
        }
      }
      if (pts.size() < 2) continue;
      std::sort(pts.begin(), pts.end());
      const double x = std::log2(reference_compression);
      if (x < pts.front().first || x > pts.back().first) continue;
      double value = pts.back().second;
      for (size_t i = 1; i < pts.size(); ++i) {
        if (x <= pts[i].first) {
          const double t = (x - pts[i - 1].first) /
                           std::max(1e-12, pts[i].first - pts[i - 1].first);
          value = pts[i - 1].second + t * (pts[i].second - pts[i - 1].second);
          break;
        }
      }
      result.per_method.emplace_back(paper.year, value);
    }
  }
  // Pearson correlation year vs quality.
  const size_t n = result.per_method.size();
  if (n >= 2) {
    double mx = 0, my = 0;
    for (const auto& [year, v] : result.per_method) {
      mx += year;
      my += v;
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0, sxx = 0, syy = 0;
    for (const auto& [year, v] : result.per_method) {
      sxy += (year - mx) * (v - my);
      sxx += (year - mx) * (year - mx);
      syy += (v - my) * (v - my);
    }
    if (sxx > 0 && syy > 0) result.correlation = sxy / std::sqrt(sxx * syy);
  }
  return result;
}

std::vector<std::string> fig5_magnitude_labels() {
  return {"Frankle 2019, PruneAtEpoch=15", "Frankle 2019, PruneAtEpoch=90",
          "Frankle 2019, ResetToEpoch=10", "Frankle 2019, ResetToEpoch=R",
          "Gale 2019, Magnitude",          "Gale 2019, Magnitude-v2",
          "Liu 2019, Magnitude"};
}

std::vector<std::string> fig5_other_labels() {
  return {"Alvarez 2017",
          "Dubey 2018, AP+Coreset-A",
          "Dubey 2018, AP+Coreset-K",
          "Dubey 2018, AP+Coreset-S",
          "Gale 2019, SparseVD",
          "Huang 2018",
          "Lin 2018",
          "Liu 2019, Scratch-B",
          "Luo 2017",
          "Yamamoto 2018",
          "Zhuang 2018"};
}

const TradeoffCurve* resnet50_curve_by_label(const Corpus& corpus, const std::string& label) {
  for (const auto& p : corpus.papers) {
    for (const auto& c : p.curves) {
      if (c.method_label == label && c.dataset == "ImageNet" && c.architecture == "ResNet-50") {
        return &c;
      }
    }
  }
  return nullptr;
}

}  // namespace shrinkbench::corpus
