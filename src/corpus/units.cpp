#include "corpus/units.hpp"

namespace shrinkbench::corpus {

namespace {
void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}
}  // namespace

double accuracy_from_error(double error_percent) {
  require(error_percent >= 0.0 && error_percent <= 100.0,
          "accuracy_from_error: error must be in [0, 100]");
  return 100.0 - error_percent;
}

double compression_from_fraction_pruned(double fraction_pruned) {
  require(fraction_pruned >= 0.0 && fraction_pruned < 1.0,
          "compression_from_fraction_pruned: fraction must be in [0, 1)");
  return 1.0 / (1.0 - fraction_pruned);
}

double compression_from_fraction_remaining(double fraction_remaining) {
  require(fraction_remaining > 0.0 && fraction_remaining <= 1.0,
          "compression_from_fraction_remaining: fraction must be in (0, 1]");
  return 1.0 / fraction_remaining;
}

double compression_from_misused_ratio(double one_minus_small_over_orig) {
  // "compression ratio = 1 - compressed/original" (§5.2's misuse) is just
  // the fraction pruned under another name.
  return compression_from_fraction_pruned(one_minus_small_over_orig);
}

double fraction_pruned_from_compression(double compression_ratio) {
  require(compression_ratio >= 1.0, "fraction_pruned_from_compression: ratio must be >= 1");
  return 1.0 - 1.0 / compression_ratio;
}

double fraction_remaining_from_compression(double compression_ratio) {
  require(compression_ratio >= 1.0, "fraction_remaining_from_compression: ratio must be >= 1");
  return 1.0 / compression_ratio;
}

double speedup_from_flops_remaining(double flops_fraction_remaining) {
  require(flops_fraction_remaining > 0.0 && flops_fraction_remaining <= 1.0,
          "speedup_from_flops_remaining: fraction must be in (0, 1]");
  return 1.0 / flops_fraction_remaining;
}

double speedup_from_flops_reduction_percent(double reduction_percent) {
  require(reduction_percent >= 0.0 && reduction_percent < 100.0,
          "speedup_from_flops_reduction_percent: percent must be in [0, 100)");
  return 1.0 / (1.0 - reduction_percent / 100.0);
}

}  // namespace shrinkbench::corpus
