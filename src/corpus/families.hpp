// Published size/FLOPs/accuracy figures for unpruned architecture
// families — the solid curves of the paper's Figure 1. Values are the
// standard ImageNet numbers from Tan & Le (2019) and Bianco et al. (2018),
// the same sources the paper cites.
#pragma once

#include <string>
#include <vector>

namespace shrinkbench::corpus {

struct ArchitecturePoint {
  std::string name;
  double params_millions = 0.0;
  double flops_billions = 0.0;  // multiply-adds per forward pass
  double top1 = 0.0;
  double top5 = 0.0;
};

struct ArchitectureFamily {
  std::string name;
  int year = 0;
  std::vector<ArchitecturePoint> members;  // ordered small -> large
};

/// MobileNet-v2 (2018), ResNet (2016), VGG (2014), EfficientNet (2019).
const std::vector<ArchitectureFamily>& architecture_families();

}  // namespace shrinkbench::corpus
