// The 81-paper pruning corpus (paper §3.1, Appendix A), reconstructed.
//
// The original corpus was digitized by the authors from 81 papers. The
// underlying spreadsheet is not available offline, so this module rebuilds
// a corpus that
//
//   * contains the real papers named in the paper (its references and the
//     legends of Figures 3 and 5) with their true years and venues, plus
//     reconstructed survey entries to reach the full 81;
//   * exactly matches every aggregate statistic the paper reports:
//     81 papers (79 post-2010 + LeCun 1990 + Hassibi 1993), Table 1's
//     fourteen (dataset, architecture) pair counts, 49 distinct datasets,
//     132 distinct architectures, 195 distinct pairs, "over a quarter of
//     papers compare to no prior pruning method, a further quarter to
//     exactly one, nearly all to three or fewer", and dozens of papers
//     never compared to by later work;
//   * carries self-reported tradeoff curves whose panel membership,
//     point counts, and value ranges mirror Figures 3-5.
//
// Everything downstream (bench/fig1..fig5, bench/table1) *computes* its
// tables from this corpus with the same analyses the paper ran; nothing is
// hardcoded at the analysis layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace shrinkbench::corpus {

struct ResultPoint {
  std::optional<double> compression;  // original size / pruned size
  std::optional<double> speedup;      // original madds / pruned madds
  std::optional<double> delta_top1;   // accuracy change, percentage points
  std::optional<double> delta_top5;
};

/// One self-reported efficiency-vs-accuracy curve: a named method from one
/// paper evaluated on one (dataset, architecture) pair. Follows the
/// paper's footnote 5: a paper contributes multiple curves only when it
/// names multiple methods.
struct TradeoffCurve {
  std::string method_label;  // e.g. "Han 2015" or "Dubey 2018, AP+Coreset-K"
  std::string dataset;
  std::string architecture;
  std::vector<ResultPoint> points;
  /// Whether the paper reports a standard deviation for this curve — in
  /// the real corpus only He, Yang 2018 on CIFAR-10 does (Figure 3).
  bool reports_stddev = false;
  // Self-reported baseline of the unpruned model, when given (papers often
  // omit these; the Figure 1 normalization exists because of that).
  std::optional<double> baseline_params;  // millions
  std::optional<double> baseline_flops;   // billions of madds
  std::optional<double> baseline_top1;    // percent
  std::optional<double> baseline_top5;    // percent
};

struct PaperRecord {
  int id = 0;
  std::string label;  // "Han 2015"
  int year = 0;
  bool peer_reviewed = false;
  /// ids of corpus papers this paper reports a comparison against.
  std::vector<int> compares_to;
  /// (dataset, architecture) combinations evaluated on.
  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<TradeoffCurve> curves;
};

struct Corpus {
  std::vector<PaperRecord> papers;

  const PaperRecord* find(const std::string& label) const;
};

/// The corpus singleton (deterministically constructed on first use).
const Corpus& pruning_corpus();

}  // namespace shrinkbench::corpus
