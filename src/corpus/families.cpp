#include "corpus/families.hpp"

namespace shrinkbench::corpus {

const std::vector<ArchitectureFamily>& architecture_families() {
  static const std::vector<ArchitectureFamily> kFamilies = {
      {"MobileNet-v2",
       2018,
       {
           {"MobileNet-v2 0.5x", 2.0, 0.10, 65.4, 86.4},
           {"MobileNet-v2 0.75x", 2.6, 0.21, 69.8, 89.6},
           {"MobileNet-v2", 3.5, 0.31, 71.9, 91.0},
           {"MobileNet-v2 1.4x", 6.1, 0.58, 74.7, 92.0},
       }},
      {"ResNet",
       2016,
       {
           {"ResNet-18", 11.7, 1.8, 69.8, 89.1},
           {"ResNet-34", 21.8, 3.6, 73.3, 91.4},
           {"ResNet-50", 25.6, 4.1, 76.0, 92.9},
           {"ResNet-101", 44.5, 7.8, 77.4, 93.5},
           {"ResNet-152", 60.2, 11.5, 78.3, 94.0},
       }},
      {"VGG",
       2014,
       {
           {"VGG-11", 132.9, 7.6, 69.0, 88.6},
           {"VGG-13", 133.0, 11.3, 69.9, 89.3},
           {"VGG-16", 138.4, 15.5, 71.6, 90.4},
           {"VGG-19", 143.7, 19.6, 72.4, 90.9},
       }},
      {"EfficientNet",
       2019,
       {
           {"EfficientNet-B0", 5.3, 0.39, 77.1, 93.3},
           {"EfficientNet-B1", 7.8, 0.70, 79.1, 94.4},
           {"EfficientNet-B2", 9.2, 1.0, 80.1, 94.9},
           {"EfficientNet-B3", 12.0, 1.8, 81.6, 95.7},
           {"EfficientNet-B4", 19.0, 4.2, 82.9, 96.4},
           {"EfficientNet-B5", 30.0, 9.9, 83.6, 96.7},
           {"EfficientNet-B6", 43.0, 19.0, 84.0, 96.8},
           {"EfficientNet-B7", 66.0, 37.0, 84.3, 97.0},
       }},
  };
  return kFamilies;
}

}  // namespace shrinkbench::corpus
