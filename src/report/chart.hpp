// ASCII scatter/line charts so the benches can render each figure's series
// directly in the terminal (and the CSV output carries exact values).
#pragma once

#include <string>
#include <vector>

namespace shrinkbench::report {

struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

struct ChartOptions {
  int width = 72;       // plot columns
  int height = 20;      // plot rows
  bool log_x = false;   // log2 x axis (compression / speedup axes)
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Renders series as an ASCII scatter plot; each series uses its own glyph
/// and the legend maps glyphs to labels.
std::string render_chart(const std::vector<Series>& series, const ChartOptions& options);

}  // namespace shrinkbench::report
