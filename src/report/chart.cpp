#include "report/chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace shrinkbench::report {

namespace {
constexpr char kGlyphs[] = "ox+*#@%&^~ABCDEFGHIJKLMNOPQRSTUVWXYZ";
}

std::string render_chart(const std::vector<Series>& series, const ChartOptions& options) {
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (const auto& s : series) {
    for (size_t i = 0; i < s.x.size(); ++i) {
      const double x = options.log_x ? std::log2(std::max(s.x[i], 1e-12)) : s.x[i];
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
    }
  }
  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  if (!std::isfinite(xmin) || !std::isfinite(ymin)) {
    out << "  (no data)\n";
    return out.str();
  }
  if (xmax - xmin < 1e-12) xmax = xmin + 1.0;
  if (ymax - ymin < 1e-12) ymax = ymin + 1.0;

  const int w = options.width, h = options.height;
  std::vector<std::string> grid(static_cast<size_t>(h), std::string(static_cast<size_t>(w), ' '));
  for (size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    const auto& s = series[si];
    for (size_t i = 0; i < s.x.size(); ++i) {
      const double x = options.log_x ? std::log2(std::max(s.x[i], 1e-12)) : s.x[i];
      const int col = static_cast<int>(std::lround((x - xmin) / (xmax - xmin) * (w - 1)));
      const int row = static_cast<int>(std::lround((s.y[i] - ymin) / (ymax - ymin) * (h - 1)));
      if (col >= 0 && col < w && row >= 0 && row < h) {
        grid[static_cast<size_t>(h - 1 - row)][static_cast<size_t>(col)] = glyph;
      }
    }
  }

  char ybuf[64];
  std::snprintf(ybuf, sizeof(ybuf), "%8.3f", ymax);
  out << ybuf << " +" << std::string(static_cast<size_t>(w), '-') << "+\n";
  for (int r = 0; r < h; ++r) out << "         |" << grid[static_cast<size_t>(r)] << "|\n";
  std::snprintf(ybuf, sizeof(ybuf), "%8.3f", ymin);
  out << ybuf << " +" << std::string(static_cast<size_t>(w), '-') << "+\n";
  {
    char xbuf[128];
    const auto show = [&](double v) { return options.log_x ? std::exp2(v) : v; };
    std::snprintf(xbuf, sizeof(xbuf), "          %-12.3g%*s%.3g  (%s%s)", show(xmin),
                  std::max(1, w - 16), "", show(xmax), options.x_label.c_str(),
                  options.log_x ? ", log scale" : "");
    out << xbuf << '\n';
  }
  for (size_t si = 0; si < series.size(); ++si) {
    out << "    " << kGlyphs[si % (sizeof(kGlyphs) - 1)] << " = " << series[si].label << '\n';
  }
  return out.str();
}

}  // namespace shrinkbench::report
