// Aligned-text table rendering for bench output.
#pragma once

#include <string>
#include <vector>

namespace shrinkbench::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Formats a double with the given precision; "-" for NaN.
  static std::string num(double value, int precision = 3);

  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes arbitrary CSV rows; first row should be the header.
void write_csv(const std::string& path, const std::vector<std::vector<std::string>>& rows);

}  // namespace shrinkbench::report
