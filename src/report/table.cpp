#include "report/table.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/io.hpp"

namespace shrinkbench::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  if (std::isnan(value)) return "-";
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << value;
  return ss.str();
}

std::string Table::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << "| " << cells[c];
      out << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void write_csv(const std::string& path, const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream os;
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      // Quote cells containing commas.
      if (row[c].find(',') != std::string::npos) {
        os << '"' << row[c] << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  }
  if (!obs::atomic_write_file(path, os.str())) {
    throw std::runtime_error("write_csv: cannot write " + path);
  }
}

}  // namespace shrinkbench::report
