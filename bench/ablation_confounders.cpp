// Ablation: how large are the §4.5 confounders, quantitatively?
//
// Fixing model (ResNet-20), dataset, strategy (global magnitude), and
// target compression (8x), we vary only nuisance choices a paper might not
// even report — fine-tuning optimizer, learning-rate schedule, random
// seed — and compare the induced accuracy spread against the spread
// *across pruning methods* under the canonical setup. This is Figure 5's
// argument as a controlled experiment instead of a literature scrape.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace shrinkbench;
using namespace shrinkbench::bench;

namespace {

struct Variant {
  std::string label;
  ExperimentConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("=== Ablation: confounding variables vs method differences ===\n\n");

  ExperimentRunner runner(args.cache_dir);
  ExperimentConfig base;
  base.dataset = "synth-cifar10";
  base.arch = "resnet-20";
  base.width = 8;
  base.strategy = "global-weight";
  base.target_compression = 8.0;
  base.pretrain = bench_pretrain(args.full);
  base.finetune = bench_cifar_finetune(args.full);

  // Panel A: one method, nuisance variations only.
  std::vector<Variant> nuisance;
  nuisance.push_back({"canonical (Adam 3e-4, fixed)", base});
  {
    Variant v{"SGD+Nesterov 1e-2", base};
    v.config.finetune.optimizer = OptimizerKind::SgdNesterov;
    v.config.finetune.lr = 1e-2f;
    nuisance.push_back(v);
  }
  {
    Variant v{"Adam 3e-4, cosine schedule", base};
    v.config.finetune.lr_schedule = LrSchedule::Cosine;
    nuisance.push_back(v);
  }
  {
    Variant v{"Adam 1e-3 (hotter)", base};
    v.config.finetune.lr = 1e-3f;
    nuisance.push_back(v);
  }
  {
    Variant v{"different run seed", base};
    v.config.run_seed = 9;
    nuisance.push_back(v);
  }
  {
    Variant v{"with flip+shift augmentation", base};
    v.config.finetune.augment.hflip = true;
    v.config.finetune.augment.max_shift = 1;
    nuisance.push_back(v);
  }
  {
    Variant v{"iterative schedule, 3 steps", base};
    v.config.schedule = ScheduleKind::Iterative;
    v.config.schedule_steps = 3;
    nuisance.push_back(v);
  }

  report::Table panel_a({"variation (method fixed: Global Weight @ 8x)", "top1"});
  double a_min = 1e9, a_max = -1e9;
  for (const Variant& v : nuisance) {
    const ExperimentResult r = runner.run(v.config);
    panel_a.add_row({v.label, report::Table::num(r.post_top1, 4)});
    a_min = std::min(a_min, r.post_top1);
    a_max = std::max(a_max, r.post_top1);
    std::fprintf(stderr, "[confounder] %s -> %.4f\n", v.label.c_str(), r.post_top1);
  }
  std::printf("%s\n", panel_a.render().c_str());

  // Panel B: canonical setup, different methods.
  report::Table panel_b({"method (setup fixed: canonical @ 8x)", "top1"});
  double b_min = 1e9, b_max = -1e9;
  for (const std::string strategy : {"global-weight", "layer-weight", "global-gradient",
                                     "layer-gradient", "global-fisher", "random"}) {
    ExperimentConfig cfg = base;
    cfg.strategy = strategy;
    const ExperimentResult r = runner.run(cfg);
    panel_b.add_row({display_name(strategy), report::Table::num(r.post_top1, 4)});
    b_min = std::min(b_min, r.post_top1);
    b_max = std::max(b_max, r.post_top1);
    std::fprintf(stderr, "[confounder] method %s -> %.4f\n", strategy.c_str(), r.post_top1);
  }
  std::printf("%s\n", panel_b.render().c_str());

  std::printf("Accuracy spread from nuisance choices alone: %.4f\n", a_max - a_min);
  std::printf("Accuracy spread across pruning methods:      %.4f\n", b_max - b_min);
  std::printf("(Paper §4.5 / Figure 5: the former is 'nearly as large' as the latter.\n"
              " Methods differing by less than the nuisance spread are indistinguishable\n"
              " without controlling every one of these variables.)\n");
  return 0;
}
