// Ablation: pruning schedules (paper §2.3 "Scheduling").
//
// One-shot vs iterative vs polynomial on ResNet-20 / synth-cifar10 at
// moderate and extreme compression. The literature's expectation (Han et
// al. 2015; Gale et al. 2019): multi-step schedules help most at extreme
// ratios and matter little at mild ones — we measure exactly that here.
#include <cstdio>

#include "bench_common.hpp"

using namespace shrinkbench;
using namespace shrinkbench::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("=== Ablation: one-shot vs iterative vs polynomial schedules ===\n\n");

  ExperimentRunner runner(args.cache_dir);
  ExperimentConfig base;
  base.dataset = "synth-cifar10";
  base.arch = "resnet-20";
  base.width = 8;
  base.strategy = "global-weight";
  base.pretrain = bench_pretrain(args.full);
  base.finetune = bench_cifar_finetune(args.full);

  struct Plan {
    ScheduleKind kind;
    int steps;
  };
  const Plan plans[] = {{ScheduleKind::OneShot, 1},
                        {ScheduleKind::Iterative, 3},
                        {ScheduleKind::Polynomial, 3}};
  const std::vector<double> ratios = args.full ? std::vector<double>{4, 16, 32}
                                               : std::vector<double>{4, 32};
  const std::vector<uint64_t> seeds = args.full ? std::vector<uint64_t>{1, 2, 3}
                                                : std::vector<uint64_t>{1};

  report::Table table({"schedule", "steps", "target", "compression", "top1 (mean)", "top1 (std)",
                       "finetune epochs"});
  std::vector<ExperimentResult> all;
  for (const Plan& plan : plans) {
    for (const double ratio : ratios) {
      std::vector<double> top1s;
      double compression = 0;
      int epochs = 0;
      for (const uint64_t seed : seeds) {
        ExperimentConfig cfg = base;
        cfg.schedule = plan.kind;
        cfg.schedule_steps = plan.steps;
        cfg.target_compression = ratio;
        cfg.run_seed = seed;
        const ExperimentResult r = runner.run(cfg);
        all.push_back(r);
        top1s.push_back(r.post_top1);
        compression += r.compression;
        epochs += r.finetune_epochs;
        std::fprintf(stderr, "[ablation] %s x%.0f seed=%llu -> %.4f\n",
                     to_string(plan.kind).c_str(), ratio,
                     static_cast<unsigned long long>(seed), r.post_top1);
      }
      const Stats s = compute_stats(top1s);
      table.add_row({to_string(plan.kind), std::to_string(plan.steps),
                     report::Table::num(ratio, 0),
                     report::Table::num(compression / static_cast<double>(seeds.size()), 2),
                     report::Table::num(s.mean, 4), report::Table::num(s.stddev, 4),
                     std::to_string(epochs / static_cast<int>(seeds.size()))});
    }
  }
  std::printf("%s\n", table.render().c_str());
  save_results(args, "ablation_schedules", all);

  std::printf("Note: multi-step schedules fine-tune after every round, so they also spend\n"
              "more recovery epochs — exactly the §4.5 confounder ('pruning and fine-tuning\n"
              "schedule') that makes cross-paper schedule comparisons treacherous.\n");
  return 0;
}
