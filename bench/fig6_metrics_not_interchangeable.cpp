// Figure 6: "Top-1 Accuracy for ResNet-18 on ImageNet for several
// compression ratios and their corresponding theoretical speedups."
//
// The pitfall demonstrated (paper §7.3, "Metrics are not Interchangeable"):
// Global methods beat Layerwise methods at a fixed model *size*, but the
// ordering can flip at a fixed theoretical *speedup*, because global
// magnitude pruning removes weights from the parameter-heavy late layers
// while leaving the FLOP-heavy early layers dense.
#include <cstdio>

#include "bench_common.hpp"

using namespace shrinkbench;
using namespace shrinkbench::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("=== Figure 6: metrics are not interchangeable (ResNet-18, ImageNet-sim) ===\n\n");

  ExperimentRunner runner(args.cache_dir);
  ExperimentConfig base;
  base.dataset = "synth-imagenet";
  base.arch = "resnet-18";
  base.width = 8;
  base.pretrain = bench_pretrain(args.full);
  base.finetune = bench_imagenet_finetune(args.full);

  const std::vector<std::string> strategies = {"global-weight", "layer-weight",
                                               "global-gradient", "layer-gradient"};
  const std::vector<double> ratios = {1, 2, 4, 8, 16, 32};
  const std::vector<uint64_t> seeds = args.full ? std::vector<uint64_t>{1, 2, 3}
                                                : std::vector<uint64_t>{1};

  BenchStatus status;
  SweepSummary summary;
  const auto results = run_sweep(runner, base, strategies, ratios, seeds,
                                 sweep_options(args, "fig6_resnet18_imagenet"), &summary);
  status.add(summary);
  if (summary.interrupted) {
    save_results(args, "fig6_resnet18_imagenet", results);
    return status.finish();
  }
  const auto agg = aggregate_by_strategy(results);

  print_tradeoff_table(agg, "ResNet-18 on synth-imagenet (Top-1 vs compression & speedup):");
  std::printf("%s\n", tradeoff_chart(agg, XAxis::Compression,
                                     "ResNet-18 on ImageNet-sim — accuracy vs compression")
                          .c_str());
  std::printf("%s\n",
              tradeoff_chart(agg, XAxis::Speedup,
                             "ResNet-18 on ImageNet-sim — accuracy vs theoretical speedup")
                  .c_str());
  save_results(args, "fig6_resnet18_imagenet", results);

  // Shape check: at matched compression, global >= layer on accuracy; at
  // matched compression, layerwise achieves the larger speedup (so on the
  // speedup axis layerwise's curve shifts right of global's).
  double global_acc = 0, layer_acc = 0, global_speedup = 0, layer_speedup = 0;
  int n = 0;
  for (const auto& p : agg.at("global-weight")) {
    if (p.target < 4) continue;
    global_acc += p.top1_mean;
    global_speedup += p.speedup;
    ++n;
  }
  for (const auto& p : agg.at("layer-weight")) {
    if (p.target < 4) continue;
    layer_acc += p.top1_mean;
    layer_speedup += p.speedup;
  }
  std::printf("At compression >= 4 (averages over %d points):\n", n);
  std::printf("  accuracy:  global-weight %.4f vs layer-weight %.4f (expect global higher)\n",
              global_acc / n, layer_acc / n);
  std::printf("  speedup:   global-weight %.2fx vs layer-weight %.2fx (expect layer higher —\n"
              "             the axis swap that makes the metrics non-interchangeable)\n",
              global_speedup / n, layer_speedup / n);
  return status.finish();
}
