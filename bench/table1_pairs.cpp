// Table 1: "All combinations of dataset and architecture used in at least
// 4 out of 81 papers" — computed from the corpus, alongside the §4.2
// fragmentation totals (49 datasets, 132 architectures, 195 pairs).
#include <cstdio>

#include "bench_common.hpp"
#include "corpus/analysis.hpp"

using namespace shrinkbench;
using namespace shrinkbench::corpus;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const Corpus& c = pruning_corpus();
  std::printf("=== Table 1: (Dataset, Architecture) pairs used in >= 4 of 81 papers ===\n\n");

  report::Table table({"Dataset", "Architecture", "Number of Papers using Pair"});
  std::vector<std::vector<std::string>> csv{{"dataset", "architecture", "papers"}};
  for (const PairCount& pc : pair_counts(c, 4)) {
    table.add_row({pc.dataset, pc.architecture, std::to_string(pc.papers)});
    csv.push_back({pc.dataset, pc.architecture, std::to_string(pc.papers)});
  }
  std::printf("%s\n", table.render().c_str());
  report::write_csv(args.out_dir + "/table1_pairs.csv", csv);
  std::printf("wrote %s/table1_pairs.csv\n\n", args.out_dir.c_str());

  const CorpusSummary s = summarize(c);
  std::printf("Fragmentation totals (paper §4.2): %d datasets, %d architectures, %d pairs\n",
              s.datasets, s.architectures, s.pairs);
  std::printf("Paper reports: 49 datasets, 132 architectures, 195 pairs\n");

  // The paper's observation that 3 of the top 6 pairs involve MNIST.
  const auto top = pair_counts(c, 4);
  int mnist_in_top6 = 0;
  for (size_t i = 0; i < 6 && i < top.size(); ++i) mnist_in_top6 += top[i].dataset == "MNIST";
  std::printf("MNIST pairs among the six most common: %d (paper: 3)\n", mnist_in_top6);
  return 0;
}
