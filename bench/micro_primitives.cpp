// Microbenchmarks (google-benchmark) for the primitives everything else is
// built on: GEMM, im2col lowering, conv forward/backward, batchnorm,
// scoring, mask allocation, and full prune_model calls. Includes the
// mask-enforcement ablation called out in DESIGN.md: how much does
// re-applying masks after every optimizer step cost?
#include <benchmark/benchmark.h>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "nn/optimizer.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/simd.hpp"
#include "tensor/threadpool.hpp"

namespace sb = shrinkbench;

namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  sb::Rng rng(1);
  sb::Tensor a({n, n}), b({n, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  for (auto _ : state) {
    sb::Tensor c = sb::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Thread-pool scaling for the same GEMM. Separate benchmark name (not an
// extra BM_Gemm arg) so the single-thread BM_Gemm baseline entries in
// BENCH_perf.json keep their names and stay comparable across commits.
void BM_GemmMT(benchmark::State& state) {
  const int64_t n = state.range(0);
  sb::ThreadPool& pool = sb::ThreadPool::instance();
  const int original = pool.threads();
  pool.set_threads(static_cast<int>(state.range(1)));
  sb::Rng rng(1);
  sb::Tensor a({n, n}), b({n, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  for (auto _ : state) {
    sb::Tensor c = sb::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  pool.set_threads(original);
}
// Wall-clock, not CPU time: the calling thread sleeps while pool workers
// run, so the default CPU-time metric would overstate throughput.
BENCHMARK(BM_GemmMT)->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({512, 4})->UseRealTime();

// Per-tier block-kernel microbenchmark: drives each SIMD tier's packed
// kernel directly through simd::block_kernel (bypassing SB_SIMD
// dispatch), so one run reports every tier side by side. An unsupported
// tier skips with an error note instead of silently falling back —
// check_regression records the skip rather than comparing bogus numbers.
void BM_GemmKernel(benchmark::State& state) {
  const auto level = static_cast<sb::simd::Level>(state.range(0));
  const bool supported =
      level == sb::simd::Level::Scalar ||
      (level == sb::simd::Level::Avx2 && sb::simd::cpu_supports_avx2()) ||
      (level == sb::simd::Level::Avx512 && sb::simd::cpu_supports_avx512());
  state.SetLabel(sb::simd::level_name(level));
  if (!supported) {
    state.SkipWithError("simd level unsupported on this host/build");
    return;
  }
  // One gemm.cpp cache block: the packed shapes the kernel actually sees.
  const int64_t m = 64, n = 256, k = 256;
  sb::Rng rng(1);
  sb::Tensor a({m, k}), b({k, n}), c({m, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  const sb::simd::BlockKernelFn kernel = sb::simd::block_kernel(level);
  for (auto _ : state) {
    kernel(m, n, k, a.data(), k, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * n * k);
}
BENCHMARK(BM_GemmKernel)->Arg(0)->Arg(1)->Arg(2);

void BM_GemmSparseA(benchmark::State& state) {
  // The kernel skips zero A entries; measure the pruned-weight fast path.
  const int64_t n = 128;
  sb::Rng rng(1);
  sb::Tensor a({n, n}), b({n, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  for (float& v : a.flat()) {
    if (rng.uniform() < sparsity) v = 0.0f;
  }
  for (auto _ : state) {
    sb::Tensor c = sb::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmSparseA)->Arg(0)->Arg(75)->Arg(94);

void BM_Im2col(benchmark::State& state) {
  const sb::ConvGeometry g{16, 12, 12, 3, 3, 1, 1};
  sb::Rng rng(2);
  sb::Tensor img({g.in_c, g.in_h, g.in_w});
  rng.fill_normal(img, 0, 1);
  std::vector<float> cols(static_cast<size_t>(g.col_rows() * g.col_cols()));
  for (auto _ : state) {
    sb::im2col(g, img.data(), cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_ConvForward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  sb::Conv2d conv("c", 16, 16, 3, 1, 1, false);
  sb::Rng rng(3);
  sb::kaiming_normal(conv.weight().data, rng);
  sb::Tensor x({batch, 16, 8, 8});
  rng.fill_normal(x, 0, 1);
  for (auto _ : state) {
    sb::Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.flops({16, 8, 8}) * batch);
}
BENCHMARK(BM_ConvForward)->Arg(1)->Arg(16)->Arg(64);

// Conv forward across (batch × pool width): the fused (sample ×
// out-channel-tile) grid must scale with threads even at batch 1, where
// the old per-sample split starved the pool — the batch axis tracks
// exactly that small-batch starvation.
void BM_ConvForwardMT(benchmark::State& state) {
  sb::ThreadPool& pool = sb::ThreadPool::instance();
  const int original = pool.threads();
  const int64_t batch = state.range(0);
  pool.set_threads(static_cast<int>(state.range(1)));
  sb::Conv2d conv("c", 16, 16, 3, 1, 1, false);
  sb::Rng rng(3);
  sb::kaiming_normal(conv.weight().data, rng);
  sb::Tensor x({batch, 16, 8, 8});
  rng.fill_normal(x, 0, 1);
  for (auto _ : state) {
    sb::Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.flops({16, 8, 8}) * batch);
  pool.set_threads(original);
}
BENCHMARK(BM_ConvForwardMT)
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->UseRealTime();

void BM_ConvBackward(benchmark::State& state) {
  sb::Conv2d conv("c", 16, 16, 3, 1, 1, false);
  sb::Rng rng(4);
  sb::kaiming_normal(conv.weight().data, rng);
  sb::Tensor x({32, 16, 8, 8}), dy({32, 16, 8, 8});
  rng.fill_normal(x, 0, 1);
  rng.fill_normal(dy, 0, 1);
  for (auto _ : state) {
    conv.forward(x, true);
    sb::Tensor dx = conv.backward(dy);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_BatchNormForward(benchmark::State& state) {
  sb::BatchNorm2d bn("bn", 32);
  sb::Rng rng(5);
  sb::Tensor x({64, 32, 8, 8});
  rng.fill_normal(x, 0, 1);
  for (auto _ : state) {
    sb::Tensor y = bn.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_ScoreMagnitude(benchmark::State& state) {
  sb::Parameter p("w", {512, 256}, true);
  sb::Rng rng(6);
  rng.fill_normal(p.data, 0, 1);
  for (auto _ : state) {
    sb::Tensor s = sb::score_parameter(sb::ScoreKind::Magnitude, p, {}, rng);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(state.iterations() * p.numel());
}
BENCHMARK(BM_ScoreMagnitude);

void BM_AllocateGlobal(benchmark::State& state) {
  sb::Rng rng(7);
  sb::Parameter p1("a", {512, 256}, true), p2("b", {1024, 128}, true);
  rng.fill_normal(p1.data, 0, 1);
  rng.fill_normal(p2.data, 0, 1);
  for (auto _ : state) {
    std::vector<sb::ScoredParam> scored;
    scored.push_back({&p1, sb::score_parameter(sb::ScoreKind::Magnitude, p1, {}, rng)});
    scored.push_back({&p2, sb::score_parameter(sb::ScoreKind::Magnitude, p2, {}, rng)});
    benchmark::DoNotOptimize(
        sb::allocate_masks(scored, sb::AllocationScope::Global, sb::Structure::Unstructured,
                           0.25));
  }
  state.SetItemsProcessed(state.iterations() * (p1.numel() + p2.numel()));
}
BENCHMARK(BM_AllocateGlobal);

void BM_PruneResNet20(benchmark::State& state) {
  auto bundle = sb::make_synthetic(sb::synth_cifar());
  auto model = sb::make_model("resnet-20", bundle.train.sample_shape(), 10, 8);
  sb::Rng init(1);
  sb::init_model(*model, init);
  sb::Rng rng(2);
  const auto strategy = sb::strategy_from_name("global-weight");
  for (auto _ : state) {
    sb::prune_model(*model, strategy, 0.25, bundle.train, {}, rng);
    benchmark::DoNotOptimize(model.get());
    state.PauseTiming();
    for (sb::Parameter* p : sb::parameters_of(*model)) p->mask.fill(1.0f);  // reset
    state.ResumeTiming();
  }
}
BENCHMARK(BM_PruneResNet20);

// Ablation: mask re-application cost inside the optimizer step. The
// invariant "pruned weights stay zero" is enforced every step; this
// measures its price relative to the bare update.
void BM_SgdStep(benchmark::State& state) {
  const bool with_mask_overhead = state.range(0) != 0;
  auto bundle = sb::make_synthetic(sb::synth_cifar());
  auto model = sb::make_model("resnet-20", bundle.train.sample_shape(), 10, 8);
  sb::Rng init(1);
  sb::init_model(*model, init);
  auto params = sb::parameters_of(*model);
  if (with_mask_overhead) {
    sb::Rng rng(2);
    sb::prune_model(*model, sb::strategy_from_name("global-weight"), 0.25, bundle.train, {}, rng);
  }
  sb::SGD opt(params, {.lr = 1e-3f, .momentum = 0.9f});
  for (sb::Parameter* p : params) p->grad.fill(1e-4f);
  for (auto _ : state) {
    opt.step();  // step() always re-applies masks; arg toggles mask density
    benchmark::DoNotOptimize(params.data());
  }
}
BENCHMARK(BM_SgdStep)->Arg(0)->Arg(1);

}  // namespace

// Custom main so every report (and BENCH_perf.json derived from the JSON
// output; see bench/check_regression.cpp) records which GEMM kernel ran.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("simd", sb::simd::level_name(sb::simd::active_level()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
