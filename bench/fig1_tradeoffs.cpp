// Figure 1: "Size and speed vs accuracy tradeoffs for different pruning
// methods and families of architectures."
//
// Unpruned family curves come from published results (Tan & Le 2019,
// Bianco et al. 2018); pruned points come from the corpus under the
// paper's footnote-1 normalization: reported size/FLOP fractions are
// multiplied by each architecture's median self-reported baseline, and
// accuracy deltas are added to the median baseline accuracy.
//
// Shape expectations (paper §3.3): pruned models sometimes beat their own
// original architecture; pruning rarely beats a better architecture
// (EfficientNet dominates everything); pruning helps inefficient
// architectures (VGG) far more than efficient ones (MobileNet-v2).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "corpus/analysis.hpp"
#include "corpus/families.hpp"

using namespace shrinkbench;
using namespace shrinkbench::corpus;

namespace {

struct PrunedFamily {
  std::string label;
  std::vector<std::string> architectures;
};

void emit_panel(bool top5, bool flops, std::vector<std::vector<std::string>>& csv) {
  const Corpus& c = pruning_corpus();
  std::vector<report::Series> series;

  // Unpruned architecture families.
  for (const auto& family : architecture_families()) {
    report::Series s;
    s.label = family.name + " (" + std::to_string(family.year) + ")";
    for (const auto& m : family.members) {
      s.x.push_back(flops ? m.flops_billions : m.params_millions);
      s.y.push_back(top5 ? m.top5 : m.top1);
      csv.push_back({family.name, m.name, report::Table::num(m.params_millions, 2),
                     report::Table::num(m.flops_billions, 2), report::Table::num(m.top1, 2),
                     report::Table::num(m.top5, 2), "original"});
    }
    series.push_back(std::move(s));
  }

  // Pruned families (normalized corpus points).
  const std::vector<PrunedFamily> pruned = {
      {"MobileNet-v2 Pruned", {"MobileNet-V2"}},
      {"ResNet Pruned", {"ResNet-18", "ResNet-34", "ResNet-50"}},
      {"VGG Pruned", {"VGG-16"}},
  };
  for (const auto& family : pruned) {
    report::Series s;
    s.label = family.label;
    for (const auto& arch : family.architectures) {
      for (const auto& p : normalized_pruned_points(c, "ImageNet", arch)) {
        if (top5 && !p.has_top5) continue;
        if (flops && !p.has_flops) continue;
        s.x.push_back(flops ? p.flops_billions : p.params_millions);
        s.y.push_back(top5 ? p.top5 : p.top1);
        csv.push_back({family.label, p.method, report::Table::num(p.params_millions, 2),
                       report::Table::num(p.has_flops ? p.flops_billions : 0.0, 2),
                       report::Table::num(p.top1, 2),
                       report::Table::num(p.has_top5 ? p.top5 : 0.0, 2), "pruned"});
      }
    }
    if (!s.x.empty()) series.push_back(std::move(s));
  }

  report::ChartOptions opts;
  opts.log_x = true;
  opts.x_label = flops ? "Number of FLOPs (billions of madds)" : "Number of Parameters (millions)";
  opts.title = std::string("Figure 1 panel: ") + (top5 ? "Top-5" : "Top-1") + " accuracy vs " +
               (flops ? "FLOPs" : "parameters");
  std::printf("%s\n", report::render_chart(series, opts).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Figure 1: Speed and Size Tradeoffs for Original and Pruned Models ===\n\n");

  // Median baselines used by the normalization (footnote 1).
  report::Table base({"architecture", "median params (M)", "median GFLOPs", "median top1",
                      "median top5", "reporting papers"});
  for (const char* arch : {"VGG-16", "ResNet-50", "ResNet-18", "ResNet-34", "MobileNet-V2"}) {
    const BaselineMedians m = median_baselines(pruning_corpus(), arch);
    base.add_row({arch, report::Table::num(m.params_millions, 1),
                  report::Table::num(m.flops_billions, 2), report::Table::num(m.top1, 2),
                  report::Table::num(m.top5, 2), std::to_string(m.reporting_papers)});
  }
  std::printf("Normalization baselines (median across papers reporting one):\n%s\n",
              base.render().c_str());

  std::vector<std::vector<std::string>> csv{
      {"family", "point", "params_millions", "gflops", "top1", "top5", "kind"}};
  emit_panel(/*top5=*/false, /*flops=*/false, csv);
  emit_panel(/*top5=*/true, /*flops=*/false, csv);
  emit_panel(/*top5=*/false, /*flops=*/true, csv);
  emit_panel(/*top5=*/true, /*flops=*/true, csv);
  report::write_csv(args.out_dir + "/fig1_tradeoffs.csv", csv);
  std::printf("wrote %s/fig1_tradeoffs.csv\n", args.out_dir.c_str());

  // Headline checks from §3.3.
  const auto vgg_pruned = normalized_pruned_points(pruning_corpus(), "ImageNet", "VGG-16");
  double best_pruned_vgg = 0;
  for (const auto& p : vgg_pruned) best_pruned_vgg = std::max(best_pruned_vgg, p.top1);
  std::printf("\nShape checks:\n");
  std::printf("  pruned VGG-16 best top1 %.2f vs original 71.6 -> %s\n", best_pruned_vgg,
              best_pruned_vgg > 71.6 ? "pruning can beat its own baseline" : "(below baseline)");
  std::printf("  EfficientNet-B0 (5.3M params) top1 77.1 beats every pruned VGG/ResNet point\n");
  return 0;
}
