// Figure 2: "Reported comparisons between papers."
//
// Top: for each paper, how many other papers compare to it (in-degree of
// the comparison graph). Bottom: how many other papers each paper compares
// to (out-degree), split by peer-review status.
#include <cstdio>

#include "bench_common.hpp"
#include "corpus/analysis.hpp"

using namespace shrinkbench;
using namespace shrinkbench::corpus;

namespace {

void print_histogram(const SplitHistogram& hist, const std::string& title,
                     const std::string& x_label, std::vector<std::vector<std::string>>& csv) {
  std::printf("%s\n", title.c_str());
  report::Table table({x_label, "peer-reviewed", "other", "total"});
  for (int k = 0; k <= hist.max_key(); ++k) {
    const int peer = hist.peer_reviewed.count(k) ? hist.peer_reviewed.at(k) : 0;
    const int other = hist.other.count(k) ? hist.other.at(k) : 0;
    if (peer + other == 0) continue;
    table.add_row({std::to_string(k), std::to_string(peer), std::to_string(other),
                   std::to_string(peer + other)});
    csv.push_back({title, std::to_string(k), std::to_string(peer), std::to_string(other)});
  }
  std::printf("%s", table.render().c_str());

  // Bar rendering.
  for (int k = 0; k <= hist.max_key(); ++k) {
    const int total = hist.total(k);
    if (total == 0) continue;
    std::printf("  %2d | %s (%d)\n", k, std::string(static_cast<size_t>(total), '#').c_str(),
                total);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const Corpus& c = pruning_corpus();
  std::printf("=== Figure 2: Reported comparisons between papers ===\n\n");

  std::vector<std::vector<std::string>> csv{{"histogram", "k", "peer_reviewed", "other"}};
  print_histogram(compared_to_histogram(c),
                  "Number of Papers Comparing to a Given Paper (in-degree)",
                  "compared to by k papers", csv);
  print_histogram(compares_to_histogram(c),
                  "Number of Papers a Given Paper Compares To (out-degree)",
                  "compares to k papers", csv);
  report::write_csv(args.out_dir + "/fig2_comparisons.csv", csv);
  std::printf("wrote %s/fig2_comparisons.csv\n\n", args.out_dir.c_str());

  const CorpusSummary s = summarize(c);
  std::printf("Headline claims (paper §4.1):\n");
  std::printf("  %d/81 papers compare to no other pruning method (paper: 'more than a fourth')\n",
              s.compare_to_none);
  std::printf("  %d/81 compare to at most one (paper: 'half')\n", s.compare_to_at_most_one);
  std::printf("  %d/81 compare to three or fewer (paper: 'nearly all')\n",
              s.compare_to_at_most_three);
  std::printf("  %d modern papers have never been compared to by any later study\n",
              s.never_compared_to);
  return 0;
}
