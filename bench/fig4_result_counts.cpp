// Figure 4: "Number of results reported by each paper, excluding MNIST."
//
// Top: histogram of how many (dataset, architecture) pairs each paper
// uses. Bottom: how many points each tradeoff curve uses on the common
// configurations. Both split by peer-review status.
#include <cstdio>

#include "bench_common.hpp"
#include "corpus/analysis.hpp"

using namespace shrinkbench;
using namespace shrinkbench::corpus;

namespace {

void print_split(const SplitHistogram& hist, const std::string& title, const std::string& unit,
                 std::vector<std::vector<std::string>>& csv) {
  std::printf("%s\n", title.c_str());
  report::Table table({unit, "peer-reviewed", "other", "total"});
  for (int k = 1; k <= hist.max_key(); ++k) {
    const int peer = hist.peer_reviewed.count(k) ? hist.peer_reviewed.at(k) : 0;
    const int other = hist.other.count(k) ? hist.other.at(k) : 0;
    if (peer + other == 0) continue;
    table.add_row({std::to_string(k), std::to_string(peer), std::to_string(other),
                   std::to_string(peer + other)});
    csv.push_back({title, std::to_string(k), std::to_string(peer), std::to_string(other)});
  }
  std::printf("%s", table.render().c_str());
  for (int k = 1; k <= hist.max_key(); ++k) {
    if (hist.total(k) == 0) continue;
    std::printf("  %2d | %s (%d)\n", k,
                std::string(static_cast<size_t>(hist.total(k)), '#').c_str(), hist.total(k));
  }
  std::printf("\n");
}

int cumulative_at_most(const SplitHistogram& h, int kmax) {
  int total = 0;
  for (int k = 0; k <= kmax; ++k) total += h.total(k);
  return total;
}

int grand_total(const SplitHistogram& h) { return cumulative_at_most(h, h.max_key()); }

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const Corpus& c = pruning_corpus();
  std::printf("=== Figure 4: Number of results reported by each paper (excluding MNIST) ===\n\n");

  std::vector<std::vector<std::string>> csv{{"histogram", "k", "peer_reviewed", "other"}};
  const SplitHistogram pairs = pairs_per_paper_histogram(c, /*exclude_mnist=*/true);
  print_split(pairs, "Number of (Dataset, Architecture) Pairs Used", "pairs", csv);

  const SplitHistogram points = points_per_curve_histogram(c);
  print_split(points, "Number of Points used to Characterize Tradeoff Curve", "points", csv);

  report::write_csv(args.out_dir + "/fig4_result_counts.csv", csv);
  std::printf("wrote %s/fig4_result_counts.csv\n\n", args.out_dir.c_str());

  std::printf("Headline claims (paper §4.4):\n");
  std::printf("  papers using at most 3 pairs: %d of %d\n", cumulative_at_most(pairs, 3),
              grand_total(pairs));
  std::printf("  curves characterized by at most 3 points: %d of %d\n",
              cumulative_at_most(points, 3), grand_total(points));
  std::printf("  (the paper recommends >= 5 operating points, e.g. {2, 4, 8, 16, 32})\n");
  return 0;
}
