// Figures 17-18 (Appendix D): ResNet-18 on ImageNet(-sim) — accuracy vs
// compression (fig 17) and vs theoretical speedup (fig 18) for the four
// non-random baselines. The sweep shares its configuration with Figure 6,
// so its experiments come from the result cache when fig6 ran first.
#include <cstdio>

#include "bench_common.hpp"

using namespace shrinkbench;
using namespace shrinkbench::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("=== Figures 17-18: ResNet-18 on ImageNet-sim (appendix panels) ===\n\n");

  ExperimentRunner runner(args.cache_dir);
  ExperimentConfig base;
  base.dataset = "synth-imagenet";
  base.arch = "resnet-18";
  base.width = 8;
  base.pretrain = bench_pretrain(args.full);
  base.finetune = bench_imagenet_finetune(args.full);

  const std::vector<std::string> strategies = {"global-weight", "layer-weight",
                                               "global-gradient", "layer-gradient"};
  const std::vector<double> ratios = {1, 2, 4, 8, 16, 32};
  const std::vector<uint64_t> seeds = args.full ? std::vector<uint64_t>{1, 2, 3}
                                                : std::vector<uint64_t>{1};

  BenchStatus status;
  SweepSummary summary;
  const auto results = run_sweep(runner, base, strategies, ratios, seeds,
                                 sweep_options(args, "fig17_18_resnet18"), &summary);
  status.add(summary);
  if (summary.interrupted) {
    save_results(args, "fig17_18_resnet18", results);
    return status.finish();
  }
  const auto agg = aggregate_by_strategy(results);
  print_tradeoff_table(agg, "ResNet-18 on synth-imagenet:");
  std::printf("%s\n", tradeoff_chart(agg, XAxis::Compression,
                                     "Figure 17: ResNet-18 — accuracy vs compression")
                          .c_str());
  std::printf("%s\n", tradeoff_chart(agg, XAxis::Speedup,
                                     "Figure 18: ResNet-18 — accuracy vs theoretical speedup")
                          .c_str());
  save_results(args, "fig17_18_resnet18", results);

  // Top-5 is also reported for many-class datasets (paper §6 checklist).
  report::Table top5({"strategy", "target", "top5 (mean)"});
  for (const auto& [strategy, points] : agg) {
    for (const auto& p : points) {
      top5.add_row({display_name(strategy), report::Table::num(p.target, 0),
                    report::Table::num(p.top5_mean, 4)});
    }
  }
  std::printf("Top-5 accuracy (same sweep):\n%s\n", top5.render().c_str());
  return status.finish();
}
