// Ablation: does unstructured sparsity buy real wall-clock speedup?
//
// The paper (§2.3) cautions that an unstructured-pruned network "may not
// be arranged in a fashion conducive to speedups using modern libraries
// and hardware" — theoretical speedup (madds ratio) is a proxy. This bench
// times the dense GEMM-based kernels against CSR sparse kernels for conv
// and linear layers across sparsity levels and reports the crossover: the
// sparsity below which "N× theoretical speedup" delivers <1× wall-clock.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "nn/init.hpp"
#include "metrics/storage.hpp"
#include "models/zoo.hpp"
#include "nn/sparse.hpp"

using namespace shrinkbench;

namespace {

double time_seconds(const std::function<void()>& fn, int reps) {
  fn();  // warm-up
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() /
         reps;
}

void apply_sparsity(Parameter& p, double sparsity, Rng& rng) {
  p.mask.fill(1.0f);
  for (float& v : p.mask.flat()) {
    if (rng.uniform() < sparsity) v = 0.0f;
  }
  p.apply_mask();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Ablation: unstructured sparsity vs real inference time ===\n\n");

  Rng rng(1);
  const int reps = args.full ? 60 : 25;
  std::vector<std::vector<std::string>> csv{
      {"kernel", "sparsity", "theoretical_speedup", "wallclock_speedup"}};

  // Conv: 32->32 channels, 3x3, 12x12 maps, batch 32 — a mid-size layer.
  {
    Conv2d conv("c", 32, 32, 3, 1, 1, false);
    kaiming_normal(conv.weight().data, rng);
    Tensor x({32, 32, 12, 12});
    rng.fill_normal(x, 0, 1);
    const double dense_time = time_seconds([&] { conv.forward(x, false); }, reps);

    report::Table table(
        {"conv sparsity", "theoretical speedup", "dense ms", "sparse ms", "wall-clock speedup"});
    for (const double sparsity : {0.0, 0.5, 0.75, 0.9, 0.97, 0.99}) {
      apply_sparsity(conv.weight(), sparsity, rng);
      const SparseConv2dInference sparse(conv);
      const double sparse_time = time_seconds([&] { sparse.forward(x); }, reps);
      const double theoretical = 1.0 / std::max(1e-9, 1.0 - sparsity);
      const double wallclock = dense_time / sparse_time;
      table.add_row({report::Table::num(sparsity, 2), report::Table::num(theoretical, 1),
                     report::Table::num(dense_time * 1e3, 3),
                     report::Table::num(sparse_time * 1e3, 3),
                     report::Table::num(wallclock, 2)});
      csv.push_back({"conv3x3-32ch", report::Table::num(sparsity, 2),
                     report::Table::num(theoretical, 2), report::Table::num(wallclock, 3)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  // Linear: 512 -> 512, batch 64.
  {
    Linear fc("fc", 512, 512, false);
    kaiming_normal(fc.weight().data, rng);
    Tensor x({64, 512});
    rng.fill_normal(x, 0, 1);
    const double dense_time = time_seconds([&] { fc.forward(x, false); }, reps);

    report::Table table(
        {"linear sparsity", "theoretical speedup", "dense ms", "sparse ms", "wall-clock speedup"});
    for (const double sparsity : {0.0, 0.5, 0.75, 0.9, 0.97, 0.99}) {
      apply_sparsity(fc.weight(), sparsity, rng);
      const SparseLinearInference sparse(fc);
      const double sparse_time = time_seconds([&] { sparse.forward(x); }, reps);
      const double theoretical = 1.0 / std::max(1e-9, 1.0 - sparsity);
      table.add_row({report::Table::num(sparsity, 2), report::Table::num(theoretical, 1),
                     report::Table::num(dense_time * 1e3, 3),
                     report::Table::num(sparse_time * 1e3, 3),
                     report::Table::num(dense_time / sparse_time, 2)});
      csv.push_back({"linear-512", report::Table::num(sparsity, 2),
                     report::Table::num(theoretical, 2),
                     report::Table::num(dense_time / sparse_time, 3)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  report::write_csv(args.out_dir + "/ablation_sparse_inference.csv", csv);
  std::printf("wrote %s/ablation_sparse_inference.csv\n\n", args.out_dir.c_str());

  // Storage view of the same story (§2.4's "storage footprint" goal):
  // sparse formats pay index overhead, so light pruning can *grow* a model.
  {
    auto model = make_model("resnet-20", {3, 8, 8}, 10, 8);
    report::Table table({"prunable sparsity", "dense KB", "CSR KB", "bitmap KB",
                         "best bytes-compression"});
    Rng srng(9);
    for (const double sparsity : {0.0, 0.5, 0.75, 0.9, 0.97}) {
      for (Parameter* p : parameters_of(*model)) {
        if (p->prunable) {
          p->mask.fill(1.0f);
          for (float& v : p->mask.flat()) {
            if (srng.uniform() < sparsity) v = 0.0f;
          }
          p->apply_mask();
        }
      }
      const double dense = storage_bytes(*model, StorageFormat::Dense) / 1024.0;
      const double csr_kb = storage_bytes(*model, StorageFormat::SparseCsr) / 1024.0;
      const double bitmap = storage_bytes(*model, StorageFormat::DenseBitmap) / 1024.0;
      table.add_row({report::Table::num(sparsity, 2), report::Table::num(dense, 1),
                     report::Table::num(csr_kb, 1), report::Table::num(bitmap, 1),
                     report::Table::num(dense / std::min(csr_kb, bitmap), 2)});
    }
    std::printf("Storage footprint of a ResNet-20 under random masks:\n%s\n",
                table.render().c_str());
  }

  std::printf("Reading: wall-clock speedup lags theoretical speedup badly until sparsity is\n"
              "extreme, and CSR storage is *larger* than dense until ~50%% sparsity — the\n"
              "paper's warning that parameter/FLOP counts are loose proxies for real\n"
              "latency and size, demonstrated on this repository's own kernels.\n");
  return 0;
}
