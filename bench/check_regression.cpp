// Perf-baseline tooling for the BENCH_perf.json workflow.
//
//   check_regression emit <gbench.json> <out.json>
//       Post-processes google-benchmark --benchmark_format=json output
//       into the compact committed-baseline schema:
//       {schema, simd, benchmarks: [{name, ns, items_per_sec}]}.
//       Benchmarks that called SkipWithError (e.g. BM_GemmKernel's
//       avx512 entry on a host without AVX-512) are recorded as
//       {name, skipped: true} instead of fake timings.
//
//   check_regression check <baseline.json> <current.json> [--tolerance F]
//       Compares a fresh run (same compact schema) against the committed
//       baseline. A benchmark regresses when its time grows by more than
//       the tolerance band (default 0.35 = 35%); a benchmark missing
//       from the current run also fails, so silently compiled-out
//       kernels surface. Entries skipped on either side are reported as
//       a notice, never a failure — an AVX2-only host checking a
//       baseline emitted on an AVX-512 box must still pass. Also
//       enforces the multithread scaling gate: the fused conv grid must
//       give BM_ConvForwardMT/64 a >= 1.6x threads-4 speedup over
//       threads-1, skipped with a logged reason on hosts with fewer
//       than 4 cores (the ratio is noise there).
//       Exit code 0 = within band, 1 = regression.
//
// Typical flow (also run by CI in quick mode):
//   ./micro_primitives --benchmark_format=json > /tmp/raw.json
//   ./check_regression emit /tmp/raw.json /tmp/current.json
//   ./check_regression check BENCH_perf.json /tmp/current.json
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

// ---------------------------------------------------------------------
// Minimal strict JSON parser (this tool reads benchmark output; the main
// library only ever writes JSON).
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object[key.string] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    expect('"');
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            v.string += '?';
            pos_ += 4;
            break;
          default: fail("unknown escape");
        }
      } else {
        v.string += c;
      }
    }
  }

  JsonValue number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

JsonValue parse_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::stringstream buf;
  buf << is.rdbuf();
  return JsonParser(buf.str()).parse();
}

// ---------------------------------------------------------------------

struct Entry {
  std::string name;
  double ns = 0.0;
  double items_per_sec = 0.0;  // 0 when the bench reports no items
  bool skipped = false;        // bench ran SkipWithError (no timings)
};

double to_ns(double t, const std::string& unit) {
  if (unit == "ns" || unit.empty()) return t;
  if (unit == "us") return t * 1e3;
  if (unit == "ms") return t * 1e6;
  if (unit == "s") return t * 1e9;
  throw std::runtime_error("unknown time_unit '" + unit + "'");
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

int emit(const std::string& in_path, const std::string& out_path) {
  const JsonValue root = parse_file(in_path);
  std::string simd = "unknown";
  if (root.has("context") && root.at("context").has("simd")) {
    simd = root.at("context").at("simd").string;
  }
  std::vector<Entry> entries;
  for (const JsonValue& b : root.at("benchmarks").array) {
    // Skip aggregate rows (mean/median/stddev of repetition runs).
    if (b.has("run_type") && b.at("run_type").string != "iteration") continue;
    Entry e;
    e.name = b.at("name").string;
    if (b.has("error_occurred") && b.at("error_occurred").boolean) {
      e.skipped = true;  // SkipWithError: record the skip, not fake timings
    } else {
      e.ns = to_ns(b.at("real_time").number, b.has("time_unit") ? b.at("time_unit").string : "ns");
      if (b.has("items_per_second")) e.items_per_sec = b.at("items_per_second").number;
    }
    entries.push_back(std::move(e));
  }
  std::ofstream os(out_path);
  if (!os) throw std::runtime_error("cannot write " + out_path);
  os << "{\n  \"schema\": \"shrinkbench.bench_perf/v1\",\n";
  os << "  \"simd\": \"" << simd << "\",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (e.skipped) {
      os << "    {\"name\": \"" << e.name << "\", \"skipped\": true}";
    } else {
      os << "    {\"name\": \"" << e.name << "\", \"ns\": " << json_num(e.ns)
         << ", \"items_per_sec\": " << json_num(e.items_per_sec) << "}";
    }
    os << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  std::printf("wrote %s (%zu benchmarks, simd=%s)\n", out_path.c_str(), entries.size(),
              simd.c_str());
  return 0;
}

std::map<std::string, Entry> load_perf(const std::string& path) {
  const JsonValue root = parse_file(path);
  if (!root.has("benchmarks")) throw std::runtime_error(path + ": no 'benchmarks' array");
  std::map<std::string, Entry> out;
  for (const JsonValue& b : root.at("benchmarks").array) {
    Entry e;
    e.name = b.at("name").string;
    if (b.has("skipped") && b.at("skipped").boolean) e.skipped = true;
    if (b.has("ns")) e.ns = b.at("ns").number;
    if (b.has("items_per_sec")) e.items_per_sec = b.at("items_per_sec").number;
    out[e.name] = std::move(e);
  }
  return out;
}

// Multithread scaling gate on the current run: the fused (sample ×
// out-channel-tile) conv grid must turn pool threads into wall-clock
// speedup, not just pool overhead. Compares BM_ConvForwardMT/64 at
// threads 4 vs threads 1 and requires >= kMinConvSpeedup. On hosts with
// fewer than 4 hardware cores the threads-4 run just time-slices one
// core, so the gate logs why it is skipped instead of failing.
constexpr double kMinConvSpeedup = 1.6;

int mt_scaling_gate(const std::map<std::string, Entry>& current) {
  const std::string t1 = "BM_ConvForwardMT/64/1/real_time";
  const std::string t4 = "BM_ConvForwardMT/64/4/real_time";
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 4) {
    std::printf("mt-gate  skipped: host has %u hardware core(s) (< 4); threads-4 scaling is "
                "unmeasurable here\n",
                cores);
    return 0;
  }
  const auto i1 = current.find(t1);
  const auto i4 = current.find(t4);
  if (i1 == current.end() || i4 == current.end() || i1->second.skipped || i4->second.skipped) {
    std::printf("mt-gate  skipped: %s / %s not present in the current run\n", t1.c_str(),
                t4.c_str());
    return 0;
  }
  const double speedup = i4->second.ns > 0.0 ? i1->second.ns / i4->second.ns : 0.0;
  if (speedup < kMinConvSpeedup) {
    std::printf("REGRESS  mt-gate: conv forward threads-4 speedup %.2fx < required %.2fx\n",
                speedup, kMinConvSpeedup);
    return 1;
  }
  std::printf("ok       mt-gate: conv forward threads-4 speedup %.2fx (>= %.2fx)\n", speedup,
              kMinConvSpeedup);
  return 0;
}

int check(const std::string& base_path, const std::string& cur_path, double tolerance) {
  const auto baseline = load_perf(base_path);
  const auto current = load_perf(cur_path);
  int regressions = 0;
  for (const auto& [name, base] : baseline) {
    const auto it = current.find(name);
    if (it == current.end()) {
      if (base.skipped) {
        std::printf("skipped  %-32s (skipped in baseline, absent from current run)\n",
                    name.c_str());
        continue;
      }
      std::printf("MISSING  %-32s (in baseline, absent from current run)\n", name.c_str());
      ++regressions;
      continue;
    }
    if (base.skipped || it->second.skipped) {
      // A tier unavailable on this host (or on the baseline host) is a
      // notice, not a regression: hosts of different ISA levels share
      // one committed baseline.
      std::printf("skipped  %-32s (%s)\n", name.c_str(),
                  it->second.skipped ? "skipped in current run" : "skipped in baseline");
      continue;
    }
    const double ratio = base.ns > 0.0 ? it->second.ns / base.ns : 1.0;
    const bool bad = ratio > 1.0 + tolerance;
    std::printf("%s %-32s %12.0f ns -> %12.0f ns  (%+6.1f%%)\n", bad ? "REGRESS " : "ok      ",
                name.c_str(), base.ns, it->second.ns, (ratio - 1.0) * 100.0);
    if (bad) ++regressions;
  }
  for (const auto& [name, cur] : current) {
    if (baseline.find(name) == baseline.end()) {
      std::printf("new      %-32s %12.0f ns (not in baseline)\n", name.c_str(), cur.ns);
    }
  }
  regressions += mt_scaling_gate(current);
  if (regressions > 0) {
    std::printf("FAIL: %d benchmark(s) regressed beyond the %.0f%% tolerance band\n", regressions,
                tolerance * 100.0);
    return 1;
  }
  std::printf("OK: all %zu baseline benchmarks within the %.0f%% tolerance band\n",
              baseline.size(), tolerance * 100.0);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  check_regression emit <gbench.json> <out.json>\n"
               "  check_regression check <baseline.json> <current.json> [--tolerance F]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 4 && std::strcmp(argv[1], "emit") == 0) {
      return emit(argv[2], argv[3]);
    }
    if (argc >= 4 && std::strcmp(argv[1], "check") == 0) {
      double tolerance = 0.35;
      for (int i = 4; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0) tolerance = std::atof(argv[i + 1]);
      }
      return check(argv[2], argv[3], tolerance);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "check_regression: %s\n", e.what());
    return 2;
  }
}
