// Shared infrastructure for the figure/table benches.
//
// Every bench accepts:
//   --full        larger sweeps (more seeds, longer fine-tuning)
//   --out <dir>   where CSV outputs go (default: bench_out)
//   --cache <dir> pretrained/result cache (default: $SHRINKBENCH_CACHE or .sb_cache)
//
// Results are cached by config fingerprint, so re-running a bench — or
// running two benches that share configurations — is nearly free.
#pragma once

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "metrics/metrics.hpp"
#include "obs/telemetry.hpp"
#include "report/chart.hpp"
#include "report/table.hpp"

namespace shrinkbench::bench {

struct BenchArgs {
  bool full = false;
  std::string out_dir = "bench_out";
  std::string cache_dir = default_cache_dir();
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--full") {
      args.full = true;
    } else if (a == "--out" && i + 1 < argc) {
      args.out_dir = argv[++i];
    } else if (a == "--cache" && i + 1 < argc) {
      args.cache_dir = argv[++i];
    } else if (a == "--help") {
      std::printf("usage: %s [--full] [--out DIR] [--cache DIR]\n", argv[0]);
      std::exit(0);
    }
  }
  std::filesystem::create_directories(args.out_dir);
  return args;
}

/// Incremental-output options for run_sweep: rows stream into the bench's
/// final CSV path as they complete, so a crash or Ctrl-C loses nothing.
/// save_results later rewrites the same path atomically in canonical form.
inline SweepOptions sweep_options(const BenchArgs& args, const std::string& name,
                                  bool append = false) {
  SweepOptions options;
  options.csv_path = args.out_dir + "/" + name + ".csv";
  options.append = append;
  return options;
}

/// Accumulates sweep outcomes across a bench's sweeps and turns them into
/// the process exit code: 0 clean, 1 if any experiment failed permanently,
/// 130 if a SIGINT drained the run.
struct BenchStatus {
  size_t failures = 0;
  bool interrupted = false;

  void add(const SweepSummary& summary) {
    failures += summary.failures;
    interrupted = interrupted || summary.interrupted;
  }
  int exit_code() const { return interrupted ? 130 : failures > 0 ? 1 : 0; }

  /// Standard end-of-main report; returns the exit code.
  int finish() const {
    if (interrupted) {
      std::printf("interrupted: partial results were flushed; rerun to resume from cache\n");
    } else if (failures > 0) {
      std::printf("completed with %zu failed experiment(s) — see failed CSV rows\n", failures);
    }
    return exit_code();
  }
};

/// Fine-tuning presets sized to the bench budget. `quick` fine-tunes for
/// fewer epochs than the paper's 30/20 but uses the same optimizers and
/// learning rates (Appendix C.2).
inline TrainOptions bench_cifar_finetune(bool full) {
  TrainOptions opts = cifar_finetune_options();
  opts.epochs = full ? 15 : 4;
  opts.patience = full ? 5 : 0;
  return opts;
}

inline TrainOptions bench_imagenet_finetune(bool full) {
  TrainOptions opts = imagenet_finetune_options();
  opts.epochs = full ? 12 : 4;
  opts.patience = full ? 4 : 0;
  return opts;
}

inline TrainOptions bench_pretrain(bool full) {
  TrainOptions opts = default_pretrain_options();
  opts.epochs = full ? 80 : 60;
  return opts;
}

/// One aggregated operating point: mean +/- sample stddev across seeds.
struct AggregatePoint {
  double target = 0.0;
  double compression = 0.0;
  double speedup = 0.0;
  double top1_mean = 0.0;
  double top1_std = 0.0;
  double top5_mean = 0.0;
  int seeds = 0;
};

/// Groups sweep results by (strategy, target compression) and averages
/// over seeds — the paper's "report means and sample standard deviations"
/// recommendation.
inline std::map<std::string, std::vector<AggregatePoint>> aggregate_by_strategy(
    const std::vector<ExperimentResult>& results) {
  std::map<std::string, std::map<double, std::vector<const ExperimentResult*>>> grouped;
  for (const auto& r : results) {
    grouped[r.config.strategy][r.config.target_compression].push_back(&r);
  }
  std::map<std::string, std::vector<AggregatePoint>> out;
  for (const auto& [strategy, by_target] : grouped) {
    for (const auto& [target, runs] : by_target) {
      AggregatePoint p;
      p.target = target;
      std::vector<double> top1s;
      for (const ExperimentResult* r : runs) {
        p.compression += r->compression;
        p.speedup += r->speedup;
        p.top5_mean += r->post_top5;
        top1s.push_back(r->post_top1);
      }
      const double n = static_cast<double>(runs.size());
      p.compression /= n;
      p.speedup /= n;
      p.top5_mean /= n;
      const Stats s = compute_stats(top1s);
      p.top1_mean = s.mean;
      p.top1_std = s.stddev;
      p.seeds = static_cast<int>(runs.size());
      out[strategy].push_back(p);
    }
  }
  return out;
}

enum class XAxis { Compression, Speedup };

/// Renders an accuracy-vs-efficiency chart like the paper's figures.
inline std::string tradeoff_chart(
    const std::map<std::string, std::vector<AggregatePoint>>& by_strategy, XAxis x_axis,
    const std::string& title) {
  std::vector<report::Series> series;
  for (const auto& [strategy, points] : by_strategy) {
    report::Series s;
    s.label = display_name(strategy);
    for (const auto& p : points) {
      s.x.push_back(x_axis == XAxis::Compression ? p.compression : p.speedup);
      s.y.push_back(p.top1_mean);
    }
    series.push_back(std::move(s));
  }
  report::ChartOptions opts;
  opts.log_x = true;
  opts.x_label = x_axis == XAxis::Compression ? "Compression Ratio" : "Theoretical Speedup";
  opts.y_label = "Top-1 Accuracy";
  opts.title = title;
  return report::render_chart(series, opts);
}

/// Prints the aggregated operating points as an aligned table.
inline void print_tradeoff_table(const std::map<std::string, std::vector<AggregatePoint>>& agg,
                                 const std::string& caption) {
  std::printf("%s\n", caption.c_str());
  report::Table table({"strategy", "target", "compression", "speedup", "top1 (mean)",
                       "top1 (std)", "top5 (mean)", "seeds"});
  for (const auto& [strategy, points] : agg) {
    for (const auto& p : points) {
      table.add_row({display_name(strategy), report::Table::num(p.target, 0),
                     report::Table::num(p.compression, 2), report::Table::num(p.speedup, 2),
                     report::Table::num(p.top1_mean, 4), report::Table::num(p.top1_std, 4),
                     report::Table::num(p.top5_mean, 4), std::to_string(p.seeds)});
    }
  }
  std::printf("%s\n", table.render().c_str());
}

inline void save_results(const BenchArgs& args, const std::string& name,
                         const std::vector<ExperimentResult>& results) {
  const std::string path = args.out_dir + "/" + name + ".csv";
  write_experiment_csv(path, results);
  // Every CSV ships with a run manifest: config fingerprints, git
  // revision, per-phase timings, and the profiler counter snapshot.
  const std::string manifest_path = args.out_dir + "/" + name + ".manifest.json";
  write_run_manifest(manifest_path, name, results);
  std::printf("wrote %s (%zu rows) + %s\n", path.c_str(), results.size(),
              manifest_path.c_str());
  // write_run_manifest exports the telemetry time-series next to the
  // manifest when SB_TELEMETRY ran; point the user at it.
  if (obs::Telemetry::constructed()) {
    std::printf("wrote %s/%s.telemetry.jsonl (SB_TELEMETRY time-series)\n",
                args.out_dir.c_str(), name.c_str());
  }
  std::printf("\n");
}

}  // namespace shrinkbench::bench
