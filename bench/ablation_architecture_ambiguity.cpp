// Ablation: architecture ambiguity (paper §5.1).
//
// Three models that the literature would all call "VGG on CIFAR" — the
// plain conv-bn stack, the same network with dropout before the
// classifier, and a variant with a halved hidden FC layer — plus the
// v1-vs-v2 ResNet pair ("ResNet-56" vs "PreResNet-56", same depth and
// width). Each is pruned identically (global magnitude, same ratios,
// same seeds). If naming were sufficient to identify an architecture,
// these curves would coincide; they do not, which is §5.1's complaint in
// experimental form.
#include <cstdio>

#include "bench_common.hpp"

using namespace shrinkbench;
using namespace shrinkbench::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("=== Ablation: 'VGG' and 'ResNet-56' are not single architectures (§5.1) ===\n\n");

  ExperimentRunner runner(args.cache_dir);
  const std::vector<double> ratios =
      args.full ? std::vector<double>{2, 4, 8, 16} : std::vector<double>{2, 8};
  const std::vector<uint64_t> seeds = args.full ? std::vector<uint64_t>{1, 2, 3}
                                                : std::vector<uint64_t>{1};

  struct Group {
    const char* what;
    std::vector<std::string> archs;
  };
  const Group groups[] = {
      {"Three papers' \"VGG\"",
       {"cifar-vgg", "cifar-vgg-dropout", "cifar-vgg-smallfc"}},
      {"\"ResNet-56\": v1 vs pre-activation v2", {"resnet-56", "preresnet-56"}},
  };

  BenchStatus status;
  std::vector<ExperimentResult> all;
  bool first_sweep = true;
  for (const Group& group : groups) {
    std::printf("%s\n", group.what);
    report::Table table({"architecture", "params", "pre top1", "target", "compression",
                         "top1 after prune+finetune"});
    for (const std::string& arch : group.archs) {
      ExperimentConfig base;
      base.dataset = "synth-cifar10";
      base.arch = arch;
      base.width = 8;
      base.strategy = "global-weight";
      base.pretrain = bench_pretrain(args.full);
      base.finetune = bench_cifar_finetune(args.full);
      // All five per-arch sweeps stream into the one combined CSV; only
      // the first sweep truncates it.
      SweepSummary summary;
      const auto results = run_sweep(
          runner, base, {"global-weight"}, ratios, seeds,
          sweep_options(args, "ablation_architecture_ambiguity", !first_sweep), &summary);
      first_sweep = false;
      status.add(summary);
      if (summary.interrupted) {
        for (const auto& r : results) all.push_back(r);
        save_results(args, "ablation_architecture_ambiguity", all);
        return status.finish();
      }
      for (const auto& r : results) {
        table.add_row({arch, std::to_string(r.params_total),
                       report::Table::num(r.pre_top1, 4),
                       report::Table::num(r.config.target_compression, 0),
                       report::Table::num(r.compression, 2),
                       report::Table::num(r.post_top1, 4)});
        all.push_back(r);
      }
    }
    std::printf("%s\n", table.render().c_str());
  }
  save_results(args, "ablation_architecture_ambiguity", all);

  std::printf("Reading: identical pruning on same-named architectures lands at different\n"
              "parameter counts and accuracies. A paper saying it pruned \"VGG-16\" or\n"
              "\"ResNet-56\" without citing the exact variant is not reproducible (§5.1).\n");
  return status.finish();
}
