// Figures 9-16 (Appendix D): accuracy vs compression AND accuracy vs
// theoretical speedup for CIFAR-VGG, ResNet-20, ResNet-56, and ResNet-110
// on CIFAR-10(-sim), all five baseline strategies, error bars across seeds.
//
// fig{9,11,13,15} are the compression panels; fig{10,12,14,16} the speedup
// panels. One binary regenerates all eight.
#include <cstdio>

#include "bench_common.hpp"

using namespace shrinkbench;
using namespace shrinkbench::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("=== Figures 9-16: CIFAR-10 appendix sweeps (4 models x 5 strategies) ===\n\n");

  ExperimentRunner runner(args.cache_dir);
  const std::vector<std::string> strategies = {"global-weight", "layer-weight",
                                               "global-gradient", "layer-gradient", "random"};
  const std::vector<double> ratios = {1, 2, 4, 8, 16, 32};

  struct ModelPlan {
    const char* arch;
    int fig_compression;
    int fig_speedup;
    std::vector<uint64_t> seeds;
    std::vector<double> ratio_override;  // empty = the full ratio grid
  };
  // ResNet-110 is ~2x the cost of ResNet-56; quick mode gives it one seed
  // and a coarser ratio grid.
  const std::vector<ModelPlan> plans = {
      {"cifar-vgg", 9, 10, {1, 2, 3}, {}},
      {"resnet-20", 11, 12, {1, 2, 3}, {}},
      {"resnet-56", 13, 14, {1, 2, 3}, {}},
      {"resnet-110", 15, 16,
       args.full ? std::vector<uint64_t>{1, 2, 3} : std::vector<uint64_t>{1},
       args.full ? std::vector<double>{} : std::vector<double>{1, 2, 8, 32}},
  };

  BenchStatus status;
  for (const ModelPlan& plan : plans) {
    ExperimentConfig base;
    base.dataset = "synth-cifar10";
    base.arch = plan.arch;
    base.width = 8;
    base.pretrain = bench_pretrain(args.full);
    base.finetune = bench_cifar_finetune(args.full);

    const auto& plan_ratios = plan.ratio_override.empty() ? ratios : plan.ratio_override;
    SweepSummary summary;
    const auto results =
        run_sweep(runner, base, strategies, plan_ratios, plan.seeds,
                  sweep_options(args, std::string("fig9_16_") + plan.arch), &summary);
    status.add(summary);
    if (summary.interrupted) {
      save_results(args, std::string("fig9_16_") + plan.arch, results);
      return status.finish();
    }
    const auto agg = aggregate_by_strategy(results);
    print_tradeoff_table(agg, std::string(plan.arch) + " on synth-cifar10:");
    std::printf("%s\n", tradeoff_chart(agg, XAxis::Compression,
                                       "Figure " + std::to_string(plan.fig_compression) + ": " +
                                           plan.arch + " — accuracy vs compression")
                            .c_str());
    std::printf("%s\n", tradeoff_chart(agg, XAxis::Speedup,
                                       "Figure " + std::to_string(plan.fig_speedup) + ": " +
                                           plan.arch + " — accuracy vs theoretical speedup")
                            .c_str());
    save_results(args, std::string("fig9_16_") + plan.arch, results);
  }

  std::printf("Shape expectations (paper Appendix D): magnitude methods degrade gracefully to\n"
              "16-32x; random pruning falls off a cliff much earlier; global allocation is\n"
              "at least as good as layerwise at matched compression on most models.\n");
  return status.finish();
}
