// Figure 7: "Top-1 Accuracy on CIFAR-10 for several compression ratios" for
// CIFAR-VGG and ResNet-56, five baseline methods, three random seeds with
// sample standard deviations.
//
// Pitfalls demonstrated (paper §7.3, "Results Vary Across Models, Datasets,
// and Pruning Amounts"): method rankings flip between architectures and
// between compression regimes; seeds matter near the accuracy cliff.
#include <cstdio>

#include "bench_common.hpp"

using namespace shrinkbench;
using namespace shrinkbench::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("=== Figure 7: results vary across models (CIFAR-VGG & ResNet-56) ===\n\n");

  ExperimentRunner runner(args.cache_dir);
  const std::vector<std::string> strategies = {"global-weight", "layer-weight",
                                               "global-gradient", "layer-gradient", "random"};
  const std::vector<double> ratios = {1, 2, 4, 8, 16, 32};
  const std::vector<uint64_t> seeds = {1, 2, 3};  // error bars are the point

  BenchStatus status;
  std::map<std::string, std::map<std::string, std::vector<AggregatePoint>>> per_model;
  for (const std::string arch : {std::string("cifar-vgg"), std::string("resnet-56")}) {
    ExperimentConfig base;
    base.dataset = "synth-cifar10";
    base.arch = arch;
    base.width = 8;
    base.pretrain = bench_pretrain(args.full);
    base.finetune = bench_cifar_finetune(args.full);

    SweepSummary summary;
    const auto results = run_sweep(runner, base, strategies, ratios, seeds,
                                   sweep_options(args, "fig7_" + arch), &summary);
    status.add(summary);
    save_results(args, "fig7_" + arch, results);
    if (summary.interrupted) return status.finish();
    const auto agg = aggregate_by_strategy(results);
    per_model[arch] = agg;
    print_tradeoff_table(agg, arch + " on synth-cifar10 (3 seeds, mean +/- std):");
    std::printf("%s\n",
                tradeoff_chart(agg, XAxis::Compression, arch + " — accuracy vs compression")
                    .c_str());
  }

  // Shape checks from the figure's caption.
  const auto mean_at = [](const std::vector<AggregatePoint>& pts, double target) {
    for (const auto& p : pts) {
      if (p.target == target) return p.top1_mean;
    }
    return 0.0;
  };
  std::printf("Shape checks:\n");
  for (const auto& [arch, agg] : per_model) {
    const double rand16 = mean_at(agg.at("random"), 16);
    const double gw16 = mean_at(agg.at("global-weight"), 16);
    std::printf("  %s: global-weight %.4f vs random %.4f at 16x (expect magnitude >> random)\n",
                arch.c_str(), gw16, rand16);
  }
  const double vgg_gg = mean_at(per_model["cifar-vgg"].at("global-gradient"), 4);
  const double vgg_lw = mean_at(per_model["cifar-vgg"].at("layer-weight"), 4);
  const double r56_gg = mean_at(per_model["resnet-56"].at("global-gradient"), 4);
  const double r56_lw = mean_at(per_model["resnet-56"].at("layer-weight"), 4);
  std::printf("  rank flip check at 4x: (GlobalGradient - LayerWeight) = %+.4f on cifar-vgg vs "
              "%+.4f on resnet-56\n",
              vgg_gg - vgg_lw, r56_gg - r56_lw);
  std::printf("  (paper: Global Gradient beats Layerwise Magnitude on CIFAR-VGG but not on "
              "ResNet-56)\n");

  // Seed-variance blowup near the cliff.
  double max_std = 0, max_std_ratio = 0;
  std::string max_std_strategy;
  for (const auto& [arch, agg] : per_model) {
    for (const auto& [strategy, pts] : agg) {
      for (const auto& p : pts) {
        if (p.top1_std > max_std) {
          max_std = p.top1_std;
          max_std_ratio = p.target;
          max_std_strategy = arch + "/" + strategy;
        }
      }
    }
  }
  std::printf("  largest seed stddev: %.4f at %s x%.0f (paper: gradient methods near the\n"
              "  drop-off point are minibatch-sensitive)\n",
              max_std, max_std_strategy.c_str(), max_std_ratio);
  return status.finish();
}
