// Figure 5: "Pruning ResNet-50 on ImageNet." Upper panel: methods that all
// prune the smallest-magnitude weights but differ in schedule/fine-tuning.
// Lower panel: entirely different pruning methods. The point (paper §4.5):
// the variation caused by training/fine-tuning choices is comparable to
// the variation across methods — confounding at full strength.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "corpus/analysis.hpp"

using namespace shrinkbench;
using namespace shrinkbench::corpus;

namespace {

struct PanelStats {
  double min_top1 = 1e9, max_top1 = -1e9;
};

PanelStats emit_panel(const std::vector<std::string>& labels, const std::string& title,
                      std::vector<std::vector<std::string>>& csv) {
  const Corpus& c = pruning_corpus();
  const BaselineMedians base = median_baselines(c, "ResNet-50");
  std::vector<report::Series> series;
  PanelStats stats;
  for (const auto& label : labels) {
    const TradeoffCurve* curve = resnet50_curve_by_label(c, label);
    if (curve == nullptr) continue;
    report::Series s;
    s.label = label;
    for (const auto& pt : curve->points) {
      if (!pt.delta_top1) continue;
      const double ratio = pt.compression ? *pt.compression : pt.speedup.value_or(1.0);
      const double params_m = base.params_millions / ratio;
      const double top1 = base.top1 + *pt.delta_top1;
      s.x.push_back(params_m * 1e6);
      s.y.push_back(top1);
      stats.min_top1 = std::min(stats.min_top1, top1);
      stats.max_top1 = std::max(stats.max_top1, top1);
      csv.push_back({title, label, report::Table::num(params_m, 3),
                     report::Table::num(top1, 2)});
    }
    series.push_back(std::move(s));
  }
  report::ChartOptions opts;
  opts.log_x = true;
  opts.x_label = "Number of Parameters";
  opts.title = title;
  std::printf("%s\n", report::render_chart(series, opts).c_str());
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Figure 5: Pruning ResNet-50 on ImageNet — variability comparison ===\n\n");

  std::vector<std::vector<std::string>> csv{{"panel", "method", "params_millions", "top1"}};
  const PanelStats mag = emit_panel(fig5_magnitude_labels(),
                                    "Pruning ResNet-50 with Unstructured Magnitude-Based Pruning",
                                    csv);
  const PanelStats other =
      emit_panel(fig5_other_labels(), "Pruning ResNet-50 with All Other Methods", csv);
  report::write_csv(args.out_dir + "/fig5_variability.csv", csv);
  std::printf("wrote %s/fig5_variability.csv\n\n", args.out_dir.c_str());

  const double mag_spread = mag.max_top1 - mag.min_top1;
  const double other_spread = other.max_top1 - other.min_top1;
  std::printf("Accuracy spread within magnitude variants: %.2f points\n", mag_spread);
  std::printf("Accuracy spread across all other methods:  %.2f points\n", other_spread);
  std::printf("Ratio: %.2f (paper: fine-tuning variability is 'nearly as large' as\n"
              "method-to-method variability — expect a ratio near 1)\n",
              mag_spread / other_spread);
  return 0;
}
