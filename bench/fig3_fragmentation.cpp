// Figure 3: "Fragmentation of results" — all self-reported tradeoff curves
// on the four most common non-MNIST (dataset, architecture) configurations,
// one panel per (config, x-metric, y-metric) with any data.
//
// What the figure demonstrates (paper §4.3): a given method appears in only
// a few panels; methods report different metrics at different operating
// points; later methods don't consistently beat earlier ones; only one
// curve in the whole corpus carries a standard deviation.
#include <cstdio>
#include <optional>
#include <set>

#include "bench_common.hpp"
#include "corpus/analysis.hpp"

using namespace shrinkbench;
using namespace shrinkbench::corpus;

namespace {

struct Metric {
  const char* name;
  std::optional<double> ResultPoint::* x;
  std::optional<double> ResultPoint::* y;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const Corpus& c = pruning_corpus();
  std::printf("=== Figure 3: Fragmentation of results on the common configurations ===\n\n");

  const Metric metrics[] = {
      {"Compression Ratio vs dTop-1", &ResultPoint::compression, &ResultPoint::delta_top1},
      {"Compression Ratio vs dTop-5", &ResultPoint::compression, &ResultPoint::delta_top5},
      {"Theoretical Speedup vs dTop-1", &ResultPoint::speedup, &ResultPoint::delta_top1},
      {"Theoretical Speedup vs dTop-5", &ResultPoint::speedup, &ResultPoint::delta_top5},
  };

  std::vector<std::vector<std::string>> csv{
      {"config", "metric", "method", "x", "y", "reports_stddev"}};
  int panels_with_data = 0;
  std::set<std::string> methods_seen;

  for (const auto& config : common_configs()) {
    const auto curves = curves_for_config(c, config);
    for (const Metric& metric : metrics) {
      std::vector<report::Series> series;
      for (const TradeoffCurve* curve : curves) {
        report::Series s;
        s.label = curve->method_label + (curve->reports_stddev ? " [has stddev]" : "");
        for (const auto& pt : curve->points) {
          const auto& xv = pt.*(metric.x);
          const auto& yv = pt.*(metric.y);
          if (!xv || !yv) continue;
          s.x.push_back(*xv);
          s.y.push_back(*yv);
          csv.push_back({config.display, metric.name, curve->method_label,
                         report::Table::num(*xv, 3), report::Table::num(*yv, 3),
                         curve->reports_stddev ? "1" : "0"});
        }
        if (!s.x.empty()) {
          methods_seen.insert(curve->method_label);
          series.push_back(std::move(s));
        }
      }
      if (series.empty()) continue;
      ++panels_with_data;
      report::ChartOptions opts;
      opts.log_x = true;
      opts.height = 14;
      opts.x_label = metric.name;
      opts.title = config.display + " — " + metric.name;
      std::printf("%s\n", report::render_chart(series, opts).c_str());
    }
  }

  report::write_csv(args.out_dir + "/fig3_fragmentation.csv", csv);
  std::printf("wrote %s/fig3_fragmentation.csv\n\n", args.out_dir.c_str());

  std::printf("Fragmentation summary:\n");
  std::printf("  panels with any data: %d of 16 possible\n", panels_with_data);
  std::printf("  distinct method curves across panels: %zu\n", methods_seen.size());
  std::printf("  papers reporting on any common configuration: %d of 81 (paper: 37)\n",
              summarize(c).papers_on_common_configs);
  std::printf("  curves carrying a standard deviation: only He, Yang 2018 on CIFAR-10\n");

  // "Methods from later years do not consistently outperform methods from
  // earlier years" — the year-vs-quality correlation at a reference ratio.
  std::printf("\nYear-over-year progress (Pearson correlation of publication year with\n"
              "interpolated dTop-1 at 4x compression; near zero = no consistent progress):\n");
  for (const auto& config : common_configs()) {
    const YearProgress yp = year_progress(c, config, 4.0);
    std::printf("  %-28s r = %+.3f over %zu comparable methods\n", config.display.c_str(),
                yp.correlation, yp.per_method.size());
  }
  return 0;
}
