// Figure 8: "Global and Layerwise Magnitude Pruning on two different
// ResNet-56 models."
//
// Weights A and Weights B are two pretrained models of the *same*
// architecture on the *same* data, differing only in training recipe
// (paper Appendix: Adam with lr 1e-3 vs 1e-4). The pitfall (§7.3, "Using
// the Same Initial Model is Essential"): different initial models yield
// different tradeoff curves, and reporting *changes* in accuracy does not
// fix it — Layerwise-on-B can appear to beat Global-on-A even though
// Global wins whenever the initial model is held constant.
#include <cstdio>

#include "bench_common.hpp"

using namespace shrinkbench;
using namespace shrinkbench::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  std::printf("=== Figure 8: the initial model is a confounder (ResNet-56, two pretrains) ===\n\n");

  ExperimentRunner runner(args.cache_dir);
  const std::vector<double> ratios = {1, 2, 4, 8, 16, 32, 64};

  struct Variant {
    std::string tag;
    float lr;
  };
  // Paper: Adam until convergence at 1e-3 (Weights A) vs 1e-3-annealed (Weights B).
  // Our scaled recipe anneals from 10x-apart initial rates; both converge,
  // to different optima — which is the entire point of the experiment.
  const Variant variants[] = {{"weightsA-adam3e-3", 3e-3f}, {"weightsB-adam1e-3", 1e-3f}};
  const auto pretty = [](const std::string& tag, const std::string& strategy) {
    const std::string which = tag.find("3e-3") != std::string::npos ? "A" : "B";
    return (strategy == "global-weight" ? std::string("Global ") : std::string("Layer ")) + which;
  };

  std::map<std::string, std::vector<ExperimentResult>> runs;  // pretty name -> results
  std::map<std::string, double> initial_top1;                 // "A"/"B"
  std::vector<ExperimentResult> all;
  for (const Variant& v : variants) {
    for (const std::string strategy : {std::string("global-weight"), std::string("layer-weight")}) {
      ExperimentConfig cfg;
      cfg.dataset = "synth-cifar10";
      cfg.arch = "resnet-56";
      cfg.width = 8;
      cfg.pretrain = bench_pretrain(args.full);
      cfg.pretrain.optimizer = OptimizerKind::Adam;
      cfg.pretrain.lr = v.lr;
      cfg.pretrain_tag = v.tag;
      cfg.finetune = bench_cifar_finetune(args.full);
      cfg.strategy = strategy;
      for (const double ratio : ratios) {
        cfg.target_compression = ratio;
        const ExperimentResult r = runner.run(cfg);
        runs[pretty(v.tag, strategy)].push_back(r);
        all.push_back(r);
        initial_top1[v.tag.find("3e-3") != std::string::npos ? "A" : "B"] = r.pre_top1;
        std::fprintf(stderr, "[fig8] %s %s x%.0f -> top1 %.4f (pre %.4f)\n", v.tag.c_str(),
                     strategy.c_str(), ratio, r.post_top1, r.pre_top1);
      }
    }
  }

  std::printf("Initial models: Weights A (Adam 3e-3, cosine) top1 %.4f; Weights B (Adam 1e-3, cosine) top1 %.4f\n\n",
              initial_top1["A"], initial_top1["B"]);

  report::Table table({"curve", "target", "compression", "top1 (absolute)", "dTop1 (relative)"});
  std::vector<report::Series> abs_series, rel_series;
  for (const auto& [label, results] : runs) {
    report::Series as{label, {}, {}}, rs{label, {}, {}};
    for (const auto& r : results) {
      table.add_row({label, report::Table::num(r.config.target_compression, 0),
                     report::Table::num(r.compression, 2), report::Table::num(r.post_top1, 4),
                     report::Table::num(r.post_top1 - r.pre_top1, 4)});
      as.x.push_back(r.compression);
      as.y.push_back(r.post_top1);
      rs.x.push_back(r.compression);
      rs.y.push_back(r.post_top1 - r.pre_top1);
    }
    abs_series.push_back(std::move(as));
    rel_series.push_back(std::move(rs));
  }
  std::printf("%s\n", table.render().c_str());

  report::ChartOptions opts;
  opts.log_x = true;
  opts.x_label = "Compression Ratio";
  opts.title = "Absolute accuracy";
  std::printf("%s\n", report::render_chart(abs_series, opts).c_str());
  opts.title = "Relative accuracy (change vs own initial model)";
  std::printf("%s\n", report::render_chart(rel_series, opts).c_str());
  save_results(args, "fig8_initial_model", all);

  // The confounding check: does Layer-on-one-model ever appear better than
  // Global-on-the-other at matched compression, even though Global wins
  // within each model?
  const auto& globalA = runs[pretty("weightsA-adam3e-3", "global-weight")];
  const auto& layerB = runs[pretty("weightsB-adam1e-3", "layer-weight")];
  int confounded = 0, within_model_global_wins = 0, points = 0;
  for (size_t i = 0; i < ratios.size(); ++i) {
    const double d_layerB = layerB[i].post_top1 - layerB[i].pre_top1;
    const double d_globalA = globalA[i].post_top1 - globalA[i].pre_top1;
    if (ratios[i] >= 8) {
      ++points;
      confounded += d_layerB > d_globalA;
      const auto& layerA = runs[pretty("weightsA-adam3e-3", "layer-weight")];
      within_model_global_wins += globalA[i].post_top1 >= layerA[i].post_top1;
    }
  }
  std::printf("At compression >= 8 (%d points):\n", points);
  std::printf("  dAccuracy(Layer on B) > dAccuracy(Global on A) at %d points — the apparent\n"
              "  ranking flip the paper warns about when initial models differ\n",
              confounded);
  std::printf("  Global beats Layer within Weights A at %d points — the true ordering\n",
              within_model_global_wins);
  return 0;
}
