// Closed-loop load generator for the sparse inference serving engine.
//
// The paper's central complaint (§2.3, §6) is that pruning results report
// *theoretical* speedup — parameter/FLOP ratios — and leave wall-clock
// unmeasured. This bench closes that gap for the serving path: for each
// sparsity level it compiles the same pruned model as a dense executor
// (the honest baseline: dense kernels over masked weights) and as a
// sparse executor (CSR for unstructured masks, channel-shrunk for
// structured masks), drives both with closed-loop clients through the
// InferenceServer, and reports measured throughput speedup next to the
// theoretical FLOP ratio in one CSV row.
//
// A second, open-loop section measures overload behavior: after the
// closed-loop grid establishes service capacity, an open-loop arrival
// process drives the server at 2x that capacity under each admission
// policy. Latency is measured from each request's *scheduled* arrival
// time (the coordinated-omission-honest convention), so Block — whose
// only defense is stalling the generator — shows queueing delay growing
// without bound, while Reject and DropOldest (armed with a deadline)
// keep the p99 of successes bounded near the deadline and convert the
// excess load into counted shed/rejected/expired requests.
//
// Outputs (under --out, default bench_out):
//   serve_load.csv            one row per (structure, keep, mode, clients)
//   serve_load_overload.csv   one row per overload policy at 2x capacity
//   serve_load.manifest.json  run manifest with the serve.latency_us /
//                             serve.batch_size histogram quantiles and
//                             serve_load.overload.* gauges per policy
//
// Usage: serve_load [--full] [--out DIR] [--arch NAME] [--width N]
//   --full lengthens each measurement cell (2 s vs 0.5 s).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/allocation.hpp"
#include "core/pruner.hpp"
#include "core/scoring.hpp"
#include "models/zoo.hpp"
#include "nn/init.hpp"
#include "nn/layer.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "serve/executor.hpp"
#include "serve/server.hpp"

using namespace shrinkbench;
using serve::ExecMode;
using serve::InferenceServer;
using serve::ServerOptions;
using serve::ServerStats;

namespace {

// A trained-looking pruned model: Kaiming weights, BN running stats
// populated by train-mode forwards, global magnitude masks. Accuracy is
// irrelevant here — only the sparsity pattern and tensor shapes matter
// for throughput.
ModelPtr build_pruned(const std::string& arch, int64_t width, const Shape& sample,
                      Structure structure, double keep) {
  Rng rng(17);
  ModelPtr model = make_model(arch, sample, /*num_classes=*/10, width);
  init_model(*model, rng);
  for (int i = 0; i < 2; ++i) {
    Shape in{4};
    in.insert(in.end(), sample.begin(), sample.end());
    Tensor x(in);
    rng.fill_normal(x, 0, 1);
    model->forward(x, /*train=*/true);
  }
  PruneOptions opts;
  std::vector<ScoredParam> scored;
  for (Parameter* p : prunable_params(*model, opts)) {
    scored.push_back({p, score_parameter(ScoreKind::Magnitude, *p, {}, rng)});
  }
  allocate_masks(scored, AllocationScope::Global, structure, keep);
  apply_masks(*model);
  return model;
}

struct CellResult {
  int64_t completed = 0;
  double seconds = 0;
  double throughput = 0;  // requests/s
  double p50_us = 0, p90_us = 0, p99_us = 0;
  double mean_batch = 0;
};

// Closed-loop measurement: `clients` threads each submit one request,
// wait for its future, record the end-to-end latency, repeat. Offered
// load therefore tracks service capacity (no coordinated-omission bias
// from an open-loop arrival process the 1-core host couldn't absorb).
CellResult run_cell(const serve::Executor& exec, int clients, double seconds) {
  ServerOptions sopts;
  sopts.workers = 1;  // single worker: kernels fan out over the pool
  sopts.max_batch = 8;
  sopts.max_wait_us = 1000;
  InferenceServer server(exec, sopts);

  Rng rng(23);
  Tensor proto(exec.sample_shape());
  rng.fill_normal(proto, 0, 1);

  obs::QuantileHistogram hist;
  std::mutex hist_mu;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> done{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto s0 = std::chrono::steady_clock::now();
        try {
          server.submit(proto.clone()).get();
        } catch (...) {
          break;  // server began shutdown under us
        }
        const double us =
            std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - s0)
                .count();
        {
          std::lock_guard<std::mutex> lk(hist_mu);
          hist.observe(us);
        }
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  server.shutdown();

  CellResult r;
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  r.completed = done.load();
  r.throughput = r.seconds > 0 ? static_cast<double>(r.completed) / r.seconds : 0;
  r.p50_us = hist.quantile(0.5);
  r.p90_us = hist.quantile(0.9);
  r.p99_us = hist.quantile(0.99);
  const ServerStats st = server.stats();
  r.mean_batch =
      st.batches > 0 ? static_cast<double>(st.completed) / static_cast<double>(st.batches) : 0;
  return r;
}

struct OverloadResult {
  double offered_rps = 0;  // actual submit-attempt rate (Block throttles it)
  double goodput_rps = 0;  // successful completions per wall second
  int64_t ok = 0, shed = 0, expired = 0, rejected = 0, errored = 0;
  int64_t lost = 0;  // submitted - completed - failed (must be 0)
  double p50_us = 0, p99_us = 0;
};

// Open-loop overload cell: arrivals are scheduled at a fixed target rate
// and latency is measured from the *scheduled* arrival, not the submit
// call — so when Block stalls the generator, the stall honestly lands in
// the latency distribution instead of silently thinning the offered load.
// A collector thread drains futures in FIFO order (fulfillment order for
// a single-worker server), classifying each outcome.
OverloadResult run_overload_cell(const serve::Executor& exec, serve::OverloadPolicy policy,
                                 int64_t deadline_us, double target_rps, double seconds) {
  ServerOptions sopts;
  sopts.workers = 1;
  sopts.max_batch = 8;
  sopts.max_wait_us = 1000;
  sopts.queue_capacity = 64;
  sopts.overload_policy = policy;
  sopts.default_deadline_us = deadline_us;
  InferenceServer server(exec, sopts);

  Rng rng(23);
  Tensor proto(exec.sample_shape());
  rng.fill_normal(proto, 0, 1);

  struct Pending {
    std::future<Tensor> fut;
    std::chrono::steady_clock::time_point scheduled;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> pending;
  bool gen_done = false;

  OverloadResult r;
  obs::QuantileHistogram hist;  // collector-thread-only until join
  std::thread collector([&] {
    for (;;) {
      Pending p;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return !pending.empty() || gen_done; });
        if (pending.empty()) return;
        p = std::move(pending.front());
        pending.pop_front();
      }
      try {
        p.fut.get();
        hist.observe(std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                               p.scheduled)
                         .count());
        ++r.ok;
      } catch (const serve::DeadlineExceeded&) {
        ++r.expired;
      } catch (const serve::Overloaded&) {
        ++r.shed;
      } catch (const std::exception&) {
        ++r.errored;
      }
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  const auto interval = std::chrono::duration<double>(1.0 / target_rps);
  int64_t arrivals = 0;
  for (;; ++arrivals) {
    const auto scheduled =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(interval * arrivals);
    if (std::chrono::duration<double>(scheduled - t0).count() >= seconds) break;
    std::this_thread::sleep_until(scheduled);  // no-op once the generator is behind
    try {
      Pending p{server.submit(proto.clone()), scheduled};
      {
        std::lock_guard<std::mutex> lk(mu);
        pending.push_back(std::move(p));
      }
      cv.notify_one();
    } catch (const serve::Overloaded&) {
      ++r.rejected;  // Reject policy refuses at the door; no future to track
    }
  }
  server.shutdown();  // drain: every accepted future becomes ready
  {
    std::lock_guard<std::mutex> lk(mu);
    gen_done = true;
  }
  cv.notify_one();
  collector.join();

  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  r.offered_rps = wall > 0 ? static_cast<double>(arrivals) / wall : 0;
  r.goodput_rps = wall > 0 ? static_cast<double>(r.ok) / wall : 0;
  r.p50_us = hist.quantile(0.5);
  r.p99_us = hist.quantile(0.99);
  const ServerStats st = server.stats();
  r.lost = st.submitted - st.completed - st.failed;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  std::string arch = "cifar-vgg";
  int64_t width = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--arch" && i + 1 < argc) arch = argv[++i];
    if (a == "--width" && i + 1 < argc) width = std::atoll(argv[++i]);
  }

  // Profiling on so the server's latency/batch histograms land in the
  // manifest; heartbeat bookends mirror run_sweep.
  obs::set_profiling_enabled(true);
  obs::status_set_phase("serve-load");
  obs::write_status_now();

  const Shape sample{3, 32, 32};
  const std::vector<double> keeps = {0.5, 0.25, 0.1};  // 50/75/90% sparsity
  const std::vector<int> client_counts = {1, 8};
  const double cell_s = args.full ? 2.0 : 0.5;

  const std::string csv_path = args.out_dir + "/serve_load.csv";
  std::ofstream csv(csv_path);
  csv << "arch,structure,mode,keep_fraction,clients,seconds,completed,throughput_rps,"
         "p50_us,p90_us,p99_us,mean_batch,theoretical_speedup,measured_speedup\n";

  const size_t total_cells = keeps.size() * 2 * client_counts.size();
  size_t cells_done = 0;

  std::printf("%-12s %-6s %7s %7s %9s %9s %9s %9s\n", "structure/mode", "keep", "clients",
              "req/s", "p50us", "p99us", "theor", "measured");
  for (const double keep : keeps) {
    for (const Structure structure : {Structure::Unstructured, Structure::Channel}) {
      const ExecMode sparse_mode =
          structure == Structure::Unstructured ? ExecMode::Csr : ExecMode::Shrunk;
      ModelPtr model = build_pruned(arch, width, sample, structure, keep);
      const serve::Executor dense = serve::compile(*model, sample, ExecMode::Dense);
      const serve::Executor sparse = serve::compile(*model, sample, sparse_mode);
      for (const int clients : client_counts) {
        const CellResult d = run_cell(dense, clients, cell_s);
        const CellResult s = run_cell(sparse, clients, cell_s);
        const double measured = d.throughput > 0 ? s.throughput / d.throughput : 0;
        const auto emit = [&](const char* mode, const CellResult& r, double theoretical,
                              double speedup) {
          csv << arch << ',' << to_string(structure) << ',' << mode << ',' << keep << ','
              << clients << ',' << r.seconds << ',' << r.completed << ',' << r.throughput << ','
              << r.p50_us << ',' << r.p90_us << ',' << r.p99_us << ',' << r.mean_batch << ','
              << theoretical << ',' << speedup << '\n';
          std::printf("%-12s %-6.3g %7d %7.1f %9.0f %9.0f %9.2f %9.2f\n", mode, keep, clients,
                      r.throughput, r.p50_us, r.p99_us, theoretical, speedup);
        };
        emit("dense", d, 1.0, 1.0);
        emit(serve::to_string(sparse_mode).c_str(), s, sparse.theoretical_speedup(), measured);
        ++cells_done;
        obs::status_set_progress(cells_done, total_cells, -1);
      }
    }
  }
  csv.close();

  // Open-loop overload section: establish capacity closed-loop, then
  // offer 2x that under each admission policy. Block runs without a
  // deadline (the unbounded baseline); Reject and DropOldest get one.
  obs::status_set_phase("serve-overload");
  ModelPtr ov_model = build_pruned(arch, width, sample, Structure::Unstructured, 0.25);
  const serve::Executor ov_exec = serve::compile(*ov_model, sample, ExecMode::Csr);
  const CellResult cap = run_cell(ov_exec, 8, cell_s);
  const double target_rps = 2.0 * std::max(cap.throughput, 1.0);
  const int64_t deadline_us =
      std::max<int64_t>(2000, static_cast<int64_t>(std::lround(4.0 * cap.p50_us)));
  std::printf("\noverload: capacity %.1f req/s (closed-loop p50 %.0fus) -> offering %.1f req/s, "
              "deadline %lldus\n",
              cap.throughput, cap.p50_us, target_rps, static_cast<long long>(deadline_us));

  const std::string ov_csv_path = args.out_dir + "/serve_load_overload.csv";
  std::ofstream ov_csv(ov_csv_path);
  ov_csv << "arch,mode,policy,deadline_us,target_rps,offered_rps,goodput_rps,ok,shed,expired,"
            "rejected,errored,lost,p50_us,p99_us\n";
  std::printf("%-12s %9s %9s %7s %7s %7s %9s %9s\n", "policy", "offered", "goodput", "shed",
              "expired", "reject", "p50us", "p99us");
  struct PolicyCell {
    serve::OverloadPolicy policy;
    int64_t deadline_us;
  };
  const std::vector<PolicyCell> policy_cells = {
      {serve::OverloadPolicy::Block, 0},  // baseline: backpressure only
      {serve::OverloadPolicy::Reject, deadline_us},
      {serve::OverloadPolicy::DropOldest, deadline_us},
  };
  for (const PolicyCell& cell : policy_cells) {
    const std::string policy = serve::to_string(cell.policy);
    const OverloadResult r =
        run_overload_cell(ov_exec, cell.policy, cell.deadline_us, target_rps, cell_s);
    ov_csv << arch << ",csr," << policy << ',' << cell.deadline_us << ',' << target_rps << ','
           << r.offered_rps << ',' << r.goodput_rps << ',' << r.ok << ',' << r.shed << ','
           << r.expired << ',' << r.rejected << ',' << r.errored << ',' << r.lost << ','
           << r.p50_us << ',' << r.p99_us << '\n';
    std::printf("%-12s %9.1f %9.1f %7lld %7lld %7lld %9.0f %9.0f%s\n", policy.c_str(),
                r.offered_rps, r.goodput_rps, static_cast<long long>(r.shed),
                static_cast<long long>(r.expired), static_cast<long long>(r.rejected), r.p50_us,
                r.p99_us, r.lost != 0 ? "  LOST FUTURES" : "");
    // Gauges land in the manifest's metrics snapshot — the acceptance
    // numbers travel with the run.
    const std::string prefix = "serve_load.overload." + policy;
    obs::set_gauge((prefix + ".p99_us").c_str(), r.p99_us);
    obs::set_gauge((prefix + ".goodput_rps").c_str(), r.goodput_rps);
    obs::set_gauge((prefix + ".shed_total").c_str(),
                   static_cast<double>(r.shed + r.expired + r.rejected));
    obs::set_gauge((prefix + ".lost").c_str(), static_cast<double>(r.lost));
  }
  obs::set_gauge("serve_load.overload.deadline_us", static_cast<double>(deadline_us));
  obs::set_gauge("serve_load.overload.target_rps", target_rps);
  ov_csv.close();

  write_run_manifest(args.out_dir + "/serve_load.manifest.json", "serve_load", {});
  obs::status_set_phase("done");
  obs::write_status_now();
  std::printf("wrote %s, serve_load_overload.csv, and serve_load.manifest.json\n",
              csv_path.c_str());
  return 0;
}
