// Corpus tests: every aggregate statistic the paper reports must hold on
// the reconstructed corpus, and the analysis functions must compute the
// figures' inputs correctly.
#include <gtest/gtest.h>

#include <set>

#include "corpus/analysis.hpp"
#include "corpus/corpus.hpp"
#include "corpus/families.hpp"
#include "corpus/units.hpp"

namespace shrinkbench::corpus {
namespace {

const Corpus& C() { return pruning_corpus(); }

TEST(Corpus, Has81Papers) { EXPECT_EQ(C().papers.size(), 81u); }

TEST(Corpus, TwoClassicsSeventyNineModern) {
  int classics = 0, modern = 0;
  for (const auto& p : C().papers) {
    (p.year < 2010 ? classics : modern)++;
  }
  EXPECT_EQ(classics, 2);  // LeCun 1990, Hassibi 1993
  EXPECT_EQ(modern, 79);
  EXPECT_NE(C().find("LeCun 1990"), nullptr);
  EXPECT_NE(C().find("Hassibi 1993"), nullptr);
}

TEST(Corpus, DatasetArchPairTotalsMatchPaper) {
  // §4.2: 49 datasets, 132 architectures, 195 (dataset, arch) pairs.
  const CorpusSummary s = summarize(C());
  EXPECT_EQ(s.datasets, 49);
  EXPECT_EQ(s.architectures, 132);
  EXPECT_EQ(s.pairs, 195);
}

TEST(Corpus, Table1CountsExact) {
  const auto counts = pair_counts(C(), 4);
  ASSERT_EQ(counts.size(), 14u);  // exactly the Table 1 rows
  const auto expect_row = [&](size_t i, const std::string& ds, const std::string& arch, int n) {
    EXPECT_EQ(counts[i].dataset, ds) << i;
    EXPECT_EQ(counts[i].architecture, arch) << i;
    EXPECT_EQ(counts[i].papers, n) << i;
  };
  expect_row(0, "ImageNet", "VGG-16", 22);
  expect_row(1, "ImageNet", "ResNet-50", 15);
  // Rows 2-3 are the two 14-count pairs (sorted by name).
  EXPECT_EQ(counts[2].papers, 14);
  EXPECT_EQ(counts[3].papers, 14);
  expect_row(4, "MNIST", "LeNet-300-100", 12);
  expect_row(5, "MNIST", "LeNet-5", 11);
  expect_row(6, "ImageNet", "CaffeNet", 10);
  // Two 8s, then 6/6, 5, 4/4.
  EXPECT_EQ(counts[7].papers, 8);
  EXPECT_EQ(counts[8].papers, 8);
  EXPECT_EQ(counts[9].papers, 6);
  EXPECT_EQ(counts[10].papers, 6);
  EXPECT_EQ(counts[11].papers, 5);
  EXPECT_EQ(counts[12].papers, 4);
  EXPECT_EQ(counts[13].papers, 4);
}

TEST(Corpus, ComparisonClaimsHold) {
  // §4.1: "more than a fourth ... does not compare to any previously
  // proposed pruning method, and another fourth compares to only one.
  // Nearly all papers compare to three or fewer."
  const CorpusSummary s = summarize(C());
  EXPECT_GE(s.compare_to_none, 21);
  EXPECT_GE(s.compare_to_at_most_one, 40);   // half of 81
  EXPECT_GE(s.compare_to_at_most_three, 70); // nearly all
  // "dozens of modern papers ... never been compared to by any later study"
  EXPECT_GE(s.never_compared_to, 24);
}

TEST(Corpus, ComparisonsPointBackwardInTime) {
  for (const auto& p : C().papers) {
    for (int target : p.compares_to) {
      const auto& q = C().papers[static_cast<size_t>(target)];
      EXPECT_LE(q.year, p.year) << p.label << " -> " << q.label;
    }
  }
}

TEST(Corpus, ComparisonTargetsAreDistinctAndInCorpus) {
  for (const auto& p : C().papers) {
    std::set<int> targets(p.compares_to.begin(), p.compares_to.end());
    EXPECT_EQ(targets.size(), p.compares_to.size()) << p.label;
    for (int t : p.compares_to) {
      ASSERT_GE(t, 0);
      ASSERT_LT(t, 81);
      EXPECT_NE(t, p.id);
    }
  }
}

TEST(Corpus, HanIsMostComparedTo) {
  // Magnitude pruning (Han 2015) is the canonical baseline (§7.2).
  std::map<int, int> in_degree;
  for (const auto& p : C().papers) {
    for (int t : p.compares_to) in_degree[t]++;
  }
  const PaperRecord* han = C().find("Han 2015");
  ASSERT_NE(han, nullptr);
  for (const auto& [id, deg] : in_degree) {
    EXPECT_LE(deg, in_degree[han->id]) << C().papers[static_cast<size_t>(id)].label;
  }
  EXPECT_GE(in_degree[han->id], 10);
}

TEST(Corpus, Exactly37PapersOnCommonConfigs) {
  // Figure 3's caption: "only 37 out of the 81 papers in our corpus report
  // any results using any of these configurations."
  EXPECT_EQ(summarize(C()).papers_on_common_configs, 37);
}

TEST(Corpus, EveryPaperHasAtLeastOnePair) {
  for (const auto& p : C().papers) EXPECT_FALSE(p.pairs.empty()) << p.label;
}

TEST(Corpus, CurvesBelongToDeclaredPairs) {
  for (const auto& p : C().papers) {
    for (const auto& c : p.curves) {
      const std::pair<std::string, std::string> pair{c.dataset, c.architecture};
      EXPECT_NE(std::find(p.pairs.begin(), p.pairs.end(), pair), p.pairs.end())
          << p.label << " curve on undeclared pair " << c.dataset << "/" << c.architecture;
    }
  }
}

TEST(Corpus, CurvePointsHaveAtLeastOneMetricPair) {
  for (const auto& p : C().papers) {
    for (const auto& c : p.curves) {
      EXPECT_FALSE(c.points.empty()) << c.method_label;
      for (const auto& pt : c.points) {
        EXPECT_TRUE(pt.compression || pt.speedup) << c.method_label;
        EXPECT_TRUE(pt.delta_top1 || pt.delta_top5) << c.method_label;
        if (pt.compression) {
          EXPECT_GE(*pt.compression, 1.0);
        }
        if (pt.speedup) {
          EXPECT_GE(*pt.speedup, 1.0);
        }
      }
    }
  }
}

TEST(Corpus, OnlyHeYang2018ReportsStddev) {
  // Figure 3's caption: the only result with any measure of central
  // tendency is He 2018 on CIFAR-10.
  int with_stddev = 0;
  for (const auto& p : C().papers) {
    for (const auto& c : p.curves) {
      if (c.reports_stddev) {
        ++with_stddev;
        EXPECT_EQ(p.label, "He, Yang 2018");
        EXPECT_EQ(c.dataset, "CIFAR-10");
      }
    }
  }
  EXPECT_GT(with_stddev, 0);
}

TEST(Corpus, DeterministicSingleton) {
  const Corpus& a = pruning_corpus();
  const Corpus& b = pruning_corpus();
  EXPECT_EQ(&a, &b);
}

// ---- analysis ----

TEST(Analysis, HistogramsCountAllPapers) {
  const SplitHistogram out = compares_to_histogram(C());
  int total = 0;
  for (const auto& [k, v] : out.peer_reviewed) total += v;
  for (const auto& [k, v] : out.other) total += v;
  EXPECT_EQ(total, 81);

  const SplitHistogram in = compared_to_histogram(C());
  total = 0;
  for (const auto& [k, v] : in.peer_reviewed) total += v;
  for (const auto& [k, v] : in.other) total += v;
  EXPECT_EQ(total, 81);
}

TEST(Analysis, InAndOutDegreeTotalsAgree) {
  // Sum over k of k * count must equal the number of edges in both views.
  const auto weighted_sum = [](const SplitHistogram& h) {
    int s = 0;
    for (const auto& [k, v] : h.peer_reviewed) s += k * v;
    for (const auto& [k, v] : h.other) s += k * v;
    return s;
  };
  EXPECT_EQ(weighted_sum(compares_to_histogram(C())), weighted_sum(compared_to_histogram(C())));
}

TEST(Analysis, CommonConfigsMatchFigure3) {
  const auto configs = common_configs();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].display, "VGG-16 on ImageNet");
  EXPECT_EQ(configs[1].architectures.size(), 2u);  // AlexNet + CaffeNet merged
  for (const auto& config : configs) {
    EXPECT_NE(config.dataset, "MNIST");  // excluded per the paper
    EXPECT_FALSE(curves_for_config(C(), config).empty()) << config.display;
  }
}

TEST(Analysis, PairsPerPaperHistogramIsBottomHeavy) {
  const SplitHistogram h = pairs_per_paper_histogram(C(), /*exclude_mnist=*/true);
  int at_most_three = 0, total = 0;
  for (int k = 0; k <= h.max_key(); ++k) {
    const int n = h.total(k);
    total += n;
    if (k <= 3) at_most_three += n;
  }
  // Figure 4 (top): most papers use three or fewer pairs.
  EXPECT_GT(at_most_three, total / 2);
}

TEST(Analysis, PointsPerCurveMostlyFewPoints) {
  const SplitHistogram h = points_per_curve_histogram(C());
  int at_most_three = 0, total = 0;
  for (int k = 0; k <= h.max_key(); ++k) {
    total += h.total(k);
    if (k <= 3) at_most_three += h.total(k);
  }
  EXPECT_GT(total, 40);  // dozens of curves on the common configs
  // Figure 4 (bottom): most curves use at most three points.
  EXPECT_GT(at_most_three, total * 6 / 10);
}

TEST(Analysis, MedianBaselinesReasonable) {
  const BaselineMedians vgg = median_baselines(C(), "VGG-16");
  EXPECT_GT(vgg.reporting_papers, 2);
  EXPECT_NEAR(vgg.params_millions, 138.0, 10.0);
  EXPECT_NEAR(vgg.top1, 71.6, 2.0);

  const BaselineMedians r50 = median_baselines(C(), "ResNet-50");
  EXPECT_NEAR(r50.params_millions, 25.6, 2.0);
}

TEST(Analysis, NormalizationProducesAbsolutePoints) {
  const auto points = normalized_pruned_points(C(), "ImageNet", "VGG-16");
  EXPECT_GT(points.size(), 20u);
  for (const auto& p : points) {
    EXPECT_GT(p.params_millions, 1.0);    // pruned VGG still has params
    EXPECT_LT(p.params_millions, 150.0);  // smaller than the original
    EXPECT_GT(p.top1, 50.0);
    EXPECT_LT(p.top1, 80.0);
  }
}

TEST(Analysis, Fig5LabelsAllResolve) {
  for (const auto& label : fig5_magnitude_labels()) {
    EXPECT_NE(resnet50_curve_by_label(C(), label), nullptr) << label;
  }
  for (const auto& label : fig5_other_labels()) {
    EXPECT_NE(resnet50_curve_by_label(C(), label), nullptr) << label;
  }
  EXPECT_EQ(resnet50_curve_by_label(C(), "Nonexistent 2099"), nullptr);
}

TEST(Analysis, YearProgressIsWeak) {
  // §4.3: "Methods from later years do not consistently outperform methods
  // from earlier years" — the year/quality correlation must be weak.
  const auto configs = common_configs();
  int comparable_total = 0;
  for (const auto& config : configs) {
    const YearProgress yp = year_progress(C(), config, 4.0);
    EXPECT_GE(yp.correlation, -1.0);
    EXPECT_LE(yp.correlation, 1.0);
    EXPECT_LT(std::abs(yp.correlation), 0.8) << config.display;
    comparable_total += static_cast<int>(yp.per_method.size());
  }
  // Only a minority of curves even bracket the reference ratio — the
  // incomparability the section describes.
  EXPECT_GT(comparable_total, 5);
  EXPECT_LT(comparable_total, 60);
}

TEST(Families, Figure1FamiliesPresent) {
  const auto& families = architecture_families();
  ASSERT_EQ(families.size(), 4u);
  std::set<std::string> names;
  for (const auto& f : families) {
    names.insert(f.name);
    ASSERT_GE(f.members.size(), 4u);
    // Members ordered by size, accuracy non-decreasing within a family.
    for (size_t i = 1; i < f.members.size(); ++i) {
      EXPECT_GT(f.members[i].params_millions, f.members[i - 1].params_millions) << f.name;
      EXPECT_GE(f.members[i].top1, f.members[i - 1].top1) << f.name;
    }
  }
  EXPECT_TRUE(names.count("EfficientNet"));
  EXPECT_TRUE(names.count("ResNet"));
  EXPECT_TRUE(names.count("VGG"));
  EXPECT_TRUE(names.count("MobileNet-v2"));
}

// ---- metric conversions (Appendix A / §5.2) ----

TEST(Units, ErrorAccuracyConversion) {
  EXPECT_DOUBLE_EQ(accuracy_from_error(28.4), 71.6);
  EXPECT_DOUBLE_EQ(accuracy_from_error(0.0), 100.0);
  EXPECT_THROW(accuracy_from_error(-1.0), std::invalid_argument);
  EXPECT_THROW(accuracy_from_error(101.0), std::invalid_argument);
}

TEST(Units, CompressionConventionsAgree) {
  // 75% pruned == 25% remaining == "0.75 compression ratio" misuse == 4x.
  EXPECT_DOUBLE_EQ(compression_from_fraction_pruned(0.75), 4.0);
  EXPECT_DOUBLE_EQ(compression_from_fraction_remaining(0.25), 4.0);
  EXPECT_DOUBLE_EQ(compression_from_misused_ratio(0.75), 4.0);
  EXPECT_THROW(compression_from_fraction_pruned(1.0), std::invalid_argument);
  EXPECT_THROW(compression_from_fraction_remaining(0.0), std::invalid_argument);
}

TEST(Units, CompressionRoundTrips) {
  for (const double ratio : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    EXPECT_DOUBLE_EQ(compression_from_fraction_pruned(fraction_pruned_from_compression(ratio)),
                     ratio);
    EXPECT_DOUBLE_EQ(
        compression_from_fraction_remaining(fraction_remaining_from_compression(ratio)), ratio);
  }
  EXPECT_THROW(fraction_pruned_from_compression(0.5), std::invalid_argument);
}

TEST(Units, SpeedupConversions) {
  EXPECT_DOUBLE_EQ(speedup_from_flops_remaining(0.5), 2.0);
  EXPECT_DOUBLE_EQ(speedup_from_flops_reduction_percent(75.0), 4.0);
  EXPECT_THROW(speedup_from_flops_remaining(0.0), std::invalid_argument);
  EXPECT_THROW(speedup_from_flops_reduction_percent(100.0), std::invalid_argument);
}

TEST(Families, EfficientNetDominatesAtEqualSize) {
  // Figure 1's headline: pruning rarely beats a better architecture.
  // EfficientNet-B0 (5.3M params) beats even ResNet-152 (60M).
  const auto& families = architecture_families();
  const auto find = [&](const std::string& name) -> const ArchitectureFamily& {
    for (const auto& f : families) {
      if (f.name == name) return f;
    }
    throw std::logic_error("missing family");
  };
  EXPECT_GT(find("EfficientNet").members.front().top1, find("ResNet").members.back().top1 - 1.3);
  EXPECT_GT(find("EfficientNet").members.back().top1, find("VGG").members.back().top1 + 10);
}

}  // namespace
}  // namespace shrinkbench::corpus
