// Thread-count determinism tests: the thread pool's static partitioning
// guarantees that training curves, evaluation metrics, full experiments,
// and sweep CSVs are bit-identical whether the runtime uses 1 thread or
// many — the reproducibility contract the paper's comparisons rely on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <cstring>

#include "core/experiment.hpp"
#include "data/synthetic.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "nn/checkpoint.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "obs/io.hpp"
#include "obs/profile.hpp"
#include "tensor/threadpool.hpp"

namespace shrinkbench {
namespace {

struct PoolFixture : ::testing::Test {
  int original = ThreadPool::instance().threads();
  void TearDown() override { ThreadPool::instance().set_threads(original); }
};

SyntheticSpec tiny_spec() {
  SyntheticSpec spec = synth_mnist();
  spec.train_size = 256;
  spec.val_size = 96;
  spec.test_size = 96;
  return spec;
}

TrainOptions tiny_train_options() {
  TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 32;
  opts.patience = 0;
  return opts;
}

// A conv + batchnorm + pool model so the multi-threaded determinism
// claim covers every parallelised layer, not just GEMM.
ModelPtr tiny_model(const DatasetBundle& bundle) {
  ModelPtr model = make_model("cifar-vgg", bundle.train.sample_shape(),
                              bundle.train.num_classes, /*base_width=*/4);
  Rng rng(17);
  init_model(*model, rng);
  return model;
}

// ---- Fused conv grid determinism ----

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// Conv forward/backward must be bit-identical across thread counts at
// every batch size the fused (sample × out-channel-tile) grid tiles
// differently: batch 1 splits channels only, batch 7 splits ragged
// sample ranges, batch 32 splits samples only. Covers y, dx, dW and db.
TEST_F(PoolFixture, ConvForwardBackwardBitIdenticalAcrossThreadsAndBatches) {
  struct ConvOut {
    Tensor y, dx, dw, db;
  };
  for (const int64_t batch : {int64_t{1}, int64_t{7}, int64_t{32}}) {
    const auto run = [&](int threads) {
      ThreadPool::instance().set_threads(threads);
      Conv2d conv("c", 5, 12, 3, 1, 1, /*bias=*/true);
      Rng rng(21);
      rng.fill_normal(conv.weight().data, 0.0f, 1.0f);
      rng.fill_normal(conv.bias()->data, 0.0f, 1.0f);
      Tensor x({batch, 5, 9, 9}), dy({batch, 12, 9, 9});
      Rng data_rng(22);
      data_rng.fill_normal(x, 0.0f, 1.0f);
      data_rng.fill_normal(dy, 0.0f, 1.0f);
      ConvOut out;
      out.y = conv.forward(x, /*train=*/true);
      out.dx = conv.backward(dy);
      out.dw = conv.weight().grad;
      out.db = conv.bias()->grad;
      return out;
    };
    const ConvOut serial = run(1);
    for (const int threads : {2, 4}) {
      const ConvOut threaded = run(threads);
      EXPECT_TRUE(same_bits(serial.y, threaded.y)) << "batch=" << batch << " threads=" << threads;
      EXPECT_TRUE(same_bits(serial.dx, threaded.dx))
          << "batch=" << batch << " threads=" << threads;
      EXPECT_TRUE(same_bits(serial.dw, threaded.dw))
          << "batch=" << batch << " threads=" << threads;
      EXPECT_TRUE(same_bits(serial.db, threaded.db))
          << "batch=" << batch << " threads=" << threads;
    }
  }
}

// Small-batch training (batch below the pool width included) must stay
// on the same loss curve to the bit for SB_THREADS in {1, 2, 4}: the
// fused grid's channel-axis split may only change the work schedule,
// never the arithmetic.
TEST_F(PoolFixture, TrainingCurveBitIdenticalAcrossThreadsAndBatchSizes) {
  SyntheticSpec spec = tiny_spec();
  spec.train_size = 64;
  spec.val_size = 32;
  spec.test_size = 32;
  const DatasetBundle bundle = make_synthetic(spec);
  for (const int batch : {1, 7, 32}) {
    TrainOptions opts;
    opts.epochs = 1;
    opts.batch_size = batch;
    opts.patience = 0;
    const auto run = [&](int threads) {
      ThreadPool::instance().set_threads(threads);
      ModelPtr model = tiny_model(bundle);
      return train_model(*model, bundle, opts);
    };
    const TrainHistory serial = run(1);
    for (const int threads : {2, 4}) {
      const TrainHistory threaded = run(threads);
      ASSERT_EQ(serial.epochs.size(), threaded.epochs.size());
      for (size_t i = 0; i < serial.epochs.size(); ++i) {
        EXPECT_EQ(serial.epochs[i].train_loss, threaded.epochs[i].train_loss)
            << "batch=" << batch << " threads=" << threads << " epoch " << i;
        EXPECT_EQ(serial.epochs[i].val_loss, threaded.epochs[i].val_loss)
            << "batch=" << batch << " threads=" << threads << " epoch " << i;
        EXPECT_EQ(serial.epochs[i].val_top1, threaded.epochs[i].val_top1)
            << "batch=" << batch << " threads=" << threads << " epoch " << i;
      }
    }
  }
}

// The point of the fused grid: a batch-1 conv forward must actually fan
// out over the pool (the old per-sample split left threadpool.jobs flat
// because one sample formed one chunk).
TEST_F(PoolFixture, Batch1ConvForwardEngagesPool) {
  ThreadPool::instance().set_threads(4);
  Conv2d conv("c", 8, 16, 3, 1, 1, /*bias=*/false);
  Rng rng(23);
  rng.fill_normal(conv.weight().data, 0.0f, 1.0f);
  Tensor x({1, 8, 12, 12});
  rng.fill_normal(x, 0.0f, 1.0f);
  obs::set_profiling_enabled(true);
  const int64_t jobs_before = obs::Profiler::instance().snapshot().counters["threadpool.jobs"];
  Tensor y = conv.forward(x, /*train=*/false);
  const int64_t jobs_after = obs::Profiler::instance().snapshot().counters["threadpool.jobs"];
  obs::set_profiling_enabled(false);
  ASSERT_GT(y.numel(), 0);
  EXPECT_GT(jobs_after, jobs_before) << "batch-1 forward never fanned out over the pool";
}

TEST_F(PoolFixture, TrainingCurvesBitIdenticalAcrossThreadCounts) {
  const DatasetBundle bundle = make_synthetic(tiny_spec());
  const auto run = [&](int threads) {
    ThreadPool::instance().set_threads(threads);
    ModelPtr model = tiny_model(bundle);
    return train_model(*model, bundle, tiny_train_options());
  };
  const TrainHistory serial = run(1);
  const TrainHistory threaded = run(4);
  ASSERT_EQ(serial.epochs.size(), threaded.epochs.size());
  for (size_t i = 0; i < serial.epochs.size(); ++i) {
    // Exact equality, not near: the loss curve must be bit-identical.
    EXPECT_EQ(serial.epochs[i].train_loss, threaded.epochs[i].train_loss) << "epoch " << i;
    EXPECT_EQ(serial.epochs[i].val_loss, threaded.epochs[i].val_loss) << "epoch " << i;
    EXPECT_EQ(serial.epochs[i].val_top1, threaded.epochs[i].val_top1) << "epoch " << i;
  }
}

TEST_F(PoolFixture, EvaluateBitIdenticalAcrossThreadCounts) {
  const DatasetBundle bundle = make_synthetic(tiny_spec());
  ModelPtr model = tiny_model(bundle);
  ThreadPool::instance().set_threads(1);
  const EvalResult serial = evaluate(*model, bundle.test, 32);
  for (const int threads : {2, 4}) {
    ThreadPool::instance().set_threads(threads);
    const EvalResult threaded = evaluate(*model, bundle.test, 32);
    EXPECT_EQ(serial.loss, threaded.loss) << "threads=" << threads;
    EXPECT_EQ(serial.top1, threaded.top1) << "threads=" << threads;
    EXPECT_EQ(serial.top5, threaded.top5) << "threads=" << threads;
    EXPECT_EQ(serial.samples, threaded.samples);
  }
  // A batch size that does not divide the dataset exercises the ragged
  // final batch in the parallel evaluate path.
  ThreadPool::instance().set_threads(1);
  const EvalResult ragged_serial = evaluate(*model, bundle.test, 40);
  ThreadPool::instance().set_threads(4);
  const EvalResult ragged_threaded = evaluate(*model, bundle.test, 40);
  EXPECT_EQ(ragged_serial.loss, ragged_threaded.loss);
  EXPECT_EQ(ragged_serial.top1, ragged_threaded.top1);
}

// ---- Crash-and-resume bit-identity ----

// The auto-resume contract: a run that crashes mid-training and restarts
// from its checkpoints must produce the same training curve and the same
// final weights, to the bit, as a run that was never interrupted — under
// any thread count. Uses the dropout VGG variant so the per-layer RNG
// streams are part of the contract too.
TEST_F(PoolFixture, ResumeMatchesUninterruptedRunBitIdentical) {
  const DatasetBundle bundle = make_synthetic(tiny_spec());
  const std::string dir = ::testing::TempDir() + "/sb_det_resume";
  const auto dropout_model = [&bundle]() {
    ModelPtr model = make_model("cifar-vgg-dropout", bundle.train.sample_shape(),
                                bundle.train.num_classes, /*base_width=*/4);
    Rng rng(17);
    init_model(*model, rng);
    return model;
  };

  for (const int threads : {1, 4}) {
    ThreadPool::instance().set_threads(threads);
    std::filesystem::remove_all(dir);
    TrainOptions opts = tiny_train_options();
    opts.epochs = 4;

    ModelPtr control = dropout_model();
    const TrainHistory uninterrupted = train_model(*control, bundle, opts);

    opts.checkpoint_dir = dir;
    opts.checkpoint_every = 1;
    ModelPtr crashed = dropout_model();
    obs::set_fault_spec("train.crash_epoch:3");  // kill at epoch 2
    EXPECT_THROW(train_model(*crashed, bundle, opts), std::runtime_error);
    obs::set_fault_spec("");

    ModelPtr resumed_model = dropout_model();
    const TrainHistory resumed = train_model(*resumed_model, bundle, opts);
    EXPECT_EQ(resumed.resumed_from_epoch, 2) << "threads=" << threads;

    ASSERT_EQ(resumed.epochs.size(), uninterrupted.epochs.size());
    for (size_t i = 0; i < resumed.epochs.size(); ++i) {
      EXPECT_EQ(resumed.epochs[i].train_loss, uninterrupted.epochs[i].train_loss)
          << "threads=" << threads << " epoch " << i;
      EXPECT_EQ(resumed.epochs[i].val_loss, uninterrupted.epochs[i].val_loss)
          << "threads=" << threads << " epoch " << i;
      EXPECT_EQ(resumed.epochs[i].val_top1, uninterrupted.epochs[i].val_top1)
          << "threads=" << threads << " epoch " << i;
    }
    EXPECT_EQ(resumed.best_epoch, uninterrupted.best_epoch);
    EXPECT_EQ(resumed.best_val_top1, uninterrupted.best_val_top1);

    const StateDict a = state_dict(*control);
    const StateDict b = state_dict(*resumed_model);
    ASSERT_EQ(a.size(), b.size());
    for (const auto& [key, tensor] : a) {
      const auto it = b.find(key);
      ASSERT_NE(it, b.end()) << key;
      ASSERT_EQ(tensor.numel(), it->second.numel()) << key;
      EXPECT_EQ(std::memcmp(tensor.data(), it->second.data(),
                            sizeof(float) * static_cast<size_t>(tensor.numel())),
                0)
          << "threads=" << threads << " tensor " << key;
    }

    // Re-running against a directory whose training already finished is a
    // pure no-op resume: same history, no extra epochs.
    ModelPtr again = dropout_model();
    const TrainHistory noop = train_model(*again, bundle, opts);
    EXPECT_EQ(noop.resumed_from_epoch, opts.epochs);
    ASSERT_EQ(noop.epochs.size(), uninterrupted.epochs.size());
    std::filesystem::remove_all(dir);
  }
}

// ---- Sweep CSV determinism across SB_SWEEP_PARALLEL ----

ExperimentConfig sweep_config() {
  ExperimentConfig cfg;
  cfg.dataset = "synth-mnist";
  cfg.arch = "lenet-300-100";
  cfg.pretrain.epochs = 4;
  cfg.pretrain.batch_size = 64;
  cfg.pretrain.patience = 0;
  cfg.finetune.epochs = 1;
  cfg.finetune.patience = 0;
  return cfg;
}

// Strips the wall-clock columns (seconds, pretrain_s, prune_s,
// finetune_s, eval_s — header indices 20-24), which legitimately differ
// between runs; every other column must match exactly.
std::string strip_timing_columns(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i >= 20 && i <= 24) continue;
    out += fields[i];
    out += ',';
  }
  return out;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream is(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  return lines;
}

TEST_F(PoolFixture, SweepCsvBitIdenticalAcrossWorkerCounts) {
  const std::vector<std::string> strategies = {"global-weight", "random"};
  const std::vector<double> compressions = {2.0, 4.0};
  const std::vector<uint64_t> seeds = {1};
  const std::string dir = ::testing::TempDir() + "/sb_det_sweep";
  std::filesystem::remove_all(dir);

  const auto run = [&](int workers, const std::string& tag) {
    // Separate cache dirs so neither run serves the other's results.
    ExperimentRunner runner(dir + "/cache_" + tag);
    SweepOptions options;
    options.csv_path = dir + "/sweep_" + tag + ".csv";
    options.parallel = workers;
    SweepSummary summary;
    const auto results =
        run_sweep(runner, sweep_config(), strategies, compressions, seeds, options, &summary);
    EXPECT_EQ(summary.completed, strategies.size() * compressions.size());
    EXPECT_EQ(summary.failures, 0u);
    EXPECT_FALSE(summary.interrupted);
    return results;
  };

  const auto sequential = run(1, "seq");
  const auto parallel = run(3, "par");

  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    // Row order is grid order in both modes, and metrics are
    // bit-identical because each experiment's arithmetic is unchanged.
    EXPECT_EQ(sequential[i].config.strategy, parallel[i].config.strategy);
    EXPECT_EQ(sequential[i].config.target_compression, parallel[i].config.target_compression);
    EXPECT_EQ(sequential[i].pre_top1, parallel[i].pre_top1) << "row " << i;
    EXPECT_EQ(sequential[i].post_top1, parallel[i].post_top1) << "row " << i;
    EXPECT_EQ(sequential[i].post_loss, parallel[i].post_loss) << "row " << i;
    EXPECT_EQ(sequential[i].compression, parallel[i].compression) << "row " << i;
  }

  const auto lines_seq = read_lines(dir + "/sweep_seq.csv");
  const auto lines_par = read_lines(dir + "/sweep_par.csv");
  ASSERT_EQ(lines_seq.size(), lines_par.size());
  ASSERT_EQ(lines_seq.size(), sequential.size() + 1);  // header + rows
  for (size_t i = 0; i < lines_seq.size(); ++i) {
    EXPECT_EQ(strip_timing_columns(lines_seq[i]), strip_timing_columns(lines_par[i]))
        << "line " << i;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace shrinkbench
