// Workspace arena tests: scope discipline, alignment, buffer reuse,
// growth + consolidation, and the steady-state no-allocation guarantee
// the hot paths rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"
#include "tensor/workspace.hpp"

namespace shrinkbench {
namespace {

struct WorkspaceFixture : ::testing::Test {
  void SetUp() override { Workspace::tls().release(); }
  void TearDown() override { Workspace::tls().release(); }
};

bool aligned64(const void* p) { return reinterpret_cast<uintptr_t>(p) % 64 == 0; }

TEST_F(WorkspaceFixture, GetOutsideScopeThrows) {
  EXPECT_THROW(Workspace::tls().get(128), std::logic_error);
}

TEST_F(WorkspaceFixture, AllocationsAreAlignedAndDisjoint) {
  Workspace::Scope scope;
  Workspace& ws = Workspace::tls();
  float* a = ws.floats(100);
  float* b = ws.floats(1);
  char* c = static_cast<char*>(ws.get(3));
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(aligned64(a));
  EXPECT_TRUE(aligned64(b));
  EXPECT_TRUE(aligned64(c));
  // 100 floats round up to 448 bytes; b must start past a's block.
  EXPECT_GE(reinterpret_cast<char*>(b), reinterpret_cast<char*>(a) + 100 * sizeof(float));
  EXPECT_GE(c, reinterpret_cast<char*>(b) + sizeof(float));
  EXPECT_GE(ws.in_use(), 100 * sizeof(float) + 64 + 64);
}

TEST_F(WorkspaceFixture, ScopePopReleasesAndReusesMemory) {
  Workspace& ws = Workspace::tls();
  float* first = nullptr;
  {
    Workspace::Scope scope;
    first = ws.floats(1000);
    EXPECT_GT(ws.in_use(), 0u);
  }
  EXPECT_EQ(ws.in_use(), 0u);
  const size_t cap = ws.capacity();
  const int64_t grows = ws.grow_count();
  {
    Workspace::Scope scope;
    // Same-size allocation after pop reuses the same memory: no growth.
    float* again = ws.floats(1000);
    EXPECT_EQ(again, first);
  }
  EXPECT_EQ(ws.capacity(), cap);
  EXPECT_EQ(ws.grow_count(), grows);
}

TEST_F(WorkspaceFixture, NestedScopesRestoreInLifoOrder) {
  Workspace& ws = Workspace::tls();
  Workspace::Scope outer;
  float* a = ws.floats(10);
  const size_t outer_use = ws.in_use();
  float* inner_ptr = nullptr;
  {
    Workspace::Scope inner;
    inner_ptr = ws.floats(10);
    EXPECT_GT(ws.in_use(), outer_use);
  }
  EXPECT_EQ(ws.in_use(), outer_use);
  // The inner slot is free again: the next allocation lands on it.
  float* b = ws.floats(10);
  EXPECT_EQ(b, inner_ptr);
  (void)a;
}

TEST_F(WorkspaceFixture, GrowthConsolidatesToHighWaterSteadyState) {
  Workspace& ws = Workspace::tls();
  // Force multi-chunk growth: each allocation exceeds what's left.
  {
    Workspace::Scope scope;
    ws.floats(1 << 18);
    ws.floats(1 << 20);
    ws.floats(1 << 21);
  }
  const size_t high = ws.high_water();
  EXPECT_GE(ws.capacity(), high);
  const int64_t grows_after_warmup = ws.grow_count();
  // Steady state: repeating the same allocation pattern never grows the
  // arena again and capacity stays put.
  const size_t cap = ws.capacity();
  for (int iter = 0; iter < 3; ++iter) {
    Workspace::Scope scope;
    ws.floats(1 << 18);
    ws.floats(1 << 20);
    ws.floats(1 << 21);
  }
  EXPECT_EQ(ws.grow_count(), grows_after_warmup);
  EXPECT_EQ(ws.capacity(), cap);
  EXPECT_EQ(ws.high_water(), high);
}

TEST_F(WorkspaceFixture, ReleaseResetsEverything) {
  Workspace& ws = Workspace::tls();
  {
    Workspace::Scope scope;
    ws.floats(4096);
  }
  EXPECT_GT(ws.capacity(), 0u);
  ws.release();
  EXPECT_EQ(ws.capacity(), 0u);
  EXPECT_EQ(ws.high_water(), 0u);
  EXPECT_EQ(ws.grow_count(), 0);
  EXPECT_EQ(ws.in_use(), 0u);
}

TEST_F(WorkspaceFixture, ReleaseWithLiveScopeThrows) {
  Workspace::Scope scope;
  EXPECT_THROW(Workspace::tls().release(), std::logic_error);
}

TEST_F(WorkspaceFixture, RepeatedGemmCallsReachSteadyState) {
  Workspace& ws = Workspace::tls();
  Rng rng(11);
  Tensor a({64, 300}), b({300, 128});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  (void)matmul(a, b);  // warm-up
  const int64_t grows = ws.grow_count();
  const size_t cap = ws.capacity();
  for (int i = 0; i < 5; ++i) (void)matmul(a, b);
  EXPECT_EQ(ws.grow_count(), grows) << "gemm grew the arena after warm-up";
  EXPECT_EQ(ws.capacity(), cap);
  EXPECT_EQ(ws.in_use(), 0u) << "gemm leaked arena scratch";
}

}  // namespace
}  // namespace shrinkbench
