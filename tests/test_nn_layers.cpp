// Layer-level tests: output shapes, FLOP accounting, and — most
// importantly — numerical gradient checks for every layer type, including
// composed containers (Sequential, ResidualBlock).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gradcheck.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"

namespace shrinkbench {
namespace {

using testing::gradcheck;

Tensor random_input(Shape shape, uint64_t seed = 1) {
  Rng rng(seed);
  Tensor x(std::move(shape));
  rng.fill_normal(x, 0.0f, 1.0f);
  return x;
}

// ---- Linear ----

TEST(Linear, ForwardMatchesManual) {
  Linear fc("fc", 2, 2, true);
  fc.weight().data = Tensor({2, 2}, {1, 2, 3, 4});
  fc.bias()->data = Tensor({2}, {0.5f, -0.5f});
  const Tensor x({1, 2}, {1, 1});
  const Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y(0, 0), 3.5f);   // 1*1 + 2*1 + 0.5
  EXPECT_FLOAT_EQ(y(0, 1), 6.5f);   // 3 + 4 - 0.5
}

TEST(Linear, GradCheck) {
  Linear fc("fc", 4, 3, true);
  Rng rng(2);
  kaiming_normal(fc.weight().data, rng);
  gradcheck(fc, random_input({5, 4}));
}

TEST(Linear, GradCheckNoBias) {
  Linear fc("fc", 3, 2, false);
  Rng rng(3);
  kaiming_normal(fc.weight().data, rng);
  EXPECT_EQ(fc.bias(), nullptr);
  gradcheck(fc, random_input({2, 3}));
}

TEST(Linear, RejectsBadInput) {
  Linear fc("fc", 4, 3);
  EXPECT_THROW(fc.forward(Tensor({2, 5}), false), std::invalid_argument);
  EXPECT_THROW(fc.backward(Tensor({2, 3})), std::logic_error);
}

TEST(Linear, FlopsAndClassifierFlag) {
  Linear fc("fc", 10, 4, true, /*is_classifier=*/true);
  EXPECT_EQ(fc.flops({10}), 40);
  EXPECT_TRUE(fc.weight().is_classifier);
  EXPECT_TRUE(fc.weight().prunable);
  EXPECT_FALSE(parameters_of(fc)[1]->prunable);  // bias
  fc.weight().mask.zero();
  EXPECT_EQ(fc.effective_flops({10}), 0);
}

// ---- Conv2d ----

TEST(Conv2d, ForwardIdentityKernel) {
  Conv2d conv("c", 1, 1, 1, 1, 0, false);
  conv.weight().data = Tensor({1, 1, 1, 1}, {2.0f});
  const Tensor x = random_input({1, 1, 4, 4});
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_TRUE(ops::allclose(y, ops::scale(x, 2.0f)));
}

TEST(Conv2d, OutputShapeStridePad) {
  Conv2d conv("c", 3, 8, 3, 2, 1, false);
  EXPECT_EQ(conv.output_sample_shape({3, 8, 8}), (Shape{8, 4, 4}));
  const Tensor y = conv.forward(random_input({2, 3, 8, 8}), false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 4, 4}));
}

TEST(Conv2d, GradCheckWithBias) {
  Conv2d conv("c", 2, 3, 3, 1, 1, true);
  Rng rng(4);
  kaiming_normal(conv.weight().data, rng);
  gradcheck(conv, random_input({2, 2, 4, 4}));
}

TEST(Conv2d, GradCheckStride2NoBias) {
  Conv2d conv("c", 2, 2, 3, 2, 1, false);
  Rng rng(5);
  kaiming_normal(conv.weight().data, rng);
  gradcheck(conv, random_input({2, 2, 5, 5}));
}

TEST(Conv2d, GradCheck1x1) {
  Conv2d conv("c", 3, 2, 1, 1, 0, false);
  Rng rng(6);
  kaiming_normal(conv.weight().data, rng);
  gradcheck(conv, random_input({2, 3, 3, 3}));
}

TEST(Conv2d, FlopsCountsSpatialPositions) {
  Conv2d conv("c", 2, 4, 3, 1, 1, false);
  // 8x8 output positions x (4*2*3*3) weights
  EXPECT_EQ(conv.flops({2, 8, 8}), 64 * 72);
  // Masking half the weights halves effective FLOPs.
  for (int64_t i = 0; i < conv.weight().mask.numel() / 2; ++i) conv.weight().mask.at(i) = 0.0f;
  EXPECT_EQ(conv.effective_flops({2, 8, 8}), 64 * 36);
}

TEST(Conv2d, FlopsValidatesSampleShape) {
  // Regression: flops/effective_flops used to index in[1]/in[2] without
  // the shape check output_sample_shape performs, reading out of bounds
  // on malformed shapes.
  Conv2d conv("c", 2, 4, 3, 1, 1, false);
  EXPECT_THROW(conv.flops({}), std::invalid_argument);
  EXPECT_THROW(conv.flops({2, 8}), std::invalid_argument);      // wrong rank
  EXPECT_THROW(conv.flops({3, 8, 8}), std::invalid_argument);   // wrong channels
  EXPECT_THROW(conv.effective_flops({}), std::invalid_argument);
  EXPECT_THROW(conv.effective_flops({2, 8}), std::invalid_argument);
  EXPECT_THROW(conv.effective_flops({3, 8, 8}), std::invalid_argument);
  EXPECT_EQ(conv.flops({2, 8, 8}), 64 * 72);  // valid shapes still work
}

TEST(Conv2d, RejectsWrongChannels) {
  Conv2d conv("c", 3, 4, 3, 1, 1);
  EXPECT_THROW(conv.forward(Tensor({1, 2, 8, 8}), false), std::invalid_argument);
}

// ---- BatchNorm ----

TEST(BatchNorm, NormalizesBatchInTraining) {
  BatchNorm2d bn("bn", 3);
  const Tensor x = random_input({4, 3, 5, 5}, 7);
  const Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1.
  for (int64_t c = 0; c < 3; ++c) {
    double s = 0, s2 = 0;
    for (int64_t n = 0; n < 4; ++n) {
      for (int64_t i = 0; i < 25; ++i) {
        const float v = y.data()[(n * 3 + c) * 25 + i];
        s += v;
        s2 += static_cast<double>(v) * v;
      }
    }
    EXPECT_NEAR(s / 100.0, 0.0, 1e-4);
    EXPECT_NEAR(s2 / 100.0, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn("bn", 2);
  // Train a few times to populate running stats.
  for (int i = 0; i < 20; ++i) bn.forward(random_input({8, 2, 4, 4}, 100 + i), true);
  const Tensor x = random_input({4, 2, 4, 4}, 55);
  const Tensor y1 = bn.forward(x, false);
  const Tensor y2 = bn.forward(x, false);
  EXPECT_TRUE(ops::allclose(y1, y2));  // eval mode is deterministic/stateless
}

TEST(BatchNorm, GradCheck) {
  BatchNorm2d bn("bn", 2);
  Rng rng(8);
  rng.fill_uniform(parameters_of(bn)[0]->data, 0.5f, 1.5f);  // gamma
  rng.fill_uniform(parameters_of(bn)[1]->data, -0.5f, 0.5f); // beta
  testing::GradCheckOptions opts;
  opts.tolerance = 4e-2f;  // batch statistics amplify finite-difference noise
  gradcheck(bn, random_input({3, 2, 3, 3}, 9), opts);
}

TEST(BatchNorm, ParamsNotPrunable) {
  BatchNorm2d bn("bn", 4);
  for (Parameter* p : parameters_of(bn)) EXPECT_FALSE(p->prunable);
}

// ---- Activations / pooling / flatten ----

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu("r");
  const Tensor y = relu.forward(Tensor::of({-1, 0, 2}), false);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(1), 0.0f);
  EXPECT_EQ(y.at(2), 2.0f);
}

TEST(ReLU, GradCheck) {
  ReLU relu("r");
  gradcheck(relu, random_input({3, 7}, 10));
}

TEST(MaxPool, ForwardPicksMaxima) {
  MaxPool2d pool("p", 2, 2);
  Tensor x({1, 1, 2, 2}, {1, 4, 3, 2});
  EXPECT_EQ(pool.forward(x, false).at(0), 4.0f);
  EXPECT_EQ(pool.output_sample_shape({3, 8, 8}), (Shape{3, 4, 4}));
}

TEST(MaxPool, GradCheck) {
  MaxPool2d pool("p", 2, 2);
  gradcheck(pool, random_input({2, 2, 4, 4}, 11));
}

TEST(MaxPool, NanWindowPropagatesAndKeepsGradientInImage) {
  // Image 0 is finite, image 1 is all-NaN. Before the argmax seeding fix
  // an all-NaN window (every `v > best` comparison false) kept
  // best_idx = 0, so image 1's gradient was routed to element 0 of the
  // whole batch tensor — i.e. into image 0.
  MaxPool2d pool("p", 2, 2);
  Tensor x({2, 1, 2, 2}, {1, 2, 3, 4, NAN, NAN, NAN, NAN});
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.at(0), 4.0f);
  EXPECT_TRUE(std::isnan(y.at(1)));  // NaN propagates instead of -inf
  const Tensor dy({2, 1, 1, 1}, {0.0f, 7.0f});
  const Tensor dx = pool.backward(dy);
  EXPECT_EQ(dx.at(0), 0.0f);  // no cross-image leakage
  EXPECT_EQ(dx.at(4), 7.0f);  // routed to image 1's own window
}

TEST(MaxPool, AllNegInfWindowKeepsArgmaxInWindow) {
  MaxPool2d pool("p", 2, 2);
  const float inf = std::numeric_limits<float>::infinity();
  Tensor x({1, 1, 4, 2}, {1, 2, 3, 4, -inf, -inf, -inf, -inf});
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.at(0), 4.0f);
  EXPECT_EQ(y.at(1), -inf);
  const Tensor dy({1, 1, 2, 1}, {0.0f, 5.0f});
  const Tensor dx = pool.backward(dy);
  EXPECT_EQ(dx.at(0), 0.0f);  // not routed to tensor element 0
  EXPECT_EQ(dx.at(4), 5.0f);  // the -inf window's own first element
}

TEST(MaxPool, RejectsRaggedTilingAndBadConfig) {
  MaxPool2d pool("p", 2, 2);
  // (5 - 2) % 2 != 0: pooling would silently drop the last input row.
  EXPECT_THROW(pool.forward(random_input({1, 1, 5, 4}), false), std::invalid_argument);
  EXPECT_THROW(pool.output_sample_shape({1, 5, 4}), std::invalid_argument);
  EXPECT_THROW(pool.output_sample_shape({1, 4, 1}), std::invalid_argument);  // w < kernel
  EXPECT_THROW(MaxPool2d("bad", 0, 2), std::invalid_argument);
  EXPECT_THROW(MaxPool2d("bad", 2, 0), std::invalid_argument);
}

TEST(AvgPool, ForwardAverages) {
  AvgPool2d pool("p", 2, 2);
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 6});
  EXPECT_FLOAT_EQ(pool.forward(x, false).at(0), 3.0f);
}

TEST(AvgPool, GradCheck) {
  AvgPool2d pool("p", 2, 2);
  gradcheck(pool, random_input({2, 2, 4, 4}, 12));
}

TEST(AvgPool, RejectsRaggedTiling) {
  AvgPool2d pool("p", 3, 2);
  EXPECT_THROW(pool.forward(random_input({1, 1, 6, 7}), false), std::invalid_argument);
  EXPECT_NO_THROW(pool.forward(random_input({1, 1, 7, 7}), false));
}

// ---- Dropout mask staleness ----

TEST(Dropout, EvalForwardInvalidatesStaleMask) {
  Dropout drop("d", 0.5f);
  const Tensor x = random_input({4, 8}, 21);
  drop.forward(x, true);  // draws a mask
  const Tensor y = drop.forward(x, false);
  EXPECT_TRUE(ops::allclose(y, x, 0.0f, 0.0f));  // eval is the identity
  // Backward now would reuse a mask the eval forward never applied —
  // must throw instead of silently mis-scaling gradients.
  EXPECT_THROW(drop.backward(x), std::logic_error);
}

TEST(Dropout, BackwardRejectsShapeMismatch) {
  Dropout drop("d", 0.5f);
  drop.forward(random_input({4, 8}, 22), true);
  EXPECT_THROW(drop.backward(random_input({2, 8}, 23)), std::logic_error);
  EXPECT_NO_THROW(drop.backward(random_input({4, 8}, 24)));
}

TEST(Dropout, TrainForwardAfterEvalRestoresBackward) {
  Dropout drop("d", 0.5f);
  const Tensor x = random_input({4, 8}, 25);
  drop.forward(x, true);
  drop.forward(x, false);  // invalidates
  drop.forward(x, true);   // fresh mask
  EXPECT_NO_THROW(drop.backward(x));
}

TEST(GlobalAvgPool, ForwardShapeAndGradCheck) {
  GlobalAvgPool gap("g");
  EXPECT_EQ(gap.output_sample_shape({5, 3, 3}), (Shape{5}));
  gradcheck(gap, random_input({2, 3, 3, 3}, 13));
}

TEST(Flatten, RoundTripsShape) {
  Flatten flat("f");
  const Tensor x = random_input({2, 3, 4, 4}, 14);
  const Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  const Tensor dx = flat.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

// ---- Containers ----

std::unique_ptr<Sequential> small_convnet() {
  auto net = std::make_unique<Sequential>("net");
  net->emplace<Conv2d>("c1", 2, 3, 3, 1, 1, false);
  net->emplace<BatchNorm2d>("b1", 3);
  net->emplace<ReLU>("r1");
  net->emplace<MaxPool2d>("p1", 2, 2);
  net->emplace<Flatten>("f");
  net->emplace<Linear>("fc", 12, 2, true);
  Rng rng(15);
  init_model(*net, rng);
  return net;
}

TEST(Sequential, ShapePropagation) {
  auto net = small_convnet();
  EXPECT_EQ(net->output_sample_shape({2, 4, 4}), (Shape{2}));
  EXPECT_EQ(net->forward(random_input({3, 2, 4, 4}), false).shape(), (Shape{3, 2}));
}

TEST(Sequential, GradCheckComposed) {
  auto net = small_convnet();
  testing::GradCheckOptions opts;
  opts.tolerance = 5e-2f;  // composed batchnorm + pooling
  gradcheck(*net, random_input({3, 2, 4, 4}, 16), opts);
}

TEST(Sequential, CollectsAllParams) {
  auto net = small_convnet();
  const auto params = parameters_of(*net);
  // conv.w, bn.gamma, bn.beta, fc.w, fc.b
  ASSERT_EQ(params.size(), 5u);
  EXPECT_EQ(params[0]->name, "c1.weight");
  EXPECT_EQ(params[3]->name, "fc.weight");
}

TEST(Sequential, FlopsSumOverLayers) {
  auto net = small_convnet();
  // conv: 16 positions * 54 weights; fc: 24
  EXPECT_EQ(net->flops({2, 4, 4}), 16 * 54 + 24);
}

std::unique_ptr<ResidualBlock> make_block(int64_t in_c, int64_t out_c, int64_t stride,
                                          uint64_t seed) {
  auto main = std::make_unique<Sequential>("blk.main");
  main->emplace<Conv2d>("blk.conv1", in_c, out_c, 3, stride, 1, false);
  main->emplace<BatchNorm2d>("blk.bn1", out_c);
  main->emplace<ReLU>("blk.relu1");
  main->emplace<Conv2d>("blk.conv2", out_c, out_c, 3, 1, 1, false);
  main->emplace<BatchNorm2d>("blk.bn2", out_c);
  std::unique_ptr<Sequential> shortcut;
  if (stride != 1 || in_c != out_c) {
    shortcut = std::make_unique<Sequential>("blk.sc");
    shortcut->emplace<Conv2d>("blk.proj", in_c, out_c, 1, stride, 0, false);
    shortcut->emplace<BatchNorm2d>("blk.proj_bn", out_c);
  }
  auto block = std::make_unique<ResidualBlock>("blk", std::move(main), std::move(shortcut));
  Rng rng(seed);
  init_model(*block, rng);
  return block;
}

TEST(ResidualBlock, IdentityShortcutShape) {
  auto block = make_block(3, 3, 1, 17);
  EXPECT_EQ(block->output_sample_shape({3, 4, 4}), (Shape{3, 4, 4}));
  EXPECT_EQ(block->forward(random_input({2, 3, 4, 4}), false).shape(), (Shape{2, 3, 4, 4}));
}

TEST(ResidualBlock, ProjectionShortcutShape) {
  auto block = make_block(2, 4, 2, 18);
  EXPECT_EQ(block->output_sample_shape({2, 4, 4}), (Shape{4, 2, 2}));
}

TEST(ResidualBlock, GradCheckIdentity) {
  auto block = make_block(2, 2, 1, 19);
  testing::GradCheckOptions opts;
  opts.tolerance = 5e-2f;
  gradcheck(*block, random_input({3, 2, 3, 3}, 20), opts);
}

TEST(ResidualBlock, GradCheckProjection) {
  auto block = make_block(2, 3, 2, 21);
  testing::GradCheckOptions opts;
  opts.tolerance = 5e-2f;
  gradcheck(*block, random_input({3, 2, 4, 4}, 22), opts);
}

TEST(ResidualBlock, FlopsIncludeShortcut) {
  auto block = make_block(2, 4, 2, 23);
  // main: conv1 (2x2 out * 4*2*9) + conv2 (2x2 * 4*4*9); shortcut 1x1: 2x2 * 4*2.
  const int64_t expected = 4 * 72 + 4 * 144 + 4 * 8;
  EXPECT_EQ(block->flops({2, 4, 4}), expected);
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout drop("d", 0.5f);
  const Tensor x = random_input({4, 10}, 30);
  EXPECT_TRUE(ops::allclose(drop.forward(x, false), x, 0, 0));
}

TEST(Dropout, TrainZeroesAboutPAndRescales) {
  Dropout drop("d", 0.25f);
  const Tensor x = Tensor::ones({1, 10000});
  const Tensor y = drop.forward(x, true);
  int64_t zeros = 0;
  for (float v : y.flat()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5f);  // inverted scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.25, 0.02);
  // Expectation preserved.
  EXPECT_NEAR(ops::mean(y), 1.0f, 0.03f);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop("d", 0.5f);
  const Tensor x = random_input({2, 50}, 31);
  const Tensor y = drop.forward(x, true);
  const Tensor dy = Tensor::ones({2, 50});
  const Tensor dx = drop.backward(dy);
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y.at(i) == 0.0f) {
      EXPECT_EQ(dx.at(i), 0.0f);
    } else {
      EXPECT_NEAR(dx.at(i), 2.0f, 1e-5f);  // 1/(1-p)
    }
  }
}

TEST(Dropout, RejectsInvalidP) {
  EXPECT_THROW(Dropout("d", 1.0f), std::invalid_argument);
  EXPECT_THROW(Dropout("d", -0.1f), std::invalid_argument);
  EXPECT_NO_THROW(Dropout("d", 0.0f));
}

TEST(ResidualBlock, PreActVariantOmitsFinalReLU) {
  // With final_relu=false the block's output can be negative.
  auto main = std::make_unique<Sequential>("b.main");
  main->emplace<Conv2d>("b.conv", 2, 2, 1, 1, 0, false);
  auto& conv = dynamic_cast<Conv2d&>((*main)[0]);
  conv.weight().data.fill(-1.0f);  // strongly negative mapping
  ResidualBlock block("b", std::move(main), nullptr, /*final_relu=*/false);
  Tensor x = Tensor::full({1, 2, 2, 2}, 1.0f);
  const Tensor y = block.forward(x, false);
  EXPECT_LT(ops::min(y), 0.0f);
}

TEST(ResidualBlock, PreActGradCheck) {
  auto main = std::make_unique<Sequential>("b.main");
  main->emplace<BatchNorm2d>("b.bn1", 2);
  main->emplace<ReLU>("b.relu1");
  main->emplace<Conv2d>("b.conv1", 2, 2, 3, 1, 1, false);
  auto block = std::make_unique<ResidualBlock>("b", std::move(main), nullptr,
                                               /*final_relu=*/false);
  Rng rng(32);
  init_model(*block, rng);
  testing::GradCheckOptions opts;
  opts.tolerance = 5e-2f;
  gradcheck(*block, random_input({3, 2, 3, 3}, 33), opts);
}

TEST(VisitLayers, ReachesEveryLayer) {
  auto net = small_convnet();
  int count = 0;
  visit_layers(*net, [&](Layer&) { ++count; });
  EXPECT_EQ(count, 7);  // container + 6 children
}

}  // namespace
}  // namespace shrinkbench
