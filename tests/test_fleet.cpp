// Multi-process fleet tests: real fork()ed workers racing one shared
// result cache. Covers the FileLock claim primitive (exclusion + free on
// death), exactly-once pretraining and experiment compute across
// processes (asserted through train.epochs counters, not log scraping),
// byte-identical full-grid CSVs from every worker, and convergence after
// a worker is kill -9'ed mid-sweep.
//
// Fork safety: this binary pins SB_THREADS=1 before anything can build
// the tensor pool, so forked children never inherit dead pool threads.
#include <gtest/gtest.h>

#if !defined(_WIN32)

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "obs/io.hpp"
#include "obs/profile.hpp"

namespace shrinkbench {
namespace {

namespace fs = std::filesystem;

// Must run before any test (or static) touches the thread pool: width 1
// keeps every child single-threaded and therefore fork-safe.
const bool g_single_threaded = [] {
  ::setenv("SB_THREADS", "1", 1);
  return true;
}();

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

size_t count_files_with(const fs::path& dir, const std::string& needle) {
  size_t n = 0;
  if (!fs::exists(dir)) return 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    n += entry.path().filename().string().find(needle) != std::string::npos;
  }
  return n;
}

// Cheapest grid that still exercises pretraining + several rows.
ExperimentConfig fleet_config() {
  ExperimentConfig cfg;
  cfg.dataset = "synth-mnist";
  cfg.arch = "lenet-300-100";
  cfg.strategy = "global-weight";
  cfg.target_compression = 2.0;
  cfg.pretrain.epochs = 2;
  cfg.pretrain.batch_size = 64;
  cfg.pretrain.patience = 0;
  cfg.finetune.epochs = 1;
  cfg.finetune.patience = 0;
  return cfg;
}

int64_t train_epochs_counter() {
  const auto snap = obs::snapshot_if_enabled();
  const auto it = snap.counters.find("train.epochs");
  return it == snap.counters.end() ? 0 : it->second;
}

/// Runs one fleet worker in this (child) process: full sweep over the
/// shared cache as shard `id` of `count`, then reports the number of
/// training epochs this process actually ran via a summary file the
/// parent reads back. Exits with the sweep's exit code (or 99 on throw).
[[noreturn]] void run_worker(const std::string& cache, const fs::path& out_dir, int id, int count,
                             const std::vector<std::string>& strategies,
                             const std::vector<double>& ratios) {
  obs::set_profiling_enabled(true);  // child-local; parent stays clean
  int code = 99;
  try {
    ExperimentRunner runner(cache);
    SweepOptions opts;
    opts.csv_path = (out_dir / ("fleet" + std::to_string(id) + ".csv")).string();
    opts.shard_id = id;
    opts.shard_count = count;
    SweepSummary sum;
    const std::vector<ExperimentResult> results =
        run_sweep(runner, fleet_config(), strategies, ratios, {1}, opts, &sum);
    write_experiment_csv(opts.csv_path, results);
    // Closed before _exit: _exit skips destructors, so an open ofstream
    // would silently drop its buffered bytes.
    std::ofstream os(out_dir / ("worker" + std::to_string(id) + ".summary"));
    os << "epochs=" << train_epochs_counter() << "\ncompleted=" << sum.completed
       << "\nstolen=" << sum.stolen << "\nrows=" << results.size() << "\n";
    os.close();
    code = sum.exit_code();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker %d: %s\n", id, e.what());
  }
  ::_exit(code);
}

int64_t summary_value(const fs::path& file, const std::string& key) {
  std::ifstream is(file);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind(key + "=", 0) == 0) return std::atoll(line.c_str() + key.size() + 1);
  }
  return -1;
}

struct FleetFixture : ::testing::Test {
  std::string cache_dir;
  fs::path out_dir;

  void SetUp() override {
    cache_dir = ::testing::TempDir() + "/sb_fleet_cache";
    out_dir = fs::path(::testing::TempDir()) / "sb_fleet_out";
    fs::remove_all(cache_dir);
    fs::remove_all(out_dir);
    fs::create_directories(out_dir);
    clear_sweep_interrupt();
  }
  void TearDown() override {
    clear_sweep_interrupt();
    fs::remove_all(cache_dir);
    fs::remove_all(out_dir);
  }
};

// ---- the claim primitive ----

TEST(FileLock, ExcludesAcrossProcessesAndFreesOnKill) {
  const fs::path dir = fs::path(::testing::TempDir()) / "sb_flock";
  fs::remove_all(dir);
  const fs::path lock_path = dir / "x.claim";

  int ready[2];
  ASSERT_EQ(pipe(ready), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    obs::FileLock child_lock;
    if (!child_lock.try_acquire(lock_path)) ::_exit(1);
    char byte = 'r';
    (void)!::write(ready[1], &byte, 1);
    // Hold the lock until killed — never released in userspace.
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(10));
  }
  char byte = 0;
  ASSERT_EQ(::read(ready[0], &byte, 1), 1);  // child holds the lock now
  ::close(ready[0]);
  ::close(ready[1]);

  obs::FileLock lock;
  EXPECT_FALSE(lock.try_acquire(lock_path));  // exclusion across processes

  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  // The kernel released the dead child's flock: claimable immediately.
  EXPECT_TRUE(lock.try_acquire(lock_path));
  lock.release(/*unlink_file=*/true);
  EXPECT_FALSE(fs::exists(lock_path));
  fs::remove_all(dir);
}

// ---- exactly-once pretraining across processes ----

TEST_F(FleetFixture, PretrainedIsTrainedOnceAcrossProcesses) {
  const ExperimentConfig cfg = fleet_config();
  std::vector<pid_t> pids;
  for (int i = 0; i < 2; ++i) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      obs::set_profiling_enabled(true);
      int code = 1;
      try {
        ExperimentRunner runner(cache_dir);
        ModelPtr model = runner.pretrained(cfg);
        code = model ? 0 : 1;
      } catch (...) {
      }
      std::ofstream os(out_dir / ("pretrain" + std::to_string(i) + ".summary"));
      os << "epochs=" << train_epochs_counter() << "\n";
      os.close();  // _exit skips destructors; flush explicitly
      ::_exit(code);
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  // The flock on <ckpt>.lock serialized the miss path: one process ran
  // all pretrain epochs, the other waited and loaded the checkpoint.
  const int64_t e0 = summary_value(out_dir / "pretrain0.summary", "epochs");
  const int64_t e1 = summary_value(out_dir / "pretrain1.summary", "epochs");
  EXPECT_EQ(e0 + e1, cfg.pretrain.epochs);
  EXPECT_EQ(count_files_with(cache_dir, ".lock"), 0u);  // unlinked on release
}

// ---- the fleet itself ----

TEST_F(FleetFixture, TwoWorkersComputeExactlyOnceAndAgreeByteForByte) {
  const std::vector<std::string> strategies = {"global-weight", "layer-weight"};
  const std::vector<double> ratios = {2.0, 4.0};

  std::vector<pid_t> pids;
  for (int i = 0; i < 2; ++i) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) run_worker(cache_dir, out_dir, i, 2, strategies, ratios);
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  // Exactly-once compute, counted in actual training epochs: pretraining
  // (2 epochs, once, fleet-wide) + 4 rows x 1 fine-tune epoch, however
  // they were distributed.
  const int64_t e0 = summary_value(out_dir / "worker0.summary", "epochs");
  const int64_t e1 = summary_value(out_dir / "worker1.summary", "epochs");
  EXPECT_EQ(e0 + e1, 2 + 4);

  // Every worker converged to the full grid...
  EXPECT_EQ(summary_value(out_dir / "worker0.summary", "rows"), 4);
  EXPECT_EQ(summary_value(out_dir / "worker1.summary", "rows"), 4);

  // ...and their final CSVs are byte-identical to each other and to a
  // sequential sweep of the same grid over the same cache.
  const std::string csv0 = slurp(out_dir / "fleet0.csv");
  const std::string csv1 = slurp(out_dir / "fleet1.csv");
  ASSERT_FALSE(csv0.empty());
  EXPECT_EQ(csv0, csv1);

  ExperimentRunner runner(cache_dir);
  SweepOptions control;
  control.shard_id = 0;
  control.shard_count = 1;
  control.parallel = 1;
  SweepSummary control_sum;
  const auto control_results =
      run_sweep(runner, fleet_config(), strategies, ratios, {1}, control, &control_sum);
  EXPECT_EQ(control_sum.cache_hits, 4u);  // fully warm: nothing recomputed
  const fs::path control_csv = out_dir / "control.csv";
  write_experiment_csv(control_csv.string(), control_results);
  EXPECT_EQ(csv0, slurp(control_csv));

  // Completion-ordered shard streams exist and carry the same rows.
  const std::string stream0 = slurp(out_dir / "fleet0.csv.shard0");
  const std::string stream1 = slurp(out_dir / "fleet1.csv.shard1");
  ASSERT_FALSE(stream0.empty());
  ASSERT_FALSE(stream1.empty());
  const auto sorted_lines = [](const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream ss(text);
    for (std::string line; std::getline(ss, line);) lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(sorted_lines(stream0), sorted_lines(csv0));
  EXPECT_EQ(sorted_lines(stream1), sorted_lines(csv0));

  // No claim or quarantine debris in the shared cache.
  EXPECT_EQ(count_files_with(cache_dir, ".claim"), 0u);
  EXPECT_EQ(count_files_with(cache_dir, ".corrupt"), 0u);
  EXPECT_EQ(count_files_with(cache_dir, ".lock"), 0u);
}

TEST_F(FleetFixture, FleetConvergesAfterWorkerIsKilled) {
  const std::vector<std::string> strategies = {"global-weight", "layer-weight"};
  const std::vector<double> ratios = {2.0, 4.0};

  const pid_t survivor = fork();
  ASSERT_GE(survivor, 0);
  if (survivor == 0) run_worker(cache_dir, out_dir, 0, 2, strategies, ratios);
  const pid_t victim = fork();
  ASSERT_GE(victim, 0);
  if (victim == 0) run_worker(cache_dir, out_dir, 1, 2, strategies, ratios);

  // kill -9 the victim early — likely mid-pretrain or mid-row, holding
  // claims and possibly the pretrain lock. The kernel drops its flocks;
  // the survivor steals the work and converges alone.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ::kill(victim, SIGKILL);  // may lose the race with a very fast victim
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);

  ASSERT_EQ(::waitpid(survivor, &status, 0), survivor);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(summary_value(out_dir / "worker0.summary", "rows"), 4);

  // "Restart" the killed shard in-process: everything is cached, so it
  // converges instantly and reproduces the identical full-grid CSV.
  ExperimentRunner runner(cache_dir);
  SweepOptions restart;
  restart.shard_id = 1;
  restart.shard_count = 2;
  restart.csv_path = (out_dir / "restart.csv").string();
  SweepSummary restart_sum;
  const auto rows = run_sweep(runner, fleet_config(), strategies, ratios, {1}, restart,
                              &restart_sum);
  EXPECT_EQ(rows.size(), 4u);
  EXPECT_EQ(restart_sum.cache_hits, 4u);
  write_experiment_csv(restart.csv_path, rows);
  EXPECT_EQ(slurp(out_dir / "restart.csv"), slurp(out_dir / "fleet0.csv"));
}

}  // namespace
}  // namespace shrinkbench

#endif  // !_WIN32
