// Unit and property tests for the tensor substrate: Tensor, ops, Rng,
// GEMM, im2col, and serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace shrinkbench {
namespace {

TEST(Shape, NumelAndToString) {
  EXPECT_EQ(numel_of({}), 1);
  EXPECT_EQ(numel_of({4}), 4);
  EXPECT_EQ(numel_of({2, 3, 4}), 24);
  EXPECT_EQ(numel_of({5, 0}), 0);
  EXPECT_EQ(to_string(Shape{2, 3}), "[2, 3]");
  EXPECT_THROW(numel_of({2, -1}), std::invalid_argument);
}

TEST(Tensor, ConstructionZeroInitializes) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(), 2);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillConstructors) {
  EXPECT_EQ(Tensor::ones({3}).at(2), 1.0f);
  EXPECT_EQ(Tensor::full({2, 2}, 7.0f).at(3), 7.0f);
  EXPECT_EQ(Tensor::scalar(4.5f).numel(), 1);
  const Tensor t = Tensor::of({1, 2, 3});
  EXPECT_EQ(t.shape(), (Shape{3}));
  EXPECT_EQ(t.at(1), 2.0f);
}

TEST(Tensor, ValuesConstructorChecksShape) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, MultiDimIndexing) {
  Tensor t({2, 3, 4});
  t(1, 2, 3) = 42.0f;
  EXPECT_EQ(t.at(1 * 12 + 2 * 4 + 3), 42.0f);
  Tensor t4({2, 2, 2, 2});
  t4(1, 0, 1, 0) = 5.0f;
  EXPECT_EQ(t4.at(8 + 2), 5.0f);
}

TEST(Tensor, SizeAxisNegativeIndexing) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_THROW(t.size(3), std::out_of_range);
}

TEST(Tensor, ReshapePreservesDataAndInfersDim) {
  Tensor t({2, 6});
  std::iota(t.flat().begin(), t.flat().end(), 0.0f);
  const Tensor r = t.reshaped({3, -1});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  EXPECT_EQ(r.at(11), 11.0f);
  EXPECT_THROW(t.reshaped({5, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshaped({-1, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshaped({13}), std::invalid_argument);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a({3}, 1.0f);
  Tensor b = a;
  b.at(0) = 9.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(Ops, ElementwiseBasics) {
  const Tensor a = Tensor::of({1, 2, 3});
  const Tensor b = Tensor::of({4, 5, 6});
  EXPECT_EQ(ops::add(a, b).at(0), 5.0f);
  EXPECT_EQ(ops::sub(b, a).at(2), 3.0f);
  EXPECT_EQ(ops::mul(a, b).at(1), 10.0f);
  EXPECT_EQ(ops::scale(a, 2.0f).at(2), 6.0f);
  EXPECT_EQ(ops::abs(Tensor::of({-2, 2})).at(0), 2.0f);
  EXPECT_EQ(ops::square(Tensor::of({-3})).at(0), 9.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  const Tensor a({2});
  const Tensor b({3});
  EXPECT_THROW(ops::add(a, b), std::invalid_argument);
  Tensor c({2});
  EXPECT_THROW(ops::axpy(c, 1.0f, b), std::invalid_argument);
}

TEST(Ops, AxpyAndInplace) {
  Tensor a = Tensor::of({1, 1});
  ops::axpy(a, 2.0f, Tensor::of({3, 4}));
  EXPECT_EQ(a.at(0), 7.0f);
  EXPECT_EQ(a.at(1), 9.0f);
  ops::mul_inplace(a, Tensor::of({0, 1}));
  EXPECT_EQ(a.at(0), 0.0f);
  EXPECT_EQ(a.at(1), 9.0f);
}

TEST(Ops, Reductions) {
  const Tensor t = Tensor::of({1, -2, 3, -4});
  EXPECT_FLOAT_EQ(ops::sum(t), -2.0f);
  EXPECT_FLOAT_EQ(ops::mean(t), -0.5f);
  EXPECT_FLOAT_EQ(ops::min(t), -4.0f);
  EXPECT_FLOAT_EQ(ops::max(t), 3.0f);
  EXPECT_FLOAT_EQ(ops::sum_sq(t), 30.0f);
  EXPECT_EQ(ops::count_nonzero(Tensor::of({0, 1, 0, -2})), 2);
  EXPECT_EQ(ops::count_nonzero(Tensor::of({0.05f, 0.2f}), 0.1f), 1);
}

TEST(Ops, ArgmaxAndTopk) {
  const std::vector<float> v = {1, 5, 3, 5, 2};
  EXPECT_EQ(ops::argmax(v), 1);  // first of the tied maxima
  const auto top3 = ops::topk_indices(v, 3);
  EXPECT_EQ(top3, (std::vector<int64_t>{1, 3, 2}));
  EXPECT_THROW(ops::topk_indices(v, 6), std::invalid_argument);
}

TEST(Ops, KthSmallest) {
  const std::vector<float> v = {5, 1, 4, 2, 3};
  EXPECT_EQ(ops::kth_smallest(v, 0), 1.0f);
  EXPECT_EQ(ops::kth_smallest(v, 2), 3.0f);
  EXPECT_EQ(ops::kth_smallest(v, 4), 5.0f);
  EXPECT_THROW(ops::kth_smallest(v, 5), std::invalid_argument);
}

TEST(Ops, Allclose) {
  EXPECT_TRUE(ops::allclose(Tensor::of({1.0f}), Tensor::of({1.0f + 1e-7f})));
  EXPECT_FALSE(ops::allclose(Tensor::of({1.0f}), Tensor::of({1.1f})));
  EXPECT_FALSE(ops::allclose(Tensor({2}), Tensor({3})));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 100; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, RandintBoundsAndUniformity) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[static_cast<size_t>(rng.randint(10))]++;
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
  EXPECT_THROW(rng.randint(0), std::invalid_argument);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(5);
  const auto perm = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (int64_t v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    EXPECT_FALSE(seen[static_cast<size_t>(v)]);
    seen[static_cast<size_t>(v)] = true;
  }
}

TEST(Rng, ForkIndependence) {
  Rng a(9);
  Rng child = a.fork();
  // The fork and parent produce different streams.
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, FillBernoulli) {
  Rng rng(13);
  Tensor t({10000});
  rng.fill_bernoulli(t, 0.3);
  EXPECT_NEAR(ops::mean(t), 0.3f, 0.02f);
}

// ---- GEMM ----

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = 0;
      for (int64_t p = 0; p < k; ++p) s += static_cast<double>(a(i, p)) * b(p, j);
      c(i, j) = static_cast<float>(s);
    }
  }
  return c;
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 10007 + n * 101 + k);
  Tensor a({m, k}), b({k, n});
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  EXPECT_TRUE(ops::allclose(matmul(a, b), naive_matmul(a, b), 1e-3f, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSizes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 7},
                                           std::tuple{17, 9, 33}, std::tuple{64, 64, 64},
                                           std::tuple{100, 3, 300}, std::tuple{65, 257, 300},
                                           std::tuple{128, 130, 257}));

TEST(Gemm, TransposedVariants) {
  Rng rng(77);
  Tensor a({6, 4}), b({6, 5});
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  // a^T b == naive on explicit transpose
  Tensor at({4, 6});
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 4; ++j) at(j, i) = a(i, j);
  }
  EXPECT_TRUE(ops::allclose(matmul_tn(a, b), naive_matmul(at, b), 1e-4f, 1e-4f));

  Tensor c({3, 4}), d({5, 4});
  rng.fill_normal(c, 0.0f, 1.0f);
  rng.fill_normal(d, 0.0f, 1.0f);
  Tensor dt({4, 5});
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 4; ++j) dt(j, i) = d(i, j);
  }
  EXPECT_TRUE(ops::allclose(matmul_nt(c, d), naive_matmul(c, dt), 1e-4f, 1e-4f));
}

TEST(Gemm, BetaAccumulates) {
  Tensor a({2, 2}, {1, 0, 0, 1});
  Tensor b({2, 2}, {1, 2, 3, 4});
  Tensor c({2, 2}, {10, 10, 10, 10});
  gemm(false, false, 2, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 1.0f, c.data(), 2);
  EXPECT_EQ(c(0, 0), 11.0f);
  EXPECT_EQ(c(1, 1), 14.0f);
}

TEST(Gemm, AlphaScalesAndInnerMismatchThrows) {
  Tensor a({2, 3}), b({4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
  Tensor i2({2, 2}, {1, 0, 0, 1});
  Tensor x({2, 2}, {1, 2, 3, 4});
  Tensor c({2, 2});
  gemm(false, false, 2, 2, 2, 2.5f, i2.data(), 2, x.data(), 2, 0.0f, c.data(), 2);
  EXPECT_EQ(c(0, 1), 5.0f);
}

// ---- im2col ----

TEST(Im2col, IdentityKernelIsCopy) {
  ConvGeometry g{1, 3, 3, 1, 1, 1, 0};
  Tensor img({1, 3, 3});
  std::iota(img.flat().begin(), img.flat().end(), 1.0f);
  Tensor cols({g.col_rows(), g.col_cols()});
  im2col(g, img.data(), cols.data());
  for (int64_t i = 0; i < 9; ++i) EXPECT_EQ(cols.at(i), img.at(i));
}

TEST(Im2col, PaddingProducesZeroBorder) {
  ConvGeometry g{1, 2, 2, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 2);
  Tensor img({1, 2, 2}, {1, 2, 3, 4});
  Tensor cols({g.col_rows(), g.col_cols()});
  im2col(g, img.data(), cols.data());
  // Kernel position (0,0) at output (0,0) looks at input (-1,-1) -> 0.
  EXPECT_EQ(cols(0, 0), 0.0f);
  // Kernel center (1,1) at output (0,0) is input (0,0) = 1.
  EXPECT_EQ(cols(4, 0), 1.0f);
}

TEST(Im2col, StrideGeometry) {
  ConvGeometry g{2, 8, 8, 3, 3, 2, 1};
  EXPECT_EQ(g.out_h(), 4);
  EXPECT_EQ(g.out_w(), 4);
  EXPECT_EQ(g.col_rows(), 2 * 9);
  EXPECT_EQ(g.col_cols(), 16);
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property
  // of the backward pass.
  ConvGeometry g{2, 5, 5, 3, 3, 2, 1};
  Rng rng(99);
  Tensor x({g.in_c, g.in_h, g.in_w});
  Tensor y({g.col_rows(), g.col_cols()});
  rng.fill_normal(x, 0.0f, 1.0f);
  rng.fill_normal(y, 0.0f, 1.0f);
  Tensor cols({g.col_rows(), g.col_cols()});
  im2col(g, x.data(), cols.data());
  Tensor back({g.in_c, g.in_h, g.in_w});
  col2im(g, y.data(), back.data());
  double lhs = 0, rhs = 0;
  for (int64_t i = 0; i < cols.numel(); ++i) lhs += static_cast<double>(cols.at(i)) * y.at(i);
  for (int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x.at(i)) * back.at(i);
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::fabs(lhs)));
}

// ---- serialization ----

TEST(Serialize, TensorRoundTrip) {
  Rng rng(21);
  Tensor t({3, 4, 5});
  rng.fill_normal(t, 0.0f, 2.0f);
  std::stringstream ss;
  write_tensor(ss, t);
  const Tensor back = read_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_TRUE(ops::allclose(back, t, 0.0f, 0.0f));
}

TEST(Serialize, StringRoundTripAndCorruption) {
  std::stringstream ss;
  write_string(ss, "hello world");
  EXPECT_EQ(read_string(ss), "hello world");

  std::stringstream bad("garbage");
  EXPECT_THROW(read_tensor(bad), std::runtime_error);
}

TEST(Serialize, ScalarAndEmptyShapes) {
  std::stringstream ss;
  write_tensor(ss, Tensor::scalar(3.5f));
  EXPECT_EQ(read_tensor(ss).at(0), 3.5f);
}

}  // namespace
}  // namespace shrinkbench
