// Tests for the extended scoring family: forward hooks, activation
// statistics, activation-based channel pruning, and the diagonal-Fisher
// score.
#include <gtest/gtest.h>

#include <cmath>

#include "core/activation_stats.hpp"
#include "core/pruner.hpp"
#include "core/strategy.hpp"
#include "data/synthetic.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"

namespace shrinkbench {
namespace {

struct Fixture {
  DatasetBundle bundle;
  ModelPtr model;

  explicit Fixture(const char* arch = "resnet-20") {
    SyntheticSpec spec = synth_cifar(9);
    spec.train_size = 128;
    spec.val_size = 64;
    spec.test_size = 64;
    bundle = make_synthetic(spec);
    model = make_model(arch, bundle.train.sample_shape(), 10, 4);
    Rng rng(3);
    init_model(*model, rng);
  }
};

// ---- forward hooks ----

TEST(ForwardHook, SequentialInvokesPerChild) {
  Fixture fx("cifar-vgg");
  int calls = 0;
  fx.model->set_forward_hook([&](Layer&, const Tensor&) { ++calls; });
  Tensor x({2, 3, 8, 8});
  Rng rng(1);
  rng.fill_normal(x, 0, 1);
  fx.model->forward(x, false);
  // Every layer in the tree produces exactly one hooked output.
  int layer_count = 0;
  visit_layers(*fx.model, [&](Layer&) { ++layer_count; });
  // The root container itself is not hooked (it has no parent container),
  // and nested containers are hooked by their parents.
  EXPECT_EQ(calls, layer_count - 1);

  // Clearing the hook stops callbacks.
  fx.model->set_forward_hook(nullptr);
  calls = 0;
  fx.model->forward(x, false);
  EXPECT_EQ(calls, 0);
}

TEST(ForwardHook, ResidualBlockPropagates) {
  Fixture fx("resnet-20");
  int conv_outputs = 0;
  fx.model->set_forward_hook([&](Layer& layer, const Tensor&) {
    conv_outputs += dynamic_cast<Conv2d*>(&layer) != nullptr;
  });
  Tensor x({1, 3, 8, 8});
  Rng rng(2);
  rng.fill_normal(x, 0, 1);
  fx.model->forward(x, false);
  // resnet-20: stem + 3 stages x 3 blocks x 2 convs + 2 projections = 21.
  EXPECT_EQ(conv_outputs, 21);
}

// ---- activation stats ----

TEST(ActivationStats, CoversEveryConvAndLinear) {
  Fixture fx;
  Rng rng(4);
  const ChannelActivationStats stats =
      collect_activation_stats(*fx.model, fx.bundle.train, 2, 32, rng);
  int convs = 0, linears = 0;
  visit_layers(*fx.model, [&](Layer& l) {
    convs += dynamic_cast<Conv2d*>(&l) != nullptr;
    linears += dynamic_cast<Linear*>(&l) != nullptr;
  });
  EXPECT_EQ(stats.mean_abs.size(), static_cast<size_t>(convs + linears));
  EXPECT_EQ(stats.samples, 64);
  for (const auto& [name, scores] : stats.mean_abs) {
    for (double v : scores) {
      EXPECT_GE(v, 0.0) << name;
      EXPECT_TRUE(std::isfinite(v)) << name;
    }
  }
  for (const auto& [name, fracs] : stats.positive_fraction) {
    for (double v : fracs) {
      EXPECT_GE(v, 0.0) << name;
      EXPECT_LE(v, 1.0) << name;
    }
  }
}

TEST(ActivationStats, DeterministicInRngSeed) {
  Fixture fx;
  Rng r1(8), r2(8);
  const auto a = collect_activation_stats(*fx.model, fx.bundle.train, 2, 16, r1);
  const auto b = collect_activation_stats(*fx.model, fx.bundle.train, 2, 16, r2);
  for (const auto& [name, scores] : a.mean_abs) {
    const auto& other = b.mean_abs.at(name);
    for (size_t i = 0; i < scores.size(); ++i) EXPECT_DOUBLE_EQ(scores[i], other[i]) << name;
  }
}

// ---- channel scores -> entry scores ----

TEST(ChannelScores, BroadcastAndMaskInteraction) {
  Parameter p("conv.weight", {3, 2, 2, 2}, true);
  p.data.fill(1.0f);
  p.mask.at(0) = 0.0f;  // one already-pruned entry in channel 0
  const Tensor scores = channel_scores_to_entry_scores(p, {0.5, 1.5, 2.5});
  EXPECT_TRUE(std::isinf(scores.at(0)));
  EXPECT_FLOAT_EQ(scores.at(1), 0.5f);
  EXPECT_FLOAT_EQ(scores.at(8), 1.5f);   // channel 1 start
  EXPECT_FLOAT_EQ(scores.at(16), 2.5f);  // channel 2 start
  EXPECT_THROW(channel_scores_to_entry_scores(p, {1.0, 2.0}), std::invalid_argument);
}

// ---- activation-based pruning end to end ----

TEST(ActivationPruning, PrunesWholeChannelsToTargetFraction) {
  Fixture fx;
  Rng rng(5);
  const double achieved = prune_model(*fx.model, strategy_from_name("layer-activation"), 0.5,
                                      fx.bundle.train, {}, rng);
  EXPECT_NEAR(achieved, 0.5, 0.12);  // channel granularity rounds
  // Masks are channel-structured: each output channel all-0 or all-1.
  for (const Parameter* p : prunable_params(*fx.model, {})) {
    const int64_t channels = p->data.size(0);
    const int64_t unit = p->numel() / channels;
    for (int64_t c = 0; c < channels; ++c) {
      const float first = p->mask.at(c * unit);
      for (int64_t i = 1; i < unit; ++i) {
        ASSERT_EQ(p->mask.at(c * unit + i), first) << p->name << " channel " << c;
      }
    }
  }
}

TEST(ActivationPruning, KeepsMostActiveChannels) {
  // Single conv layer with one channel forced to huge weights: its
  // activations dominate, so activation pruning must keep it.
  auto model = std::make_unique<Sequential>("m");
  model->emplace<Conv2d>("conv", 3, 4, 3, 1, 1, false);
  model->emplace<Flatten>("flat");
  const Shape out = model->output_sample_shape({3, 8, 8});
  model->emplace<Linear>("fc", out[0], 10, true, /*is_classifier=*/true);
  Rng rng(6);
  init_model(*model, rng);
  auto params = parameters_of(*model);
  Parameter& conv_w = *params[0];
  for (int64_t i = 0; i < 27; ++i) conv_w.data.at(2 * 27 + i) = 3.0f;  // channel 2 loud

  SyntheticSpec spec = synth_cifar(10);
  spec.train_size = 64;
  spec.val_size = 32;
  spec.test_size = 32;
  const DatasetBundle bundle = make_synthetic(spec);
  prune_model(*model, strategy_from_name("layer-activation"), 0.25, bundle.train, {}, rng);
  // 1 of 4 channels survives and it is channel 2.
  EXPECT_EQ(conv_w.mask.at(2 * 27), 1.0f);
  EXPECT_EQ(conv_w.mask.at(0), 0.0f);
}

// ---- Fisher ----

TEST(Fisher, SnapshotIsMeanSquaredGradient) {
  Fixture fx;
  Rng rng(7);
  PruneOptions opts;
  opts.fisher_batches = 3;
  const auto mean_sq = squared_gradient_snapshot(*fx.model, fx.bundle.train, opts, rng);
  ASSERT_EQ(mean_sq.size(), prunable_params(*fx.model, opts).size());
  double total = 0.0;
  for (const Tensor& t : mean_sq) {
    for (float v : t.flat()) {
      ASSERT_GE(v, 0.0f);  // squared quantities
      total += v;
    }
  }
  EXPECT_GT(total, 0.0);
  EXPECT_THROW(
      {
        PruneOptions bad;
        bad.fisher_batches = 0;
        squared_gradient_snapshot(*fx.model, fx.bundle.train, bad, rng);
      },
      std::invalid_argument);
}

TEST(Fisher, PruneModelReachesTargetFraction) {
  Fixture fx;
  Rng rng(8);
  const double achieved = prune_model(*fx.model, strategy_from_name("global-fisher"), 0.25,
                                      fx.bundle.train, {}, rng);
  EXPECT_NEAR(achieved, 0.25, 1e-3);
}

TEST(Fisher, LessSeedSensitiveThanSingleBatchGradient) {
  // Averaging several batches should reduce (or at least not inflate) the
  // mask disagreement across seeds relative to the single-batch gradient
  // score. This is a statistical property; the margin is generous.
  const auto mask_disagreement = [](const std::string& strategy) {
    Fixture f1, f2;
    PruneOptions opts;
    opts.grad_batch_size = 16;
    Rng r1(101), r2(202);
    prune_model(*f1.model, strategy_from_name(strategy), 0.3, f1.bundle.train, opts, r1);
    prune_model(*f2.model, strategy_from_name(strategy), 0.3, f2.bundle.train, opts, r2);
    int64_t differing = 0, total = 0;
    const auto p1 = prunable_params(*f1.model, opts), p2 = prunable_params(*f2.model, opts);
    for (size_t i = 0; i < p1.size(); ++i) {
      for (int64_t j = 0; j < p1[i]->numel(); ++j) {
        differing += p1[i]->mask.at(j) != p2[i]->mask.at(j);
        ++total;
      }
    }
    return static_cast<double>(differing) / static_cast<double>(total);
  };
  const double fisher = mask_disagreement("global-fisher");
  const double gradient = mask_disagreement("global-gradient");
  EXPECT_LT(fisher, gradient * 1.5 + 0.02);
}

TEST(Strategy, NewEntriesResolve) {
  for (const char* name :
       {"global-fisher", "layer-fisher", "global-activation", "layer-activation"}) {
    const PruningStrategy s = strategy_from_name(name);
    EXPECT_EQ(s.name, name);
    EXPECT_FALSE(display_name(name).empty());
  }
  EXPECT_TRUE(needs_activations(ScoreKind::ChannelActivation));
  EXPECT_TRUE(needs_gradients(ScoreKind::Fisher));
  EXPECT_FALSE(needs_activations(ScoreKind::Fisher));
}

}  // namespace
}  // namespace shrinkbench
