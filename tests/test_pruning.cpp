// Pruning-core tests: score functions, mask allocation (with TEST_P
// property sweeps over keep fractions), strategy registry, prune_model on
// real models, and the compression-ratio solver.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/pruner.hpp"
#include "core/strategy.hpp"
#include "data/synthetic.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "nn/init.hpp"

namespace shrinkbench {
namespace {

// ---- scoring ----

TEST(Scoring, MagnitudeIsAbsoluteValue) {
  Parameter p("w", {4}, true);
  p.data = Tensor::of({-3, 1, 0, 2});
  Rng rng(1);
  const Tensor s = score_parameter(ScoreKind::Magnitude, p, {}, rng);
  EXPECT_EQ(s.at(0), 3.0f);
  EXPECT_EQ(s.at(1), 1.0f);
  EXPECT_EQ(s.at(2), 0.0f);
}

TEST(Scoring, GradientMagnitudeIsWeightTimesGrad) {
  Parameter p("w", {3}, true);
  p.data = Tensor::of({2, -3, 1});
  const Tensor grad = Tensor::of({0.5f, 1.0f, -4.0f});
  Rng rng(1);
  const Tensor s = score_parameter(ScoreKind::GradientMagnitude, p, grad, rng);
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(1), 3.0f);
  EXPECT_FLOAT_EQ(s.at(2), 4.0f);
  const Tensor sq = score_parameter(ScoreKind::GradientSquared, p, grad, rng);
  EXPECT_FLOAT_EQ(sq.at(1), 9.0f);
}

TEST(Scoring, GradientKindRequiresGradient) {
  Parameter p("w", {3}, true);
  Rng rng(1);
  EXPECT_THROW(score_parameter(ScoreKind::GradientMagnitude, p, {}, rng), std::invalid_argument);
  EXPECT_TRUE(needs_gradients(ScoreKind::GradientMagnitude));
  EXPECT_FALSE(needs_gradients(ScoreKind::Magnitude));
  EXPECT_FALSE(needs_gradients(ScoreKind::Random));
}

TEST(Scoring, MaskedEntriesScoreNegInf) {
  Parameter p("w", {3}, true);
  p.data = Tensor::of({5, 5, 5});
  p.mask = Tensor::of({1, 0, 1});
  Rng rng(1);
  const Tensor s = score_parameter(ScoreKind::Magnitude, p, {}, rng);
  EXPECT_TRUE(std::isinf(s.at(1)));
  EXPECT_LT(s.at(1), 0.0f);
}

TEST(Scoring, RandomIsSeedDeterministic) {
  Parameter p("w", {16}, true);
  p.data.fill(1.0f);
  Rng r1(7), r2(7);
  const Tensor a = score_parameter(ScoreKind::Random, p, {}, r1);
  const Tensor b = score_parameter(ScoreKind::Random, p, {}, r2);
  EXPECT_TRUE(ops::allclose(a, b, 0, 0));
}

// ---- allocation: exactness properties over fractions ----

class AllocationFractions : public ::testing::TestWithParam<double> {};

TEST_P(AllocationFractions, GlobalUnstructuredKeepsExactCount) {
  const double fraction = GetParam();
  Rng rng(11);
  Parameter p1("a", {40}, true), p2("b", {25, 4}, true);
  rng.fill_normal(p1.data, 0, 1);
  rng.fill_normal(p2.data, 0, 1);
  std::vector<ScoredParam> scored;
  scored.push_back({&p1, score_parameter(ScoreKind::Magnitude, p1, {}, rng)});
  scored.push_back({&p2, score_parameter(ScoreKind::Magnitude, p2, {}, rng)});
  const int64_t kept = allocate_masks(scored, AllocationScope::Global, Structure::Unstructured,
                                      fraction);
  const int64_t expected = llround(fraction * 140);
  EXPECT_EQ(kept, expected);
  EXPECT_EQ(p1.nonzero() + p2.nonzero(), expected);
}

TEST_P(AllocationFractions, LayerwiseKeepsPerLayerCount) {
  const double fraction = GetParam();
  Rng rng(12);
  Parameter p1("a", {50}, true), p2("b", {30}, true);
  rng.fill_normal(p1.data, 0, 1);
  rng.fill_normal(p2.data, 0, 1);
  std::vector<ScoredParam> scored;
  scored.push_back({&p1, score_parameter(ScoreKind::Magnitude, p1, {}, rng)});
  scored.push_back({&p2, score_parameter(ScoreKind::Magnitude, p2, {}, rng)});
  allocate_masks(scored, AllocationScope::Layerwise, Structure::Unstructured, fraction);
  EXPECT_EQ(p1.nonzero(), std::max<int64_t>(1, llround(fraction * 50)));
  EXPECT_EQ(p2.nonzero(), std::max<int64_t>(1, llround(fraction * 30)));
}

INSTANTIATE_TEST_SUITE_P(Fractions, AllocationFractions,
                         ::testing::Values(0.0, 0.03125, 0.0625, 0.125, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

TEST(Allocation, GlobalKeepsHighestScores) {
  Parameter p("w", {6}, true);
  p.data = Tensor::of({0.1f, 5.0f, 0.2f, 4.0f, 0.3f, 3.0f});
  Rng rng(1);
  std::vector<ScoredParam> scored;
  scored.push_back({&p, score_parameter(ScoreKind::Magnitude, p, {}, rng)});
  allocate_masks(scored, AllocationScope::Global, Structure::Unstructured, 0.5);
  EXPECT_EQ(p.mask.at(1), 1.0f);
  EXPECT_EQ(p.mask.at(3), 1.0f);
  EXPECT_EQ(p.mask.at(5), 1.0f);
  EXPECT_EQ(p.mask.at(0), 0.0f);
}

TEST(Allocation, TiesBrokenDeterministically) {
  Parameter p("w", {8}, true);
  p.data.fill(1.0f);  // all scores equal
  Rng rng(1);
  std::vector<ScoredParam> scored;
  scored.push_back({&p, score_parameter(ScoreKind::Magnitude, p, {}, rng)});
  allocate_masks(scored, AllocationScope::Global, Structure::Unstructured, 0.5);
  EXPECT_EQ(p.nonzero(), 4);
  // Re-run: identical result.
  Parameter q("w", {8}, true);
  q.data.fill(1.0f);
  std::vector<ScoredParam> scored2;
  scored2.push_back({&q, score_parameter(ScoreKind::Magnitude, q, {}, rng)});
  allocate_masks(scored2, AllocationScope::Global, Structure::Unstructured, 0.5);
  EXPECT_TRUE(ops::allclose(p.mask, q.mask, 0, 0));
}

// NaN scores used to reach nth_element with std::greater<float>, where
// they violate strict weak ordering (UB). The fix maps NaN to -inf before
// selection: an unmeasurable score means "prunable", never "keep".
TEST(Allocation, NanScoresArePrunedNotKept) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Parameter p("w", {8}, true);
  p.data = Tensor::of({0.1f, 2.0f, 0.0f, 4.0f, 0.3f, 3.0f, 0.0f, 1.0f});
  p.data.data()[2] = nan;
  p.data.data()[6] = nan;
  Rng rng(1);
  std::vector<ScoredParam> scored;
  scored.push_back({&p, score_parameter(ScoreKind::Magnitude, p, {}, rng)});
  const int64_t kept = allocate_masks(scored, AllocationScope::Global,
                                      Structure::Unstructured, 0.5);
  EXPECT_EQ(kept, 4);
  EXPECT_EQ(p.mask.at(2), 0.0f);
  EXPECT_EQ(p.mask.at(6), 0.0f);
  // The four largest finite magnitudes survive.
  EXPECT_EQ(p.mask.at(1), 1.0f);
  EXPECT_EQ(p.mask.at(3), 1.0f);
  EXPECT_EQ(p.mask.at(5), 1.0f);
  EXPECT_EQ(p.mask.at(7), 1.0f);
}

TEST(Allocation, NanScoresStayPrunedAtKeepEverything) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Parameter p("w", {6}, true);
  p.data = Tensor::of({1.0f, 2.0f, 0.0f, 4.0f, 5.0f, 6.0f});
  p.data.data()[2] = nan;
  Rng rng(1);
  std::vector<ScoredParam> scored;
  scored.push_back({&p, score_parameter(ScoreKind::Magnitude, p, {}, rng)});
  const int64_t kept = allocate_masks(scored, AllocationScope::Global,
                                      Structure::Unstructured, 1.0);
  EXPECT_EQ(kept, 5);  // the k >= total fast path must also drop NaN
  EXPECT_EQ(p.mask.at(2), 0.0f);
}

TEST(Allocation, NanChannelScoresPruneTheChannel) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Parameter p("conv.weight", {4, 3}, true);
  const float vals[12] = {9.0f, 9.0f, 9.0f,   // ch0: strong, kept
                          nan,  nan,  nan,    // ch1: unmeasurable, pruned
                          0.1f, 0.1f, 0.1f,   // ch2: weak, pruned
                          5.0f, 5.0f, 5.0f};  // ch3: mid, kept
  std::copy(vals, vals + 12, p.data.data());
  Rng rng(1);
  std::vector<ScoredParam> scored;
  scored.push_back({&p, score_parameter(ScoreKind::Magnitude, p, {}, rng)});
  const int64_t kept = allocate_masks(scored, AllocationScope::Global,
                                      Structure::Channel, 0.5);
  EXPECT_EQ(kept, 6);  // two whole channels
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(p.mask.at(0 * 3 + i), 1.0f);
    EXPECT_EQ(p.mask.at(1 * 3 + i), 0.0f) << "NaN channel survived";
    EXPECT_EQ(p.mask.at(2 * 3 + i), 0.0f);
    EXPECT_EQ(p.mask.at(3 * 3 + i), 1.0f);
  }
}

TEST(Allocation, NeverResurrectsPrunedWeights) {
  Rng rng(13);
  Parameter p("w", {20}, true);
  rng.fill_normal(p.data, 0, 1);
  // Prune to 50%, then "re-prune" to 80% keep: previously pruned entries
  // must stay pruned (their scores are -inf).
  std::vector<ScoredParam> s1;
  s1.push_back({&p, score_parameter(ScoreKind::Magnitude, p, {}, rng)});
  allocate_masks(s1, AllocationScope::Global, Structure::Unstructured, 0.5);
  p.apply_mask();
  const Tensor mask_after_first = p.mask;

  std::vector<ScoredParam> s2;
  s2.push_back({&p, score_parameter(ScoreKind::Magnitude, p, {}, rng)});
  allocate_masks(s2, AllocationScope::Global, Structure::Unstructured, 0.8);
  for (int64_t i = 0; i < 20; ++i) {
    if (mask_after_first.at(i) == 0.0f) {
      EXPECT_EQ(p.mask.at(i), 0.0f);
    }
  }
}

TEST(Allocation, ChannelStructureZeroesWholeFilters) {
  Rng rng(14);
  Parameter conv("conv.weight", {6, 3, 3, 3}, true);
  rng.fill_normal(conv.data, 0, 1);
  std::vector<ScoredParam> scored;
  scored.push_back({&conv, score_parameter(ScoreKind::Magnitude, conv, {}, rng)});
  allocate_masks(scored, AllocationScope::Layerwise, Structure::Channel, 0.5);
  const int64_t unit = 27;
  int kept_channels = 0;
  for (int64_t c = 0; c < 6; ++c) {
    const float first = conv.mask.at(c * unit);
    for (int64_t i = 0; i < unit; ++i) {
      ASSERT_EQ(conv.mask.at(c * unit + i), first) << "partial channel " << c;
    }
    kept_channels += first > 0.0f;
  }
  EXPECT_EQ(kept_channels, 3);
}

TEST(Allocation, ChannelGlobalKeepsAtLeastOnePerLayer) {
  Rng rng(15);
  Parameter big("big", {8, 4, 3, 3}, true);
  Parameter small("small", {4, 2, 3, 3}, true);
  rng.fill_normal(big.data, 0, 2.0f);       // big magnitudes
  rng.fill_normal(small.data, 0, 0.0001f);  // tiny: would be fully pruned
  std::vector<ScoredParam> scored;
  scored.push_back({&big, score_parameter(ScoreKind::Magnitude, big, {}, rng)});
  scored.push_back({&small, score_parameter(ScoreKind::Magnitude, small, {}, rng)});
  allocate_masks(scored, AllocationScope::Global, Structure::Channel, 0.3);
  EXPECT_GE(small.nonzero(), 18);  // one full channel survives
}

TEST(Allocation, RejectsBadInput) {
  std::vector<ScoredParam> scored;
  Parameter p("w", {4}, true);
  scored.push_back({&p, Tensor({3})});  // wrong shape
  EXPECT_THROW(
      allocate_masks(scored, AllocationScope::Global, Structure::Unstructured, 0.5),
      std::invalid_argument);
  scored[0].scores = Tensor({4});
  EXPECT_THROW(
      allocate_masks(scored, AllocationScope::Global, Structure::Unstructured, 1.5),
      std::invalid_argument);
}

// ---- strategy registry ----

TEST(Strategy, RegistryResolvesAllNames) {
  for (const std::string& name : strategy_names()) {
    const PruningStrategy s = strategy_from_name(name);
    EXPECT_EQ(s.name, name);
    EXPECT_FALSE(display_name(name).empty());
  }
  EXPECT_THROW(strategy_from_name("nope"), std::invalid_argument);
}

TEST(Strategy, PaperBaselinesPresent) {
  // The five baselines of Section 7.2.
  EXPECT_EQ(strategy_from_name("global-weight").score, ScoreKind::Magnitude);
  EXPECT_EQ(strategy_from_name("layer-weight").scope, AllocationScope::Layerwise);
  EXPECT_EQ(strategy_from_name("global-gradient").score, ScoreKind::GradientMagnitude);
  EXPECT_EQ(strategy_from_name("layer-gradient").scope, AllocationScope::Layerwise);
  EXPECT_EQ(strategy_from_name("random").score, ScoreKind::Random);
  EXPECT_EQ(display_name("global-weight"), "Global Weight");
}

// ---- prune_model on real models ----

struct PruneFixture {
  DatasetBundle bundle;
  ModelPtr model;

  PruneFixture() {
    SyntheticSpec spec = synth_cifar(5);
    spec.train_size = 64;
    spec.val_size = 32;
    spec.test_size = 32;
    bundle = make_synthetic(spec);
    model = make_model("resnet-20", bundle.train.sample_shape(), 10, 4);
    Rng rng(2);
    init_model(*model, rng);
  }
};

TEST(PruneModel, HitsRequestedFraction) {
  PruneFixture fx;
  Rng rng(3);
  const PruneOptions opts;
  const double achieved = prune_model(*fx.model, strategy_from_name("global-weight"), 0.25,
                                      fx.bundle.train, opts, rng);
  EXPECT_NEAR(achieved, 0.25, 1e-3);
  // Weights actually became zero.
  int64_t zeros = 0, total = 0;
  for (const Parameter* p : prunable_params(*fx.model, opts)) {
    zeros += p->numel() - ops::count_nonzero(p->data);
    total += p->numel();
  }
  EXPECT_NEAR(static_cast<double>(zeros) / total, 0.75, 0.01);
}

TEST(PruneModel, ClassifierExcludedByDefault) {
  PruneFixture fx;
  Rng rng(4);
  PruneOptions opts;
  prune_model(*fx.model, strategy_from_name("global-weight"), 0.1, fx.bundle.train, opts, rng);
  for (const Parameter* p : parameters_of(*fx.model)) {
    if (p->is_classifier) EXPECT_EQ(p->nonzero(), p->numel());
  }
}

TEST(PruneModel, ClassifierIncludedOnRequest) {
  PruneFixture fx;
  Rng rng(5);
  PruneOptions opts;
  opts.include_classifier = true;
  prune_model(*fx.model, strategy_from_name("global-weight"), 0.05, fx.bundle.train, opts, rng);
  int64_t classifier_zeros = 0;
  for (const Parameter* p : parameters_of(*fx.model)) {
    if (p->is_classifier) classifier_zeros = p->numel() - p->nonzero();
  }
  EXPECT_GT(classifier_zeros, 0);
}

TEST(PruneModel, GradientStrategiesDependOnSeed) {
  PruneFixture fx;
  PruneOptions opts;
  opts.grad_batch_size = 8;
  Rng r1(100), r2(200);
  auto m1 = make_model("resnet-20", fx.bundle.train.sample_shape(), 10, 4);
  auto m2 = make_model("resnet-20", fx.bundle.train.sample_shape(), 10, 4);
  Rng init(2);
  init_model(*m1, init);
  Rng init2(2);
  init_model(*m2, init2);
  prune_model(*m1, strategy_from_name("global-gradient"), 0.3, fx.bundle.train, opts, r1);
  prune_model(*m2, strategy_from_name("global-gradient"), 0.3, fx.bundle.train, opts, r2);
  // Different minibatches -> (almost surely) different masks.
  int64_t differing = 0;
  const auto p1 = prunable_params(*m1, opts), p2 = prunable_params(*m2, opts);
  for (size_t i = 0; i < p1.size(); ++i) {
    for (int64_t j = 0; j < p1[i]->numel(); ++j) {
      differing += p1[i]->mask.at(j) != p2[i]->mask.at(j);
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(PruneModel, GradientSnapshotLeavesGradsZeroed) {
  PruneFixture fx;
  Rng rng(6);
  PruneOptions opts;
  const auto grads = gradient_snapshot(*fx.model, fx.bundle.train, opts, rng);
  EXPECT_EQ(grads.size(), prunable_params(*fx.model, opts).size());
  double nonzero_grad = 0;
  for (const Tensor& g : grads) nonzero_grad += ops::sum_sq(g);
  EXPECT_GT(nonzero_grad, 0.0);
  for (const Parameter* p : parameters_of(*fx.model)) {
    EXPECT_EQ(ops::sum_sq(p->grad), 0.0f) << p->name;
  }
}

// ---- compression-ratio solver ----

class CompressionSolver : public ::testing::TestWithParam<double> {};

TEST_P(CompressionSolver, AchievesTargetRatio) {
  const double target = GetParam();
  PruneFixture fx;
  PruneOptions opts;
  const double fraction = fraction_for_compression(*fx.model, target, opts);
  Rng rng(7);
  prune_model(*fx.model, strategy_from_name("global-weight"), fraction, fx.bundle.train, opts,
              rng);
  const double achieved = compression_ratio(*fx.model);
  if (fraction > 0.0) {
    EXPECT_NEAR(achieved, target, 0.05 * target);
  } else {
    EXPECT_GT(achieved, 1.0);  // clamped: everything prunable removed
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, CompressionSolver, ::testing::Values(1.0, 2.0, 4.0, 8.0, 16.0));

TEST(CompressionSolver, RejectsRatioBelowOne) {
  PruneFixture fx;
  EXPECT_THROW(fraction_for_compression(*fx.model, 0.5, {}), std::invalid_argument);
}

TEST(CompressionSolver, RatioOneKeepsEverything) {
  PruneFixture fx;
  EXPECT_DOUBLE_EQ(fraction_for_compression(*fx.model, 1.0, {}), 1.0);
}

}  // namespace
}  // namespace shrinkbench
