// Training-stack tests: loss gradients, optimizer behaviour, the
// mask-enforcement invariant, checkpoint/state-dict round trips, and a
// small end-to-end learning integration test.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/checkpoint.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"
#include "tensor/workspace.hpp"

namespace shrinkbench {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  const Tensor logits({2, 4});  // all zeros -> uniform softmax
  const float l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0f), 1e-5f);
  for (int64_t i = 0; i < 8; ++i) EXPECT_NEAR(loss.probs().at(i), 0.25f, 1e-6f);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionNearZeroLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  logits(0, 1) = 30.0f;
  EXPECT_LT(loss.forward(logits, {1}), 1e-5f);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  Rng rng(1);
  Tensor logits({3, 5});
  rng.fill_normal(logits, 0.0f, 2.0f);
  const std::vector<int> labels = {1, 4, 0};
  loss.forward(logits, labels);
  const Tensor grad = loss.backward();
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits.at(i);
    logits.at(i) = orig + eps;
    const float lp = loss.forward(logits, labels);
    logits.at(i) = orig - eps;
    const float lm = loss.forward(logits, labels);
    logits.at(i) = orig;
    EXPECT_NEAR(grad.at(i), (lp - lm) / (2 * eps), 2e-3f);
  }
}

TEST(SoftmaxCrossEntropy, RejectsBadInput) {
  SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.forward(Tensor({2, 3}), {0}), std::invalid_argument);
  EXPECT_THROW(loss.forward(Tensor({1, 3}), {5}), std::invalid_argument);
  SoftmaxCrossEntropy fresh;
  EXPECT_THROW(fresh.backward(), std::logic_error);
}

TEST(SoftmaxCrossEntropy, NumericallyStableAtLargeLogits) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 2}, {1000.0f, 999.0f});
  const float l = loss.forward(logits, {0});
  EXPECT_TRUE(std::isfinite(l));
  EXPECT_NEAR(l, std::log(1.0f + std::exp(-1.0f)), 1e-4f);
}

TEST(SoftmaxCrossEntropy, StableAtExtremeLogitMagnitudes) {
  SoftmaxCrossEntropy loss;
  // +-1e4 logits: naive exp would overflow/underflow; the max-shifted
  // single-pass form must stay finite in loss, probs, and gradient.
  Tensor logits({2, 3}, {1e4f, -1e4f, 0.0f, -1e4f, -1e4f, -1e4f});
  const float l = loss.forward(logits, {0, 1});
  EXPECT_TRUE(std::isfinite(l));
  // Row 0: the max logit dominates -> loss ~0; row 1: uniform -> log(3).
  EXPECT_NEAR(l, 0.5f * std::log(3.0f), 1e-4f);
  const Tensor& p = loss.probs();
  for (int64_t i = 0; i < p.numel(); ++i) EXPECT_TRUE(std::isfinite(p.data()[i]));
  EXPECT_NEAR(p.data()[0], 1.0f, 1e-6f);
  EXPECT_NEAR(p.data()[3], 1.0f / 3.0f, 1e-6f);
  const Tensor d = loss.backward();
  for (int64_t i = 0; i < d.numel(); ++i) EXPECT_TRUE(std::isfinite(d.data()[i]));
}

// ---- Optimizers on a quadratic: f(w) = 0.5 * ||w - target||^2 ----

struct QuadParam {
  Parameter p{"w", {4}, true};
  Tensor target = Tensor::of({1.0f, -2.0f, 3.0f, 0.5f});

  void compute_grad() { p.grad = ops::sub(p.data, target); }
  float loss() const { return 0.5f * ops::sum_sq(ops::sub(p.data, target)); }
};

TEST(SGD, ConvergesOnQuadratic) {
  QuadParam q;
  SGD opt({&q.p}, {.lr = 0.1f});
  for (int i = 0; i < 200; ++i) {
    q.compute_grad();
    opt.step();
  }
  EXPECT_LT(q.loss(), 1e-6f);
}

TEST(SGD, MomentumAcceleratesEarly) {
  QuadParam plain, mom;
  SGD o1({&plain.p}, {.lr = 0.02f});
  SGD o2({&mom.p}, {.lr = 0.02f, .momentum = 0.9f});
  for (int i = 0; i < 30; ++i) {
    plain.compute_grad();
    o1.step();
    mom.compute_grad();
    o2.step();
  }
  EXPECT_LT(mom.loss(), plain.loss());
}

TEST(SGD, NesterovConverges) {
  QuadParam q;
  SGD opt({&q.p}, {.lr = 0.05f, .momentum = 0.9f, .nesterov = true});
  for (int i = 0; i < 300; ++i) {
    q.compute_grad();
    opt.step();
  }
  EXPECT_LT(q.loss(), 1e-5f);
}

TEST(SGD, WeightDecayShrinksWeights) {
  Parameter p("w", {1}, true);
  p.data.at(0) = 1.0f;
  SGD opt({&p}, {.lr = 0.1f, .weight_decay = 0.5f});
  p.zero_grad();
  opt.step();  // grad = 0 + wd*w = 0.5 -> w -= 0.05
  EXPECT_NEAR(p.data.at(0), 0.95f, 1e-6f);
}

TEST(Adam, ConvergesOnQuadratic) {
  QuadParam q;
  Adam opt({&q.p}, {.lr = 0.05f});
  for (int i = 0; i < 500; ++i) {
    q.compute_grad();
    opt.step();
  }
  EXPECT_LT(q.loss(), 1e-4f);
}

TEST(Optimizers, EnforceMaskAfterStep) {
  // The core pruning invariant: masked weights stay exactly zero through
  // any number of optimizer steps, even with momentum/Adam state.
  for (int which = 0; which < 2; ++which) {
    QuadParam q;
    q.p.mask.at(1) = 0.0f;
    q.p.apply_mask();
    std::unique_ptr<Optimizer> opt;
    if (which == 0) {
      opt = std::make_unique<SGD>(std::vector<Parameter*>{&q.p},
                                  SgdOptions{.lr = 0.1f, .momentum = 0.9f});
    } else {
      opt = std::make_unique<Adam>(std::vector<Parameter*>{&q.p}, AdamOptions{.lr = 0.05f});
    }
    for (int i = 0; i < 50; ++i) {
      q.compute_grad();
      opt->step();
      ASSERT_EQ(q.p.data.at(1), 0.0f) << "optimizer " << which << " iteration " << i;
    }
    // Unmasked entries still converge toward their targets.
    EXPECT_NEAR(q.p.data.at(0), 1.0f, 0.2f);
  }
}

TEST(Optimizer, ZeroGradClears) {
  QuadParam q;
  q.compute_grad();
  SGD opt({&q.p}, {.lr = 0.1f});
  opt.zero_grad();
  EXPECT_EQ(ops::sum_sq(q.p.grad), 0.0f);
}

// ---- integration: learn a separable 2-class problem ----

TEST(TrainingIntegration, LearnsSeparableProblem) {
  auto net = std::make_unique<Sequential>("mlp");
  net->emplace<Linear>("fc1", 2, 16, true);
  net->emplace<ReLU>("r1");
  net->emplace<Linear>("fc2", 16, 2, true, true);
  Rng rng(3);
  init_model(*net, rng);

  // Two Gaussian blobs.
  const int n = 256;
  Tensor x({n, 2});
  std::vector<int> y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int label = i % 2;
    x(i, 0) = static_cast<float>(rng.normal(label == 0 ? -1.5 : 1.5, 0.5));
    x(i, 1) = static_cast<float>(rng.normal(label == 0 ? 1.0 : -1.0, 0.5));
    y[static_cast<size_t>(i)] = label;
  }

  Adam opt(parameters_of(*net), {.lr = 0.01f});
  SoftmaxCrossEntropy loss;
  float final_loss = 1e9f;
  for (int epoch = 0; epoch < 60; ++epoch) {
    opt.zero_grad();
    const Tensor logits = net->forward(x, true);
    final_loss = loss.forward(logits, y);
    net->backward(loss.backward());
    opt.step();
  }
  EXPECT_LT(final_loss, 0.05f);

  const Tensor logits = net->forward(x, false);
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    correct += (logits(i, 0) < logits(i, 1)) == (y[static_cast<size_t>(i)] == 1);
  }
  EXPECT_GT(correct, n * 95 / 100);
}

// ---- workspace arena: steady-state training allocates no scratch ----

TEST(TrainingIntegration, TrainingStepsHitWorkspaceSteadyState) {
  auto net = std::make_unique<Sequential>("cnn");
  net->emplace<Conv2d>("c1", 2, 4, 3, 1, 1, true);
  net->emplace<BatchNorm2d>("bn1", 4);
  net->emplace<ReLU>("r1");
  net->emplace<Flatten>("fl");
  net->emplace<Linear>("fc", 4 * 6 * 6, 3, true, true);
  Rng rng(5);
  init_model(*net, rng);

  Tensor x({8, 2, 6, 6});
  rng.fill_normal(x, 0, 1);
  const std::vector<int> y = {0, 1, 2, 0, 1, 2, 0, 1};
  SGD opt(parameters_of(*net), {.lr = 1e-2f});
  SoftmaxCrossEntropy loss;

  auto step = [&] {
    opt.zero_grad();
    const Tensor logits = net->forward(x, true);
    loss.forward(logits, y);
    net->backward(loss.backward());
    opt.step();
  };

  step();  // warm-up: the arena grows to its high-water mark here
  Workspace& ws = Workspace::tls();
  const int64_t grows = ws.grow_count();
  const size_t capacity = ws.capacity();
  const size_t high_water = ws.high_water();
  ASSERT_GT(capacity, 0u);
  for (int i = 0; i < 4; ++i) step();
  // Steady state: no further arena growth, stable high-water mark, and
  // every step returned all of its scratch.
  EXPECT_EQ(ws.grow_count(), grows) << "training step grew the arena after warm-up";
  EXPECT_EQ(ws.capacity(), capacity);
  EXPECT_EQ(ws.high_water(), high_water);
  EXPECT_EQ(ws.in_use(), 0u) << "training step leaked arena scratch";
}

// ---- checkpointing ----

std::unique_ptr<Sequential> tiny_net(uint64_t seed) {
  auto net = std::make_unique<Sequential>("tiny");
  net->emplace<Linear>("fc1", 3, 4, true);
  net->emplace<ReLU>("r");
  net->emplace<Linear>("fc2", 4, 2, true);
  Rng rng(seed);
  init_model(*net, rng);
  return net;
}

TEST(Checkpoint, FileRoundTrip) {
  auto a = tiny_net(10);
  parameters_of(*a)[0]->mask.at(0) = 0.0f;  // non-trivial mask must survive
  const std::string path = ::testing::TempDir() + "/sb_ckpt_test.bin";
  save_checkpoint(*a, path);

  auto b = tiny_net(11);  // different init
  load_checkpoint(*b, path);
  const auto pa = parameters_of(*a), pb = parameters_of(*b);
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(ops::allclose(pa[i]->data, pb[i]->data, 0, 0));
    EXPECT_TRUE(ops::allclose(pa[i]->mask, pb[i]->mask, 0, 0));
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, LoadRejectsWrongArchitecture) {
  auto a = tiny_net(12);
  const std::string path = ::testing::TempDir() + "/sb_ckpt_bad.bin";
  save_checkpoint(*a, path);
  auto other = std::make_unique<Sequential>("other");
  other->emplace<Linear>("different", 3, 4, true);
  EXPECT_THROW(load_checkpoint(*other, path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, MissingFileThrows) {
  auto a = tiny_net(13);
  EXPECT_THROW(load_checkpoint(*a, "/nonexistent/path.ckpt"), std::runtime_error);
}

TEST(StateDict, RestoresExactly) {
  auto net = tiny_net(14);
  const StateDict snapshot = state_dict(*net);
  for (Parameter* p : parameters_of(*net)) p->data.fill(123.0f);
  load_state_dict(*net, snapshot);
  const StateDict after = state_dict(*net);
  for (const auto& [key, tensor] : snapshot) {
    EXPECT_TRUE(ops::allclose(tensor, after.at(key), 0, 0)) << key;
  }
}

TEST(StateDict, MissingKeyThrows) {
  auto net = tiny_net(15);
  StateDict incomplete = state_dict(*net);
  incomplete.erase("fc1.weight");
  EXPECT_THROW(load_state_dict(*net, incomplete), std::runtime_error);
}

}  // namespace
}  // namespace shrinkbench
