// End-to-end phenomenology tests: the paper's §3.2 "consistent findings
// across the literature" must emerge from this implementation too, at
// small scale. These are the most important integration tests in the
// repository — they check that the *science* reproduces, not just that
// the code runs.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/experiment.hpp"

namespace shrinkbench {
namespace {

// One shared fixture: a pretrained resnet-20 on synth-cifar, cached on
// disk for the whole suite (and across reruns).
class Phenomenology : public ::testing::Test {
 protected:
  static ExperimentRunner& runner() {
    static ExperimentRunner instance(cache_dir());
    return instance;
  }
  static std::string cache_dir() { return ::testing::TempDir() + "/sb_phenomenology_cache"; }

  static ExperimentConfig base_config() {
    ExperimentConfig cfg;
    cfg.dataset = "synth-cifar10";
    cfg.arch = "resnet-20";
    cfg.width = 8;
    cfg.pretrain.epochs = 50;  // must converge (see default_pretrain_options)
    // Checkpoints are keyed by tag, not recipe (PretrainedStore contract);
    // versioning the tag keeps this suite hermetic across recipe changes.
    cfg.pretrain_tag = "phenomenology-cosine3e-3-e50";
    cfg.finetune.epochs = 5;
    cfg.finetune.patience = 0;
    // The default finetune LR (3e-4, cifar_finetune_options) is tuned for a
    // 20-epoch budget with early stopping; truncated to 5 epochs it leaves
    // recovery unfinished. Measured at ratio 4 (global-weight, seed 1):
    //   3e-4 x5 fixed: drop 0.151   (the seed failure: bound is 0.15)
    //   3e-4 x10 fixed: drop 0.120  (so recovery is budget-limited, and)
    //   1.5e-4 x5 fixed: drop 0.190 (colder LR hurts -> not a schedule
    //   cosine 3e-4 x5: drop 0.172   problem: annealing also hurts)
    //   6e-4 x5 fixed: drop 0.107
    //   1e-3 x5 fixed: drop 0.078   (hotter LR matched to the short budget)
    // A 1e-3 fixed LR recovers within the same 5-epoch compute, with wide
    // margin on every bound below; 10 epochs at 3e-4 also passes but doubles
    // suite cost. LR is part of the result-cache fingerprint, so this change
    // invalidates only the finetuned rows (the pretrain checkpoint is keyed
    // by pretrain_tag and is reused).
    cfg.finetune.lr = 1e-3f;
    return cfg;
  }

  static ExperimentResult run(const std::string& strategy, double ratio, uint64_t seed = 1) {
    ExperimentConfig cfg = base_config();
    cfg.strategy = strategy;
    cfg.target_compression = ratio;
    cfg.run_seed = seed;
    return runner().run(cfg);
  }
};

TEST_F(Phenomenology, PretrainedModelIsAccurate) {
  const ExperimentResult r = run("global-weight", 1.0);
  EXPECT_GT(r.pre_top1, 0.8);  // a converged model, not just above chance
}

TEST_F(Phenomenology, PruningWorks) {
  // §3.2: "various methods can significantly compress models with little
  // or no loss of accuracy" — magnitude pruning at 2x barely hurts; at 4x
  // the loss stays small (the 5-epoch quick fine-tune recovers only
  // partially, hence the looser 4x bound).
  const ExperimentResult r2 = run("global-weight", 2.0);
  const ExperimentResult r4 = run("global-weight", 4.0);
  EXPECT_GT(r2.post_top1, r2.pre_top1 - 0.05);
  EXPECT_GT(r4.post_top1, r4.pre_top1 - 0.15);
  EXPECT_NEAR(r4.compression, 4.0, 0.2);
}

TEST_F(Phenomenology, MagnitudeBeatsRandomAtHighCompression) {
  // §3.2: "many pruning methods outperform random pruning" (at least for
  // large amounts of pruning).
  const ExperimentResult magnitude = run("global-weight", 8.0);
  const ExperimentResult random = run("random", 8.0);
  EXPECT_GT(magnitude.post_top1, random.post_top1 + 0.02);
}

TEST_F(Phenomenology, GlobalAllocationAtLeastMatchesLayerwise) {
  // §3.2: "pruning all layers uniformly tends to perform worse than ...
  // pruning globally." At matched compression, global magnitude should be
  // at least competitive with layerwise (small tolerance for noise).
  const ExperimentResult global = run("global-weight", 8.0);
  const ExperimentResult layer = run("layer-weight", 8.0);
  EXPECT_GT(global.post_top1, layer.post_top1 - 0.03);
}

TEST_F(Phenomenology, LayerwiseYieldsMoreSpeedupAtMatchedCompression) {
  // The mechanism behind Figure 6's axis swap: global magnitude
  // concentrates pruning in parameter-heavy late layers and leaves the
  // FLOP-heavy early layers dense, so at the same compression ratio its
  // theoretical speedup is lower than layerwise's.
  const ExperimentResult global = run("global-weight", 8.0);
  const ExperimentResult layer = run("layer-weight", 8.0);
  EXPECT_NEAR(global.compression, layer.compression, 0.4);
  EXPECT_GT(layer.speedup, global.speedup);
}

TEST_F(Phenomenology, AccuracyFallsOffAtExtremeCompression) {
  // Every tradeoff curve in the paper eventually drops: 32x should be
  // clearly worse than 2x even for the best baseline.
  const ExperimentResult light = run("global-weight", 2.0);
  const ExperimentResult extreme = run("global-weight", 32.0);
  EXPECT_LT(extreme.post_top1, light.post_top1);
  EXPECT_GT(extreme.compression, 16.0);  // the solver got close to target
}

TEST_F(Phenomenology, StructuredPruningTradesAccuracyForStructure) {
  // §2.3's tradeoff: channel pruning removes whole filters, so at a
  // matched ratio it costs more accuracy than keeping the best individual
  // weights — but it delivers its compression as genuine dense-computation
  // reduction (speedup tracks compression), which unstructured sparsity
  // does not guarantee on real hardware.
  const ExperimentResult channel = run("global-channel", 4.0);
  const ExperimentResult unstructured = run("global-weight", 4.0);
  EXPECT_LE(channel.post_top1, unstructured.post_top1 + 0.02);  // the accuracy cost
  EXPECT_GT(channel.post_top1, 0.15);                           // but still above chance
  EXPECT_GT(channel.speedup, 2.5);                              // real structured speedup
  EXPECT_NEAR(channel.compression, 4.0, 0.6);                   // channel granularity rounds
}

TEST_F(Phenomenology, IterativeAtLeastMatchesOneShotAtExtremeRatio) {
  // §2.3/§3.2: iterating prune -> fine-tune usually helps at high
  // compression (Han et al. 2015). Allow a small tolerance: at this scale
  // the effect is modest.
  ExperimentConfig cfg = base_config();
  cfg.strategy = "global-weight";
  cfg.target_compression = 16.0;
  cfg.schedule = ScheduleKind::OneShot;
  const ExperimentResult oneshot = runner().run(cfg);
  cfg.schedule = ScheduleKind::Iterative;
  cfg.schedule_steps = 3;
  const ExperimentResult iterative = runner().run(cfg);
  EXPECT_GT(iterative.post_top1, oneshot.post_top1 - 0.05);
  EXPECT_NEAR(iterative.compression, oneshot.compression, 0.5);
}

}  // namespace
}  // namespace shrinkbench
