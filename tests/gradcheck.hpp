// Numerical gradient checking for Layer implementations.
//
// Defines a scalar loss L = sum_i c_i * y_i over the layer output with
// fixed random coefficients c, then compares the analytic input and
// parameter gradients from backward() against central finite differences.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layer.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace shrinkbench::testing {

struct GradCheckOptions {
  float eps = 1e-3f;
  float tolerance = 2e-2f;  // relative-ish tolerance on each gradient entry
  bool check_params = true;
};

inline float weighted_sum(const Tensor& y, const Tensor& c) {
  float s = 0.0f;
  const float* yp = y.data();
  const float* cp = c.data();
  for (int64_t i = 0; i < y.numel(); ++i) s += yp[i] * cp[i];
  return s;
}

inline void expect_close(float analytic, float numeric, float tol, const std::string& what) {
  const float scale = std::max({1.0f, std::fabs(analytic), std::fabs(numeric)});
  EXPECT_NEAR(analytic, numeric, tol * scale) << what;
}

/// Checks dL/dx and (optionally) dL/dtheta for every parameter entry.
inline void gradcheck(Layer& layer, Tensor x, GradCheckOptions opts = {}) {
  Rng rng(0xC0FFEE);
  const Tensor y0 = layer.forward(x, /*train=*/true);
  Tensor c(y0.shape());
  rng.fill_normal(c, 0.0f, 1.0f);

  zero_grads(layer);
  layer.forward(x, true);
  const Tensor dx = layer.backward(c);
  ASSERT_TRUE(dx.same_shape(x));

  auto loss_at = [&](const Tensor& input) {
    return weighted_sum(layer.forward(input, /*train=*/true), c);
  };

  // Input gradients.
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x.at(i);
    x.at(i) = orig + opts.eps;
    const float lp = loss_at(x);
    x.at(i) = orig - opts.eps;
    const float lm = loss_at(x);
    x.at(i) = orig;
    const float numeric = (lp - lm) / (2 * opts.eps);
    expect_close(dx.at(i), numeric, opts.tolerance, "dL/dx[" + std::to_string(i) + "]");
  }

  // Parameter gradients.
  if (!opts.check_params) return;
  for (Parameter* p : parameters_of(layer)) {
    for (int64_t i = 0; i < p->numel(); ++i) {
      const float orig = p->data.at(i);
      p->data.at(i) = orig + opts.eps;
      const float lp = loss_at(x);
      p->data.at(i) = orig - opts.eps;
      const float lm = loss_at(x);
      p->data.at(i) = orig;
      const float numeric = (lp - lm) / (2 * opts.eps);
      expect_close(p->grad.at(i), numeric, opts.tolerance,
                   p->name + ".grad[" + std::to_string(i) + "]");
    }
  }
}

}  // namespace shrinkbench::testing
