// Metrics tests: parameter/FLOP accounting, compression ratio, theoretical
// speedup, Top-k accuracy, evaluation, and the stats helper.
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "metrics/storage.hpp"
#include "models/zoo.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"

namespace shrinkbench {
namespace {

ModelPtr tiny_lenet() {
  auto model = lenet_300_100({2, 4, 4}, 10);
  Rng rng(1);
  init_model(*model, rng);
  return model;
}

TEST(ParamCounts, MatchKnownArchitecture) {
  auto model = tiny_lenet();
  const ParamCounts c = count_params(*model);
  // fc1: 32*300 + 300; fc2: 300*100 + 100; fc3: 100*10 + 10.
  EXPECT_EQ(c.total, 32 * 300 + 300 + 300 * 100 + 100 + 100 * 10 + 10);
  EXPECT_EQ(c.prunable, 32 * 300 + 300 * 100 + 100 * 10);
  EXPECT_EQ(c.nonzero, c.total);
}

TEST(CompressionRatio, ReflectsMaskedWeights) {
  auto model = tiny_lenet();
  EXPECT_DOUBLE_EQ(compression_ratio(*model), 1.0);
  // Mask out fc2 entirely: 30000 of 41010 params.
  for (Parameter* p : parameters_of(*model)) {
    if (p->name == "fc2.weight") {
      p->mask.zero();
      p->apply_mask();
    }
  }
  const ParamCounts c = count_params(*model);
  EXPECT_EQ(c.total - c.nonzero, 30000);
  EXPECT_NEAR(compression_ratio(*model), 41010.0 / 11010.0, 1e-9);
}

TEST(Flops, DenseAndEffective) {
  auto model = tiny_lenet();
  const Shape sample{2, 4, 4};
  const FlopCounts f = count_flops(*model, sample);
  EXPECT_EQ(f.dense, 32 * 300 + 300 * 100 + 100 * 10);
  EXPECT_EQ(f.effective, f.dense);
  EXPECT_DOUBLE_EQ(theoretical_speedup(*model, sample), 1.0);

  for (Parameter* p : parameters_of(*model)) {
    if (p->name == "fc1.weight") p->mask.zero();
  }
  const FlopCounts f2 = count_flops(*model, sample);
  EXPECT_EQ(f2.effective, 300 * 100 + 100 * 10);
  EXPECT_GT(theoretical_speedup(*model, sample), 1.0);
}

TEST(TopkAccuracy, HandComputed) {
  Tensor logits({2, 4}, {0.1f, 0.9f, 0.0f, 0.0f,   // predicts 1
                         0.5f, 0.1f, 0.3f, 0.4f}); // predicts 0, runner-up 3
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, {1, 3}, 1), 0.5);
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, {1, 3}, 2), 1.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, {2, 2}, 1), 0.0);
}

TEST(TopkAccuracy, KLargerThanClassesIsAlwaysRight) {
  Tensor logits({1, 3}, {0.f, 1.f, 2.f});
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, {0}, 5), 1.0);
}

TEST(Evaluate, PerfectModelScoresOne) {
  // A "model" that outputs a one-hot of the label channel mean sign is
  // hard to build; instead check evaluate() on a trained-free problem:
  // a linear layer with identity-ish weights on 1-pixel images.
  auto model = std::make_unique<Sequential>("m");
  model->emplace<Flatten>("flat");
  model->emplace<Linear>("fc", 4, 4, false);
  auto params = parameters_of(*model);
  for (int64_t i = 0; i < 4; ++i) params[0]->data(i, i) = 10.0f;

  Dataset ds;
  ds.name = "toy";
  ds.num_classes = 4;
  ds.images = Tensor({8, 4, 1, 1});
  ds.labels.resize(8);
  Rng rng(3);
  for (int64_t i = 0; i < 8; ++i) {
    const int label = static_cast<int>(i % 4);
    ds.images.at(i * 4 + label) = 1.0f;
    ds.labels[static_cast<size_t>(i)] = label;
  }
  const EvalResult r = evaluate(*model, ds, 3);
  EXPECT_DOUBLE_EQ(r.top1, 1.0);
  EXPECT_DOUBLE_EQ(r.top5, 1.0);
  EXPECT_EQ(r.samples, 8);
  EXPECT_LT(r.loss, 0.01);
}

TEST(Stats, MeanAndSampleStddev) {
  const Stats s = compute_stats({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
  EXPECT_EQ(s.n, 4);

  const Stats single = compute_stats({7.0});
  EXPECT_DOUBLE_EQ(single.mean, 7.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);

  const Stats empty = compute_stats({});
  EXPECT_EQ(empty.n, 0);
}

TEST(Storage, DenseBytesAreFourPerParam) {
  auto model = tiny_lenet();
  const ParamCounts c = count_params(*model);
  EXPECT_EQ(storage_bytes(*model, StorageFormat::Dense), c.total * 4);
  EXPECT_DOUBLE_EQ(storage_compression_ratio(*model, StorageFormat::Dense), 1.0);
}

TEST(Storage, CsrOverheadMakesLightPruningBigger) {
  // At 0% sparsity, CSR stores value+index per weight: ~2x the dense size.
  auto model = tiny_lenet();
  EXPECT_LT(storage_compression_ratio(*model, StorageFormat::SparseCsr), 0.6);
  // At ~90% sparsity it finally wins.
  Rng rng(5);
  for (Parameter* p : parameters_of(*model)) {
    if (p->prunable) {
      rng.fill_bernoulli(p->mask, 0.1);
      p->apply_mask();
    }
  }
  EXPECT_GT(storage_compression_ratio(*model, StorageFormat::SparseCsr), 1.5);
}

TEST(Storage, BitmapBeatsCsrAtModerateSparsity) {
  auto model = tiny_lenet();
  Rng rng(6);
  for (Parameter* p : parameters_of(*model)) {
    if (p->prunable) {
      rng.fill_bernoulli(p->mask, 0.5);
      p->apply_mask();
    }
  }
  const int64_t csr = storage_bytes(*model, StorageFormat::SparseCsr);
  const int64_t bitmap = storage_bytes(*model, StorageFormat::DenseBitmap);
  EXPECT_LT(bitmap, csr);  // 1 bit/weight beats 4 bytes/survivor at 50%
  EXPECT_GT(storage_compression_ratio(*model, StorageFormat::DenseBitmap), 1.5);
}

TEST(Storage, NonPrunableParamsAlwaysDense) {
  // A model with only a batchnorm-style (non-prunable) parameter stores
  // identically in every format.
  auto model = std::make_unique<Sequential>("m");
  model->emplace<Linear>("fc", 4, 4, true);
  for (Parameter* p : parameters_of(*model)) p->prunable = false;
  const int64_t dense = storage_bytes(*model, StorageFormat::Dense);
  EXPECT_EQ(storage_bytes(*model, StorageFormat::SparseCsr), dense);
  EXPECT_EQ(storage_bytes(*model, StorageFormat::DenseBitmap), dense);
}

TEST(CompressionRatio, FullyPrunedThrows) {
  auto model = std::make_unique<Sequential>("m");
  model->emplace<Linear>("fc", 2, 2, false);
  parameters_of(*model)[0]->mask.zero();
  EXPECT_THROW(compression_ratio(*model), std::logic_error);
}

}  // namespace
}  // namespace shrinkbench
