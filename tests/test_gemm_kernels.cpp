// Exhaustive GEMM kernel correctness sweep.
//
// Every block kernel (scalar and, where available, AVX2 and AVX-512) is
// validated against a naive double-precision triple-loop reference
// across all four transpose combinations, odd/tail sizes, the full
// alpha/beta grid, and sparse (pruned-style) A inputs. The whole binary
// is registered per SIMD tier in ctest — SB_SIMD=scalar, avx2, and
// avx512 (the last auto-skips via cpuid fallback on hosts without
// AVX-512, where dispatch warns and degrades) — so the public gemm()
// entry point is exercised under every dispatch setting; the
// KernelParity suite additionally compares the block kernels against
// each other directly, independent of the environment.
// Further registrations re-run the sweep under SB_THREADS=1/2/4 so the
// threaded row-panel fan-out is covered for every kernel, and the
// GemmThreads suite checks bit-identical output across thread counts
// in-process.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"
#include "tensor/simd.hpp"
#include "tensor/threadpool.hpp"

namespace shrinkbench {
namespace {

constexpr float kRelTol = 1e-4f;

// Sizes chosen to hit every micro-tile edge case: below/at/above the
// 4-row scalar grouping, the 6-row AVX2 and 8-row AVX-512 groupings,
// the 16- and 32-wide vector panels, and the 64/256 cache-block
// boundaries.
const std::vector<int64_t> kSizes = {1, 2, 3, 5, 7, 17, 63, 64, 65, 257};

void fill_uniform(Rng& rng, std::vector<float>& v, double sparsity = 0.0) {
  for (float& x : v) {
    x = static_cast<float>(rng.uniform() * 2.0 - 1.0);
    if (sparsity > 0.0 && rng.uniform() < sparsity) x = 0.0f;
  }
}

// Reference op(A)[m,k] * op(B)[k,n] in double precision.
std::vector<double> naive_product(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                                  const std::vector<float>& a, const std::vector<float>& b) {
  std::vector<double> p(static_cast<size_t>(m * n), 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t q = 0; q < k; ++q) {
      const double av = trans_a ? a[static_cast<size_t>(q * m + i)]
                                : a[static_cast<size_t>(i * k + q)];
      if (av == 0.0) continue;
      for (int64_t j = 0; j < n; ++j) {
        const double bv = trans_b ? b[static_cast<size_t>(j * k + q)]
                                  : b[static_cast<size_t>(q * n + j)];
        p[static_cast<size_t>(i * n + j)] += av * bv;
      }
    }
  }
  return p;
}

void expect_close(const std::vector<float>& got, const std::vector<double>& want,
                  const std::string& what) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const double ref = want[i];
    const double tol = kRelTol * (1.0 + std::abs(ref));
    ASSERT_NEAR(got[i], ref, tol) << what << " at flat index " << i;
  }
}

struct AlphaBeta {
  float alpha, beta;
};

// gemm() through the public entry point (dispatch chosen by SB_SIMD /
// cpuid) across the full size x transpose x alpha/beta grid.
void sweep(double sparsity) {
  Rng rng(sparsity > 0.0 ? 99 : 42);
  const std::vector<AlphaBeta> full_grid = {{0, 0},   {0, 1},   {0, 0.5f}, {1, 0},   {1, 1},
                                            {1, 0.5f}, {0.5f, 0}, {0.5f, 1}, {0.5f, 0.5f}};
  const std::vector<AlphaBeta> small_grid = {{1, 0}, {0.5f, 0.5f}, {0, 0.5f}};
  for (int64_t m : kSizes) {
    for (int64_t n : kSizes) {
      for (int64_t k : kSizes) {
        std::vector<float> a(static_cast<size_t>(m * k));
        std::vector<float> b(static_cast<size_t>(k * n));
        std::vector<float> c0(static_cast<size_t>(m * n));
        fill_uniform(rng, a, sparsity);
        fill_uniform(rng, b);
        fill_uniform(rng, c0);
        for (int combo = 0; combo < 4; ++combo) {
          const bool ta = (combo & 1) != 0, tb = (combo & 2) != 0;
          const std::vector<double> p = naive_product(ta, tb, m, n, k, a, b);
          // The naive product is the expensive part; reuse it for every
          // alpha/beta pair. The full grid runs on small problems, a
          // representative subset on large ones (runtime, not coverage:
          // alpha/beta handling is size-independent prologue code).
          const auto& grid = (m * n * k <= 50000) ? full_grid : small_grid;
          for (const AlphaBeta ab : grid) {
            std::vector<float> c = c0;
            gemm(ta, tb, m, n, k, ab.alpha, a.data(), ta ? m : k, b.data(), tb ? k : n, ab.beta,
                 c.data(), n);
            std::vector<double> want(p.size());
            for (size_t i = 0; i < p.size(); ++i) {
              want[i] = static_cast<double>(ab.alpha) * p[i] +
                        static_cast<double>(ab.beta) * c0[i];
            }
            expect_close(c, want,
                         "m=" + std::to_string(m) + " n=" + std::to_string(n) + " k=" +
                             std::to_string(k) + " ta=" + std::to_string(ta) + " tb=" +
                             std::to_string(tb) + " alpha=" + std::to_string(ab.alpha) +
                             " beta=" + std::to_string(ab.beta));
            if (::testing::Test::HasFatalFailure()) return;
          }
        }
      }
    }
  }
}

TEST(GemmSweep, DenseMatchesNaiveReference) { sweep(/*sparsity=*/0.0); }

TEST(GemmSweep, SparseAMatchesNaiveReference) { sweep(/*sparsity=*/0.85); }

TEST(GemmSweep, BetaZeroOverwritesNonFiniteC) {
  // beta == 0 must clear C, not multiply it: NaN garbage in the output
  // buffer may not leak through.
  std::vector<float> a = {1, 2, 3, 4}, b = {5, 6, 7, 8};
  std::vector<float> c(4, std::nanf(""));
  gemm(false, false, 2, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 0.0f, c.data(), 2);
  EXPECT_FLOAT_EQ(c[0], 19.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
  EXPECT_FLOAT_EQ(c[2], 43.0f);
  EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(GemmThreads, BitIdenticalAcrossThreadCounts) {
  ThreadPool& pool = ThreadPool::instance();
  const int original = pool.threads();
  Rng rng(123);
  // Big enough that the (j0, i0) block grid splits into several chunks.
  const int64_t m = 129, n = 300, k = 200;
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  std::vector<float> c0(static_cast<size_t>(m * n));
  fill_uniform(rng, a, /*sparsity=*/0.5);
  fill_uniform(rng, b);
  fill_uniform(rng, c0);

  for (const bool trans_a : {false, true}) {
    // alpha/beta exercise both the accumulate prologue and the kernel.
    pool.set_threads(1);
    std::vector<float> ref = c0;
    gemm(trans_a, false, m, n, k, 0.5f, a.data(), trans_a ? m : k, b.data(), n, 0.25f,
         ref.data(), n);
    for (const int threads : {2, 4}) {
      pool.set_threads(threads);
      std::vector<float> c = c0;
      gemm(trans_a, false, m, n, k, 0.5f, a.data(), trans_a ? m : k, b.data(), n, 0.25f,
           c.data(), n);
      EXPECT_EQ(std::memcmp(c.data(), ref.data(), c.size() * sizeof(float)), 0)
          << "threads=" << threads << " trans_a=" << trans_a;
    }
  }
  pool.set_threads(original);
}

TEST(GemmSweep, ReportsActiveKernel) {
  // Informational: which kernel did this ctest registration actually run?
  RecordProperty("simd_level", simd::level_name(simd::active_level()));
  SUCCEED() << "active kernel: " << simd::level_name(simd::active_level());
}

// ---------------------------------------------------------------------
// Kernel parity: vector block kernels vs. scalar, head to head and
// bypassing dispatch entirely. Runs regardless of SB_SIMD; skips where
// the vector kernel is unavailable.
// ---------------------------------------------------------------------

// Block-kernel contract shapes: C[mb,nb] += A[mb,kb] * B[kb,nb], all
// row-major and dense-packed (ld == width). Covers tails in every
// dimension (including the 8-row / 32-wide AVX-512 micro tile) and the
// pruned (sparse) zero-column fast path.
void expect_kernel_parity(simd::BlockKernelFn reference, simd::BlockKernelFn candidate,
                          const char* candidate_name) {
  Rng rng(7);
  const int64_t shapes[][3] = {{1, 1, 1},      {6, 16, 8},   {8, 32, 8},  {5, 15, 7},
                               {7, 17, 9},     {9, 33, 11},  {2, 256, 1}, {64, 3, 17},
                               {64, 256, 256}, {13, 31, 63}};
  for (const auto& s : shapes) {
    const int64_t mb = s[0], nb = s[1], kb = s[2];
    for (const double sparsity : {0.0, 0.9}) {
      std::vector<float> a(static_cast<size_t>(mb * kb));
      std::vector<float> b(static_cast<size_t>(kb * nb));
      std::vector<float> c0(static_cast<size_t>(mb * nb));
      fill_uniform(rng, a, sparsity);
      fill_uniform(rng, b);
      fill_uniform(rng, c0);
      std::vector<float> c_ref = c0, c_cand = c0;
      reference(mb, nb, kb, a.data(), kb, b.data(), nb, c_ref.data(), nb);
      candidate(mb, nb, kb, a.data(), kb, b.data(), nb, c_cand.data(), nb);
      for (size_t i = 0; i < c_ref.size(); ++i) {
        const double tol = kRelTol * (1.0 + std::abs(c_ref[i]));
        ASSERT_NEAR(c_cand[i], c_ref[i], tol)
            << candidate_name << " mb=" << mb << " nb=" << nb << " kb=" << kb
            << " sparsity=" << sparsity << " flat=" << i;
      }
    }
  }
}

TEST(KernelParity, Avx2MatchesScalarOnBlockShapes) {
  if (!simd::cpu_supports_avx2()) {
    GTEST_SKIP() << "AVX2 kernel unavailable on this host/build";
  }
  const simd::BlockKernelFn scalar = simd::block_kernel(simd::Level::Scalar);
  const simd::BlockKernelFn avx2 = simd::block_kernel(simd::Level::Avx2);
  ASSERT_NE(scalar, avx2);
  expect_kernel_parity(scalar, avx2, "avx2");
}

TEST(KernelParity, Avx512MatchesScalarOnBlockShapes) {
  if (!simd::cpu_supports_avx512()) {
    GTEST_SKIP() << "AVX-512 kernel unavailable on this host/build";
  }
  const simd::BlockKernelFn scalar = simd::block_kernel(simd::Level::Scalar);
  const simd::BlockKernelFn avx512 = simd::block_kernel(simd::Level::Avx512);
  ASSERT_NE(scalar, avx512);
  expect_kernel_parity(scalar, avx512, "avx512");
}

TEST(KernelParity, UnsupportedLevelFallsBackToBestSupported) {
  // block_kernel must never hand out a kernel the host cannot run: an
  // unsupported request degrades down the tier ladder.
  const simd::BlockKernelFn k = simd::block_kernel(simd::Level::Avx512);
  ASSERT_NE(k, nullptr);
  if (!simd::cpu_supports_avx512()) {
    EXPECT_EQ(k, simd::block_kernel(simd::cpu_supports_avx2() ? simd::Level::Avx2
                                                              : simd::Level::Scalar));
  }
}

}  // namespace
}  // namespace shrinkbench
