// Thread-pool runtime tests: partition exactness, the serial fast paths,
// nesting and SerialGuard behaviour, exception propagation, pool
// reconfiguration, and bit-determinism of the parallelised tensor
// primitives (elementwise ops, GEMM, im2col/col2im) across thread counts.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"
#include "tensor/threadpool.hpp"

namespace shrinkbench {
namespace {

// Restores the pool size after each test so later tests in this binary
// run under the SB_THREADS environment ctest configured.
struct PoolFixture : ::testing::Test {
  int original = ThreadPool::instance().threads();
  void TearDown() override { ThreadPool::instance().set_threads(original); }
};

Tensor random_tensor(Shape shape, uint64_t seed) {
  Rng rng(seed);
  Tensor x(std::move(shape));
  rng.fill_normal(x, 0.0f, 1.0f);
  return x;
}

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

TEST_F(PoolFixture, EveryIndexRunsExactlyOnce) {
  for (const int threads : {1, 2, 3, 4, 7}) {
    ThreadPool::instance().set_threads(threads);
    for (const int64_t n : {int64_t{1}, int64_t{2}, int64_t{63}, int64_t{1000}, int64_t{4097}}) {
      // Chunks cover disjoint index ranges, so these writes never race.
      std::vector<int> hits(static_cast<size_t>(n), 0);
      parallel_for(0, n, 1, [&](int64_t b, int64_t e) {
        ASSERT_LT(b, e);
        for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
      });
      for (const int h : hits) ASSERT_EQ(h, 1);
    }
  }
}

TEST_F(PoolFixture, GrainBoundsChunkSize) {
  ThreadPool::instance().set_threads(4);
  std::vector<int> hits(100, 0);
  std::vector<int64_t> sizes;
  std::mutex mu;
  parallel_for(0, 100, 30, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    sizes.push_back(e - b);
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  // 100 indices at grain 30 form at most 3 chunks, each >= 30 indices.
  EXPECT_LE(sizes.size(), 3u);
  for (const int64_t s : sizes) EXPECT_GE(s, 30);
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST_F(PoolFixture, SingleThreadRunsInlineAsOneChunk) {
  ThreadPool::instance().set_threads(1);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  parallel_for(0, 100000, 1, [&](int64_t b, int64_t e) {
    ++calls;
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 100000);
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(PoolFixture, RangeBelowTwoGrainsStaysOnCallingThread) {
  ThreadPool::instance().set_threads(4);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  parallel_for(0, 9, 5, [&](int64_t, int64_t) {
    ++calls;
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(PoolFixture, EmptyRangeNeverInvokesBody) {
  ThreadPool::instance().set_threads(4);
  int calls = 0;
  parallel_for(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  parallel_for(5, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(PoolFixture, NestedParallelForRunsInline) {
  ThreadPool::instance().set_threads(4);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  parallel_for(0, 8, 1, [&](int64_t, int64_t) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    int inner_calls = 0;
    parallel_for(0, 1000, 1, [&](int64_t b, int64_t e) {
      ++inner_calls;
      EXPECT_EQ(b, 0);
      EXPECT_EQ(e, 1000);
    });
    EXPECT_EQ(inner_calls, 1);  // inner level degrades to one serial chunk
  });
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST_F(PoolFixture, SerialGuardForcesInlineExecution) {
  ThreadPool::instance().set_threads(4);
  {
    ThreadPool::SerialGuard guard;
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    int calls = 0;
    parallel_for(0, 100000, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 1);
  }
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST_F(PoolFixture, ChunkExceptionPropagatesAndPoolSurvives) {
  ThreadPool::instance().set_threads(4);
  EXPECT_THROW(
      parallel_for(0, 100000, 1, [](int64_t, int64_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::vector<int> hits(1000, 0);
  parallel_for(0, 1000, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST_F(PoolFixture, SetThreadsValidatesAndReconfigures) {
  EXPECT_THROW(ThreadPool::instance().set_threads(0), std::invalid_argument);
  ThreadPool::instance().set_threads(2);
  EXPECT_EQ(ThreadPool::instance().threads(), 2);
  ThreadPool::instance().set_threads(5);
  EXPECT_EQ(ThreadPool::instance().threads(), 5);
  std::vector<int> hits(500, 0);
  parallel_for(0, 500, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (const int h : hits) ASSERT_EQ(h, 1);
}

// ---- Bit-determinism of the parallelised primitives ----

TEST_F(PoolFixture, ElementwiseOpsBitIdenticalAcrossThreadCounts) {
  const Tensor a = random_tensor({400000}, 3);
  const Tensor b = random_tensor({400000}, 4);

  const auto run_all = [&] {
    Tensor r = ops::add(a, b);
    ops::mul_inplace(r, b);
    ops::axpy(r, 0.37f, a);
    ops::scale_inplace(r, 1.0f / 3.0f);
    return ops::sub(r, b);
  };
  ThreadPool::instance().set_threads(1);
  const Tensor serial = run_all();
  for (const int threads : {2, 4, 7}) {
    ThreadPool::instance().set_threads(threads);
    EXPECT_TRUE(same_bits(serial, run_all())) << "threads=" << threads;
  }
}

TEST_F(PoolFixture, GemmBitIdenticalAcrossThreadCounts) {
  // Large enough that the block grid forms several chunks per pool size.
  const int64_t m = 130, n = 300, k = 190;
  const Tensor a = random_tensor({m, k}, 5);
  const Tensor b = random_tensor({k, n}, 6);

  ThreadPool::instance().set_threads(1);
  const Tensor serial = matmul(a, b);
  const Tensor serial_tn = matmul_tn(random_tensor({k, m}, 8), b);
  for (const int threads : {2, 3, 4}) {
    ThreadPool::instance().set_threads(threads);
    EXPECT_TRUE(same_bits(serial, matmul(a, b))) << "threads=" << threads;
    EXPECT_TRUE(same_bits(serial_tn, matmul_tn(random_tensor({k, m}, 8), b)))
        << "threads=" << threads;
  }
}

TEST_F(PoolFixture, GemmBetaPathBitIdenticalAcrossThreadCounts) {
  const int64_t m = 96, n = 257, k = 64;
  const Tensor a = random_tensor({m, k}, 9);
  const Tensor b = random_tensor({k, n}, 10);
  const Tensor c0 = random_tensor({m, n}, 11);

  const auto accumulate = [&] {
    Tensor c = c0;
    gemm(false, false, m, n, k, 0.5f, a.data(), k, b.data(), n, 0.25f, c.data(), n);
    return c;
  };
  ThreadPool::instance().set_threads(1);
  const Tensor serial = accumulate();
  for (const int threads : {2, 4}) {
    ThreadPool::instance().set_threads(threads);
    EXPECT_TRUE(same_bits(serial, accumulate())) << "threads=" << threads;
  }
}

TEST_F(PoolFixture, Im2colCol2imBitIdenticalAcrossThreadCounts) {
  const ConvGeometry g{/*in_c=*/32, /*in_h=*/34, /*in_w=*/34,
                       /*kernel_h=*/3, /*kernel_w=*/3, /*stride=*/1, /*pad=*/1};
  const Tensor image = random_tensor({g.in_c, g.in_h, g.in_w}, 12);
  const int64_t cols_numel = g.col_rows() * g.col_cols();

  const auto lower = [&] {
    Tensor cols({cols_numel});
    im2col(g, image.data(), cols.data());
    return cols;
  };
  const auto scatter = [&](const Tensor& cols) {
    Tensor out({g.in_c, g.in_h, g.in_w});
    col2im(g, cols.data(), out.data());
    return out;
  };

  ThreadPool::instance().set_threads(1);
  const Tensor cols_serial = lower();
  const Tensor image_serial = scatter(cols_serial);
  for (const int threads : {2, 4}) {
    ThreadPool::instance().set_threads(threads);
    EXPECT_TRUE(same_bits(cols_serial, lower())) << "threads=" << threads;
    EXPECT_TRUE(same_bits(image_serial, scatter(cols_serial))) << "threads=" << threads;
  }
}

// ---- Fused 2-D grid (Grid2d / parallel_for_2d) ----

TEST_F(PoolFixture, Grid2dCoversEveryCellExactlyOnce) {
  for (const int threads : {1, 2, 4, 7}) {
    ThreadPool::instance().set_threads(threads);
    for (const auto& [n0, n1, g0, g1] :
         {std::array<int64_t, 4>{1, 16, 1, 4}, {7, 12, 1, 4}, {32, 5, 1, 1}, {4, 4, 2, 2},
          {1, 1, 1, 1}, {13, 31, 3, 7}}) {
      std::vector<int> hits(static_cast<size_t>(n0 * n1), 0);
      // Tiles cover disjoint (i, j) rectangles, so these writes never race.
      parallel_for_2d(n0, n1, g0, g1, [&](int64_t lo0, int64_t hi0, int64_t lo1, int64_t hi1) {
        for (int64_t i = lo0; i < hi0; ++i) {
          for (int64_t j = lo1; j < hi1; ++j) ++hits[static_cast<size_t>(i * n1 + j)];
        }
      });
      for (const int h : hits) {
        ASSERT_EQ(h, 1) << "n0=" << n0 << " n1=" << n1 << " threads=" << threads;
      }
    }
  }
}

TEST_F(PoolFixture, Grid2dSplitsAxis0First) {
  // Enough samples for every pool slot: axis 1 must not split, so the
  // per-tile staging cost is paid exactly once per sample.
  const Grid2d batched(/*n0=*/32, /*n1=*/16, 1, 4, /*threads=*/4);
  EXPECT_EQ(batched.tiles0(), 4);
  EXPECT_EQ(batched.tiles1(), 1);

  // Batch below the pool width: the channel axis supplies the missing
  // parallelism (the batch-1 serving case).
  const Grid2d starved(/*n0=*/1, /*n1=*/16, 1, 4, /*threads=*/4);
  EXPECT_EQ(starved.tiles0(), 1);
  EXPECT_EQ(starved.tiles1(), 4);

  const Grid2d half(/*n0=*/2, /*n1=*/16, 1, 4, /*threads=*/4);
  EXPECT_EQ(half.tiles0(), 2);
  EXPECT_EQ(half.tiles1(), 2);

  // threads=1 is always the exact serial path: one tile.
  const Grid2d serial(/*n0=*/32, /*n1=*/16, 1, 4, /*threads=*/1);
  EXPECT_EQ(serial.tiles(), 1);
}

TEST_F(PoolFixture, Grid2dHonorsGrainFloors) {
  // grain1=4 caps the channel split at n1/4 tiles even when the pool
  // wants more; no tile may cover fewer than grain indices of its axis.
  const Grid2d grid(/*n0=*/1, /*n1=*/6, 1, 4, /*threads=*/8);
  EXPECT_EQ(grid.tiles0(), 1);
  EXPECT_EQ(grid.tiles1(), 1);  // 6 / 4 = 1 tile: splitting would go below the floor

  const Grid2d wide(/*n0=*/1, /*n1=*/64, 1, 4, /*threads=*/8);
  EXPECT_EQ(wide.tiles1(), 8);
  for (int64_t i = 0; i < wide.tiles1(); ++i) {
    const Grid2d::Range r = wide.range1(i);
    EXPECT_GE(r.hi - r.lo, 4) << "tile " << i;
  }

  // Empty axes yield an empty grid and the body never runs.
  const Grid2d empty(/*n0=*/0, /*n1=*/16, 1, 1, /*threads=*/4);
  EXPECT_EQ(empty.tiles(), 0);
  int calls = 0;
  parallel_for_2d(empty, [&](int64_t, int64_t, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(PoolFixture, Grid2dTileIdsEnumerateAxis1Fastest) {
  // Consecutive tile ids within one axis-0 row must share that row's
  // sample range — the property the conv forward relies on to stage
  // im2col once per row per chunk.
  const Grid2d grid(/*n0=*/3, /*n1=*/32, 1, 4, /*threads=*/8);
  ASSERT_GT(grid.tiles1(), 1);
  for (int64_t t = 0; t + 1 < grid.tiles(); ++t) {
    if (grid.tile0(t) == grid.tile0(t + 1)) {
      EXPECT_EQ(grid.tile1(t) + 1, grid.tile1(t + 1));
      const Grid2d::Range a = grid.range0(grid.tile0(t));
      const Grid2d::Range b = grid.range0(grid.tile0(t + 1));
      EXPECT_EQ(a.lo, b.lo);
      EXPECT_EQ(a.hi, b.hi);
    }
  }
}

TEST_F(PoolFixture, TelemetrySamplerSeesPoolActivity) {
  // The pool registers its utilization hook with obs at static init;
  // with telemetry switched on, fan-outs must show up in the sample and
  // the busy clocks must advance for every participating slot.
  ThreadPool::instance().set_threads(2);
  obs::set_telemetry_enabled(true);
  const obs::PoolSample before = [] {
    obs::Telemetry& t = obs::Telemetry::instance();
    t.sample_once();  // also proves sample_once survives pool traffic
    obs::PoolSample s;
    s.jobs = static_cast<int64_t>(t.series().at("pool.jobs").back().value);
    return s;
  }();

  std::atomic<int64_t> sum{0};
  parallel_for(0, 1 << 16, 1, [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });

  obs::Telemetry& t = obs::Telemetry::instance();
  t.sample_once();
  const auto series = t.series();
  const int64_t jobs_after = static_cast<int64_t>(series.at("pool.jobs").back().value);
  EXPECT_GT(jobs_after, before.jobs);
  EXPECT_EQ(sum.load(), (int64_t{1} << 15) * ((int64_t{1} << 16) - 1));

  obs::set_telemetry_enabled(false);
  ASSERT_TRUE(series.count("pool.busy_frac"));
  const double busy = series.at("pool.busy_frac").back().value;
  EXPECT_GE(busy, 0.0);
  EXPECT_LE(busy, 1.0);
}

}  // namespace
}  // namespace shrinkbench
