// Tests for the auxiliary APIs: learning-rate schedules, the Appendix-B
// checklist grader, and the model summary printer.
#include <gtest/gtest.h>

#include "core/checklist.hpp"
#include "core/train.hpp"
#include "metrics/metrics.hpp"
#include "metrics/summary.hpp"
#include "models/zoo.hpp"

namespace shrinkbench {
namespace {

// ---- learning-rate schedules ----

TEST(LrSchedule, FixedIsConstant) {
  TrainOptions opts;
  opts.lr = 0.01f;
  opts.epochs = 20;
  for (int e = 0; e < 20; ++e) EXPECT_FLOAT_EQ(lr_at_epoch(opts, e), 0.01f);
}

TEST(LrSchedule, StepDecayDropsAtBoundaries) {
  TrainOptions opts;
  opts.lr = 1.0f;
  opts.lr_schedule = LrSchedule::StepDecay;
  opts.lr_step_every = 5;
  opts.lr_step_gamma = 0.1f;
  EXPECT_FLOAT_EQ(lr_at_epoch(opts, 0), 1.0f);
  EXPECT_FLOAT_EQ(lr_at_epoch(opts, 4), 1.0f);
  EXPECT_FLOAT_EQ(lr_at_epoch(opts, 5), 0.1f);
  EXPECT_NEAR(lr_at_epoch(opts, 10), 0.01f, 1e-7f);
}

TEST(LrSchedule, CosineInterpolatesToFloor) {
  TrainOptions opts;
  opts.lr = 1.0f;
  opts.lr_min = 0.1f;
  opts.lr_schedule = LrSchedule::Cosine;
  opts.epochs = 11;
  EXPECT_NEAR(lr_at_epoch(opts, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(lr_at_epoch(opts, 10), 0.1f, 1e-5f);
  EXPECT_NEAR(lr_at_epoch(opts, 5), 0.55f, 1e-4f);  // midpoint
  // Monotone decreasing.
  for (int e = 1; e < 11; ++e) EXPECT_LE(lr_at_epoch(opts, e), lr_at_epoch(opts, e - 1) + 1e-6f);
}

TEST(LrSchedule, CosineSingleEpochIsBase) {
  TrainOptions opts;
  opts.lr = 0.5f;
  opts.lr_schedule = LrSchedule::Cosine;
  opts.epochs = 1;
  EXPECT_FLOAT_EQ(lr_at_epoch(opts, 0), 0.5f);
}

// ---- checklist ----

ExperimentResult fake_result(const std::string& strategy, const std::string& dataset,
                             const std::string& arch, double ratio, uint64_t seed) {
  ExperimentResult r;
  r.config.strategy = strategy;
  r.config.dataset = dataset;
  r.config.arch = arch;
  r.config.target_compression = ratio;
  r.config.run_seed = seed;
  r.pre_top1 = 0.9;
  r.pre_top5 = 0.99;
  r.post_top1 = 0.85;
  r.post_top5 = 0.98;
  r.compression = ratio;
  r.speedup = ratio * 0.8;
  return r;
}

TEST(Checklist, SingleRunFailsMostItems) {
  const auto report = evaluate_checklist({fake_result("global-weight", "d", "a", 4, 1)},
                                         "global-weight");
  EXPECT_LT(report.satisfied(), report.total() / 2 + 2);
  // But controls and both-metric items pass for a well-formed result.
  for (const auto& item : report.items) {
    if (item.id == "controls" || item.id == "both-efficiency-metrics" ||
        item.id == "both-accuracy-metrics") {
      EXPECT_TRUE(item.satisfied) << item.id;
    }
    if (item.id == "operating-points" || item.id == "multiple-seeds" ||
        item.id == "random-baseline") {
      EXPECT_FALSE(item.satisfied) << item.id;
    }
  }
}

TEST(Checklist, FullSweepSatisfiesEverything) {
  std::vector<ExperimentResult> results;
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"synth-cifar10", "resnet-56"}, {"synth-cifar10", "cifar-vgg"},
      {"synth-imagenet", "resnet-18"}};
  for (const auto& [ds, arch] : pairs) {
    for (const double ratio : {2.0, 4.0, 8.0, 16.0, 32.0}) {
      for (const uint64_t seed : {1, 2, 3}) {
        for (const char* strategy : {"my-method", "global-weight", "random"}) {
          results.push_back(fake_result(strategy, ds, arch, ratio, seed));
        }
      }
    }
  }
  const auto report = evaluate_checklist(results, "my-method");
  EXPECT_EQ(report.satisfied(), report.total());
}

TEST(Checklist, DetectsMissingBaselines) {
  std::vector<ExperimentResult> results;
  for (const double ratio : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    results.push_back(fake_result("my-method", "d", "a", ratio, 1));
  }
  const auto report = evaluate_checklist(results, "my-method");
  for (const auto& item : report.items) {
    if (item.id == "random-baseline" || item.id == "magnitude-baseline") {
      EXPECT_FALSE(item.satisfied) << item.id;
    }
    if (item.id == "operating-points") EXPECT_TRUE(item.satisfied);
  }
}

TEST(Checklist, RenderListsEveryItem) {
  const auto report = evaluate_checklist({fake_result("m", "d", "a", 2, 1)}, "m");
  const std::string text = render_checklist(report);
  for (const auto& item : report.items) {
    EXPECT_NE(text.find(item.id), std::string::npos) << item.id;
  }
  EXPECT_NE(text.find("Best-practice checklist"), std::string::npos);
}

// ---- model summary ----

TEST(Summary, RowsCoverLeavesWithCorrectTotals) {
  auto model = make_model("resnet-20", {3, 8, 8}, 10, 4);
  const auto rows = summarize_layers(*model, {3, 8, 8});
  // Leaves only: no Sequential/ResidualBlock rows.
  int64_t params = 0;
  for (const auto& row : rows) {
    EXPECT_NE(row.kind, "Sequential");
    EXPECT_NE(row.kind, "ResidualBlock");
    params += row.params;
  }
  ParamCounts counts = count_params(*model);
  EXPECT_EQ(params, counts.total);
  // First row is the stem conv producing [4, 8, 8].
  EXPECT_EQ(rows.front().kind, "Conv2d");
  EXPECT_EQ(rows.front().output_shape, (Shape{4, 8, 8}));
  // Last row is the classifier.
  EXPECT_EQ(rows.back().kind, "Linear");
  EXPECT_EQ(rows.back().output_shape, (Shape{10}));
}

TEST(Summary, DescribeMentionsLayersAndTotals) {
  auto model = make_model("lenet-5", {1, 8, 8}, 10);
  const std::string text = describe(*model, {1, 8, 8});
  EXPECT_NE(text.find("Conv2d"), std::string::npos);
  EXPECT_NE(text.find("MaxPool2d"), std::string::npos);
  EXPECT_NE(text.find("total:"), std::string::npos);
  EXPECT_NE(text.find("lenet-5"), std::string::npos);
}

TEST(Summary, EffectiveFlopsTrackMasks) {
  auto model = make_model("cifar-vgg", {3, 8, 8}, 10, 4);
  for (Parameter* p : parameters_of(*model)) {
    if (p->prunable) p->mask.zero();
  }
  const auto rows = summarize_layers(*model, {3, 8, 8});
  for (const auto& row : rows) {
    if (row.kind == "Conv2d" || row.kind == "Linear") {
      EXPECT_EQ(row.flops_effective, 0) << row.name;
      EXPECT_GT(row.flops, 0) << row.name;
    }
  }
}

}  // namespace
}  // namespace shrinkbench
