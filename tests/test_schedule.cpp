// Schedule tests: one-shot / iterative / polynomial keep-fraction ramps,
// plus training-loop behaviour (early stopping, best-weight restore).
#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "core/train.hpp"
#include "data/synthetic.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "nn/init.hpp"

namespace shrinkbench {
namespace {

TEST(Schedule, NamesRoundTrip) {
  for (const auto kind :
       {ScheduleKind::OneShot, ScheduleKind::Iterative, ScheduleKind::Polynomial}) {
    EXPECT_EQ(schedule_from_name(to_string(kind)), kind);
  }
  EXPECT_THROW(schedule_from_name("never"), std::invalid_argument);
}

TEST(Schedule, OneShotIsSingleStep) {
  const auto f = schedule_fractions(ScheduleKind::OneShot, 0.25, 5);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f[0], 0.25);
}

class ScheduleSteps : public ::testing::TestWithParam<std::tuple<ScheduleKind, int, double>> {};

TEST_P(ScheduleSteps, MonotoneAndEndsAtTarget) {
  const auto [kind, steps, target] = GetParam();
  const auto f = schedule_fractions(kind, target, steps);
  ASSERT_EQ(static_cast<int>(f.size()), kind == ScheduleKind::OneShot ? 1 : steps);
  for (size_t i = 1; i < f.size(); ++i) EXPECT_LE(f[i], f[i - 1] + 1e-12);
  for (double v : f) {
    EXPECT_GE(v, target - 1e-12);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_DOUBLE_EQ(f.back(), target);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleSteps,
    ::testing::Combine(::testing::Values(ScheduleKind::OneShot, ScheduleKind::Iterative,
                                         ScheduleKind::Polynomial),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0.5, 0.125, 0.03125)));

TEST(Schedule, IterativeIsGeometric) {
  const auto f = schedule_fractions(ScheduleKind::Iterative, 0.25, 2);
  EXPECT_NEAR(f[0], 0.5, 1e-9);  // sqrt(0.25)
  EXPECT_NEAR(f[1], 0.25, 1e-9);
}

TEST(Schedule, PolynomialFrontLoadsPruning) {
  // Zhu-Gupta cubic: most sparsity appears in early steps.
  const auto f = schedule_fractions(ScheduleKind::Polynomial, 0.1, 4);
  const double first_step_pruned = 1.0 - f[0];
  const double last_step_pruned = f[2] - f[3];
  EXPECT_GT(first_step_pruned, last_step_pruned);
}

TEST(Schedule, RejectsBadArguments) {
  EXPECT_THROW(schedule_fractions(ScheduleKind::Iterative, -0.1, 3), std::invalid_argument);
  EXPECT_THROW(schedule_fractions(ScheduleKind::Iterative, 1.1, 3), std::invalid_argument);
  EXPECT_THROW(schedule_fractions(ScheduleKind::Iterative, 0.5, 0), std::invalid_argument);
}

TEST(Schedule, ZeroTargetHandled) {
  const auto f = schedule_fractions(ScheduleKind::Iterative, 0.0, 3);
  EXPECT_DOUBLE_EQ(f.back(), 0.0);
}

// ---- train_model behaviour ----

struct TrainFixture {
  DatasetBundle bundle;
  ModelPtr model;

  TrainFixture() {
    SyntheticSpec spec = synth_mnist(42);
    spec.train_size = 256;
    spec.val_size = 128;
    spec.test_size = 128;
    bundle = make_synthetic(spec);
    model = make_model("lenet-300-100", bundle.train.sample_shape(), 10);
    Rng rng(1);
    init_model(*model, rng);
  }
};

TEST(TrainModel, LearnsEasySyntheticTask) {
  TrainFixture fx;
  TrainOptions opts;
  opts.epochs = 12;
  opts.batch_size = 32;
  opts.lr = 1e-3f;
  opts.patience = 0;
  const TrainHistory hist = train_model(*fx.model, fx.bundle, opts);
  EXPECT_GT(hist.best_val_top1, 0.85);
  EXPECT_EQ(static_cast<int>(hist.epochs.size()), 12);
  // Loss decreased.
  EXPECT_LT(hist.epochs.back().train_loss, hist.epochs.front().train_loss);
}

TEST(TrainModel, EarlyStoppingCutsEpochs) {
  TrainFixture fx;
  TrainOptions opts;
  opts.epochs = 100;
  opts.batch_size = 32;
  opts.lr = 1e-3f;
  opts.patience = 3;
  const TrainHistory hist = train_model(*fx.model, fx.bundle, opts);
  EXPECT_TRUE(hist.stopped_early);
  EXPECT_LT(static_cast<int>(hist.epochs.size()), 100);
}

TEST(TrainModel, RestoresBestWeights) {
  TrainFixture fx;
  TrainOptions opts;
  opts.epochs = 10;
  opts.batch_size = 32;
  opts.lr = 1e-3f;
  opts.patience = 0;
  opts.restore_best = true;
  const TrainHistory hist = train_model(*fx.model, fx.bundle, opts);
  const EvalResult val = evaluate(*fx.model, fx.bundle.val, 64);
  EXPECT_NEAR(val.top1, hist.best_val_top1, 1e-9);
}

TEST(TrainModel, DeterministicGivenSeeds) {
  TrainFixture a, b;
  TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 32;
  opts.loader_seed = 77;
  opts.patience = 0;
  const TrainHistory h1 = train_model(*a.model, a.bundle, opts);
  const TrainHistory h2 = train_model(*b.model, b.bundle, opts);
  ASSERT_EQ(h1.epochs.size(), h2.epochs.size());
  for (size_t i = 0; i < h1.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(h1.epochs[i].train_loss, h2.epochs[i].train_loss);
    EXPECT_DOUBLE_EQ(h1.epochs[i].val_top1, h2.epochs[i].val_top1);
  }
}

TEST(TrainModel, PresetOptionsMatchAppendixC2) {
  const TrainOptions cifar = cifar_finetune_options();
  EXPECT_EQ(cifar.optimizer, OptimizerKind::Adam);
  EXPECT_FLOAT_EQ(cifar.lr, 3e-4f);
  EXPECT_EQ(cifar.batch_size, 64);

  const TrainOptions imagenet = imagenet_finetune_options();
  EXPECT_EQ(imagenet.optimizer, OptimizerKind::SgdNesterov);
  EXPECT_FLOAT_EQ(imagenet.lr, 1e-3f);
  EXPECT_FLOAT_EQ(imagenet.momentum, 0.9f);
}

}  // namespace
}  // namespace shrinkbench
