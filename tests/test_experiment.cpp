// End-to-end experiment-runner tests: a full prune+fine-tune experiment on
// a small model, schedule variants, sweep mechanics, pretrained caching,
// and CSV output.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/experiment.hpp"

namespace shrinkbench {
namespace {

// Shared tiny config so the whole file runs in seconds.
ExperimentConfig tiny_config(const std::string& cache_dir) {
  (void)cache_dir;
  ExperimentConfig cfg;
  cfg.dataset = "synth-mnist";
  cfg.arch = "lenet-300-100";
  cfg.strategy = "global-weight";
  cfg.target_compression = 2.0;
  cfg.pretrain.epochs = 8;
  cfg.pretrain.batch_size = 64;
  cfg.pretrain.patience = 0;
  cfg.finetune.epochs = 3;
  cfg.finetune.patience = 0;
  return cfg;
}

struct RunnerFixture : ::testing::Test {
  std::string cache_dir;
  std::unique_ptr<ExperimentRunner> runner;

  void SetUp() override {
    cache_dir = ::testing::TempDir() + "/sb_exp_cache";
    std::filesystem::remove_all(cache_dir);
    runner = std::make_unique<ExperimentRunner>(cache_dir);
  }
  void TearDown() override { std::filesystem::remove_all(cache_dir); }
};

TEST_F(RunnerFixture, EndToEndExperimentProducesSaneMetrics) {
  const ExperimentConfig cfg = tiny_config(cache_dir);
  const ExperimentResult r = runner->run(cfg);

  EXPECT_GT(r.pre_top1, 0.5);                       // pretrained model learned
  EXPECT_NEAR(r.compression, 2.0, 0.1);             // hit the target ratio
  EXPECT_GT(r.speedup, 1.0);
  EXPECT_GT(r.params_total, r.params_nonzero);
  EXPECT_GT(r.flops_dense, r.flops_effective);
  EXPECT_GT(r.finetune_epochs, 0);
  EXPECT_GT(r.seconds, 0.0);
  // Phase breakdown is populated and consistent with the wall total.
  EXPECT_GT(r.phases.pretrain, 0.0);
  EXPECT_GT(r.phases.prune, 0.0);
  EXPECT_GT(r.phases.finetune, 0.0);
  EXPECT_GT(r.phases.eval, 0.0);
  EXPECT_LE(r.phases.total(), r.seconds);
  // Magnitude pruning to 2x on an easy task barely hurts.
  EXPECT_GT(r.post_top1, r.pre_top1 - 0.1);
}

TEST_F(RunnerFixture, PretrainedCacheHitsOnSecondRun) {
  const ExperimentConfig cfg = tiny_config(cache_dir);
  runner->run(cfg);
  size_t checkpoints = 0;
  for (const auto& entry : std::filesystem::directory_iterator(cache_dir)) {
    checkpoints += entry.path().extension() == ".ckpt";
  }
  EXPECT_EQ(checkpoints, 1u);

  // Second run must reuse the checkpoint (same pre-accuracy, no new file).
  const ExperimentResult r2 = runner->run(cfg);
  size_t checkpoints2 = 0;
  for (const auto& entry : std::filesystem::directory_iterator(cache_dir)) {
    checkpoints2 += entry.path().extension() == ".ckpt";
  }
  EXPECT_EQ(checkpoints2, 1u);
  EXPECT_GT(r2.pre_top1, 0.5);
}

TEST_F(RunnerFixture, SameSeedReproducesExactly) {
  const ExperimentConfig cfg = tiny_config(cache_dir);
  const ExperimentResult a = runner->run(cfg);
  const ExperimentResult b = runner->run(cfg);
  EXPECT_DOUBLE_EQ(a.post_top1, b.post_top1);
  EXPECT_DOUBLE_EQ(a.compression, b.compression);
  // The second run is a result-cache hit; phase timings round-trip
  // bit-exactly through the on-disk cache.
  EXPECT_DOUBLE_EQ(a.phases.pretrain, b.phases.pretrain);
  EXPECT_DOUBLE_EQ(a.phases.finetune, b.phases.finetune);
}

TEST_F(RunnerFixture, IterativeScheduleRuns) {
  ExperimentConfig cfg = tiny_config(cache_dir);
  cfg.schedule = ScheduleKind::Iterative;
  cfg.schedule_steps = 2;
  cfg.target_compression = 4.0;
  cfg.finetune.epochs = 2;
  const ExperimentResult r = runner->run(cfg);
  EXPECT_NEAR(r.compression, 4.0, 0.2);
  EXPECT_GE(r.finetune_epochs, 2);  // fine-tuned after each step
}

TEST_F(RunnerFixture, RandomStrategySeedsDiffer) {
  ExperimentConfig cfg = tiny_config(cache_dir);
  cfg.strategy = "random";
  cfg.target_compression = 8.0;
  cfg.finetune.epochs = 1;
  cfg.run_seed = 1;
  const ExperimentResult a = runner->run(cfg);
  cfg.run_seed = 2;
  const ExperimentResult b = runner->run(cfg);
  // Different random masks almost surely land at different accuracy.
  EXPECT_NE(a.post_top1, b.post_top1);
}

TEST_F(RunnerFixture, SweepEnumeratesFullGrid) {
  ExperimentConfig base = tiny_config(cache_dir);
  base.finetune.epochs = 1;
  const auto results =
      run_sweep(*runner, base, {"global-weight", "random"}, {2.0, 4.0}, {1, 2});
  ASSERT_EQ(results.size(), 8u);
  // Grid covers every combination exactly once.
  std::set<std::tuple<std::string, double, uint64_t>> seen;
  for (const auto& r : results) {
    seen.insert({r.config.strategy, r.config.target_compression, r.config.run_seed});
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST_F(RunnerFixture, CsvRoundTrip) {
  ExperimentConfig cfg = tiny_config(cache_dir);
  cfg.finetune.epochs = 1;
  const ExperimentResult r = runner->run(cfg);
  const std::string path = cache_dir + "/results.csv";
  write_experiment_csv(path, {r});

  std::ifstream is(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row));
  EXPECT_EQ(header, experiment_csv_header());
  EXPECT_NE(row.find("lenet-300-100"), std::string::npos);
  EXPECT_NE(row.find("global-weight"), std::string::npos);
  // Column counts agree.
  const auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count_commas(header), count_commas(row));
}

TEST_F(RunnerFixture, DatasetCacheReturnsSameObject) {
  const DatasetBundle& a = runner->dataset("synth-mnist", 0);
  const DatasetBundle& b = runner->dataset("synth-mnist", 0);
  EXPECT_EQ(&a, &b);
  const DatasetBundle& c = runner->dataset("synth-mnist", 9);
  EXPECT_NE(&a, &c);
}

TEST(ExperimentConfig, DefaultsMatchPaperSetup) {
  const ExperimentConfig cfg;
  EXPECT_EQ(cfg.strategy, "global-weight");
  EXPECT_EQ(cfg.schedule, ScheduleKind::OneShot);
  EXPECT_FALSE(cfg.prune.include_classifier);  // Appendix C.1
}

}  // namespace
}  // namespace shrinkbench
