// Sparse inference tests: CSR construction, sparse matmul correctness,
// and agreement between dense and sparse execution of pruned layers.
#include <gtest/gtest.h>

#include "nn/init.hpp"
#include "nn/sparse.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace shrinkbench {
namespace {

TEST(Csr, RoundTripsDense) {
  Rng rng(1);
  Tensor dense({7, 11});
  rng.fill_normal(dense, 0, 1);
  // Zero about half the entries.
  for (float& v : dense.flat()) {
    if (rng.bernoulli(0.5)) v = 0.0f;
  }
  const CsrMatrix csr = csr_from_dense(dense.data(), 7, 11);
  EXPECT_EQ(csr.nnz(), ops::count_nonzero(dense));
  EXPECT_TRUE(ops::allclose(csr_to_dense(csr), dense, 0, 0));
}

TEST(Csr, EmptyAndFullMatrices) {
  Tensor zeros({3, 4});
  const CsrMatrix empty = csr_from_dense(zeros.data(), 3, 4);
  EXPECT_EQ(empty.nnz(), 0);
  EXPECT_DOUBLE_EQ(empty.density(), 0.0);

  Tensor ones = Tensor::ones({3, 4});
  const CsrMatrix full = csr_from_dense(ones.data(), 3, 4);
  EXPECT_EQ(full.nnz(), 12);
  EXPECT_DOUBLE_EQ(full.density(), 1.0);
}

TEST(Csr, RejectsColumnCountBeyondInt32) {
  // col_idx is int32_t; anything wider must throw instead of silently
  // wrapping the indices. rows = 0 so no data is ever dereferenced.
  const int64_t too_wide = int64_t{1} << 32;
  EXPECT_THROW(csr_from_dense(nullptr, 0, too_wide), std::invalid_argument);
}

TEST(Csr, FromParameterAppliesMask) {
  Parameter p("w", {2, 3}, true);
  p.data.fill(5.0f);
  p.mask = Tensor({2, 3}, {1, 0, 1, 0, 0, 1});
  const CsrMatrix csr = csr_from_parameter(p);
  EXPECT_EQ(csr.nnz(), 3);
  const Tensor dense = csr_to_dense(csr);
  EXPECT_EQ(dense(0, 0), 5.0f);
  EXPECT_EQ(dense(0, 1), 0.0f);
  EXPECT_EQ(dense(1, 2), 5.0f);
}

class CsrMatmulSparsity : public ::testing::TestWithParam<double> {};

TEST_P(CsrMatmulSparsity, MatchesDenseGemm) {
  const double sparsity = GetParam();
  Rng rng(17);
  Tensor a({13, 29}), b({29, 9});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  for (float& v : a.flat()) {
    if (rng.uniform() < sparsity) v = 0.0f;
  }
  const CsrMatrix csr = csr_from_dense(a.data(), 13, 29);
  Tensor out({13, 9});
  csr_matmul(csr, b.data(), 9, out.data());
  EXPECT_TRUE(ops::allclose(out, matmul(a, b), 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Sparsities, CsrMatmulSparsity,
                         ::testing::Values(0.0, 0.25, 0.5, 0.9, 0.99, 1.0));

TEST(SparseConv, MatchesDenseForwardUnderMask) {
  Conv2d conv("c", 3, 5, 3, 1, 1, true);
  Rng rng(3);
  kaiming_normal(conv.weight().data, rng);
  rng.fill_normal(conv.bias()->data, 0, 0.1f);
  // Prune 80% of the weights.
  rng.fill_bernoulli(conv.weight().mask, 0.2);
  conv.weight().apply_mask();

  Tensor x({4, 3, 6, 6});
  rng.fill_normal(x, 0, 1);
  const Tensor dense_out = conv.forward(x, false);

  const SparseConv2dInference sparse(conv);
  EXPECT_NEAR(sparse.density(), 0.2, 0.07);
  const Tensor sparse_out = sparse.forward(x);
  EXPECT_TRUE(ops::allclose(sparse_out, dense_out, 1e-4f, 1e-4f));
}

TEST(SparseConv, StridedAndPaddedGeometry) {
  Conv2d conv("c", 2, 4, 3, 2, 1, false);
  Rng rng(5);
  kaiming_normal(conv.weight().data, rng);
  Tensor x({2, 2, 7, 7});
  rng.fill_normal(x, 0, 1);
  const SparseConv2dInference sparse(conv);
  EXPECT_TRUE(ops::allclose(sparse.forward(x), conv.forward(x, false), 1e-4f, 1e-4f));
}

TEST(SparseConv, RejectsWrongInput) {
  Conv2d conv("c", 3, 4, 3, 1, 1, false);
  const SparseConv2dInference sparse(conv);
  EXPECT_THROW(sparse.forward(Tensor({1, 2, 6, 6})), std::invalid_argument);
}

TEST(SparseLinear, MatchesDenseForwardUnderMask) {
  Linear fc("fc", 10, 6, true);
  Rng rng(7);
  kaiming_normal(fc.weight().data, rng);
  rng.fill_normal(fc.bias()->data, 0, 0.1f);
  rng.fill_bernoulli(fc.weight().mask, 0.3);
  fc.weight().apply_mask();

  Tensor x({5, 10});
  rng.fill_normal(x, 0, 1);
  const SparseLinearInference sparse(fc);
  EXPECT_TRUE(ops::allclose(sparse.forward(x), fc.forward(x, false), 1e-4f, 1e-4f));
}

TEST(SparseLinear, FullyPrunedYieldsBiasOnly) {
  Linear fc("fc", 4, 3, true);
  Rng rng(9);
  kaiming_normal(fc.weight().data, rng);
  fc.bias()->data = Tensor::of({1.0f, 2.0f, 3.0f});
  fc.weight().mask.zero();
  fc.weight().apply_mask();
  const SparseLinearInference sparse(fc);
  Tensor x({2, 4});
  rng.fill_normal(x, 0, 1);
  const Tensor y = sparse.forward(x);
  EXPECT_FLOAT_EQ(y(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y(1, 2), 3.0f);
}

TEST(Csr, RejectsRankOneParameter) {
  Parameter bias("b", {4}, false);
  EXPECT_THROW(csr_from_parameter(bias), std::invalid_argument);
}

}  // namespace
}  // namespace shrinkbench
