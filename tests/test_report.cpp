// Reporting tests: table alignment, CSV writing, ASCII chart rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "report/chart.hpp"
#include "report/table.hpp"

namespace shrinkbench::report {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"a-much-longer-name", "23456"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
  // Every line ends with '|'.
  std::istringstream ss(out);
  std::string line;
  while (std::getline(ss, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '|');
  }
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.render());
}

TEST(Table, NumFormatsAndNan) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::nan(""), 2), "-");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Csv, WritesQuotedCells) {
  const std::string path = ::testing::TempDir() + "/sb_report_test.csv";
  write_csv(path, {{"a", "b"}, {"1", "x,y"}});
  std::ifstream is(path);
  std::string l1, l2;
  std::getline(is, l1);
  std::getline(is, l2);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1,\"x,y\"");
  std::filesystem::remove(path);
}

TEST(Chart, RendersSeriesAndLegend) {
  Series s1{"up", {1, 2, 4, 8}, {1, 2, 3, 4}};
  Series s2{"down", {1, 2, 4, 8}, {4, 3, 2, 1}};
  ChartOptions opts;
  opts.log_x = true;
  opts.x_label = "compression";
  opts.title = "test chart";
  const std::string out = render_chart({s1, s2}, opts);
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find("o = up"), std::string::npos);
  EXPECT_NE(out.find("x = down"), std::string::npos);
  EXPECT_NE(out.find("compression"), std::string::npos);
  EXPECT_NE(out.find("log scale"), std::string::npos);
  // Corner glyphs land on the plot: both 'o' and 'x' appear inside.
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(Chart, HandlesEmptyAndConstantSeries) {
  EXPECT_NE(render_chart({}, {}).find("(no data)"), std::string::npos);
  Series flat{"flat", {1, 2}, {5, 5}};
  EXPECT_NO_THROW(render_chart({flat}, {}));
}

TEST(Chart, SingularXRange) {
  Series point{"pt", {3}, {1}};
  ChartOptions opts;
  EXPECT_NO_THROW(render_chart({point}, opts));
}

}  // namespace
}  // namespace shrinkbench::report
