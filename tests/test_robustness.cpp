// Crash-safety and fault-tolerance tests: atomic writes, checksummed
// result-cache entries (corruption -> quarantine -> recompute), failure
// isolation + retries in run_sweep, incremental CSV output, and
// killed-then-restarted sweeps resuming with zero recomputation. Every
// failure path is driven deterministically through the SB_FAULT-style
// injection hooks (obs::set_fault_spec / obs::fault_point).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/experiment.hpp"
#include "obs/io.hpp"
#include "obs/profile.hpp"
#include "tensor/gemm.hpp"

namespace shrinkbench {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

size_t count_files_with(const fs::path& dir, const std::string& needle) {
  size_t n = 0;
  if (!fs::exists(dir)) return 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    n += entry.path().filename().string().find(needle) != std::string::npos;
  }
  return n;
}

// Cheapest possible end-to-end experiment: accuracy values are never
// asserted, only determinism and cache behavior.
ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.dataset = "synth-mnist";
  cfg.arch = "lenet-300-100";
  cfg.strategy = "global-weight";
  cfg.target_compression = 2.0;
  cfg.pretrain.epochs = 2;
  cfg.pretrain.batch_size = 64;
  cfg.pretrain.patience = 0;
  cfg.finetune.epochs = 1;
  cfg.finetune.patience = 0;
  return cfg;
}

struct RobustnessFixture : ::testing::Test {
  std::string cache_dir;
  std::string out_dir;
  std::unique_ptr<ExperimentRunner> runner;

  void SetUp() override {
    cache_dir = ::testing::TempDir() + "/sb_robust_cache";
    out_dir = ::testing::TempDir() + "/sb_robust_out";
    fs::remove_all(cache_dir);
    fs::remove_all(out_dir);
    obs::set_fault_spec("");
    clear_sweep_interrupt();
    runner = std::make_unique<ExperimentRunner>(cache_dir);
  }
  void TearDown() override {
    obs::set_fault_spec("");
    clear_sweep_interrupt();
    fs::remove_all(cache_dir);
    fs::remove_all(out_dir);
  }

  fs::path result_entry() const {
    const fs::path dir = fs::path(cache_dir) / "results";
    if (fs::exists(dir)) {
      for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".result") return entry.path();
      }
    }
    return {};
  }
};

// ---- atomic_write_file ----

TEST(AtomicWrite, RoundTripsAndCreatesParents) {
  const fs::path dir = fs::path(::testing::TempDir()) / "sb_atomic";
  fs::remove_all(dir);
  const fs::path file = dir / "a" / "b" / "out.txt";
  ASSERT_TRUE(obs::atomic_write_file(file, "hello\nworld\n"));
  EXPECT_EQ(slurp(file), "hello\nworld\n");
  // Overwrite replaces atomically.
  ASSERT_TRUE(obs::atomic_write_file(file, "v2"));
  EXPECT_EQ(slurp(file), "v2");
  EXPECT_EQ(count_files_with(dir, ".tmp."), 0u);
  fs::remove_all(dir);
}

TEST(AtomicWrite, ShortWriteLeavesNoPartialFile) {
  const fs::path dir = fs::path(::testing::TempDir()) / "sb_atomic_short";
  fs::remove_all(dir);
  const fs::path file = dir / "out.txt";
  obs::set_fault_spec("io.short_write:1");
  EXPECT_FALSE(obs::atomic_write_file(file, "doomed"));
  EXPECT_FALSE(fs::exists(file));                      // nothing visible at the target
  EXPECT_EQ(count_files_with(dir, ".tmp."), 0u);       // temp cleaned up
  // Fault consumed: the retry lands intact.
  EXPECT_TRUE(obs::atomic_write_file(file, "ok"));
  EXPECT_EQ(slurp(file), "ok");
  obs::set_fault_spec("");
  fs::remove_all(dir);
}

TEST(AtomicWrite, FaultSpecCountsPerSite) {
  obs::set_fault_spec("site.a:2,site.b:*");
  EXPECT_FALSE(obs::fault_point("site.a"));  // call 1
  EXPECT_TRUE(obs::fault_point("site.a"));   // call 2 fires
  EXPECT_FALSE(obs::fault_point("site.a"));  // call 3
  EXPECT_TRUE(obs::fault_point("site.b"));   // '*' fires always
  EXPECT_TRUE(obs::fault_point("site.b"));
  obs::set_fault_spec("");
  EXPECT_FALSE(obs::fault_point("site.b"));  // disarmed
}

TEST(AtomicWrite, ChecksumIsStable) {
  EXPECT_EQ(obs::fnv1a64(""), 0xcbf29ce484222325ULL);  // FNV offset basis
  EXPECT_EQ(obs::checksum_hex("abc").size(), 16u);
  EXPECT_NE(obs::checksum_hex("abc"), obs::checksum_hex("abd"));
}

// ---- result cache durability ----

TEST_F(RobustnessFixture, CacheWriteFailureDoesNotPoisonLaterRuns) {
  const ExperimentConfig cfg = tiny_config();
  obs::set_fault_spec("io.short_write:*");
  const ExperimentResult r1 = runner->run(cfg);  // runs fine, cache write dropped
  EXPECT_FALSE(r1.failed);
  EXPECT_EQ(result_entry(), fs::path{});  // truncated entry never became visible

  obs::set_fault_spec("");
  const ExperimentResult r2 = runner->run(cfg);  // recomputed, now cached
  EXPECT_FALSE(r2.from_cache);
  EXPECT_DOUBLE_EQ(r1.post_top1, r2.post_top1);  // determinism: same experiment
  const ExperimentResult r3 = runner->run(cfg);
  EXPECT_TRUE(r3.from_cache);
}

TEST_F(RobustnessFixture, CorruptCacheEntryIsQuarantinedAndRecomputed) {
  const ExperimentConfig cfg = tiny_config();
  const ExperimentResult r1 = runner->run(cfg);
  const fs::path entry = result_entry();
  ASSERT_FALSE(entry.empty());

  // Flip bytes in the metrics line, keeping the three-line shape — the
  // checksum must catch it.
  std::string bytes = slurp(entry);
  const size_t line2 = bytes.find('\n') + 1;
  ASSERT_LT(line2 + 4, bytes.size());
  bytes[line2] = bytes[line2] == '9' ? '8' : '9';
  {
    std::ofstream os(entry, std::ios::binary | std::ios::trunc);
    os << bytes;
  }

  ExperimentRunner fresh(cache_dir);
  const ExperimentResult r2 = fresh.run(cfg);
  EXPECT_FALSE(r2.from_cache);                       // recomputed, never parsed
  EXPECT_DOUBLE_EQ(r1.post_top1, r2.post_top1);
  EXPECT_EQ(count_files_with(fs::path(cache_dir) / "results", ".corrupt"), 1u);
  const ExperimentResult r3 = fresh.run(cfg);        // rewritten entry is valid again
  EXPECT_TRUE(r3.from_cache);
}

TEST_F(RobustnessFixture, CorruptInjectionAtWriteTimeIsDetectedOnRead) {
  const ExperimentConfig cfg = tiny_config();
  obs::set_fault_spec("cache.corrupt:1");  // bit-rot the entry as it is written
  runner->run(cfg);
  obs::set_fault_spec("");

  ExperimentRunner fresh(cache_dir);
  const ExperimentResult r = fresh.run(cfg);
  EXPECT_FALSE(r.from_cache);
  EXPECT_EQ(count_files_with(fs::path(cache_dir) / "results", ".corrupt"), 1u);
}

TEST_F(RobustnessFixture, PreChecksumEntryIsSilentStaleMiss) {
  const ExperimentConfig cfg = tiny_config();
  runner->run(cfg);
  const fs::path entry = result_entry();
  ASSERT_FALSE(entry.empty());

  // Strip the "#crc" line: the layout of cache entries before checksums.
  std::string bytes = slurp(entry);
  const size_t crc_at = bytes.find("#crc ");
  ASSERT_NE(crc_at, std::string::npos);
  {
    std::ofstream os(entry, std::ios::binary | std::ios::trunc);
    os << bytes.substr(0, crc_at);
  }

  ExperimentRunner fresh(cache_dir);
  const ExperimentResult r = fresh.run(cfg);
  EXPECT_FALSE(r.from_cache);  // recomputed...
  EXPECT_EQ(count_files_with(fs::path(cache_dir) / "results", ".corrupt"), 0u);  // ...quietly
}

// ---- failure isolation in run_sweep ----

TEST_F(RobustnessFixture, ThrowingExperimentBecomesFailedRowAndSweepContinues) {
  ExperimentConfig base = tiny_config();
  SweepOptions options;
  options.csv_path = out_dir + "/sweep.csv";
  options.retries = 0;
  SweepSummary summary;
  obs::set_fault_spec("experiment.throw:1");
  const auto results =
      run_sweep(*runner, base, {"global-weight"}, {2.0, 4.0}, {1}, options, &summary);
  obs::set_fault_spec("");

  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].failed);
  EXPECT_NE(results[0].error.find("injected"), std::string::npos);
  EXPECT_FALSE(results[1].failed);
  EXPECT_EQ(summary.completed, 2u);
  EXPECT_EQ(summary.failures, 1u);
  EXPECT_EQ(summary.exit_code(), 1);

  // The failed row is in the streamed CSV, error string and all.
  const std::string csv = slurp(options.csv_path);
  EXPECT_NE(csv.find(",failed,"), std::string::npos);
  EXPECT_NE(csv.find("injected"), std::string::npos);
  EXPECT_NE(csv.find(",ok,"), std::string::npos);
}

TEST_F(RobustnessFixture, RetryRecoversTransientFailure) {
  ExperimentConfig base = tiny_config();
  SweepOptions options;
  options.retries = 1;
  SweepSummary summary;
  obs::set_fault_spec("experiment.throw:1");  // first attempt only
  const auto results = run_sweep(*runner, base, {"global-weight"}, {2.0}, {1}, options, &summary);
  obs::set_fault_spec("");

  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].failed);
  EXPECT_EQ(summary.failures, 0u);
  EXPECT_EQ(summary.exit_code(), 0);
}

TEST_F(RobustnessFixture, FailedRowRoundTripsThroughCsv) {
  ExperimentResult r;
  r.config = tiny_config();
  r.failed = true;
  r.error = "bad, \"quoted\" and\nmultiline";
  const std::string row = experiment_csv_row(r);
  EXPECT_NE(row.find(",failed,"), std::string::npos);
  EXPECT_EQ(row.find('\n'), std::string::npos);  // one row stays one line
  const auto commas_outside_quotes = [](const std::string& s) {
    int n = 0;
    bool quoted = false;
    for (const char c : s) {
      if (c == '"') quoted = !quoted;
      n += (c == ',' && !quoted);
    }
    return n;
  };
  EXPECT_EQ(commas_outside_quotes(row),
            commas_outside_quotes(experiment_csv_header()));
}

// ---- crash / interrupt / resume ----

TEST_F(RobustnessFixture, AbortedSweepResumesWithZeroRecomputation) {
  ExperimentConfig base = tiny_config();
  const std::vector<std::string> strategies = {"global-weight", "random"};
  const std::vector<double> ratios = {2.0, 4.0};
  SweepOptions options;
  options.csv_path = out_dir + "/resume.csv";

  // "Crash" after two experiments: the abort throws out of run_sweep,
  // leaving the incremental CSV and the result cache as a kill -9 would.
  obs::set_fault_spec("sweep.abort:3");
  EXPECT_THROW(run_sweep(*runner, base, strategies, ratios, {1}, options), std::runtime_error);
  obs::set_fault_spec("");
  const std::string partial = slurp(options.csv_path);
  EXPECT_EQ(std::count(partial.begin(), partial.end(), '\n'), 3);  // header + 2 rows

  // Restart: the two pre-crash configs come from the cache, only the
  // remaining two are computed.
  ExperimentRunner restarted(cache_dir);
  SweepSummary resume;
  const auto results = run_sweep(restarted, base, strategies, ratios, {1}, options, &resume);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(resume.cache_hits, 2u);
  EXPECT_EQ(resume.failures, 0u);
  const std::string full = slurp(options.csv_path);
  EXPECT_EQ(partial, full.substr(0, partial.size()));  // prefix preserved verbatim

  // A fully-cached rerun reproduces the final CSV byte for byte.
  ExperimentRunner rerun(cache_dir);
  SweepSummary cached;
  run_sweep(rerun, base, strategies, ratios, {1}, options, &cached);
  EXPECT_EQ(cached.cache_hits, 4u);
  EXPECT_EQ(slurp(options.csv_path), full);
}

TEST_F(RobustnessFixture, InterruptFlushesAndStopsCleanly) {
  ExperimentConfig base = tiny_config();
  SweepOptions options;
  options.csv_path = out_dir + "/interrupted.csv";
  SweepSummary summary;
  obs::set_fault_spec("sweep.interrupt:2");  // SIGINT arrives before experiment 2
  const auto results =
      run_sweep(*runner, base, {"global-weight"}, {2.0, 4.0}, {1}, options, &summary);
  obs::set_fault_spec("");
  clear_sweep_interrupt();

  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(summary.interrupted);
  EXPECT_EQ(summary.completed, 1u);
  EXPECT_EQ(summary.exit_code(), 130);
  const std::string csv = slurp(options.csv_path);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);  // header + the finished row
}

TEST_F(RobustnessFixture, PendingInterruptStopsSweepBeforeWork) {
  request_sweep_interrupt();
  SweepSummary summary;
  const auto results =
      run_sweep(*runner, tiny_config(), {"global-weight"}, {2.0}, {1}, {}, &summary);
  clear_sweep_interrupt();
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(summary.interrupted);
}

// ---- satellite: gemm FLOP accounting ----

TEST(GemmCounters, EarlyReturnDoesNotInflateFlops) {
  obs::set_profiling_enabled(true);
  obs::Profiler::instance().reset();
  float a[4] = {1, 2, 3, 4}, b[4] = {5, 6, 7, 8}, c[4] = {0, 0, 0, 0};

  gemm(false, false, 2, 2, 2, /*alpha=*/0.0f, a, 2, b, 2, /*beta=*/1.0f, c, 2);
  auto snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.count("gemm.flops"), 0u);  // no multiply-adds ran
  EXPECT_EQ(snap.counters.at("gemm.calls"), 1);

  gemm(false, false, 2, 2, 2, /*alpha=*/1.0f, a, 2, b, 2, /*beta=*/0.0f, c, 2);
  snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.at("gemm.flops"), 2 * 2 * 2 * 2);
  obs::Profiler::instance().reset();
  obs::set_profiling_enabled(false);
}

}  // namespace
}  // namespace shrinkbench
